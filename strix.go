// Package strix is the public API of the Strix reproduction: a functional
// TFHE library with programmable bootstrapping (the computation the
// accelerator executes) and a cycle-level model of the Strix accelerator
// itself (MICRO 2023), together with the experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// The two halves compose: the FHE context runs real encrypted computation
// bit-for-bit (validating the algorithms), while the accelerator model
// predicts how fast Strix executes the same workload.
//
//	ctx, _ := strix.NewFHEContext("test", 42)
//	a, b := ctx.EncryptBool(true), ctx.EncryptBool(false)
//	fmt.Println(ctx.DecryptBool(ctx.Eval.NAND(a, b))) // true
//
//	acc, _ := strix.NewAccelerator("I")
//	fmt.Println(acc.ThroughputPBS()) // ~74,696 PBS/s
package strix

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/tfhe"
)

// FHEContext bundles a key set with an evaluator for end-to-end encrypted
// computation. It is deterministic for a given seed.
type FHEContext struct {
	Params tfhe.Params
	SK     tfhe.SecretKeys
	EK     tfhe.EvaluationKeys
	Eval   *tfhe.Evaluator
	rng    *rand.Rand
}

// NewFHEContext generates keys for the named parameter set ("I".."IV" or
// "test") and returns a ready-to-use context. Set "test" keeps key
// generation and bootstrapping fast; the standard sets are substantially
// slower but fully functional.
func NewFHEContext(set string, seed int64) (*FHEContext, error) {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sk, ek := tfhe.GenerateKeys(rng, p)
	return &FHEContext{
		Params: p,
		SK:     sk,
		EK:     ek,
		Eval:   tfhe.NewEvaluator(ek),
		rng:    rng,
	}, nil
}

// EncryptBool encrypts a boolean (±1/8 gate encoding).
func (c *FHEContext) EncryptBool(b bool) tfhe.LWECiphertext {
	return c.SK.EncryptBool(c.rng, b)
}

// DecryptBool decrypts a gate-encoded boolean of dimension n.
func (c *FHEContext) DecryptBool(ct tfhe.LWECiphertext) bool {
	return c.SK.DecryptBool(ct)
}

// EncryptInt encrypts m ∈ {0..space-1} with the PBS padding-bit encoding.
func (c *FHEContext) EncryptInt(m, space int) tfhe.LWECiphertext {
	return c.SK.LWE.Encrypt(c.rng, tfhe.EncodePBSMessage(m, space), c.Params.LWEStdDev)
}

// DecryptInt decrypts a PBS-encoded integer of dimension n.
func (c *FHEContext) DecryptInt(ct tfhe.LWECiphertext, space int) int {
	return tfhe.DecodePBSMessage(c.SK.LWE.Phase(ct), space)
}

// DecryptIntBig decrypts a PBS-encoded integer of dimension k·N (a PBS
// output before keyswitching).
func (c *FHEContext) DecryptIntBig(ct tfhe.LWECiphertext, space int) int {
	return tfhe.DecodePBSMessage(c.SK.BigLWE.Phase(ct), space)
}

// Accelerator wraps the Strix performance model and epoch scheduler.
type Accelerator struct {
	Config arch.Config
	Model  arch.Model
	Chip   arch.Chip
}

// NewAccelerator builds the default 8-HSC Strix for a parameter set.
func NewAccelerator(set string) (*Accelerator, error) {
	return NewAcceleratorWithConfig(arch.DefaultConfig(), set)
}

// NewAcceleratorWithConfig builds a Strix with a custom configuration.
func NewAcceleratorWithConfig(cfg arch.Config, set string) (*Accelerator, error) {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return nil, err
	}
	chip, err := arch.NewChip(cfg, p)
	if err != nil {
		return nil, err
	}
	return &Accelerator{Config: cfg, Model: chip.Model, Chip: chip}, nil
}

// ThroughputPBS returns sustained PBS/s.
func (a *Accelerator) ThroughputPBS() float64 { return a.Model.ThroughputPBS() }

// LatencyMs returns single-PBS latency in milliseconds.
func (a *Accelerator) LatencyMs() float64 { return a.Model.LatencySeconds() * 1e3 }

// RunPBS schedules count independent PBS+KS operations.
func (a *Accelerator) RunPBS(count int) (arch.WorkloadResult, error) {
	return a.Chip.RunPBS(count)
}

// RunLayers schedules dependent layers (e.g. a neural network).
func (a *Accelerator) RunLayers(layers []int) (arch.WorkloadResult, error) {
	return a.Chip.RunLayers(layers)
}

// RunExperiment regenerates one of the paper's tables/figures by ID
// (see ExperimentIDs).
func RunExperiment(id string) (experiments.Report, error) {
	return experiments.Run(id)
}

// ExperimentIDs lists the available experiment IDs.
func ExperimentIDs() []string { return experiments.IDs() }

// Version is the library version.
const Version = "1.0.0"
