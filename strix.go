// Package strix is the public API of the Strix reproduction: a functional
// TFHE library with programmable bootstrapping (the computation the
// accelerator executes) and a cycle-level model of the Strix accelerator
// itself (MICRO 2023), together with the experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// The two halves compose: the FHE context runs real encrypted computation
// bit-for-bit (validating the algorithms), while the accelerator model
// predicts how fast Strix executes the same workload.
//
//	ctx, _ := strix.NewFHEContext("test", 42)
//	a, b := ctx.EncryptBool(true), ctx.EncryptBool(false)
//	fmt.Println(ctx.DecryptBool(ctx.Eval.NAND(a, b))) // true
//
//	acc, _ := strix.NewAccelerator("I")
//	fmt.Println(acc.ThroughputPBS()) // ~74,696 PBS/s
//
// Batched execution — the accelerator's raison d'être — has a software
// counterpart: the context's engine fans independent gates (one PBS + KS
// each) out over a pool of per-goroutine evaluators, so measured PBS/s can
// be compared directly with the model's prediction:
//
//	xs := ctx.EncryptBools([]bool{true, false, true, true})
//	ys := ctx.EncryptBools([]bool{true, true, false, true})
//	outs, _ := ctx.BatchGate(strix.NAND, xs, ys) // all four in parallel
//	fmt.Println(ctx.DecryptBools(outs))          // [false true true false]
//
// Worker count defaults to runtime.NumCPU(); use NewEngine for control
// over pool size and chunking, and Engine().Counters() for the aggregate
// operation mix.
//
// Whole computations — not just hand-built batches — reach the engines
// through the circuit scheduler: build a DAG of gates, lookup tables, and
// free linear combinations with NewCircuitBuilder, then Compile levelizes
// it into maximal independent batches and RunCircuit dispatches each
// level to the batch or streaming engine by a cost model:
//
//	b := strix.NewCircuitBuilder()
//	x, y := b.Input(), b.Input()
//	b.Output(b.Gate(strix.XOR, x, y))
//	circ, _ := b.Build()
//	outs, _ := ctx.RunCircuit(circ, []tfhe.LWECiphertext{a, c})
package strix

import (
	"context"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/tfhe"
	"repro/internal/workload"
)

// FHEContext bundles a key set with an evaluator for end-to-end encrypted
// computation. It is deterministic for a given seed.
type FHEContext struct {
	Params tfhe.Params
	SK     tfhe.SecretKeys
	EK     tfhe.EvaluationKeys
	Eval   *tfhe.Evaluator
	rng    *rand.Rand

	engOnce sync.Once
	eng     *engine.Engine

	streamOnce sync.Once
	streamEng  *engine.StreamingEngine
}

// NewFHEContext generates keys for the named parameter set ("I".."IV" or
// "test") and returns a ready-to-use context. Set "test" keeps key
// generation and bootstrapping fast; the standard sets are substantially
// slower but fully functional.
func NewFHEContext(set string, seed int64) (*FHEContext, error) {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sk, ek := tfhe.GenerateKeys(rng, p)
	return &FHEContext{
		Params: p,
		SK:     sk,
		EK:     ek,
		Eval:   tfhe.NewEvaluator(ek),
		rng:    rng,
	}, nil
}

// EncryptBool encrypts a boolean (±1/8 gate encoding).
func (c *FHEContext) EncryptBool(b bool) tfhe.LWECiphertext {
	return c.SK.EncryptBool(c.rng, b)
}

// DecryptBool decrypts a gate-encoded boolean of dimension n.
func (c *FHEContext) DecryptBool(ct tfhe.LWECiphertext) bool {
	return c.SK.DecryptBool(ct)
}

// EncryptInt encrypts m ∈ {0..space-1} with the PBS padding-bit encoding.
func (c *FHEContext) EncryptInt(m, space int) tfhe.LWECiphertext {
	return c.SK.LWE.Encrypt(c.rng, tfhe.EncodePBSMessage(m, space), c.Params.LWEStdDev)
}

// DecryptInt decrypts a PBS-encoded integer of dimension n.
func (c *FHEContext) DecryptInt(ct tfhe.LWECiphertext, space int) int {
	return tfhe.DecodePBSMessage(c.SK.LWE.Phase(ct), space)
}

// DecryptIntBig decrypts a PBS-encoded integer of dimension k·N (a PBS
// output before keyswitching).
func (c *FHEContext) DecryptIntBig(ct tfhe.LWECiphertext, space int) int {
	return tfhe.DecodePBSMessage(c.SK.BigLWE.Phase(ct), space)
}

// GateOp identifies a boolean gate for the batch APIs.
type GateOp = engine.GateOp

// Gate is one gate of a dependency-free circuit level (see EvalCircuit).
type Gate = engine.Gate

// Gate mnemonics, re-exported so callers outside the module never touch
// the internal engine package.
const (
	NAND = engine.NAND
	AND  = engine.AND
	OR   = engine.OR
	NOR  = engine.NOR
	XOR  = engine.XOR
	XNOR = engine.XNOR
	NOT  = engine.NOT
)

// Engine returns the context's default batch engine (one worker per CPU),
// building it on first use. The engine shares the context's evaluation
// keys; see NewEngine for a custom pool size.
func (c *FHEContext) Engine() *engine.Engine {
	c.engOnce.Do(func() { c.eng = engine.New(c.EK, engine.Config{}) })
	return c.eng
}

// NewEngine returns a fresh batch engine over this context's keys with the
// given worker count (0 = runtime.NumCPU()).
func (c *FHEContext) NewEngine(workers int) *engine.Engine {
	return engine.New(c.EK, engine.Config{Workers: workers})
}

// StreamConfig tunes the streaming pipeline's stage widths.
type StreamConfig = engine.StreamConfig

// StreamEngine returns the context's default streaming pipeline engine
// (NumCPU blind-rotate workers), building it on first use. See
// NewStreamingEngine for explicit stage widths.
func (c *FHEContext) StreamEngine() *engine.StreamingEngine {
	c.streamOnce.Do(func() { c.streamEng = engine.NewStreaming(c.EK, engine.StreamConfig{}) })
	return c.streamEng
}

// NewStreamingEngine returns a fresh streaming pipeline engine over this
// context's keys with explicit stage widths.
func (c *FHEContext) NewStreamingEngine(cfg StreamConfig) *engine.StreamingEngine {
	return engine.NewStreaming(c.EK, cfg)
}

// Stream applies one gate pairwise over two ciphertext slices on the
// default streaming pipeline: out[i] = op(a[i], b[i]). Unlike BatchGate's
// flat one-worker-per-gate fan-out, ciphertexts flow through specialized
// PBS stages (modswitch → blind rotate → extract → fused keyswitch) with
// the sign test vector encoded once for the whole stream. Results are
// bitwise identical to both Eval and BatchGate.
func (c *FHEContext) Stream(op GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return c.StreamEngine().StreamGate(op, a, b)
}

// StreamLUT applies the lookup table f (on {0..space-1}) to every
// ciphertext on the default streaming pipeline — the §IV-C PBS→KS sequence
// with the LUT encoded once and shared across the stream.
func (c *FHEContext) StreamLUT(cts []tfhe.LWECiphertext, space int, f func(int) int) []tfhe.LWECiphertext {
	return c.StreamEngine().StreamLUT(cts, space, f)
}

// EvalMultiLUT applies k lookup functions (each on {0..space-1}) to one
// encrypted message with a single multi-value bootstrap: the k tables
// pack into one test vector, one blind rotation serves them all, and
// out[j] is fs[j](m) at dimension n (keyswitched). Packing requires
// space·k ≤ N and shrinks the noise margin to 1/(4·space·k); with one
// table the result is bitwise identical to a plain LUT evaluation.
func (c *FHEContext) EvalMultiLUT(ct tfhe.LWECiphertext, space int, fs ...func(int) int) []tfhe.LWECiphertext {
	return c.Eval.EvalMultiLUTKS(ct, space, fs)
}

// BatchMultiLUT applies k lookup functions to every ciphertext on the
// default engine — one multi-value bootstrap per item, out[i][j] =
// fs[j](m_i).
func (c *FHEContext) BatchMultiLUT(cts []tfhe.LWECiphertext, space int, fs ...func(int) int) ([][]tfhe.LWECiphertext, error) {
	return c.Engine().BatchMultiLUT(cts, space, fs)
}

// StreamMultiLUT applies k lookup functions to every ciphertext on the
// default streaming pipeline: the packed test vector is encoded once for
// the stream, and the extract stage fans each rotation out into k fused
// PBS→KS outputs.
func (c *FHEContext) StreamMultiLUT(cts []tfhe.LWECiphertext, space int, fs ...func(int) int) ([][]tfhe.LWECiphertext, error) {
	return c.StreamEngine().StreamMultiLUT(cts, space, fs)
}

// EncryptBools encrypts a slice of booleans (±1/8 gate encoding).
func (c *FHEContext) EncryptBools(bs []bool) []tfhe.LWECiphertext {
	cts := make([]tfhe.LWECiphertext, len(bs))
	for i, b := range bs {
		cts[i] = c.EncryptBool(b)
	}
	return cts
}

// DecryptBools decrypts a slice of gate-encoded booleans.
func (c *FHEContext) DecryptBools(cts []tfhe.LWECiphertext) []bool {
	bs := make([]bool, len(cts))
	for i, ct := range cts {
		bs[i] = c.DecryptBool(ct)
	}
	return bs
}

// BatchGate applies one gate pairwise over two ciphertext slices on the
// default engine: out[i] = op(a[i], b[i]), all items in parallel.
func (c *FHEContext) BatchGate(op GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return c.Engine().BatchGate(op, a, b)
}

// EvalCircuit evaluates a dependency-free gate list over the input wires
// on the default engine, one output per gate.
func (c *FHEContext) EvalCircuit(inputs []tfhe.LWECiphertext, gates []Gate) ([]tfhe.LWECiphertext, error) {
	return c.Engine().EvalCircuit(inputs, gates)
}

// Circuit is a gate/LUT dataflow graph built with a CircuitBuilder; the
// scheduler levelizes it into engine batches (see Compile, RunCircuit).
type Circuit = sched.Circuit

// CircuitBuilder records a circuit node by node: inputs, free linear
// combinations, boolean gates, and PBS lookup tables.
type CircuitBuilder = sched.Builder

// Schedule is a compiled circuit: maximal dependency-free levels, each
// grouped into per-op / per-table dispatches with batch-vs-stream routing.
type Schedule = sched.Schedule

// ScheduleConfig tunes circuit compilation: the batch-vs-stream cost
// model threshold, or a forced routing mode.
type ScheduleConfig = sched.Config

// CircuitRunner executes schedules over a batch engine and a streaming
// engine, honoring each dispatch's cost-model routing.
type CircuitRunner = sched.Runner

// NewCircuitBuilder returns an empty circuit builder.
func NewCircuitBuilder() *CircuitBuilder { return sched.NewBuilder() }

// Compile levelizes a circuit into a schedule of engine dispatches.
func (c *FHEContext) Compile(circ *Circuit, cfg ScheduleConfig) (*Schedule, error) {
	return sched.Compile(circ, cfg)
}

// Runner returns a circuit runner over the context's default engines
// (building them on first use): short dispatches go to the flat batch
// pool, long ones to the streaming pipeline.
func (c *FHEContext) Runner() *CircuitRunner {
	return &sched.Runner{Batch: c.Engine(), Stream: c.StreamEngine()}
}

// RunCircuit compiles the circuit with the default cost model and
// executes it level by level on the default engines. Results are bitwise
// identical to evaluating the circuit node by node with Eval.
func (c *FHEContext) RunCircuit(circ *Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return c.Runner().Run(circ, ScheduleConfig{}, inputs)
}

// RunSchedule executes an already-compiled schedule on the default
// engines — the path for callers that run one circuit many times.
func (c *FHEContext) RunSchedule(circ *Circuit, s *Schedule, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return c.Runner().RunSchedule(circ, s, inputs)
}

// OptConfig selects the scheduler's optimizer passes (CSE, dead-node
// pruning, linear-chain folding, bootstrap fusion, multi-value packing).
type OptConfig = sched.OptConfig

// PassStat is one optimizer pass's accounting in Schedule stats.
type PassStat = sched.PassStat

// OptAll enables every optimizer pass with the default packing width.
func OptAll() OptConfig { return sched.OptAll() }

// Optimize runs the selected passes over a circuit without compiling
// it, returning the rewritten circuit and per-pass accounting. Most
// callers instead set ScheduleConfig.Opt and let Compile optimize.
func Optimize(circ *Circuit, opt OptConfig) (*Circuit, []PassStat, error) {
	return sched.Optimize(circ, opt)
}

// OptimizedConfig is the context's recommended optimizing compile
// configuration: every pass on, with the multi-value packing budget
// bound to the context's parameter set so packed groups always satisfy
// space·k ≤ N. Outputs of schedules compiled this way decode
// identically to the unoptimized circuit but are not bitwise identical.
func (c *FHEContext) OptimizedConfig() ScheduleConfig {
	opt := sched.OptAll()
	opt.MultiValueBudget = c.Params.N
	return ScheduleConfig{Opt: opt}
}

// RunCircuitOptimized is RunCircuit with the optimizer pass pipeline
// enabled under OptimizedConfig.
func (c *FHEContext) RunCircuitOptimized(circ *Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return c.Runner().Run(circ, c.OptimizedConfig(), inputs)
}

// ServiceConfig tunes the networked gate service (session bounds,
// backpressure, coalescing, and per-session streaming stage widths).
type ServiceConfig = server.Config

// GateService is the session-sharded FHE gate server: clients register
// evaluation keys over the wire and stream gate/LUT batches through
// per-session streaming engines. See NewGateService, Serve, and Dial.
type GateService = server.Server

// GateClient speaks the gate service's HTTP API for one client ID,
// shipping only evaluation keys and ciphertexts — secret keys stay with
// the caller.
type GateClient = server.Client

// SessionStore is the durable tier behind the gate service's warm
// session LRU: wire-encoded evaluation keys that survive eviction (and,
// with a DiskStore, restarts), keyed by client ID.
type SessionStore = server.SessionStore

// DiskStore is the crash-safe on-disk SessionStore: wire-codec key files
// plus a checksummed write-ahead log, replayed and repaired on open.
type DiskStore = server.DiskStore

// MemStore is the in-memory SessionStore: it survives warm-tier
// eviction but not a process restart.
type MemStore = server.MemStore

// APIError is the typed client-side form of a non-2xx gate-service
// response: machine-readable code, HTTP status, human message.
type APIError = server.APIError

// SessionInfo is one row of the gate service's session listing.
type SessionInfo = server.SessionInfo

// NewGateService builds a gate service. The zero ServiceConfig gives a
// 64-session LRU, 64 pending requests per session, and NumCPU rotate
// workers per session engine.
func NewGateService(cfg ServiceConfig) *GateService {
	return server.New(cfg)
}

// OpenGateService builds a gate service with durable key persistence:
// when cfg.Store is nil and cfg.DataDir is set, a DiskStore is opened
// (created, or crash-recovered) there. Sessions registered before a
// restart are served again without re-uploading keys, with bitwise-
// identical results.
func OpenGateService(cfg ServiceConfig) (*GateService, error) {
	return server.Open(cfg)
}

// OpenDiskStore opens (creating if needed) a crash-safe on-disk session
// store rooted at dir, replaying and repairing its write-ahead log.
func OpenDiskStore(dir string) (*DiskStore, error) {
	return server.OpenDiskStore(dir)
}

// NewMemStore returns an empty in-memory session store.
func NewMemStore() *MemStore {
	return server.NewMemStore()
}

// Serve runs the gate service's HTTP API on the listener until it fails
// or is closed — the server half of the client/server split (clients keep
// secret keys; the service holds only evaluation keys). The underlying
// http.Server carries connection timeouts so unauthenticated peers cannot
// park half-read bodies or idle connections indefinitely; the read
// timeout is generous because evaluation-key uploads are legitimately
// large (set IV is ~1.45 GB of base64). There is deliberately no write
// timeout: a response is only written after the FHE computation, which
// can itself take minutes on full-scale parameters.
func Serve(l net.Listener, srv *GateService) error {
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.Serve(l)
}

// ServeDrain runs the gate service's HTTP API on the listener until
// drain is closed, then shuts down gracefully: the service stops
// admitting work (healthz flips to draining, new requests get 503
// shutting_down), every in-flight request — including open group-commit
// streams — runs to completion, the session store is flushed and closed,
// and open connections are torn down. It returns nil after a clean
// drain, or the listener's error if serving failed first.
func ServeDrain(l net.Listener, srv *GateService, drain <-chan struct{}) error {
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-drain:
	}
	// Refuse new work and wait out in-flight requests before closing
	// connections, so every accepted request gets its response.
	drainErr := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	return drainErr
}

// Dial returns a client for the gate service at baseURL (e.g.
// "http://127.0.0.1:8475") acting as clientID. Register the context's
// evaluation keys with RegisterKey, then batch gates and LUTs remotely.
// The same client drives a single node or a Router front — the API
// surface is identical.
func Dial(baseURL, clientID string) *GateClient {
	return server.Dial(baseURL, clientID)
}

// EvalRequest is the versioned /v2/eval envelope: one frame for every
// batch evaluation (gate, LUT, multi-value LUT, circuit), selected by
// its Kind field.
type EvalRequest = server.EvalRequest

// EvalOpts carries the option surface of a v2 evaluation envelope, such
// as enabling the server-side optimizer pass pipeline for circuits.
type EvalOpts = server.EvalOpts

// Encrypted inference: the gate service serves a built-in cellCNN-style
// classifier as a first-class scenario (kind "infer" on /v2/eval).
// Clients encrypt each feature digit in the InferSpace PBS encoding,
// upload vector-major batches with GateClient.Infer, and decode the
// returned class scores in the same space; InferReference is the
// quantized cleartext golden model the encrypted path is
// conformance-pinned against, exhaustively over InferSweep.
const (
	// InferSpace is the PBS message space inference features and class
	// scores are encoded in.
	InferSpace = workload.InferSpace
	// InferFeatures is the flat feature-vector length of one inference.
	InferFeatures = workload.InferFeatures
	// InferClasses is the number of class scores per inference.
	InferClasses = workload.InferClasses
	// InferDigitMax is the largest admissible feature or score digit.
	InferDigitMax = workload.InferDigitMax
)

// BuildInferenceCircuit builds the inference model over batch feature
// vectors as a plain circuit — the same circuit the gate service
// executes for kind "infer" — for callers running it locally through
// the scheduler (inputs batch·InferFeatures wires vector-major, outputs
// batch·InferClasses score wires).
func BuildInferenceCircuit(batch int) (*Circuit, error) {
	return workload.BuildInferBatch(batch)
}

// InferReference computes the quantized cleartext class scores for one
// feature vector — what the encrypted scores must decode to.
func InferReference(features []int) ([]int, error) {
	return workload.InferReference(features)
}

// InferPredict returns the predicted class of a score vector: the
// argmax, lowest class on ties.
func InferPredict(scores []int) int { return workload.InferPredict(scores) }

// InferSweep enumerates the model's full input domain, in lexicographic
// order — small enough to pin encrypted inference exhaustively.
func InferSweep() [][]int { return workload.InferSweep() }

// RouterConfig tunes the routing tier: backend pool, health probing,
// ejection/re-admission thresholds, forward retries, and the
// cluster-wide admission cap.
type RouterConfig = router.Config

// Router is the cluster tier of the gate service: it consistent-hashes
// client sessions over a pool of gate-service nodes, health-checks the
// pool, retries idempotent forwards, and presents the same HTTP surface
// as a single node. See NewRouter and ServeRouter.
type Router = router.Router

// NewRouter builds a routing tier over the configured backend pool and
// starts its health probes.
func NewRouter(cfg RouterConfig) (*Router, error) {
	return router.New(cfg)
}

// ServeRouter runs the router's HTTP API on the listener until it fails
// or is closed. Timeouts match Serve: key uploads are large and routed
// evaluations can legitimately run for minutes.
func ServeRouter(l net.Listener, rt *Router) error {
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.Serve(l)
}

// ServeRouterDrain runs the router's HTTP API on the listener until
// drain is closed, then shuts down gracefully: new work is refused with
// the typed shutting_down code while every in-flight forward runs to
// completion on its backend. It returns nil after a clean drain, or the
// listener's error if serving failed first.
func ServeRouterDrain(l net.Listener, rt *Router, drain <-chan struct{}) error {
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-drain:
	}
	rt.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	<-errc
	rt.Close()
	return nil
}

// Accelerator wraps the Strix performance model and epoch scheduler.
type Accelerator struct {
	Config arch.Config
	Model  arch.Model
	Chip   arch.Chip
}

// NewAccelerator builds the default 8-HSC Strix for a parameter set.
func NewAccelerator(set string) (*Accelerator, error) {
	return NewAcceleratorWithConfig(arch.DefaultConfig(), set)
}

// NewAcceleratorWithConfig builds a Strix with a custom configuration.
func NewAcceleratorWithConfig(cfg arch.Config, set string) (*Accelerator, error) {
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		return nil, err
	}
	chip, err := arch.NewChip(cfg, p)
	if err != nil {
		return nil, err
	}
	return &Accelerator{Config: cfg, Model: chip.Model, Chip: chip}, nil
}

// ThroughputPBS returns sustained PBS/s.
func (a *Accelerator) ThroughputPBS() float64 { return a.Model.ThroughputPBS() }

// LatencyMs returns single-PBS latency in milliseconds.
func (a *Accelerator) LatencyMs() float64 { return a.Model.LatencySeconds() * 1e3 }

// RunPBS schedules count independent PBS+KS operations.
func (a *Accelerator) RunPBS(count int) (arch.WorkloadResult, error) {
	return a.Chip.RunPBS(count)
}

// RunLayers schedules dependent layers (e.g. a neural network).
func (a *Accelerator) RunLayers(layers []int) (arch.WorkloadResult, error) {
	return a.Chip.RunLayers(layers)
}

// RunExperiment regenerates one of the paper's tables/figures by ID
// (see ExperimentIDs).
func RunExperiment(id string) (experiments.Report, error) {
	return experiments.Run(id)
}

// ExperimentIDs lists the available experiment IDs.
func ExperimentIDs() []string { return experiments.IDs() }

// Version is the library version.
const Version = "1.0.0"
