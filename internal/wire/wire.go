package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Magic is the four-byte tag ("STRX", little-endian) that starts every
// encoded object.
const Magic uint32 = 0x58525453

// Version is the current format version. Decoders reject any other value,
// so the format can evolve without silent misreads.
const Version byte = 1

// Kind tags the object type in the header.
type Kind byte

// The object kinds of format version 1.
const (
	KindParams  Kind = 1 // a tfhe.Params parameter set
	KindLWE     Kind = 2 // an LWE ciphertext
	KindGLWE    Kind = 3 // a GLWE ciphertext
	KindEvalKey Kind = 4 // evaluation keys (BSK + KSK)
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindParams:
		return "Params"
	case KindLWE:
		return "LWE"
	case KindGLWE:
		return "GLWE"
	case KindEvalKey:
		return "EvalKey"
	}
	return fmt.Sprintf("Kind(%d)", byte(k))
}

// Decoder sanity limits. They reject obviously hostile dimensions before
// any allocation is sized from attacker-controlled lengths; every
// legitimate parameter set (Table IV sets I–IV and the test set) is far
// inside them.
const (
	// MaxName bounds the parameter-set name length.
	MaxName = 32
	// MaxPolyDegree bounds the GLWE polynomial degree N.
	MaxPolyDegree = 1 << 20
	// MaxMaskLen bounds the GLWE mask length k.
	MaxMaskLen = 64
	// MaxLWEDim bounds LWE mask lengths (both n and the extracted k·N).
	MaxLWEDim = 1 << 26
)

// headerSize is the encoded size of the common object header: magic u32,
// version u8, kind u8, reserved u16 (zero).
const headerSize = 8

// appendHeader appends the version-1 object header for kind k.
func appendHeader(dst []byte, k Kind) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = append(dst, Version, byte(k), 0, 0)
	return dst
}

// reader is a bounds-checked little-endian cursor over an input buffer.
// The first failure latches into err; subsequent reads return zero values,
// so decode paths can run straight-line and check the error once.
type reader struct {
	buf []byte
	off int
	err error
}

// failf latches the first error.
func (r *reader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

// remaining returns the number of unread bytes.
func (r *reader) remaining() int { return len(r.buf) - r.off }

// need checks that n more bytes are available.
func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || r.remaining() < n {
		r.failf("truncated input: need %d bytes at offset %d, have %d", n, r.off, r.remaining())
		return false
	}
	return true
}

// u8 reads one byte.
func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// u16 reads a little-endian uint16.
func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// u32 reads a little-endian uint32.
func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// f64 reads a little-endian IEEE-754 double.
func (r *reader) f64() float64 {
	if !r.need(8) {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// bytes reads n raw bytes (aliasing the input buffer).
func (r *reader) bytes(n int) []byte {
	if !r.need(n) {
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// header reads and checks the common object header for the wanted kind.
func (r *reader) header(want Kind) {
	if !r.need(headerSize) {
		return
	}
	if m := r.u32(); m != Magic {
		r.failf("bad magic 0x%08x, want 0x%08x", m, Magic)
		return
	}
	if v := r.u8(); v != Version {
		r.failf("unsupported format version %d, want %d", v, Version)
		return
	}
	if k := Kind(r.u8()); k != want {
		r.failf("object kind %s, want %s", k, want)
		return
	}
	if res := r.u16(); res != 0 {
		r.failf("nonzero reserved header field 0x%04x", res)
	}
}

// done returns the latched error, or an error if unread bytes remain —
// trailing garbage is a framing bug, not noise to ignore.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if n := r.remaining(); n != 0 {
		return fmt.Errorf("wire: %d trailing bytes after object", n)
	}
	return nil
}
