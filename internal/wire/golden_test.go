package wire

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tfhe"
)

// update regenerates testdata/golden.json from the current implementation:
//
//	go test ./internal/wire -run TestGoldenVectors -update
//
// Only do this after convincing yourself the crypto change is intentional;
// the whole point of the fixture is that these digests do NOT move.
var update = flag.Bool("update", false, "rewrite the golden vector fixture")

// goldenVector is one seeded known-answer tuple: parameters + plaintext in,
// digests of the fresh ciphertexts and of the post-bootstrap (gate) outputs.
// The digests are SHA-256 over the canonical wire encoding, so they lock
// key generation, encryption, the full PBS+KS gate pipeline, and the codec
// itself against silent regressions.
type goldenVector struct {
	Set                 string `json:"set"`
	Seed                int64  `json:"seed"`
	Bits                []bool `json:"bits"`
	Gate                string `json:"gate"`
	CiphertextDigest    string `json:"ciphertext_digest"`
	PostBootstrapDigest string `json:"post_bootstrap_digest"`
}

// goldenFile is the fixture layout.
type goldenFile struct {
	Comment string         `json:"comment"`
	Vectors []goldenVector `json:"vectors"`
}

// goldenSeeds are the (set, seed, bits) tuples the fixture pins. Keygen for
// set I costs ~200ms, so one full-scale vector is enough.
var goldenSeeds = []goldenVector{
	{Set: "test", Seed: 42, Gate: "NAND", Bits: []bool{true, false, true, true, false, false, true, false}},
	{Set: "test", Seed: 1337, Gate: "NAND", Bits: []bool{false, true, true, false}},
	{Set: "I", Seed: 42, Gate: "NAND", Bits: []bool{true, true, false, false}},
}

// computeGolden runs the seeded pipeline of one vector and fills in its
// digests, failing the test if the gates do not even decrypt correctly
// (a broken pipeline must not mint a "golden" digest).
func computeGolden(t *testing.T, v goldenVector) goldenVector {
	t.Helper()
	p, err := tfhe.ParamsByName(v.Set)
	if err != nil {
		t.Fatalf("set %s: %v", v.Set, err)
	}
	rng := rand.New(rand.NewSource(v.Seed))
	sk, ek := tfhe.GenerateKeys(rng, p)
	cts := make([]tfhe.LWECiphertext, len(v.Bits))
	for i, b := range v.Bits {
		cts[i] = sk.EncryptBool(rng, b)
	}
	v.CiphertextDigest = DigestLWEs(cts)

	ev := tfhe.NewEvaluator(ek)
	outs := make([]tfhe.LWECiphertext, len(cts))
	for i := range cts {
		j := (i + 1) % len(cts)
		outs[i] = ev.NAND(cts[i], cts[j])
		want := !(v.Bits[i] && v.Bits[j])
		if got := sk.DecryptBool(outs[i]); got != want {
			t.Fatalf("set %s seed %d: NAND(bit %d, bit %d) decrypted to %v, want %v", v.Set, v.Seed, i, j, got, want)
		}
	}
	v.PostBootstrapDigest = DigestLWEs(outs)
	return v
}

// TestGoldenVectors locks the crypto core against silent regressions: the
// seeded (params, plaintext, ciphertext-digest, post-bootstrap-digest)
// tuples in testdata/golden.json must reproduce bit-for-bit. A mismatch
// means key generation, encryption, the gate PBS pipeline, or the wire
// encoding changed behaviour — run with -update only if that was the point.
func TestGoldenVectors(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")

	if *update {
		out := goldenFile{
			Comment: "Seeded known-answer vectors for the TFHE core. Regenerate with: go test ./internal/wire -run TestGoldenVectors -update",
		}
		for _, seed := range goldenSeeds {
			out.Vectors = append(out.Vectors, computeGolden(t, seed))
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d vectors", path, len(out.Vectors))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (generate with -update): %v", err)
	}
	var fixture goldenFile
	if err := json.Unmarshal(data, &fixture); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	if len(fixture.Vectors) == 0 {
		t.Fatal("golden fixture has no vectors")
	}
	for _, want := range fixture.Vectors {
		got := computeGolden(t, want)
		if got.CiphertextDigest != want.CiphertextDigest {
			t.Errorf("set %s seed %d: ciphertext digest drifted:\n  got  %s\n  want %s",
				want.Set, want.Seed, got.CiphertextDigest, want.CiphertextDigest)
		}
		if got.PostBootstrapDigest != want.PostBootstrapDigest {
			t.Errorf("set %s seed %d: post-bootstrap digest drifted:\n  got  %s\n  want %s",
				want.Set, want.Seed, got.PostBootstrapDigest, want.PostBootstrapDigest)
		}
	}
}
