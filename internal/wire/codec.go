package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/tfhe"
	"repro/internal/torus"
)

// ---------------------------------------------------------------------------
// Sizes

// LWESize returns the encoded size of an LWE ciphertext of mask length n.
func LWESize(n int) int { return headerSize + 4 + 4*(n+1) }

// GLWESize returns the encoded size of a GLWE ciphertext with mask length
// k and polynomial degree n.
func GLWESize(k, n int) int { return headerSize + 8 + 4*(k+1)*n }

// ParamsSize returns the encoded size of a parameter set.
func ParamsSize(p tfhe.Params) int { return headerSize + paramsPayloadSize(p) }

// paramsPayloadSize is the header-less parameter payload size: name length
// byte + name + eight u32 fields + two f64 noise parameters.
func paramsPayloadSize(p tfhe.Params) int { return 1 + len(p.Name) + 8*4 + 2*8 }

// EvalKeySize returns the encoded size of the evaluation keys for a
// parameter set. The second return is false if the dimensions overflow a
// size computation (possible only for hostile parameter values, never for
// the shipped sets).
func EvalKeySize(p tfhe.Params) (int64, bool) {
	bsk, ok1 := bskBytes(p)
	ksk, ok2 := kskBytes(p)
	if !ok1 || !ok2 {
		return 0, false
	}
	return int64(headerSize+paramsPayloadSize(p)) + bsk + ksk, true
}

// mulSize multiplies non-negative sizes with overflow detection.
func mulSize(a, b int64) (int64, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	if a > math.MaxInt64/b {
		return 0, false
	}
	return a * b, true
}

// bskBytes is the encoded size of the Fourier-domain bootstrapping key:
// n·(k+1)·lb·(k+1) polynomials of N/2 complex values, 16 bytes each.
func bskBytes(p tfhe.Params) (int64, bool) {
	size := int64(1)
	for _, f := range []int64{int64(p.SmallN), int64(p.K + 1), int64(p.PBSLevel), int64(p.K + 1), int64(p.N / 2), 16} {
		var ok bool
		if size, ok = mulSize(size, f); !ok {
			return 0, false
		}
	}
	return size, true
}

// kskBytes is the encoded size of the keyswitching key: k·N·lk LWE
// ciphertexts of dimension n, stored raw (no per-ciphertext headers).
func kskBytes(p tfhe.Params) (int64, bool) {
	size := int64(1)
	for _, f := range []int64{int64(p.ExtractedN()), int64(p.KSLevel), int64(p.SmallN + 1), 4} {
		var ok bool
		if size, ok = mulSize(size, f); !ok {
			return 0, false
		}
	}
	return size, true
}

// ---------------------------------------------------------------------------
// Parameter sets

// MarshalParams encodes a parameter set.
func MarshalParams(p tfhe.Params) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Name) > MaxName {
		return nil, fmt.Errorf("wire: parameter set name %q longer than %d bytes", p.Name, MaxName)
	}
	dst := make([]byte, 0, ParamsSize(p))
	dst = appendHeader(dst, KindParams)
	return appendParamsPayload(dst, p), nil
}

// appendParamsPayload appends the header-less parameter payload.
func appendParamsPayload(dst []byte, p tfhe.Params) []byte {
	dst = append(dst, byte(len(p.Name)))
	dst = append(dst, p.Name...)
	for _, v := range []int{p.N, p.K, p.SmallN, p.PBSLevel, p.Security, p.PBSBaseLog, p.KSLevel, p.KSBaseLog} {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.LWEStdDev))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.GLWEStdDev))
	return dst
}

// UnmarshalParams decodes a parameter set, rejecting anything that fails
// tfhe.Params.Validate or exceeds the decoder limits.
func UnmarshalParams(data []byte) (tfhe.Params, error) {
	r := &reader{buf: data}
	r.header(KindParams)
	p := decodeParamsPayload(r)
	if err := r.done(); err != nil {
		return tfhe.Params{}, err
	}
	return p, nil
}

// decodeParamsPayload decodes and validates the header-less parameter
// payload at the reader's cursor.
func decodeParamsPayload(r *reader) tfhe.Params {
	nameLen := int(r.u8())
	if nameLen > MaxName {
		r.failf("parameter set name length %d exceeds %d", nameLen, MaxName)
		return tfhe.Params{}
	}
	name := r.bytes(nameLen)
	var p tfhe.Params
	p.Name = string(name)
	fields := []*int{&p.N, &p.K, &p.SmallN, &p.PBSLevel, &p.Security, &p.PBSBaseLog, &p.KSLevel, &p.KSBaseLog}
	for _, f := range fields {
		*f = int(r.u32())
	}
	p.LWEStdDev = r.f64()
	p.GLWEStdDev = r.f64()
	if r.err != nil {
		return tfhe.Params{}
	}
	switch {
	case p.N > MaxPolyDegree:
		r.failf("polynomial degree %d exceeds %d", p.N, MaxPolyDegree)
	case p.K > MaxMaskLen:
		r.failf("GLWE mask length %d exceeds %d", p.K, MaxMaskLen)
	case p.SmallN > MaxLWEDim:
		r.failf("LWE dimension %d exceeds %d", p.SmallN, MaxLWEDim)
	case !finite(p.LWEStdDev) || !finite(p.GLWEStdDev):
		r.failf("non-finite noise stddev")
	default:
		if err := p.Validate(); err != nil {
			r.failf("invalid parameters: %v", err)
		} else if p.K*p.N > MaxLWEDim {
			r.failf("extracted dimension %d exceeds %d", p.K*p.N, MaxLWEDim)
		}
	}
	if r.err != nil {
		return tfhe.Params{}
	}
	return p
}

// finite reports whether f is neither NaN nor infinite.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// ---------------------------------------------------------------------------
// LWE ciphertexts

// MarshalLWE encodes an LWE ciphertext (any mask length).
func MarshalLWE(ct tfhe.LWECiphertext) []byte {
	dst := make([]byte, 0, LWESize(ct.N()))
	dst = appendHeader(dst, KindLWE)
	return appendLWEPayload(dst, ct)
}

// appendLWEPayload appends the mask length, mask, and body.
func appendLWEPayload(dst []byte, ct tfhe.LWECiphertext) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ct.N()))
	for _, a := range ct.A {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a))
	}
	return binary.LittleEndian.AppendUint32(dst, uint32(ct.B))
}

// UnmarshalLWE decodes an LWE ciphertext.
func UnmarshalLWE(data []byte) (tfhe.LWECiphertext, error) {
	r := &reader{buf: data}
	r.header(KindLWE)
	ct := decodeLWEPayload(r)
	if err := r.done(); err != nil {
		return tfhe.LWECiphertext{}, err
	}
	return ct, nil
}

// decodeLWEPayload decodes the length-prefixed ciphertext at the cursor.
func decodeLWEPayload(r *reader) tfhe.LWECiphertext {
	n := int(r.u32())
	if n > MaxLWEDim {
		r.failf("LWE dimension %d exceeds %d", n, MaxLWEDim)
	}
	if !r.need(4 * (n + 1)) {
		return tfhe.LWECiphertext{}
	}
	ct := tfhe.NewLWECiphertext(n)
	readTorusInto(r, ct.A)
	ct.B = torus.Torus32(r.u32())
	return ct
}

// readTorusInto fills dst from the cursor. The caller has already
// bounds-checked the whole run.
func readTorusInto(r *reader, dst []torus.Torus32) {
	raw := r.bytes(4 * len(dst))
	if raw == nil {
		return
	}
	for i := range dst {
		dst[i] = torus.Torus32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
}

// ---------------------------------------------------------------------------
// GLWE ciphertexts

// MarshalGLWE encodes a GLWE ciphertext. All component polynomials must
// share one degree.
func MarshalGLWE(ct tfhe.GLWECiphertext) ([]byte, error) {
	if len(ct.Polys) == 0 {
		return nil, fmt.Errorf("wire: cannot marshal empty GLWE ciphertext")
	}
	n := ct.PolyN()
	for i, p := range ct.Polys {
		if p.N() != n {
			return nil, fmt.Errorf("wire: GLWE component %d has degree %d, want %d", i, p.N(), n)
		}
	}
	dst := make([]byte, 0, GLWESize(ct.K(), n))
	dst = appendHeader(dst, KindGLWE)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ct.K()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for _, p := range ct.Polys {
		for _, c := range p.Coeffs {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(c))
		}
	}
	return dst, nil
}

// UnmarshalGLWE decodes a GLWE ciphertext. The polynomial degree must be a
// power of two >= 4 (the invariant every transform layer assumes).
func UnmarshalGLWE(data []byte) (tfhe.GLWECiphertext, error) {
	r := &reader{buf: data}
	r.header(KindGLWE)
	k := int(r.u32())
	n := int(r.u32())
	switch {
	case r.err != nil:
	case k < 0 || k > MaxMaskLen:
		r.failf("GLWE mask length %d exceeds %d", k, MaxMaskLen)
	case n < 4 || n > MaxPolyDegree || n&(n-1) != 0:
		r.failf("GLWE polynomial degree %d is not a power of two in [4, %d]", n, MaxPolyDegree)
	}
	if r.err == nil && !r.need(4*(k+1)*n) {
		return tfhe.GLWECiphertext{}, r.err
	}
	if r.err != nil {
		return tfhe.GLWECiphertext{}, r.err
	}
	ct := tfhe.NewGLWECiphertext(k, n)
	for _, p := range ct.Polys {
		readTorusInto(r, p.Coeffs)
	}
	if err := r.done(); err != nil {
		return tfhe.GLWECiphertext{}, err
	}
	return ct, nil
}

// ---------------------------------------------------------------------------
// Evaluation keys

// MarshalEvalKey encodes the evaluation keys: the parameter payload,
// followed by the Fourier-domain BSK and the raw KSK, both with shapes
// fully determined by the parameters (no per-object framing).
func MarshalEvalKey(ek tfhe.EvaluationKeys) ([]byte, error) {
	if err := ek.Validate(); err != nil {
		return nil, err
	}
	if len(ek.Params.Name) > MaxName {
		return nil, fmt.Errorf("wire: parameter set name %q longer than %d bytes", ek.Params.Name, MaxName)
	}
	size, ok := EvalKeySize(ek.Params)
	if !ok {
		return nil, fmt.Errorf("wire: evaluation key size overflows for set %q", ek.Params.Name)
	}
	dst := make([]byte, 0, size)
	dst = appendHeader(dst, KindEvalKey)
	dst = appendParamsPayload(dst, ek.Params)
	for _, g := range ek.BSK {
		for _, rows := range g.Rows {
			for _, row := range rows {
				for _, fp := range row {
					for _, c := range fp {
						dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(c)))
						dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(c)))
					}
				}
			}
		}
	}
	for _, levels := range ek.KSK {
		for _, ct := range levels {
			dst = appendLWEBody(dst, ct)
		}
	}
	return dst, nil
}

// appendLWEBody appends an LWE ciphertext without length prefix (the
// dimension is implied by the parameter set).
func appendLWEBody(dst []byte, ct tfhe.LWECiphertext) []byte {
	for _, a := range ct.A {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a))
	}
	return binary.LittleEndian.AppendUint32(dst, uint32(ct.B))
}

// UnmarshalEvalKey decodes evaluation keys. The parameter payload is
// validated first and the exact remaining byte count is checked against
// the shapes it dictates before any key storage is allocated, so hostile
// headers cannot trigger large allocations.
func UnmarshalEvalKey(data []byte) (tfhe.EvaluationKeys, error) {
	r := &reader{buf: data}
	r.header(KindEvalKey)
	p := decodeParamsPayload(r)
	if r.err != nil {
		return tfhe.EvaluationKeys{}, r.err
	}
	bsk, ok1 := bskBytes(p)
	ksk, ok2 := kskBytes(p)
	if !ok1 || !ok2 {
		return tfhe.EvaluationKeys{}, fmt.Errorf("wire: evaluation key size overflows for set %q", p.Name)
	}
	if want, have := bsk+ksk, int64(r.remaining()); want != have {
		return tfhe.EvaluationKeys{}, fmt.Errorf("wire: evaluation key payload is %d bytes, want %d for set %q", have, want, p.Name)
	}

	ek := tfhe.EvaluationKeys{Params: p}
	m := p.N / 2
	ek.BSK = make([]tfhe.GGSWFourier, p.SmallN)
	for i := range ek.BSK {
		rows := make([][][]fft.FourierPoly, p.K+1)
		for j := range rows {
			rows[j] = make([][]fft.FourierPoly, p.PBSLevel)
			for l := range rows[j] {
				row := make([]fft.FourierPoly, p.K+1)
				for c := range row {
					fp, err := readFourierPoly(r, m)
					if err != nil {
						return tfhe.EvaluationKeys{}, err
					}
					row[c] = fp
				}
				rows[j][l] = row
			}
		}
		ek.BSK[i] = tfhe.GGSWFourier{Rows: rows}
	}

	big := p.ExtractedN()
	ek.KSK = make([][]tfhe.LWECiphertext, big)
	for j := range ek.KSK {
		ek.KSK[j] = make([]tfhe.LWECiphertext, p.KSLevel)
		for l := range ek.KSK[j] {
			ct := tfhe.NewLWECiphertext(p.SmallN)
			readTorusInto(r, ct.A)
			ct.B = torus.Torus32(r.u32())
			ek.KSK[j][l] = ct
		}
	}
	if err := r.done(); err != nil {
		return tfhe.EvaluationKeys{}, err
	}
	if err := ek.Validate(); err != nil {
		return tfhe.EvaluationKeys{}, fmt.Errorf("wire: decoded key fails validation: %v", err)
	}
	return ek, nil
}

// readFourierPoly decodes one Fourier polynomial of m complex values,
// rejecting non-finite coefficients (they would silently poison every
// external product computed with the key).
func readFourierPoly(r *reader, m int) (fft.FourierPoly, error) {
	raw := r.bytes(16 * m)
	if raw == nil {
		return nil, r.err
	}
	fp := make(fft.FourierPoly, m)
	for i := 0; i < m; i++ {
		re := math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i+8:]))
		if !finite(re) || !finite(im) {
			return nil, fmt.Errorf("wire: non-finite Fourier coefficient in bootstrapping key")
		}
		fp[i] = complex(re, im)
	}
	return fp, nil
}

// ---------------------------------------------------------------------------
// encoding.BinaryMarshaler wrappers

// LWE wraps an LWE ciphertext as a standard BinaryMarshaler/Unmarshaler.
type LWE struct{ Ct tfhe.LWECiphertext }

// MarshalBinary implements encoding.BinaryMarshaler.
func (w LWE) MarshalBinary() ([]byte, error) { return MarshalLWE(w.Ct), nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (w *LWE) UnmarshalBinary(data []byte) error {
	ct, err := UnmarshalLWE(data)
	if err != nil {
		return err
	}
	w.Ct = ct
	return nil
}

// GLWE wraps a GLWE ciphertext as a standard BinaryMarshaler/Unmarshaler.
type GLWE struct{ Ct tfhe.GLWECiphertext }

// MarshalBinary implements encoding.BinaryMarshaler.
func (w GLWE) MarshalBinary() ([]byte, error) { return MarshalGLWE(w.Ct) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (w *GLWE) UnmarshalBinary(data []byte) error {
	ct, err := UnmarshalGLWE(data)
	if err != nil {
		return err
	}
	w.Ct = ct
	return nil
}

// ParamSet wraps a parameter set as a standard BinaryMarshaler/Unmarshaler.
type ParamSet struct{ Params tfhe.Params }

// MarshalBinary implements encoding.BinaryMarshaler.
func (w ParamSet) MarshalBinary() ([]byte, error) { return MarshalParams(w.Params) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (w *ParamSet) UnmarshalBinary(data []byte) error {
	p, err := UnmarshalParams(data)
	if err != nil {
		return err
	}
	w.Params = p
	return nil
}

// EvalKey wraps evaluation keys as a standard BinaryMarshaler/Unmarshaler.
type EvalKey struct{ Keys tfhe.EvaluationKeys }

// MarshalBinary implements encoding.BinaryMarshaler.
func (w EvalKey) MarshalBinary() ([]byte, error) { return MarshalEvalKey(w.Keys) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (w *EvalKey) UnmarshalBinary(data []byte) error {
	ek, err := UnmarshalEvalKey(data)
	if err != nil {
		return err
	}
	w.Keys = ek
	return nil
}

// ---------------------------------------------------------------------------
// Digests

// Digest returns the hex SHA-256 of data — the fingerprint primitive of
// the golden known-answer vectors.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// DigestLWE returns the hex SHA-256 of the canonical encoding of ct.
func DigestLWE(ct tfhe.LWECiphertext) string { return Digest(MarshalLWE(ct)) }

// DigestLWEs returns the hex SHA-256 of the concatenated canonical
// encodings of cts — one fingerprint for a whole ciphertext batch.
func DigestLWEs(cts []tfhe.LWECiphertext) string {
	h := sha256.New()
	for _, ct := range cts {
		h.Write(MarshalLWE(ct))
	}
	return hex.EncodeToString(h.Sum(nil))
}
