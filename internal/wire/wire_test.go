package wire

import (
	"bytes"
	"encoding"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/tfhe"
	"repro/internal/torus"
)

// roundTripSets are the parameter sets the bitwise round-trip properties
// are checked on: the fast test set and the full-scale set I baseline.
var roundTripSets = []string{"test", "I"}

// keyCache shares one generated key set per parameter set across the
// package's tests (set I keygen is ~200ms; no reason to pay it per test).
var keyCache sync.Map

type keyPair struct {
	sk tfhe.SecretKeys
	ek tfhe.EvaluationKeys
}

// testKeys returns deterministic keys for the named set, generated once.
func testKeys(t *testing.T, set string) (tfhe.SecretKeys, tfhe.EvaluationKeys) {
	t.Helper()
	if v, ok := keyCache.Load(set); ok {
		kp := v.(keyPair)
		return kp.sk, kp.ek
	}
	p, err := tfhe.ParamsByName(set)
	if err != nil {
		t.Fatalf("ParamsByName(%q): %v", set, err)
	}
	sk, ek := tfhe.GenerateKeys(rand.New(rand.NewSource(1)), p)
	keyCache.Store(set, keyPair{sk, ek})
	return sk, ek
}

func TestParamsRoundTrip(t *testing.T) {
	for _, p := range append(tfhe.StandardSets(), tfhe.ParamsTest) {
		data, err := MarshalParams(p)
		if err != nil {
			t.Fatalf("MarshalParams(%s): %v", p.Name, err)
		}
		if len(data) != ParamsSize(p) {
			t.Errorf("set %s: encoded %d bytes, ParamsSize says %d", p.Name, len(data), ParamsSize(p))
		}
		got, err := UnmarshalParams(data)
		if err != nil {
			t.Fatalf("UnmarshalParams(%s): %v", p.Name, err)
		}
		if got != p {
			t.Errorf("set %s: round trip changed params: got %+v", p.Name, got)
		}
	}
}

func TestLWERoundTrip(t *testing.T) {
	for _, set := range roundTripSets {
		sk, _ := testKeys(t, set)
		rng := rand.New(rand.NewSource(7))
		cts := []tfhe.LWECiphertext{
			sk.EncryptBool(rng, true),
			sk.EncryptBool(rng, false),
			sk.LWE.Encrypt(rng, torus.FromFloat(0.25), sk.Params.LWEStdDev),
			// Big-key dimension (post-extraction), exercising n = k·N.
			sk.BigLWE.Encrypt(rng, torus.FromFloat(0.125), sk.Params.GLWEStdDev),
			tfhe.NewLWECiphertext(0), // zero-dimension edge
		}
		for i, ct := range cts {
			data := MarshalLWE(ct)
			if len(data) != LWESize(ct.N()) {
				t.Errorf("set %s ct %d: encoded %d bytes, LWESize says %d", set, i, len(data), LWESize(ct.N()))
			}
			got, err := UnmarshalLWE(data)
			if err != nil {
				t.Fatalf("set %s ct %d: UnmarshalLWE: %v", set, i, err)
			}
			if !reflect.DeepEqual(got, ct) {
				t.Errorf("set %s ct %d: round trip not bitwise identical", set, i)
			}
		}
	}
}

func TestGLWERoundTrip(t *testing.T) {
	for _, set := range roundTripSets {
		sk, _ := testKeys(t, set)
		rng := rand.New(rand.NewSource(9))
		p := sk.Params
		cts := []tfhe.GLWECiphertext{
			sk.GLWE.EncryptZero(rng, p.GLWEStdDev),
			tfhe.NewGLWECiphertext(p.K, p.N),
		}
		// A dense random ciphertext (every coefficient significant).
		dense := tfhe.NewGLWECiphertext(p.K, p.N)
		for _, pol := range dense.Polys {
			for j := range pol.Coeffs {
				pol.Coeffs[j] = torus.Torus32(rng.Uint32())
			}
		}
		cts = append(cts, dense)
		for i, ct := range cts {
			data, err := MarshalGLWE(ct)
			if err != nil {
				t.Fatalf("set %s ct %d: MarshalGLWE: %v", set, i, err)
			}
			if len(data) != GLWESize(ct.K(), ct.PolyN()) {
				t.Errorf("set %s ct %d: encoded %d bytes, GLWESize says %d", set, i, len(data), GLWESize(ct.K(), ct.PolyN()))
			}
			got, err := UnmarshalGLWE(data)
			if err != nil {
				t.Fatalf("set %s ct %d: UnmarshalGLWE: %v", set, i, err)
			}
			if !reflect.DeepEqual(got, ct) {
				t.Errorf("set %s ct %d: round trip not bitwise identical", set, i)
			}
		}
	}
}

func TestEvalKeyRoundTrip(t *testing.T) {
	for _, set := range roundTripSets {
		_, ek := testKeys(t, set)
		data, err := MarshalEvalKey(ek)
		if err != nil {
			t.Fatalf("set %s: MarshalEvalKey: %v", set, err)
		}
		if size, ok := EvalKeySize(ek.Params); !ok || int64(len(data)) != size {
			t.Errorf("set %s: encoded %d bytes, EvalKeySize says %d (ok=%v)", set, len(data), size, ok)
		}
		got, err := UnmarshalEvalKey(data)
		if err != nil {
			t.Fatalf("set %s: UnmarshalEvalKey: %v", set, err)
		}
		if !reflect.DeepEqual(got, ek) {
			t.Fatalf("set %s: eval key round trip not bitwise identical", set)
		}
	}
}

// TestEvalKeyDecodedIsFunctional runs a real gate through an evaluator
// built from a decoded key: the decoded key must not just compare equal,
// it must compute.
func TestEvalKeyDecodedIsFunctional(t *testing.T) {
	sk, ek := testKeys(t, "test")
	data, err := MarshalEvalKey(ek)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalEvalKey(data)
	if err != nil {
		t.Fatal(err)
	}
	ev := tfhe.NewEvaluator(decoded)
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ a, b bool }{{true, true}, {true, false}, {false, true}, {false, false}} {
		ca, cb := sk.EncryptBool(rng, tc.a), sk.EncryptBool(rng, tc.b)
		if got := sk.DecryptBool(ev.NAND(ca, cb)); got != !(tc.a && tc.b) {
			t.Errorf("NAND(%v,%v) decrypted to %v via decoded key", tc.a, tc.b, got)
		}
	}
}

func TestBinaryMarshalerWrappers(t *testing.T) {
	sk, ek := testKeys(t, "test")
	rng := rand.New(rand.NewSource(5))

	// Compile-time interface checks.
	var (
		_ encoding.BinaryMarshaler   = LWE{}
		_ encoding.BinaryUnmarshaler = &LWE{}
		_ encoding.BinaryMarshaler   = GLWE{}
		_ encoding.BinaryUnmarshaler = &GLWE{}
		_ encoding.BinaryMarshaler   = ParamSet{}
		_ encoding.BinaryUnmarshaler = &ParamSet{}
		_ encoding.BinaryMarshaler   = EvalKey{}
		_ encoding.BinaryUnmarshaler = &EvalKey{}
	)

	ct := sk.EncryptBool(rng, true)
	data, err := LWE{Ct: ct}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var lw LWE
	if err := lw.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lw.Ct, ct) {
		t.Error("LWE wrapper round trip mismatch")
	}

	var ps ParamSet
	data, err = ParamSet{Params: ek.Params}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if ps.Params != ek.Params {
		t.Error("ParamSet wrapper round trip mismatch")
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	sk, ek := testKeys(t, "test")
	rng := rand.New(rand.NewSource(11))
	lwe := MarshalLWE(sk.EncryptBool(rng, true))
	params, err := MarshalParams(ek.Params)
	if err != nil {
		t.Fatal(err)
	}
	evk, err := MarshalEvalKey(ek)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(data []byte, off int, b byte) []byte {
		c := bytes.Clone(data)
		c[off] = b
		return c
	}

	cases := []struct {
		name string
		fn   func([]byte) error
		data []byte
	}{
		{"lwe empty", unLWE, nil},
		{"lwe bad magic", unLWE, corrupt(lwe, 0, 'X')},
		{"lwe bad version", unLWE, corrupt(lwe, 4, 99)},
		{"lwe wrong kind", unLWE, corrupt(lwe, 5, byte(KindGLWE))},
		{"lwe reserved set", unLWE, corrupt(lwe, 6, 1)},
		{"lwe truncated", unLWE, lwe[:len(lwe)-1]},
		{"lwe trailing", unLWE, append(bytes.Clone(lwe), 0)},
		{"lwe huge dim", unLWE, corrupt(lwe, headerSize+3, 0xff)},
		{"params truncated", unParams, params[:len(params)-1]},
		{"params wrong kind", unParams, corrupt(params, 5, byte(KindLWE))},
		{"glwe as lwe kind", unGLWE, corrupt(lwe, 5, byte(KindGLWE))},
		{"evalkey truncated header", unEK, evk[:headerSize-2]},
		{"evalkey truncated payload", unEK, evk[:len(evk)-4]},
		{"evalkey trailing", unEK, append(bytes.Clone(evk), 0)},
		{"evalkey wrong kind", unEK, corrupt(evk, 5, byte(KindLWE))},
	}

	// A parameter set that fails Validate inside an otherwise well-formed
	// params object (N not a power of two).
	badParams := ek.Params
	badParams.N = 300
	badData := appendParamsPayload(appendHeader(nil, KindParams), badParams)
	cases = append(cases, struct {
		name string
		fn   func([]byte) error
		data []byte
	}{"params invalid N", unParams, badData})

	// Non-finite noise stddev.
	nanParams := ek.Params
	nanParams.LWEStdDev = math.NaN()
	nanData := appendParamsPayload(appendHeader(nil, KindParams), nanParams)
	cases = append(cases, struct {
		name string
		fn   func([]byte) error
		data []byte
	}{"params NaN stddev", unParams, nanData})

	// A non-finite Fourier coefficient inside the BSK: NaN has all-ones
	// exponent; overwrite the first coefficient's bytes.
	nanKey := bytes.Clone(evk)
	off := headerSize + paramsPayloadSize(ek.Params)
	for i := 0; i < 8; i++ {
		nanKey[off+i] = 0xff
	}
	cases = append(cases, struct {
		name string
		fn   func([]byte) error
		data []byte
	}{"evalkey NaN coefficient", unEK, nanKey})

	for _, tc := range cases {
		if err := tc.fn(tc.data); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}

// Adapters so the malformed-input table can mix object kinds.
func unLWE(data []byte) error    { _, err := UnmarshalLWE(data); return err }
func unGLWE(data []byte) error   { _, err := UnmarshalGLWE(data); return err }
func unParams(data []byte) error { _, err := UnmarshalParams(data); return err }
func unEK(data []byte) error     { _, err := UnmarshalEvalKey(data); return err }

func TestDigestStability(t *testing.T) {
	sk, _ := testKeys(t, "test")
	rng := rand.New(rand.NewSource(21))
	ct := sk.EncryptBool(rng, true)
	d1, d2 := DigestLWE(ct), DigestLWE(ct.Copy())
	if d1 != d2 {
		t.Errorf("digest of identical ciphertexts differs: %s vs %s", d1, d2)
	}
	if len(d1) != 64 {
		t.Errorf("digest length %d, want 64 hex chars", len(d1))
	}
	if DigestLWEs([]tfhe.LWECiphertext{ct, ct}) == DigestLWEs([]tfhe.LWECiphertext{ct}) {
		t.Error("batch digest ignores batch length")
	}
}
