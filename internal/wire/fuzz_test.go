package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/tfhe"
)

// The fuzz harnesses pin the decoder's two contracts: it never panics on
// malformed bytes (the server feeds it attacker-controlled input), and any
// input it accepts is canonical — re-marshaling the decoded object
// reproduces the input bit-for-bit. Plain `go test` runs the f.Add seeds
// plus the committed corpus under testdata/fuzz/ in regression mode; CI
// relies on that, and `go test -fuzz FuzzUnmarshalLWE ./internal/wire`
// explores further.

// fuzzParams is a deliberately tiny (completely insecure) parameter set so
// the evaluation-key seed corpus stays a few kilobytes.
var fuzzParams = tfhe.Params{
	Name: "fuzz", N: 8, K: 1, SmallN: 2, PBSLevel: 2, Security: 0,
	PBSBaseLog: 8, KSLevel: 2, KSBaseLog: 4,
	LWEStdDev: 1e-9, GLWEStdDev: 1e-9,
}

// fuzzSeedLWE returns a valid small encoded LWE ciphertext.
func fuzzSeedLWE() []byte {
	rng := rand.New(rand.NewSource(1))
	k := tfhe.NewLWEKey(rng, 8)
	return MarshalLWE(k.Encrypt(rng, 1<<29, 1e-9))
}

// fuzzSeedGLWE returns a valid small encoded GLWE ciphertext.
func fuzzSeedGLWE() []byte {
	rng := rand.New(rand.NewSource(2))
	key := tfhe.NewGLWEKey(rng, 1, 8)
	data, err := MarshalGLWE(key.EncryptZero(rng, 1e-9))
	if err != nil {
		panic(err)
	}
	return data
}

// fuzzSeedParams returns a valid encoded parameter set.
func fuzzSeedParams() []byte {
	data, err := MarshalParams(tfhe.ParamsTest)
	if err != nil {
		panic(err)
	}
	return data
}

// fuzzSeedEvalKey returns a valid encoded evaluation key for fuzzParams.
func fuzzSeedEvalKey() []byte {
	_, ek := tfhe.GenerateKeys(rand.New(rand.NewSource(3)), fuzzParams)
	data, err := MarshalEvalKey(ek)
	if err != nil {
		panic(err)
	}
	return data
}

// addMutations seeds f with valid bytes plus cheap structural mutations
// (truncations, corrupt magic/version/kind, trailing byte).
func addMutations(f *testing.F, valid []byte) {
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerSize/2])
	f.Add(valid[:len(valid)-1])
	f.Add(append(bytes.Clone(valid), 0))
	for _, off := range []int{0, 4, 5, 6} {
		c := bytes.Clone(valid)
		c[off] ^= 0xff
		f.Add(c)
	}
}

func FuzzUnmarshalLWE(f *testing.F) {
	addMutations(f, fuzzSeedLWE())
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := UnmarshalLWE(data)
		if err != nil {
			return
		}
		if again := MarshalLWE(ct); !bytes.Equal(again, data) {
			t.Fatalf("accepted non-canonical LWE input: %d bytes in, %d bytes re-marshaled", len(data), len(again))
		}
	})
}

func FuzzUnmarshalGLWE(f *testing.F) {
	addMutations(f, fuzzSeedGLWE())
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := UnmarshalGLWE(data)
		if err != nil {
			return
		}
		again, err := MarshalGLWE(ct)
		if err != nil {
			t.Fatalf("decoded GLWE fails to re-marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("accepted non-canonical GLWE input")
		}
	})
}

func FuzzUnmarshalParams(f *testing.F) {
	addMutations(f, fuzzSeedParams())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalParams(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid params: %v", err)
		}
		again, err := MarshalParams(p)
		if err != nil {
			t.Fatalf("decoded params fail to re-marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("accepted non-canonical params input")
		}
	})
}

func FuzzUnmarshalEvalKey(f *testing.F) {
	addMutations(f, fuzzSeedEvalKey())
	f.Fuzz(func(t *testing.T, data []byte) {
		ek, err := UnmarshalEvalKey(data)
		if err != nil {
			return
		}
		if err := ek.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid eval key: %v", err)
		}
		again, err := MarshalEvalKey(ek)
		if err != nil {
			t.Fatalf("decoded eval key fails to re-marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("accepted non-canonical eval key input")
		}
	})
}
