// Package wire is the versioned binary codec of the gate service: the
// canonical byte encoding of LWE and GLWE ciphertexts, parameter sets, and
// evaluation keys (the Fourier-domain BSK plus the KSK) that crosses the
// client/server boundary.
//
// The trust model follows the classic FHE service split: clients keep
// their secret keys and ship only ciphertexts and evaluation keys; the
// server decodes those bytes from an untrusted peer. Decoding is therefore
// strict — every length is bounds-checked before allocation, shapes are
// re-validated against the parameter set, floats must be finite, and
// trailing bytes are an error — and it never panics on malformed input
// (locked down by the package's fuzz harnesses).
//
// Every encoded object starts with an 8-byte header: the "STRX" magic, a
// format version, and a kind tag. All integers are little-endian;
// Fourier-domain values are raw IEEE-754 bits, so Unmarshal(Marshal(x)) is
// bitwise-identical to x. Sizes are fully determined by the parameter
// set, so the Size accessors give exact buffer lengths for framing.
package wire
