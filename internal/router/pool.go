package router

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
)

// backend is one strixserv node in the pool, with its health state
// machine: consecutive probe/forward failures eject it, consecutive
// probe successes re-admit it.
type backend struct {
	url string

	mu      sync.Mutex
	healthy bool
	fails   int // consecutive failures (probes and forwards)
	oks     int // consecutive probe successes while ejected
}

// noteFailure records one failed probe or forward and reports whether
// the backend is (now) ejected.
func (b *backend) noteFailure(threshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.oks = 0
	b.fails++
	if b.fails >= threshold {
		b.healthy = false
	}
	return !b.healthy
}

// noteProbeSuccess records one successful health probe, re-admitting an
// ejected backend after threshold consecutive successes.
func (b *backend) noteProbeSuccess(threshold int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.healthy {
		return
	}
	b.oks++
	if b.oks >= threshold {
		b.healthy = true
		b.oks = 0
	}
}

// noteForwardSuccess clears the failure streak. Forwards never re-admit
// an ejected backend — only probes do, so re-admission always reflects
// a fresh health answer rather than a stale in-flight request.
func (b *backend) noteForwardSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.mu.Unlock()
}

// isHealthy reports whether the backend is currently admitted.
func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// rendezvousScore is the HRW weight of placing id on url: the client
// goes to the backend with the highest score, so removing a node only
// remaps the sessions that lived on it.
func rendezvousScore(id, url string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, id)
	io.WriteString(h, "|")
	io.WriteString(h, url)
	return h.Sum64()
}

// pool is the probed backend set plus the sticky session pins.
type pool struct {
	backends []*backend

	pinMu sync.Mutex
	pins  map[string]*backend // client ID → home node, set at key registration
}

// maxPins bounds the sticky-pin table. Past the bound an arbitrary pin
// is dropped: the victim's next request falls back to the rendezvous
// choice, which is where its key registered unless membership changed.
const maxPins = 1 << 16

func newPool(urls []string) *pool {
	p := &pool{pins: make(map[string]*backend)}
	for _, u := range urls {
		p.backends = append(p.backends, &backend{url: u, healthy: true})
	}
	return p
}

// rendezvous returns the highest-scoring backend for id among candidates,
// or nil if candidates is empty.
func rendezvous(id string, candidates []*backend) *backend {
	var best *backend
	var bestScore uint64
	for _, b := range candidates {
		if s := rendezvousScore(id, b.url); best == nil || s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// pick chooses the target backend for one attempt of a request from id:
// the sticky pin if one exists (key gravity — the session's key lives
// there, healthy or not), otherwise the rendezvous choice among healthy
// backends not yet tried this request, falling back to all healthy ones.
func (p *pool) pick(id string, tried map[*backend]bool) *backend {
	p.pinMu.Lock()
	pinned := p.pins[id]
	p.pinMu.Unlock()
	if pinned != nil {
		return pinned
	}
	var healthy, fresh []*backend
	for _, b := range p.backends {
		if !b.isHealthy() {
			continue
		}
		healthy = append(healthy, b)
		if !tried[b] {
			fresh = append(fresh, b)
		}
	}
	if len(fresh) > 0 {
		return rendezvous(id, fresh)
	}
	return rendezvous(id, healthy)
}

// pin records id's home node, evicting an arbitrary pin at the bound.
func (p *pool) pin(id string, b *backend) {
	p.pinMu.Lock()
	defer p.pinMu.Unlock()
	if _, exists := p.pins[id]; !exists && len(p.pins) >= maxPins {
		for victim := range p.pins {
			delete(p.pins, victim)
			break
		}
	}
	p.pins[id] = b
}

// unpin forgets id's home node (the session was deleted).
func (p *pool) unpin(id string) {
	p.pinMu.Lock()
	delete(p.pins, id)
	p.pinMu.Unlock()
}

// pinCount returns the number of sticky pins on b.
func (p *pool) pinCount(b *backend) int {
	p.pinMu.Lock()
	defer p.pinMu.Unlock()
	n := 0
	for _, pb := range p.pins {
		if pb == b {
			n++
		}
	}
	return n
}

// healthyCount returns how many backends are currently admitted.
func (p *pool) healthyCount() int {
	n := 0
	for _, b := range p.backends {
		if b.isHealthy() {
			n++
		}
	}
	return n
}

// probe runs one health-check round: every backend answers
// GET /v1/healthz within the probe timeout or takes a failure. A
// draining backend counts as failed — it is shutting down, so new work
// must stop landing on it.
func (p *pool) probe(hc *http.Client, failThreshold, recoverThreshold int) {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			if probeOne(hc, b.url) {
				b.noteProbeSuccess(recoverThreshold)
			} else {
				b.noteFailure(failThreshold)
			}
		}(b)
	}
	wg.Wait()
}

// probeOne reports whether the node at url is up and accepting work.
func probeOne(hc *http.Client, url string) bool {
	resp, err := hc.Get(url + "/v1/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var h server.HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK && !h.Draining
}

// probeLoop probes every interval until stop closes.
func (p *pool) probeLoop(hc *http.Client, interval time.Duration, failThreshold, recoverThreshold int, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.probe(hc, failThreshold, recoverThreshold)
		}
	}
}
