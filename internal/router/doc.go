// Package router is the cluster tier of the gate service: a
// stateless-ish HTTP router that spreads client sessions across N
// strixserv backends and presents the same API surface as a single
// node, so clients scale out without changing a line.
//
// Eval-key gravity drives the design. Evaluation keys are megabytes
// while ciphertext batches are kilobytes, so a session must pin to the
// node that holds its key and the work must travel to it. The router
// picks each client's home node by rendezvous hashing the client ID
// over the backend set, records the choice as a sticky pin when the key
// registers, and forwards every subsequent envelope for that client to
// the same shard.
//
// Backends are health-checked (periodic /v1/healthz probes with
// consecutive-failure ejection and consecutive-success re-admission),
// idempotent batch forwards are retried with jittered backoff, and a
// router-level inflight cap provides cluster-wide admission control on
// top of each node's per-session backpressure. Failures surface as the
// server package's typed error codes (overloaded, shutting_down, ...),
// so a routed client behaves exactly like a direct one.
package router
