package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// Config parameterizes a Router. The zero value of every field except
// Backends picks a sensible default.
type Config struct {
	// Backends are the strixserv base URLs to shard across, e.g.
	// "http://10.0.0.7:8475". At least one is required.
	Backends []string

	// ProbeInterval is the period between /v1/healthz probe rounds
	// (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold ejects a backend after this many consecutive failed
	// probes or forwards (default 3).
	FailThreshold int
	// RecoverThreshold re-admits an ejected backend after this many
	// consecutive successful probes (default 2).
	RecoverThreshold int

	// MaxInflight caps concurrently forwarded eval/register requests
	// across the whole cluster (default 256). Observability endpoints
	// are exempt.
	MaxInflight int
	// AdmitTimeout is how long a request waits for an inflight slot
	// before the router refuses it as overloaded (default 2s).
	AdmitTimeout time.Duration

	// MaxRetries re-forwards an idempotent request that failed
	// temporarily — connection error or 503 — up to this many times
	// (default 3). Batch evaluation is idempotent, so replays are safe.
	MaxRetries int
	// RetryBase seeds the jittered exponential backoff between forward
	// attempts (default 50ms).
	RetryBase time.Duration
}

func (cfg *Config) applyDefaults() {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.RecoverThreshold <= 0 {
		cfg.RecoverThreshold = 2
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.AdmitTimeout <= 0 {
		cfg.AdmitTimeout = 2 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
}

// Router fans one gate-service API out over a pool of strixserv
// backends. Safe for concurrent use; create with New and release the
// probe goroutine with Close.
type Router struct {
	cfg   Config
	pool  *pool
	hc    *http.Client // forwards: no timeout, batches run long
	probe *http.Client // probes: short timeout

	admit chan struct{}

	mu       sync.Mutex
	draining bool

	stop     chan struct{}
	stopOnce sync.Once
}

// New builds a Router over cfg.Backends and starts its health-probe
// loop. Backends start admitted; the first probe round corrects that
// within ProbeInterval.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	cfg.applyDefaults()
	urls := make([]string, len(cfg.Backends))
	seen := make(map[string]bool)
	for i, u := range cfg.Backends {
		urls[i] = strings.TrimRight(u, "/")
		if seen[urls[i]] {
			return nil, fmt.Errorf("router: duplicate backend %q", urls[i])
		}
		seen[urls[i]] = true
	}
	r := &Router{
		cfg:   cfg,
		pool:  newPool(urls),
		hc:    &http.Client{},
		probe: &http.Client{Timeout: cfg.ProbeTimeout},
		admit: make(chan struct{}, cfg.MaxInflight),
		stop:  make(chan struct{}),
	}
	go r.pool.probeLoop(r.probe, cfg.ProbeInterval, cfg.FailThreshold, cfg.RecoverThreshold, r.stop)
	return r, nil
}

// Close stops the health-probe loop. In-flight forwards finish.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
}

// Drain marks the router as shutting down: every new evaluation or
// registration is refused with code shutting_down. Observability
// endpoints keep answering so orchestrators can watch the drain.
func (r *Router) Drain() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (r *Router) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// ShardOf returns the backend URL the rendezvous hash assigns clientID
// to, ignoring health and pins — the home node a fresh registration
// would pick on a fully healthy pool. Deterministic in (clientID,
// configured backend set).
func (r *Router) ShardOf(clientID string) string {
	return rendezvous(clientID, r.pool.backends).url
}

// BackendStatus describes one pool member in a ClusterResponse.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Pins    int    `json:"pins"` // sessions pinned to this node
}

// ClusterResponse frames GET /v1/cluster: the router's own view of the
// pool.
type ClusterResponse struct {
	Backends []BackendStatus `json:"backends"`
	Draining bool            `json:"draining"`
}

// Handler returns the router's HTTP API — the same surface as a single
// strixserv node, plus GET /v1/cluster for pool introspection:
//
//	POST   /v2/eval                  forwarded to the client's shard
//	POST   /v1/register-key          forwarded; pins the session
//	POST   /v1/gate-batch            forwarded (v1 shim on the shard)
//	POST   /v1/lut-batch             forwarded
//	POST   /v1/multilut-batch        forwarded
//	POST   /v1/circuit-batch         forwarded
//	GET    /v1/stats                 merged across healthy backends
//	GET    /v1/sessions              merged across healthy backends
//	GET    /v1/healthz               router + pool health
//	GET    /v1/cluster               ClusterResponse
//	DELETE /v1/sessions/{client_id}  forwarded to the shard; unpins
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/eval", r.forwardByBody)
	mux.HandleFunc("POST /v1/register-key", r.forwardByBody)
	mux.HandleFunc("POST /v1/gate-batch", r.forwardByBody)
	mux.HandleFunc("POST /v1/lut-batch", r.forwardByBody)
	mux.HandleFunc("POST /v1/multilut-batch", r.forwardByBody)
	mux.HandleFunc("POST /v1/circuit-batch", r.forwardByBody)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /v1/sessions", r.handleSessions)
	mux.HandleFunc("GET /v1/healthz", r.handleHealthz)
	mux.HandleFunc("GET /v1/cluster", r.handleCluster)
	mux.HandleFunc("DELETE /v1/sessions/{client_id}", r.handleDeleteSession)
	return mux
}

// writeRouterError emits the server package's error frame, so routed
// clients decode router-origin failures exactly like node-origin ones.
func writeRouterError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: msg, Code: code})
}

// admitOne takes one cluster-wide inflight slot, refusing with
// shutting_down when draining and overloaded when the cap stays full
// past AdmitTimeout. The release func must be called exactly once.
func (r *Router) admitOne(w http.ResponseWriter) (release func(), ok bool) {
	if r.Draining() {
		writeRouterError(w, http.StatusServiceUnavailable, server.CodeShuttingDown, "router is draining")
		return nil, false
	}
	select {
	case r.admit <- struct{}{}:
	default:
		t := time.NewTimer(r.cfg.AdmitTimeout)
		defer t.Stop()
		select {
		case r.admit <- struct{}{}:
		case <-t.C:
			writeRouterError(w, http.StatusServiceUnavailable, server.CodeOverloaded, "router inflight cap reached")
			return nil, false
		}
	}
	return func() { <-r.admit }, true
}

// clientIDOf extracts the routing key from a request body: every
// evaluation and registration frame carries client_id at the top level.
func clientIDOf(body []byte) string {
	var frame struct {
		ClientID string `json:"client_id"`
	}
	if err := json.Unmarshal(body, &frame); err != nil {
		return ""
	}
	return frame.ClientID
}

// forwardByBody routes one POST by the client_id inside its JSON body:
// admission, shard pick, bounded-retry forward, verbatim response
// passthrough.
func (r *Router) forwardByBody(w http.ResponseWriter, req *http.Request) {
	release, ok := r.admitOne(w)
	if !ok {
		return
	}
	defer release()

	limit := int64(server.MaxBatchBodyBytes)
	if req.URL.Path == "/v1/register-key" {
		limit = server.MaxKeyBodyBytes
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, limit))
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, server.CodeTooLarge, "request body too large")
		return
	}
	id := clientIDOf(body)
	if id == "" {
		writeRouterError(w, http.StatusBadRequest, server.CodeBadRequest, "router: missing client_id")
		return
	}
	r.forward(w, req.URL.Path, id, body, req.URL.Path == "/v1/register-key")
}

// forward sends body to id's shard, retrying temporary failures with
// jittered backoff. A pinned client always re-targets its home node —
// its eval key lives nowhere else, so the retry rides out the node's
// ejection and lands once probes re-admit it. Unpinned requests re-pick
// among the remaining healthy backends each attempt.
func (r *Router) forward(w http.ResponseWriter, path, id string, body []byte, pinOnSuccess bool) {
	tried := make(map[*backend]bool)
	var lastErr error
	for attempt := 0; ; attempt++ {
		b := r.pool.pick(id, tried)
		if b == nil {
			writeRouterError(w, http.StatusServiceUnavailable, server.CodeOverloaded, "router: no healthy backend")
			return
		}
		tried[b] = true
		resp, err := r.hc.Post(b.url+path, "application/json", bytes.NewReader(body))
		if err != nil {
			b.noteFailure(r.cfg.FailThreshold)
			lastErr = err
			if attempt >= r.cfg.MaxRetries {
				writeRouterError(w, http.StatusServiceUnavailable, server.CodeOverloaded,
					fmt.Sprintf("router: backend unreachable: %v", lastErr))
				return
			}
			time.Sleep(server.Backoff(r.cfg.RetryBase, attempt))
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The node refused temporarily. Only a draining node — one
			// announcing shutting_down — counts toward ejection: it is
			// leaving and probes should gate its return. A merely
			// overloaded node is alive and doing work; ejecting it when
			// the cluster is busiest would cascade its load onto the
			// remaining nodes. Either way the request retries after
			// backoff, floored by the node's own Retry-After.
			refusal := readRefusal(resp)
			if refusal.code == server.CodeShuttingDown {
				b.noteFailure(r.cfg.FailThreshold)
			}
			if attempt < r.cfg.MaxRetries {
				d := server.Backoff(r.cfg.RetryBase, attempt)
				if refusal.retryAfter > d {
					d = refusal.retryAfter
				}
				time.Sleep(d)
				continue
			}
			// Out of retries: relay the stored refusal verbatim, like
			// passthrough would (the body was consumed to classify it).
			refusal.writeTo(w)
			return
		}
		if resp.StatusCode == http.StatusOK {
			b.noteForwardSuccess()
			if pinOnSuccess {
				r.pool.pin(id, b)
			}
		}
		passthrough(w, resp)
		return
	}
}

// maxRefusalBody bounds how much of a 503 body the router reads to
// classify the refusal; error frames are tiny, anything bigger is noise.
const maxRefusalBody = 1 << 20

// refusal is one consumed 503 response: enough to classify it (code),
// pace the retry (retryAfter), and relay it verbatim if retries run out.
type refusal struct {
	code        string
	retryAfter  time.Duration
	contentType string
	body        []byte
}

// readRefusal drains and closes a 503 response, extracting the typed
// error code from its body. Malformed bodies classify as code "" —
// treated like overloaded: alive, not ejectable.
func readRefusal(resp *http.Response) refusal {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxRefusalBody))
	resp.Body.Close()
	ref := refusal{contentType: resp.Header.Get("Content-Type"), body: body}
	if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs > 0 {
		ref.retryAfter = time.Duration(secs) * time.Second
		if ref.retryAfter > server.MaxBackoff {
			ref.retryAfter = server.MaxBackoff
		}
	}
	var er server.ErrorResponse
	if json.Unmarshal(body, &er) == nil {
		ref.code = er.Code
	}
	return ref
}

// writeTo relays the stored refusal with passthrough's header contract.
func (ref refusal) writeTo(w http.ResponseWriter) {
	if ref.contentType != "" {
		w.Header().Set("Content-Type", ref.contentType)
	}
	if ref.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(ref.retryAfter/time.Second)))
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write(ref.body)
}

// passthrough relays a backend response verbatim — status, content
// type, and body — so typed error codes survive the hop.
func passthrough(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// fanoutGet issues GET path to every healthy backend and returns the
// decoded bodies that answered 200.
func fanoutGet[T any](r *Router, path string) []T {
	var mu sync.Mutex
	var out []T
	var wg sync.WaitGroup
	for _, b := range r.pool.backends {
		if !b.isHealthy() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			resp, err := r.probe.Get(b.url + path)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var v T
			if json.NewDecoder(io.LimitReader(resp.Body, int64(server.MaxBatchBodyBytes))).Decode(&v) != nil {
				return
			}
			mu.Lock()
			out = append(out, v)
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	return out
}

// handleStats merges every healthy backend's Stats into one cluster
// snapshot: counters sum, session lists concatenate.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	var merged server.Stats
	for _, st := range fanoutGet[server.Stats](r, "/v1/stats") {
		merged.MaxSessions += st.MaxSessions
		merged.Evictions += st.Evictions
		merged.Restores += st.Restores
		merged.Persisted += st.Persisted
		merged.Sessions = append(merged.Sessions, st.Sessions...)
	}
	merged.Draining = r.Draining()
	writeOK(w, merged)
}

// handleSessions concatenates every healthy backend's session list.
func (r *Router) handleSessions(w http.ResponseWriter, req *http.Request) {
	var merged server.SessionsResponse
	merged.Sessions = []server.SessionInfo{}
	for _, sr := range fanoutGet[server.SessionsResponse](r, "/v1/sessions") {
		merged.Sessions = append(merged.Sessions, sr.Sessions...)
	}
	writeOK(w, merged)
}

// handleHealthz answers for the cluster: ok while at least one backend
// is admitted and the router is not draining; 503 otherwise, with the
// server package's health frame so probes of a router and of a node
// read the same.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	healthy := r.pool.healthyCount()
	sessions := 0
	for _, st := range fanoutGet[server.HealthResponse](r, "/v1/healthz") {
		sessions += st.Sessions
	}
	h := server.HealthResponse{Status: "ok", Sessions: sessions, Draining: r.Draining()}
	status := http.StatusOK
	switch {
	case h.Draining:
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case healthy == 0:
		h.Status = "no healthy backends"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(h)
}

// handleCluster reports the router's view of the pool.
func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	resp := ClusterResponse{Draining: r.Draining()}
	for _, b := range r.pool.backends {
		resp.Backends = append(resp.Backends, BackendStatus{
			URL:     b.url,
			Healthy: b.isHealthy(),
			Pins:    r.pool.pinCount(b),
		})
	}
	writeOK(w, resp)
}

// handleDeleteSession forwards the delete to the client's shard and
// drops the sticky pin, so a re-registration re-runs placement.
func (r *Router) handleDeleteSession(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("client_id")
	b := r.pool.pick(id, nil)
	if b == nil {
		writeRouterError(w, http.StatusServiceUnavailable, server.CodeOverloaded, "router: no healthy backend")
		return
	}
	delReq, err := http.NewRequest(http.MethodDelete, b.url+"/v1/sessions/"+id, nil)
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, server.CodeInternal, err.Error())
		return
	}
	resp, err := r.hc.Do(delReq)
	if err != nil {
		b.noteFailure(r.cfg.FailThreshold)
		writeRouterError(w, http.StatusServiceUnavailable, server.CodeOverloaded,
			fmt.Sprintf("router: backend unreachable: %v", err))
		return
	}
	if resp.StatusCode == http.StatusOK {
		r.pool.unpin(id)
	}
	passthrough(w, resp)
}

// writeOK emits one 200 JSON response.
func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(v)
}
