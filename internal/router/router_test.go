package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/tfhe"
)

// testKeys caches one deterministic test-set key pair for the package.
var (
	keysOnce sync.Once
	cachedSK tfhe.SecretKeys
	cachedEK tfhe.EvaluationKeys
)

func testKeys(t *testing.T) (tfhe.SecretKeys, tfhe.EvaluationKeys) {
	t.Helper()
	keysOnce.Do(func() {
		cachedSK, cachedEK = tfhe.GenerateKeys(rand.New(rand.NewSource(1)), tfhe.ParamsTest)
	})
	return cachedSK, cachedEK
}

// newBackend boots one in-process gate service node.
func newBackend(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// fastConfig returns a Config tuned for tests: tight probes, instant
// ejection and re-admission, quick retries.
func fastConfig(backends ...string) Config {
	return Config{
		Backends:         backends,
		ProbeInterval:    20 * time.Millisecond,
		FailThreshold:    1,
		RecoverThreshold: 1,
		MaxRetries:       5,
		RetryBase:        30 * time.Millisecond,
	}
}

// newRouter builds a Router plus its HTTP front for a test.
func newRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

// encryptBools encrypts a bit vector under sk.
func encryptBools(sk tfhe.SecretKeys, seed int64, bits []bool) []tfhe.LWECiphertext {
	rng := rand.New(rand.NewSource(seed))
	cts := make([]tfhe.LWECiphertext, len(bits))
	for i, b := range bits {
		cts[i] = sk.EncryptBool(rng, b)
	}
	return cts
}

// sessionIDs returns the IDs living on a node.
func sessionIDs(srv *server.Server) map[string]bool {
	ids := make(map[string]bool)
	for _, s := range srv.SessionList() {
		ids[s.ID] = true
	}
	return ids
}

// TestRoutedRegisterAndEval is the routed happy path: sessions register
// through the router, spread across the pool by the rendezvous hash, and
// every envelope kind evaluates through the router to correct plaintexts.
func TestRoutedRegisterAndEval(t *testing.T) {
	sk, ek := testKeys(t)
	srvA, tsA := newBackend(t)
	srvB, tsB := newBackend(t)
	r, rts := newRouter(t, fastConfig(tsA.URL, tsB.URL))

	// Register enough clients that both shards get at least one, pinning
	// where the rendezvous hash says they belong.
	var clients []*server.Client
	for i := 0; i < 8; i++ {
		cl := server.Dial(rts.URL, fmt.Sprintf("client-%d", i))
		if err := cl.RegisterKey(ek); err != nil {
			t.Fatalf("register client-%d: %v", i, err)
		}
		clients = append(clients, cl)
	}
	idsA, idsB := sessionIDs(srvA), sessionIDs(srvB)
	if len(idsA) == 0 || len(idsB) == 0 {
		t.Fatalf("lopsided placement: %d vs %d sessions", len(idsA), len(idsB))
	}
	if len(idsA)+len(idsB) != len(clients) {
		t.Fatalf("placed %d+%d sessions for %d clients", len(idsA), len(idsB), len(clients))
	}
	for i, cl := range clients {
		home := r.ShardOf(cl.ClientID())
		onA := idsA[cl.ClientID()]
		if (home == tsA.URL) != onA {
			t.Errorf("client-%d: ShardOf says %s but session on A=%v", i, home, onA)
		}
	}

	bits := []bool{true, false, true, true}
	shift := []bool{false, true, true, false}
	for _, cl := range clients[:2] {
		out, err := cl.GateBatch(engine.NAND, encryptBools(sk, 10, bits), encryptBools(sk, 11, shift))
		if err != nil {
			t.Fatalf("%s gate batch: %v", cl.ClientID(), err)
		}
		for i := range bits {
			if got := sk.DecryptBool(out[i]); got != !(bits[i] && shift[i]) {
				t.Errorf("%s item %d = %v", cl.ClientID(), i, got)
			}
		}
	}

	// The merged observability surface sees the whole cluster.
	st, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != len(clients) {
		t.Errorf("merged stats report %d sessions, want %d", len(st.Sessions), len(clients))
	}
	sess, err := clients[0].Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sess) != len(clients) {
		t.Errorf("merged sessions report %d, want %d", len(sess), len(clients))
	}

	// Typed errors pass through the router verbatim.
	ghost := server.Dial(rts.URL, "ghost")
	_, err = ghost.GateBatch(engine.NOT, encryptBools(sk, 12, bits), nil)
	var api *server.APIError
	if !errors.As(err, &api) || api.Code != server.CodeUnknownSession {
		t.Errorf("unrouted session error = %v, want unknown_session", err)
	}

	// Deleting through the router unpins and evicts on the right shard.
	victim := clients[0].ClientID()
	if _, err := clients[0].DeleteSession(victim); err != nil {
		t.Fatal(err)
	}
	if sessionIDs(srvA)[victim] || sessionIDs(srvB)[victim] {
		t.Errorf("%s still present after routed delete", victim)
	}
}

// TestBackendDownAtRegister covers the first failure mode: one pool
// member is unreachable from the start. Registrations whose rendezvous
// choice is the dead node must retry onto the live one instead of
// failing.
func TestBackendDownAtRegister(t *testing.T) {
	_, ek := testKeys(t)
	srvLive, tsLive := newBackend(t)

	// A listener that was closed immediately: connection refused.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + lis.Addr().String()
	lis.Close()

	r, rts := newRouter(t, fastConfig(tsLive.URL, deadURL))

	// Find an ID whose rendezvous home is the dead node, so the first
	// forward attempt really does hit it.
	id := ""
	for i := 0; i < 256; i++ {
		candidate := fmt.Sprintf("doomed-%d", i)
		if r.ShardOf(candidate) == deadURL {
			id = candidate
			break
		}
	}
	if id == "" {
		t.Fatal("no candidate ID hashes to the dead backend")
	}

	cl := server.Dial(rts.URL, id)
	if err := cl.RegisterKey(ek); err != nil {
		t.Fatalf("register with one backend down: %v", err)
	}
	if !sessionIDs(srvLive)[id] {
		t.Error("session did not land on the live backend")
	}
}

// TestBackendDiesMidBatch covers the second failure mode: the client's
// home node dies between register and batch, then comes back on the
// same address. The routed retry must ride out the outage and land on
// the same shard — the eval key lives nowhere else.
func TestBackendDiesMidBatch(t *testing.T) {
	sk, ek := testKeys(t)
	srvB, tsB := newBackend(t)

	// Node A runs on a listener we control, so it can die and return on
	// the same address with its warm sessions intact.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srvA := server.New(server.Config{})
	hsA := &http.Server{Handler: srvA.Handler()}
	go hsA.Serve(lis)
	t.Cleanup(func() { hsA.Close() })

	_, rts := newRouter(t, fastConfig("http://"+addr, tsB.URL))

	// Pin a client to node A.
	id := ""
	var cl *server.Client
	for i := 0; i < 256 && id == ""; i++ {
		candidate := fmt.Sprintf("mover-%d", i)
		c := server.Dial(rts.URL, candidate)
		if err := c.RegisterKey(ek); err != nil {
			t.Fatalf("register %s: %v", candidate, err)
		}
		if sessionIDs(srvA)[candidate] {
			id, cl = candidate, c
		}
	}
	if id == "" {
		t.Fatal("no client landed on node A")
	}

	// Kill node A, and bring it back on the same address mid-retry.
	if err := hsA.Close(); err != nil {
		t.Fatal(err)
	}
	restarted := make(chan error, 1)
	go func() {
		time.Sleep(80 * time.Millisecond)
		var lis2 net.Listener
		var err error
		for i := 0; i < 50; i++ {
			if lis2, err = net.Listen("tcp", addr); err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			restarted <- err
			return
		}
		hs2 := &http.Server{Handler: srvA.Handler()}
		t.Cleanup(func() { hs2.Close() })
		go hs2.Serve(lis2)
		restarted <- nil
	}()

	bits := []bool{true, false, true}
	out, err := cl.GateBatch(engine.NOT, encryptBools(sk, 20, bits), nil)
	if err != nil {
		t.Fatalf("gate batch across backend restart: %v", err)
	}
	if err := <-restarted; err != nil {
		t.Fatalf("rebind node A: %v", err)
	}
	for i, b := range bits {
		if got := sk.DecryptBool(out[i]); got != !b {
			t.Errorf("item %d = %v, want %v", i, got, !b)
		}
	}
	// The session never moved shards: still on A, never created on B.
	if !sessionIDs(srvA)[id] {
		t.Error("session missing from node A after restart")
	}
	if sessionIDs(srvB)[id] {
		t.Error("retry leaked the session onto node B")
	}
}

// TestDrainOneBackend covers the third failure mode: one node drains
// while the cluster keeps serving. Probes must eject the draining node,
// traffic pinned to the healthy node must be untouched, and clients
// pinned to the draining node must see the typed shutting_down code.
func TestDrainOneBackend(t *testing.T) {
	sk, ek := testKeys(t)
	srvA, tsA := newBackend(t)
	srvB, tsB := newBackend(t)
	r, rts := newRouter(t, fastConfig(tsA.URL, tsB.URL))

	var onA, onB *server.Client
	for i := 0; i < 256 && (onA == nil || onB == nil); i++ {
		id := fmt.Sprintf("drain-%d", i)
		c := server.Dial(rts.URL, id)
		c.SetRetry(0, time.Millisecond) // typed errors must surface, not retry
		if err := c.RegisterKey(ek); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
		if onA == nil && sessionIDs(srvA)[id] {
			onA = c
		}
		if onB == nil && sessionIDs(srvB)[id] {
			onB = c
		}
	}
	if onA == nil || onB == nil {
		t.Fatal("could not pin a client to each node")
	}

	srvA.Drain()
	// Wait for the probe loop to eject A.
	deadline := time.Now().Add(2 * time.Second)
	for r.pool.healthyCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("probes never ejected the draining backend")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The healthy shard serves on.
	bits := []bool{true, false}
	out, err := onB.GateBatch(engine.NOT, encryptBools(sk, 30, bits), nil)
	if err != nil {
		t.Fatalf("batch on healthy shard during drain: %v", err)
	}
	for i, b := range bits {
		if got := sk.DecryptBool(out[i]); got != !b {
			t.Errorf("item %d = %v", i, got)
		}
	}

	// The drained shard's pinned client gets the typed refusal.
	_, err = onA.GateBatch(engine.NOT, encryptBools(sk, 31, bits), nil)
	var api *server.APIError
	if !errors.As(err, &api) || api.Code != server.CodeShuttingDown {
		t.Errorf("drained shard error = %v, want shutting_down", err)
	}

	// New sessions keep landing — on the healthy node, wherever their
	// rendezvous home was.
	fresh := server.Dial(rts.URL, "drain-fresh")
	if err := fresh.RegisterKey(ek); err != nil {
		t.Fatalf("register during drain: %v", err)
	}
	if !sessionIDs(srvB)["drain-fresh"] {
		t.Error("fresh session did not land on the healthy node")
	}
}

// TestRendezvousStability covers the fourth failure mode: pool
// membership changes. Removing one backend must remap only the IDs that
// lived on it — every other assignment is untouched, which is the whole
// point of rendezvous hashing.
func TestRendezvousStability(t *testing.T) {
	urls := []string{"http://node-a", "http://node-b", "http://node-c"}
	full := newPool(urls)
	reduced := newPool([]string{urls[0], urls[2]}) // node-b removed

	moved, stayed := 0, 0
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("session-%04d", i)
		before := rendezvous(id, full.backends).url
		after := rendezvous(id, reduced.backends).url
		if before == urls[1] {
			moved++
			continue // displaced sessions may land anywhere
		}
		stayed++
		if after != before {
			t.Fatalf("%s moved %s → %s though its node survived", id, before, after)
		}
	}
	// Sanity: the hash spreads sessions over all three nodes.
	if moved == 0 || stayed == 0 {
		t.Fatalf("degenerate distribution: %d moved, %d stayed", moved, stayed)
	}
	if moved < 2000/6 || moved > 2000/2 {
		t.Errorf("node-b held %d of 2000 sessions — rendezvous badly unbalanced", moved)
	}
}

// TestAdmissionControl pins the router-level inflight cap: when the
// cluster-wide slot pool is exhausted past the admit timeout, the
// router refuses with the typed overloaded code instead of queueing
// without bound.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/healthz" {
			writeOK(w, server.HealthResponse{Status: "ok"})
			return
		}
		<-release
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"out":[],"k":1}`))
	}))
	defer slow.Close()
	defer close(release)

	cfg := fastConfig(slow.URL)
	cfg.MaxInflight = 1
	cfg.AdmitTimeout = 50 * time.Millisecond
	cfg.MaxRetries = 1
	r, rts := newRouter(t, cfg)

	// First request occupies the only slot: it routes to the slow
	// backend and parks there until release closes at test end.
	go http.Post(rts.URL+"/v2/eval", "application/json",
		strings.NewReader(`{"client_id":"occupier","kind":"lut","space":4,"table":[0,1,2,3]}`))
	deadline := time.Now().Add(2 * time.Second)
	for len(r.admit) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("occupier never took the inflight slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cl := server.Dial(rts.URL, "crowded")
	cl.SetRetry(0, time.Millisecond)
	_, err := cl.LUTBatch(nil, 4, []int{0, 1, 2, 3})
	var api *server.APIError
	if !errors.As(err, &api) || api.Code != server.CodeOverloaded {
		t.Errorf("cap-exceeded error = %v, want overloaded", err)
	}
}

// TestRouterDrain pins the router's own shutdown signaling: after Drain
// every evaluation is refused shutting_down and healthz flips to 503,
// while the cluster introspection endpoint keeps answering.
func TestRouterDrain(t *testing.T) {
	_, ts := newBackend(t)
	r, rts := newRouter(t, fastConfig(ts.URL))
	r.Drain()

	cl := server.Dial(rts.URL, "late")
	cl.SetRetry(0, time.Millisecond)
	_, err := cl.LUTBatch(nil, 4, []int{0, 1, 2, 3})
	var api *server.APIError
	if !errors.As(err, &api) || api.Code != server.CodeShuttingDown {
		t.Errorf("drained router error = %v, want shutting_down", err)
	}
	if _, err := cl.Healthz(); !errors.As(err, &api) || api.Code != server.CodeShuttingDown {
		t.Errorf("drained router healthz = %v, want shutting_down", err)
	}

	resp, err := http.Get(rts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cluster introspection during drain: HTTP %d", resp.StatusCode)
	}
}

// TestRouterConfigValidation pins constructor errors: an empty pool and
// duplicate members are configuration bugs, not runtime surprises.
func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []string{"http://x", "http://x/"}}); err == nil {
		t.Error("duplicate backends accepted")
	}
}

// stub503 boots a backend that answers every request with a 503 carrying
// the given typed code, counting the requests it receives. No probe runs
// during these tests (hour-long ProbeInterval), so health transitions
// come from the forward path alone.
func stub503(t *testing.T, code string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "busy", Code: code})
	}))
	t.Cleanup(ts.Close)
	return ts
}

// postEval sends one minimal eval envelope through the router and
// returns the response status and decoded error frame.
func postEval(t *testing.T, url string) (int, server.ErrorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v2/eval", "application/json", strings.NewReader(`{"client_id":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode refusal: %v", err)
	}
	return resp.StatusCode, er
}

// TestOverloaded503NotEjected pins the health semantics of a busy node:
// a backend answering 503 overloaded is alive and doing work, so the
// router must retry against it and relay the refusal — but never count
// it toward FailThreshold. Ejecting nodes exactly when the cluster is
// busiest would cascade their load onto the survivors.
func TestOverloaded503NotEjected(t *testing.T) {
	var hits atomic.Int64
	ts := stub503(t, server.CodeOverloaded, &hits)
	r, rts := newRouter(t, Config{
		Backends:      []string{ts.URL},
		ProbeInterval: time.Hour, // no probe interference
		FailThreshold: 1,
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
	})

	status, er := postEval(t, rts.URL)
	if status != http.StatusServiceUnavailable || er.Code != server.CodeOverloaded {
		t.Fatalf("refusal = HTTP %d code %q, want 503 %q", status, er.Code, server.CodeOverloaded)
	}
	if got := hits.Load(); got != 3 { // initial attempt + MaxRetries
		t.Errorf("backend saw %d attempts, want 3", got)
	}
	if !r.pool.backends[0].isHealthy() {
		t.Error("overloaded-but-healthy backend was ejected from the pool")
	}
}

// TestShuttingDown503Ejects pins the complementary case: a node that
// announces shutting_down is leaving, so its refusals do count toward
// FailThreshold and probes gate its re-admission.
func TestShuttingDown503Ejects(t *testing.T) {
	var hits atomic.Int64
	ts := stub503(t, server.CodeShuttingDown, &hits)
	r, rts := newRouter(t, Config{
		Backends:      []string{ts.URL},
		ProbeInterval: time.Hour,
		FailThreshold: 1,
		MaxRetries:    1,
		RetryBase:     time.Millisecond,
	})

	// The first shutting_down refusal ejects the node (FailThreshold 1);
	// the unpinned retry then finds no healthy backend, so the router
	// answers with its own 503.
	status, _ := postEval(t, rts.URL)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("refusal = HTTP %d, want 503", status)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("backend saw %d attempts, want 1 (ejected after the first)", got)
	}
	if r.pool.backends[0].isHealthy() {
		t.Error("draining backend still admitted after FailThreshold refusals")
	}
}
