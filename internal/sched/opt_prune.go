package sched

// passPrune drops every node no output transitively depends on, walking
// liveness back from the outputs. Input nodes are always kept so the
// circuit consumes the same input vector. Multi-value groups shrink to
// their live siblings: a group left with one live output degenerates to a
// plain LUT (better noise margin, same rotation), and a fully dead group
// vanishes. Returns the rewritten circuit and the number of nodes
// dropped; with nothing to drop the input circuit is returned unchanged.
func passPrune(c *Circuit) (*Circuit, int) {
	live := liveMask(c)
	nodes := make([]node, 0, len(c.nodes))
	m := make([]Wire, len(c.nodes))
	for i := range m {
		m[i] = Wire(-1)
	}
	emit := func(n node) Wire {
		nodes = append(nodes, n)
		return Wire(len(nodes) - 1)
	}
	dropped := 0
	for i := 0; i < len(c.nodes); i++ {
		n := c.nodes[i]
		if n.kind == kindMultiLUT {
			// Handle the whole group at its head.
			k := len(n.tables)
			var liveIdx []int
			for j := 0; j < k; j++ {
				if live[i+j] {
					liveIdx = append(liveIdx, j)
				}
			}
			switch {
			case len(liveIdx) == k:
				for j := 0; j < k; j++ {
					m[i+j] = emit(remapNode(c.nodes[i+j], m))
				}
			case len(liveIdx) == 0:
				dropped += k
			case len(liveIdx) == 1:
				j := liveIdx[0]
				m[i+j] = emit(node{kind: kindLUT, in: m[n.in], space: n.space, table: n.tables[j]})
				dropped += k - 1
			default:
				tables := make([][]int, len(liveIdx))
				for x, j := range liveIdx {
					tables[x] = n.tables[j]
				}
				for x, j := range liveIdx {
					m[i+j] = emit(node{kind: kindMultiLUT, in: m[n.in], space: n.space, tables: tables, mvIdx: x})
				}
				dropped += k - len(liveIdx)
			}
			i += k - 1
			continue
		}
		if !live[i] {
			dropped++
			continue
		}
		m[i] = emit(remapNode(n, m))
	}
	if dropped == 0 {
		return c, 0
	}
	return finishRemap(c, nodes, m), dropped
}
