package sched

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/tfhe"
)

// Executor runs one dispatch worth of PBS work. Implementations must
// return exactly one output per input (one output group per input for
// MultiLUT), in input order, computing the same per-item operation as the
// sequential evaluator (both engines and the gate service's session path
// qualify).
type Executor interface {
	// Gate evaluates out[i] = d.Op(a[i], b[i]).
	Gate(d Dispatch, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error)
	// LUT applies d.Table (message space d.Space) to every ciphertext.
	LUT(d Dispatch, in []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error)
	// MultiLUT applies the d.Tables group (message space d.Space) to
	// every ciphertext via multi-value PBS: out[g][i] is table i applied
	// to in[g], all k outputs of a group from one blind rotation.
	MultiLUT(d Dispatch, in []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error)
}

// evalLin computes one linear node over the resolved wire values. dim is
// the circuit's LWE dimension fallback for constant (term-less) nodes,
// negative when unknown.
func evalLin(n node, vals []tfhe.LWECiphertext, dim int) (tfhe.LWECiphertext, error) {
	d := dim
	if len(n.terms) > 0 {
		d = vals[n.terms[0].W].N()
	}
	if d < 0 {
		return tfhe.LWECiphertext{}, fmt.Errorf("sched: constant node in a circuit with no inputs (LWE dimension unknown)")
	}
	out := tfhe.NewLWECiphertext(d)
	out.AddPlain(n.k)
	for _, t := range n.terms {
		v := vals[t.W]
		switch t.C {
		case 0:
		case 1:
			out.AddTo(v)
		case -1:
			out.SubTo(v)
		default:
			tmp := v.Copy()
			tmp.MulScalar(t.C)
			out.AddTo(tmp)
		}
	}
	return out, nil
}

// runLins folds the linear nodes of one level boundary into vals.
func runLins(c *Circuit, lins []Wire, vals []tfhe.LWECiphertext, dim int) error {
	for _, w := range lins {
		v, err := evalLin(c.nodes[w], vals, dim)
		if err != nil {
			return err
		}
		vals[w] = v
	}
	return nil
}

// Execute runs a compiled schedule over the inputs, dispatching every
// level batch through ex and folding the free linear nodes in between.
// Wires resolve against the schedule's (possibly optimizer-rewritten)
// circuit; c must be the source circuit the schedule was compiled from.
// Outputs are returned in Output declaration order. Output ciphertexts
// are fresh except when an output wire is itself an input wire (or, in
// optimized schedules, when outputs merged into one node).
func Execute(c *Circuit, s *Schedule, inputs []tfhe.LWECiphertext, ex Executor) ([]tfhe.LWECiphertext, error) {
	if s.nodes != len(c.nodes) {
		return nil, fmt.Errorf("sched: schedule was compiled from a %d-node circuit, got %d nodes", s.nodes, len(c.nodes))
	}
	ec := s.circ
	if ec == nil {
		ec = c
	}
	if len(inputs) != len(ec.inputs) {
		return nil, fmt.Errorf("sched: circuit has %d inputs, got %d", len(ec.inputs), len(inputs))
	}
	vals := make([]tfhe.LWECiphertext, len(ec.nodes))
	dim := -1
	for k, w := range ec.inputs {
		vals[w] = inputs[k]
		dim = inputs[k].N()
	}
	if err := runLins(ec, s.linAt[0], vals, dim); err != nil {
		return nil, err
	}
	for l := range s.levels {
		for _, d := range s.levels[l].Dispatches {
			var out []tfhe.LWECiphertext
			var err error
			switch d.Kind {
			case DispatchGate:
				a := make([]tfhe.LWECiphertext, len(d.Nodes))
				b := make([]tfhe.LWECiphertext, len(d.Nodes))
				for j, w := range d.Nodes {
					a[j] = vals[ec.nodes[w].a]
					b[j] = vals[ec.nodes[w].b]
				}
				out, err = ex.Gate(d, a, b)
			case DispatchLUT:
				in := make([]tfhe.LWECiphertext, len(d.Nodes))
				for j, w := range d.Nodes {
					in[j] = vals[ec.nodes[w].in]
				}
				out, err = ex.LUT(d, in)
			case DispatchMultiLUT:
				k := len(d.Tables)
				in := make([]tfhe.LWECiphertext, len(d.Nodes)/k)
				for g := range in {
					in[g] = vals[ec.nodes[d.Nodes[g*k]].in]
				}
				var groups [][]tfhe.LWECiphertext
				groups, err = ex.MultiLUT(d, in)
				if err == nil {
					out = make([]tfhe.LWECiphertext, 0, len(d.Nodes))
					for g, outs := range groups {
						if len(outs) != k {
							return nil, fmt.Errorf("sched: executor returned %d outputs for a %d-table group %d", len(outs), k, g)
						}
						out = append(out, outs...)
					}
				}
			default:
				err = fmt.Errorf("sched: unknown dispatch kind %d", d.Kind)
			}
			if err != nil {
				return nil, err
			}
			if len(out) != len(d.Nodes) {
				return nil, fmt.Errorf("sched: executor returned %d outputs for %d items", len(out), len(d.Nodes))
			}
			for j, w := range d.Nodes {
				vals[w] = out[j]
			}
		}
		if err := runLins(ec, s.linAt[l+1], vals, dim); err != nil {
			return nil, err
		}
	}
	outs := make([]tfhe.LWECiphertext, len(ec.outputs))
	for k, w := range ec.outputs {
		outs[k] = vals[w]
	}
	return outs, nil
}

// seqGate dispatches one gate on the sequential evaluator.
func seqGate(ev *tfhe.Evaluator, op engine.GateOp, a, b tfhe.LWECiphertext) (tfhe.LWECiphertext, error) {
	switch op {
	case engine.NAND:
		return ev.NAND(a, b), nil
	case engine.AND:
		return ev.AND(a, b), nil
	case engine.OR:
		return ev.OR(a, b), nil
	case engine.NOR:
		return ev.NOR(a, b), nil
	case engine.XOR:
		return ev.XOR(a, b), nil
	case engine.XNOR:
		return ev.XNOR(a, b), nil
	default:
		return tfhe.LWECiphertext{}, fmt.Errorf("sched: unknown sequential gate %d", int(op))
	}
}

// RunSequential evaluates the circuit node by node on one evaluator — the
// unscheduled reference path every schedule must match bitwise, and the
// backend of choice when no engine is available.
func RunSequential(c *Circuit, ev *tfhe.Evaluator, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	if len(inputs) != len(c.inputs) {
		return nil, fmt.Errorf("sched: circuit has %d inputs, got %d", len(c.inputs), len(inputs))
	}
	vals := make([]tfhe.LWECiphertext, len(c.nodes))
	dim := -1
	for k, w := range c.inputs {
		vals[w] = inputs[k]
		dim = inputs[k].N()
	}
	for i, n := range c.nodes {
		switch n.kind {
		case kindInput:
			// already assigned
		case kindLin:
			v, err := evalLin(n, vals, dim)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		case kindGate:
			v, err := seqGate(ev, n.op, vals[n.a], vals[n.b])
			if err != nil {
				return nil, err
			}
			vals[i] = v
		case kindLUT:
			table := n.table
			vals[i] = ev.EvalLUTKS(vals[n.in], n.space, func(m int) int { return table[m] })
		case kindMultiLUT:
			// The head sibling runs the whole group's shared rotation and
			// assigns every sibling; non-heads were filled by their head.
			// Circuits are parameter-agnostic, so the packing bound is
			// checked here — as an error, matching the engine-backed
			// Execute path for the same circuit.
			if n.mvIdx != 0 {
				continue
			}
			if err := ev.Params.ValidateMultiLUT(n.space, len(n.tables)); err != nil {
				return nil, err
			}
			outs := ev.EvalMultiLUTKS(vals[n.in], n.space, tfhe.TableFuncs(n.tables))
			for j, out := range outs {
				vals[i+j] = out
			}
		default:
			return nil, fmt.Errorf("sched: node %d has unknown kind %d", i, n.kind)
		}
	}
	outs := make([]tfhe.LWECiphertext, len(c.outputs))
	for k, w := range c.outputs {
		outs[k] = vals[w]
	}
	return outs, nil
}

// Runner executes schedules over the in-process engines, honoring each
// dispatch's cost-model routing. Either engine may be nil: dispatches
// fall back to whichever engine exists.
type Runner struct {
	// Batch is the flat worker-pool engine (short dispatches).
	Batch *engine.Engine
	// Stream is the staged pipeline engine (long dispatches).
	Stream *engine.StreamingEngine
}

// useStream resolves a dispatch's routing against the available engines.
func (r *Runner) useStream(d Dispatch) (bool, error) {
	if r.Stream == nil && r.Batch == nil {
		return false, fmt.Errorf("sched: runner has no engine")
	}
	if r.Stream == nil {
		return false, nil
	}
	if r.Batch == nil {
		return true, nil
	}
	return d.Stream, nil
}

// Gate implements Executor over the engines.
func (r *Runner) Gate(d Dispatch, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	stream, err := r.useStream(d)
	if err != nil {
		return nil, err
	}
	if stream {
		return r.Stream.StreamGate(d.Op, a, b)
	}
	return r.Batch.BatchGate(d.Op, a, b)
}

// LUT implements Executor over the engines.
func (r *Runner) LUT(d Dispatch, in []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	stream, err := r.useStream(d)
	if err != nil {
		return nil, err
	}
	table := d.Table
	f := func(m int) int { return table[m] }
	if stream {
		return r.Stream.StreamLUT(in, d.Space, f), nil
	}
	return r.Batch.BatchEvalLUT(in, d.Space, f), nil
}

// MultiLUT implements Executor over the engines: one blind rotation per
// group input, fanned out into the group's table outputs.
func (r *Runner) MultiLUT(d Dispatch, in []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	stream, err := r.useStream(d)
	if err != nil {
		return nil, err
	}
	fs := tfhe.TableFuncs(d.Tables)
	if stream {
		return r.Stream.StreamMultiLUT(in, d.Space, fs)
	}
	return r.Batch.BatchMultiLUT(in, d.Space, fs)
}

// Run compiles the circuit under cfg and executes it — the one-call path
// for callers that don't reuse schedules.
func (r *Runner) Run(c *Circuit, cfg Config, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	s, err := Compile(c, cfg)
	if err != nil {
		return nil, err
	}
	return Execute(c, s, inputs, r)
}

// RunSchedule executes an already-compiled schedule.
func (r *Runner) RunSchedule(c *Circuit, s *Schedule, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return Execute(c, s, inputs, r)
}
