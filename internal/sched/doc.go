// Package sched compiles homomorphic circuits — dataflow graphs of boolean
// gates, programmable-bootstrap lookup tables, and free linear
// combinations — into levelized schedules that keep the batching engines
// saturated.
//
// The sequential tfhe.Evaluator issues one PBS at a time; the engines of
// internal/engine only help when someone hands them big independent
// batches. This package is that someone: a Builder records the circuit as
// a DAG, Compile levelizes it into maximal dependency-free levels
// (longest-path depth over the PBS nodes, the epoch schedule of the
// paper's accelerator), groups each level into per-gate-op and
// per-lookup-table dispatches, and a cost model routes every dispatch to
// either the flat worker-pool Engine or the staged StreamingEngine.
// Execute then walks the schedule over any Executor — the in-process
// Runner, or the gate service's group-commit session path.
//
// Every dispatch runs the exact per-item computation of the sequential
// evaluator (the engines are bitwise-identical to it by construction), and
// linear nodes are wrapping torus arithmetic, so scheduled execution is
// bitwise-identical to RunSequential for any engine configuration.
package sched
