package sched

// passMultiValue rewrites plain-LUT fan-out into multi-value groups:
// LUT nodes reading the same input wire with the same message space are
// collected across the whole DAG (same input implies same PBS level, so
// regrouping never breaks a dependency) and regrouped, in build order,
// into contiguous kindMultiLUT sibling runs of up to cap outputs per
// shared blind rotation. A packed group materializes at its first
// member's position; later members' consumers follow the wire remap.
// Leftover runs of one stay plain LUTs. Explicit Builder.MultiLUT groups
// are left untouched: their packing (and its noise commitment) was the
// caller's choice. budget > 0 additionally bounds space·k per group so a
// caller that knows the executing parameter set can make packing
// parameter-safe (space·k ≤ N). Outputs decode identically to the
// unpacked schedule but are not bitwise identical (the shared rotation
// uses a k×-finer packed test vector). Returns the number of LUT nodes
// packed into groups.
func passMultiValue(c *Circuit, cap, budget int) (*Circuit, int) {
	if cap < 2 {
		return c, 0
	}
	type fanKey struct {
		in    Wire
		space int
	}
	members := make(map[fanKey][]Wire)
	var order []fanKey
	for i, n := range c.nodes {
		if n.kind != kindLUT {
			continue
		}
		fk := fanKey{in: n.in, space: n.space}
		if _, ok := members[fk]; !ok {
			order = append(order, fk)
		}
		members[fk] = append(members[fk], Wire(i))
	}
	chunkOf := make(map[Wire][]Wire) // first member → whole chunk
	headOf := make(map[Wire]Wire)    // member → first member
	packed := 0
	for _, fk := range order {
		width := cap
		if budget > 0 && budget/fk.space < width {
			width = budget / fk.space
		}
		if width < 2 {
			continue
		}
		ws := members[fk]
		for start := 0; start < len(ws); start += width {
			end := start + width
			if end > len(ws) {
				end = len(ws)
			}
			chunk := ws[start:end]
			if len(chunk) < 2 {
				continue
			}
			chunkOf[chunk[0]] = chunk
			for _, w := range chunk {
				headOf[w] = chunk[0]
			}
			packed += len(chunk)
		}
	}
	if packed == 0 {
		return c, 0
	}
	nodes := make([]node, 0, len(c.nodes))
	m := make([]Wire, len(c.nodes))
	emit := func(n node) Wire {
		nodes = append(nodes, n)
		return Wire(len(nodes) - 1)
	}
	for i := 0; i < len(c.nodes); i++ {
		n := c.nodes[i]
		if head, ok := headOf[Wire(i)]; ok {
			if head != Wire(i) {
				continue // emitted as a sibling at its head's position
			}
			chunk := chunkOf[head]
			tables := make([][]int, len(chunk))
			for j, w := range chunk {
				tables[j] = c.nodes[w].table
			}
			for j, w := range chunk {
				m[w] = emit(node{kind: kindMultiLUT, in: m[n.in], space: n.space, tables: tables, mvIdx: j})
			}
			continue
		}
		m[i] = emit(remapNode(n, m))
	}
	return finishRemap(c, nodes, m), packed
}
