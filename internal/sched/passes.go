package sched

import (
	"fmt"

	"repro/internal/torus"
)

// This file is the optimizer pipeline driver that sits between
// Builder/FromSpecs and Compile. The individual passes live in the
// opt_*.go files:
//
//	opt_prune.go      dead-node pruning back from the outputs
//	opt_linfold.go    linear-chain folding with coefficient merging
//	opt_fuse.go       bootstrap fusion (gate chains and LUT∘LUT)
//	opt_cse.go        common-subexpression elimination
//	opt_multivalue.go multi-value packing rewrite of LUT fan-out
//
// Pass order is fixed: prune → linfold → fuse → cse → prune → mvpack.
// Pruning runs twice because fusion and CSE strand the producers they
// bypass; packing runs last so it only spends rotation shares on LUTs
// that survived. See docs/ARCHITECTURE.md "Optimizer passes" for the
// legality argument of each pass.

// DefaultPackWidth is the OptAll multi-value packing cap: up to this many
// same-input, same-space LUT outputs share one blind rotation. The
// executing parameter set must satisfy space·k ≤ N (as for explicit
// MultiLUT groups); set OptConfig.MultiValueBudget when the parameters
// are known at compile time.
const DefaultPackWidth = 4

// OptConfig selects which optimizer passes Optimize (and Compile, via
// Config.Opt) runs. The zero value runs nothing.
type OptConfig struct {
	// Prune drops nodes no output depends on (inputs are always kept, so
	// the circuit interface is unchanged) and shrinks multi-value groups
	// with dead siblings. Decode- and noise-preserving for the surviving
	// outputs; bitwise-preserving except for shrunk groups.
	Prune bool
	// LinFold collapses nested linear-combination chains into one flat
	// term sum with merged coefficients (wrapping torus arithmetic is
	// associative and distributive, so folding is bitwise-preserving).
	LinFold bool
	// Fuse collapses bootstrap chains into single programmable
	// bootstraps: a 2-gate chain whose expanded operands span at most two
	// base wires becomes one gate (through free ±1 linear links, with
	// boolean-constant folding), and a LUT feeding a same-space LUT with
	// no other consumer composes into one table. Fusion assumes gate
	// operands carry the boolean encoding — which Builder circuits
	// satisfy by construction — and preserves decoded outputs, not bits.
	Fuse bool
	// CSE merges structurally identical gate/LUT/multi-LUT/linear nodes
	// (gates canonicalize their operand order; every binary gate's linear
	// stage is symmetric). Bitwise-preserving.
	CSE bool
	// MultiValue ≥ 2 rewrites same-input, same-space plain-LUT fan-out
	// into multi-value groups of up to MultiValue outputs per blind
	// rotation. Decode-preserving; not bitwise (the shared rotation uses
	// a k×-finer packed test vector), and the executing parameter set
	// must satisfy space·k ≤ N. Explicit Builder.MultiLUT groups are
	// left untouched — their noise commitment was the caller's choice.
	MultiValue int
	// MultiValueBudget, when > 0, bounds space·k of every packed group —
	// set it to the executing parameter set's N to make packing
	// parameter-safe. 0 applies no bound (circuits are
	// parameter-agnostic, exactly like explicit MultiLUT groups).
	MultiValueBudget int
}

// OptAll enables every pass with the default packing cap — the
// configuration behind the "optimized-scheduled" conformance backend and
// the server's opt-in circuit optimization.
func OptAll() OptConfig {
	return OptConfig{Prune: true, LinFold: true, Fuse: true, CSE: true, MultiValue: DefaultPackWidth}
}

// enabled reports whether any pass would run.
func (o OptConfig) enabled() bool {
	return o.Prune || o.LinFold || o.Fuse || o.CSE || o.MultiValue >= 2
}

// PassStat records one optimizer pass's measured effect on the circuit.
// Rewrites counts the nodes the pass rewrote or folded (its own metric);
// NodesRemoved/PBSRemoved are before/after deltas of the node count and
// blind-rotation cost, so a pass whose savings are realized by the later
// prune (fusion strands its bypassed producers) reports Rewrites > 0 with
// zero removals, and the prune entry banks the rest. NodesRemoved may be
// negative: fusion materializes free negation nodes.
type PassStat struct {
	Name         string
	Rewrites     int
	NodesRemoved int
	PBSRemoved   int
}

// pbsCost counts the blind rotations one execution of the circuit pays:
// one per gate or LUT node, one per multi-value group.
func pbsCost(c *Circuit) int {
	cost := 0
	for _, n := range c.nodes {
		switch n.kind {
		case kindGate, kindLUT:
			cost++
		case kindMultiLUT:
			if n.mvIdx == 0 {
				cost++
			}
		}
	}
	return cost
}

// Optimize runs the enabled passes over the circuit and returns the
// rewritten circuit (the input is never modified; with no passes enabled
// it is returned as-is) plus per-pass statistics. The optimized circuit
// consumes the same inputs and produces outputs that decode identically
// to the original on well-typed circuits; Compile records the stats so
// plan summaries show what each pass banked.
func Optimize(c *Circuit, opt OptConfig) (*Circuit, []PassStat, error) {
	if c == nil {
		return nil, nil, fmt.Errorf("sched: Optimize on a nil circuit")
	}
	cur := c
	var stats []PassStat
	idx := make(map[string]int)
	run := func(name string, on bool, f func(*Circuit) (*Circuit, int)) {
		if !on {
			return
		}
		nodesBefore, pbsBefore := len(cur.nodes), pbsCost(cur)
		next, rewrites := f(cur)
		nr, pr := nodesBefore-len(next.nodes), pbsBefore-pbsCost(next)
		cur = next
		if rewrites == 0 && nr == 0 && pr == 0 {
			return
		}
		if j, ok := idx[name]; ok {
			stats[j].Rewrites += rewrites
			stats[j].NodesRemoved += nr
			stats[j].PBSRemoved += pr
			return
		}
		idx[name] = len(stats)
		stats = append(stats, PassStat{Name: name, Rewrites: rewrites, NodesRemoved: nr, PBSRemoved: pr})
	}
	run("prune", opt.Prune, passPrune)
	run("linfold", opt.LinFold, passLinFold)
	run("fuse", opt.Fuse, passFuse)
	run("cse", opt.CSE, passCSE)
	run("prune", opt.Prune, passPrune)
	run("mvpack", opt.MultiValue >= 2, func(c *Circuit) (*Circuit, int) {
		return passMultiValue(c, opt.MultiValue, opt.MultiValueBudget)
	})
	return cur, stats, nil
}

// remapTerms rewrites the wire references of a term list through m.
func remapTerms(terms []Term, m []Wire) []Term {
	out := make([]Term, len(terms))
	for i, t := range terms {
		out[i] = Term{W: m[t.W], C: t.C}
	}
	return out
}

// remapNode rewrites one node's operand references through m. Table
// slices are shared, not copied — passes treat them as immutable.
func remapNode(n node, m []Wire) node {
	switch n.kind {
	case kindLin:
		n.terms = remapTerms(n.terms, m)
	case kindGate:
		n.a, n.b = m[n.a], m[n.b]
	case kindLUT, kindMultiLUT:
		n.in = m[n.in]
	}
	return n
}

// finishRemap assembles a rewritten circuit: the new node list plus the
// source circuit's input/output interface mapped through m.
func finishRemap(src *Circuit, nodes []node, m []Wire) *Circuit {
	out := &Circuit{nodes: nodes}
	out.inputs = make([]Wire, len(src.inputs))
	for i, w := range src.inputs {
		out.inputs[i] = m[w]
	}
	out.outputs = make([]Wire, len(src.outputs))
	for i, w := range src.outputs {
		out.outputs[i] = m[w]
	}
	return out
}

// liveMask marks the nodes some output transitively depends on. Inputs
// are always live: dropping one would change the circuit's interface.
func liveMask(c *Circuit) []bool {
	live := make([]bool, len(c.nodes))
	for _, w := range c.outputs {
		live[w] = true
	}
	for _, w := range c.inputs {
		live[w] = true
	}
	for i := len(c.nodes) - 1; i >= 0; i-- {
		if !live[i] {
			continue
		}
		n := c.nodes[i]
		switch n.kind {
		case kindLin:
			for _, t := range n.terms {
				live[t.W] = true
			}
		case kindGate:
			live[n.a] = true
			live[n.b] = true
		case kindLUT, kindMultiLUT:
			live[n.in] = true
		}
	}
	return live
}

// liveUses counts, per wire, how many live nodes (and outputs) consume
// it. Dead consumers are ignored so they never block a profitable
// rewrite between fusion rounds.
func liveUses(c *Circuit) []int {
	live := liveMask(c)
	uses := make([]int, len(c.nodes))
	for i, n := range c.nodes {
		if !live[i] {
			continue
		}
		switch n.kind {
		case kindLin:
			for _, t := range n.terms {
				uses[t.W]++
			}
		case kindGate:
			uses[n.a]++
			uses[n.b]++
		case kindLUT, kindMultiLUT:
			uses[n.in]++
		}
	}
	for _, w := range c.outputs {
		uses[w]++
	}
	return uses
}

// boolMuTorus is the boolean encoding magnitude 1/8 — the sched-side
// mirror of the tfhe package's boolMu, used for constant folding.
func boolMuTorus(b bool) torus.Torus32 {
	mu := torus.FromFloat(0.125)
	if b {
		return mu
	}
	return -mu
}
