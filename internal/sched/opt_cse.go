package sched

import (
	"sort"
	"strconv"
	"strings"
)

// passCSE merges structurally identical nodes: two nodes with the same
// kind, operation, and (remapped) operands compute the same value, so
// every later reference is redirected to the first occurrence and the
// duplicate is dropped. Keys canonicalize what evaluation order cannot
// observe: gate operands sort (every binary gate's linear stage is a
// symmetric component-wise sum, so G(a,b) and G(b,a) are bitwise
// identical), and linear terms sort by wire (component-wise addition
// commutes). Multi-value groups merge only as whole groups with
// identical table lists. Inputs never merge — each stands for a
// distinct caller-supplied ciphertext. The pass is bitwise-preserving.
// Returns the number of duplicate nodes eliminated.
func passCSE(c *Circuit) (*Circuit, int) {
	nodes := make([]node, 0, len(c.nodes))
	m := make([]Wire, len(c.nodes))
	seen := make(map[string]Wire)
	merged := 0
	emit := func(n node) Wire {
		nodes = append(nodes, n)
		return Wire(len(nodes) - 1)
	}
	for i := 0; i < len(c.nodes); i++ {
		n := c.nodes[i]
		switch n.kind {
		case kindInput:
			m[i] = emit(n)
		case kindLin:
			nn := node{kind: kindLin, k: n.k, terms: remapTerms(n.terms, m)}
			key := linCSEKey(nn)
			if w, ok := seen[key]; ok {
				m[i] = w
				merged++
				continue
			}
			m[i] = emit(nn)
			seen[key] = m[i]
		case kindGate:
			a, b := m[n.a], m[n.b]
			ca, cb := a, b
			if cb < ca {
				ca, cb = cb, ca
			}
			key := "g:" + n.op.String() + ":" + strconv.Itoa(int(ca)) + ":" + strconv.Itoa(int(cb))
			if w, ok := seen[key]; ok {
				m[i] = w
				merged++
				continue
			}
			m[i] = emit(node{kind: kindGate, op: n.op, a: a, b: b})
			seen[key] = m[i]
		case kindLUT:
			in := m[n.in]
			key := "t:" + strconv.Itoa(int(in)) + ":" + lutDispatchKey(n.space, n.table)
			if w, ok := seen[key]; ok {
				m[i] = w
				merged++
				continue
			}
			m[i] = emit(node{kind: kindLUT, in: in, space: n.space, table: n.table})
			seen[key] = m[i]
		case kindMultiLUT:
			// The head carries the whole group; k sibling wires map as a
			// block onto the kept group's siblings.
			k := len(n.tables)
			in := m[n.in]
			key := "m:" + strconv.Itoa(int(in)) + ":" + multiLUTDispatchKey(n.space, n.tables)
			if w, ok := seen[key]; ok {
				for j := 0; j < k; j++ {
					m[i+j] = w + Wire(j)
				}
				merged += k
			} else {
				seen[key] = Wire(len(nodes))
				for j := 0; j < k; j++ {
					nn := c.nodes[i+j]
					nn.in = in
					m[i+j] = emit(nn)
				}
			}
			i += k - 1
		}
	}
	if merged == 0 {
		return c, 0
	}
	return finishRemap(c, nodes, m), merged
}

// linCSEKey renders a linear node's canonical key: constant plus the
// terms sorted by wire (ties by coefficient). Sorting is sound because
// component-wise wrapping addition commutes, so any term order computes
// the same bits.
func linCSEKey(n node) string {
	terms := append([]Term(nil), n.terms...)
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].W != terms[j].W {
			return terms[i].W < terms[j].W
		}
		return terms[i].C < terms[j].C
	})
	var b strings.Builder
	b.WriteString("lin:")
	b.WriteString(strconv.FormatUint(uint64(n.k), 16))
	for _, t := range terms {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(t.W)))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(t.C), 10))
	}
	return b.String()
}
