package sched

import "repro/internal/engine"

// passFuse collapses bootstrap chains into single programmable
// bootstraps. Two shapes fuse:
//
//   - A LUT whose input is another same-space LUT with no other live
//     consumer composes the two tables into one (t2∘t1) — one blind
//     rotation where the chain paid two.
//   - A binary gate whose operands, chased through free ±1 linear links
//     (NOT chains) with boolean constants folded, expand over at most
//     two distinct base wires: the composed truth table synthesizes back
//     to an encrypted constant, a free copy/negation, or one gate over
//     the base wires (every two-variable boolean function is reachable
//     from the six ops plus free input negation). A producer gate is
//     only expanded when it and its linear links have no other live
//     consumer, so every rewrite strictly removes one rotation once the
//     stranded producer is pruned.
//
// Gate fusion assumes gate operands carry the boolean ±1/8 encoding
// (true of Builder circuits by construction); outputs decode identically
// but are not bitwise identical to the unfused schedule. The pass
// iterates until no rewrite applies, so longer chains collapse fully.
// Returns the total number of fused/rewritten nodes.
func passFuse(c *Circuit) (*Circuit, int) {
	total := 0
	for round := 0; round <= len(c.nodes); round++ {
		next, n := fuseRound(c)
		c = next
		total += n
		if n == 0 {
			break
		}
	}
	return c, total
}

// fuseRound performs one sweep of single-step fusions over the circuit.
// Analysis runs on the input circuit (use counts mask dead consumers, so
// producers stranded by earlier rounds never block a rewrite); deeper
// chains collapse across rounds.
func fuseRound(c *Circuit) (*Circuit, int) {
	uses := liveUses(c)
	nodes := make([]node, 0, len(c.nodes))
	m := make([]Wire, len(c.nodes))
	emit := func(n node) Wire {
		nodes = append(nodes, n)
		return Wire(len(nodes) - 1)
	}
	fused := 0
	for i := 0; i < len(c.nodes); i++ {
		n := c.nodes[i]
		switch n.kind {
		case kindLUT:
			if p := c.nodes[n.in]; p.kind == kindLUT && p.space == n.space && uses[n.in] == 1 {
				comp := make([]int, n.space)
				for mi := range comp {
					comp[mi] = n.table[p.table[mi]]
				}
				m[i] = emit(node{kind: kindLUT, in: m[p.in], space: n.space, table: comp})
				fused++
				continue
			}
			m[i] = emit(remapNode(n, m))
		case kindGate:
			tt, bases, ok := fuseAnalyzeGate(c, uses, n)
			if !ok {
				m[i] = emit(remapNode(n, m))
				continue
			}
			m[i] = synthBool(tt, bases, m, emit)
			fused++
		default:
			m[i] = emit(remapNode(n, m))
		}
	}
	if fused == 0 {
		return c, 0
	}
	return finishRemap(c, nodes, m), fused
}

// chaseLit follows free ±1 single-term linear nodes (NOT chains and
// copies) from w down to a base wire, returning the base, the
// accumulated polarity flip, and the linear wires traversed.
func chaseLit(c *Circuit, w Wire) (base Wire, neg bool, path []Wire) {
	for {
		n := c.nodes[w]
		if n.kind != kindLin || n.k != 0 || len(n.terms) != 1 {
			return w, neg, path
		}
		switch n.terms[0].C {
		case 1:
		case -1:
			neg = !neg
		default:
			return w, neg, path
		}
		path = append(path, w)
		w = n.terms[0].W
	}
}

// boolConstOf reports whether a node is an encrypted boolean constant (a
// term-less linear node holding exactly ±1/8) and its value.
func boolConstOf(n node) (val, ok bool) {
	if n.kind != kindLin || len(n.terms) != 0 {
		return false, false
	}
	switch n.k {
	case boolMuTorus(true):
		return true, true
	case boolMuTorus(false):
		return false, true
	}
	return false, false
}

// litOperand is one analyzed gate operand: a boolean function over at
// most two base wires. kills marks an expanded producer gate whose
// rotation dies with the rewrite.
type litOperand struct {
	bases []Wire
	eval  func(v map[Wire]bool) bool
	kills bool
}

// analyzeLeaf resolves an operand without expanding producer gates:
// a folded boolean constant or a (possibly negated) base wire.
func analyzeLeaf(c *Circuit, w Wire) litOperand {
	base, neg, _ := chaseLit(c, w)
	if v, ok := boolConstOf(c.nodes[base]); ok {
		val := v != neg
		return litOperand{eval: func(map[Wire]bool) bool { return val }}
	}
	return litOperand{bases: []Wire{base}, eval: func(v map[Wire]bool) bool { return v[base] != neg }}
}

// analyzeExpand resolves an operand by expanding its producer gate,
// legal only when the producer and every linear link on the way have no
// other live consumer (so the producer's rotation is actually saved).
func analyzeExpand(c *Circuit, uses []int, w Wire) (litOperand, bool) {
	base, neg, path := chaseLit(c, w)
	n := c.nodes[base]
	if n.kind != kindGate || uses[base] != 1 {
		return litOperand{}, false
	}
	for _, p := range path {
		if uses[p] != 1 {
			return litOperand{}, false
		}
	}
	la := analyzeLeaf(c, n.a)
	lb := analyzeLeaf(c, n.b)
	op := n.op
	return litOperand{
		bases: unionBases(la.bases, lb.bases),
		eval:  func(v map[Wire]bool) bool { return op.Eval(la.eval(v), lb.eval(v)) != neg },
		kills: true,
	}, true
}

// unionBases merges base-wire sets preserving first-appearance order.
func unionBases(a, b []Wire) []Wire {
	out := append([]Wire(nil), a...)
	for _, w := range b {
		dup := false
		for _, x := range out {
			if x == w {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// fuseAnalyzeGate decides whether gate node n can profitably fuse,
// returning the composed truth table over the returned base wires
// (bases[0] is truth-table bit 0, bases[1] bit 1). Expansion combos are
// tried most-aggressive first; a combo is accepted when it spans ≤ 2
// bases and either kills a producer rotation or degenerates the gate to
// a free node (≤ 1 base).
func fuseAnalyzeGate(c *Circuit, uses []int, n node) (tt [4]bool, bases []Wire, ok bool) {
	for _, combo := range [4][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
		la, okA := litOperand{}, true
		if combo[0] {
			la, okA = analyzeExpand(c, uses, n.a)
		} else {
			la = analyzeLeaf(c, n.a)
		}
		lb, okB := litOperand{}, true
		if combo[1] {
			lb, okB = analyzeExpand(c, uses, n.b)
		} else {
			lb = analyzeLeaf(c, n.b)
		}
		if !okA || !okB {
			continue
		}
		bs := unionBases(la.bases, lb.bases)
		if len(bs) > 2 {
			continue
		}
		if !la.kills && !lb.kills && len(bs) >= 2 {
			continue // nothing saved: leave the gate alone
		}
		assign := make(map[Wire]bool, 2)
		op := n.op
		for idx := 0; idx < 4; idx++ {
			if len(bs) > 0 {
				assign[bs[0]] = idx&1 == 1
			}
			if len(bs) > 1 {
				assign[bs[1]] = idx&2 == 2
			}
			tt[idx] = op.Eval(la.eval(assign), lb.eval(assign))
		}
		return tt, bs, true
	}
	return tt, nil, false
}

// synthBool materializes a boolean function of ≤ 2 base wires into the
// circuit under construction: an encrypted constant, a free copy or
// negation, or one gate with free input negations — covering all 16
// two-variable functions. Degenerate dependence (a table ignoring one
// base) reduces before synthesis. Returns the wire holding the result.
func synthBool(tt [4]bool, bases []Wire, m []Wire, emit func(node) Wire) Wire {
	// Reduce away ignored variables.
	if len(bases) == 2 {
		switch {
		case tt[0] == tt[2] && tt[1] == tt[3]: // ignores bases[1]
			bases = bases[:1]
			tt = [4]bool{tt[0], tt[1], tt[0], tt[1]}
		case tt[0] == tt[1] && tt[2] == tt[3]: // ignores bases[0]
			bases = []Wire{bases[1]}
			tt = [4]bool{tt[0], tt[2], tt[0], tt[2]}
		}
	}
	if len(bases) == 1 && tt[0] == tt[1] {
		bases = nil
	}
	neg := func(w Wire) Wire {
		return emit(node{kind: kindLin, terms: []Term{{W: w, C: -1}}})
	}
	switch len(bases) {
	case 0:
		return emit(node{kind: kindLin, k: boolMuTorus(tt[0])})
	case 1:
		if !tt[0] && tt[1] { // identity
			return m[bases[0]]
		}
		return neg(m[bases[0]]) // the constant cases reduced above
	}
	op, pa, pb := findGate(tt)
	a, b := m[bases[0]], m[bases[1]]
	if pa {
		a = neg(a)
	}
	if pb {
		b = neg(b)
	}
	return emit(node{kind: kindGate, op: op, a: a, b: b})
}

// findGate searches the six batched ops with optional input negations
// for one realizing the (genuinely two-variable) truth table. Positive
// polarities are preferred so plain shapes synthesize plainly.
func findGate(tt [4]bool) (op engine.GateOp, pa, pb bool) {
	for _, op := range [6]engine.GateOp{engine.AND, engine.OR, engine.XOR, engine.NAND, engine.NOR, engine.XNOR} {
		for _, pol := range [4][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			match := true
			for idx := 0; idx < 4; idx++ {
				a := (idx&1 == 1) != pol[0]
				b := (idx&2 == 2) != pol[1]
				if op.Eval(a, b) != tt[idx] {
					match = false
					break
				}
			}
			if match {
				return op, pol[0], pol[1]
			}
		}
	}
	// Unreachable: the 6 ops with input negations cover all ten
	// two-variable-dependent functions; the degenerate six reduced in
	// synthBool.
	panic("sched: no gate realizes truth table")
}
