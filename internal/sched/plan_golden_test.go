// Golden plan shapes. This file is in package sched_test (the only one
// in the directory) because it imports intops and workload, which
// themselves import sched.
package sched_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/intops"
	"repro/internal/sched"
	"repro/internal/workload"
)

// updatePlans regenerates the golden plan fixtures:
//
//	go test ./internal/sched -run TestGoldenPlans -update-plans
//
// A diff in these files means the scheduler's levelization, dispatch
// grouping, or an optimizer pass changed shape — review the new plan
// before committing it.
var updatePlans = flag.Bool("update-plans", false, "rewrite the golden plan fixtures")

// mulCircuit3 is the 3-digit radix-4 multiplier — the bench circuit the
// optimized_vs_naive ratio gate runs.
func mulCircuit3(t *testing.T) *sched.Circuit {
	t.Helper()
	c, err := intops.MulCircuit(3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// nnCircuit is a small deep-NN workload slice: 3 layers over 3 inputs.
// Width 4 over 3 wires means exactly one neuron per layer duplicates
// another's fan-in pair — the plan shows CSE deduplicating that neuron
// while the rest of the layer survives.
func nnCircuit(t *testing.T) *sched.Circuit {
	t.Helper()
	b := sched.NewBuilder()
	outs, err := workload.BuildNN(b, b.Inputs(3), []int{4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	b.Output(outs...)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGoldenPlans pins Schedule.Describe for the benchmark circuits,
// before and after optimization, against committed fixtures. The
// optimized plans double as a regression floor on what the pipeline
// achieves: if a pass stops firing, the pass table and PBS counts move.
func TestGoldenPlans(t *testing.T) {
	cases := []struct {
		name  string
		build func(*testing.T) *sched.Circuit
		cfg   sched.Config
	}{
		{"mul3_naive", mulCircuit3, sched.Config{}},
		{"mul3_optimized", mulCircuit3, sched.Config{Opt: sched.OptAll()}},
		{"nn_naive", nnCircuit, sched.Config{}},
		{"nn_optimized", nnCircuit, sched.Config{Opt: sched.OptAll()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := sched.Compile(tc.build(t), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := s.Describe()
			path := filepath.Join("testdata", "plans", tc.name+".golden")
			if *updatePlans {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update-plans to generate)", err)
			}
			if got != string(want) {
				t.Errorf("plan shape drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
