package sched

import "repro/internal/torus"

// passLinFold flattens nested linear-combination chains: every linear
// term that references another linear node is inlined (constant and
// coefficients scaled by the term's coefficient, with wrapping int32
// arithmetic — exactly the composition of MulScalar calls), duplicate
// wires merge their coefficients, and zero coefficients drop. Because
// every evaluation step is component-wise wrapping torus arithmetic,
// folding is bitwise-preserving. Nodes fold against already-folded
// predecessors, so one sweep fully flattens arbitrarily deep chains.
// Folded-out predecessors stay in place for the prune pass to collect.
// Returns the number of linear nodes rewritten.
func passLinFold(c *Circuit) (*Circuit, int) {
	nodes := make([]node, len(c.nodes))
	copy(nodes, c.nodes)
	folded := 0
	for i, n := range nodes {
		if n.kind != kindLin {
			continue
		}
		k := n.k
		var order []Wire
		coeff := make(map[Wire]int32)
		add := func(w Wire, cf int32) {
			if _, ok := coeff[w]; !ok {
				order = append(order, w)
			}
			coeff[w] += cf
		}
		for _, t := range n.terms {
			if t.C == 0 {
				continue
			}
			if sub := nodes[t.W]; sub.kind == kindLin {
				k += torus.Torus32(int32(sub.k) * t.C)
				for _, st := range sub.terms {
					add(st.W, st.C*t.C)
				}
				continue
			}
			add(t.W, t.C)
		}
		terms := make([]Term, 0, len(order))
		for _, w := range order {
			if cf := coeff[w]; cf != 0 {
				terms = append(terms, Term{W: w, C: cf})
			}
		}
		if k == n.k && termsEqual(terms, n.terms) {
			continue
		}
		nodes[i] = node{kind: kindLin, k: k, terms: terms}
		folded++
	}
	if folded == 0 {
		return c, 0
	}
	return &Circuit{nodes: nodes, inputs: c.inputs, outputs: c.outputs}, folded
}

// termsEqual reports exact (order-sensitive) term-list equality.
func termsEqual(a, b []Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
