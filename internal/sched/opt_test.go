package sched

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/tfhe"
	"repro/internal/torus"
)

// encBool / encMsg build test ciphertexts under the package keys.
func encBool(rng *rand.Rand, v bool) tfhe.LWECiphertext {
	return testSK.EncryptBool(rng, v)
}

func encMsg(rng *rand.Rand, m, space int) tfhe.LWECiphertext {
	return testSK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, space), tfhe.ParamsTest.LWEStdDev)
}

// mustOptimize runs Optimize, failing the test on error.
func mustOptimize(t *testing.T, c *Circuit, opt OptConfig) (*Circuit, []PassStat) {
	t.Helper()
	oc, stats, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if oc.NumInputs() != c.NumInputs() {
		t.Fatalf("optimizer changed input count: %d -> %d", c.NumInputs(), oc.NumInputs())
	}
	if oc.NumOutputs() != c.NumOutputs() {
		t.Fatalf("optimizer changed output count: %d -> %d", c.NumOutputs(), oc.NumOutputs())
	}
	return oc, stats
}

// seqBits runs the circuit sequentially and returns raw outputs.
func seqBits(t *testing.T, c *Circuit, ins []tfhe.LWECiphertext) []tfhe.LWECiphertext {
	t.Helper()
	outs, err := RunSequential(c, tfhe.NewEvaluator(testEK), ins)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestPassPruneDropsDeadKeepsInputs(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	live := b.Gate(engine.AND, x, y)
	b.Gate(engine.XOR, x, y)       // dead gate
	b.Lin(0, Term{W: x, C: 1})     // dead lin
	b.LUT(x, 4, []int{0, 1, 2, 3}) // dead LUT
	b.Input()                      // unused input: must survive
	b.Output(live)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, stats := mustOptimize(t, c, OptConfig{Prune: true})
	if oc.NumNodes() != 4 { // 3 inputs + AND
		t.Fatalf("pruned circuit has %d nodes, want 4", oc.NumNodes())
	}
	if len(stats) != 1 || stats[0].Name != "prune" || stats[0].NodesRemoved != 3 || stats[0].PBSRemoved != 2 {
		t.Fatalf("unexpected prune stats: %+v", stats)
	}
	rng := rand.New(rand.NewSource(1))
	ins := []tfhe.LWECiphertext{encBool(rng, true), encBool(rng, true), encBool(rng, false)}
	want := seqBits(t, c, ins)
	got := seqBits(t, oc, ins)
	if len(got) != 1 || !sameCT(got[0], want[0]) {
		t.Fatal("prune changed the surviving output bits")
	}
}

func TestPassPruneShrinksMultiLUTGroups(t *testing.T) {
	const space = 4
	build := func(keep []int) (*Circuit, *Circuit) {
		// full: a 3-table group with only `keep` outputs used.
		b := NewBuilder()
		in := b.Input()
		ws := b.MultiLUT(in, space, mvTables(space, 3))
		for _, j := range keep {
			b.Output(ws[j])
		}
		full, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		oc, _ := mustOptimize(t, full, OptConfig{Prune: true})
		return full, oc
	}

	full, oc := build([]int{0, 2})
	if oc.NumNodes() != 3 { // input + 2 shrunk siblings
		t.Fatalf("shrunk circuit has %d nodes, want 3", oc.NumNodes())
	}
	rng := rand.New(rand.NewSource(2))
	for m := 0; m < space; m++ {
		ins := []tfhe.LWECiphertext{encMsg(rng, m, space)}
		want := seqBits(t, full, ins)
		got := seqBits(t, oc, ins)
		for i := range want {
			w := tfhe.DecodePBSMessage(testSK.LWE.Phase(want[i]), space)
			g := tfhe.DecodePBSMessage(testSK.LWE.Phase(got[i]), space)
			if w != g {
				t.Fatalf("m=%d output %d: decode %d != %d", m, i, g, w)
			}
		}
	}

	// One live sibling degenerates to a plain LUT.
	_, oc = build([]int{1})
	if oc.NumNodes() != 2 {
		t.Fatalf("single-survivor circuit has %d nodes, want 2", oc.NumNodes())
	}
	if oc.nodes[1].kind != kindLUT {
		t.Fatalf("single survivor kept kind %d, want plain LUT", oc.nodes[1].kind)
	}

	// A fully dead group vanishes.
	b := NewBuilder()
	in := b.Input()
	b.MultiLUT(in, space, mvTables(space, 3))
	b.Output(in)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, _ = mustOptimize(t, c, OptConfig{Prune: true})
	if oc.NumNodes() != 1 {
		t.Fatalf("dead group left %d nodes, want 1", oc.NumNodes())
	}
}

func TestPassLinFoldFlattensChainsBitwise(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	l1 := b.Lin(torus.FromFloat(0.125), Term{W: x, C: 2}, Term{W: y, C: -1})
	l2 := b.Lin(torus.FromFloat(0.25), Term{W: l1, C: 3}, Term{W: x, C: 1})
	l3 := b.Lin(0, Term{W: l2, C: -1}, Term{W: l1, C: 1}, Term{W: y, C: 0})
	b.Output(l3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, stats := mustOptimize(t, c, OptConfig{LinFold: true})
	// l3 must now be flat: terms reference inputs only.
	for _, tm := range oc.nodes[l3].terms {
		if oc.nodes[tm.W].kind != kindInput {
			t.Fatalf("folded node still references non-input wire %d", tm.W)
		}
	}
	if len(stats) != 1 || stats[0].Name != "linfold" || stats[0].Rewrites == 0 {
		t.Fatalf("unexpected linfold stats: %+v", stats)
	}
	rng := rand.New(rand.NewSource(3))
	ins := []tfhe.LWECiphertext{encBool(rng, true), encBool(rng, false)}
	want := seqBits(t, c, ins)
	got := seqBits(t, oc, ins)
	if !sameCT(got[0], want[0]) {
		t.Fatal("linear folding is not bitwise-preserving")
	}
}

func TestPassCSEMergesDuplicatesBitwise(t *testing.T) {
	table := []int{1, 0, 3, 2}
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	g1 := b.Gate(engine.AND, x, y)
	g2 := b.Gate(engine.AND, y, x) // same gate, swapped operands
	l1 := b.Lin(5, Term{W: x, C: 1}, Term{W: y, C: 2})
	l2 := b.Lin(5, Term{W: y, C: 2}, Term{W: x, C: 1}) // same sum, reordered
	u1 := b.LUT(g1, 4, table)
	u2 := b.LUT(g2, 4, table) // identical once g2 merges into g1
	m1 := b.MultiLUT(g1, 4, mvTables(4, 2))
	m2 := b.MultiLUT(g1, 4, mvTables(4, 2))
	b.Output(g1, g2, l1, l2, u1, u2)
	b.Output(m1...)
	b.Output(m2...)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, stats := mustOptimize(t, c, OptConfig{CSE: true})
	// 2 inputs + gate + lin + LUT + 2-sibling group = 7 nodes.
	if oc.NumNodes() != 7 {
		t.Fatalf("CSE left %d nodes, want 7", oc.NumNodes())
	}
	if len(stats) != 1 || stats[0].Name != "cse" || stats[0].NodesRemoved != 5 {
		t.Fatalf("unexpected cse stats: %+v", stats)
	}
	rng := rand.New(rand.NewSource(4))
	ins := []tfhe.LWECiphertext{encBool(rng, true), encBool(rng, true)}
	want := seqBits(t, c, ins)
	got := seqBits(t, oc, ins)
	for i := range want {
		if !sameCT(got[i], want[i]) {
			t.Fatalf("CSE output %d is not bitwise identical", i)
		}
	}
}

// decodeBools decrypts boolean outputs.
func decodeBools(outs []tfhe.LWECiphertext) []bool {
	bs := make([]bool, len(outs))
	for i, o := range outs {
		bs[i] = testSK.DecryptBool(o)
	}
	return bs
}

func TestPassFuseGateChains(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(b *Builder, x, y Wire) Wire
		want  func(x, y bool) bool
		pbs   int // expected PBS after fuse+prune
	}{
		{
			"and-nand chain", // NAND(AND(x,y), x) ≡ NAND(x, y)
			func(b *Builder, x, y Wire) Wire { return b.Gate(engine.NAND, b.Gate(engine.AND, x, y), x) },
			func(x, y bool) bool { return !(x && y) },
			1,
		},
		{
			"xor of not", // XOR(NOT x, y) stays one gate (free negation folds)
			func(b *Builder, x, y Wire) Wire { return b.Gate(engine.XOR, b.Not(x), b.Gate(engine.OR, x, y)) },
			func(x, y bool) bool { return !x != (x || y) },
			1,
		},
		{
			"same-wire degenerate", // XOR(x, x) ≡ false, no PBS at all
			func(b *Builder, x, y Wire) Wire { return b.Gate(engine.XOR, x, x) },
			func(x, y bool) bool { return false },
			0,
		},
		{
			"copy degenerate", // OR(x, x) ≡ x
			func(b *Builder, x, y Wire) Wire { return b.Gate(engine.OR, x, x) },
			func(x, y bool) bool { return x },
			0,
		},
		{
			"not-chain collapse", // AND(NOT NOT x, NOT y)
			func(b *Builder, x, y Wire) Wire { return b.Gate(engine.AND, b.Not(b.Not(x)), b.Not(y)) },
			func(x, y bool) bool { return x && !y },
			1,
		},
		{
			"two-gate same bases", // OR(AND(x,y), XOR(x,y)) ≡ OR(x,y)
			func(b *Builder, x, y Wire) Wire {
				return b.Gate(engine.OR, b.Gate(engine.AND, x, y), b.Gate(engine.XOR, x, y))
			},
			func(x, y bool) bool { return x || y },
			1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			x, y := b.Input(), b.Input()
			b.Output(tc.build(b, x, y))
			c, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			oc, _ := mustOptimize(t, c, OptConfig{Fuse: true, Prune: true})
			if got := pbsCost(oc); got != tc.pbs {
				t.Fatalf("fused circuit costs %d PBS, want %d", got, tc.pbs)
			}
			rng := rand.New(rand.NewSource(5))
			for bit := 0; bit < 4; bit++ {
				xv, yv := bit&1 == 1, bit&2 == 2
				ins := []tfhe.LWECiphertext{encBool(rng, xv), encBool(rng, yv)}
				got := decodeBools(seqBits(t, oc, ins))
				if got[0] != tc.want(xv, yv) {
					t.Fatalf("x=%v y=%v: fused output %v, want %v", xv, yv, got[0], tc.want(xv, yv))
				}
			}
		})
	}
}

func TestPassFuseRespectsSharedProducers(t *testing.T) {
	// The inner AND has two consumers: expanding it into either would
	// duplicate its rotation, so nothing may fuse.
	b := NewBuilder()
	x, y, z := b.Input(), b.Input(), b.Input()
	g := b.Gate(engine.AND, x, y)
	b.Output(b.Gate(engine.OR, g, z))
	b.Output(b.Gate(engine.XOR, g, z))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, stats := mustOptimize(t, c, OptConfig{Fuse: true, Prune: true})
	if got := pbsCost(oc); got != 3 {
		t.Fatalf("shared producer circuit costs %d PBS, want 3", got)
	}
	for _, p := range stats {
		if p.Name == "fuse" && p.Rewrites != 0 {
			t.Fatalf("fuse rewrote a shared producer: %+v", stats)
		}
	}
}

func TestPassFuseLUTChains(t *testing.T) {
	const space = 8
	t1 := []int{1, 2, 3, 4, 5, 6, 7, 0}
	t2 := []int{0, 0, 1, 1, 2, 2, 3, 3}
	t3 := []int{7, 6, 5, 4, 3, 2, 1, 0}
	b := NewBuilder()
	in := b.Input()
	b.Output(b.LUT(b.LUT(b.LUT(in, space, t1), space, t2), space, t3))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, _ := mustOptimize(t, c, OptConfig{Fuse: true, Prune: true})
	if got := pbsCost(oc); got != 1 {
		t.Fatalf("LUT chain fused to %d PBS, want 1", got)
	}
	rng := rand.New(rand.NewSource(6))
	for m := 0; m < space; m++ {
		ins := []tfhe.LWECiphertext{encMsg(rng, m, space)}
		got := tfhe.DecodePBSMessage(testSK.LWE.Phase(seqBits(t, oc, ins)[0]), space)
		if want := t3[t2[t1[m]]]; got != want {
			t.Fatalf("m=%d: fused chain decodes to %d, want %d", m, got, want)
		}
	}

	// A shared intermediate LUT must not fuse away.
	b = NewBuilder()
	in = b.Input()
	mid := b.LUT(in, space, t1)
	b.Output(b.LUT(mid, space, t2), mid)
	c, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, _ = mustOptimize(t, c, OptConfig{Fuse: true, Prune: true})
	if got := pbsCost(oc); got != 2 {
		t.Fatalf("shared LUT chain costs %d PBS, want 2", got)
	}
}

func TestPassMultiValuePacksFanOut(t *testing.T) {
	const space = 4
	b := NewBuilder()
	in := b.Input()
	tabs := mvTables(space, 5)
	for _, tab := range tabs {
		b.Output(b.LUT(in, space, tab))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, stats := mustOptimize(t, c, OptConfig{MultiValue: 2})
	if got := pbsCost(oc); got != 3 { // chunks of 2+2, leftover 1
		t.Fatalf("packed circuit costs %d PBS, want 3", got)
	}
	if len(stats) != 1 || stats[0].Name != "mvpack" || stats[0].Rewrites != 4 || stats[0].PBSRemoved != 2 {
		t.Fatalf("unexpected mvpack stats: %+v", stats)
	}
	rng := rand.New(rand.NewSource(7))
	for m := 0; m < space; m++ {
		ins := []tfhe.LWECiphertext{encMsg(rng, m, space)}
		outs := seqBits(t, oc, ins)
		for i, tab := range tabs {
			if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(outs[i]), space); got != tab[m] {
				t.Fatalf("m=%d table %d: decode %d, want %d", m, i, got, tab[m])
			}
		}
	}

	// The budget caps space·k: budget 8 at space 4 allows only pairs;
	// budget 4 disables packing entirely.
	oc, _ = mustOptimize(t, c, OptConfig{MultiValue: 4, MultiValueBudget: 8})
	if got := pbsCost(oc); got != 3 {
		t.Fatalf("budget-8 packing costs %d PBS, want 3", got)
	}
	oc, _ = mustOptimize(t, c, OptConfig{MultiValue: 4, MultiValueBudget: 4})
	if got := pbsCost(oc); got != 5 {
		t.Fatalf("budget-4 packing costs %d PBS, want 5", got)
	}
}

func TestPassMultiValueLeavesExplicitGroups(t *testing.T) {
	const space = 4
	b := NewBuilder()
	in := b.Input()
	ws := b.MultiLUT(in, space, mvTables(space, 2))
	b.Output(ws...)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, stats := mustOptimize(t, c, OptConfig{MultiValue: 4})
	if len(stats) != 0 {
		t.Fatalf("explicit group was rewritten: %+v", stats)
	}
	if oc != c {
		t.Fatal("circuit with only explicit groups should pass through unchanged")
	}
}

// TestOptimizeAllPipelineDecode runs the full pipeline over a mixed
// circuit and pins the decoded outputs plus the PBS reduction.
func TestOptimizeAllPipelineDecode(t *testing.T) {
	const space = 8
	sq := make([]int, space)
	neg := make([]int, space)
	for m := range sq {
		sq[m] = (m * m) % space
		neg[m] = (space - 1) - m
	}
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	v := b.Input()
	s1 := b.Gate(engine.XOR, x, y)
	s2 := b.Gate(engine.XOR, y, x) // CSE victim
	b.Output(b.Gate(engine.AND, s1, s2))
	u1 := b.LUT(v, space, sq)
	b.Output(b.LUT(u1, space, neg)) // fuses, then packs with u2
	u2 := b.LUT(v, space, neg)
	b.Output(u2)
	b.LUT(v, space, sq) // dead
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oc, stats := mustOptimize(t, c, OptAll())
	naive, opt := pbsCost(c), pbsCost(oc)
	if opt >= naive {
		t.Fatalf("pipeline did not reduce PBS: %d -> %d", naive, opt)
	}
	sum := 0
	for _, p := range stats {
		sum += p.PBSRemoved
	}
	if sum != naive-opt {
		t.Fatalf("per-pass PBSRemoved sums to %d, want %d (stats %+v)", sum, naive-opt, stats)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 4; trial++ {
		xv, yv := rng.Intn(2) == 0, rng.Intn(2) == 0
		mv := rng.Intn(space)
		ins := []tfhe.LWECiphertext{encBool(rng, xv), encBool(rng, yv), encMsg(rng, mv, space)}
		outs := seqBits(t, oc, ins)
		if got := testSK.DecryptBool(outs[0]); got != (xv != yv) {
			t.Fatalf("bool output: got %v, want %v", got, xv != yv)
		}
		if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(outs[1]), space); got != neg[sq[mv]] {
			t.Fatalf("fused output: got %d, want %d", got, neg[sq[mv]])
		}
		if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(outs[2]), space); got != neg[mv] {
			t.Fatalf("neg output: got %d, want %d", got, neg[mv])
		}
	}
}

// TestCompileWithOptRunsEndToEnd pins Compile/Execute integration: the
// schedule carries the rewritten circuit while Execute validates against
// the source circuit, and the plan summary mentions the optimizer.
func TestCompileWithOptRunsEndToEnd(t *testing.T) {
	const space = 8
	tab := []int{3, 1, 4, 1, 5, 0, 2, 6}
	b := NewBuilder()
	v := b.Input()
	u1 := b.LUT(v, space, tab)
	u2 := b.LUT(v, space, tab) // CSE victim
	b.Output(u1, u2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Compile(c, Config{Opt: OptAll()})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Stats().TotalPBS != 1 {
		t.Fatalf("optimized schedule costs %d PBS, want 1", sch.Stats().TotalPBS)
	}
	if len(sch.Stats().OptPasses) == 0 {
		t.Fatal("schedule stats carry no pass records")
	}
	if s := sch.String(); !strings.Contains(s, "optimizer") {
		t.Fatalf("plan summary does not mention the optimizer: %q", s)
	}
	if d := sch.Describe(); !strings.Contains(d, "pass cse") {
		t.Fatalf("plan description misses the pass table:\n%s", d)
	}
	r := &Runner{Batch: engine.New(testEK, engine.Config{Workers: 2})}
	rng := rand.New(rand.NewSource(9))
	for m := 0; m < space; m++ {
		ins := []tfhe.LWECiphertext{encMsg(rng, m, space)}
		outs, err := r.RunSchedule(c, sch, ins)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(outs[i]), space); got != tab[m] {
				t.Fatalf("m=%d output %d: decode %d, want %d", m, i, got, tab[m])
			}
		}
		if !sameCT(outs[0], outs[1]) {
			t.Fatal("merged outputs should alias the same ciphertext")
		}
	}
}
