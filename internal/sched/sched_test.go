package sched

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/tfhe"
	"repro/internal/torus"
)

var (
	testSK tfhe.SecretKeys
	testEK tfhe.EvaluationKeys
)

func init() {
	rng := rand.New(rand.NewSource(77))
	testSK, testEK = tfhe.GenerateKeys(rng, tfhe.ParamsTest)
}

// sameCT compares two ciphertexts bitwise.
func sameCT(a, b tfhe.LWECiphertext) bool {
	if a.N() != b.N() || a.B != b.B {
		return false
	}
	for i := range a.A {
		if a.A[i] != b.A[i] {
			return false
		}
	}
	return true
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"gate bad wire", func(b *Builder) { b.Gate(engine.AND, 0, 5) }},
		{"gate bad op", func(b *Builder) { b.Gate(engine.GateOp(99), 0, 0) }},
		{"lut bad wire", func(b *Builder) { b.LUT(3, 4, []int{0, 1, 2, 3}) }},
		{"lut short table", func(b *Builder) { b.LUT(0, 4, []int{0, 1}) }},
		{"lut bad entry", func(b *Builder) { b.LUT(0, 4, []int{0, 1, 2, 4}) }},
		{"lut tiny space", func(b *Builder) { b.LUT(0, 1, []int{0}) }},
		{"lin bad term", func(b *Builder) { b.Lin(0, Term{W: 9, C: 1}) }},
		{"output bad wire", func(b *Builder) { b.Output(2) }},
		{"self reference", func(b *Builder) { b.Gate(engine.AND, 1, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			b.Input()
			tc.build(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("expected build error")
			}
		})
	}
}

func TestCompileLevels(t *testing.T) {
	// Half adder + a LUT stage: two parallel gates at level 1, one at
	// level 2, one LUT at level 3.
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	s := b.Gate(engine.XOR, x, y)
	c := b.Gate(engine.AND, x, y)
	n := b.Gate(engine.NAND, s, c)
	sq := b.LUTFunc(n, 4, func(m int) int { return (m * m) % 4 })
	b.Output(sq)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Compile(circ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sch.Stats()
	if st.Levels != 3 || st.TotalPBS != 4 || st.MaxLevelPBS != 2 {
		t.Fatalf("stats = %+v, want 3 levels, 4 PBS, max 2", st)
	}
	// Level 1 has two dispatches (XOR and AND cannot share a batch).
	if got := len(sch.Levels()[0].Dispatches); got != 2 {
		t.Fatalf("level 1 has %d dispatches, want 2", got)
	}
	if sch.String() == "" {
		t.Error("empty plan summary")
	}
}

func TestCompileGroupsLUTsByTable(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(4)
	sq := func(m int) int { return (m * m) % 8 }
	inc := func(m int) int { return (m + 1) % 8 }
	for i, w := range in {
		if i%2 == 0 {
			b.Output(b.LUTFunc(w, 8, sq))
		} else {
			b.Output(b.LUTFunc(w, 8, inc))
		}
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Compile(circ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lvl := sch.Levels()[0]
	if len(lvl.Dispatches) != 2 {
		t.Fatalf("got %d dispatches, want 2 (one per distinct table)", len(lvl.Dispatches))
	}
	for _, d := range lvl.Dispatches {
		if len(d.Nodes) != 2 {
			t.Errorf("dispatch has %d nodes, want 2", len(d.Nodes))
		}
	}
}

func TestCostModelRouting(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(8)
	for _, w := range in {
		b.Output(b.Gate(engine.NAND, w, w))
	}
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cfg  Config
		want bool
	}{
		{Config{Mode: Auto, MinStream: 4}, true},
		{Config{Mode: Auto, MinStream: 9}, false},
		{Config{Mode: StreamOnly, MinStream: 100}, true},
		{Config{Mode: BatchOnly, MinStream: 1}, false},
	} {
		sch, err := Compile(circ, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := sch.Levels()[0].Dispatches[0].Stream; got != tc.want {
			t.Errorf("cfg %+v: stream = %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

func TestNotLoweredToLinear(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	b.Output(b.Not(x))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Compile(circ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := sch.Stats(); st.TotalPBS != 0 || st.LinearNodes != 1 {
		t.Fatalf("NOT should be free: %+v", st)
	}
	ev := tfhe.NewEvaluator(testEK)
	rng := rand.New(rand.NewSource(1))
	ct := testSK.EncryptBool(rng, true)
	outs, err := Execute(circ, sch, []tfhe.LWECiphertext{ct}, &Runner{Batch: engine.New(testEK, engine.Config{Workers: 1})})
	if err != nil {
		t.Fatal(err)
	}
	if !sameCT(outs[0], ev.NOT(ct)) {
		t.Error("lowered NOT differs from evaluator NOT")
	}
}

// randomCircuit grows a seeded random DAG over boolean-ish wires mixing
// gates, LUTs (two distinct tables), and linear nodes — shape coverage
// for the equivalence property, not meaningful computation.
func randomCircuit(t *testing.T, rng *rand.Rand, inputs, extra int) *Circuit {
	t.Helper()
	b := NewBuilder()
	ws := b.Inputs(inputs)
	ops := []engine.GateOp{engine.NAND, engine.AND, engine.OR, engine.NOR, engine.XOR, engine.XNOR}
	for i := 0; i < extra; i++ {
		pick := func() Wire { return ws[rng.Intn(len(ws))] }
		var w Wire
		switch rng.Intn(4) {
		case 0:
			w = b.Gate(ops[rng.Intn(len(ops))], pick(), pick())
		case 1:
			w = b.LUTFunc(pick(), 8, func(m int) int { return (m * 3) % 8 })
		case 2:
			w = b.LUTFunc(pick(), 8, func(m int) int { return (m + 5) % 8 })
		default:
			w = b.Lin(torus.Torus32(rng.Uint32()),
				Term{W: pick(), C: 1}, Term{W: pick(), C: -1}, Term{W: pick(), C: 2})
		}
		ws = append(ws, w)
	}
	// Output the last few wires.
	for i := len(ws) - 3; i < len(ws); i++ {
		b.Output(ws[i])
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestScheduledMatchesSequential is the core equivalence property: for
// random circuits and every compile mode, engine execution is bitwise
// identical to the sequential evaluator.
func TestScheduledMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ev := tfhe.NewEvaluator(testEK)
	runner := &Runner{
		Batch:  engine.New(testEK, engine.Config{Workers: 3}),
		Stream: engine.NewStreaming(testEK, engine.StreamConfig{RotateWorkers: 2}),
	}
	for trial := 0; trial < 4; trial++ {
		circ := randomCircuit(t, rng, 4, 12)
		ins := make([]tfhe.LWECiphertext, circ.NumInputs())
		for i := range ins {
			ins[i] = testSK.EncryptBool(rng, rng.Intn(2) == 0)
		}
		want, err := RunSequential(circ, ev, ins)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{Mode: Auto, MinStream: 2},
			{Mode: BatchOnly},
			{Mode: StreamOnly},
		} {
			got, err := runner.Run(circ, cfg, ins)
			if err != nil {
				t.Fatalf("trial %d cfg %+v: %v", trial, cfg, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d outputs, want %d", trial, len(got), len(want))
			}
			for k := range got {
				if !sameCT(got[k], want[k]) {
					t.Errorf("trial %d cfg %+v: output %d differs from sequential", trial, cfg, k)
				}
			}
		}
	}
}

func TestSpecsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	circ := randomCircuit(t, rng, 3, 10)
	rebuilt, err := FromSpecs(circ.Specs(), circ.OutputWires())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumNodes() != circ.NumNodes() || rebuilt.NumOutputs() != circ.NumOutputs() {
		t.Fatal("roundtrip changed circuit shape")
	}
	ins := make([]tfhe.LWECiphertext, circ.NumInputs())
	for i := range ins {
		ins[i] = testSK.EncryptBool(rng, i%2 == 0)
	}
	ev := tfhe.NewEvaluator(testEK)
	want, err := RunSequential(circ, ev, ins)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSequential(rebuilt, ev, ins)
	if err != nil {
		t.Fatal(err)
	}
	for k := range got {
		if !sameCT(got[k], want[k]) {
			t.Errorf("output %d differs after spec roundtrip", k)
		}
	}
}

func TestFromSpecsRejectsInvalid(t *testing.T) {
	cases := []struct {
		name    string
		specs   []NodeSpec
		outputs []int
	}{
		{"unknown kind", []NodeSpec{{Kind: "bogus"}}, nil},
		{"unknown op", []NodeSpec{{Kind: SpecInput}, {Kind: SpecGate, Op: "FROB", A: 0, B: 0}}, nil},
		{"forward ref", []NodeSpec{{Kind: SpecInput}, {Kind: SpecGate, Op: "AND", A: 0, B: 2}}, nil},
		{"bad table", []NodeSpec{{Kind: SpecInput}, {Kind: SpecLUT, In: 0, Space: 4, Table: []int{0, 0, 0, 9}}}, nil},
		{"bad output", []NodeSpec{{Kind: SpecInput}}, []int{3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromSpecs(tc.specs, tc.outputs); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestExecuteInputCountMismatch(t *testing.T) {
	b := NewBuilder()
	b.Output(b.Input())
	circ, _ := b.Build()
	sch, _ := Compile(circ, Config{})
	r := &Runner{Batch: engine.New(testEK, engine.Config{Workers: 1})}
	if _, err := Execute(circ, sch, nil, r); err == nil {
		t.Error("input count mismatch should error")
	}
	if _, err := RunSequential(circ, tfhe.NewEvaluator(testEK), nil); err == nil {
		t.Error("sequential input count mismatch should error")
	}
}

func TestExecuteRejectsForeignSchedule(t *testing.T) {
	small := NewBuilder()
	small.Output(small.Gate(engine.AND, small.Input(), small.Input()))
	smallC, _ := small.Build()

	big := NewBuilder()
	in := big.Inputs(2)
	big.Output(big.Gate(engine.AND, big.Gate(engine.OR, in[0], in[1]), in[1]))
	bigC, _ := big.Build()

	bigSched, err := Compile(bigC, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	ins := []tfhe.LWECiphertext{testSK.EncryptBool(rng, true), testSK.EncryptBool(rng, false)}
	r := &Runner{Batch: engine.New(testEK, engine.Config{Workers: 1})}
	if _, err := Execute(smallC, bigSched, ins, r); err == nil {
		t.Error("schedule from a different circuit should error, not panic")
	}
}

func TestConstantNeedsInput(t *testing.T) {
	b := NewBuilder()
	b.Output(b.Lin(torus.EncodeMessage(1, 8)))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSequential(circ, tfhe.NewEvaluator(testEK), nil); err == nil {
		t.Error("constant-only circuit should error (dimension unknown)")
	}
}

func TestEmptyCircuit(t *testing.T) {
	b := NewBuilder()
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Compile(circ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Execute(circ, sch, nil, &Runner{Batch: engine.New(testEK, engine.Config{Workers: 1})})
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty circuit: outs=%d err=%v", len(outs), err)
	}
}

func TestRunnerWithoutEngines(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	b.Output(b.Gate(engine.AND, x, x))
	circ, _ := b.Build()
	var r Runner
	rng := rand.New(rand.NewSource(3))
	if _, err := r.Run(circ, Config{}, []tfhe.LWECiphertext{testSK.EncryptBool(rng, true)}); err == nil {
		t.Error("runner without engines should error")
	}
}

func TestRunnerSingleEngineFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	b.Output(b.Gate(engine.NAND, x, y))
	circ, _ := b.Build()
	ins := []tfhe.LWECiphertext{testSK.EncryptBool(rng, true), testSK.EncryptBool(rng, false)}
	want, err := RunSequential(circ, tfhe.NewEvaluator(testEK), ins)
	if err != nil {
		t.Fatal(err)
	}
	// StreamOnly compile but only a batch engine available — and vice versa.
	batchOnly := &Runner{Batch: engine.New(testEK, engine.Config{Workers: 1})}
	streamOnly := &Runner{Stream: engine.NewStreaming(testEK, engine.StreamConfig{RotateWorkers: 1})}
	for name, r := range map[string]*Runner{"batch": batchOnly, "stream": streamOnly} {
		got, err := r.Run(circ, Config{Mode: StreamOnly}, ins)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameCT(got[0], want[0]) {
			t.Errorf("%s fallback output differs", name)
		}
	}
}
