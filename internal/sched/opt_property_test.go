package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/tfhe"
)

// The optimizer semantics-preservation property: for seeded random typed
// DAGs, each pass individually and the full pipeline preserve the
// decoded outputs of the unoptimized schedule. Unlike randomCircuit
// (shape-only, compared bitwise), the generator here tracks each wire's
// domain — boolean or a message space — and its plaintext value, so the
// decoded comparison is meaningful: LUTs only read message wires, gates
// only boolean wires, and linear nodes only take domain-safe forms.

// propSpace is the message space of the generator's integer wires. With
// ParamsTest (N=256) a packed group of up to DefaultPackWidth outputs
// stays within space·k ≤ N.
const propSpace = 8

// typedWire is one generated wire with its tracked plaintext.
type typedWire struct {
	w      Wire
	isBool bool
	bval   bool
	mval   int // message in {0..propSpace-1} when !isBool
}

// typedCircuit is a generated circuit plus the expected plaintext of
// every output.
type typedCircuit struct {
	circ    *Circuit
	inBools []bool
	inMsgs  []int // parallel to circ inputs: >= 0 is a message, -1 a bool
	outs    []typedWire
}

// genTypedCircuit grows a random typed DAG: boolean and message inputs,
// gates and NOT chains over booleans, LUTs / multi-LUT groups / modular
// linear sums over messages — including deliberate duplicate nodes (CSE
// food), single-consumer chains (fusion food), and same-input LUT
// fan-out (packing food). Every wire's plaintext is tracked alongside.
func genTypedCircuit(rng *rand.Rand, steps int) *typedCircuit {
	tc := &typedCircuit{}
	b := NewBuilder()
	var bools, msgs []typedWire
	nb, nm := 2+rng.Intn(3), 2+rng.Intn(3)
	for i := 0; i < nb; i++ {
		v := rng.Intn(2) == 0
		bools = append(bools, typedWire{w: b.Input(), isBool: true, bval: v})
		tc.inBools = append(tc.inBools, v)
		tc.inMsgs = append(tc.inMsgs, -1)
	}
	for i := 0; i < nm; i++ {
		v := rng.Intn(propSpace)
		msgs = append(msgs, typedWire{w: b.Input(), mval: v})
		tc.inBools = append(tc.inBools, false)
		tc.inMsgs = append(tc.inMsgs, v)
	}
	pickB := func() typedWire { return bools[rng.Intn(len(bools))] }
	pickM := func() typedWire { return msgs[rng.Intn(len(msgs))] }
	ops := []engine.GateOp{engine.NAND, engine.AND, engine.OR, engine.NOR, engine.XOR, engine.XNOR}
	randTable := func() []int {
		tab := make([]int, propSpace)
		for m := range tab {
			tab[m] = rng.Intn(propSpace)
		}
		return tab
	}
	for i := 0; i < steps; i++ {
		switch rng.Intn(6) {
		case 0: // binary gate (sometimes a duplicate of the previous one)
			a, c := pickB(), pickB()
			op := ops[rng.Intn(len(ops))]
			w := b.Gate(op, a.w, c.w)
			bools = append(bools, typedWire{w: w, isBool: true, bval: op.Eval(a.bval, c.bval)})
			if rng.Intn(3) == 0 { // swapped-operand duplicate: CSE food
				w2 := b.Gate(op, c.w, a.w)
				bools = append(bools, typedWire{w: w2, isBool: true, bval: op.Eval(a.bval, c.bval)})
			}
		case 1: // NOT chain: fusion/linfold food
			a := pickB()
			w := b.Not(b.Not(b.Not(a.w)))
			bools = append(bools, typedWire{w: w, isBool: true, bval: !a.bval})
		case 2: // plain LUT
			a := pickM()
			tab := randTable()
			w := b.LUT(a.w, propSpace, tab)
			msgs = append(msgs, typedWire{w: w, mval: tab[a.mval]})
		case 3: // same-input LUT fan-out: packing food
			a := pickM()
			n := 2 + rng.Intn(3)
			for j := 0; j < n; j++ {
				tab := randTable()
				w := b.LUT(a.w, propSpace, tab)
				msgs = append(msgs, typedWire{w: w, mval: tab[a.mval]})
			}
		case 4: // explicit multi-value group
			a := pickM()
			k := 2 + rng.Intn(2)
			tabs := make([][]int, k)
			for j := range tabs {
				tabs[j] = randTable()
			}
			ws := b.MultiLUT(a.w, propSpace, tabs)
			for j, w := range ws {
				msgs = append(msgs, typedWire{w: w, mval: tabs[j][a.mval]})
			}
		default: // domain-safe linear: in-range modular message sum via LUT pair
			// A raw sum of two messages can leave the space, so keep the
			// linear node a single-term copy (free) — still exercises
			// linfold/CSE on message wires.
			a := pickM()
			w := b.Lin(0, Term{W: a.w, C: 1})
			msgs = append(msgs, typedWire{w: w, mval: a.mval})
		}
	}
	// Output a random selection (always at least one of each domain).
	tc.outs = append(tc.outs, bools[rng.Intn(len(bools))], msgs[rng.Intn(len(msgs))])
	for i := 0; i < 4; i++ {
		if rng.Intn(2) == 0 {
			tc.outs = append(tc.outs, pickB())
		} else {
			tc.outs = append(tc.outs, pickM())
		}
	}
	for _, o := range tc.outs {
		b.Output(o.w)
	}
	circ, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("generator built an invalid circuit: %v", err))
	}
	tc.circ = circ
	return tc
}

// encryptInputs encrypts the tracked input plaintexts.
func (tc *typedCircuit) encryptInputs(rng *rand.Rand) []tfhe.LWECiphertext {
	ins := make([]tfhe.LWECiphertext, len(tc.inMsgs))
	for i := range ins {
		if tc.inMsgs[i] >= 0 {
			ins[i] = encMsg(rng, tc.inMsgs[i], propSpace)
		} else {
			ins[i] = encBool(rng, tc.inBools[i])
		}
	}
	return ins
}

// checkDecoded asserts every output decodes to its tracked plaintext.
func (tc *typedCircuit) checkDecoded(t *testing.T, label string, outs []tfhe.LWECiphertext) {
	t.Helper()
	if len(outs) != len(tc.outs) {
		t.Fatalf("%s: %d outputs, want %d", label, len(outs), len(tc.outs))
	}
	for i, o := range tc.outs {
		if o.isBool {
			if got := testSK.DecryptBool(outs[i]); got != o.bval {
				t.Fatalf("%s: output %d decodes to %v, want %v", label, i, got, o.bval)
			}
		} else {
			if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(outs[i]), propSpace); got != o.mval {
				t.Fatalf("%s: output %d decodes to %d, want %d", label, i, got, o.mval)
			}
		}
	}
}

// TestOptimizePassesPreserveDecoding is the property test: each pass
// alone and the full pipeline preserve decoded outputs on random typed
// DAGs, executed both sequentially and through the engine-backed
// scheduler (run under -race by `make race`).
func TestOptimizePassesPreserveDecoding(t *testing.T) {
	runner := &Runner{
		Batch:  engine.New(testEK, engine.Config{Workers: 3}),
		Stream: engine.NewStreaming(testEK, engine.StreamConfig{RotateWorkers: 2}),
	}
	configs := []struct {
		name string
		opt  OptConfig
	}{
		{"prune", OptConfig{Prune: true}},
		{"linfold", OptConfig{LinFold: true}},
		{"fuse", OptConfig{Fuse: true}},
		{"cse", OptConfig{CSE: true}},
		{"mvpack", OptConfig{MultiValue: 3}},
		{"all", OptAll()},
	}
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(4100 + int64(trial)))
		tc := genTypedCircuit(rng, 8+rng.Intn(8))
		ins := tc.encryptInputs(rng)
		// Sanity: the unoptimized circuit matches the tracked plaintexts.
		tc.checkDecoded(t, "unoptimized", seqBits(t, tc.circ, ins))
		naivePBS := pbsCost(tc.circ)
		for _, cfg := range configs {
			oc, _ := mustOptimize(t, tc.circ, cfg.opt)
			if got := pbsCost(oc); got > naivePBS {
				t.Fatalf("trial %d %s: optimized PBS %d exceeds naive %d", trial, cfg.name, got, naivePBS)
			}
			tc.checkDecoded(t, fmt.Sprintf("trial %d %s sequential", trial, cfg.name), seqBits(t, oc, ins))
			sch, err := Compile(tc.circ, Config{MinStream: 4, Opt: cfg.opt})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cfg.name, err)
			}
			outs, err := runner.RunSchedule(tc.circ, sch, ins)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cfg.name, err)
			}
			tc.checkDecoded(t, fmt.Sprintf("trial %d %s scheduled", trial, cfg.name), outs)
		}
	}
}
