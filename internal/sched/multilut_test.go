package sched

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/tfhe"
)

// mvTables builds k distinct tables over space.
func mvTables(space, k int) [][]int {
	tables := make([][]int, k)
	for i := range tables {
		tables[i] = make([]int, space)
		for m := range tables[i] {
			tables[i][m] = (m*m + i) % space
		}
	}
	return tables
}

// mvCircuit builds the fan-out shape multi-value PBS exists for: one
// input feeding an explicit k-way MultiLUT group, whose outputs feed a
// second LUT level.
func mvCircuit(t *testing.T, space, k int) *Circuit {
	t.Helper()
	b := NewBuilder()
	in := b.Input()
	ws := b.MultiLUT(in, space, mvTables(space, k))
	if len(ws) != k {
		t.Fatalf("MultiLUT returned %d wires, want %d", len(ws), k)
	}
	b.Output(ws...)
	inc := make([]int, space)
	for m := range inc {
		inc[m] = (m + 1) % space
	}
	b.Output(b.LUT(ws[0], space, inc))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return circ
}

func TestMultiLUTBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"bad wire", func(b *Builder) { b.MultiLUT(7, 4, mvTables(4, 2)) }},
		{"no tables", func(b *Builder) { b.MultiLUT(0, 4, nil) }},
		{"short table", func(b *Builder) { b.MultiLUT(0, 4, [][]int{{0, 1}}) }},
		{"bad entry", func(b *Builder) { b.MultiLUT(0, 4, [][]int{{0, 1, 2, 4}}) }},
		{"tiny space", func(b *Builder) { b.MultiLUT(0, 1, [][]int{{0}}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			b.Input()
			tc.build(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("expected build error")
			}
		})
	}
}

// TestCompileMultiLUTGroup checks dispatch shape and rotation accounting
// of an explicit multi-value group.
func TestCompileMultiLUTGroup(t *testing.T) {
	const space, k = 4, 3
	circ := mvCircuit(t, space, k)
	sch, err := Compile(circ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sch.Stats()
	// Level 1: one rotation for the k-way group; level 2: one plain LUT.
	if st.Levels != 2 || st.TotalPBS != 2 {
		t.Fatalf("stats = %+v, want 2 levels and 2 rotations", st)
	}
	if st.MultiValueOuts != k || st.RotationsSaved != k-1 {
		t.Fatalf("stats = %+v, want %d multi-value outputs and %d saved", st, k, k-1)
	}
	d := sch.Levels()[0].Dispatches[0]
	if d.Kind != DispatchMultiLUT || len(d.Tables) != k || len(d.Nodes) != k || d.Groups() != 1 {
		t.Fatalf("level-0 dispatch = %+v", d)
	}
	if got := sch.String(); !strings.Contains(got, "rotations saved") {
		t.Fatalf("plan summary %q should report rotations saved", got)
	}
}

// TestScheduledMultiLUTMatchesSequential: explicit multi-value groups
// execute multi-value on both the sequential reference and every engine
// routing, so outputs must be bitwise identical.
func TestScheduledMultiLUTMatchesSequential(t *testing.T) {
	const space, k = 4, 3
	circ := mvCircuit(t, space, k)
	rng := rand.New(rand.NewSource(61))
	msg := 2
	in := []tfhe.LWECiphertext{testSK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(msg, space), tfhe.ParamsTest.LWEStdDev)}

	ev := tfhe.NewEvaluator(testEK)
	want, err := RunSequential(circ, ev, in)
	if err != nil {
		t.Fatal(err)
	}
	tables := mvTables(space, k)
	for i := 0; i < k; i++ {
		if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(want[i]), space); got != tables[i][msg] {
			t.Fatalf("sequential output %d decodes to %d, want %d", i, got, tables[i][msg])
		}
	}

	r := &Runner{
		Batch:  engine.New(testEK, engine.Config{Workers: 2}),
		Stream: engine.NewStreaming(testEK, engine.StreamConfig{RotateWorkers: 2}),
	}
	for _, mode := range []Mode{BatchOnly, StreamOnly} {
		got, err := r.Run(circ, Config{Mode: mode}, in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !sameCT(got[i], want[i]) {
				t.Fatalf("mode %d: scheduled output %d differs from sequential", mode, i)
			}
		}
	}
}

// TestMultiValueFanOutFusing: with Config.MultiValue the compiler packs
// independent same-input LUT nodes into shared rotations; outputs must
// decode identically to the unfused execution (bitwise equality is not
// expected — the packed rotation differs).
func TestMultiValueFanOutFusing(t *testing.T) {
	const space = 4
	b := NewBuilder()
	in := b.Input()
	other := b.Input()
	tabs := mvTables(space, 5)
	var ws []Wire
	for i := 0; i < 5; i++ {
		ws = append(ws, b.LUT(in, space, tabs[i]))
	}
	lone := b.LUT(other, space, tabs[0]) // different input: must not fuse in
	b.Output(ws...)
	b.Output(lone)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	sch, err := Compile(circ, Config{MultiValue: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := sch.Stats()
	// 5-way fan-out in chunks of 2 → groups of 2,2,1: two fused dispatches
	// (2 rotations, 4 outputs, 2 saved) + singleton + lone = 4 rotations.
	if st.TotalPBS != 4 || st.MultiValueOuts != 4 || st.RotationsSaved != 2 {
		t.Fatalf("stats = %+v, want 4 rotations, 4 multi-value outputs, 2 saved", st)
	}

	rng := rand.New(rand.NewSource(62))
	msgs := []int{3, 1}
	ins := []tfhe.LWECiphertext{
		testSK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(msgs[0], space), tfhe.ParamsTest.LWEStdDev),
		testSK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(msgs[1], space), tfhe.ParamsTest.LWEStdDev),
	}
	r := &Runner{Batch: engine.New(testEK, engine.Config{Workers: 2})}
	got, err := Execute(circ, sch, ins, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if dec := tfhe.DecodePBSMessage(testSK.LWE.Phase(got[i]), space); dec != tabs[i][msgs[0]] {
			t.Fatalf("fused output %d decodes to %d, want %d", i, dec, tabs[i][msgs[0]])
		}
	}
	if dec := tfhe.DecodePBSMessage(testSK.LWE.Phase(got[5]), space); dec != tabs[0][msgs[1]] {
		t.Fatalf("unfused output decodes to %d, want %d", dec, tabs[0][msgs[1]])
	}

	// Determinism: recompiling and re-running the fused schedule must
	// reproduce the same bits.
	sch2, err := Compile(circ, Config{MultiValue: 2})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Execute(circ, sch2, ins, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !sameCT(got[i], got2[i]) {
			t.Fatalf("fused schedule is not deterministic at output %d", i)
		}
	}
}

// TestMultiLUTSpecsRoundTrip: serialized multi-value circuits rebuild
// identically and malformed sibling streams are rejected.
func TestMultiLUTSpecsRoundTrip(t *testing.T) {
	const space, k = 4, 3
	circ := mvCircuit(t, space, k)
	specs := circ.Specs()
	outs := circ.OutputWires()

	rebuilt, err := FromSpecs(specs, outs)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumNodes() != circ.NumNodes() || rebuilt.NumOutputs() != circ.NumOutputs() {
		t.Fatalf("round-trip changed shape: %d/%d nodes, %d/%d outputs",
			rebuilt.NumNodes(), circ.NumNodes(), rebuilt.NumOutputs(), circ.NumOutputs())
	}
	rng := rand.New(rand.NewSource(63))
	in := []tfhe.LWECiphertext{testSK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(1, space), tfhe.ParamsTest.LWEStdDev)}
	evA, evB := tfhe.NewEvaluator(testEK), tfhe.NewEvaluator(testEK)
	want, err := RunSequential(circ, evA, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSequential(rebuilt, evB, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !sameCT(got[i], want[i]) {
			t.Fatalf("round-tripped circuit differs at output %d", i)
		}
	}

	// Malformed sibling streams must be rejected.
	truncated := append([]NodeSpec(nil), specs[:2]...) // head + 1 of 3 siblings
	if _, err := FromSpecs(truncated, nil); err == nil {
		t.Fatal("truncated multi-value group accepted")
	}
	orphan := []NodeSpec{{Kind: SpecInput}, {Kind: SpecMultiLUT, In: 0, Space: space, Tables: mvTables(space, 2), Index: 1}}
	if _, err := FromSpecs(orphan, nil); err == nil {
		t.Fatal("orphan multi-value sibling accepted")
	}
	mixed := append([]NodeSpec(nil), specs...)
	mixed[2] = NodeSpec{Kind: SpecInput} // replace sibling 1 with an input
	if _, err := FromSpecs(mixed, nil); err == nil {
		t.Fatal("interrupted multi-value group accepted")
	}
	wrongTables := append([]NodeSpec(nil), specs...)
	wt := wrongTables[2]
	wt.Tables = mvTables(space, k-1)
	wrongTables[2] = wt
	if _, err := FromSpecs(wrongTables, nil); err == nil {
		t.Fatal("sibling with mismatched tables accepted")
	}
}

// TestMultiLUTFunc materializes tables from functions and must match the
// table form node for node.
func TestMultiLUTFunc(t *testing.T) {
	const space = 4
	build := func(f func(b *Builder, in Wire) []Wire) *Circuit {
		b := NewBuilder()
		in := b.Input()
		b.Output(f(b, in)...)
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	viaFunc := build(func(b *Builder, in Wire) []Wire {
		return b.MultiLUTFunc(in, space,
			func(m int) int { return (m + 1) % space },
			func(m int) int { return (3 * m) % space })
	})
	viaTables := build(func(b *Builder, in Wire) []Wire {
		return b.MultiLUT(in, space, [][]int{{1, 2, 3, 0}, {0, 3, 2, 1}})
	})
	sf, st := viaFunc.Specs(), viaTables.Specs()
	if len(sf) != len(st) {
		t.Fatalf("node counts differ: %d vs %d", len(sf), len(st))
	}
	for i := range sf {
		if !tablesEqual(sf[i].Tables, st[i].Tables) || sf[i].Index != st[i].Index {
			t.Fatalf("node %d differs between MultiLUTFunc and MultiLUT", i)
		}
	}

	bad := NewBuilder()
	bad.Input()
	bad.MultiLUTFunc(0, 1, func(m int) int { return m })
	if _, err := bad.Build(); err == nil {
		t.Fatal("MultiLUTFunc accepted space < 2")
	}
}

// TestRunSequentialRejectsOverpackedGroup: the sequential reference must
// surface the packing bound as an error, like the engine-backed path,
// not a panic.
func TestRunSequentialRejectsOverpackedGroup(t *testing.T) {
	const space = 4
	over := make([][]int, tfhe.ParamsTest.N) // space·k > N
	for i := range over {
		over[i] = []int{0, 1, 2, 3}
	}
	b := NewBuilder()
	in := b.Input()
	b.Output(b.MultiLUT(in, space, over)...)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	ins := []tfhe.LWECiphertext{testSK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(1, space), tfhe.ParamsTest.LWEStdDev)}
	if _, err := RunSequential(circ, tfhe.NewEvaluator(testEK), ins); err == nil {
		t.Fatal("overpacked multi-value group did not error")
	}
}
