package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// Mode constrains the compile-time batch-vs-stream routing decision.
type Mode uint8

// The routing modes. Auto applies the cost model per dispatch; the forced
// modes exist for benchmarking the two engines against each other and for
// executors that only have one engine (the gate service streams
// everything, so it compiles with StreamOnly).
const (
	Auto Mode = iota
	BatchOnly
	StreamOnly
)

// DefaultMinStream is the Auto-mode threshold of the cost model: a
// dispatch of at least this many ciphertexts goes to the streaming
// pipeline, a smaller one to the flat worker pool. The streaming engine
// only wins once its fixed costs — filling and draining the staged
// pipeline (≈ channel depth items of ramp) and encoding the shared test
// vector — amortize over the stream, while the flat pool's per-item
// claim overhead is near zero for short batches.
const DefaultMinStream = 32

// Config tunes compilation.
type Config struct {
	// Mode constrains batch-vs-stream routing. The zero value (Auto)
	// applies the MinStream cost model per dispatch.
	Mode Mode
	// MinStream overrides the Auto-mode threshold. 0 means
	// DefaultMinStream.
	MinStream int
	// MultiValue enables multi-value packing of plain LUT fan-out with
	// this cap per group.
	//
	// Deprecated: it is an alias for Opt.MultiValue — the packing that
	// used to happen opportunistically at dispatch assembly is now the
	// optimizer's DAG rewrite (see OptConfig.MultiValue for the exact
	// semantics, which are unchanged: decode-identical, not bitwise, and
	// the executing parameter set must satisfy space·k ≤ N). Ignored
	// when Opt.MultiValue is set. Explicit Builder.MultiLUT groups
	// always execute multi-value, knob or not.
	MultiValue int
	// Opt selects optimizer passes to run on the circuit before
	// levelization (see OptConfig and OptAll). The zero value compiles
	// the circuit exactly as built, bitwise-faithful to RunSequential.
	Opt OptConfig
}

// DispatchKind discriminates what a dispatch executes.
type DispatchKind uint8

// The dispatch kinds: one boolean gate op batched pairwise, one shared
// lookup table batched over a ciphertext slice, or one shared multi-value
// table group batched over the group input ciphertexts.
const (
	DispatchGate DispatchKind = iota
	DispatchLUT
	DispatchMultiLUT
)

// Dispatch is one engine call of a level: every PBS node of the level
// that shares this gate op (or this exact lookup table, or this exact
// multi-value table list), batched together. Nodes lists the node wires
// in build order. For DispatchMultiLUT, Nodes is group-major with stride
// k = len(Tables): Nodes[g·k+i] receives table i's output for group g,
// and every node of a group reads the same input wire.
type Dispatch struct {
	Kind   DispatchKind
	Op     GateOp  // DispatchGate
	Space  int     // DispatchLUT, DispatchMultiLUT
	Table  []int   // DispatchLUT; shared by every node of the dispatch
	Tables [][]int // DispatchMultiLUT; shared by every group of the dispatch
	Nodes  []Wire
	Stream bool // cost-model routing: streaming pipeline vs worker pool
}

// Groups returns how many blind rotations a dispatch costs: one per node,
// except multi-value dispatches where one rotation serves a whole group.
func (d Dispatch) Groups() int {
	if d.Kind == DispatchMultiLUT {
		return len(d.Nodes) / len(d.Tables)
	}
	return len(d.Nodes)
}

// Level is one dependency-free layer of the schedule: every dispatch (and
// every node within each dispatch) depends only on earlier levels, so the
// whole level could execute concurrently.
type Level struct {
	Dispatches []Dispatch
	PBS        int // total blind rotations in the level
}

// Stats summarizes a schedule's shape.
type Stats struct {
	Levels      int // PBS depth of the circuit
	TotalPBS    int // total blind rotations per execution
	MaxLevelPBS int // widest level (rotations)
	Dispatches  int // engine calls per execution
	Streamed    int // dispatches routed to the streaming engine
	LinearNodes int // free nodes folded in between levels

	// Multi-value packing: LUT outputs served by shared rotations and
	// the rotations those shares saved versus one PBS per output.
	MultiValueOuts int
	RotationsSaved int

	// OptPasses records what each optimizer pass removed (nil when no
	// passes ran). The per-pass PBSRemoved entries sum to the total
	// rotation reduction versus compiling the same circuit unoptimized.
	OptPasses []PassStat
}

// Schedule is a compiled circuit: levelized dispatches plus the free
// linear nodes to fold in at each level boundary.
type Schedule struct {
	levels []Level
	// linAt[l] holds the linear nodes whose operands are complete after
	// PBS level l (linAt[0] depends on inputs only), in build order.
	linAt [][]Wire
	stats Stats
	// nodes is the node count of the source circuit handed to Compile,
	// so Execute can reject a schedule paired with a different circuit.
	nodes int
	// circ is the circuit the levels reference — the optimizer's
	// rewrite when passes ran, the source circuit itself otherwise.
	// Execute resolves wires against it.
	circ *Circuit
}

// Levels returns the levelized dispatches. The slice is shared, not
// copied — treat it as read-only.
func (s *Schedule) Levels() []Level { return s.levels }

// Stats returns the schedule's shape summary.
func (s *Schedule) Stats() Stats { return s.stats }

// String renders a compact plan summary, e.g.
// "7 levels, 37 PBS (max 16/level), 12 dispatches (3 streamed), 9 rotations saved (multi-value)".
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d levels, %d PBS (max %d/level), %d dispatches (%d streamed)",
		s.stats.Levels, s.stats.TotalPBS, s.stats.MaxLevelPBS, s.stats.Dispatches, s.stats.Streamed)
	if s.stats.RotationsSaved > 0 {
		fmt.Fprintf(&b, ", %d rotations saved (multi-value)", s.stats.RotationsSaved)
	}
	if saved := s.optPBSRemoved(); saved > 0 {
		fmt.Fprintf(&b, ", optimizer -%d PBS", saved)
	}
	return b.String()
}

// optPBSRemoved sums the rotations the optimizer passes removed.
func (s *Schedule) optPBSRemoved() int {
	saved := 0
	for _, p := range s.stats.OptPasses {
		saved += p.PBSRemoved
	}
	return saved
}

// Describe renders the full plan, one line per level plus the optimizer
// pass table — the stable, diffable digest the golden plan tests pin.
func (s *Schedule) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", s.String())
	for _, p := range s.stats.OptPasses {
		fmt.Fprintf(&b, "pass %s: rewrites=%d nodes=%+d pbs=%+d\n",
			p.Name, p.Rewrites, -p.NodesRemoved, -p.PBSRemoved)
	}
	for l, lv := range s.levels {
		fmt.Fprintf(&b, "level %d (%d PBS):", l+1, lv.PBS)
		for _, d := range lv.Dispatches {
			b.WriteByte(' ')
			switch d.Kind {
			case DispatchGate:
				fmt.Fprintf(&b, "gate:%s x%d", d.Op, len(d.Nodes))
			case DispatchLUT:
				fmt.Fprintf(&b, "lut:s%d x%d", d.Space, len(d.Nodes))
			case DispatchMultiLUT:
				fmt.Fprintf(&b, "mlut:s%dk%d x%d", d.Space, len(d.Tables), d.Groups())
			}
			if d.Stream {
				b.WriteString("[stream]")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "linear nodes: %d\n", s.stats.LinearNodes)
	return b.String()
}

// lutDispatchKey is the grouping key of a LUT node: dispatches merge only
// when the whole table is identical, mirroring the gate service's
// coalescing key.
func lutDispatchKey(space int, table []int) string {
	var b strings.Builder
	b.WriteString("l:")
	b.WriteString(strconv.Itoa(space))
	for _, v := range table {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// multiLUTDispatchKey is the grouping key of a multi-value group:
// dispatches merge only when the whole table list (count, order, and
// every entry) is identical.
func multiLUTDispatchKey(space int, tables [][]int) string {
	var b strings.Builder
	b.WriteString("m:")
	b.WriteString(strconv.Itoa(space))
	for _, table := range tables {
		b.WriteByte('|')
		for _, v := range table {
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(v))
		}
	}
	return b.String()
}

// Compile optionally optimizes the circuit (cfg.Opt), then levelizes it
// and groups each level into batched dispatches. Each PBS node's level
// is its longest-path PBS depth from the inputs (linear nodes are free
// and add no depth) — the maximal independent sets the paper's scheduler
// dispatches as epochs. Within a level, gates group by op and LUTs by
// exact table, since each engine call shares one operation (and one test
// vector) across its batch. The schedule carries the optimized circuit:
// Execute is still called with the source circuit, whose inputs and
// output order the rewrite preserves.
func Compile(c *Circuit, cfg Config) (*Schedule, error) {
	minStream := cfg.MinStream
	if minStream <= 0 {
		minStream = DefaultMinStream
	}
	opt := cfg.Opt
	if opt.MultiValue == 0 && cfg.MultiValue >= 2 {
		opt.MultiValue = cfg.MultiValue // deprecated alias
	}
	exec, passes := c, []PassStat(nil)
	if opt.enabled() {
		var err error
		exec, passes, err = Optimize(c, opt)
		if err != nil {
			return nil, err
		}
	}

	lvl := make([]int, len(exec.nodes))
	maxLvl := 0
	for i, n := range exec.nodes {
		switch n.kind {
		case kindInput:
			lvl[i] = 0
		case kindLin:
			d := 0
			for _, t := range n.terms {
				if lvl[t.W] > d {
					d = lvl[t.W]
				}
			}
			lvl[i] = d
		case kindGate:
			d := lvl[n.a]
			if lvl[n.b] > d {
				d = lvl[n.b]
			}
			lvl[i] = d + 1
		case kindLUT, kindMultiLUT:
			lvl[i] = lvl[n.in] + 1
		default:
			return nil, fmt.Errorf("sched: node %d has unknown kind %d", i, n.kind)
		}
		if lvl[i] > maxLvl {
			maxLvl = lvl[i]
		}
	}

	s := &Schedule{
		levels: make([]Level, maxLvl),
		linAt:  make([][]Wire, maxLvl+1),
		nodes:  len(c.nodes),
		circ:   exec,
	}
	s.stats.OptPasses = passes
	// groupIdx[l] maps a dispatch key to its index in levels[l].Dispatches,
	// so grouping preserves first-appearance (build) order.
	groupIdx := make([]map[string]int, maxLvl)
	// join appends the node wires to the level-l dispatch for key,
	// creating it from proto on first appearance, and charges the level
	// rotations blind rotations.
	join := func(l int, key string, proto Dispatch, rotations int, ws ...Wire) {
		if groupIdx[l] == nil {
			groupIdx[l] = make(map[string]int)
		}
		di, ok := groupIdx[l][key]
		if !ok {
			di = len(s.levels[l].Dispatches)
			groupIdx[l][key] = di
			s.levels[l].Dispatches = append(s.levels[l].Dispatches, proto)
		}
		s.levels[l].Dispatches[di].Nodes = append(s.levels[l].Dispatches[di].Nodes, ws...)
		s.levels[l].PBS += rotations
	}
	for i, n := range exec.nodes {
		switch n.kind {
		case kindLin:
			s.linAt[lvl[i]] = append(s.linAt[lvl[i]], Wire(i))
		case kindGate:
			join(lvl[i]-1, "g:"+n.op.String(), Dispatch{Kind: DispatchGate, Op: n.op}, 1, Wire(i))
		case kindLUT:
			join(lvl[i]-1, lutDispatchKey(n.space, n.table), Dispatch{Kind: DispatchLUT, Space: n.space, Table: n.table}, 1, Wire(i))
		case kindMultiLUT:
			// The head sibling carries the whole group; the group's k
			// contiguous wires share one rotation.
			if n.mvIdx != 0 {
				continue
			}
			k := len(n.tables)
			ws := make([]Wire, k)
			for j := range ws {
				ws[j] = Wire(i + j)
			}
			join(lvl[i]-1, multiLUTDispatchKey(n.space, n.tables),
				Dispatch{Kind: DispatchMultiLUT, Space: n.space, Tables: n.tables}, 1, ws...)
			s.stats.MultiValueOuts += k
			s.stats.RotationsSaved += k - 1
		}
	}

	// Cost model: route each dispatch by its rotation count.
	for l := range s.levels {
		for di := range s.levels[l].Dispatches {
			d := &s.levels[l].Dispatches[di]
			switch cfg.Mode {
			case BatchOnly:
				d.Stream = false
			case StreamOnly:
				d.Stream = true
			default:
				d.Stream = d.Groups() >= minStream
			}
			s.stats.Dispatches++
			if d.Stream {
				s.stats.Streamed++
			}
		}
		if s.levels[l].PBS > s.stats.MaxLevelPBS {
			s.stats.MaxLevelPBS = s.levels[l].PBS
		}
		s.stats.TotalPBS += s.levels[l].PBS
	}
	s.stats.Levels = maxLvl
	for _, lin := range s.linAt {
		s.stats.LinearNodes += len(lin)
	}
	return s, nil
}
