package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// Mode constrains the compile-time batch-vs-stream routing decision.
type Mode uint8

// The routing modes. Auto applies the cost model per dispatch; the forced
// modes exist for benchmarking the two engines against each other and for
// executors that only have one engine (the gate service streams
// everything, so it compiles with StreamOnly).
const (
	Auto Mode = iota
	BatchOnly
	StreamOnly
)

// DefaultMinStream is the Auto-mode threshold of the cost model: a
// dispatch of at least this many ciphertexts goes to the streaming
// pipeline, a smaller one to the flat worker pool. The streaming engine
// only wins once its fixed costs — filling and draining the staged
// pipeline (≈ channel depth items of ramp) and encoding the shared test
// vector — amortize over the stream, while the flat pool's per-item
// claim overhead is near zero for short batches.
const DefaultMinStream = 32

// Config tunes compilation.
type Config struct {
	// Mode constrains batch-vs-stream routing. The zero value (Auto)
	// applies the MinStream cost model per dispatch.
	Mode Mode
	// MinStream overrides the Auto-mode threshold. 0 means
	// DefaultMinStream.
	MinStream int
}

// DispatchKind discriminates what a dispatch executes.
type DispatchKind uint8

// The dispatch kinds: one boolean gate op batched pairwise, or one shared
// lookup table batched over a ciphertext slice.
const (
	DispatchGate DispatchKind = iota
	DispatchLUT
)

// Dispatch is one engine call of a level: every PBS node of the level
// that shares this gate op (or this exact lookup table), batched
// together. Nodes lists the node wires in build order.
type Dispatch struct {
	Kind   DispatchKind
	Op     GateOp // DispatchGate
	Space  int    // DispatchLUT
	Table  []int  // DispatchLUT; shared by every node of the dispatch
	Nodes  []Wire
	Stream bool // cost-model routing: streaming pipeline vs worker pool
}

// Level is one dependency-free layer of the schedule: every dispatch (and
// every node within each dispatch) depends only on earlier levels, so the
// whole level could execute concurrently.
type Level struct {
	Dispatches []Dispatch
	PBS        int // total PBS nodes in the level
}

// Stats summarizes a schedule's shape.
type Stats struct {
	Levels      int // PBS depth of the circuit
	TotalPBS    int // total bootstraps per execution
	MaxLevelPBS int // widest level
	Dispatches  int // engine calls per execution
	Streamed    int // dispatches routed to the streaming engine
	LinearNodes int // free nodes folded in between levels
}

// Schedule is a compiled circuit: levelized dispatches plus the free
// linear nodes to fold in at each level boundary.
type Schedule struct {
	levels []Level
	// linAt[l] holds the linear nodes whose operands are complete after
	// PBS level l (linAt[0] depends on inputs only), in build order.
	linAt [][]Wire
	stats Stats
	// nodes is the node count of the compiled circuit, so Execute can
	// reject a schedule paired with a different circuit.
	nodes int
}

// Levels returns the levelized dispatches. The slice is shared, not
// copied — treat it as read-only.
func (s *Schedule) Levels() []Level { return s.levels }

// Stats returns the schedule's shape summary.
func (s *Schedule) Stats() Stats { return s.stats }

// String renders a compact plan summary, e.g.
// "7 levels, 37 PBS (max 16/level), 12 dispatches (3 streamed)".
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d levels, %d PBS (max %d/level), %d dispatches (%d streamed)",
		s.stats.Levels, s.stats.TotalPBS, s.stats.MaxLevelPBS, s.stats.Dispatches, s.stats.Streamed)
	return b.String()
}

// lutDispatchKey is the grouping key of a LUT node: dispatches merge only
// when the whole table is identical, mirroring the gate service's
// coalescing key.
func lutDispatchKey(space int, table []int) string {
	var b strings.Builder
	b.WriteString("l:")
	b.WriteString(strconv.Itoa(space))
	for _, v := range table {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Compile levelizes the circuit and groups each level into batched
// dispatches. Each PBS node's level is its longest-path PBS depth from
// the inputs (linear nodes are free and add no depth) — the maximal
// independent sets the paper's scheduler dispatches as epochs. Within a
// level, gates group by op and LUTs by exact table, since each engine
// call shares one operation (and one test vector) across its batch.
func Compile(c *Circuit, cfg Config) (*Schedule, error) {
	minStream := cfg.MinStream
	if minStream <= 0 {
		minStream = DefaultMinStream
	}

	lvl := make([]int, len(c.nodes))
	maxLvl := 0
	for i, n := range c.nodes {
		switch n.kind {
		case kindInput:
			lvl[i] = 0
		case kindLin:
			d := 0
			for _, t := range n.terms {
				if lvl[t.W] > d {
					d = lvl[t.W]
				}
			}
			lvl[i] = d
		case kindGate:
			d := lvl[n.a]
			if lvl[n.b] > d {
				d = lvl[n.b]
			}
			lvl[i] = d + 1
		case kindLUT:
			lvl[i] = lvl[n.in] + 1
		default:
			return nil, fmt.Errorf("sched: node %d has unknown kind %d", i, n.kind)
		}
		if lvl[i] > maxLvl {
			maxLvl = lvl[i]
		}
	}

	s := &Schedule{
		levels: make([]Level, maxLvl),
		linAt:  make([][]Wire, maxLvl+1),
		nodes:  len(c.nodes),
	}
	// groupIdx[l] maps a dispatch key to its index in levels[l].Dispatches,
	// so grouping preserves first-appearance (build) order.
	groupIdx := make([]map[string]int, maxLvl)
	for i, n := range c.nodes {
		switch n.kind {
		case kindLin:
			s.linAt[lvl[i]] = append(s.linAt[lvl[i]], Wire(i))
		case kindGate, kindLUT:
			l := lvl[i] - 1
			if groupIdx[l] == nil {
				groupIdx[l] = make(map[string]int)
			}
			var key string
			if n.kind == kindGate {
				key = "g:" + n.op.String()
			} else {
				key = lutDispatchKey(n.space, n.table)
			}
			di, ok := groupIdx[l][key]
			if !ok {
				di = len(s.levels[l].Dispatches)
				groupIdx[l][key] = di
				d := Dispatch{Kind: DispatchGate, Op: n.op}
				if n.kind == kindLUT {
					d = Dispatch{Kind: DispatchLUT, Space: n.space, Table: n.table}
				}
				s.levels[l].Dispatches = append(s.levels[l].Dispatches, d)
			}
			s.levels[l].Dispatches[di].Nodes = append(s.levels[l].Dispatches[di].Nodes, Wire(i))
			s.levels[l].PBS++
		}
	}

	// Cost model: route each dispatch.
	for l := range s.levels {
		for di := range s.levels[l].Dispatches {
			d := &s.levels[l].Dispatches[di]
			switch cfg.Mode {
			case BatchOnly:
				d.Stream = false
			case StreamOnly:
				d.Stream = true
			default:
				d.Stream = len(d.Nodes) >= minStream
			}
			s.stats.Dispatches++
			if d.Stream {
				s.stats.Streamed++
			}
		}
		if s.levels[l].PBS > s.stats.MaxLevelPBS {
			s.stats.MaxLevelPBS = s.levels[l].PBS
		}
		s.stats.TotalPBS += s.levels[l].PBS
	}
	s.stats.Levels = maxLvl
	for _, lin := range s.linAt {
		s.stats.LinearNodes += len(lin)
	}
	return s, nil
}
