package sched

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/torus"
)

// The NodeSpec kind strings.
const (
	SpecInput = "in"
	SpecLin   = "lin"
	SpecGate  = "gate"
	SpecLUT   = "lut"
)

// NodeSpec is the serializable form of one circuit node: what the gate
// service's circuit-batch endpoint accepts on the wire. Wire references
// are node indices and must point at earlier nodes, which makes cycles
// unrepresentable; FromSpecs re-validates everything, so specs can come
// from untrusted peers.
type NodeSpec struct {
	Kind string `json:"kind"`

	// SpecLin
	K     uint32 `json:"k,omitempty"` // torus constant, raw bits
	Terms []Term `json:"terms,omitempty"`

	// SpecGate
	Op string `json:"op,omitempty"` // gate mnemonic, e.g. "NAND"
	A  int    `json:"a,omitempty"`
	B  int    `json:"b,omitempty"`

	// SpecLUT
	In    int   `json:"in,omitempty"`
	Space int   `json:"space,omitempty"`
	Table []int `json:"table,omitempty"`
}

// Specs serializes the circuit's nodes. Together with OutputWires it
// round-trips through FromSpecs.
func (c *Circuit) Specs() []NodeSpec {
	specs := make([]NodeSpec, len(c.nodes))
	for i, n := range c.nodes {
		switch n.kind {
		case kindInput:
			specs[i] = NodeSpec{Kind: SpecInput}
		case kindLin:
			specs[i] = NodeSpec{Kind: SpecLin, K: uint32(n.k), Terms: n.terms}
		case kindGate:
			specs[i] = NodeSpec{Kind: SpecGate, Op: n.op.String(), A: int(n.a), B: int(n.b)}
		case kindLUT:
			specs[i] = NodeSpec{Kind: SpecLUT, In: int(n.in), Space: n.space, Table: n.table}
		}
	}
	return specs
}

// OutputWires returns the output wire indices, in declaration order.
func (c *Circuit) OutputWires() []int {
	outs := make([]int, len(c.outputs))
	for i, w := range c.outputs {
		outs[i] = int(w)
	}
	return outs
}

// FromSpecs rebuilds a circuit from serialized nodes and output indices,
// validating every reference, op, and table through the Builder.
func FromSpecs(specs []NodeSpec, outputs []int) (*Circuit, error) {
	b := NewBuilder()
	for i, s := range specs {
		switch s.Kind {
		case SpecInput:
			b.Input()
		case SpecLin:
			b.Lin(torus.Torus32(s.K), s.Terms...)
		case SpecGate:
			op, err := engine.ParseGate(s.Op)
			if err != nil {
				return nil, fmt.Errorf("sched: node %d: %w", i, err)
			}
			b.Gate(op, Wire(s.A), Wire(s.B))
		case SpecLUT:
			b.LUT(Wire(s.In), s.Space, s.Table)
		default:
			return nil, fmt.Errorf("sched: node %d has unknown kind %q", i, s.Kind)
		}
	}
	for _, o := range outputs {
		b.Output(Wire(o))
	}
	return b.Build()
}
