package sched

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/torus"
)

// The NodeSpec kind strings.
const (
	SpecInput    = "in"
	SpecLin      = "lin"
	SpecGate     = "gate"
	SpecLUT      = "lut"
	SpecMultiLUT = "mlut"
)

// NodeSpec is the serializable form of one circuit node: what the gate
// service's circuit-batch endpoint accepts on the wire. Wire references
// are node indices and must point at earlier nodes, which makes cycles
// unrepresentable; FromSpecs re-validates everything, so specs can come
// from untrusted peers.
type NodeSpec struct {
	Kind string `json:"kind"`

	// SpecLin
	K     uint32 `json:"k,omitempty"` // torus constant, raw bits
	Terms []Term `json:"terms,omitempty"`

	// SpecGate
	Op string `json:"op,omitempty"` // gate mnemonic, e.g. "NAND"
	A  int    `json:"a,omitempty"`
	B  int    `json:"b,omitempty"`

	// SpecLUT (In, Space shared with SpecMultiLUT)
	In    int   `json:"in,omitempty"`
	Space int   `json:"space,omitempty"`
	Table []int `json:"table,omitempty"`

	// SpecMultiLUT: one node per group output. Every sibling repeats the
	// group's full table list and carries its output index, so a spec
	// stream can be validated without trusting cross-node invariants.
	Tables [][]int `json:"tables,omitempty"`
	Index  int     `json:"index,omitempty"`
}

// Specs serializes the circuit's nodes. Together with OutputWires it
// round-trips through FromSpecs.
func (c *Circuit) Specs() []NodeSpec {
	specs := make([]NodeSpec, len(c.nodes))
	for i, n := range c.nodes {
		switch n.kind {
		case kindInput:
			specs[i] = NodeSpec{Kind: SpecInput}
		case kindLin:
			specs[i] = NodeSpec{Kind: SpecLin, K: uint32(n.k), Terms: n.terms}
		case kindGate:
			specs[i] = NodeSpec{Kind: SpecGate, Op: n.op.String(), A: int(n.a), B: int(n.b)}
		case kindLUT:
			specs[i] = NodeSpec{Kind: SpecLUT, In: int(n.in), Space: n.space, Table: n.table}
		case kindMultiLUT:
			specs[i] = NodeSpec{Kind: SpecMultiLUT, In: int(n.in), Space: n.space, Tables: n.tables, Index: n.mvIdx}
		}
	}
	return specs
}

// OutputWires returns the output wire indices, in declaration order.
func (c *Circuit) OutputWires() []int {
	outs := make([]int, len(c.outputs))
	for i, w := range c.outputs {
		outs[i] = int(w)
	}
	return outs
}

// tablesEqual reports whether two table lists are identical in count,
// order, and every entry.
func tablesEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// FromSpecs rebuilds a circuit from serialized nodes and output indices,
// validating every reference, op, and table through the Builder. A
// multi-value group must arrive as k contiguous "mlut" specs with
// indices 0..k-1 that agree on input, space, and the full table list —
// the builder appends the whole group at the head spec and the sibling
// specs are checked against it, so a malformed stream cannot desynchronize
// spec indices from wires.
func FromSpecs(specs []NodeSpec, outputs []int) (*Circuit, error) {
	b := NewBuilder()
	// Open multi-value group: siblings expected before any other node.
	var mvHead *NodeSpec
	var mvLeft int
	for i := range specs {
		s := specs[i]
		if mvLeft > 0 {
			if s.Kind != SpecMultiLUT || s.Index != len(mvHead.Tables)-mvLeft ||
				s.In != mvHead.In || s.Space != mvHead.Space || !tablesEqual(s.Tables, mvHead.Tables) {
				return nil, fmt.Errorf("sched: node %d: expected sibling %d of the multi-value group at node %d", i, len(mvHead.Tables)-mvLeft, i-(len(mvHead.Tables)-mvLeft))
			}
			mvLeft--
			continue
		}
		switch s.Kind {
		case SpecInput:
			b.Input()
		case SpecLin:
			b.Lin(torus.Torus32(s.K), s.Terms...)
		case SpecGate:
			op, err := engine.ParseGate(s.Op)
			if err != nil {
				return nil, fmt.Errorf("sched: node %d: %w", i, err)
			}
			b.Gate(op, Wire(s.A), Wire(s.B))
		case SpecLUT:
			b.LUT(Wire(s.In), s.Space, s.Table)
		case SpecMultiLUT:
			if s.Index != 0 {
				return nil, fmt.Errorf("sched: node %d: multi-value sibling %d without a group head", i, s.Index)
			}
			b.MultiLUT(Wire(s.In), s.Space, s.Tables)
			mvHead, mvLeft = &specs[i], len(s.Tables)-1
		default:
			return nil, fmt.Errorf("sched: node %d has unknown kind %q", i, s.Kind)
		}
	}
	if mvLeft > 0 {
		return nil, fmt.Errorf("sched: truncated multi-value group: %d sibling specs missing", mvLeft)
	}
	for _, o := range outputs {
		b.Output(Wire(o))
	}
	return b.Build()
}
