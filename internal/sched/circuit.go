package sched

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/torus"
)

// GateOp re-exports the engine's gate identifier: circuits name gates the
// same way the batch APIs do.
type GateOp = engine.GateOp

// Wire identifies a node of a circuit: the value it produces is the input
// of every node that references it. Wires are assigned densely in build
// order, so a Wire is also the node's index.
type Wire int

// Term is one summand of a linear-combination node: coefficient C times
// the value on wire W. Coefficients are small signed integers (wrapping
// torus scalar multiplication, exactly LWECiphertext.MulScalar).
type Term struct {
	W Wire  `json:"w"`
	C int32 `json:"c"`
}

// nodeKind discriminates the circuit node variants.
type nodeKind uint8

const (
	kindInput    nodeKind = iota // externally supplied ciphertext
	kindLin                      // linear combination: free, no PBS
	kindGate                     // binary boolean gate: one PBS + KS
	kindLUT                      // lookup table: one PBS + KS
	kindMultiLUT                 // one output of a multi-value LUT group
)

// node is one vertex of the DAG. Exactly the fields of its kind are set.
type node struct {
	kind nodeKind

	// kindLin
	terms []Term
	k     torus.Torus32

	// kindGate (binary only; NOT is lowered to a linear node)
	op   engine.GateOp
	a, b Wire

	// kindLUT (in, space shared with kindMultiLUT)
	in    Wire
	space int
	table []int

	// kindMultiLUT: a group of k contiguous sibling nodes sharing one
	// blind rotation. Every sibling holds the same tables slice (table
	// mvIdx is this node's output); the head sibling has mvIdx 0.
	tables [][]int
	mvIdx  int
}

// Circuit is an immutable gate/LUT dataflow graph produced by a Builder
// (or FromSpecs). Nodes are stored in topological (build) order.
type Circuit struct {
	nodes   []node
	inputs  []Wire // input node ids, in declaration order
	outputs []Wire
}

// NumInputs returns how many input ciphertexts the circuit consumes.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumOutputs returns how many output ciphertexts the circuit produces.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

// NumNodes returns the total node count (inputs included).
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// Builder accumulates a circuit node by node. Every method returns the
// wire of the node it appended; invalid references or parameters record
// the first error, which Build reports. A Builder must not be reused
// after Build.
type Builder struct {
	c   Circuit
	err error
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder { return &Builder{} }

// fail records the first build error and returns an invalid wire.
func (b *Builder) fail(format string, args ...any) Wire {
	if b.err == nil {
		b.err = fmt.Errorf("sched: "+format, args...)
	}
	return Wire(-1)
}

// checkRef validates that w names an already-built node (which also makes
// cycles unrepresentable: nodes only reference earlier nodes).
func (b *Builder) checkRef(ctx string, w Wire) bool {
	if w < 0 || int(w) >= len(b.c.nodes) {
		b.fail("%s: wire %d out of range [0,%d)", ctx, int(w), len(b.c.nodes))
		return false
	}
	return true
}

// add appends one node, returning its wire.
func (b *Builder) add(n node) Wire {
	b.c.nodes = append(b.c.nodes, n)
	return Wire(len(b.c.nodes) - 1)
}

// Input declares the next externally-supplied input ciphertext.
func (b *Builder) Input() Wire {
	w := b.add(node{kind: kindInput})
	b.c.inputs = append(b.c.inputs, w)
	return w
}

// Inputs declares n consecutive input ciphertexts.
func (b *Builder) Inputs(n int) []Wire {
	ws := make([]Wire, n)
	for i := range ws {
		ws[i] = b.Input()
	}
	return ws
}

// Lin appends a free linear-combination node: k + Σ term.C · term.W,
// computed with wrapping torus arithmetic. With no terms it is an
// encrypted constant (a noiseless encryption of k), which requires the
// circuit to have at least one input to fix the LWE dimension.
func (b *Builder) Lin(k torus.Torus32, terms ...Term) Wire {
	for _, t := range terms {
		if !b.checkRef("Lin", t.W) {
			return Wire(-1)
		}
	}
	return b.add(node{kind: kindLin, k: k, terms: append([]Term(nil), terms...)})
}

// Gate appends one boolean gate node (one PBS + keyswitch). The unary NOT
// is free and is lowered to a linear node; its second operand is ignored.
func (b *Builder) Gate(op engine.GateOp, a, bw Wire) Wire {
	if op < engine.NAND || op > engine.NOT {
		return b.fail("Gate: unknown op %d", int(op))
	}
	if !b.checkRef("Gate", a) {
		return Wire(-1)
	}
	if op == engine.NOT {
		// NOT is -a on the torus, bitwise what tfhe.Evaluator.NOT computes.
		return b.add(node{kind: kindLin, terms: []Term{{W: a, C: -1}}})
	}
	if !b.checkRef("Gate", bw) {
		return Wire(-1)
	}
	return b.add(node{kind: kindGate, op: op, a: a, b: bw})
}

// Not appends the free boolean negation of a (sugar for Gate(NOT, a, _)).
func (b *Builder) Not(a Wire) Wire { return b.Gate(engine.NOT, a, Wire(-1)) }

// checkTable validates one lookup table of length space with entries in
// {0..space-1}, recording the first violation.
func (b *Builder) checkTable(ctx string, space int, table []int) bool {
	if space < 2 {
		b.fail("%s: space %d < 2", ctx, space)
		return false
	}
	if len(table) != space {
		b.fail("%s: table has %d entries, want %d", ctx, len(table), space)
		return false
	}
	for i, v := range table {
		if v < 0 || v >= space {
			b.fail("%s: entry %d = %d outside {0..%d}", ctx, i, v, space-1)
			return false
		}
	}
	return true
}

// LUT appends a lookup-table node: one PBS + keyswitch applying table
// (length space, entries in {0..space-1}) to the message on wire in.
func (b *Builder) LUT(in Wire, space int, table []int) Wire {
	if !b.checkRef("LUT", in) {
		return Wire(-1)
	}
	if !b.checkTable("LUT", space, table) {
		return Wire(-1)
	}
	return b.add(node{kind: kindLUT, in: in, space: space, table: append([]int(nil), table...)})
}

// MultiLUT appends a multi-value lookup group: k = len(tables) outputs of
// one shared blind rotation over the message on wire in, one wire per
// table in table order. All tables share the message space; packing
// requires space·k ≤ N of the executing parameter set (checked at run
// time, since the circuit is parameter-agnostic) and shrinks the noise
// margin to 1/(4·space·k) — see the tfhe multi-value documentation.
func (b *Builder) MultiLUT(in Wire, space int, tables [][]int) []Wire {
	if !b.checkRef("MultiLUT", in) {
		return nil
	}
	if len(tables) < 1 {
		b.fail("MultiLUT: no tables")
		return nil
	}
	copied := make([][]int, len(tables))
	for i, table := range tables {
		if !b.checkTable("MultiLUT", space, table) {
			return nil
		}
		copied[i] = append([]int(nil), table...)
	}
	ws := make([]Wire, len(copied))
	for i := range copied {
		ws[i] = b.add(node{kind: kindMultiLUT, in: in, space: space, tables: copied, mvIdx: i})
	}
	return ws
}

// MultiLUTFunc is MultiLUT with the tables materialized from fs over
// {0..space-1}.
func (b *Builder) MultiLUTFunc(in Wire, space int, fs ...func(int) int) []Wire {
	if space < 2 {
		b.fail("MultiLUTFunc: space %d < 2", space)
		return nil
	}
	tables := make([][]int, len(fs))
	for i, f := range fs {
		tables[i] = make([]int, space)
		for m := range tables[i] {
			tables[i][m] = f(m)
		}
	}
	return b.MultiLUT(in, space, tables)
}

// LUTFunc is LUT with the table materialized from f over {0..space-1}.
func (b *Builder) LUTFunc(in Wire, space int, f func(int) int) Wire {
	if space < 2 {
		return b.fail("LUTFunc: space %d < 2", space)
	}
	table := make([]int, space)
	for m := range table {
		table[m] = f(m)
	}
	return b.LUT(in, space, table)
}

// Output marks wires as circuit outputs, in order. It may be called
// multiple times — outputs accumulate.
func (b *Builder) Output(ws ...Wire) {
	for _, w := range ws {
		if !b.checkRef("Output", w) {
			return
		}
		b.c.outputs = append(b.c.outputs, w)
	}
}

// Build finalizes the circuit, reporting the first construction error.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	return &b.c, nil
}
