package sched

import (
	"math/rand"
	"testing"

	"repro/internal/tfhe"
)

// Stats-composition audit: when LUT-chain fusion and the multi-value
// rewrite compose — a fused LUT then packs into a shared rotation —
// Stats.MultiValueOuts / Stats.RotationsSaved must account for the
// packed groups of the FINAL circuit, and the per-pass PBSRemoved
// entries must sum to the naive-minus-optimized rotation delta with no
// double counting between the two mechanisms.

// statsTables builds distinct space-8 tables so merged dispatches can't
// mask grouping bugs.
func statsTables(space, n int) [][]int {
	tabs := make([][]int, n)
	for i := range tabs {
		tabs[i] = make([]int, space)
		for m := range tabs[i] {
			tabs[i][m] = (m*m + 3*i + 1) % space
		}
	}
	return tabs
}

// TestStatsFusionThenPacking pins the nested case: x→L1→L2 is a
// single-consumer chain (fuses to one composed LUT on x) that then
// packs with two sibling LUTs L3, L4 reading x directly. Naive: 4
// rotations over 2 levels. Optimized: one 3-output multi-value group —
// 1 rotation, 1 level.
func TestStatsFusionThenPacking(t *testing.T) {
	const space = 8
	tabs := statsTables(space, 4)
	b := NewBuilder()
	x := b.Input()
	mid := b.LUT(x, space, tabs[0])      // L1, single consumer
	b.Output(b.LUT(mid, space, tabs[1])) // L2: fuses into L2∘L1 on x
	b.Output(b.LUT(x, space, tabs[2]))   // L3
	b.Output(b.LUT(x, space, tabs[3]))   // L4
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	naive, err := Compile(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Stats().TotalPBS != 4 || naive.Stats().Levels != 2 {
		t.Fatalf("naive plan: %v, want 4 PBS over 2 levels", naive)
	}

	s, err := Compile(c, Config{Opt: OptAll()})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TotalPBS != 1 || st.Levels != 1 {
		t.Fatalf("optimized plan: %v, want 1 PBS over 1 level", s)
	}
	// The packed group of the final circuit: 3 outputs from 1 rotation.
	if st.MultiValueOuts != 3 || st.RotationsSaved != 2 {
		t.Fatalf("MultiValueOuts=%d RotationsSaved=%d, want 3 and 2", st.MultiValueOuts, st.RotationsSaved)
	}
	// Pass accounting: fuse removed L1's rotation (chain collapse),
	// mvpack removed 2 more (3 LUTs → one group). Sum must equal the
	// naive-minus-optimized delta exactly — no double counting.
	byName := make(map[string]PassStat)
	for _, p := range st.OptPasses {
		byName[p.Name] = p
	}
	if total := s.optPBSRemoved(); total != naive.Stats().TotalPBS-st.TotalPBS {
		t.Fatalf("optPBSRemoved=%d, want %d", total, naive.Stats().TotalPBS-st.TotalPBS)
	}
	if fuse := byName["fuse"].PBSRemoved + byName["prune"].PBSRemoved; fuse != 1 {
		t.Fatalf("fuse+prune removed %d PBS, want 1 (the chained L1)", fuse)
	}
	if mv := byName["mvpack"].PBSRemoved; mv != 2 {
		t.Fatalf("mvpack removed %d PBS, want 2", mv)
	}

	// Decode identity against the unoptimized circuit.
	rng := rand.New(rand.NewSource(99))
	for m := 0; m < space; m += 3 {
		ins := []tfhe.LWECiphertext{encMsg(rng, m, space)}
		outs := seqBits(t, mustOptimizedCircuit(t, c), ins)
		want := []int{tabs[1][tabs[0][m]], tabs[2][m], tabs[3][m]}
		for i, w := range want {
			if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(outs[i]), space); got != w {
				t.Fatalf("m=%d output %d: got %d, want %d", m, i, got, w)
			}
		}
	}
}

// mustOptimizedCircuit runs the full pipeline and returns the circuit.
func mustOptimizedCircuit(t *testing.T, c *Circuit) *Circuit {
	t.Helper()
	oc, _ := mustOptimize(t, c, OptAll())
	return oc
}

// TestStatsExplicitGroupsAndPackingCoexist mixes an explicit
// Builder.MultiLUT group with packable plain fan-out on the same input:
// the explicit group keeps its shape, the plain LUTs pack separately,
// and the multi-value stats cover both groups.
func TestStatsExplicitGroupsAndPackingCoexist(t *testing.T) {
	const space = 8
	tabs := statsTables(space, 5)
	b := NewBuilder()
	x := b.Input()
	for _, w := range b.MultiLUT(x, space, tabs[:2]) { // explicit k=2 group
		b.Output(w)
	}
	for _, tab := range tabs[2:] { // 3 plain LUTs: packing food
		b.Output(b.LUT(x, space, tab))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	s, err := Compile(c, Config{Opt: OptAll()})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// One rotation for the explicit pair, one for the packed trio.
	if st.TotalPBS != 2 {
		t.Fatalf("optimized plan: %v, want 2 PBS", s)
	}
	if st.MultiValueOuts != 5 || st.RotationsSaved != 3 {
		t.Fatalf("MultiValueOuts=%d RotationsSaved=%d, want 5 and 3", st.MultiValueOuts, st.RotationsSaved)
	}
	// Only packing shows up in the pass table: the explicit group's
	// saving is the builder's, not the optimizer's.
	if total := s.optPBSRemoved(); total != 2 {
		t.Fatalf("optimizer removed %d PBS, want 2 (pack 3 plain LUTs into 1 rotation)", total)
	}

	rng := rand.New(rand.NewSource(101))
	for m := 0; m < space; m += 2 {
		ins := []tfhe.LWECiphertext{encMsg(rng, m, space)}
		outs := seqBits(t, mustOptimizedCircuit(t, c), ins)
		for i, tab := range tabs {
			if got := tfhe.DecodePBSMessage(testSK.LWE.Phase(outs[i]), space); got != tab[m] {
				t.Fatalf("m=%d output %d: got %d, want %d", m, i, got, tab[m])
			}
		}
	}
}

// TestStatsBudgetSplitsPackedGroups pins the parameter-safety knob:
// with MultiValueBudget b, a packed group's space·k never exceeds b,
// splitting wide fan-out into several groups and leaving singletons
// plain — all visible in the multi-value stats.
func TestStatsBudgetSplitsPackedGroups(t *testing.T) {
	const space = 8
	tabs := statsTables(space, 5)
	b := NewBuilder()
	x := b.Input()
	for _, tab := range tabs {
		b.Output(b.LUT(x, space, tab))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	opt := OptAll()
	opt.MultiValue = 8
	opt.MultiValueBudget = 2 * space // width 2: groups of (2,2), 1 plain
	s, err := Compile(c, Config{Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TotalPBS != 3 {
		t.Fatalf("budgeted plan: %v, want 3 PBS (2+2+plain)", s)
	}
	if st.MultiValueOuts != 4 || st.RotationsSaved != 2 {
		t.Fatalf("MultiValueOuts=%d RotationsSaved=%d, want 4 and 2", st.MultiValueOuts, st.RotationsSaved)
	}
	for _, p := range st.OptPasses {
		if p.Name == "mvpack" && p.PBSRemoved != 2 {
			t.Fatalf("mvpack removed %d PBS, want 2", p.PBSRemoved)
		}
	}
}
