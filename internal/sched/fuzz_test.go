package sched

import (
	"encoding/json"
	"testing"
)

// fuzzCircuitJSON is the fuzzed wire shape: the NodeSpec stream plus
// output indices the gate service's circuit-batch endpoint accepts.
type fuzzCircuitJSON struct {
	Nodes   []NodeSpec `json:"nodes"`
	Outputs []int      `json:"outputs"`
}

// FuzzOptimizePasses feeds arbitrary NodeSpec JSON through FromSpecs and
// the full optimizer pipeline. For every input that parses into a valid
// circuit, the pipeline must not panic, must produce a circuit that
// still compiles, must never increase the schedule's TotalPBS, must
// preserve the input/output counts, and must be deterministic
// (optimizing twice yields byte-identical plans). Malformed specs must
// be rejected by FromSpecs with an error, never a panic.
func FuzzOptimizePasses(f *testing.F) {
	seeds := []string{
		// Gate chain with a dead branch and a swapped duplicate: fuse + cse + prune food.
		`{"nodes":[{"kind":"in"},{"kind":"in"},{"kind":"gate","op":"AND","a":0,"b":1},{"kind":"gate","op":"AND","a":1,"b":0},{"kind":"gate","op":"NAND","a":2,"b":3},{"kind":"gate","op":"XOR","a":0,"b":1}],"outputs":[4]}`,
		// Same-input LUT fan-out: packing food.
		`{"nodes":[{"kind":"in"},{"kind":"lut","in":0,"space":4,"table":[1,2,3,0]},{"kind":"lut","in":0,"space":4,"table":[3,2,1,0]},{"kind":"lut","in":0,"space":4,"table":[0,0,1,1]}],"outputs":[1,2,3]}`,
		// LUT chain into a multi-value group plus a linear chain: every pass fires.
		`{"nodes":[{"kind":"in"},{"kind":"lut","in":0,"space":4,"table":[1,2,3,0]},{"kind":"lut","in":1,"space":4,"table":[3,0,1,2]},{"kind":"mlut","in":0,"space":4,"tables":[[0,1,2,3],[3,2,1,0]],"index":0},{"kind":"mlut","in":0,"space":4,"tables":[[0,1,2,3],[3,2,1,0]],"index":1},{"kind":"lin","terms":[{"w":2,"c":1}]},{"kind":"lin","terms":[{"w":5,"c":1}]}],"outputs":[6,3,4]}`,
		// NOT chain degenerating to a copy.
		`{"nodes":[{"kind":"in"},{"kind":"gate","op":"NOT","a":0},{"kind":"gate","op":"NOT","a":1}],"outputs":[2]}`,
		// Constant-fold food: termless lin constant feeding a gate.
		`{"nodes":[{"kind":"in"},{"kind":"lin","k":536870912},{"kind":"gate","op":"AND","a":0,"b":1}],"outputs":[2]}`,
		// Malformed: sibling without a group head.
		`{"nodes":[{"kind":"in"},{"kind":"mlut","in":0,"space":4,"tables":[[0,1,2,3],[3,2,1,0]],"index":1}],"outputs":[1]}`,
		// Malformed: forward reference.
		`{"nodes":[{"kind":"gate","op":"OR","a":0,"b":1},{"kind":"in"},{"kind":"in"}],"outputs":[0]}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec fuzzCircuitJSON
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		// Bound the work per input: the pipeline is superlinear in node
		// count and the fuzzer will happily explode slice lengths.
		if len(spec.Nodes) > 512 {
			return
		}
		for _, n := range spec.Nodes {
			if n.Space > 1<<12 || len(n.Terms) > 64 {
				return
			}
		}
		c, err := FromSpecs(spec.Nodes, spec.Outputs)
		if err != nil {
			return // malformed specs must error, not panic — reaching here is the check
		}
		naive, err := Compile(c, Config{})
		if err != nil {
			t.Fatalf("valid circuit failed unoptimized compile: %v", err)
		}
		s, err := Compile(c, Config{Opt: OptAll()})
		if err != nil {
			t.Fatalf("optimizer rejected a valid circuit: %v", err)
		}
		if s.Stats().TotalPBS > naive.Stats().TotalPBS {
			t.Fatalf("optimizer increased TotalPBS: %d > %d", s.Stats().TotalPBS, naive.Stats().TotalPBS)
		}
		oc, _, err := Optimize(c, OptAll())
		if err != nil {
			t.Fatalf("Optimize: %v", err)
		}
		if len(oc.inputs) != len(c.inputs) || len(oc.outputs) != len(c.outputs) {
			t.Fatalf("optimizer changed interface: %d/%d inputs, %d/%d outputs",
				len(oc.inputs), len(c.inputs), len(oc.outputs), len(c.outputs))
		}
		s2, err := Compile(c, Config{Opt: OptAll()})
		if err != nil {
			t.Fatalf("second optimized compile: %v", err)
		}
		if a, b := s.Describe(), s2.Describe(); a != b {
			t.Fatalf("optimizer is nondeterministic:\n%s\nvs\n%s", a, b)
		}
	})
}
