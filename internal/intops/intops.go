package intops

import (
	"fmt"
	"math/rand"

	"repro/internal/tfhe"
)

// Base is the digit radix (2 bits per digit).
const Base = 4

// opSpace is the PBS message space for digit arithmetic: big enough to
// hold a digit sum with carry (max 2·Base-1) with slack for noise.
const opSpace = 4 * Base

// Int is an encrypted unsigned integer in little-endian radix-Base digits.
type Int struct {
	Digits []tfhe.LWECiphertext
}

// NumDigits returns the digit count.
func (x Int) NumDigits() int { return len(x.Digits) }

// MaxValue returns Base^digits - 1, the largest representable value.
func MaxValue(digits int) int {
	v := 1
	for i := 0; i < digits; i++ {
		v *= Base
	}
	return v - 1
}

// Evaluator performs homomorphic integer arithmetic.
type Evaluator struct {
	Eval *tfhe.Evaluator
}

// New wraps a TFHE evaluator.
func New(ev *tfhe.Evaluator) *Evaluator { return &Evaluator{Eval: ev} }

// Encrypt encrypts v as a digits-long integer under the secret keys.
func Encrypt(rng *rand.Rand, sk tfhe.SecretKeys, v, digits int) (Int, error) {
	if v < 0 || v > MaxValue(digits) {
		return Int{}, fmt.Errorf("intops: value %d out of range for %d digits", v, digits)
	}
	out := Int{Digits: make([]tfhe.LWECiphertext, digits)}
	for i := 0; i < digits; i++ {
		d := v % Base
		v /= Base
		out.Digits[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(d, opSpace), sk.Params.LWEStdDev)
	}
	return out, nil
}

// Decrypt recovers the plaintext integer.
func Decrypt(sk tfhe.SecretKeys, x Int) int {
	v := 0
	for i := x.NumDigits() - 1; i >= 0; i-- {
		v = v*Base + tfhe.DecodePBSMessage(sk.LWE.Phase(x.Digits[i]), opSpace)
	}
	return v
}

// Add returns x + y mod Base^digits. Each digit costs two bootstraps: one
// to extract the carry, one to reduce the digit.
func (e *Evaluator) Add(x, y Int) (Int, error) {
	if x.NumDigits() != y.NumDigits() {
		return Int{}, fmt.Errorf("intops: digit count mismatch %d vs %d", x.NumDigits(), y.NumDigits())
	}
	n := x.NumDigits()
	out := Int{Digits: make([]tfhe.LWECiphertext, n)}
	var carry *tfhe.LWECiphertext
	for i := 0; i < n; i++ {
		// Linear part: digit sum plus incoming carry (range 0..2·Base-1,
		// inside opSpace).
		s := x.Digits[i].Copy()
		s.AddTo(y.Digits[i])
		if carry != nil {
			s.AddTo(*carry)
		}
		// PBS 1: carry = s / Base; PBS 2: digit = s mod Base.
		if i+1 < n {
			c := e.Eval.EvalLUTKS(s, opSpace, func(v int) int { return v / Base })
			carry = &c
		}
		out.Digits[i] = e.Eval.EvalLUTKS(s, opSpace, func(v int) int { return v % Base })
	}
	return out, nil
}

// AddScalar returns x + c mod Base^digits for a plaintext scalar.
func (e *Evaluator) AddScalar(x Int, c int) (Int, error) {
	n := x.NumDigits()
	if c < 0 {
		c = c%(MaxValue(n)+1) + MaxValue(n) + 1
	}
	out := Int{Digits: make([]tfhe.LWECiphertext, n)}
	var carry *tfhe.LWECiphertext
	for i := 0; i < n; i++ {
		d := c % Base
		c /= Base
		s := x.Digits[i].Copy()
		s.AddPlain(tfhe.EncodePBSMessage(d, opSpace) - tfhe.EncodePBSMessage(0, opSpace))
		if carry != nil {
			s.AddTo(*carry)
		}
		if i+1 < n {
			cc := e.Eval.EvalLUTKS(s, opSpace, func(v int) int { return v / Base })
			carry = &cc
		}
		out.Digits[i] = e.Eval.EvalLUTKS(s, opSpace, func(v int) int { return v % Base })
	}
	return out, nil
}

// MulScalar returns x·c mod Base^digits via double-and-add (c >= 0).
func (e *Evaluator) MulScalar(x Int, c int) (Int, error) {
	if c < 0 {
		return Int{}, fmt.Errorf("intops: negative scalar %d", c)
	}
	n := x.NumDigits()
	// acc = 0.
	acc := Int{Digits: make([]tfhe.LWECiphertext, n)}
	for i := range acc.Digits {
		acc.Digits[i] = tfhe.NewLWECiphertext(x.Digits[i].N())
		acc.Digits[i].AddPlain(tfhe.EncodePBSMessage(0, opSpace))
	}
	cur := x
	var err error
	for c > 0 {
		if c&1 == 1 {
			if acc, err = e.Add(acc, cur); err != nil {
				return Int{}, err
			}
		}
		c >>= 1
		if c > 0 {
			if cur, err = e.Add(cur, cur); err != nil {
				return Int{}, err
			}
		}
	}
	return acc, nil
}

// IsEqual returns an encryption of 1 if x == y, else 0 (in opSpace
// encoding). Cost: one PBS per digit plus one final PBS.
func (e *Evaluator) IsEqual(x, y Int) (tfhe.LWECiphertext, error) {
	if x.NumDigits() != y.NumDigits() {
		return tfhe.LWECiphertext{}, fmt.Errorf("intops: digit count mismatch")
	}
	if x.NumDigits() >= opSpace/2 {
		return tfhe.LWECiphertext{}, fmt.Errorf("intops: too many digits (%d) for equality reduction", x.NumDigits())
	}
	// Sum of per-digit "is different" indicators.
	var total *tfhe.LWECiphertext
	for i := range x.Digits {
		d := x.Digits[i].Copy()
		d.SubTo(y.Digits[i])
		// d encodes (xi - yi) mod opSpace: 0 iff equal.
		ind := e.Eval.EvalLUTKS(d, opSpace, func(v int) int {
			if v == 0 {
				return 0
			}
			return 1
		})
		if total == nil {
			total = &ind
		} else {
			total.AddTo(ind)
		}
	}
	// total encodes the number of differing digits (< opSpace/2).
	res := e.Eval.EvalLUTKS(*total, opSpace, func(v int) int {
		if v == 0 {
			return 1
		}
		return 0
	})
	return res, nil
}

// DecryptBit decrypts a 0/1 indicator produced by IsEqual.
func DecryptBit(sk tfhe.SecretKeys, ct tfhe.LWECiphertext) int {
	return tfhe.DecodePBSMessage(sk.LWE.Phase(ct), opSpace)
}
