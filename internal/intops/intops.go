package intops

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
	"repro/internal/tfhe"
)

// Base is the digit radix (2 bits per digit).
const Base = 4

// opSpace is the PBS message space for digit arithmetic: big enough to
// hold a digit sum with carry (max 2·Base-1) with slack for noise.
const opSpace = 4 * Base

// Int is an encrypted unsigned integer in little-endian radix-Base digits.
type Int struct {
	Digits []tfhe.LWECiphertext
}

// NumDigits returns the digit count.
func (x Int) NumDigits() int { return len(x.Digits) }

// MaxValue returns Base^digits - 1, the largest representable value.
func MaxValue(digits int) int {
	v := 1
	for i := 0; i < digits; i++ {
		v *= Base
	}
	return v - 1
}

// Evaluator performs homomorphic integer arithmetic. Every operation is
// built as a sched circuit and executed on the configured backend: the
// sequential evaluator (New) runs the DAG node by node, the scheduled
// backend (NewScheduled) levelizes it and dispatches whole levels as
// engine batches. Both backends are bitwise identical; the optimizing
// backend (NewOptimized) rewrites circuits before scheduling and
// promises decode identity only.
type Evaluator struct {
	// Eval is the sequential backend's evaluator; nil when scheduled.
	Eval *tfhe.Evaluator

	runner *sched.Runner
	cfg    sched.Config
}

// New wraps a TFHE evaluator (the sequential backend).
func New(ev *tfhe.Evaluator) *Evaluator { return &Evaluator{Eval: ev} }

// NewScheduled builds an evaluator over the levelizing scheduler with the
// default cost model.
func NewScheduled(r *sched.Runner) *Evaluator { return &Evaluator{runner: r} }

// NewScheduledConfig builds a scheduled evaluator with an explicit
// compile configuration (cost-model threshold, forced routing, or
// optimizer passes).
func NewScheduledConfig(r *sched.Runner, cfg sched.Config) *Evaluator {
	return &Evaluator{runner: r, cfg: cfg}
}

// NewOptimized builds a scheduled evaluator with the full optimizer
// pass pipeline, its multi-value packing budget bound to params so
// packed groups always satisfy space·k ≤ N. Results decode identically
// to the other backends' but are not bitwise identical: fusion and
// packing re-synthesize bootstraps.
func NewOptimized(r *sched.Runner, params tfhe.Params) *Evaluator {
	opt := sched.OptAll()
	opt.MultiValueBudget = params.N
	return &Evaluator{runner: r, cfg: sched.Config{Opt: opt}}
}

// exec runs a built circuit on the backend.
func (e *Evaluator) exec(c *sched.Circuit, ins []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	if e.runner != nil {
		return e.runner.Run(c, e.cfg, ins)
	}
	return sched.RunSequential(c, e.Eval, ins)
}

// binary builds a two-operand digit circuit (equal widths — the caller
// validates) and executes it.
func (e *Evaluator) binary(x, y Int, build func(b *sched.Builder, xw, yw []sched.Wire) []sched.Wire) ([]tfhe.LWECiphertext, error) {
	c, err := binaryCircuit(x.NumDigits(), build)
	if err != nil {
		return nil, err
	}
	ins := make([]tfhe.LWECiphertext, 0, x.NumDigits()+y.NumDigits())
	ins = append(ins, x.Digits...)
	ins = append(ins, y.Digits...)
	return e.exec(c, ins)
}

// unary builds a one-operand digit circuit and executes it, returning
// the outputs as an Int.
func (e *Evaluator) unary(x Int, build func(b *sched.Builder, xw []sched.Wire) []sched.Wire) (Int, error) {
	b := sched.NewBuilder()
	xw := b.Inputs(x.NumDigits())
	b.Output(build(b, xw)...)
	c, err := b.Build()
	if err != nil {
		return Int{}, err
	}
	digits, err := e.exec(c, x.Digits)
	if err != nil {
		return Int{}, err
	}
	return Int{Digits: digits}, nil
}

// Encrypt encrypts v as a digits-long integer under the secret keys.
func Encrypt(rng *rand.Rand, sk tfhe.SecretKeys, v, digits int) (Int, error) {
	if v < 0 || v > MaxValue(digits) {
		return Int{}, fmt.Errorf("intops: value %d out of range for %d digits", v, digits)
	}
	out := Int{Digits: make([]tfhe.LWECiphertext, digits)}
	for i := 0; i < digits; i++ {
		d := v % Base
		v /= Base
		out.Digits[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(d, opSpace), sk.Params.LWEStdDev)
	}
	return out, nil
}

// Decrypt recovers the plaintext integer.
func Decrypt(sk tfhe.SecretKeys, x Int) int {
	v := 0
	for i := x.NumDigits() - 1; i >= 0; i-- {
		v = v*Base + tfhe.DecodePBSMessage(sk.LWE.Phase(x.Digits[i]), opSpace)
	}
	return v
}

// Add returns x + y mod Base^digits. Each digit costs two bootstraps: one
// to extract the carry, one to reduce the digit (the last digit skips the
// carry).
func (e *Evaluator) Add(x, y Int) (Int, error) {
	if x.NumDigits() != y.NumDigits() {
		return Int{}, fmt.Errorf("intops: digit count mismatch %d vs %d", x.NumDigits(), y.NumDigits())
	}
	digits, err := e.binary(x, y, func(b *sched.Builder, xw, yw []sched.Wire) []sched.Wire {
		return BuildAdd(b, xw, yw)
	})
	if err != nil {
		return Int{}, err
	}
	return Int{Digits: digits}, nil
}

// AddScalar returns x + c mod Base^digits for a plaintext scalar.
func (e *Evaluator) AddScalar(x Int, c int) (Int, error) {
	n := x.NumDigits()
	if c < 0 {
		c = c%(MaxValue(n)+1) + MaxValue(n) + 1
	}
	return e.unary(x, func(b *sched.Builder, xw []sched.Wire) []sched.Wire {
		return BuildAddScalar(b, xw, c)
	})
}

// MulScalar returns x·c mod Base^digits via double-and-add (c >= 0).
func (e *Evaluator) MulScalar(x Int, c int) (Int, error) {
	if c < 0 {
		return Int{}, fmt.Errorf("intops: negative scalar %d", c)
	}
	return e.unary(x, func(b *sched.Builder, xw []sched.Wire) []sched.Wire {
		return BuildMulScalar(b, xw, c)
	})
}

// Mul returns the full encrypted product x·y mod Base^digits: packed
// digit-pair partial products (all independent — the widest level any
// intops circuit produces) reduced through a balanced adder tree.
func (e *Evaluator) Mul(x, y Int) (Int, error) {
	if x.NumDigits() != y.NumDigits() {
		return Int{}, fmt.Errorf("intops: digit count mismatch %d vs %d", x.NumDigits(), y.NumDigits())
	}
	digits, err := e.binary(x, y, func(b *sched.Builder, xw, yw []sched.Wire) []sched.Wire {
		return BuildMul(b, xw, yw)
	})
	if err != nil {
		return Int{}, err
	}
	return Int{Digits: digits}, nil
}

// IsEqual returns an encryption of 1 if x == y, else 0 (in opSpace
// encoding). Cost: one PBS per digit plus one final PBS.
func (e *Evaluator) IsEqual(x, y Int) (tfhe.LWECiphertext, error) {
	if x.NumDigits() != y.NumDigits() {
		return tfhe.LWECiphertext{}, fmt.Errorf("intops: digit count mismatch %d vs %d", x.NumDigits(), y.NumDigits())
	}
	if x.NumDigits() == 0 {
		return tfhe.LWECiphertext{}, fmt.Errorf("intops: cannot compare zero-digit integers")
	}
	if x.NumDigits() >= opSpace {
		return tfhe.LWECiphertext{}, fmt.Errorf("intops: too many digits (%d) for equality reduction", x.NumDigits())
	}
	outs, err := e.binary(x, y, func(b *sched.Builder, xw, yw []sched.Wire) []sched.Wire {
		return []sched.Wire{BuildIsEqual(b, xw, yw)}
	})
	if err != nil {
		return tfhe.LWECiphertext{}, err
	}
	return outs[0], nil
}

// LessThan returns an encryption of 1 if x < y, else 0 (in opSpace
// encoding). Cost: two PBS per digit (parallel trits + a combine chain).
func (e *Evaluator) LessThan(x, y Int) (tfhe.LWECiphertext, error) {
	if x.NumDigits() != y.NumDigits() {
		return tfhe.LWECiphertext{}, fmt.Errorf("intops: digit count mismatch %d vs %d", x.NumDigits(), y.NumDigits())
	}
	if x.NumDigits() == 0 {
		return tfhe.LWECiphertext{}, fmt.Errorf("intops: cannot compare zero-digit integers")
	}
	outs, err := e.binary(x, y, func(b *sched.Builder, xw, yw []sched.Wire) []sched.Wire {
		return []sched.Wire{BuildLessThan(b, xw, yw)}
	})
	if err != nil {
		return tfhe.LWECiphertext{}, err
	}
	return outs[0], nil
}

// DecryptBit decrypts a 0/1 indicator produced by IsEqual or LessThan.
func DecryptBit(sk tfhe.SecretKeys, ct tfhe.LWECiphertext) int {
	return tfhe.DecodePBSMessage(sk.LWE.Phase(ct), opSpace)
}
