// Package intops builds multi-digit encrypted integer arithmetic on top of
// the TFHE programmable bootstrap — the "operations for integer and
// fixed-point numbers" extension of TFHE the paper cites (§II-B, refs
// [34]-[38]). Integers are encrypted digit-wise in radix Base; carry
// propagation, multiplication, comparison and equality are evaluated with
// PBS lookup tables, so every digit operation is exactly the PBS+KS
// workload the Strix accelerator batches.
//
// Every operation is expressed as a sched circuit (the Build* functions),
// so the same DAG runs either node-by-node on one evaluator or levelized
// across the batching engines — bitwise identically. The wide levels come
// from the carry-chain structure: digit reductions of different positions,
// partial products of a multiply, and per-digit comparison indicators are
// all mutually independent.
package intops
