// Package intops builds multi-digit encrypted integer arithmetic on top of
// the TFHE programmable bootstrap — the "operations for integer and
// fixed-point numbers" extension of TFHE the paper cites (§II-B, refs
// [34]-[38]). Integers are encrypted digit-wise in radix Base; carry
// propagation, comparison and equality are evaluated with PBS lookup
// tables, so every digit operation is exactly the PBS+KS workload the
// Strix accelerator batches.
package intops
