package intops

import (
	"repro/internal/sched"
	"repro/internal/tfhe"
)

// Circuit constructors: every integer operation is expressed as a sched
// DAG over digit wires, so one code path serves both the sequential
// evaluator (sched.RunSequential) and the levelizing scheduler. The
// builders assume equal-length digit slices — the Evaluator methods
// validate widths before building.

// The shared digit lookup tables, all over opSpace. Sharing the slices
// means equal-table dispatches coalesce by content everywhere (scheduler
// levels, gate-service streams).
var (
	tblCarry = buildTable(func(v int) int { return v / Base })
	tblDigit = buildTable(func(v int) int { return v % Base })
	// Partial-product tables over a packed pair v = x + Base·y.
	tblPairLow  = buildTable(func(v int) int { return ((v % Base) * (v / Base)) % Base })
	tblPairHigh = buildTable(func(v int) int { return ((v % Base) * (v / Base)) / Base })
	// Packed-pair digit comparison: 1 iff the two digits differ.
	tblPairNeq = buildTable(func(v int) int {
		if v%Base == v/Base {
			return 0
		}
		return 1
	})
	// Packed-pair trit: 0 equal, 1 less-than, 2 greater-than (x vs y).
	tblPairTrit = buildTable(func(v int) int {
		x, y := v%Base, v/Base
		switch {
		case x == y:
			return 0
		case x < y:
			return 1
		default:
			return 2
		}
	})
	// Zero test: 1 iff v == 0.
	tblIsZero = buildTable(func(v int) int {
		if v == 0 {
			return 1
		}
		return 0
	})
	// Less-than chain seed: trit==1 → 1, else 0.
	tblLtInit = buildTable(func(v int) int {
		if v == 1 {
			return 1
		}
		return 0
	})
	// Less-than chain combine over u = trit + 3·rest: equal digits defer
	// to the lower digits' verdict.
	tblLtCombine = buildTable(func(v int) int {
		d, r := v%3, v/3
		if v > 5 { // unreachable: u ≤ 5
			return 0
		}
		if d == 0 {
			return r
		}
		if d == 1 {
			return 1
		}
		return 0
	})
)

// buildTable materializes f over {0..opSpace-1}.
func buildTable(f func(int) int) []int {
	t := make([]int, opSpace)
	for v := range t {
		t[v] = f(v)
	}
	return t
}

// binaryCircuit builds a standalone two-operand circuit over n-digit
// inputs — the shape every Evaluator method and external driver
// (strixbench, the gate service tests) needs.
func binaryCircuit(n int, build func(b *sched.Builder, x, y []sched.Wire) []sched.Wire) (*sched.Circuit, error) {
	b := sched.NewBuilder()
	x := b.Inputs(n)
	y := b.Inputs(n)
	b.Output(build(b, x, y)...)
	return b.Build()
}

// AddCircuit returns a standalone n-digit addition circuit: inputs are
// x's digits then y's, outputs the sum's digits.
func AddCircuit(n int) (*sched.Circuit, error) {
	return binaryCircuit(n, BuildAdd)
}

// MulCircuit returns a standalone n-digit multiplication circuit: inputs
// are x's digits then y's, outputs the product's digits (mod Base^n).
func MulCircuit(n int) (*sched.Circuit, error) {
	return binaryCircuit(n, BuildMul)
}

// pair packs two digit wires into one message v = x + Base·y ∈
// {0..opSpace-1}, the bivariate-LUT input. Unlike a digit difference,
// the packed value always stays inside the padding-bit range, so lookups
// never hit the negacyclic wraparound.
func pair(b *sched.Builder, x, y sched.Wire) sched.Wire {
	return b.Lin(0, sched.Term{W: x, C: 1}, sched.Term{W: y, C: int32(Base)})
}

// zeroDigit appends an encrypted zero digit (a noiseless constant).
func zeroDigit(b *sched.Builder) sched.Wire {
	return b.Lin(tfhe.EncodePBSMessage(0, opSpace))
}

// BuildAdd appends the ripple-carry addition circuit: per digit one free
// linear sum (digit + digit + carry, inside opSpace) and two LUTs — carry
// extraction and digit reduction. The digit LUTs of different positions
// land on different levels of the carry chain but share one table, so a
// scheduler batches them with whatever else the level holds. Operand
// digits may exceed Base-1 as long as every linear sum stays below
// opSpace (the multiplier's row accumulation relies on this); outputs are
// always reduced digits.
func BuildAdd(b *sched.Builder, x, y []sched.Wire) []sched.Wire {
	n := len(x)
	out := make([]sched.Wire, n)
	carry := sched.Wire(-1)
	for i := 0; i < n; i++ {
		terms := []sched.Term{{W: x[i], C: 1}, {W: y[i], C: 1}}
		if carry >= 0 {
			terms = append(terms, sched.Term{W: carry, C: 1})
		}
		s := b.Lin(0, terms...)
		if i+1 < n {
			carry = b.LUT(s, opSpace, tblCarry)
		}
		out[i] = b.LUT(s, opSpace, tblDigit)
	}
	return out
}

// BuildAddScalar appends x + c for a plaintext scalar (c reduced mod
// Base^n first by the caller): the scalar digit enters each linear sum as
// a plaintext constant, everything else is BuildAdd's carry chain.
func BuildAddScalar(b *sched.Builder, x []sched.Wire, c int) []sched.Wire {
	n := len(x)
	out := make([]sched.Wire, n)
	carry := sched.Wire(-1)
	for i := 0; i < n; i++ {
		d := c % Base
		c /= Base
		terms := []sched.Term{{W: x[i], C: 1}}
		if carry >= 0 {
			terms = append(terms, sched.Term{W: carry, C: 1})
		}
		k := tfhe.EncodePBSMessage(d, opSpace) - tfhe.EncodePBSMessage(0, opSpace)
		s := b.Lin(k, terms...)
		if i+1 < n {
			carry = b.LUT(s, opSpace, tblCarry)
		}
		out[i] = b.LUT(s, opSpace, tblDigit)
	}
	return out
}

// BuildMulScalar appends x·c (c ≥ 0) via double-and-add over BuildAdd.
func BuildMulScalar(b *sched.Builder, x []sched.Wire, c int) []sched.Wire {
	n := len(x)
	acc := make([]sched.Wire, n)
	for i := range acc {
		acc[i] = zeroDigit(b)
	}
	cur := x
	for c > 0 {
		if c&1 == 1 {
			acc = BuildAdd(b, acc, cur)
		}
		c >>= 1
		if c > 0 {
			cur = BuildAdd(b, cur, cur)
		}
	}
	return acc
}

// BuildMul appends the full encrypted multiply x·y mod Base^n. Every
// digit pair is packed into one message and split into low/high partial
// products by two LUTs — all of them independent, so the scheduler's
// first level is n²-wide — then the n partial-product rows reduce
// through a balanced tree of ripple-carry adds. Row digits reach at most
// (Base-1) + (Base²-1)/Base < 2·Base before reduction, which BuildAdd's
// opSpace slack absorbs.
func BuildMul(b *sched.Builder, x, y []sched.Wire) []sched.Wire {
	n := len(x)
	if n == 0 {
		return nil
	}
	rows := make([][]sched.Wire, 0, n)
	for j := 0; j < n; j++ {
		// lows[i] = (x_i·y_j) mod Base at position i+j; highs[i] = the
		// carry digit at position i+j+1. Positions ≥ n are truncated.
		lows := make([]sched.Wire, 0, n-j)
		highs := make([]sched.Wire, 0, n-j)
		for i := 0; i+j < n; i++ {
			p := pair(b, x[i], y[j])
			lows = append(lows, b.LUT(p, opSpace, tblPairLow))
			if i+j+1 < n {
				highs = append(highs, b.LUT(p, opSpace, tblPairHigh))
			}
		}
		row := make([]sched.Wire, n)
		for pos := 0; pos < n; pos++ {
			var terms []sched.Term
			if li := pos - j; li >= 0 && li < len(lows) {
				terms = append(terms, sched.Term{W: lows[li], C: 1})
			}
			if hi := pos - j - 1; hi >= 0 && hi < len(highs) {
				terms = append(terms, sched.Term{W: highs[hi], C: 1})
			}
			switch len(terms) {
			case 0:
				row[pos] = zeroDigit(b)
			case 1:
				row[pos] = terms[0].W
			default:
				row[pos] = b.Lin(0, terms...)
			}
		}
		rows = append(rows, row)
	}
	// Balanced reduction tree: independent adds share levels, so the
	// scheduler overlaps their carry chains.
	for len(rows) > 1 {
		next := make([][]sched.Wire, 0, (len(rows)+1)/2)
		for k := 0; k+1 < len(rows); k += 2 {
			next = append(next, BuildAdd(b, rows[k], rows[k+1]))
		}
		if len(rows)%2 == 1 {
			next = append(next, rows[len(rows)-1])
		}
		rows = next
	}
	return rows[0]
}

// BuildIsEqual appends the equality test: per digit a packed-pair
// inequality indicator (one LUT, all digits in parallel), a free sum of
// the indicators, and one zero-test LUT. Requires len(x) < opSpace so
// the indicator sum stays in the message space. The packed comparison
// never leaves the padding-bit range, unlike the digit-difference
// encoding it replaces, whose negacyclic sign flips let +1 and −1 digit
// differences cancel and report unequal values as equal.
func BuildIsEqual(b *sched.Builder, x, y []sched.Wire) sched.Wire {
	ind := make([]sched.Term, len(x))
	for i := range x {
		ind[i] = sched.Term{W: b.LUT(pair(b, x[i], y[i]), opSpace, tblPairNeq), C: 1}
	}
	total := b.Lin(0, ind...)
	return b.LUT(total, opSpace, tblIsZero)
}

// BuildLessThan appends the comparison x < y: per digit a packed-pair
// trit LUT (all digits in parallel), then a combine chain from the least
// significant digit up — each more significant digit overrides the
// verdict below unless the digits are equal. Zero-digit operands yield a
// constant-0 node (nothing is less than nothing), mirroring
// BuildIsEqual's constant-1 degenerate case.
func BuildLessThan(b *sched.Builder, x, y []sched.Wire) sched.Wire {
	n := len(x)
	if n == 0 {
		return b.Lin(tfhe.EncodePBSMessage(0, opSpace))
	}
	trits := make([]sched.Wire, n)
	for i := range x {
		trits[i] = b.LUT(pair(b, x[i], y[i]), opSpace, tblPairTrit)
	}
	r := b.LUT(trits[0], opSpace, tblLtInit)
	for i := 1; i < n; i++ {
		u := b.Lin(0, sched.Term{W: trits[i], C: 1}, sched.Term{W: r, C: 3})
		r = b.LUT(u, opSpace, tblLtCombine)
	}
	return r
}
