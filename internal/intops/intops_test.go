package intops

import (
	"math/rand"
	"testing"

	"repro/internal/tfhe"
)

var (
	testSK tfhe.SecretKeys
	testEK tfhe.EvaluationKeys
)

func init() {
	rng := rand.New(rand.NewSource(31))
	testSK, testEK = tfhe.GenerateKeys(rng, tfhe.ParamsTest)
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range []int{0, 1, 7, 42, 63} {
		x, err := Encrypt(rng, testSK, v, 3) // 3 digits: 0..63
		if err != nil {
			t.Fatal(err)
		}
		if got := Decrypt(testSK, x); got != v {
			t.Errorf("roundtrip(%d) = %d", v, got)
		}
	}
}

func TestEncryptRangeCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Encrypt(rng, testSK, 64, 3); err == nil {
		t.Error("64 does not fit 3 radix-4 digits")
	}
	if _, err := Encrypt(rng, testSK, -1, 3); err == nil {
		t.Error("negative should error")
	}
}

func TestMaxValue(t *testing.T) {
	if MaxValue(3) != 63 || MaxValue(1) != 3 {
		t.Errorf("MaxValue wrong: %d, %d", MaxValue(3), MaxValue(1))
	}
}

func TestAddWithCarryChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ev := New(tfhe.NewEvaluator(testEK))
	cases := [][2]int{{5, 7}, {0, 0}, {63, 1}, {21, 42}, {33, 31}}
	for _, c := range cases {
		x, _ := Encrypt(rng, testSK, c[0], 3)
		y, _ := Encrypt(rng, testSK, c[1], 3)
		sum, err := ev.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		want := (c[0] + c[1]) % 64
		if got := Decrypt(testSK, sum); got != want {
			t.Errorf("%d+%d = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestAddDigitMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 1, 2)
	y, _ := Encrypt(rng, testSK, 1, 3)
	if _, err := ev.Add(x, y); err == nil {
		t.Error("digit mismatch should error")
	}
}

func TestAddScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 17, 3)
	got, err := ev.AddScalar(x, 30)
	if err != nil {
		t.Fatal(err)
	}
	if v := Decrypt(testSK, got); v != 47 {
		t.Errorf("17+30 = %d", v)
	}
}

func TestMulScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 11, 3)
	for _, c := range []int{0, 1, 3, 5} {
		got, err := ev.MulScalar(x, c)
		if err != nil {
			t.Fatal(err)
		}
		want := (11 * c) % 64
		if v := Decrypt(testSK, got); v != want {
			t.Errorf("11*%d = %d, want %d", c, v, want)
		}
	}
}

func TestIsEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ev := New(tfhe.NewEvaluator(testEK))
	cases := []struct {
		a, b int
		eq   int
	}{{42, 42, 1}, {42, 43, 0}, {0, 0, 1}, {63, 0, 0}, {21, 22, 0}}
	for _, c := range cases {
		x, _ := Encrypt(rng, testSK, c.a, 3)
		y, _ := Encrypt(rng, testSK, c.b, 3)
		res, err := ev.IsEqual(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := DecryptBit(testSK, res); got != c.eq {
			t.Errorf("IsEqual(%d,%d) = %d, want %d", c.a, c.b, got, c.eq)
		}
	}
}

func TestIsEqualTooManyDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ev := New(tfhe.NewEvaluator(testEK))
	big := Int{Digits: make([]tfhe.LWECiphertext, opSpace/2)}
	for i := range big.Digits {
		x, _ := Encrypt(rng, testSK, 0, 1)
		big.Digits[i] = x.Digits[0]
	}
	if _, err := ev.IsEqual(big, big); err == nil {
		t.Error("equality over too many digits should error")
	}
}

func TestPBSCountPerAdd(t *testing.T) {
	// 3-digit add: 2 PBS for digits 0,1 (carry+digit) + 1 for digit 2.
	rng := rand.New(rand.NewSource(9))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 5, 3)
	y, _ := Encrypt(rng, testSK, 6, 3)
	before := ev.Eval.Counters.PBSCount
	if _, err := ev.Add(x, y); err != nil {
		t.Fatal(err)
	}
	if got := ev.Eval.Counters.PBSCount - before; got != 5 {
		t.Errorf("3-digit add used %d bootstraps, want 5", got)
	}
}
