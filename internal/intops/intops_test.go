package intops

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

var (
	testSK tfhe.SecretKeys
	testEK tfhe.EvaluationKeys
)

func init() {
	rng := rand.New(rand.NewSource(31))
	testSK, testEK = tfhe.GenerateKeys(rng, tfhe.ParamsTest)
}

// scheduledEvaluator builds an evaluator over fresh engines (small pools
// keep the tests fast; MinStream 4 exercises both routing paths).
func scheduledEvaluator() *Evaluator {
	return NewScheduledConfig(&sched.Runner{
		Batch:  engine.New(testEK, engine.Config{Workers: 3}),
		Stream: engine.NewStreaming(testEK, engine.StreamConfig{RotateWorkers: 2}),
	}, sched.Config{MinStream: 4})
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range []int{0, 1, 7, 42, 63} {
		x, err := Encrypt(rng, testSK, v, 3) // 3 digits: 0..63
		if err != nil {
			t.Fatal(err)
		}
		if got := Decrypt(testSK, x); got != v {
			t.Errorf("roundtrip(%d) = %d", v, got)
		}
	}
}

func TestEncryptRangeCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Encrypt(rng, testSK, 64, 3); err == nil {
		t.Error("64 does not fit 3 radix-4 digits")
	}
	if _, err := Encrypt(rng, testSK, -1, 3); err == nil {
		t.Error("negative should error")
	}
}

func TestMaxValue(t *testing.T) {
	if MaxValue(3) != 63 || MaxValue(1) != 3 {
		t.Errorf("MaxValue wrong: %d, %d", MaxValue(3), MaxValue(1))
	}
}

func TestAddWithCarryChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ev := New(tfhe.NewEvaluator(testEK))
	cases := [][2]int{{5, 7}, {0, 0}, {63, 1}, {21, 42}, {33, 31}}
	for _, c := range cases {
		x, _ := Encrypt(rng, testSK, c[0], 3)
		y, _ := Encrypt(rng, testSK, c[1], 3)
		sum, err := ev.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		want := (c[0] + c[1]) % 64
		if got := Decrypt(testSK, sum); got != want {
			t.Errorf("%d+%d = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestAddDigitMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 1, 2)
	y, _ := Encrypt(rng, testSK, 1, 3)
	if _, err := ev.Add(x, y); err == nil {
		t.Error("digit mismatch should error")
	}
}

func TestAddScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 17, 3)
	got, err := ev.AddScalar(x, 30)
	if err != nil {
		t.Fatal(err)
	}
	if v := Decrypt(testSK, got); v != 47 {
		t.Errorf("17+30 = %d", v)
	}
}

func TestMulScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 11, 3)
	for _, c := range []int{0, 1, 3, 5} {
		got, err := ev.MulScalar(x, c)
		if err != nil {
			t.Fatal(err)
		}
		want := (11 * c) % 64
		if v := Decrypt(testSK, got); v != want {
			t.Errorf("11*%d = %d, want %d", c, v, want)
		}
	}
}

func TestMul(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ev := New(tfhe.NewEvaluator(testEK))
	cases := [][2]int{{0, 0}, {1, 7}, {5, 9}, {11, 13}, {63, 63}, {63, 1}, {8, 8}}
	for _, c := range cases {
		x, _ := Encrypt(rng, testSK, c[0], 3)
		y, _ := Encrypt(rng, testSK, c[1], 3)
		prod, err := ev.Mul(x, y)
		if err != nil {
			t.Fatal(err)
		}
		want := (c[0] * c[1]) % 64
		if got := Decrypt(testSK, prod); got != want {
			t.Errorf("%d*%d = %d, want %d", c[0], c[1], got, want)
		}
	}
	x, _ := Encrypt(rng, testSK, 1, 2)
	y, _ := Encrypt(rng, testSK, 1, 3)
	if _, err := ev.Mul(x, y); err == nil {
		t.Error("digit mismatch should error")
	}
}

func TestIsEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ev := New(tfhe.NewEvaluator(testEK))
	cases := []struct {
		a, b int
		eq   int
	}{{42, 42, 1}, {42, 43, 0}, {0, 0, 1}, {63, 0, 0}, {21, 22, 0}}
	for _, c := range cases {
		x, _ := Encrypt(rng, testSK, c.a, 3)
		y, _ := Encrypt(rng, testSK, c.b, 3)
		res, err := ev.IsEqual(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := DecryptBit(testSK, res); got != c.eq {
			t.Errorf("IsEqual(%d,%d) = %d, want %d", c.a, c.b, got, c.eq)
		}
	}
}

// TestIsEqualNoCancellation is the regression test for the digit-difference
// encoding bug: 4 = (0,1) and 1 = (1,0) differ by +1 in one digit and −1
// in the other; the old ±1/opSpace indicator sum cancelled to zero and
// reported them equal. The packed-pair indicators cannot cancel.
func TestIsEqualNoCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, ev := range []*Evaluator{New(tfhe.NewEvaluator(testEK)), scheduledEvaluator()} {
		x, _ := Encrypt(rng, testSK, 4, 2)
		y, _ := Encrypt(rng, testSK, 1, 2)
		res, err := ev.IsEqual(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := DecryptBit(testSK, res); got != 0 {
			t.Errorf("IsEqual(4,1) = %d, want 0", got)
		}
	}
}

func TestIsEqualTooManyDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ev := New(tfhe.NewEvaluator(testEK))
	big := Int{Digits: make([]tfhe.LWECiphertext, opSpace)}
	for i := range big.Digits {
		x, _ := Encrypt(rng, testSK, 0, 1)
		big.Digits[i] = x.Digits[0]
	}
	if _, err := ev.IsEqual(big, big); err == nil {
		t.Error("equality over too many digits should error")
	}
}

func TestLessThan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ev := New(tfhe.NewEvaluator(testEK))
	cases := []struct {
		a, b int
		lt   int
	}{{0, 1, 1}, {1, 0, 0}, {5, 5, 0}, {41, 42, 1}, {42, 41, 0}, {0, 63, 1}, {63, 0, 0}, {16, 17, 1}, {31, 32, 1}}
	for _, c := range cases {
		x, _ := Encrypt(rng, testSK, c.a, 3)
		y, _ := Encrypt(rng, testSK, c.b, 3)
		res, err := ev.LessThan(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := DecryptBit(testSK, res); got != c.lt {
			t.Errorf("LessThan(%d,%d) = %d, want %d", c.a, c.b, got, c.lt)
		}
	}
}

func TestPBSCountPerAdd(t *testing.T) {
	// 3-digit add: 2 PBS for digits 0,1 (carry+digit) + 1 for digit 2.
	rng := rand.New(rand.NewSource(9))
	ev := New(tfhe.NewEvaluator(testEK))
	x, _ := Encrypt(rng, testSK, 5, 3)
	y, _ := Encrypt(rng, testSK, 6, 3)
	before := ev.Eval.Counters.PBSCount
	if _, err := ev.Add(x, y); err != nil {
		t.Fatal(err)
	}
	if got := ev.Eval.Counters.PBSCount - before; got != 5 {
		t.Errorf("3-digit add used %d bootstraps, want 5", got)
	}
}

// --- scheduler/sequential equivalence harness ---

// sameInt compares two encrypted integers bitwise.
func sameInt(a, b Int) bool {
	if a.NumDigits() != b.NumDigits() {
		return false
	}
	for i := range a.Digits {
		if a.Digits[i].N() != b.Digits[i].N() || a.Digits[i].B != b.Digits[i].B {
			return false
		}
		for j := range a.Digits[i].A {
			if a.Digits[i].A[j] != b.Digits[i].A[j] {
				return false
			}
		}
	}
	return true
}

// TestScheduledEquivalence runs every operation on both backends over the
// same ciphertexts and requires bitwise-identical outputs (and correct
// plaintexts) — the contract that lets workloads switch freely between
// the sequential evaluator and the engine scheduler.
func TestScheduledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seq := New(tfhe.NewEvaluator(testEK))
	par := scheduledEvaluator()

	vals := [][2]int{{13, 42}, {0, 63}, {63, 63}, {7, 7}}
	for _, v := range vals {
		x, _ := Encrypt(rng, testSK, v[0], 3)
		y, _ := Encrypt(rng, testSK, v[1], 3)

		sSum, err1 := seq.Add(x, y)
		pSum, err2 := par.Add(x, y)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !sameInt(sSum, pSum) {
			t.Errorf("Add(%d,%d): scheduled differs from sequential", v[0], v[1])
		}
		if got := Decrypt(testSK, pSum); got != (v[0]+v[1])%64 {
			t.Errorf("Add(%d,%d) = %d", v[0], v[1], got)
		}

		sProd, err1 := seq.Mul(x, y)
		pProd, err2 := par.Mul(x, y)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !sameInt(sProd, pProd) {
			t.Errorf("Mul(%d,%d): scheduled differs from sequential", v[0], v[1])
		}
		if got := Decrypt(testSK, pProd); got != (v[0]*v[1])%64 {
			t.Errorf("Mul(%d,%d) = %d", v[0], v[1], got)
		}

		for name, op := range map[string]func(*Evaluator) (tfhe.LWECiphertext, error){
			"IsEqual":  func(e *Evaluator) (tfhe.LWECiphertext, error) { return e.IsEqual(x, y) },
			"LessThan": func(e *Evaluator) (tfhe.LWECiphertext, error) { return e.LessThan(x, y) },
		} {
			sc, err1 := op(seq)
			pc, err2 := op(par)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !sameInt(Int{Digits: []tfhe.LWECiphertext{sc}}, Int{Digits: []tfhe.LWECiphertext{pc}}) {
				t.Errorf("%s(%d,%d): scheduled differs from sequential", name, v[0], v[1])
			}
		}
	}

	x, _ := Encrypt(rng, testSK, 29, 3)
	sa, _ := seq.AddScalar(x, 44)
	pa, _ := par.AddScalar(x, 44)
	if !sameInt(sa, pa) {
		t.Error("AddScalar: scheduled differs from sequential")
	}
	sm, _ := seq.MulScalar(x, 6)
	pm, _ := par.MulScalar(x, 6)
	if !sameInt(sm, pm) {
		t.Error("MulScalar: scheduled differs from sequential")
	}
}

// --- edge cases (scheduler/sequential harness) ---

func TestZeroDigitInts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x, err := Encrypt(rng, testSK, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decrypt(testSK, x); got != 0 {
		t.Errorf("zero-digit decrypt = %d", got)
	}
	for name, ev := range map[string]*Evaluator{"seq": New(tfhe.NewEvaluator(testEK)), "sched": scheduledEvaluator()} {
		sum, err := ev.Add(x, x)
		if err != nil || sum.NumDigits() != 0 {
			t.Errorf("%s: zero-digit add: %v, %d digits", name, err, sum.NumDigits())
		}
		prod, err := ev.Mul(x, x)
		if err != nil || prod.NumDigits() != 0 {
			t.Errorf("%s: zero-digit mul: %v, %d digits", name, err, prod.NumDigits())
		}
		if _, err := ev.IsEqual(x, x); err == nil {
			t.Errorf("%s: zero-digit IsEqual should error (no ciphertext to return)", name)
		}
		if _, err := ev.LessThan(x, x); err == nil {
			t.Errorf("%s: zero-digit LessThan should error", name)
		}
	}
}

func TestMaxValueCarryOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	seq := New(tfhe.NewEvaluator(testEK))
	par := scheduledEvaluator()
	// 63+63 wraps to 62; 63+1 wraps to 0 — the longest carry chains.
	cases := [][3]int{{63, 63, 62}, {63, 1, 0}, {62, 1, 63}, {48, 16, 0}}
	for _, c := range cases {
		x, _ := Encrypt(rng, testSK, c[0], 3)
		y, _ := Encrypt(rng, testSK, c[1], 3)
		s, err := seq.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		p, err := par.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got := Decrypt(testSK, s); got != c[2] {
			t.Errorf("seq %d+%d = %d, want %d", c[0], c[1], got, c[2])
		}
		if !sameInt(s, p) {
			t.Errorf("overflow add %d+%d: scheduled differs from sequential", c[0], c[1])
		}
	}
}

func TestMixedWidthCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x, _ := Encrypt(rng, testSK, 3, 2)
	y, _ := Encrypt(rng, testSK, 3, 3)
	for name, ev := range map[string]*Evaluator{"seq": New(tfhe.NewEvaluator(testEK)), "sched": scheduledEvaluator()} {
		if _, err := ev.IsEqual(x, y); err == nil {
			t.Errorf("%s: mixed-width IsEqual should error", name)
		}
		if _, err := ev.LessThan(x, y); err == nil {
			t.Errorf("%s: mixed-width LessThan should error", name)
		}
	}
}

// TestMulSchedulePlan pins the multiply's schedule shape: the partial
// products form one wide first level (2·n²−n LUT nodes minus the
// truncated highs), and the plan PBS total matches what actually runs.
func TestMulSchedulePlan(t *testing.T) {
	b := sched.NewBuilder()
	xw := b.Inputs(3)
	yw := b.Inputs(3)
	b.Output(BuildMul(b, xw, yw)...)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := sched.Compile(circ, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sch.Stats()
	// n=3: 6 lows + 3 highs = 9 pair LUTs, all level 1.
	if st.MaxLevelPBS < 9 {
		t.Errorf("first level should hold ≥9 parallel pair LUTs, max level = %d", st.MaxLevelPBS)
	}
	eng := engine.New(testEK, engine.Config{Workers: 2})
	eng.ResetCounters()
	rng := rand.New(rand.NewSource(53))
	x, _ := Encrypt(rng, testSK, 10, 3)
	y, _ := Encrypt(rng, testSK, 9, 3)
	r := &sched.Runner{Batch: eng}
	if _, err := r.Run(circ, sched.Config{Mode: sched.BatchOnly}, append(append([]tfhe.LWECiphertext{}, x.Digits...), y.Digits...)); err != nil {
		t.Fatal(err)
	}
	if got := eng.Counters().PBSCount; got != int64(st.TotalPBS) {
		t.Errorf("engine ran %d PBS, plan says %d", got, st.TotalPBS)
	}
}

// TestZeroDigitBuilders pins the degenerate builder behavior directly:
// zero-digit comparison circuits degrade to constants (1 for equality, 0
// for less-than) instead of panicking, even without the Evaluator guard.
func TestZeroDigitBuilders(t *testing.T) {
	b := sched.NewBuilder()
	anchor := b.Input() // fixes the LWE dimension for the constant nodes
	eq := BuildIsEqual(b, nil, nil)
	lt := BuildLessThan(b, nil, nil)
	b.Output(anchor, eq, lt)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	x, _ := Encrypt(rng, testSK, 1, 1)
	outs, err := sched.RunSequential(circ, tfhe.NewEvaluator(testEK), x.Digits)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecryptBit(testSK, outs[1]); got != 1 {
		t.Errorf("zero-digit IsEqual constant = %d, want 1", got)
	}
	if got := DecryptBit(testSK, outs[2]); got != 0 {
		t.Errorf("zero-digit LessThan constant = %d, want 0", got)
	}
}

// TestOptimizedEvaluator runs add and mul through the optimizing
// scheduled backend: the pass pipeline rewrites the digit circuits
// (fusing LUT chains and packing carry/digit fan-out) and the results
// still decrypt to the right values on every backend-visible operation.
func TestOptimizedEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ev := NewOptimized(&sched.Runner{
		Batch:  engine.New(testEK, engine.Config{Workers: 3}),
		Stream: engine.NewStreaming(testEK, engine.StreamConfig{RotateWorkers: 2}),
	}, tfhe.ParamsTest)
	for _, c := range [][2]int{{0, 0}, {5, 9}, {27, 45}, {63, 63}} {
		x, _ := Encrypt(rng, testSK, c[0], 3)
		y, _ := Encrypt(rng, testSK, c[1], 3)
		sum, err := ev.Add(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := Decrypt(testSK, sum), (c[0]+c[1])%64; got != want {
			t.Errorf("optimized %d+%d = %d, want %d", c[0], c[1], got, want)
		}
		prod, err := ev.Mul(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := Decrypt(testSK, prod), (c[0]*c[1])%64; got != want {
			t.Errorf("optimized %d*%d = %d, want %d", c[0], c[1], got, want)
		}
	}
}
