// Package tfhe implements the functional TFHE scheme the Strix accelerator
// executes: LWE/GLWE/GGSW ciphertexts, programmable bootstrapping
// (Algorithm 1 of the paper) and keyswitching (Algorithm 2), with the same
// data structures the paper's §II-D describes. It is the golden model the
// architecture simulator is validated against, and its operation counters
// drive the Fig 1 workload-breakdown experiment.
package tfhe
