package tfhe

import (
	"fmt"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/poly"
	"repro/internal/torus"
)

// Bootstrapping key unrolling (BKU) — the technique Matcha [18] uses to
// reduce blind-rotation iterations at the cost of a larger key (§VII of
// the Strix paper; originally Bourse et al. [51]). Two LWE key bits are
// folded into one iteration using the identity
//
//	X^(a1·s1 + a2·s2) = 1 + s1(1−s2)(X^a1 − 1)
//	                      + (1−s1)s2(X^a2 − 1)
//	                      + s1·s2(X^(a1+a2) − 1),
//
// so each unrolled iteration performs three external products with GGSW
// encryptions of the bit products s1(1−s2), (1−s1)s2 and s1·s2. The key
// grows 1.5× (3 GGSWs per 2 bits) and the per-iteration compute grows
// 1.5×, but the *serial* iteration count halves — the latency/area trade
// the ablation experiment quantifies.

// UnrolledBSK is a factor-2 unrolled bootstrapping key.
type UnrolledBSK struct {
	Params Params
	Pairs  [][3]GGSWFourier // ceil(n/2) entries; entry i covers bits 2i, 2i+1
	Tail   *GGSWFourier     // standard GGSW for the last bit when n is odd
}

// GenerateUnrolledBSK builds the unrolled key for the secret keys.
func GenerateUnrolledBSK(rng *rand.Rand, sk SecretKeys) UnrolledBSK {
	p := sk.Params
	proc := fft.SharedProcessor(p.N)
	gadget := poly.NewDecomposer(p.PBSBaseLog, p.PBSLevel)

	n := p.SmallN
	out := UnrolledBSK{Params: p, Pairs: make([][3]GGSWFourier, n/2)}
	for i := 0; i < n/2; i++ {
		s1 := sk.LWE.Bits[2*i]
		s2 := sk.LWE.Bits[2*i+1]
		out.Pairs[i] = [3]GGSWFourier{
			EncryptGGSW(rng, sk.GLWE, s1*(1-s2), gadget, p.GLWEStdDev, proc),
			EncryptGGSW(rng, sk.GLWE, (1-s1)*s2, gadget, p.GLWEStdDev, proc),
			EncryptGGSW(rng, sk.GLWE, s1*s2, gadget, p.GLWEStdDev, proc),
		}
	}
	if n%2 == 1 {
		g := EncryptGGSW(rng, sk.GLWE, sk.LWE.Bits[n-1], gadget, p.GLWEStdDev, proc)
		out.Tail = &g
	}
	return out
}

// Iterations returns the serial blind-rotation iteration count with this
// key: ceil(n/2).
func (u UnrolledBSK) Iterations() int {
	it := len(u.Pairs)
	if u.Tail != nil {
		it++
	}
	return it
}

// Bytes returns the Fourier-domain key size (1.5× the standard key).
func (u UnrolledBSK) Bytes() int64 {
	p := u.Params
	perGGSW := int64(p.K+1) * int64(p.PBSLevel) * int64(p.K+1) * int64(p.N/2) * 16
	total := int64(len(u.Pairs)) * 3 * perGGSW
	if u.Tail != nil {
		total += perGGSW
	}
	return total
}

// BlindRotateUnrolled is BlindRotate using the unrolled key: half the
// serial iterations, three external products each.
func (e *Evaluator) BlindRotateUnrolled(c LWECiphertext, testVec GLWECiphertext, u UnrolledBSK) GLWECiphertext {
	p := e.Params
	if c.N() != p.SmallN {
		panic(fmt.Sprintf("tfhe: BlindRotateUnrolled expects n=%d, got %d", p.SmallN, c.N()))
	}
	twoN := 2 * p.N
	bBar := torus.ModSwitch(c.B, twoN)
	e.Counters.ModSwitches += int64(c.N() + 1)

	acc := NewGLWECiphertext(p.K, p.N)
	testVec.RotateTo(acc, -bBar)
	e.Counters.Rotations++

	base := acc.Copy() // scratch for the pre-iteration accumulator
	e.ensureRotateScratch()
	diff := e.diff
	rot := e.rot

	for i := 0; i < len(u.Pairs); i++ {
		a1 := torus.ModSwitch(c.A[2*i], twoN)
		a2 := torus.ModSwitch(c.A[2*i+1], twoN)
		if a1 == 0 && a2 == 0 {
			continue
		}
		// Snapshot acc: all three products read the pre-update value.
		for j := range base.Polys {
			copy(base.Polys[j].Coeffs, acc.Polys[j].Coeffs)
		}
		for term, e2 := range [3]int{a1, a2, (a1 + a2) % twoN} {
			if e2 == 0 {
				continue // X^0 − 1 = 0: the term contributes nothing
			}
			base.RotateTo(rot, e2)
			e.Counters.Rotations++
			for j := range diff.Polys {
				copy(diff.Polys[j].Coeffs, rot.Polys[j].Coeffs)
				poly.SubTo(diff.Polys[j], base.Polys[j])
			}
			ExternalProductAcc(acc, diff, u.Pairs[i][term], e.gadget, e.proc, e.epBuf, &e.Counters)
		}
	}
	if u.Tail != nil {
		aBar := torus.ModSwitch(c.A[p.SmallN-1], twoN)
		if aBar != 0 {
			CMuxRotateAcc(acc, aBar, *u.Tail, e.gadget, e.proc, e.epBuf, diff, rot, &e.Counters)
		}
	}
	return acc
}

// BootstrapUnrolled is the unrolled PBS: BlindRotateUnrolled followed by
// sample extraction.
func (e *Evaluator) BootstrapUnrolled(c LWECiphertext, testVec GLWECiphertext, u UnrolledBSK) LWECiphertext {
	acc := e.BlindRotateUnrolled(c, testVec, u)
	out := SampleExtract(acc)
	e.Counters.SampleExtracts++
	e.Counters.PBSCount++
	return out
}

// UnrolledGGSWCount returns how many GGSW ciphertexts the unrolled key
// holds per iteration (3) versus the standard key (1) — used by the
// architecture ablation.
const UnrolledGGSWCount = 3
