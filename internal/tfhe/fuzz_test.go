package tfhe

import (
	"testing"
)

// FuzzMultiLUTTestVector pins the packed test-vector builder's contract:
// for any (space, k) the parameter set admits it never panics, keeps the
// mask trivial, and lays tables out exactly as an independently-written
// reference (windows of ⌈N/(space·k)⌉ boundaries computed the opposite
// way around), with extraction offsets strictly increasing inside [0, N).
// Table entries come from the fuzzed bytes. Plain `go test` replays the
// f.Add seeds plus the committed corpus under testdata/fuzz/ in
// regression mode; the nightly workflow explores further.
func FuzzMultiLUTTestVector(f *testing.F) {
	f.Add(4, 1, []byte{0, 1, 2, 3})
	f.Add(4, 4, []byte{3, 1})
	f.Add(2, 128, []byte{})
	f.Add(8, 3, []byte{7, 6, 5, 4, 3, 2, 1, 0, 1})
	f.Add(0, 0, []byte{1})
	f.Add(-4, -1, []byte{9})
	f.Fuzz(func(t *testing.T, space, k int, data []byte) {
		p := ParamsTest
		if p.ValidateMultiLUT(space, k) != nil {
			return // the builder's callers validate first
		}
		tables := make([][]int, k)
		for i := range tables {
			tables[i] = make([]int, space)
			for m := range tables[i] {
				if len(data) > 0 {
					tables[i][m] = int(data[(i*space+m)%len(data)]) % space
				}
			}
		}
		ev := NewEvaluator(testEK)
		tv := ev.NewMultiLUTTestVector(space, TableFuncs(tables))

		for i := 0; i < tv.K(); i++ {
			for j := 0; j < p.N; j++ {
				if tv.Polys[i].Coeffs[j] != 0 {
					t.Fatalf("space=%d k=%d: packed test vector mask poly %d is not trivial", space, k, i)
				}
			}
		}

		// Reference layout, built boundary-first: fine slot f covers
		// coefficients [⌈f·N/(s·k)⌉, ⌈(f+1)·N/(s·k)⌉).
		body := tv.Body()
		sk := space * k
		ceilDiv := func(a, b int) int { return (a + b - 1) / b }
		covered := 0
		for fine := 0; fine < sk; fine++ {
			lo, hi := ceilDiv(fine*p.N, sk), ceilDiv((fine+1)*p.N, sk)
			want := EncodePBSMessage(tables[fine%k][fine/k], space)
			for j := lo; j < hi; j++ {
				if body.Coeffs[j] != want {
					t.Fatalf("space=%d k=%d: coeff %d = %d, want %d (fine slot %d)", space, k, j, body.Coeffs[j], want, fine)
				}
			}
			covered += hi - lo
		}
		if covered != p.N {
			t.Fatalf("space=%d k=%d: fine slots cover %d of %d coefficients", space, k, covered, p.N)
		}

		offsets := p.MultiLUTOffsets(space, k)
		if len(offsets) != k {
			t.Fatalf("space=%d k=%d: %d offsets", space, k, len(offsets))
		}
		for i, off := range offsets {
			if off < 0 || off >= p.N {
				t.Fatalf("offset %d = %d outside [0,%d)", i, off, p.N)
			}
			if i > 0 && off <= offsets[i-1] {
				t.Fatalf("offsets not strictly increasing: %v", offsets)
			}
		}
	})
}
