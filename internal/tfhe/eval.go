package tfhe

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/poly"
	"repro/internal/torus"
)

// Evaluator executes the server-side TFHE operations — programmable
// bootstrapping (Algorithm 1) and keyswitching (Algorithm 2) — using a key
// set. It owns reusable scratch buffers, so an Evaluator must not be shared
// between goroutines; create one per worker.
type Evaluator struct {
	Params   Params
	Keys     EvaluationKeys
	Counters OpCounters // cumulative operation counts (see counters.go)

	proc     *fft.Processor
	gadget   poly.Decomposer
	ksGadget poly.Decomposer

	// scratch; the blind-rotation buffers (epBuf, diff, rot) are built
	// lazily on the first CMux so specialized pipeline-stage evaluators
	// that never rotate (prepare, extract, keyswitch pools) stay light.
	epBuf    *externalProductBuffers
	diff     GLWECiphertext
	rot      GLWECiphertext
	ksDigits []int32
	msBuf    []int // modswitch scratch for the sequential BlindRotate
}

// NewEvaluator builds an evaluator around the evaluation keys.
func NewEvaluator(ek EvaluationKeys) *Evaluator {
	p := ek.Params
	return &Evaluator{
		Params:   p,
		Keys:     ek,
		proc:     fft.SharedProcessor(p.N),
		gadget:   poly.NewDecomposer(p.PBSBaseLog, p.PBSLevel),
		ksGadget: poly.NewDecomposer(p.KSBaseLog, p.KSLevel),
		ksDigits: make([]int32, p.KSLevel),
	}
}

// ensureRotateScratch allocates the blind-rotation scratch buffers on
// first use.
func (e *Evaluator) ensureRotateScratch() {
	if e.epBuf != nil {
		return
	}
	p := e.Params
	e.diff = NewGLWECiphertext(p.K, p.N)
	e.rot = NewGLWECiphertext(p.K, p.N)
	e.epBuf = newExternalProductBuffers(p.K, p.N, p.PBSLevel, e.proc)
}

// BlindRotate runs the blind-rotation loop of Algorithm 1 on the test
// vector testVec driven by ciphertext c, returning the rotated accumulator.
// testVec is not modified. It composes the pipeline stage primitives of
// stages.go (modswitch → init → CMux steps) back-to-back, so the
// sequential path and the streaming engine execute the same code.
func (e *Evaluator) BlindRotate(c LWECiphertext, testVec GLWECiphertext) GLWECiphertext {
	ms := e.modSwitchScratch(c)           // Algorithm 1 lines 2–3
	acc := e.BlindRotateInit(testVec, ms) // line 4: rotate 'left' by -b̄
	e.BlindRotateSteps(acc, ms)           // lines 5–12: n CMux iterations
	return acc
}

// modSwitchScratch is ModSwitchLWE into evaluator-owned scratch: the
// sequential path consumes the rotation amounts before returning, so it
// can skip the per-call allocation the streaming engine needs to hand
// items between stages.
func (e *Evaluator) modSwitchScratch(c LWECiphertext) ModSwitched {
	if e.msBuf == nil {
		e.msBuf = make([]int, e.Params.SmallN)
	}
	return e.modSwitchInto(c, e.msBuf)
}

// Bootstrap performs the full PBS (Algorithm 1): blind rotation of testVec
// followed by sample extraction. The result is an LWE ciphertext of
// dimension k·N under the extracted key.
func (e *Evaluator) Bootstrap(c LWECiphertext, testVec GLWECiphertext) LWECiphertext {
	return e.Extract(e.BlindRotate(c, testVec))
}

// KeySwitch converts an LWE ciphertext of dimension k·N (post-extraction)
// back to dimension n under the original key — Algorithm 2.
func (e *Evaluator) KeySwitch(c LWECiphertext) LWECiphertext {
	p := e.Params
	big := p.ExtractedN()
	if c.N() != big {
		panic(fmt.Sprintf("tfhe: KeySwitch expects LWE dimension kN=%d, got %d", big, c.N()))
	}
	out := NewLWECiphertext(p.SmallN)
	out.B = c.B // Algorithm 2 line 2
	for j := 0; j < big; j++ {
		e.ksGadget.DigitsTo(e.ksDigits, c.A[j]) // line 3: decomposition
		e.Counters.KSDecompScalar++
		for l, d := range e.ksDigits {
			if d == 0 {
				continue
			}
			// Lines 4–6: o -= d · ksk[j][l] (vector-matrix multiply).
			k := e.Keys.KSK[j][l]
			for i := range out.A {
				out.A[i] -= torus.Torus32(int32(k.A[i]) * d)
			}
			out.B -= torus.Torus32(int32(k.B) * d)
			e.Counters.KSMACs += int64(p.SmallN + 1)
		}
	}
	e.Counters.KSCount++
	return out
}

// EncodePBSMessage encodes m ∈ {0..space-1} for PBS with a padding bit:
// the torus value is m/(2·space), keeping the phase in [0, 1/2) so the
// negacyclic wraparound never corrupts the lookup.
func EncodePBSMessage(m, space int) torus.Torus32 {
	return torus.EncodeMessage(((m%space)+space)%space, 2*space)
}

// DecodePBSMessage decodes a PBS-encoded torus value back to {0..space-1}.
func DecodePBSMessage(t torus.Torus32, space int) int {
	return torus.DecodeMessage(t, 2*space) % space
}

// NewLUTTestVector builds the GLWE test vector for a lookup table
// f: {0..space-1} → Torus32. Slot j of the body holds f(⌊j·space/N⌋); the
// caller must pre-shift the ciphertext phase by half a slot (EvalLUT does
// this) so noise is centered inside the slot.
func (e *Evaluator) NewLUTTestVector(space int, f func(int) torus.Torus32) GLWECiphertext {
	p := e.Params
	tv := NewGLWECiphertext(p.K, p.N)
	body := tv.Body()
	for j := 0; j < p.N; j++ {
		m := j * space / p.N
		body.Coeffs[j] = f(m % space)
	}
	return tv
}

// LUTTestVector builds the encoded test vector for the integer lookup
// table f: {0..space-1} → {0..space-1}. It is read-only during PBS, so one
// encoding can be shared across a whole stream of ciphertexts (the
// streaming engine's level-2 LUT sharing).
func (e *Evaluator) LUTTestVector(space int, f func(int) int) GLWECiphertext {
	return e.NewLUTTestVector(space, func(m int) torus.Torus32 {
		return EncodePBSMessage(f(m), space)
	})
}

// ShiftForLUT returns c shifted by half a slot, the LUT pre-processing of
// EvalLUT: centering each encoded message inside its slot lets the lookup
// tolerate noise up to 1/(4·space).
func (e *Evaluator) ShiftForLUT(c LWECiphertext, space int) LWECiphertext {
	shifted := c.Copy()
	shifted.AddPlain(torus.EncodeMessage(1, 4*space))
	e.Counters.LinearOps++
	return shifted
}

// EvalLUT applies the univariate function f (on {0..space-1}) to the
// encrypted message via programmable bootstrapping, returning a ciphertext
// of dimension k·N encoding f(m) with the same padding-bit encoding.
// The output of f must itself be in {0..space-1}.
func (e *Evaluator) EvalLUT(c LWECiphertext, space int, f func(int) int) LWECiphertext {
	return e.Bootstrap(e.ShiftForLUT(c, space), e.LUTTestVector(space, f))
}

// EvalLUTKS is EvalLUT followed by keyswitching back to dimension n, the
// PBS→KS sequence of §IV-C that the accelerator pipelines.
func (e *Evaluator) EvalLUTKS(c LWECiphertext, space int, f func(int) int) LWECiphertext {
	return e.KeySwitch(e.EvalLUT(c, space, f))
}
