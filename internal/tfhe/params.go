package tfhe

import "fmt"

// Params collects the TFHE parameters of Table II/IV plus the gadget and
// noise parameters the paper inherits from the Concrete/NuFHE libraries.
type Params struct {
	Name string // e.g. "I", "II", "III", "IV"

	// Table IV parameters.
	N        int // polynomial degree (power of two)
	K        int // GLWE mask length k
	SmallN   int // LWE mask length n
	PBSLevel int // decomposition level of bootstrapping, lb
	Security int // λ in bits (documentation only)

	// Gadget parameters not printed in Table IV (library defaults).
	PBSBaseLog int // log2 of the PBS decomposition base Bg
	KSLevel    int // keyswitching decomposition level, lk
	KSBaseLog  int // log2 of the keyswitching base

	// Noise parameters (standard deviations as torus fractions).
	LWEStdDev  float64 // fresh LWE noise (keyswitching key noise)
	GLWEStdDev float64 // fresh GLWE noise (bootstrapping key noise)
}

// Validate checks structural parameter constraints.
func (p Params) Validate() error {
	switch {
	case p.N < 4 || p.N&(p.N-1) != 0:
		return fmt.Errorf("tfhe: N=%d must be a power of two >= 4", p.N)
	case p.K < 1:
		return fmt.Errorf("tfhe: k=%d must be >= 1", p.K)
	case p.SmallN < 1:
		return fmt.Errorf("tfhe: n=%d must be >= 1", p.SmallN)
	case p.PBSLevel < 1 || p.PBSBaseLog < 1 || p.PBSLevel*p.PBSBaseLog > 32:
		return fmt.Errorf("tfhe: invalid PBS gadget (lb=%d, Bg=2^%d)", p.PBSLevel, p.PBSBaseLog)
	case p.KSLevel < 1 || p.KSBaseLog < 1 || p.KSLevel*p.KSBaseLog > 32:
		return fmt.Errorf("tfhe: invalid KS gadget (lk=%d, base=2^%d)", p.KSLevel, p.KSBaseLog)
	case p.LWEStdDev < 0 || p.GLWEStdDev < 0:
		return fmt.Errorf("tfhe: negative noise stddev")
	}
	return nil
}

// ExtractedN returns k·N, the LWE dimension after sample extraction.
func (p Params) ExtractedN() int { return p.K * p.N }

// ParamsI is parameter set I of Table IV — the 110-bit baseline used by all
// prior accelerators (Concrete/NuFHE defaults).
var ParamsI = Params{
	Name: "I", N: 1024, K: 1, SmallN: 500, PBSLevel: 2, Security: 110,
	PBSBaseLog: 10, KSLevel: 8, KSBaseLog: 2,
	LWEStdDev: 3.05e-5, GLWEStdDev: 7.18e-9,
}

// ParamsII is parameter set II (128-bit, used by XHEC). The keyswitching
// gadget (lk=3) follows the newer Concrete defaults; this choice also
// reproduces the paper's published set-II latency (see EXPERIMENTS.md).
var ParamsII = Params{
	Name: "II", N: 1024, K: 1, SmallN: 630, PBSLevel: 3, Security: 128,
	PBSBaseLog: 7, KSLevel: 3, KSBaseLog: 5,
	LWEStdDev: 1.5e-5, GLWEStdDev: 7.18e-9,
}

// ParamsIII is parameter set III (128-bit, used by YKP).
var ParamsIII = Params{
	Name: "III", N: 2048, K: 1, SmallN: 592, PBSLevel: 3, Security: 128,
	PBSBaseLog: 8, KSLevel: 3, KSBaseLog: 5,
	LWEStdDev: 1.5e-5, GLWEStdDev: 1.0e-10,
}

// ParamsIV is parameter set IV — the new high-precision set the paper
// introduces for Strix (largest polynomial degree).
var ParamsIV = Params{
	Name: "IV", N: 16384, K: 1, SmallN: 991, PBSLevel: 2, Security: 128,
	PBSBaseLog: 10, KSLevel: 2, KSBaseLog: 8,
	LWEStdDev: 1.0e-7, GLWEStdDev: 1.0e-11,
}

// ParamsTest is a deliberately small, low-noise parameter set for fast unit
// tests. It is NOT secure; it exists so the full PBS/KS pipeline can be
// exercised thousands of times in CI.
var ParamsTest = Params{
	Name: "test", N: 256, K: 1, SmallN: 64, PBSLevel: 3, Security: 0,
	PBSBaseLog: 8, KSLevel: 6, KSBaseLog: 3,
	LWEStdDev: 4.0e-8, GLWEStdDev: 1.0e-9,
}

// StandardSets returns the four Table IV parameter sets in order.
func StandardSets() []Params {
	return []Params{ParamsI, ParamsII, ParamsIII, ParamsIV}
}

// ParamsByName resolves "I".."IV" (or "test").
func ParamsByName(name string) (Params, error) {
	for _, p := range append(StandardSets(), ParamsTest) {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("tfhe: unknown parameter set %q", name)
}
