//go:build race

package tfhe

// raceEnabled reports whether the race detector is active. Allocation-count
// tests skip under -race: the detector's shadow-memory bookkeeping and the
// extra GC pressure it causes can evict sync.Pool scratch between runs,
// making AllocsPerRun report spurious nonzero averages.
const raceEnabled = true
