package tfhe

import (
	"fmt"

	"repro/internal/torus"
)

// Multi-value programmable bootstrapping: one blind rotation evaluating k
// lookup tables over the same encrypted input. The k tables are packed
// into a single test vector on a k×-finer slot grid — each message window
// of width N/space is split into k subslots, subslot i holding table i's
// output — so the rotation that would serve one LUT serves all k, and the
// k results are read out by sample-extracting the accumulator at k
// coefficient offsets (one per subslot). The blind rotation dominates a
// PBS, so the amortized cost per output approaches 1/k of a full PBS.
//
// The price is precision: centering the phase inside a subslot shrinks
// the tolerated noise from 1/(4·space) to 1/(4·space·k), exactly as if
// the input were encoded in a message space k times larger. Packing
// therefore requires space·k ≤ N (at least one coefficient per subslot),
// and parameter sets must keep input noise below the finer bound.
//
// With k = 1 the packed test vector, the half-subslot shift, and the
// single extraction offset all degenerate to the standard EvalLUT path,
// so EvalMultiLUT with one table is bitwise identical to EvalLUT.

// ValidateMultiLUT checks that k tables over message space `space` can be
// packed into one test vector under these parameters.
func (p Params) ValidateMultiLUT(space, k int) error {
	switch {
	case space < 2:
		return fmt.Errorf("tfhe: multi-value LUT space %d < 2", space)
	case k < 1:
		return fmt.Errorf("tfhe: multi-value LUT count %d < 1", k)
	case space*k > p.N:
		return fmt.Errorf("tfhe: multi-value packing needs space·k ≤ N: %d·%d > %d", space, k, p.N)
	}
	return nil
}

// MultiLUTOffsets returns the k sample-extraction offsets of a packed
// test vector: output i is read at coefficient i·N/(space·k), the start
// of subslot i within the message window the rotation landed in.
func (p Params) MultiLUTOffsets(space, k int) []int {
	offsets := make([]int, k)
	for i := range offsets {
		offsets[i] = i * p.N / (space * k)
	}
	return offsets
}

// NewMultiLUTTestVector builds the packed test vector for the k integer
// lookup tables fs (each on {0..space-1}): coefficient j falls in message
// window m = ⌊j·space/N⌋ and subslot i = ⌊j·space·k/N⌋ mod k, and holds
// the encoded fs[i](m). Like every test vector it is read-only during
// PBS, so one packing can be shared across a whole stream. With k = 1
// this is exactly LUTTestVector.
func (e *Evaluator) NewMultiLUTTestVector(space int, fs []func(int) int) GLWECiphertext {
	p := e.Params
	k := len(fs)
	if err := p.ValidateMultiLUT(space, k); err != nil {
		panic(err)
	}
	tv := NewGLWECiphertext(p.K, p.N)
	body := tv.Body()
	for j := 0; j < p.N; j++ {
		fine := j * space * k / p.N
		body.Coeffs[j] = EncodePBSMessage(fs[fine%k](fine/k%space), space)
	}
	return tv
}

// ShiftForMultiLUT returns c shifted by half a subslot — the multi-value
// analogue of ShiftForLUT. Centering the phase inside the k×-finer
// subslot grid keeps every extraction offset inside the input's message
// window for noise up to 1/(4·space·k).
func (e *Evaluator) ShiftForMultiLUT(c LWECiphertext, space, k int) LWECiphertext {
	shifted := c.Copy()
	shifted.AddPlain(torus.EncodeMessage(1, 4*space*k))
	e.Counters.LinearOps++
	return shifted
}

// BlindRotateMulti is the multi-value Bootstrap: one blind rotation of
// the packed test vector driven by c, then one sample extraction per
// offset — k LWE outputs (dimension k·N) for the cost of a single
// rotation. offsets come from MultiLUTOffsets.
func (e *Evaluator) BlindRotateMulti(c LWECiphertext, testVec GLWECiphertext, offsets []int) []LWECiphertext {
	return e.ExtractMulti(e.BlindRotate(c, testVec), offsets)
}

// EvalMultiLUT applies the k univariate functions fs (each on
// {0..space-1}, outputs in {0..space-1}) to the one encrypted message via
// a single multi-value bootstrap, returning k ciphertexts of dimension
// k·N where output i encodes fs[i](m). With one table it is bitwise
// identical to EvalLUT.
func (e *Evaluator) EvalMultiLUT(c LWECiphertext, space int, fs []func(int) int) []LWECiphertext {
	k := len(fs)
	tv := e.NewMultiLUTTestVector(space, fs)
	return e.BlindRotateMulti(e.ShiftForMultiLUT(c, space, k), tv, e.Params.MultiLUTOffsets(space, k))
}

// EvalMultiLUTKS is EvalMultiLUT with every output keyswitched back to
// dimension n — one blind rotation fanned out into k full §IV-C PBS→KS
// results.
func (e *Evaluator) EvalMultiLUTKS(c LWECiphertext, space int, fs []func(int) int) []LWECiphertext {
	outs := e.EvalMultiLUT(c, space, fs)
	for i, big := range outs {
		outs[i] = e.KeySwitch(big)
	}
	return outs
}

// TableFuncs wraps integer lookup tables as the function form the LUT
// APIs take, with each table captured by value. Callers holding
// serialized [][]int tables (the scheduler, the gate service) use this to
// reach the packed test-vector builder.
func TableFuncs(tables [][]int) []func(int) int {
	fs := make([]func(int) int, len(tables))
	for i, table := range tables {
		table := table
		fs[i] = func(m int) int { return table[m] }
	}
	return fs
}
