//go:build !race

package tfhe

// raceEnabled reports whether the race detector is active; see race_on_test.go.
const raceEnabled = false
