package tfhe

import (
	"math/rand"
	"testing"

	"repro/internal/fft"
	"repro/internal/poly"
	"repro/internal/torus"
)

// extProdFixture builds everything one external product needs.
func extProdFixture(seed int64) (d GLWECiphertext, g GGSWFourier, gadget poly.Decomposer, proc *fft.Processor, buf *externalProductBuffers, out GLWECiphertext) {
	p := ParamsTest
	rng := rand.New(rand.NewSource(seed))
	key := NewGLWEKey(rng, p.K, p.N)
	proc = fft.NewProcessor(p.N)
	gadget = poly.NewDecomposer(p.PBSBaseLog, p.PBSLevel)
	buf = newExternalProductBuffers(p.K, p.N, p.PBSLevel, proc)
	mu := poly.New(p.N)
	mu.Coeffs[3] = torus.FromFloat(0.25)
	d = key.Encrypt(rng, mu, 1e-9)
	g = EncryptGGSW(rng, key, 1, gadget, p.GLWEStdDev, proc)
	out = NewGLWECiphertext(p.K, p.N)
	return
}

func TestExternalProductAccNoAlloc(t *testing.T) {
	// The blind-rotate inner loop must be allocation free: with the scratch
	// buffers pre-built, every ExternalProductAcc call reuses the fused
	// decompose buffers, the Fourier accumulators and the pooled inverse
	// scratch without touching the heap.
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	d, g, gadget, proc, buf, out := extProdFixture(31)
	ExternalProductAcc(out, d, g, gadget, proc, buf, nil) // warm pools
	avg := testing.AllocsPerRun(50, func() {
		ExternalProductAcc(out, d, g, gadget, proc, buf, nil)
	})
	if avg != 0 {
		t.Errorf("ExternalProductAcc allocates %v per call, want 0", avg)
	}
}

func TestExternalProductFastMatchesReference(t *testing.T) {
	// Op-level pin of the kernel contract: the full external product —
	// fused decompose, forward FFTs, VMA MACs, additive inverse — must be
	// bitwise identical under the fast and reference kernels.
	if !fft.FastKernelAvailable() {
		t.Skip("purego build: no fast kernel")
	}
	d, g, gadget, proc, buf, outFast := extProdFixture(37)
	outRef := NewGLWECiphertext(outFast.K(), outFast.PolyN())

	prev := fft.SetFastKernel(true)
	ExternalProductAcc(outFast, d, g, gadget, proc, buf, nil)
	fft.SetFastKernel(false)
	ExternalProductAcc(outRef, d, g, gadget, proc, buf, nil)
	fft.SetFastKernel(prev)

	for c := range outFast.Polys {
		for i := range outFast.Polys[c].Coeffs {
			if outFast.Polys[c].Coeffs[i] != outRef.Polys[c].Coeffs[i] {
				t.Fatalf("component %d coeff %d: fast %#x != ref %#x", c, i,
					outFast.Polys[c].Coeffs[i], outRef.Polys[c].Coeffs[i])
			}
		}
	}
}

func BenchmarkExternalProduct(b *testing.B) {
	d, g, gadget, proc, buf, out := extProdFixture(41)
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ExternalProductAcc(out, d, g, gadget, proc, buf, nil)
		}
	}
	b.Run("fast", func(b *testing.B) {
		if !fft.FastKernelAvailable() {
			b.Skip("purego build")
		}
		prev := fft.SetFastKernel(true)
		defer fft.SetFastKernel(prev)
		run(b)
	})
	b.Run("ref", func(b *testing.B) {
		prev := fft.SetFastKernel(false)
		defer fft.SetFastKernel(prev)
		run(b)
	})
}
