package tfhe

// OpCounters records the operation mix of PBS and keyswitching executions.
// The Fig 1 experiment derives the paper's workload breakdown from these
// counts weighted by per-operation CPU cost, instead of hard-coding the
// published percentages.
type OpCounters struct {
	// Blind rotation (per PBS: n iterations).
	Rotations      int64 // GLWE negacyclic rotations (Rotator Unit work)
	Decompositions int64 // gadget decompositions of GLWE components
	ForwardFFTs    int64 // forward transforms of digit polynomials
	InverseFFTs    int64 // inverse transforms of accumulated products
	VMAMuls        int64 // complex multiply-accumulates (Fourier domain)
	Accumulations  int64 // time-domain coefficient accumulations

	// Whole-operation counts.
	PBSCount       int64
	ModSwitches    int64 // scalar modulus switches
	SampleExtracts int64
	KSCount        int64
	KSDecompScalar int64 // scalar decompositions in keyswitching
	KSMACs         int64 // scalar multiply-accumulates in keyswitching
	LinearOps      int64 // homomorphic additions/subtractions of LWE

	// Multi-value PBS: blind rotations that served several LUT outputs
	// (each also counts once in PBSCount) and the outputs they fanned out.
	// MultiValueOuts − MultiValuePBS is the number of rotations saved
	// versus evaluating every output with its own PBS.
	MultiValuePBS  int64
	MultiValueOuts int64
}

// Add accumulates other into c.
func (c *OpCounters) Add(other OpCounters) {
	c.Rotations += other.Rotations
	c.Decompositions += other.Decompositions
	c.ForwardFFTs += other.ForwardFFTs
	c.InverseFFTs += other.InverseFFTs
	c.VMAMuls += other.VMAMuls
	c.Accumulations += other.Accumulations
	c.PBSCount += other.PBSCount
	c.ModSwitches += other.ModSwitches
	c.SampleExtracts += other.SampleExtracts
	c.KSCount += other.KSCount
	c.KSDecompScalar += other.KSDecompScalar
	c.KSMACs += other.KSMACs
	c.LinearOps += other.LinearOps
	c.MultiValuePBS += other.MultiValuePBS
	c.MultiValueOuts += other.MultiValueOuts
}

// Reset zeroes all counters.
func (c *OpCounters) Reset() { *c = OpCounters{} }
