package tfhe

import (
	"math/rand"
	"testing"

	"repro/internal/fft"
	"repro/internal/poly"
	"repro/internal/torus"
)

// testKeys generates a key set for ParamsTest once per test binary.
var (
	testSK SecretKeys
	testEK EvaluationKeys
)

func init() {
	rng := rand.New(rand.NewSource(2023))
	testSK, testEK = GenerateKeys(rng, ParamsTest)
}

func TestParamsValidate(t *testing.T) {
	for _, p := range append(StandardSets(), ParamsTest) {
		if err := p.Validate(); err != nil {
			t.Errorf("set %s invalid: %v", p.Name, err)
		}
	}
	bad := ParamsI
	bad.N = 1000
	if bad.Validate() == nil {
		t.Error("non-power-of-two N should fail validation")
	}
	bad = ParamsI
	bad.PBSBaseLog = 20
	bad.PBSLevel = 2
	if bad.Validate() == nil {
		t.Error("gadget wider than 32 bits should fail validation")
	}
}

func TestParamsByName(t *testing.T) {
	p, err := ParamsByName("III")
	if err != nil || p.N != 2048 {
		t.Errorf("ParamsByName(III) = %+v, %v", p, err)
	}
	if _, err := ParamsByName("nope"); err == nil {
		t.Error("expected error for unknown set")
	}
}

func TestLWEEncryptDecrypt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	key := NewLWEKey(rng, 300)
	space := 8
	for m := 0; m < space; m++ {
		c := key.Encrypt(rng, torus.EncodeMessage(m, space), 1e-7)
		if got := key.DecryptMessage(c, space); got != m {
			t.Fatalf("decrypt(encrypt(%d)) = %d", m, got)
		}
	}
}

func TestLWEHomomorphicAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	key := NewLWEKey(rng, 300)
	space := 16
	a := key.Encrypt(rng, torus.EncodeMessage(3, space), 1e-8)
	b := key.Encrypt(rng, torus.EncodeMessage(5, space), 1e-8)
	a.AddTo(b)
	if got := key.DecryptMessage(a, space); got != 8 {
		t.Fatalf("3+5 = %d", got)
	}
	a.SubTo(b)
	if got := key.DecryptMessage(a, space); got != 3 {
		t.Fatalf("8-5 = %d", got)
	}
}

func TestLWEScalarMulAndNegate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	key := NewLWEKey(rng, 300)
	space := 16
	c := key.Encrypt(rng, torus.EncodeMessage(3, space), 1e-9)
	c.MulScalar(4)
	if got := key.DecryptMessage(c, space); got != 12 {
		t.Fatalf("3*4 = %d", got)
	}
	c.Negate()
	if got := key.DecryptMessage(c, space); got != 4 {
		t.Fatalf("-12 mod 16 = %d", got)
	}
}

func TestGLWEEncryptDecrypt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	key := NewGLWEKey(rng, 1, 256)
	mu := poly.New(256)
	for i := range mu.Coeffs {
		mu.Coeffs[i] = torus.EncodeMessage(i%8, 8)
	}
	c := key.Encrypt(rng, mu, 1e-9)
	phase := key.Phase(c)
	if d := poly.MaxDistance(phase, mu); d > 1e-4 {
		t.Fatalf("GLWE phase error %v", d)
	}
}

func TestGLWERotateHomomorphic(t *testing.T) {
	// Rotating the ciphertext rotates the plaintext.
	rng := rand.New(rand.NewSource(5))
	key := NewGLWEKey(rng, 1, 128)
	mu := poly.New(128)
	mu.Coeffs[0] = torus.FromFloat(0.25)
	c := key.Encrypt(rng, mu, 1e-9)
	rot := NewGLWECiphertext(1, 128)
	c.RotateTo(rot, 5)
	phase := key.Phase(rot)
	want := poly.MulByMonomial(mu, 5)
	if d := poly.MaxDistance(phase, want); d > 1e-4 {
		t.Fatalf("rotation phase error %v", d)
	}
}

func TestSampleExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	key := NewGLWEKey(rng, 1, 128)
	mu := poly.New(128)
	mu.Coeffs[0] = torus.FromFloat(0.3)
	c := key.Encrypt(rng, mu, 1e-9)
	lwe := SampleExtract(c)
	ext := key.ExtractLWEKey()
	got := torus.ToFloat(ext.Phase(lwe))
	if got < 0.299 || got > 0.301 {
		t.Fatalf("extracted phase %v, want 0.3", got)
	}
}

func TestSampleExtractDimension(t *testing.T) {
	c := NewGLWECiphertext(2, 64)
	if got := SampleExtract(c).N(); got != 128 {
		t.Fatalf("extracted dimension %d, want 128", got)
	}
}

func TestExternalProductSelectsBit(t *testing.T) {
	// GGSW(0) ⊡ d ≈ 0, GGSW(1) ⊡ d ≈ d.
	p := ParamsTest
	rng := rand.New(rand.NewSource(7))
	key := NewGLWEKey(rng, p.K, p.N)
	proc := fft.NewProcessor(p.N)
	gadget := poly.NewDecomposer(p.PBSBaseLog, p.PBSLevel)
	buf := newExternalProductBuffers(p.K, p.N, p.PBSLevel, proc)

	mu := poly.New(p.N)
	mu.Coeffs[3] = torus.FromFloat(0.25)
	d := key.Encrypt(rng, mu, 1e-9)

	for _, bit := range []int32{0, 1} {
		g := EncryptGGSW(rng, key, bit, gadget, p.GLWEStdDev, proc)
		out := NewGLWECiphertext(p.K, p.N)
		ExternalProductAcc(out, d, g, gadget, proc, buf, nil)
		phase := key.Phase(out)
		want := poly.New(p.N)
		if bit == 1 {
			want = mu
		}
		if dd := poly.MaxDistance(phase, want); dd > 1e-3 {
			t.Fatalf("bit=%d: external product error %v", bit, dd)
		}
	}
}

func TestCMuxSelects(t *testing.T) {
	p := ParamsTest
	rng := rand.New(rand.NewSource(8))
	key := NewGLWEKey(rng, p.K, p.N)
	proc := fft.NewProcessor(p.N)
	gadget := poly.NewDecomposer(p.PBSBaseLog, p.PBSLevel)
	buf := newExternalProductBuffers(p.K, p.N, p.PBSLevel, proc)
	diff := NewGLWECiphertext(p.K, p.N)
	rot := NewGLWECiphertext(p.K, p.N)

	mu := poly.New(p.N)
	mu.Coeffs[0] = torus.FromFloat(0.25)

	for _, bit := range []int32{0, 1} {
		tv := key.Encrypt(rng, mu, 1e-9)
		g := EncryptGGSW(rng, key, bit, gadget, p.GLWEStdDev, proc)
		CMuxRotateAcc(tv, 7, g, gadget, proc, buf, diff, rot, nil)
		phase := key.Phase(tv)
		want := mu
		if bit == 1 {
			want = poly.MulByMonomial(mu, 7)
		}
		if dd := poly.MaxDistance(phase, want); dd > 1e-3 {
			t.Fatalf("bit=%d: CMux error %v", bit, dd)
		}
	}
}

func TestKeySwitchPreservesMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ev := NewEvaluator(testEK)
	space := 8
	for m := 0; m < space; m++ {
		c := testSK.BigLWE.Encrypt(rng, torus.EncodeMessage(m, space), 1e-8)
		out := ev.KeySwitch(c)
		if got := testSK.LWE.DecryptMessage(out, space); got != m {
			t.Fatalf("keyswitch(%d) decrypted to %d", m, got)
		}
	}
}

func TestBlindRotateSign(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ev := NewEvaluator(testEK)
	for _, b := range []bool{true, false} {
		c := testSK.EncryptBool(rng, b)
		big := ev.signBootstrapBig(c)
		if got := testSK.DecryptBoolBig(big); got != b {
			t.Fatalf("sign bootstrap of %v decrypted to %v", b, got)
		}
	}
}

func TestGateNAND(t *testing.T) { testGate(t, "NAND", func(a, b bool) bool { return !(a && b) }) }
func TestGateAND(t *testing.T)  { testGate(t, "AND", func(a, b bool) bool { return a && b }) }
func TestGateOR(t *testing.T)   { testGate(t, "OR", func(a, b bool) bool { return a || b }) }
func TestGateNOR(t *testing.T)  { testGate(t, "NOR", func(a, b bool) bool { return !(a || b) }) }
func TestGateXOR(t *testing.T)  { testGate(t, "XOR", func(a, b bool) bool { return a != b }) }
func TestGateXNOR(t *testing.T) { testGate(t, "XNOR", func(a, b bool) bool { return a == b }) }

func testGate(t *testing.T, name string, truth func(a, b bool) bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	ev := NewEvaluator(testEK)
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			ca := testSK.EncryptBool(rng, a)
			cb := testSK.EncryptBool(rng, b)
			var out LWECiphertext
			switch name {
			case "NAND":
				out = ev.NAND(ca, cb)
			case "AND":
				out = ev.AND(ca, cb)
			case "OR":
				out = ev.OR(ca, cb)
			case "NOR":
				out = ev.NOR(ca, cb)
			case "XOR":
				out = ev.XOR(ca, cb)
			case "XNOR":
				out = ev.XNOR(ca, cb)
			}
			if got := testSK.DecryptBool(out); got != truth(a, b) {
				t.Fatalf("%s(%v,%v) = %v", name, a, b, got)
			}
		}
	}
}

func TestGateNOT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ev := NewEvaluator(testEK)
	for _, a := range []bool{false, true} {
		c := testSK.EncryptBool(rng, a)
		if got := testSK.DecryptBool(ev.NOT(c)); got != !a {
			t.Fatalf("NOT(%v) = %v", a, got)
		}
	}
}

func TestGateMUX(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ev := NewEvaluator(testEK)
	for _, c := range []bool{false, true} {
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				cc := testSK.EncryptBool(rng, c)
				ca := testSK.EncryptBool(rng, a)
				cb := testSK.EncryptBool(rng, b)
				out := ev.MUX(cc, ca, cb)
				want := b
				if c {
					want = a
				}
				if got := testSK.DecryptBool(out); got != want {
					t.Fatalf("MUX(%v,%v,%v) = %v, want %v", c, a, b, got, want)
				}
			}
		}
	}
}

func TestGateComposition(t *testing.T) {
	// Chain gates: outputs of one bootstrap feed the next (the real usage
	// pattern whose noise behaviour the scheme must sustain).
	rng := rand.New(rand.NewSource(14))
	ev := NewEvaluator(testEK)
	a := testSK.EncryptBool(rng, true)
	b := testSK.EncryptBool(rng, false)
	// (a NAND b) = true; (true XOR a) = false; NOT → true
	x := ev.NAND(a, b)
	y := ev.XOR(x, a)
	z := ev.NOT(y)
	if !testSK.DecryptBool(z) {
		t.Fatal("gate chain produced wrong result")
	}
}

func TestEvalLUTIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ev := NewEvaluator(testEK)
	space := 4
	for m := 0; m < space; m++ {
		c := testSK.LWE.Encrypt(rng, EncodePBSMessage(m, space), ParamsTest.LWEStdDev)
		out := ev.EvalLUT(c, space, func(x int) int { return x })
		got := DecodePBSMessage(testSK.BigLWE.Phase(out), space)
		if got != m {
			t.Fatalf("identity LUT(%d) = %d", m, got)
		}
	}
}

func TestEvalLUTArbitraryFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ev := NewEvaluator(testEK)
	space := 8
	f := func(x int) int { return (x*x + 3) % space }
	for m := 0; m < space; m++ {
		c := testSK.LWE.Encrypt(rng, EncodePBSMessage(m, space), ParamsTest.LWEStdDev)
		out := ev.EvalLUTKS(c, space, f)
		got := DecodePBSMessage(testSK.LWE.Phase(out), space)
		if got != f(m) {
			t.Fatalf("LUT(%d) = %d, want %d", m, got, f(m))
		}
	}
}

func TestEvalLUTChained(t *testing.T) {
	// PBS output (after KS) must be bootstrappable again.
	rng := rand.New(rand.NewSource(17))
	ev := NewEvaluator(testEK)
	space := 4
	inc := func(x int) int { return (x + 1) % space }
	c := testSK.LWE.Encrypt(rng, EncodePBSMessage(1, space), ParamsTest.LWEStdDev)
	c = ev.EvalLUTKS(c, space, inc) // 2
	c = ev.EvalLUTKS(c, space, inc) // 3
	got := DecodePBSMessage(testSK.LWE.Phase(c), space)
	if got != 3 {
		t.Fatalf("chained LUT = %d, want 3", got)
	}
}

func TestCountersTrackPBS(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	ev := NewEvaluator(testEK)
	c := testSK.EncryptBool(rng, true)
	ev.NAND(c, c)
	if ev.Counters.PBSCount != 1 || ev.Counters.KSCount != 1 {
		t.Fatalf("counters: %+v", ev.Counters)
	}
	if ev.Counters.ForwardFFTs == 0 || ev.Counters.InverseFFTs == 0 {
		t.Fatal("FFT counters not incremented")
	}
	// FFT:IFFT ratio should be lb:1 (paper §III).
	ratio := float64(ev.Counters.ForwardFFTs) / float64(ev.Counters.InverseFFTs)
	if ratio != float64(ParamsTest.PBSLevel) {
		t.Fatalf("FFT:IFFT ratio = %v, want %d", ratio, ParamsTest.PBSLevel)
	}
}

func TestKeySizes(t *testing.T) {
	// §II-D: bootstrapping key 10s–100s MB, ciphertext KB level.
	ek := EvaluationKeys{Params: ParamsI}
	bskMB := float64(ek.BSKBytes()) / (1 << 20)
	if bskMB < 10 || bskMB > 500 {
		t.Errorf("set I bsk = %.1f MB, expected 10s-100s MB", bskMB)
	}
	kskMB := float64(ek.KSKBytes()) / (1 << 20)
	if kskMB <= 0 {
		t.Errorf("ksk size must be positive, got %v MB", kskMB)
	}
}

func BenchmarkGateBootstrapTestParams(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	ev := NewEvaluator(testEK)
	c := testSK.EncryptBool(rng, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.NAND(c, c)
	}
}
