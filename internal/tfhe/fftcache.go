package tfhe

import (
	"sync"

	"repro/internal/fft"
)

// Shared, lazily-built FFT processors keyed by polynomial size. Key
// generation uses them to compute a·s products exactly (binary keys keep
// magnitudes ≤ N·2^31, well inside double precision), which makes set-I
// key generation ~30× faster than schoolbook multiplication.
var (
	procMu    sync.Mutex
	procCache = map[int]*fft.Processor{}
)

func sharedProcessor(n int) *fft.Processor {
	procMu.Lock()
	defer procMu.Unlock()
	p, ok := procCache[n]
	if !ok {
		p = fft.NewProcessor(n)
		procCache[n] = p
	}
	return p
}
