package tfhe

import (
	"fmt"

	"repro/internal/torus"
)

// Stage-split programmable bootstrapping. The Strix pipeline (§IV-C) does
// not execute a PBS as one monolithic call: ciphertexts stream through
// specialized stages — modulus switch, blind rotation (decompose → FFT →
// Fourier MAC → IFFT per CMux), sample extraction, keyswitch — and each
// stage's setup is amortized across the whole batch. The methods in this
// file expose exactly those stage boundaries so the streaming engine can
// place each one in its own pipeline stage, while the sequential
// Evaluator.Bootstrap composes the same methods back-to-back. Both paths
// run the identical computation in the identical order, which is what
// keeps streamed results bitwise-equal to sequential ones.

// ModSwitched carries an LWE ciphertext across the modulus-switch stage
// boundary: the body and mask coefficients rescaled to Z_{2N} rotation
// amounts (Algorithm 1 lines 2–3). It is plain integer data, so it can be
// handed between pipeline stages without sharing evaluator scratch.
type ModSwitched struct {
	B int   // body rotation amount in [0, 2N)
	A []int // mask rotation amounts, length n
}

// ModSwitchLWE runs the modulus-switch stage on one ciphertext: every
// coefficient is rescaled from the torus to Z_{2N} (Algorithm 1 lines 2–3).
// The result owns fresh storage, so it can be handed to another pipeline
// stage; the sequential path uses evaluator scratch instead.
func (e *Evaluator) ModSwitchLWE(c LWECiphertext) ModSwitched {
	return e.modSwitchInto(c, make([]int, e.Params.SmallN))
}

// modSwitchInto rescales c into the rotation-amount buffer a.
func (e *Evaluator) modSwitchInto(c LWECiphertext, a []int) ModSwitched {
	p := e.Params
	if c.N() != p.SmallN {
		panic(fmt.Sprintf("tfhe: ModSwitchLWE expects LWE dimension n=%d, got %d", p.SmallN, c.N()))
	}
	twoN := 2 * p.N
	ms := ModSwitched{B: torus.ModSwitch(c.B, twoN), A: a}
	for i, ai := range c.A {
		ms.A[i] = torus.ModSwitch(ai, twoN)
	}
	e.Counters.ModSwitches += int64(c.N() + 1)
	return ms
}

// BlindRotateInit starts the blind-rotation stage: a fresh accumulator
// holding the test vector rotated by -b̄ (Algorithm 1 line 4). testVec is
// read-only and may be shared across a whole stream.
func (e *Evaluator) BlindRotateInit(testVec GLWECiphertext, ms ModSwitched) GLWECiphertext {
	acc := NewGLWECiphertext(e.Params.K, e.Params.N)
	testVec.RotateTo(acc, -ms.B)
	e.Counters.Rotations++
	return acc
}

// CMuxAt performs blind-rotation iteration i (Algorithm 1 lines 6–12) on
// the accumulator: acc ← CMux(BSK[i], acc·X^aBar, acc). A zero rotation is
// the identity and is skipped without touching the accumulator.
func (e *Evaluator) CMuxAt(acc GLWECiphertext, i, aBar int) {
	if aBar == 0 {
		return
	}
	e.ensureRotateScratch()
	CMuxRotateAcc(acc, aBar, e.Keys.BSK[i], e.gadget, e.proc, e.epBuf, e.diff, e.rot, &e.Counters)
}

// BlindRotateSteps runs all n CMux iterations of the blind-rotation stage
// (Algorithm 1 lines 5–12) on an accumulator produced by BlindRotateInit.
func (e *Evaluator) BlindRotateSteps(acc GLWECiphertext, ms ModSwitched) {
	for i, aBar := range ms.A {
		e.CMuxAt(acc, i, aBar)
	}
}

// Extract runs the sample-extraction stage (Algorithm 1 line 13), closing
// out one PBS: the accumulator's constant coefficient becomes an LWE
// ciphertext of dimension k·N.
func (e *Evaluator) Extract(acc GLWECiphertext) LWECiphertext {
	out := SampleExtract(acc)
	e.Counters.SampleExtracts++
	e.Counters.PBSCount++
	return out
}

// ExtractMulti runs the multi-value sample-extraction stage: one rotated
// accumulator yields one LWE ciphertext per offset (MultiLUTOffsets). It
// closes out a single PBS — the rotation was paid once — while fanning
// out len(offsets) outputs; the streaming engine places it where the
// plain Extract stage sits.
func (e *Evaluator) ExtractMulti(acc GLWECiphertext, offsets []int) []LWECiphertext {
	outs := make([]LWECiphertext, len(offsets))
	for i, t := range offsets {
		outs[i] = SampleExtractAt(acc, t)
	}
	e.Counters.SampleExtracts += int64(len(offsets))
	e.Counters.PBSCount++
	e.Counters.MultiValuePBS++
	e.Counters.MultiValueOuts += int64(len(offsets))
	return outs
}
