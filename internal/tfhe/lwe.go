package tfhe

import (
	"math/rand"

	"repro/internal/torus"
)

// LWECiphertext is the (n+1)-element vector [a_1..a_n, b] of §II-D, the
// primary message-carrying ciphertext of TFHE.
type LWECiphertext struct {
	A []torus.Torus32 // mask, length n
	B torus.Torus32   // body
}

// NewLWECiphertext returns a zero ciphertext of mask length n (a valid
// encryption of 0 under any key, with zero noise).
func NewLWECiphertext(n int) LWECiphertext {
	return LWECiphertext{A: make([]torus.Torus32, n)}
}

// N returns the mask length.
func (c LWECiphertext) N() int { return len(c.A) }

// Copy returns a deep copy.
func (c LWECiphertext) Copy() LWECiphertext {
	out := LWECiphertext{A: make([]torus.Torus32, len(c.A)), B: c.B}
	copy(out.A, c.A)
	return out
}

// EqualLWE reports whether two ciphertexts are bitwise identical — the
// relation the engines', scheduler's, and gate service's determinism
// contracts are stated in (server-side TFHE is deterministic, so every
// execution backend must reproduce the sequential evaluator exactly).
func EqualLWE(a, b LWECiphertext) bool {
	if a.N() != b.N() || a.B != b.B {
		return false
	}
	for i := range a.A {
		if a.A[i] != b.A[i] {
			return false
		}
	}
	return true
}

// AddTo sets c += d (homomorphic addition).
func (c *LWECiphertext) AddTo(d LWECiphertext) {
	for i := range c.A {
		c.A[i] += d.A[i]
	}
	c.B += d.B
}

// SubTo sets c -= d.
func (c *LWECiphertext) SubTo(d LWECiphertext) {
	for i := range c.A {
		c.A[i] -= d.A[i]
	}
	c.B -= d.B
}

// AddPlain adds a plaintext torus constant to the encrypted message.
func (c *LWECiphertext) AddPlain(mu torus.Torus32) { c.B += mu }

// Negate sets c = -c (negating the encrypted message).
func (c *LWECiphertext) Negate() {
	for i := range c.A {
		c.A[i] = -c.A[i]
	}
	c.B = -c.B
}

// MulScalar multiplies the ciphertext (and hence the message) by a small
// signed integer.
func (c *LWECiphertext) MulScalar(s int32) {
	for i := range c.A {
		c.A[i] = torus.Torus32(int32(c.A[i]) * s)
	}
	c.B = torus.Torus32(int32(c.B) * s)
}

// LWEKey is a binary LWE secret key.
type LWEKey struct {
	Bits []int32 // each 0 or 1, length n
}

// NewLWEKey samples a uniform binary key of length n.
func NewLWEKey(rng *rand.Rand, n int) LWEKey {
	k := LWEKey{Bits: make([]int32, n)}
	for i := range k.Bits {
		k.Bits[i] = int32(rng.Intn(2))
	}
	return k
}

// N returns the key length.
func (k LWEKey) N() int { return len(k.Bits) }

// Encrypt encrypts the torus message mu with gaussian noise stddev sigma.
func (k LWEKey) Encrypt(rng *rand.Rand, mu torus.Torus32, sigma float64) LWECiphertext {
	c := NewLWECiphertext(k.N())
	var dot torus.Torus32
	for i := range c.A {
		c.A[i] = torus.Uniform32(rng)
		if k.Bits[i] == 1 {
			dot += c.A[i]
		}
	}
	c.B = dot + torus.Gaussian32(rng, mu, sigma)
	return c
}

// Phase returns b - <a,s>, the noisy message.
func (k LWEKey) Phase(c LWECiphertext) torus.Torus32 {
	var dot torus.Torus32
	for i, a := range c.A {
		if k.Bits[i] == 1 {
			dot += a
		}
	}
	return c.B - dot
}

// DecryptMessage decrypts to the nearest message in {0..space-1}, assuming
// the message was encoded with torus.EncodeMessage.
func (k LWEKey) DecryptMessage(c LWECiphertext, space int) int {
	return torus.DecodeMessage(k.Phase(c), space)
}
