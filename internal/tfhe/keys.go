package tfhe

import (
	"math/rand"

	"repro/internal/fft"
	"repro/internal/poly"
	"repro/internal/torus"
)

// SecretKeys bundles the client-side secrets: the small LWE key (dimension
// n) under which messages are encrypted, and the GLWE key used during
// bootstrapping (whose extracted LWE key has dimension k·N).
type SecretKeys struct {
	Params Params
	LWE    LWEKey  // dimension n
	GLWE   GLWEKey // k polynomials of degree N-1
	BigLWE LWEKey  // extracted key, dimension k·N
}

// EvaluationKeys bundles the public material the server (or accelerator)
// needs: the bootstrapping key (n Fourier-domain GGSW ciphertexts) and the
// keyswitching key (k·N·lk LWE ciphertexts), exactly the "parameters" of
// §II-D.
type EvaluationKeys struct {
	Params Params
	BSK    []GGSWFourier     // length n; BSK[i] encrypts LWE key bit s_i
	KSK    [][]LWECiphertext // [kN][lk]; KSK[j][l] encrypts s'_j·Q/base^(l+1)
}

// GenerateKeys samples a full key set for params using the deterministic
// source rng.
func GenerateKeys(rng *rand.Rand, params Params) (SecretKeys, EvaluationKeys) {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	sk := SecretKeys{Params: params}
	sk.LWE = NewLWEKey(rng, params.SmallN)
	sk.GLWE = NewGLWEKey(rng, params.K, params.N)
	sk.BigLWE = sk.GLWE.ExtractLWEKey()

	proc := fft.SharedProcessor(params.N)
	gadget := poly.NewDecomposer(params.PBSBaseLog, params.PBSLevel)

	ek := EvaluationKeys{Params: params}
	ek.BSK = make([]GGSWFourier, params.SmallN)
	for i := 0; i < params.SmallN; i++ {
		ek.BSK[i] = EncryptGGSW(rng, sk.GLWE, sk.LWE.Bits[i], gadget, params.GLWEStdDev, proc)
	}

	ksGadget := poly.NewDecomposer(params.KSBaseLog, params.KSLevel)
	big := params.ExtractedN()
	ek.KSK = make([][]LWECiphertext, big)
	for j := 0; j < big; j++ {
		ek.KSK[j] = make([]LWECiphertext, params.KSLevel)
		for l := 0; l < params.KSLevel; l++ {
			shift := uint(32 - ksGadget.BaseLog*(l+1))
			mu := torus.Torus32(sk.BigLWE.Bits[j]) << shift
			ek.KSK[j][l] = sk.LWE.Encrypt(rng, mu, params.LWEStdDev)
		}
	}
	return sk, ek
}

// BSKBytes returns the size in bytes of the Fourier-domain bootstrapping
// key as streamed to the accelerator (N/2 complex values of 16 bytes per
// polynomial). Used by the memory-traffic models.
func (ek EvaluationKeys) BSKBytes() int64 {
	p := ek.Params
	polys := int64(p.SmallN) * int64(p.K+1) * int64(p.PBSLevel) * int64(p.K+1)
	return polys * int64(p.N/2) * 16
}

// KSKBytes returns the size in bytes of the keyswitching key (32-bit
// entries).
func (ek EvaluationKeys) KSKBytes() int64 {
	p := ek.Params
	return int64(p.ExtractedN()) * int64(p.KSLevel) * int64(p.SmallN+1) * 4
}
