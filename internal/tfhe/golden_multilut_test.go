// The golden multi-value packing vectors live in an external test package
// so they can digest the packed test vectors through the wire codec
// (package wire imports tfhe; an in-package test would be an import
// cycle).
package tfhe_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tfhe"
	"repro/internal/wire"
)

// update regenerates testdata/golden_multilut.json from the current
// implementation:
//
//	go test ./internal/tfhe -run TestGoldenMultiLUT -update
//
// Only do this after convincing yourself a packing-layout change is
// intentional; the whole point of the fixture is that these digests do
// NOT move.
var update = flag.Bool("update", false, "rewrite the multi-value golden fixture")

// multiLUTVector is one known-answer tuple for the packed test-vector
// layout. Everything here is keyless and deterministic — the test vector
// is a trivial GLWE built from parameters and tables alone — so layout
// regressions are caught without any key generation. The digest is
// SHA-256 over the canonical wire encoding of the packed GLWE; the shift
// is the raw torus constant ShiftForMultiLUT adds; the offsets are the
// sample-extraction coefficients.
type multiLUTVector struct {
	Set     string  `json:"set"`
	Space   int     `json:"space"`
	Tables  [][]int `json:"tables"`
	Shift   uint32  `json:"shift"`
	Offsets []int   `json:"offsets"`
	Digest  string  `json:"digest"`
}

// multiLUTGoldenFile is the fixture layout.
type multiLUTGoldenFile struct {
	Comment string           `json:"comment"`
	Vectors []multiLUTVector `json:"vectors"`
}

// goldenMultiLUTSeeds are the (set, space, tables) tuples the fixture
// pins: the k=1 degeneration, a k=4 pack on the test set, a pack where
// space·k does not divide N, and a full-scale set-I pack.
var goldenMultiLUTSeeds = []multiLUTVector{
	{Set: "test", Space: 4, Tables: [][]int{{1, 2, 3, 0}}},
	{Set: "test", Space: 4, Tables: [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {0, 0, 1, 1}, {2, 3, 0, 1}}},
	{Set: "test", Space: 8, Tables: [][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {7, 0, 1, 2, 3, 4, 5, 6}, {1, 3, 5, 7, 1, 3, 5, 7}}},
	{Set: "I", Space: 4, Tables: [][]int{{2, 0, 3, 1}, {1, 1, 2, 2}}},
}

// computeMultiLUTGolden fills in one vector's shift, offsets, and packed
// test-vector digest. No keys are generated: the evaluator is built over
// bare parameters, which is all test-vector packing needs.
func computeMultiLUTGolden(t *testing.T, v multiLUTVector) multiLUTVector {
	t.Helper()
	p, err := tfhe.ParamsByName(v.Set)
	if err != nil {
		t.Fatalf("set %s: %v", v.Set, err)
	}
	k := len(v.Tables)
	if err := p.ValidateMultiLUT(v.Space, k); err != nil {
		t.Fatalf("set %s space %d k %d: %v", v.Set, v.Space, k, err)
	}
	ev := tfhe.NewEvaluator(tfhe.EvaluationKeys{Params: p})
	tv := ev.NewMultiLUTTestVector(v.Space, tfhe.TableFuncs(v.Tables))
	blob, err := wire.MarshalGLWE(tv)
	if err != nil {
		t.Fatalf("set %s: marshal packed test vector: %v", v.Set, err)
	}
	sum := sha256.Sum256(blob)
	v.Digest = hex.EncodeToString(sum[:])
	v.Offsets = p.MultiLUTOffsets(v.Space, k)

	zero := tfhe.NewLWECiphertext(p.SmallN)
	shifted := ev.ShiftForMultiLUT(zero, v.Space, k)
	v.Shift = uint32(shifted.B)
	return v
}

// TestGoldenMultiLUT locks the multi-value packing layout against silent
// regressions: for each pinned (set, space, tables) tuple, the packed
// test vector's wire digest, the half-subslot shift constant, and the
// extraction offsets must reproduce bit-for-bit — all without keys. A
// mismatch means the packing or encoding changed behaviour; run with
// -update only if that was the point.
func TestGoldenMultiLUT(t *testing.T) {
	path := filepath.Join("testdata", "golden_multilut.json")

	if *update {
		out := multiLUTGoldenFile{
			Comment: "Keyless known-answer vectors for multi-value LUT packing. Regenerate with: go test ./internal/tfhe -run TestGoldenMultiLUT -update",
		}
		for _, seed := range goldenMultiLUTSeeds {
			out.Vectors = append(out.Vectors, computeMultiLUTGolden(t, seed))
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d vectors", path, len(out.Vectors))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (generate with -update): %v", err)
	}
	var fixture multiLUTGoldenFile
	if err := json.Unmarshal(data, &fixture); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	if len(fixture.Vectors) == 0 {
		t.Fatal("golden fixture has no vectors")
	}
	for _, want := range fixture.Vectors {
		got := computeMultiLUTGolden(t, want)
		if got.Digest != want.Digest {
			t.Errorf("set %s space %d k %d: packed test-vector digest drifted:\n  got  %s\n  want %s",
				want.Set, want.Space, len(want.Tables), got.Digest, want.Digest)
		}
		if got.Shift != want.Shift {
			t.Errorf("set %s space %d k %d: shift constant drifted: got %d, want %d",
				want.Set, want.Space, len(want.Tables), got.Shift, want.Shift)
		}
		if len(got.Offsets) != len(want.Offsets) {
			t.Errorf("set %s space %d k %d: offsets drifted: got %v, want %v",
				want.Set, want.Space, len(want.Tables), got.Offsets, want.Offsets)
			continue
		}
		for i := range want.Offsets {
			if got.Offsets[i] != want.Offsets[i] {
				t.Errorf("set %s space %d k %d: offsets drifted: got %v, want %v",
					want.Set, want.Space, len(want.Tables), got.Offsets, want.Offsets)
				break
			}
		}
	}
}
