package tfhe

import (
	"math/rand"
	"testing"
)

// sameLWE compares two LWE ciphertexts bitwise.
func sameLWE(a, b LWECiphertext) bool { return EqualLWE(a, b) }

func TestValidateMultiLUT(t *testing.T) {
	p := ParamsTest // N = 256
	cases := []struct {
		space, k int
		ok       bool
	}{
		{4, 1, true},
		{4, 4, true},
		{4, 64, true},  // space·k = N exactly
		{4, 65, false}, // space·k > N
		{2, 128, true},
		{1, 4, false}, // space too small
		{4, 0, false}, // no tables
		{256, 2, false},
	}
	for _, tc := range cases {
		err := p.ValidateMultiLUT(tc.space, tc.k)
		if (err == nil) != tc.ok {
			t.Errorf("ValidateMultiLUT(space=%d, k=%d) = %v, want ok=%v", tc.space, tc.k, err, tc.ok)
		}
	}
}

func TestMultiLUTOffsets(t *testing.T) {
	p := ParamsTest // N = 256
	got := p.MultiLUTOffsets(4, 4)
	want := []int{0, 16, 32, 48} // subslot width N/(space·k) = 16
	if len(got) != len(want) {
		t.Fatalf("offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", got, want)
		}
	}
}

// TestSampleExtractAt verifies the offset extraction against decryption:
// coefficient t of the message polynomial must decrypt out of the
// extracted LWE ciphertext under the extracted key, for every offset.
func TestSampleExtractAt(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	space := 8
	ev := NewEvaluator(testEK)
	f := func(m int) int { return (3 * m) % space }
	tv := ev.LUTTestVector(space, f) // trivial GLWE: mask 0, body = table
	// Add encryption noise so the mask actually participates.
	enc := testSK.GLWE.EncryptZero(rng, ParamsTest.GLWEStdDev)
	enc.AddTo(tv)
	for _, off := range []int{0, 1, 17, ParamsTest.N / 2, ParamsTest.N - 1} {
		out := SampleExtractAt(enc, off)
		wantMsg := f(off * space / ParamsTest.N % space)
		if got := DecodePBSMessage(testSK.BigLWE.Phase(out), space); got != wantMsg {
			t.Fatalf("extract at %d decrypts to %d, want %d", off, got, wantMsg)
		}
	}
}

// TestSampleExtractAtZeroMatchesSampleExtract pins the t=0 special case
// to the classic extraction bitwise.
func TestSampleExtractAtZeroMatchesSampleExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	enc := testSK.GLWE.EncryptZero(rng, ParamsTest.GLWEStdDev)
	if !sameLWE(SampleExtract(enc), SampleExtractAt(enc, 0)) {
		t.Fatal("SampleExtractAt(c, 0) differs from SampleExtract(c)")
	}
}

// TestMultiLUTPackingLayout checks the packed test vector coefficient by
// coefficient against the documented subslot layout.
func TestMultiLUTPackingLayout(t *testing.T) {
	ev := NewEvaluator(testEK)
	space, k := 4, 2
	fs := []func(int) int{
		func(m int) int { return m },
		func(m int) int { return (m + 1) % space },
	}
	tv := ev.NewMultiLUTTestVector(space, fs)
	body := tv.Body()
	n := ParamsTest.N
	for j := 0; j < n; j++ {
		fine := j * space * k / n
		want := EncodePBSMessage(fs[fine%k](fine/k), space)
		if body.Coeffs[j] != want {
			t.Fatalf("packed coeff %d = %d, want %d (window %d subslot %d)", j, body.Coeffs[j], want, fine/k, fine%k)
		}
	}
	for i := 0; i < tv.K(); i++ {
		for j := 0; j < n; j++ {
			if tv.Polys[i].Coeffs[j] != 0 {
				t.Fatal("packed test vector mask must be trivial (zero)")
			}
		}
	}
}

// TestEvalMultiLUTSingleTableBitwiseEqualsEvalLUT is the k=1 degeneration
// contract: with one table the packed path IS the standard EvalLUT path,
// bit for bit (same shift, same test vector, same rotation, same
// extraction offset).
func TestEvalMultiLUTSingleTableBitwiseEqualsEvalLUT(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	space := 8
	f := func(m int) int { return (m*m + 1) % space }
	for m := 0; m < space; m++ {
		c := testSK.LWE.Encrypt(rng, EncodePBSMessage(m, space), ParamsTest.LWEStdDev)
		evA := NewEvaluator(testEK)
		evB := NewEvaluator(testEK)
		single := evA.EvalLUT(c, space, f)
		multi := evB.EvalMultiLUT(c, space, []func(int) int{f})
		if len(multi) != 1 || !sameLWE(single, multi[0]) {
			t.Fatalf("m=%d: EvalMultiLUT k=1 not bitwise equal to EvalLUT", m)
		}
	}
}

// TestEvalMultiLUTDecodesLikeIndependentLUTs is the semantic contract of
// multi-value PBS: for every message in the space and every packed output
// index, the multi-value result decodes to exactly what an independent
// EvalLUT of that table decodes to (and to the plaintext table value).
func TestEvalMultiLUTDecodesLikeIndependentLUTs(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ev := NewEvaluator(testEK)
	ref := NewEvaluator(testEK)
	for _, tc := range []struct {
		space int
		k     int
	}{
		{4, 2}, {4, 4}, {8, 2}, {8, 4}, {2, 3},
	} {
		fs := make([]func(int) int, tc.k)
		for i := range fs {
			i := i
			fs[i] = func(m int) int { return (m*m + i) % tc.space }
		}
		for m := 0; m < tc.space; m++ {
			c := testSK.LWE.Encrypt(rng, EncodePBSMessage(m, tc.space), ParamsTest.LWEStdDev)
			outs := ev.EvalMultiLUTKS(c, tc.space, fs)
			if len(outs) != tc.k {
				t.Fatalf("space=%d k=%d: got %d outputs", tc.space, tc.k, len(outs))
			}
			for i, out := range outs {
				got := DecodePBSMessage(testSK.LWE.Phase(out), tc.space)
				indep := ref.EvalLUTKS(c, tc.space, fs[i])
				want := DecodePBSMessage(testSK.LWE.Phase(indep), tc.space)
				if want != fs[i](m) {
					t.Fatalf("space=%d k=%d m=%d: independent EvalLUT decodes to %d, want %d", tc.space, tc.k, m, want, fs[i](m))
				}
				if got != want {
					t.Fatalf("space=%d k=%d m=%d output %d: multi-value decodes to %d, independent EvalLUT to %d", tc.space, tc.k, m, i, got, want)
				}
			}
		}
	}
}

// TestEvalMultiLUTChained checks that keyswitched multi-value outputs are
// bootstrappable again — the fan-out feeds the next circuit level.
func TestEvalMultiLUTChained(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ev := NewEvaluator(testEK)
	space := 4
	fs := []func(int) int{
		func(m int) int { return (m + 1) % space },
		func(m int) int { return (3 * m) % space },
	}
	c := testSK.LWE.Encrypt(rng, EncodePBSMessage(2, space), ParamsTest.LWEStdDev)
	outs := ev.EvalMultiLUTKS(c, space, fs)
	next := ev.EvalLUTKS(outs[1], space, func(m int) int { return (m + 1) % space })
	// (3·2 mod 4) + 1 = 3
	if got := DecodePBSMessage(testSK.LWE.Phase(next), space); got != 3 {
		t.Fatalf("chained multi-value output decodes to %d, want 3", got)
	}
}

// TestMultiValueCounters pins the rotation accounting: a k-output
// multi-value bootstrap costs one PBS (one rotation) and records the
// fan-out.
func TestMultiValueCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	ev := NewEvaluator(testEK)
	space, k := 4, 4
	fs := make([]func(int) int, k)
	for i := range fs {
		i := i
		fs[i] = func(m int) int { return (m + i) % space }
	}
	c := testSK.LWE.Encrypt(rng, EncodePBSMessage(1, space), ParamsTest.LWEStdDev)
	ev.EvalMultiLUTKS(c, space, fs)
	cnt := ev.Counters
	if cnt.PBSCount != 1 || cnt.MultiValuePBS != 1 || cnt.MultiValueOuts != int64(k) {
		t.Fatalf("counters after one k=%d multi-value PBS: %+v", k, cnt)
	}
	if cnt.SampleExtracts != int64(k) || cnt.KSCount != int64(k) {
		t.Fatalf("want %d extracts and keyswitches, got %+v", k, cnt)
	}
}

func TestNewMultiLUTTestVectorRejectsOverpacking(t *testing.T) {
	ev := NewEvaluator(testEK)
	fs := make([]func(int) int, ParamsTest.N) // space·k = 2N > N
	for i := range fs {
		fs[i] = func(m int) int { return m }
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for space·k > N")
		}
	}()
	ev.NewMultiLUTTestVector(2, fs)
}
