package tfhe

import (
	"math/rand"
	"testing"
)

// Full-scale integration test on parameter set I (the paper's 110-bit
// baseline): key generation plus real gate bootstraps at n=500, N=1024.
// Takes a few seconds; skipped with -short.
func TestFullScaleSetIGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale set I test skipped in short mode")
	}
	rng := rand.New(rand.NewSource(1203))
	sk, ek := GenerateKeys(rng, ParamsI)
	ev := NewEvaluator(ek)

	cases := []struct{ a, b bool }{{true, true}, {true, false}, {false, true}, {false, false}}
	for _, c := range cases {
		ca := sk.EncryptBool(rng, c.a)
		cb := sk.EncryptBool(rng, c.b)
		if got := sk.DecryptBool(ev.NAND(ca, cb)); got != !(c.a && c.b) {
			t.Fatalf("set I NAND(%v,%v) = %v", c.a, c.b, got)
		}
	}

	// A programmable LUT at full scale.
	space := 8
	f := func(x int) int { return (x*3 + 1) % space }
	for _, m := range []int{0, 3, 7} {
		ct := sk.LWE.Encrypt(rng, EncodePBSMessage(m, space), ParamsI.LWEStdDev)
		out := ev.EvalLUTKS(ct, space, f)
		if got := DecodePBSMessage(sk.LWE.Phase(out), space); got != f(m) {
			t.Fatalf("set I LUT(%d) = %d, want %d", m, got, f(m))
		}
	}
}
