package tfhe

import "fmt"

// Codec hooks: structural validation used by the wire codec
// (internal/wire) and the gate service (internal/server) when key material
// crosses a trust boundary. Inside one process the shapes are correct by
// construction; after decoding bytes from a client they must be re-checked
// before an Evaluator ever indexes into them.

// Validate checks that every component of the key set has exactly the
// shape the parameter set dictates: SmallN GGSW ciphertexts of
// (k+1)·lb·(k+1) Fourier polynomials of N/2 coefficients in the BSK, and
// k·N × lk LWE ciphertexts of dimension n in the KSK. A decoded key that
// passes Validate can be used by an Evaluator without any further bounds
// concern.
func (ek EvaluationKeys) Validate() error {
	p := ek.Params
	if err := p.Validate(); err != nil {
		return err
	}
	m := p.N / 2
	if len(ek.BSK) != p.SmallN {
		return fmt.Errorf("tfhe: BSK has %d entries, want n=%d", len(ek.BSK), p.SmallN)
	}
	for i, g := range ek.BSK {
		if len(g.Rows) != p.K+1 {
			return fmt.Errorf("tfhe: BSK[%d] has %d row groups, want k+1=%d", i, len(g.Rows), p.K+1)
		}
		for j, rows := range g.Rows {
			if len(rows) != p.PBSLevel {
				return fmt.Errorf("tfhe: BSK[%d].Rows[%d] has %d levels, want lb=%d", i, j, len(rows), p.PBSLevel)
			}
			for l, row := range rows {
				if len(row) != p.K+1 {
					return fmt.Errorf("tfhe: BSK[%d].Rows[%d][%d] has %d polys, want k+1=%d", i, j, l, len(row), p.K+1)
				}
				for c, fp := range row {
					if len(fp) != m {
						return fmt.Errorf("tfhe: BSK[%d].Rows[%d][%d][%d] has %d Fourier coeffs, want N/2=%d", i, j, l, c, len(fp), m)
					}
				}
			}
		}
	}
	big := p.ExtractedN()
	if len(ek.KSK) != big {
		return fmt.Errorf("tfhe: KSK has %d entries, want kN=%d", len(ek.KSK), big)
	}
	for j, levels := range ek.KSK {
		if len(levels) != p.KSLevel {
			return fmt.Errorf("tfhe: KSK[%d] has %d levels, want lk=%d", j, len(levels), p.KSLevel)
		}
		for l, ct := range levels {
			if ct.N() != p.SmallN {
				return fmt.Errorf("tfhe: KSK[%d][%d] has LWE dimension %d, want n=%d", j, l, ct.N(), p.SmallN)
			}
		}
	}
	return nil
}
