package tfhe

import (
	"math/rand"

	"repro/internal/fft"
	"repro/internal/poly"
	"repro/internal/torus"
)

// GGSWFourier is one entry of the bootstrapping key: a GGSW ciphertext
// (a (k+1)·lb × (k+1) matrix of polynomials, §II-D) stored in the folded
// Fourier domain, as the Concrete library and Strix both do — the key is
// transformed once at key-generation time and streamed to the VMA units.
//
// Rows[j][l] is the GLWE row encrypting s·g_l·E_j (gadget level l on
// component j); each row holds k+1 Fourier polynomials.
type GGSWFourier struct {
	Rows [][][]fft.FourierPoly // [k+1][lb][k+1]
}

// EncryptGGSW encrypts the bit s under the GLWE key as a Fourier-domain
// GGSW ciphertext with the given gadget.
func EncryptGGSW(rng *rand.Rand, key GLWEKey, s int32, gadget poly.Decomposer, sigma float64, proc *fft.Processor) GGSWFourier {
	k := key.K()
	g := GGSWFourier{Rows: make([][][]fft.FourierPoly, k+1)}
	for j := 0; j <= k; j++ {
		g.Rows[j] = make([][]fft.FourierPoly, gadget.Level)
		for l := 0; l < gadget.Level; l++ {
			row := key.EncryptZero(rng, sigma)
			if s != 0 {
				// Add the constant polynomial s·Q/B^(l+1) to GLWE
				// component j: row (j,l) encrypts s·g_l·E_j.
				shift := uint(32 - gadget.BaseLog*(l+1))
				row.Polys[j].Coeffs[0] += torus.Torus32(s) << shift
			}
			// One batched burst per GLWE row, the same shape in which
			// the key is later streamed to the VMA units.
			fr := proc.NewFourierPolyBatch(k + 1)
			proc.ForwardTorusBatchTo(fr, row.Polys)
			g.Rows[j][l] = fr
		}
	}
	return g
}

// externalProductBuffers holds scratch storage for ExternalProductAcc so the
// hot path is allocation free. The Fourier burst covers a whole CMux step —
// all (k+1)·lb digit transforms — and is reused across every CMux of a
// blind rotation; there is no time-domain digit staging because the fused
// decompose+transform streams digits straight into the Fourier buffers,
// exactly as the hardware Decomposer Unit feeds the FFT array (§V-B).
type externalProductBuffers struct {
	fdig []fft.FourierPoly // [(k+1)·lb] digit transforms, component-major
	acc  []fft.FourierPoly // [k+1] Fourier accumulators
}

func newExternalProductBuffers(k, n, level int, proc *fft.Processor) *externalProductBuffers {
	if proc.N() != n {
		panic("tfhe: externalProductBuffers processor size mismatch")
	}
	b := &externalProductBuffers{
		fdig: proc.NewFourierPolyBatch((k + 1) * level),
		acc:  make([]fft.FourierPoly, k+1),
	}
	for c := range b.acc {
		b.acc[c] = proc.NewFourierPoly()
	}
	return b
}

// ExternalProductAcc computes out += GGSW ⊡ d (the external product of
// Algorithm 1 lines 7–10) in two batched phases: every component of d goes
// through the fused decompose+forward-transform (digit extraction feeding
// the FFT load directly, no intermediate digit polynomials), and the
// Fourier MAC loop then accumulates against the GGSW rows before the
// batched inverse transform with rounding. The fused path is bitwise
// identical to decomposing and transforming one digit polynomial at a
// time. counters, if non-nil, records the operation mix for the Fig 1
// experiment.
func ExternalProductAcc(out, d GLWECiphertext, g GGSWFourier, gadget poly.Decomposer, proc *fft.Processor, buf *externalProductBuffers, counters *OpCounters) {
	k := d.K()
	lb := gadget.Level
	// Phase 1: fused decompose + forward transform, component-major.
	for j := 0; j <= k; j++ {
		proc.ForwardDecompose(buf.fdig[j*lb:(j+1)*lb], gadget, d.Polys[j])
		if counters != nil {
			counters.Decompositions++
			counters.ForwardFFTs += int64(lb)
		}
	}
	// Phase 2: Fourier MAC against the GGSW rows, then batched inverse.
	for c := 0; c <= k; c++ {
		fft.Clear(buf.acc[c])
	}
	for j := 0; j <= k; j++ {
		for l := 0; l < lb; l++ {
			fdig := buf.fdig[j*lb+l]
			for c := 0; c <= k; c++ {
				fft.MulAcc(buf.acc[c], fdig, g.Rows[j][l][c])
				if counters != nil {
					counters.VMAMuls += int64(proc.M())
				}
			}
		}
	}
	proc.InverseBatchTo(out.Polys, buf.acc)
	if counters != nil {
		counters.InverseFFTs += int64(k + 1)
		counters.Accumulations += int64((k + 1) * proc.N())
	}
}

// CMuxRotateAcc performs one blind-rotation iteration (Algorithm 1 lines
// 6–12): tv ← tv + GGSW(s_i) ⊡ (tv·X^e − tv), which equals tv·X^e when
// s_i = 1 and tv when s_i = 0. diff and rot are caller scratch.
func CMuxRotateAcc(tv GLWECiphertext, e int, g GGSWFourier, gadget poly.Decomposer, proc *fft.Processor, buf *externalProductBuffers, diff, rot GLWECiphertext, counters *OpCounters) {
	tv.RotateTo(rot, e)
	if counters != nil {
		counters.Rotations++
	}
	// diff = tv·X^e − tv
	for i := range diff.Polys {
		copy(diff.Polys[i].Coeffs, rot.Polys[i].Coeffs)
		poly.SubTo(diff.Polys[i], tv.Polys[i])
	}
	ExternalProductAcc(tv, diff, g, gadget, proc, buf, counters)
}
