package tfhe

import (
	"fmt"
	"math/rand"

	"repro/internal/fft"

	"repro/internal/poly"
	"repro/internal/torus"
)

// GLWECiphertext is the vector of (k+1) polynomials [A_1..A_k, B] of §II-D.
// In PBS it carries the test vector being blind-rotated.
type GLWECiphertext struct {
	Polys []poly.Poly // length k+1; Polys[k] is the body B
}

// NewGLWECiphertext returns a zero GLWE ciphertext (a valid zero-noise
// encryption of the zero polynomial under any key).
func NewGLWECiphertext(k, n int) GLWECiphertext {
	ps := make([]poly.Poly, k+1)
	for i := range ps {
		ps[i] = poly.New(n)
	}
	return GLWECiphertext{Polys: ps}
}

// K returns the mask length k.
func (c GLWECiphertext) K() int { return len(c.Polys) - 1 }

// PolyN returns the polynomial size N.
func (c GLWECiphertext) PolyN() int { return c.Polys[0].N() }

// Body returns the body polynomial B.
func (c GLWECiphertext) Body() poly.Poly { return c.Polys[c.K()] }

// Copy returns a deep copy.
func (c GLWECiphertext) Copy() GLWECiphertext {
	out := GLWECiphertext{Polys: make([]poly.Poly, len(c.Polys))}
	for i := range c.Polys {
		out.Polys[i] = c.Polys[i].Copy()
	}
	return out
}

// Clear zeroes all components.
func (c GLWECiphertext) Clear() {
	for _, p := range c.Polys {
		p.Clear()
	}
}

// AddTo sets c += d.
func (c GLWECiphertext) AddTo(d GLWECiphertext) {
	for i := range c.Polys {
		poly.AddTo(c.Polys[i], d.Polys[i])
	}
}

// SubTo sets c -= d.
func (c GLWECiphertext) SubTo(d GLWECiphertext) {
	for i := range c.Polys {
		poly.SubTo(c.Polys[i], d.Polys[i])
	}
}

// RotateTo sets dst = c * X^e (component-wise negacyclic rotation) — the
// Rotator Unit operation. dst must not alias c.
func (c GLWECiphertext) RotateTo(dst GLWECiphertext, e int) {
	for i := range c.Polys {
		poly.MulByMonomialTo(dst.Polys[i], c.Polys[i], e)
	}
}

// GLWEKey is a binary GLWE secret key of k polynomials.
type GLWEKey struct {
	Polys [][]int32 // k polynomials with 0/1 coefficients
	n     int
}

// NewGLWEKey samples a uniform binary GLWE key.
func NewGLWEKey(rng *rand.Rand, k, n int) GLWEKey {
	key := GLWEKey{Polys: make([][]int32, k), n: n}
	for i := range key.Polys {
		key.Polys[i] = make([]int32, n)
		for j := range key.Polys[i] {
			key.Polys[i][j] = int32(rng.Intn(2))
		}
	}
	return key
}

// K returns the mask length.
func (k GLWEKey) K() int { return len(k.Polys) }

// PolyN returns the polynomial size.
func (k GLWEKey) PolyN() int { return k.n }

// Encrypt encrypts the message polynomial mu with noise stddev sigma.
// The a·s products use the exact FFT fast path (binary keys keep product
// magnitudes within double precision).
func (k GLWEKey) Encrypt(rng *rand.Rand, mu poly.Poly, sigma float64) GLWECiphertext {
	proc := fft.SharedProcessor(k.n)
	c := NewGLWECiphertext(k.K(), k.n)
	acc := proc.GetBuffer()
	fa := proc.GetBuffer()
	fs := proc.GetBuffer()
	for i := 0; i < k.K(); i++ {
		poly.Uniform(rng, c.Polys[i])
		proc.ForwardTorusTo(fa, c.Polys[i])
		proc.ForwardIntTo(fs, k.Polys[i])
		fft.MulAcc(acc, fa, fs)
	}
	proc.InverseTo(c.Body(), acc)
	proc.PutBuffer(acc)
	proc.PutBuffer(fa)
	proc.PutBuffer(fs)
	for j := 0; j < k.n; j++ {
		c.Body().Coeffs[j] += torus.Gaussian32(rng, mu.Coeffs[j], sigma)
	}
	return c
}

// EncryptZero returns a fresh encryption of the zero polynomial.
func (k GLWEKey) EncryptZero(rng *rand.Rand, sigma float64) GLWECiphertext {
	return k.Encrypt(rng, poly.New(k.n), sigma)
}

// Phase returns B - sum_i A_i * S_i, the noisy message polynomial.
func (k GLWEKey) Phase(c GLWECiphertext) poly.Poly {
	phase := c.Body().Copy()
	for i := 0; i < k.K(); i++ {
		poly.SubTo(phase, poly.MulNaive(c.Polys[i], k.Polys[i]))
	}
	return phase
}

// ExtractLWEKey returns the LWE key of dimension k·N under which
// sample-extracted coefficients decrypt: s'_{i·N+j} = S_i[j].
func (k GLWEKey) ExtractLWEKey() LWEKey {
	bits := make([]int32, k.K()*k.n)
	for i := 0; i < k.K(); i++ {
		copy(bits[i*k.n:(i+1)*k.n], k.Polys[i])
	}
	return LWEKey{Bits: bits}
}

// SampleExtract extracts coefficient 0 of the message as an LWE ciphertext
// of dimension k·N under ExtractLWEKey — Algorithm 1 line 13.
func SampleExtract(c GLWECiphertext) LWECiphertext {
	return SampleExtractAt(c, 0)
}

// SampleExtractAt extracts coefficient t of the message as an LWE
// ciphertext of dimension k·N under ExtractLWEKey. Coefficient t of
// A_i·S_i is Σ_{j≤t} A_i[t−j]·S_i[j] − Σ_{j>t} A_i[N+t−j]·S_i[j]
// (negacyclic wraparound), which fixes the mask layout below. t = 0 is
// the classic SampleExtract; multi-value PBS reads one output per packed
// subslot at the offsets of Params.MultiLUTOffsets.
func SampleExtractAt(c GLWECiphertext, t int) LWECiphertext {
	k, n := c.K(), c.PolyN()
	if t < 0 || t >= n {
		panic(fmt.Sprintf("tfhe: SampleExtractAt offset %d outside [0,%d)", t, n))
	}
	out := NewLWECiphertext(k * n)
	for i := 0; i < k; i++ {
		a := c.Polys[i]
		for j := 0; j <= t; j++ {
			out.A[i*n+j] = a.Coeffs[t-j]
		}
		for j := t + 1; j < n; j++ {
			out.A[i*n+j] = -a.Coeffs[n+t-j]
		}
	}
	out.B = c.Body().Coeffs[t]
	return out
}
