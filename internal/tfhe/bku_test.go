package tfhe

import (
	"math/rand"
	"testing"

	"repro/internal/torus"
)

func TestUnrolledBSKStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sk, _ := GenerateKeys(rng, ParamsTest)
	u := GenerateUnrolledBSK(rng, sk)
	if len(u.Pairs) != ParamsTest.SmallN/2 {
		t.Fatalf("%d pairs for n=%d", len(u.Pairs), ParamsTest.SmallN)
	}
	if ParamsTest.SmallN%2 == 0 && u.Tail != nil {
		t.Error("even n should have no tail")
	}
	if u.Iterations() != (ParamsTest.SmallN+1)/2 {
		t.Errorf("iterations = %d", u.Iterations())
	}
}

func TestUnrolledKeyIs1Point5x(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sk, ek := GenerateKeys(rng, ParamsTest)
	u := GenerateUnrolledBSK(rng, sk)
	ratio := float64(u.Bytes()) / float64(ek.BSKBytes())
	if ratio < 1.45 || ratio > 1.55 {
		t.Errorf("unrolled key ratio %.2f, want ~1.5 (Matcha's increased key size)", ratio)
	}
}

func TestUnrolledBootstrapMatchesStandard(t *testing.T) {
	// The unrolled blind rotation must compute the same function as the
	// standard one: sign bootstrapping of booleans.
	rng := rand.New(rand.NewSource(23))
	sk, ek := GenerateKeys(rng, ParamsTest)
	u := GenerateUnrolledBSK(rng, sk)
	ev := NewEvaluator(ek)

	tv := ev.SignTestVector()
	for i := 0; i < 20; i++ {
		b := rng.Intn(2) == 1
		ct := sk.EncryptBool(rng, b)
		std := ev.Bootstrap(ct, tv)
		unr := ev.BootstrapUnrolled(ct, tv, u)
		if got, want := sk.DecryptBoolBig(unr), sk.DecryptBoolBig(std); got != want {
			t.Fatalf("trial %d: unrolled %v, standard %v", i, got, want)
		}
		if got := sk.DecryptBoolBig(unr); got != b {
			t.Fatalf("trial %d: unrolled bootstrap of %v decrypted %v", i, b, got)
		}
	}
}

func TestUnrolledLUTCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	sk, ek := GenerateKeys(rng, ParamsTest)
	u := GenerateUnrolledBSK(rng, sk)
	ev := NewEvaluator(ek)

	space := 4
	f := func(x int) int { return (3 * x) % space }
	tv := ev.NewLUTTestVector(space, func(m int) torus.Torus32 {
		return EncodePBSMessage(f(m), space)
	})
	for m := 0; m < space; m++ {
		ct := sk.LWE.Encrypt(rng, EncodePBSMessage(m, space), ParamsTest.LWEStdDev)
		ct.AddPlain(torus.EncodeMessage(1, 4*space)) // half-slot centering
		out := ev.BootstrapUnrolled(ct, tv, u)
		if got := DecodePBSMessage(sk.BigLWE.Phase(out), space); got != f(m) {
			t.Fatalf("unrolled LUT(%d) = %d, want %d", m, got, f(m))
		}
	}
}

func TestUnrolledHalvesIterationsCounter(t *testing.T) {
	// The serial iteration structure is what unrolling buys: external
	// products per bootstrap grow ~1.5x while rotations per *iteration*
	// grow, but the loop count halves (observable via key Iterations).
	rng := rand.New(rand.NewSource(25))
	sk, _ := GenerateKeys(rng, ParamsTest)
	u := GenerateUnrolledBSK(rng, sk)
	if u.Iterations()*2 != ParamsTest.SmallN {
		t.Errorf("unrolled iterations %d vs n=%d", u.Iterations(), ParamsTest.SmallN)
	}
}

func TestUnrolledOddN(t *testing.T) {
	p := ParamsTest
	p.SmallN = 65
	rng := rand.New(rand.NewSource(26))
	sk, _ := GenerateKeys(rng, p)
	u := GenerateUnrolledBSK(rng, sk)
	if u.Tail == nil {
		t.Fatal("odd n requires a tail GGSW")
	}
	if u.Iterations() != 33 {
		t.Errorf("iterations = %d, want 33", u.Iterations())
	}
}
