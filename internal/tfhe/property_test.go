package tfhe

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/poly"
	"repro/internal/torus"
)

// Property tests on the scheme's algebraic invariants (testing/quick).

func TestPropertyLWEAdditiveHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	key := NewLWEKey(rng, 200)
	space := 64
	f := func(m1, m2 uint8) bool {
		a := key.Encrypt(rng, torus.EncodeMessage(int(m1)%space, space), 1e-9)
		b := key.Encrypt(rng, torus.EncodeMessage(int(m2)%space, space), 1e-9)
		a.AddTo(b)
		return key.DecryptMessage(a, space) == (int(m1)%space+int(m2)%space)%space
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySampleExtractConsistent(t *testing.T) {
	// For random GLWE plaintexts, SampleExtract always yields an LWE that
	// decrypts (under the extracted key) to the constant coefficient.
	rng := rand.New(rand.NewSource(42))
	key := NewGLWEKey(rng, 1, 64)
	ext := key.ExtractLWEKey()
	f := func(c0 uint32) bool {
		mu := poly.New(64)
		mu.Coeffs[0] = c0
		ct := key.Encrypt(rng, mu, 0)
		lwe := SampleExtract(ct)
		return torus.Distance(ext.Phase(lwe), c0) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKeySwitchLinear(t *testing.T) {
	// KeySwitch commutes with homomorphic addition (up to noise):
	// KS(a+b) decrypts to the same message as KS(a)+KS(b).
	rng := rand.New(rand.NewSource(43))
	ev := NewEvaluator(testEK)
	space := 8
	f := func(m1, m2 uint8) bool {
		mm1, mm2 := int(m1)%space, int(m2)%space
		a := testSK.BigLWE.Encrypt(rng, torus.EncodeMessage(mm1, space), 1e-9)
		b := testSK.BigLWE.Encrypt(rng, torus.EncodeMessage(mm2, space), 1e-9)
		sum := a.Copy()
		sum.AddTo(b)
		lhs := ev.KeySwitch(sum)
		ra := ev.KeySwitch(a)
		rb := ev.KeySwitch(b)
		ra.AddTo(rb)
		want := (mm1 + mm2) % space
		return testSK.LWE.DecryptMessage(lhs, space) == want &&
			testSK.LWE.DecryptMessage(ra, space) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBootstrapIdempotentOnSign(t *testing.T) {
	// Bootstrapping a boolean twice yields the same boolean: PBS is a
	// noise-refreshing identity on the encoded message.
	rng := rand.New(rand.NewSource(44))
	ev := NewEvaluator(testEK)
	f := func(b bool) bool {
		ct := testSK.EncryptBool(rng, b)
		once := ev.signBootstrap(ct)
		twice := ev.signBootstrap(once)
		return testSK.DecryptBool(once) == b && testSK.DecryptBool(twice) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLUTComposition(t *testing.T) {
	// LUT(g) ∘ LUT(f) == LUT(g∘f) on the decrypted values.
	rng := rand.New(rand.NewSource(45))
	ev := NewEvaluator(testEK)
	space := 4
	fFn := func(x int) int { return (x + 1) % space }
	gFn := func(x int) int { return (x * 3) % space }
	f := func(m uint8) bool {
		mm := int(m) % space
		ct := testSK.LWE.Encrypt(rng, EncodePBSMessage(mm, space), ParamsTest.LWEStdDev)
		step1 := ev.EvalLUTKS(ct, space, fFn)
		step2 := ev.EvalLUTKS(step1, space, gFn)
		return DecodePBSMessage(testSK.LWE.Phase(step2), space) == gFn(fFn(mm))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
