package tfhe

import (
	"math/rand"

	"repro/internal/torus"
)

// Gate bootstrapping: booleans are encoded as ±1/8 on the torus (the
// classic TFHE convention). Every binary gate costs one linear combination,
// one PBS with a constant "sign" test vector, and one keyswitch — exactly
// the workload profiled in Fig 1 of the paper.

// boolMu is the torus encoding magnitude for booleans: 1/8.
func boolMu(b bool) torus.Torus32 {
	mu := torus.FromFloat(0.125)
	if b {
		return mu
	}
	return -mu
}

// EncryptBool encrypts a boolean under the small LWE key.
func (sk SecretKeys) EncryptBool(rng *rand.Rand, b bool) LWECiphertext {
	return sk.LWE.Encrypt(rng, boolMu(b), sk.Params.LWEStdDev)
}

// DecryptBool decrypts a boolean ciphertext of dimension n.
func (sk SecretKeys) DecryptBool(c LWECiphertext) bool {
	return int32(sk.LWE.Phase(c)) > 0
}

// DecryptBoolBig decrypts a boolean ciphertext of dimension k·N (before
// keyswitching).
func (sk SecretKeys) DecryptBoolBig(c LWECiphertext) bool {
	return int32(sk.BigLWE.Phase(c)) > 0
}

// SignTestVector returns the constant test vector whose blind rotation
// computes the sign of the phase: +1/8 for phase in [0,1/2), -1/8 otherwise.
// It is read-only during PBS, so one copy can be shared across a whole
// stream of gate bootstraps.
func (e *Evaluator) SignTestVector() GLWECiphertext {
	tv := NewGLWECiphertext(e.Params.K, e.Params.N)
	mu := torus.FromFloat(0.125)
	body := tv.Body()
	for j := range body.Coeffs {
		body.Coeffs[j] = mu
	}
	return tv
}

// signBootstrapBig bootstraps c against the sign test vector, returning a
// big-key ciphertext of ±1/8.
func (e *Evaluator) signBootstrapBig(c LWECiphertext) LWECiphertext {
	return e.Bootstrap(c, e.SignTestVector())
}

// signBootstrap is signBootstrapBig followed by keyswitching to dimension n.
func (e *Evaluator) signBootstrap(c LWECiphertext) LWECiphertext {
	return e.KeySwitch(e.signBootstrapBig(c))
}

// NANDInput returns the linear combination NAND feeds its sign bootstrap:
// 1/8 − a − b. The *Input methods expose every gate's pre-PBS linear stage
// so the streaming pipeline can run it in its prepare stage and share one
// sign test vector across the stream; gate(a,b) ≡ signBootstrap(gateInput).
func (e *Evaluator) NANDInput(a, b LWECiphertext) LWECiphertext {
	t := NewLWECiphertext(e.Params.SmallN)
	t.B = torus.FromFloat(0.125)
	t.SubTo(a)
	t.SubTo(b)
	e.Counters.LinearOps += 2
	return t
}

// NAND returns an encryption of !(a && b).
func (e *Evaluator) NAND(a, b LWECiphertext) LWECiphertext {
	return e.signBootstrap(e.NANDInput(a, b))
}

// ANDInput returns the linear combination AND feeds its sign bootstrap:
// a + b − 1/8.
func (e *Evaluator) ANDInput(a, b LWECiphertext) LWECiphertext {
	t := a.Copy()
	t.AddTo(b)
	t.AddPlain(-torus.FromFloat(0.125))
	e.Counters.LinearOps += 2
	return t
}

// AND returns an encryption of a && b.
func (e *Evaluator) AND(a, b LWECiphertext) LWECiphertext {
	return e.signBootstrap(e.ANDInput(a, b))
}

// ORInput returns the linear combination OR feeds its sign bootstrap:
// a + b + 1/8.
func (e *Evaluator) ORInput(a, b LWECiphertext) LWECiphertext {
	t := a.Copy()
	t.AddTo(b)
	t.AddPlain(torus.FromFloat(0.125))
	e.Counters.LinearOps += 2
	return t
}

// OR returns an encryption of a || b.
func (e *Evaluator) OR(a, b LWECiphertext) LWECiphertext {
	return e.signBootstrap(e.ORInput(a, b))
}

// NORInput returns the linear combination NOR feeds its sign bootstrap:
// −1/8 − a − b.
func (e *Evaluator) NORInput(a, b LWECiphertext) LWECiphertext {
	t := NewLWECiphertext(e.Params.SmallN)
	t.B = -torus.FromFloat(0.125)
	t.SubTo(a)
	t.SubTo(b)
	e.Counters.LinearOps += 2
	return t
}

// NOR returns an encryption of !(a || b).
func (e *Evaluator) NOR(a, b LWECiphertext) LWECiphertext {
	return e.signBootstrap(e.NORInput(a, b))
}

// XORInput returns the linear combination XOR feeds its sign bootstrap:
// 2·(a + b) + 1/4.
func (e *Evaluator) XORInput(a, b LWECiphertext) LWECiphertext {
	t := a.Copy()
	t.AddTo(b)
	t.MulScalar(2)
	t.AddPlain(torus.FromFloat(0.25))
	e.Counters.LinearOps += 3
	return t
}

// XOR returns an encryption of a != b. The 2× scaling amplifies input noise;
// inputs should be freshly bootstrapped.
func (e *Evaluator) XOR(a, b LWECiphertext) LWECiphertext {
	return e.signBootstrap(e.XORInput(a, b))
}

// XNORInput returns the linear combination XNOR feeds its sign bootstrap:
// 2·(a + b) − 1/4.
func (e *Evaluator) XNORInput(a, b LWECiphertext) LWECiphertext {
	t := a.Copy()
	t.AddTo(b)
	t.MulScalar(2)
	t.AddPlain(-torus.FromFloat(0.25))
	e.Counters.LinearOps += 3
	return t
}

// XNOR returns an encryption of a == b.
func (e *Evaluator) XNOR(a, b LWECiphertext) LWECiphertext {
	return e.signBootstrap(e.XNORInput(a, b))
}

// NOT returns an encryption of !a. Negation is free (no bootstrap).
func (e *Evaluator) NOT(a LWECiphertext) LWECiphertext {
	t := a.Copy()
	t.Negate()
	e.Counters.LinearOps++
	return t
}

// MUX returns an encryption of (c ? a : b) using two bootstraps and one
// keyswitch, following the tfhe-lib construction.
func (e *Evaluator) MUX(c, a, b LWECiphertext) LWECiphertext {
	// u1 = sign(-1/8 + c + a): equals a when c is true, else -1/8.
	t1 := c.Copy()
	t1.AddTo(a)
	t1.AddPlain(-torus.FromFloat(0.125))
	u1 := e.signBootstrapBig(t1)

	// u2 = sign(-1/8 - c + b): equals b when c is false, else -1/8.
	t2 := c.Copy()
	t2.Negate()
	t2.AddTo(b)
	t2.AddPlain(-torus.FromFloat(0.125))
	u2 := e.signBootstrapBig(t2)

	u1.AddTo(u2)
	u1.AddPlain(torus.FromFloat(0.125))
	e.Counters.LinearOps += 7
	return e.KeySwitch(u1)
}
