package cycle

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestResourceSerializesJobs(t *testing.T) {
	var tr Trace
	r := NewResource("fft", 0, &tr)
	i1, d1 := r.Claim(0, 10, "a")
	i2, d2 := r.Claim(0, 10, "b")
	if i1 != 0 || d1 != 10 {
		t.Errorf("first job: issue %d done %d", i1, d1)
	}
	if i2 != 10 || d2 != 20 {
		t.Errorf("second job must wait: issue %d done %d", i2, d2)
	}
}

func TestResourceLatencyPipelining(t *testing.T) {
	r := NewResource("fft", 100, nil)
	// Two jobs of occupancy 10: issue back-to-back, completions 110, 120 —
	// the pipeline overlaps the latency.
	_, d1 := r.Claim(0, 10, "")
	_, d2 := r.Claim(0, 10, "")
	if d1 != 110 || d2 != 120 {
		t.Errorf("pipelined completions %d,%d want 110,120", d1, d2)
	}
}

func TestResourceRespectsReadyTime(t *testing.T) {
	r := NewResource("u", 0, nil)
	i, _ := r.Claim(50, 5, "")
	if i != 50 {
		t.Errorf("issue %d, want 50", i)
	}
}

func TestResourceAdvance(t *testing.T) {
	r := NewResource("u", 0, nil)
	r.Advance(100)
	if i, _ := r.Claim(0, 1, ""); i != 100 {
		t.Errorf("stalled issue %d, want 100", i)
	}
	r.Advance(50) // moving backwards is a no-op
	if r.NextFree() != 101 {
		t.Errorf("NextFree %d, want 101", r.NextFree())
	}
}

func TestUtilizationSimple(t *testing.T) {
	var tr Trace
	tr.Record("u", "", 0, 50)
	if got := tr.Utilization("u", 0, 100); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestUtilizationMergesOverlaps(t *testing.T) {
	var tr Trace
	tr.Record("u", "", 0, 60)
	tr.Record("u", "", 40, 80) // overlapping instance
	if got := tr.Utilization("u", 0, 100); got != 0.8 {
		t.Errorf("utilization = %v, want 0.8", got)
	}
}

func TestUtilizationClipsWindow(t *testing.T) {
	var tr Trace
	tr.Record("u", "", 0, 1000)
	if got := tr.Utilization("u", 100, 200); got != 1.0 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
}

func TestUtilizationBoundedProperty(t *testing.T) {
	f := func(starts []uint16, lens []uint8) bool {
		var tr Trace
		for i := range starts {
			l := Time(1)
			if i < len(lens) {
				l = Time(lens[i]) + 1
			}
			tr.Record("u", "", Time(starts[i]), Time(starts[i])+l)
		}
		u := tr.Utilization("u", 0, 70000)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTraceEnd(t *testing.T) {
	var tr Trace
	tr.Record("a", "", 0, 10)
	tr.Record("b", "", 5, 99)
	if tr.End() != 99 {
		t.Errorf("End = %d, want 99", tr.End())
	}
}

func TestUnitsOrder(t *testing.T) {
	var tr Trace
	tr.Record("rot", "", 0, 1)
	tr.Record("fft", "", 0, 1)
	tr.Record("rot", "", 2, 3)
	u := tr.Units()
	if len(u) != 2 || u[0] != "rot" || u[1] != "fft" {
		t.Errorf("Units = %v", u)
	}
}

func TestGanttRendersRows(t *testing.T) {
	var tr Trace
	tr.Record("rotator", "1", 0, 50)
	tr.Record("fft", "2", 50, 100)
	g := tr.Gantt(0, 100, 40)
	if !strings.Contains(g, "rotator") || !strings.Contains(g, "fft") {
		t.Fatalf("missing unit rows:\n%s", g)
	}
	if !strings.Contains(g, "1") || !strings.Contains(g, "2") {
		t.Fatalf("missing labels:\n%s", g)
	}
}

func TestGanttEmptyWindow(t *testing.T) {
	var tr Trace
	if g := tr.Gantt(10, 10, 40); g != "" {
		t.Errorf("expected empty chart, got %q", g)
	}
}

func TestClaimRecordsTrace(t *testing.T) {
	var tr Trace
	r := NewResource("u", 0, &tr)
	r.Claim(0, 10, "x")
	if len(tr.Intervals) != 1 || tr.Intervals[0].Label != "x" {
		t.Fatalf("trace = %+v", tr.Intervals)
	}
}

func TestZeroOccupancyNotTraced(t *testing.T) {
	var tr Trace
	r := NewResource("u", 0, &tr)
	r.Claim(0, 0, "x")
	if len(tr.Intervals) != 0 {
		t.Fatal("zero-occupancy claim should not be traced")
	}
}
