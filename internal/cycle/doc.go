// Package cycle provides the discrete-event primitives for the Strix
// cycle-level simulator: a cycle clock, pipelined hardware resources with
// initiation intervals, and an interval trace recorder that produces the
// utilization numbers and Gantt charts of the paper's Fig 8.
package cycle
