package cycle

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a point in simulated time, measured in clock cycles.
type Time int64

// Interval is a half-open busy interval [Start, End) of a resource,
// annotated with a label (e.g. which LWE the unit was processing).
type Interval struct {
	Unit  string
	Label string
	Start Time
	End   Time
}

// Trace collects busy intervals from all resources of a simulation.
// The zero value is ready to use.
type Trace struct {
	Intervals []Interval
}

// Record appends a busy interval.
func (t *Trace) Record(unit, label string, start, end Time) {
	t.Intervals = append(t.Intervals, Interval{Unit: unit, Label: label, Start: start, End: end})
}

// Units returns the distinct unit names in first-appearance order.
func (t *Trace) Units() []string {
	seen := make(map[string]bool)
	var out []string
	for _, iv := range t.Intervals {
		if !seen[iv.Unit] {
			seen[iv.Unit] = true
			out = append(out, iv.Unit)
		}
	}
	return out
}

// Utilization returns the fraction of [from, to) during which the named
// unit was busy. Overlapping recorded intervals are merged first, so a
// resource replicated into multiple instances reports per-cluster
// utilization correctly.
func (t *Trace) Utilization(unit string, from, to Time) float64 {
	if to <= from {
		return 0
	}
	var ivs []Interval
	for _, iv := range t.Intervals {
		if iv.Unit == unit && iv.End > from && iv.Start < to {
			s, e := iv.Start, iv.End
			if s < from {
				s = from
			}
			if e > to {
				e = to
			}
			ivs = append(ivs, Interval{Start: s, End: e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	var busy, cursor Time
	cursor = from
	for _, iv := range ivs {
		if iv.End <= cursor {
			continue
		}
		s := iv.Start
		if s < cursor {
			s = cursor
		}
		busy += iv.End - s
		cursor = iv.End
	}
	return float64(busy) / float64(to-from)
}

// End returns the largest interval end time (the makespan).
func (t *Trace) End() Time {
	var end Time
	for _, iv := range t.Intervals {
		if iv.End > end {
			end = iv.End
		}
	}
	return end
}

// Gantt renders an ASCII Gantt chart of the trace over [from, to) with the
// given number of character columns, one row per unit — the textual
// equivalent of the paper's Fig 8 timing diagram. Cells show the first rune
// of the busy interval's label ('#' when unlabeled).
func (t *Trace) Gantt(from, to Time, cols int) string {
	if to <= from || cols <= 0 {
		return ""
	}
	units := t.Units()
	width := 0
	for _, u := range units {
		if len(u) > width {
			width = len(u)
		}
	}
	var b strings.Builder
	span := float64(to - from)
	for _, u := range units {
		row := make([]rune, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range t.Intervals {
			if iv.Unit != u || iv.End <= from || iv.Start >= to {
				continue
			}
			mark := '#'
			if iv.Label != "" {
				mark = rune(iv.Label[0])
			}
			c0 := int(float64(iv.Start-from) / span * float64(cols))
			c1 := int(float64(iv.End-from)/span*float64(cols)) + 1
			if c0 < 0 {
				c0 = 0
			}
			if c1 > cols {
				c1 = cols
			}
			for c := c0; c < c1; c++ {
				row[c] = mark
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", width, u, string(row))
	}
	fmt.Fprintf(&b, "%-*s  %d%scycles%s%d\n", width, "", from,
		strings.Repeat(" ", max(1, cols/2-8)), strings.Repeat(" ", max(1, cols/2-8)), to)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Resource models a fully pipelined hardware unit: a new job can be issued
// every (occupancy) cycles, and jobs complete (latency) cycles after issue.
// Claim serializes jobs on the resource and records the busy interval.
type Resource struct {
	Name    string
	Latency Time // pipeline depth in cycles (completion = issue + occupancy + latency)

	trace    *Trace
	nextFree Time
}

// NewResource creates a resource attached to an optional trace.
func NewResource(name string, latency Time, trace *Trace) *Resource {
	return &Resource{Name: name, Latency: latency, trace: trace}
}

// Claim issues a job arriving at time ready that occupies the resource for
// occ cycles. It returns the issue time and the completion time (when the
// result is available downstream).
func (r *Resource) Claim(ready Time, occ Time, label string) (issue, done Time) {
	issue = ready
	if r.nextFree > issue {
		issue = r.nextFree
	}
	r.nextFree = issue + occ
	done = issue + occ + r.Latency
	if r.trace != nil && occ > 0 {
		r.trace.Record(r.Name, label, issue, issue+occ)
	}
	return issue, done
}

// NextFree returns the earliest time a new job could be issued.
func (r *Resource) NextFree() Time { return r.nextFree }

// Advance moves the resource's free time forward to at least t (used to
// model an explicit stall, e.g. waiting for a key fetch).
func (r *Resource) Advance(t Time) {
	if t > r.nextFree {
		r.nextFree = t
	}
}
