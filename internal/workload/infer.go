package workload

import (
	"fmt"

	"repro/internal/sched"
)

// The encrypted cellCNN-style inference model: a fixed, quantized
// convolution → average-pool → dense pipeline over a small single-cell
// feature matrix, shaped after the cellCNN phenotype classifier
// (convolution as packed linear combinations, pooling as a free linear
// node, nonlinearities as programmable bootstraps). Every value on an
// encrypted wire is a digit in {0..InferDigitMax} inside the InferSpace
// PBS message space, and every weight is chosen so intermediate linear
// sums never leave the padding-bit range — the same discipline as the
// mini-NN encoding in nn.go.
const (
	// InferSpace is the PBS message space the inference inputs, the conv
	// pre-activations, and the output scores live in.
	InferSpace = 16
	// InferPoolSpace is the coarser message space the pooled wires and
	// dense contributions live in. Multi-value packing divides the
	// tolerated input noise by the table count k, so the dense stage's
	// packed bootstrap runs on a space half as fine — InferPoolSpace ·
	// InferClasses = InferSpace buckets — restoring exactly the margin
	// the packing costs. The conv tables emit activations pre-scaled by
	// InferSpace/InferPoolSpace so the pool sum lands on this grid.
	InferPoolSpace = InferSpace / InferClasses
	// InferDigitMax is the largest feature/activation value; linear
	// fan-ins are weighted so sums stay < InferSpace.
	InferDigitMax = 3
	// InferCells is the number of cells in the input feature matrix.
	InferCells = 2
	// InferMarkers is the number of markers measured per cell.
	InferMarkers = 2
	// InferFilters is the convolution filter count.
	InferFilters = 2
	// InferClasses is the number of output classes.
	InferClasses = 2
	// InferFeatures is the flat encrypted input length of one inference:
	// a cell-major feature matrix, features[c*InferMarkers+m] = marker m
	// of cell c.
	InferFeatures = InferCells * InferMarkers
)

// The quantized model weights. Convolution weights keep the worst-case
// pre-activation sum (InferDigitMax · Σ w) plus bias below InferSpace;
// dense weights are applied inside lookup tables, so they are free to
// scale without overflow concerns.
var (
	inferConvW    = [InferFilters][InferMarkers]int{{2, 1}, {1, 2}}
	inferConvBias = [InferFilters]int{0, 1}
	inferDenseW   = [InferClasses][InferFilters]int{{2, 1}, {1, 3}}
)

// inferConvAct is filter f's activation: a shifted clamped ReLU with the
// filter bias folded into the table (adding a plaintext constant to a
// torus message is encoding-dependent; adding it inside the LUT is free).
func inferConvAct(f int) func(int) int {
	bias := inferConvBias[f]
	return func(v int) int { return clampDigit(v + bias - 2) }
}

// inferConvEnc is inferConvAct re-encoded for the pool wire: the table
// emits the activation scaled by InferSpace/InferPoolSpace, so the
// space-InferSpace bootstrap output reads as the plain digit on the
// coarser InferPoolSpace grid the dense stage's packed bootstrap needs.
func inferConvEnc(f int) func(int) int {
	act := inferConvAct(f)
	return func(v int) int { return act(v) * (InferSpace / InferPoolSpace) }
}

// inferDenseTab is the dense-layer table for (filter f, class k): it
// reads the pooled sum over InferCells conv outputs and emits that
// filter's quantized contribution to class k. The ÷InferCells of the
// average pool and the dense weight multiply both fold into the table,
// so the pool itself stays a free (bootstrap-less) linear node.
func inferDenseTab(f, k int) func(int) int {
	w := inferDenseW[k][f]
	return func(s int) int { return clampDigit(w * s / InferCells) }
}

// inferLogit requantizes a class's summed contributions (in
// {0..InferClasses·InferDigitMax}) back into {0..InferDigitMax}, so
// predictions decode in the digit range every other wire uses.
func inferLogit(s int) int { return clampDigit(s - 1) }

// inferLogitEnc reads the summed dense contributions off the
// InferPoolSpace grid: the logit bootstrap runs in InferSpace, where a
// space-InferPoolSpace sum appears scaled by InferSpace/InferPoolSpace.
func inferLogitEnc(v int) int { return inferLogit(v * InferPoolSpace / InferSpace) }

// clampDigit clamps v into the digit range {0..InferDigitMax}.
func clampDigit(v int) int {
	if v < 0 {
		return 0
	}
	if v > InferDigitMax {
		return InferDigitMax
	}
	return v
}

// BuildInfer appends one inference instance to the builder: features is
// the flat cell-major feature vector (length InferFeatures, each wire an
// InferSpace-encoded digit), and the returned wires are the InferClasses
// quantized class scores. The pipeline is
//
//	conv:  per (cell, filter) a packed fan-in-InferMarkers linear combo
//	       plus one activation bootstrap (bias folded into the table,
//	       output re-encoded onto the coarser InferPoolSpace grid),
//	pool:  per filter a free linear sum over cells (the ÷InferCells of
//	       the average folds into the next stage's tables),
//	dense: per filter one space-InferPoolSpace multi-value bootstrap
//	       whose InferClasses tables share the blind rotation
//	       (Builder.MultiLUTFunc) at full single-LUT noise margin,
//	logit: per class a free linear sum of contributions plus one
//	       requantizing bootstrap back in InferSpace.
func BuildInfer(b *sched.Builder, features []sched.Wire) ([]sched.Wire, error) {
	if len(features) != InferFeatures {
		return nil, fmt.Errorf("workload: BuildInfer takes %d feature wires, got %d", InferFeatures, len(features))
	}
	// Convolution: conv[c][f] = act_f(Σ_m w[f][m]·x[c][m]).
	var conv [InferCells][InferFilters]sched.Wire
	for c := 0; c < InferCells; c++ {
		for f := 0; f < InferFilters; f++ {
			terms := make([]sched.Term, InferMarkers)
			for m := 0; m < InferMarkers; m++ {
				terms[m] = sched.Term{W: features[c*InferMarkers+m], C: int32(inferConvW[f][m])}
			}
			conv[c][f] = b.LUTFunc(b.Lin(0, terms...), InferSpace, inferConvEnc(f))
		}
	}
	// Average pool + dense: pool[f] is a free sum; one blind rotation per
	// pooled filter then serves every class's contribution table.
	var contrib [InferFilters][]sched.Wire
	for f := 0; f < InferFilters; f++ {
		terms := make([]sched.Term, InferCells)
		for c := 0; c < InferCells; c++ {
			terms[c] = sched.Term{W: conv[c][f], C: 1}
		}
		pool := b.Lin(0, terms...)
		fs := make([]func(int) int, InferClasses)
		for k := range fs {
			fs[k] = inferDenseTab(f, k)
		}
		contrib[f] = b.MultiLUTFunc(pool, InferPoolSpace, fs...)
	}
	// Logits: score[k] = logit(Σ_f contrib[f][k]).
	scores := make([]sched.Wire, InferClasses)
	for k := 0; k < InferClasses; k++ {
		terms := make([]sched.Term, InferFilters)
		for f := 0; f < InferFilters; f++ {
			terms[f] = sched.Term{W: contrib[f][k], C: 1}
		}
		scores[k] = b.LUTFunc(b.Lin(0, terms...), InferSpace, inferLogitEnc)
	}
	return scores, nil
}

// BuildInferBatch builds a circuit running the model over batch feature
// vectors: inputs are batch·InferFeatures wires (vector-major), outputs
// batch·InferClasses score wires in the same order. All instances are
// independent, so each model stage is one wide scheduler level and
// concurrent tenants' inferences coalesce into shared engine streams.
func BuildInferBatch(batch int) (*sched.Circuit, error) {
	if batch < 1 {
		return nil, fmt.Errorf("workload: inference batch %d < 1", batch)
	}
	b := sched.NewBuilder()
	features := b.Inputs(batch * InferFeatures)
	for i := 0; i < batch; i++ {
		scores, err := BuildInfer(b, features[i*InferFeatures:(i+1)*InferFeatures])
		if err != nil {
			return nil, err
		}
		b.Output(scores...)
	}
	return b.Build()
}

// InferReference computes the quantized cleartext class scores for one
// feature vector — the golden model encrypted inference must decode to.
// It mirrors BuildInfer's integer arithmetic exactly, table by table.
func InferReference(features []int) ([]int, error) {
	if len(features) != InferFeatures {
		return nil, fmt.Errorf("workload: InferReference takes %d features, got %d", InferFeatures, len(features))
	}
	for i, v := range features {
		if v < 0 || v > InferDigitMax {
			return nil, fmt.Errorf("workload: feature %d = %d outside {0..%d}", i, v, InferDigitMax)
		}
	}
	var conv [InferCells][InferFilters]int
	for c := 0; c < InferCells; c++ {
		for f := 0; f < InferFilters; f++ {
			sum := 0
			for m := 0; m < InferMarkers; m++ {
				sum += inferConvW[f][m] * features[c*InferMarkers+m]
			}
			conv[c][f] = inferConvAct(f)(sum)
		}
	}
	scores := make([]int, InferClasses)
	for k := 0; k < InferClasses; k++ {
		total := 0
		for f := 0; f < InferFilters; f++ {
			pool := 0
			for c := 0; c < InferCells; c++ {
				pool += conv[c][f]
			}
			total += inferDenseTab(f, k)(pool)
		}
		scores[k] = inferLogit(total)
	}
	return scores, nil
}

// InferPredict returns the predicted class of a score vector: the argmax,
// lowest class on ties.
func InferPredict(scores []int) int {
	best := 0
	for k := 1; k < len(scores); k++ {
		if scores[k] > scores[best] {
			best = k
		}
	}
	return best
}

// InferSweep enumerates the model's full input domain: every feature
// vector in {0..InferDigitMax}^InferFeatures, in lexicographic order.
// The domain is (InferDigitMax+1)^InferFeatures = 256 vectors — small
// enough that conformance can pin encrypted inference against the
// cleartext reference exhaustively rather than by sampling.
func InferSweep() [][]int {
	n := 1
	for i := 0; i < InferFeatures; i++ {
		n *= InferDigitMax + 1
	}
	sweep := make([][]int, n)
	for i := range sweep {
		v := make([]int, InferFeatures)
		rem := i
		for j := InferFeatures - 1; j >= 0; j-- {
			v[j] = rem % (InferDigitMax + 1)
			rem /= InferDigitMax + 1
		}
		sweep[i] = v
	}
	return sweep
}
