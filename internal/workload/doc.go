// Package workload builds the workloads of the paper's evaluation: PBS
// microbenchmark batches and the Zama Deep-NN models (NN-20/50/100) used in
// Fig 7. A workload is expressed as a sequence of dependent layers, each
// containing a number of independent PBS(+KS) operations — exactly the
// computational-graph abstraction the paper's custom simulator uses
// (§VI-B).
package workload
