package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/torus"
)

// Microbenchmark describes a batch of independent PBS operations for the
// Table V throughput/latency measurements.
type Microbenchmark struct {
	Params tfhe.Params
	Count  int
}

// NewMicrobenchmark validates and returns a PBS microbenchmark.
func NewMicrobenchmark(p tfhe.Params, count int) (Microbenchmark, error) {
	if count < 1 {
		return Microbenchmark{}, fmt.Errorf("workload: microbenchmark count %d must be >= 1", count)
	}
	if err := p.Validate(); err != nil {
		return Microbenchmark{}, err
	}
	return Microbenchmark{Params: p, Count: count}, nil
}

// GenerateInputs produces `count` random encrypted messages under the key,
// encoded for PBS with the given message space — functional inputs for
// end-to-end validation runs.
func GenerateInputs(rng *rand.Rand, sk tfhe.SecretKeys, space, count int) ([]tfhe.LWECiphertext, []int) {
	cts := make([]tfhe.LWECiphertext, count)
	msgs := make([]int, count)
	for i := range cts {
		msgs[i] = rng.Intn(space)
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(msgs[i], space), sk.Params.LWEStdDev)
	}
	return cts, msgs
}

// GateWorkload is a sequence of random binary gates over a pool of
// encrypted booleans — the Fig 1 workload shape.
type GateWorkload struct {
	Gates []string
}

// NewGateWorkload draws `count` gates uniformly from the supported set.
func NewGateWorkload(rng *rand.Rand, count int) GateWorkload {
	kinds := []string{"NAND", "AND", "OR", "XOR", "NOR", "XNOR"}
	g := GateWorkload{Gates: make([]string, count)}
	for i := range g.Gates {
		g.Gates[i] = kinds[rng.Intn(len(kinds))]
	}
	return g
}

// Circuit emits the workload as a sched DAG: two inputs, each gate
// feeding one operand of the next — a pure dependency chain, the
// worst-case shape for a levelizing scheduler (every level has width 1).
func (g GateWorkload) Circuit() (*sched.Circuit, error) {
	b := sched.NewBuilder()
	cur, operand := b.Input(), b.Input()
	for _, kind := range g.Gates {
		op, err := engine.ParseGate(kind)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		cur = b.Gate(op, cur, operand)
	}
	b.Output(cur)
	return b.Build()
}

// Execute runs the gate workload functionally with the evaluator over the
// two encrypted operands, returning the final ciphertext. It emits the
// Circuit DAG and walks it sequentially — the same graph the scheduler
// levelizes. Unknown gate names panic, as they indicate a corrupted
// workload.
func (g GateWorkload) Execute(ev *tfhe.Evaluator, a, b tfhe.LWECiphertext) tfhe.LWECiphertext {
	c, err := g.Circuit()
	if err != nil {
		panic(err.Error())
	}
	out, err := sched.RunSequential(c, ev, []tfhe.LWECiphertext{a, b})
	if err != nil {
		panic("workload: " + err.Error())
	}
	return out[0]
}

// ReLUTestVectorValue is the torus encoding of a ReLU lookup used by the
// deep-NN functional spot checks: messages in [0, space) represent signed
// values centered at space/2.
func ReLUTestVectorValue(m, space int) torus.Torus32 {
	half := space / 2
	v := m - half // signed value
	if v < 0 {
		v = 0
	}
	return tfhe.EncodePBSMessage(v+half, space)
}
