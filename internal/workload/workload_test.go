package workload

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

func TestDeepNNLayerStructure(t *testing.T) {
	nn, err := NewDeepNN(20, tfhe.ParamsII)
	if err != nil {
		t.Fatal(err)
	}
	layers := nn.LayerPBS()
	if len(layers) != 20 {
		t.Fatalf("NN-20 has %d layers", len(layers))
	}
	if layers[0] != 840 {
		t.Errorf("conv layer PBS = %d, want 840 ([1,2,21,20])", layers[0])
	}
	for i := 1; i < 20; i++ {
		if layers[i] != 92 {
			t.Errorf("dense layer %d PBS = %d, want 92", i, layers[i])
		}
	}
	if nn.TotalPBS() != 840+19*92 {
		t.Errorf("total PBS = %d", nn.TotalPBS())
	}
}

func TestDeepNNDepthValidation(t *testing.T) {
	if _, err := NewDeepNN(1, tfhe.ParamsII); err == nil {
		t.Error("depth 1 should error")
	}
}

func TestNNParams(t *testing.T) {
	for _, n := range []int{1024, 2048, 4096} {
		p, err := NNParams(n)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if p.N != n {
			t.Errorf("NNParams(%d).N = %d", n, p.N)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("N=%d params invalid: %v", n, err)
		}
	}
	if _, err := NNParams(512); err == nil {
		t.Error("unsupported N should error")
	}
}

func TestFig7ModelsCount(t *testing.T) {
	models, err := Fig7Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 9 {
		t.Fatalf("Fig 7 has %d combinations, want 9", len(models))
	}
	// Deeper models must have strictly more PBS.
	if models[0].TotalPBS() >= models[8].TotalPBS() {
		t.Error("NN-100 should have more PBS than NN-20")
	}
}

func TestMicrobenchmarkValidation(t *testing.T) {
	if _, err := NewMicrobenchmark(tfhe.ParamsI, 0); err == nil {
		t.Error("count 0 should error")
	}
	mb, err := NewMicrobenchmark(tfhe.ParamsI, 100)
	if err != nil || mb.Count != 100 {
		t.Errorf("microbenchmark: %+v, %v", mb, err)
	}
}

func TestGenerateInputsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sk, _ := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	cts, msgs := GenerateInputs(rng, sk, 4, 16)
	if len(cts) != 16 || len(msgs) != 16 {
		t.Fatal("wrong count")
	}
	for i, ct := range cts {
		got := tfhe.DecodePBSMessage(sk.LWE.Phase(ct), 4)
		if got != msgs[i] {
			t.Errorf("input %d decrypts to %d, want %d", i, got, msgs[i])
		}
	}
}

func TestGateWorkloadExecutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	ev := tfhe.NewEvaluator(ek)
	g := NewGateWorkload(rng, 4)
	a := sk.EncryptBool(rng, true)
	b := sk.EncryptBool(rng, false)
	out := g.Execute(ev, a, b)

	// Compute the expected plaintext result.
	cur := true
	bb := false
	for _, kind := range g.Gates {
		switch kind {
		case "NAND":
			cur = !(cur && bb)
		case "AND":
			cur = cur && bb
		case "OR":
			cur = cur || bb
		case "XOR":
			cur = cur != bb
		case "NOR":
			cur = !(cur || bb)
		case "XNOR":
			cur = cur == bb
		}
	}
	if got := sk.DecryptBool(out); got != cur {
		t.Errorf("gate chain result %v, want %v (gates %v)", got, cur, g.Gates)
	}
	if ev.Counters.PBSCount != 4 {
		t.Errorf("expected 4 bootstraps, got %d", ev.Counters.PBSCount)
	}
}

// sameCT compares two ciphertexts bitwise.
func sameCT(a, b tfhe.LWECiphertext) bool {
	if a.N() != b.N() || a.B != b.B {
		return false
	}
	for i := range a.A {
		if a.A[i] != b.A[i] {
			return false
		}
	}
	return true
}

func TestGateWorkloadCircuitMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	g := NewGateWorkload(rng, 5)
	a := sk.EncryptBool(rng, true)
	b := sk.EncryptBool(rng, false)

	want := g.Execute(tfhe.NewEvaluator(ek), a, b)

	c, err := g.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 1 {
		t.Fatalf("circuit shape: %d inputs, %d outputs", c.NumInputs(), c.NumOutputs())
	}
	r := &sched.Runner{
		Batch:  engine.New(ek, engine.Config{Workers: 2}),
		Stream: engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: 2}),
	}
	got, err := r.Run(c, sched.Config{}, []tfhe.LWECiphertext{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !sameCT(got[0], want) {
		t.Error("scheduled gate chain differs from sequential execution")
	}
	// A chain schedule has one gate per level — the levelizer must not
	// merge dependent gates.
	sch, err := sched.Compile(c, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := sch.Stats(); st.Levels != 5 || st.MaxLevelPBS != 1 {
		t.Errorf("chain schedule = %+v, want 5 levels of width 1", st)
	}
}

func TestBuildNNAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	nn, err := NewDeepNN(3, tfhe.ParamsII)
	if err != nil {
		t.Fatal(err)
	}
	layers := nn.MiniLayers(200) // [4, 1, 1]
	if layers[0] < 2 {
		t.Fatalf("mini conv layer too narrow: %v", layers)
	}

	in := []int{1, 3, 0, 2}
	b := sched.NewBuilder()
	ws := b.Inputs(len(in))
	outs, err := BuildNN(b, ws, layers)
	if err != nil {
		t.Fatal(err)
	}
	b.Output(outs...)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cts := make([]tfhe.LWECiphertext, len(in))
	for i, m := range in {
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, NNSpace), tfhe.ParamsTest.LWEStdDev)
	}

	want := NNReference(in, layers)
	seq, err := sched.RunSequential(c, tfhe.NewEvaluator(ek), cts)
	if err != nil {
		t.Fatal(err)
	}
	r := &sched.Runner{Batch: engine.New(ek, engine.Config{Workers: 2})}
	got, err := r.Run(c, sched.Config{Mode: sched.BatchOnly}, cts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for k := range got {
		if !sameCT(got[k], seq[k]) {
			t.Errorf("output %d: scheduled differs from sequential", k)
		}
		if dec := tfhe.DecodePBSMessage(sk.LWE.Phase(got[k]), NNSpace); dec != want[k] {
			t.Errorf("output %d decrypts to %d, want %d", k, dec, want[k])
		}
	}
	// Each layer is one level; every neuron of a layer shares the
	// activation table, so each level is a single dispatch.
	sch, err := sched.Compile(c, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sch.Stats()
	if st.Levels != len(layers) || st.Dispatches != len(layers) {
		t.Errorf("NN schedule = %+v, want %d levels with 1 dispatch each", st, len(layers))
	}
}

func TestBuildNNValidation(t *testing.T) {
	b := sched.NewBuilder()
	if _, err := BuildNN(b, nil, []int{2}); err == nil {
		t.Error("no inputs should error")
	}
	b2 := sched.NewBuilder()
	if _, err := BuildNN(b2, b2.Inputs(2), []int{0}); err == nil {
		t.Error("zero-width layer should error")
	}
}

func TestMiniLayers(t *testing.T) {
	nn, err := NewDeepNN(20, tfhe.ParamsII)
	if err != nil {
		t.Fatal(err)
	}
	layers := nn.MiniLayers(100)
	if len(layers) != 20 {
		t.Fatalf("mini layers count %d", len(layers))
	}
	if layers[0] != 8 { // 840/100
		t.Errorf("mini conv width = %d, want 8", layers[0])
	}
	for i := 1; i < len(layers); i++ {
		if layers[i] != 1 { // 92/100 clamps to 1
			t.Errorf("mini dense width[%d] = %d, want 1", i, layers[i])
		}
	}
}

func TestReLUTestVectorValue(t *testing.T) {
	space := 8
	// m=2 encodes signed -2 → ReLU → 0 → encoded space/2=4.
	if got := ReLUTestVectorValue(2, space); got != tfhe.EncodePBSMessage(4, space) {
		t.Error("negative input should clamp to zero")
	}
	// m=6 encodes signed +2 → stays 6.
	if got := ReLUTestVectorValue(6, space); got != tfhe.EncodePBSMessage(6, space) {
		t.Error("positive input should pass through")
	}
}

// TestBuildNNOptimized runs the mini deep-NN circuit through the
// scheduler's optimizer pass pipeline: CSE deduplicates neurons that
// share a fan-in pair (width > fan-in wires guarantees at least one)
// and the outputs still match the plaintext reference.
func TestBuildNNOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	layers := []int{4, 4, 2}
	in := []int{1, 3, 2}

	b := sched.NewBuilder()
	ws := b.Inputs(len(in))
	outs, err := BuildNN(b, ws, layers)
	if err != nil {
		t.Fatal(err)
	}
	b.Output(outs...)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cts := make([]tfhe.LWECiphertext, len(in))
	for i, m := range in {
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, NNSpace), tfhe.ParamsTest.LWEStdDev)
	}

	opt := sched.OptAll()
	opt.MultiValueBudget = tfhe.ParamsTest.N
	sch, err := sched.Compile(c, sched.Config{Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := sched.Compile(c, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Stats().TotalPBS >= naive.Stats().TotalPBS {
		t.Errorf("optimizer saved nothing: %d PBS vs naive %d (width 4 over 3 wires must dedup)",
			sch.Stats().TotalPBS, naive.Stats().TotalPBS)
	}

	r := &sched.Runner{Batch: engine.New(ek, engine.Config{Workers: 2})}
	got, err := r.RunSchedule(c, sch, cts)
	if err != nil {
		t.Fatal(err)
	}
	want := NNReference(in, layers)
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for k := range got {
		if dec := tfhe.DecodePBSMessage(sk.LWE.Phase(got[k]), NNSpace); dec != want[k] {
			t.Errorf("output %d decrypts to %d, want %d", k, dec, want[k])
		}
	}
}
