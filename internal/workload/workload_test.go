package workload

import (
	"math/rand"
	"testing"

	"repro/internal/tfhe"
)

func TestDeepNNLayerStructure(t *testing.T) {
	nn, err := NewDeepNN(20, tfhe.ParamsII)
	if err != nil {
		t.Fatal(err)
	}
	layers := nn.LayerPBS()
	if len(layers) != 20 {
		t.Fatalf("NN-20 has %d layers", len(layers))
	}
	if layers[0] != 840 {
		t.Errorf("conv layer PBS = %d, want 840 ([1,2,21,20])", layers[0])
	}
	for i := 1; i < 20; i++ {
		if layers[i] != 92 {
			t.Errorf("dense layer %d PBS = %d, want 92", i, layers[i])
		}
	}
	if nn.TotalPBS() != 840+19*92 {
		t.Errorf("total PBS = %d", nn.TotalPBS())
	}
}

func TestDeepNNDepthValidation(t *testing.T) {
	if _, err := NewDeepNN(1, tfhe.ParamsII); err == nil {
		t.Error("depth 1 should error")
	}
}

func TestNNParams(t *testing.T) {
	for _, n := range []int{1024, 2048, 4096} {
		p, err := NNParams(n)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if p.N != n {
			t.Errorf("NNParams(%d).N = %d", n, p.N)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("N=%d params invalid: %v", n, err)
		}
	}
	if _, err := NNParams(512); err == nil {
		t.Error("unsupported N should error")
	}
}

func TestFig7ModelsCount(t *testing.T) {
	models, err := Fig7Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 9 {
		t.Fatalf("Fig 7 has %d combinations, want 9", len(models))
	}
	// Deeper models must have strictly more PBS.
	if models[0].TotalPBS() >= models[8].TotalPBS() {
		t.Error("NN-100 should have more PBS than NN-20")
	}
}

func TestMicrobenchmarkValidation(t *testing.T) {
	if _, err := NewMicrobenchmark(tfhe.ParamsI, 0); err == nil {
		t.Error("count 0 should error")
	}
	mb, err := NewMicrobenchmark(tfhe.ParamsI, 100)
	if err != nil || mb.Count != 100 {
		t.Errorf("microbenchmark: %+v, %v", mb, err)
	}
}

func TestGenerateInputsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sk, _ := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	cts, msgs := GenerateInputs(rng, sk, 4, 16)
	if len(cts) != 16 || len(msgs) != 16 {
		t.Fatal("wrong count")
	}
	for i, ct := range cts {
		got := tfhe.DecodePBSMessage(sk.LWE.Phase(ct), 4)
		if got != msgs[i] {
			t.Errorf("input %d decrypts to %d, want %d", i, got, msgs[i])
		}
	}
}

func TestGateWorkloadExecutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	ev := tfhe.NewEvaluator(ek)
	g := NewGateWorkload(rng, 4)
	a := sk.EncryptBool(rng, true)
	b := sk.EncryptBool(rng, false)
	out := g.Execute(ev, a, b)

	// Compute the expected plaintext result.
	cur := true
	bb := false
	for _, kind := range g.Gates {
		switch kind {
		case "NAND":
			cur = !(cur && bb)
		case "AND":
			cur = cur && bb
		case "OR":
			cur = cur || bb
		case "XOR":
			cur = cur != bb
		case "NOR":
			cur = !(cur || bb)
		case "XNOR":
			cur = cur == bb
		}
	}
	if got := sk.DecryptBool(out); got != cur {
		t.Errorf("gate chain result %v, want %v (gates %v)", got, cur, g.Gates)
	}
	if ev.Counters.PBSCount != 4 {
		t.Errorf("expected 4 bootstraps, got %d", ev.Counters.PBSCount)
	}
}

func TestReLUTestVectorValue(t *testing.T) {
	space := 8
	// m=2 encodes signed -2 → ReLU → 0 → encoded space/2=4.
	if got := ReLUTestVectorValue(2, space); got != tfhe.EncodePBSMessage(4, space) {
		t.Error("negative input should clamp to zero")
	}
	// m=6 encodes signed +2 → stays 6.
	if got := ReLUTestVectorValue(6, space); got != tfhe.EncodePBSMessage(6, space) {
		t.Error("positive input should pass through")
	}
}
