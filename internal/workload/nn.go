package workload

import (
	"fmt"

	"repro/internal/sched"
)

// The functional mini-NN encoding: activations are small digits in
// {0..NNDigitMax} inside the NNSpace PBS message space, so a fan-in-2
// linear combination plus bias never leaves the padding-bit range.
const (
	// NNSpace is the PBS message space of the mini-NN activation LUT.
	NNSpace = 16
	// NNDigitMax is the largest activation value (sums stay < NNSpace).
	NNDigitMax = 3
)

// NNActivation is the activation table of the functional mini-NN: a
// shifted, clamped ReLU mapping any message in {0..NNSpace-1} back into
// {0..NNDigitMax}, so layer outputs compose.
func NNActivation(v int) int {
	v -= 2
	if v < 0 {
		v = 0
	}
	if v > NNDigitMax {
		v = NNDigitMax
	}
	return v
}

// MiniLayers scales the model's Fig-7 layer widths down by scale for
// functional testing: width = max(1, LayerPBS/scale). The layer/PBS
// shape (one wide conv layer, uniform dense layers) survives scaling.
func (nn DeepNN) MiniLayers(scale int) []int {
	if scale < 1 {
		scale = 1
	}
	layers := nn.LayerPBS()
	for i, pbs := range layers {
		w := pbs / scale
		if w < 1 {
			w = 1
		}
		layers[i] = w
	}
	return layers
}

// BuildNN appends a functional scaled-down deep-NN circuit: each layer
// maps the previous activations through `width` neurons, every neuron a
// free fan-in-2 linear combination followed by one PBS activation —
// exactly the linear-layer + PBS-ReLU structure of the Zama deep-NN
// workload, at a width the functional library can execute. All neurons
// of a layer are independent, so each layer is one scheduler level.
// Inputs must carry NNSpace-encoded messages in {0..NNDigitMax}.
func BuildNN(b *sched.Builder, inputs []sched.Wire, layers []int) ([]sched.Wire, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("workload: BuildNN needs at least one input")
	}
	prev := inputs
	for li, width := range layers {
		if width < 1 {
			return nil, fmt.Errorf("workload: layer %d has width %d", li, width)
		}
		cur := make([]sched.Wire, width)
		for k := range cur {
			a := prev[k%len(prev)]
			c := prev[(k+1)%len(prev)]
			s := b.Lin(0, sched.Term{W: a, C: 1}, sched.Term{W: c, C: 1})
			cur[k] = b.LUTFunc(s, NNSpace, NNActivation)
		}
		prev = cur
	}
	return prev, nil
}

// NNReference computes the plaintext outputs of BuildNN's circuit — the
// golden model the encrypted evaluation must match.
func NNReference(inputs []int, layers []int) []int {
	prev := inputs
	for _, width := range layers {
		cur := make([]int, width)
		for k := range cur {
			cur[k] = NNActivation(prev[k%len(prev)] + prev[(k+1)%len(prev)])
		}
		prev = cur
	}
	return prev
}
