package workload

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

func TestInferReferenceDomain(t *testing.T) {
	sweep := InferSweep()
	want := 1
	for i := 0; i < InferFeatures; i++ {
		want *= InferDigitMax + 1
	}
	if len(sweep) != want {
		t.Fatalf("sweep has %d vectors, want %d", len(sweep), want)
	}
	classes := make(map[int]bool)
	for _, v := range sweep {
		scores, err := InferReference(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) != InferClasses {
			t.Fatalf("%v: %d scores, want %d", v, len(scores), InferClasses)
		}
		for k, s := range scores {
			if s < 0 || s > InferDigitMax {
				t.Fatalf("%v: score %d = %d outside {0..%d}", v, k, s, InferDigitMax)
			}
		}
		classes[InferPredict(scores)] = true
	}
	// The model must actually discriminate: a constant predictor would
	// make the conformance sweep vacuous.
	if len(classes) != InferClasses {
		t.Fatalf("model predicts %d distinct classes over the sweep, want %d", len(classes), InferClasses)
	}
}

func TestInferReferenceValidation(t *testing.T) {
	if _, err := InferReference([]int{1}); err == nil {
		t.Error("short feature vector should error")
	}
	if _, err := InferReference([]int{0, 0, 0, InferDigitMax + 1}); err == nil {
		t.Error("out-of-range feature should error")
	}
	if _, err := BuildInferBatch(0); err == nil {
		t.Error("zero batch should error")
	}
	b := sched.NewBuilder()
	if _, err := BuildInfer(b, b.Inputs(1)); err == nil {
		t.Error("wrong feature wire count should error")
	}
}

// TestBuildInferAgainstReference executes a two-vector inference batch
// sequentially and through the streaming scheduler and checks both
// decode to the cleartext reference (and match each other bitwise).
func TestBuildInferAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	vecs := [][]int{{1, 3, 0, 2}, {3, 3, 1, 0}}

	circ, err := BuildInferBatch(len(vecs))
	if err != nil {
		t.Fatal(err)
	}
	if circ.NumInputs() != len(vecs)*InferFeatures {
		t.Fatalf("circuit has %d inputs, want %d", circ.NumInputs(), len(vecs)*InferFeatures)
	}
	var cts []tfhe.LWECiphertext
	for _, v := range vecs {
		for _, m := range v {
			cts = append(cts, sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, InferSpace), tfhe.ParamsTest.LWEStdDev))
		}
	}

	seq, err := sched.RunSequential(circ, tfhe.NewEvaluator(ek), cts)
	if err != nil {
		t.Fatal(err)
	}
	r := &sched.Runner{Stream: engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: 2})}
	got, err := r.Run(circ, sched.Config{Mode: sched.StreamOnly}, cts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vecs)*InferClasses {
		t.Fatalf("got %d outputs, want %d", len(got), len(vecs)*InferClasses)
	}
	for i, v := range vecs {
		want, err := InferReference(v)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			out := got[i*InferClasses+k]
			if !sameCT(out, seq[i*InferClasses+k]) {
				t.Errorf("vector %d score %d: scheduled differs from sequential", i, k)
			}
			if dec := tfhe.DecodePBSMessage(sk.LWE.Phase(out), InferSpace); dec != want[k] {
				t.Errorf("vector %d score %d decodes to %d, want %d", i, k, dec, want[k])
			}
		}
	}
}

// TestBuildInferSharesRotations pins the multi-value structure: the
// dense stage packs all InferClasses tables onto one blind rotation per
// pooled filter, so the schedule bootstraps strictly fewer times than a
// per-table synthesis would.
func TestBuildInferSharesRotations(t *testing.T) {
	circ, err := BuildInferBatch(1)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := sched.Compile(circ, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// conv: InferCells·InferFilters rotations; dense: InferFilters
	// multi-value rotations (not InferFilters·InferClasses); logit:
	// InferClasses rotations.
	want := InferCells*InferFilters + InferFilters + InferClasses
	if got := sch.Stats().TotalPBS; got != want {
		t.Fatalf("schedule uses %d blind rotations, want %d (dense stage must share via multi-value PBS)", got, want)
	}
}
