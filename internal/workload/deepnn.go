package workload

import (
	"fmt"

	"repro/internal/tfhe"
)

// DeepNN describes one Zama Deep-NN model (ref [34] of the paper): a
// 28×28 encrypted input, one 10×11 convolution producing [1,2,21,20], then
// dense layers of 92 neurons, with a PBS-evaluated ReLU after every layer.
type DeepNN struct {
	Name   string
	Depth  int // total layer count (NN-20 → 20)
	Params tfhe.Params
}

// Zama Deep-NN geometry constants from [34] as quoted in §VI-C.
const (
	InputPixels  = 28 * 28 // one LWE ciphertext per pixel
	ConvOutputs  = 1 * 2 * 21 * 20
	DenseNeurons = 92
)

// NewDeepNN builds the model descriptor. depth must be >= 2 (one conv +
// at least one dense layer).
func NewDeepNN(depth int, p tfhe.Params) (DeepNN, error) {
	if depth < 2 {
		return DeepNN{}, fmt.Errorf("workload: NN depth %d must be >= 2", depth)
	}
	return DeepNN{
		Name:   fmt.Sprintf("NN-%d", depth),
		Depth:  depth,
		Params: p,
	}, nil
}

// LayerPBS returns the PBS count of every layer in order: the convolution
// activates ConvOutputs ReLUs, each subsequent dense layer DenseNeurons.
func (nn DeepNN) LayerPBS() []int {
	layers := make([]int, nn.Depth)
	layers[0] = ConvOutputs
	for i := 1; i < nn.Depth; i++ {
		layers[i] = DenseNeurons
	}
	return layers
}

// TotalPBS returns the total programmable bootstrap count of one inference.
func (nn DeepNN) TotalPBS() int {
	total := 0
	for _, l := range nn.LayerPBS() {
		total += l
	}
	return total
}

// NNParams returns the TFHE parameters for the Fig 7 polynomial degrees.
// The paper reuses the parameters of [34] with N = 1024, 2048, 4096;
// N=1024 and N=2048 coincide with the paper's sets II and III, and N=4096
// extends set III (same gadget, doubled degree, adjusted n).
func NNParams(n int) (tfhe.Params, error) {
	switch n {
	case 1024:
		return tfhe.ParamsII, nil
	case 2048:
		return tfhe.ParamsIII, nil
	case 4096:
		p := tfhe.ParamsIII
		p.Name = "NN4096"
		p.N = 4096
		p.SmallN = 700
		p.GLWEStdDev = 1.0e-11
		return p, nil
	default:
		return tfhe.Params{}, fmt.Errorf("workload: no NN parameters for N=%d", n)
	}
}

// Fig7Models enumerates the nine (model, N) combinations of Fig 7.
func Fig7Models() ([]DeepNN, error) {
	var out []DeepNN
	for _, depth := range []int{20, 50, 100} {
		for _, n := range []int{1024, 2048, 4096} {
			p, err := NNParams(n)
			if err != nil {
				return nil, err
			}
			nn, err := NewDeepNN(depth, p)
			if err != nil {
				return nil, err
			}
			out = append(out, nn)
		}
	}
	return out, nil
}
