// Package poly implements the negacyclic polynomial ring
// Z_q[X]/(X^N + 1) with q = 2^32, the algebraic substrate of TFHE.
//
// Polynomials store N coefficients (N a power of two) as 32-bit torus
// elements. Multiplication by X^k is the "negacyclic rotation" performed by
// the Strix Rotator Unit; the signed gadget decomposition (Eq. 3 of the
// paper) is the work of the Decomposer Unit.
package poly
