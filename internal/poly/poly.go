package poly

import (
	"fmt"
	"math/rand"

	"repro/internal/torus"
)

// Poly is a degree-(N-1) polynomial over the discretized torus.
// The zero value is unusable; create instances with New.
type Poly struct {
	Coeffs []torus.Torus32
}

// New returns the zero polynomial of degree n-1. n must be a power of two.
func New(n int) Poly {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("poly: degree bound %d is not a power of two", n))
	}
	return Poly{Coeffs: make([]torus.Torus32, n)}
}

// N returns the number of coefficients.
func (p Poly) N() int { return len(p.Coeffs) }

// Copy returns a deep copy of p.
func (p Poly) Copy() Poly {
	q := Poly{Coeffs: make([]torus.Torus32, len(p.Coeffs))}
	copy(q.Coeffs, p.Coeffs)
	return q
}

// Clear sets all coefficients to zero.
func (p Poly) Clear() {
	for i := range p.Coeffs {
		p.Coeffs[i] = 0
	}
}

// Equal reports coefficient-wise equality.
func (p Poly) Equal(q Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		if p.Coeffs[i] != q.Coeffs[i] {
			return false
		}
	}
	return true
}

// AddTo sets dst = dst + p.
func AddTo(dst, p Poly) {
	for i := range dst.Coeffs {
		dst.Coeffs[i] += p.Coeffs[i]
	}
}

// SubTo sets dst = dst - p.
func SubTo(dst, p Poly) {
	for i := range dst.Coeffs {
		dst.Coeffs[i] -= p.Coeffs[i]
	}
}

// Add returns p + q.
func Add(p, q Poly) Poly {
	r := p.Copy()
	AddTo(r, q)
	return r
}

// Sub returns p - q.
func Sub(p, q Poly) Poly {
	r := p.Copy()
	SubTo(r, q)
	return r
}

// Neg returns -p.
func Neg(p Poly) Poly {
	r := New(p.N())
	for i, c := range p.Coeffs {
		r.Coeffs[i] = -c
	}
	return r
}

// MulByMonomial returns p * X^k in the negacyclic ring (X^N = -1).
// k may be any integer; it is reduced modulo 2N. This is the rotation
// performed by the Rotator Unit during blind rotation.
func MulByMonomial(p Poly, k int) Poly {
	n := p.N()
	r := New(n)
	MulByMonomialTo(r, p, k)
	return r
}

// MulByMonomialTo sets dst = p * X^k. dst must not alias p.
func MulByMonomialTo(dst, p Poly, k int) {
	n := p.N()
	k = ((k % (2 * n)) + 2*n) % (2 * n)
	neg := false
	if k >= n {
		k -= n
		neg = true
	}
	// coefficient i of p lands at position i+k; wrapping past N negates.
	for i := 0; i < n; i++ {
		j := i + k
		c := p.Coeffs[i]
		if j >= n {
			j -= n
			c = -c
		}
		if neg {
			c = -c
		}
		dst.Coeffs[j] = c
	}
}

// RotateSub returns p - p*X^k, the fused "rotate and subtract" of
// Algorithm 1 line 6 computed by the Rotator Unit. (Blind rotation
// accumulates tv ← tv + c_i·(tv·X^{a_i} − tv) via the external product; the
// rotator's contribution is the rotated difference.)
func RotateSub(p Poly, k int) Poly {
	r := MulByMonomial(p, k)
	SubTo(r, p)
	return r
}

// MulNaive returns the negacyclic product p*q where q has small signed
// integer coefficients (passed as int32). Quadratic; reference implementation
// used to validate the FFT path.
func MulNaive(p Poly, q []int32) Poly {
	n := p.N()
	if len(q) != n {
		panic("poly: MulNaive operand size mismatch")
	}
	r := New(n)
	for i := 0; i < n; i++ {
		qi := q[i]
		if qi == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			k := i + j
			term := torus.Torus32(int32(p.Coeffs[j]) * qi)
			if k >= n {
				r.Coeffs[k-n] -= term
			} else {
				r.Coeffs[k] += term
			}
		}
	}
	return r
}

// Uniform fills p with uniformly random torus coefficients.
func Uniform(rng *rand.Rand, p Poly) {
	for i := range p.Coeffs {
		p.Coeffs[i] = torus.Uniform32(rng)
	}
}

// MaxDistance returns the largest coefficient-wise torus distance between
// p and q, a measure of accumulated noise.
func MaxDistance(p, q Poly) float64 {
	var m float64
	for i := range p.Coeffs {
		if d := torus.Distance(p.Coeffs[i], q.Coeffs[i]); d > m {
			m = d
		}
	}
	return m
}
