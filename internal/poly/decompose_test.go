package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/torus"
)

func TestDecomposerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for baseLog*level > 32")
		}
	}()
	NewDecomposer(17, 2)
}

func TestDigitsRecomposeRoundedValue(t *testing.T) {
	// The digits must recompose exactly to the rounded coefficient for
	// every gadget configuration used by the paper's parameter sets.
	gadgets := []struct{ baseLog, level int }{{10, 2}, {8, 3}, {7, 3}, {4, 8}, {2, 8}}
	rng := rand.New(rand.NewSource(1))
	for _, g := range gadgets {
		d := NewDecomposer(g.baseLog, g.level)
		for i := 0; i < 1000; i++ {
			a := torus.Uniform32(rng)
			digits := d.Digits(a)
			if got, want := d.Recompose(digits), d.Round(a); got != want {
				t.Fatalf("gadget %+v: recompose(%#x) = %#x, want %#x", g, a, got, want)
			}
		}
	}
}

func TestDigitsBalancedRange(t *testing.T) {
	d := NewDecomposer(10, 2)
	half := int32(1) << 9
	f := func(a uint32) bool {
		for _, dg := range d.Digits(a) {
			if dg <= -half || dg > half {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEq3ErrorBound(t *testing.T) {
	// Eq. 3 of the paper: |a - sum digits·Q/B^i| <= Q/B^l (as torus
	// fraction, 1/B^l). Rounding gives the tighter 1/(2·B^l).
	d := NewDecomposer(10, 2)
	bound := d.MaxError() // 1/(2·B^l)
	f := func(a uint32) bool {
		rec := d.Recompose(d.Digits(a))
		return torus.Distance(a, rec) <= bound+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundIdempotent(t *testing.T) {
	d := NewDecomposer(8, 3)
	f := func(a uint32) bool {
		r := d.Round(a)
		return d.Round(r) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundFullPrecisionGadget(t *testing.T) {
	// baseLog*level == 32: rounding is the identity.
	d := NewDecomposer(4, 8)
	f := func(a uint32) bool { return d.Round(a) == a }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecomposePolyShape(t *testing.T) {
	d := NewDecomposer(10, 2)
	p := New(64)
	rng := rand.New(rand.NewSource(2))
	Uniform(rng, p)
	out := d.DecomposePoly(p)
	if len(out) != 2 || len(out[0]) != 64 || len(out[1]) != 64 {
		t.Fatalf("unexpected shape %dx%d", len(out), len(out[0]))
	}
}

func TestDecomposePolyMatchesScalar(t *testing.T) {
	d := NewDecomposer(8, 3)
	rng := rand.New(rand.NewSource(3))
	p := New(32)
	Uniform(rng, p)
	out := d.DecomposePoly(p)
	for j, c := range p.Coeffs {
		digits := d.Digits(c)
		for l := 0; l < d.Level; l++ {
			if out[l][j] != digits[l] {
				t.Fatalf("coeff %d level %d mismatch", j, l)
			}
		}
	}
}

func TestDecompositionLinearizesExternalProduct(t *testing.T) {
	// The core identity used by the external product: for any polynomial p
	// and small integer polynomial s, sum_l decomp_l(p) * (s · Q/B^(l+1))
	// ==  Round(p) * s in the ring. We verify via naive multiplication.
	n := 16
	d := NewDecomposer(10, 2)
	rng := rand.New(rand.NewSource(4))
	p := New(n)
	Uniform(rng, p)

	s := make([]int32, n)
	for i := range s {
		s[i] = int32(rng.Intn(3) - 1) // ternary test "key"
	}

	// Right side: round p first, then multiply.
	rounded := New(n)
	for i, c := range p.Coeffs {
		rounded.Coeffs[i] = d.Round(c)
	}
	want := MulNaive(rounded, s)

	// Left side: per-level products of digit polys against gadget-scaled s.
	decomp := d.DecomposePoly(p)
	got := New(n)
	for l := 0; l < d.Level; l++ {
		shift := uint(32 - d.BaseLog*(l+1))
		// gadget row: s scaled by Q/B^(l+1), as a torus polynomial.
		row := New(n)
		for i, si := range s {
			row.Coeffs[i] = torus.Torus32(si) << shift
		}
		AddTo(got, MulNaive(row, decomp[l]))
	}
	if !got.Equal(want) {
		t.Errorf("gadget linearization failed: max distance %v", MaxDistance(got, want))
	}
}

func TestMaxErrorValue(t *testing.T) {
	d := NewDecomposer(10, 2)
	want := 1.0 / float64(uint64(1)<<20) / 2.0
	if math.Abs(d.MaxError()-want) > 1e-18 {
		t.Errorf("MaxError = %v, want %v", d.MaxError(), want)
	}
}
