package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/torus"
)

func randPoly(rng *rand.Rand, n int) Poly {
	p := New(n)
	Uniform(rng, p)
	return p
}

func TestNewPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=3")
		}
	}()
	New(3)
}

func TestAddSubInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randPoly(rng, 64)
	q := randPoly(rng, 64)
	r := Sub(Add(p, q), q)
	if !r.Equal(p) {
		t.Error("(p+q)-q != p")
	}
}

func TestNegIsSubFromZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randPoly(rng, 32)
	z := New(32)
	if !Neg(p).Equal(Sub(z, p)) {
		t.Error("-p != 0-p")
	}
}

func TestMonomialRotateByZeroIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randPoly(rng, 128)
	if !MulByMonomial(p, 0).Equal(p) {
		t.Error("p*X^0 != p")
	}
}

func TestMonomialXNIsNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randPoly(rng, 128)
	if !MulByMonomial(p, 128).Equal(Neg(p)) {
		t.Error("p*X^N != -p")
	}
}

func TestMonomialX2NIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randPoly(rng, 128)
	if !MulByMonomial(p, 256).Equal(p) {
		t.Error("p*X^2N != p")
	}
}

func TestMonomialGroupLaw(t *testing.T) {
	// X^a * X^b == X^(a+b) for random a, b.
	rng := rand.New(rand.NewSource(6))
	p := randPoly(rng, 64)
	f := func(a, b uint8) bool {
		lhs := MulByMonomial(MulByMonomial(p, int(a)), int(b))
		rhs := MulByMonomial(p, int(a)+int(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMonomialNegativeExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randPoly(rng, 64)
	if !MulByMonomial(MulByMonomial(p, -5), 5).Equal(p) {
		t.Error("X^-5 then X^5 should be identity")
	}
}

func TestMonomialMatchesNaiveMul(t *testing.T) {
	// Multiplying by the monomial X^k must agree with the generic
	// negacyclic product against the indicator vector of X^k.
	rng := rand.New(rand.NewSource(8))
	n := 32
	p := randPoly(rng, n)
	for k := 0; k < n; k++ {
		mono := make([]int32, n)
		mono[k] = 1
		if !MulByMonomial(p, k).Equal(MulNaive(p, mono)) {
			t.Fatalf("monomial k=%d disagrees with naive product", k)
		}
	}
}

func TestRotateSub(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randPoly(rng, 64)
	want := Sub(MulByMonomial(p, 7), p)
	if !RotateSub(p, 7).Equal(want) {
		t.Error("RotateSub != p*X^k - p")
	}
}

func TestMulNaiveDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 32
	p := randPoly(rng, n)
	q := randPoly(rng, n)
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(rng.Intn(7) - 3)
	}
	lhs := MulNaive(Add(p, q), s)
	rhs := Add(MulNaive(p, s), MulNaive(q, s))
	if !lhs.Equal(rhs) {
		t.Error("(p+q)*s != p*s + q*s")
	}
}

func TestCopyIsDeep(t *testing.T) {
	p := New(8)
	q := p.Copy()
	q.Coeffs[0] = 1
	if p.Coeffs[0] != 0 {
		t.Error("Copy shares storage")
	}
}

func TestClear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randPoly(rng, 16)
	p.Clear()
	if !p.Equal(New(16)) {
		t.Error("Clear did not zero the polynomial")
	}
}

func TestMaxDistance(t *testing.T) {
	p := New(4)
	q := New(4)
	q.Coeffs[2] = torus.FromFloat(0.25)
	if d := MaxDistance(p, q); d < 0.24 || d > 0.26 {
		t.Errorf("MaxDistance = %v, want 0.25", d)
	}
}
