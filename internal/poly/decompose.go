package poly

import (
	"fmt"

	"repro/internal/torus"
)

// Decomposer performs the signed gadget decomposition of Eq. 3 in the paper:
// a torus coefficient a is approximated by sum_{i=1..l} d_i · Q/B^i with
// digits d_i in the balanced range (-B/2, B/2], leaving a rounding error of
// at most Q/(2·B^l). B = 2^BaseLog and l = Level are the TFHE decomposition
// parameters (lb in the paper).
//
// The hardware Decomposer Unit implements exactly this in two steps —
// rounding then digit extraction via masking/shifting/adding (§V-B, Fig 6) —
// and our implementation mirrors that structure so that the functional
// library and the cycle model describe the same computation.
type Decomposer struct {
	BaseLog int // log2 of the decomposition base B
	Level   int // number of levels l (lb)
}

// NewDecomposer validates and returns a decomposer.
func NewDecomposer(baseLog, level int) Decomposer {
	if baseLog <= 0 || level <= 0 || baseLog*level > 32 {
		panic(fmt.Sprintf("poly: invalid gadget (baseLog=%d, level=%d)", baseLog, level))
	}
	return Decomposer{BaseLog: baseLog, Level: level}
}

// Round returns a rounded to the nearest multiple of Q/B^l = 2^(32-BaseLog·Level).
// This is the "rounding step" of the hardware decomposer.
func (d Decomposer) Round(a torus.Torus32) torus.Torus32 {
	shift := uint(32 - d.BaseLog*d.Level)
	if shift == 0 {
		return a
	}
	half := torus.Torus32(1) << (shift - 1)
	return (a + half) >> shift << shift
}

// Digits decomposes a single coefficient into Level signed digits, most
// significant first, each in (-B/2, B/2]. The digits exactly recompose the
// rounded value: sum_i digits[i] · 2^(32 - BaseLog·(i+1)) == Round(a).
func (d Decomposer) Digits(a torus.Torus32) []int32 {
	out := make([]int32, d.Level)
	d.DigitsTo(out, a)
	return out
}

// DigitsTo is Digits without allocation; out must have length Level.
func (d Decomposer) DigitsTo(out []int32, a torus.Torus32) {
	b := uint32(1) << uint(d.BaseLog)
	mask := b - 1
	half := b >> 1

	r := d.Round(a)
	// Extraction step: walk digits from least significant to most
	// significant, carrying +1 whenever a digit exceeds B/2 so that every
	// digit lands in the balanced range (-B/2, B/2].
	carry := uint32(0)
	for i := d.Level - 1; i >= 0; i-- {
		shift := uint(32 - d.BaseLog*(i+1))
		digit := (r>>shift)&mask + carry
		carry = 0
		if digit > half {
			digit -= b // becomes negative in two's complement
			carry = 1
		}
		out[i] = int32(digit)
	}
	// A final carry out of the most significant digit folds into the torus
	// wraparound (adding 1 to the integer part is a no-op mod 1) and is
	// dropped, exactly as in the reference TFHE libraries.
}

// Recompose inverts Digits: returns sum_i digits[i] · Q/B^(i+1).
func (d Decomposer) Recompose(digits []int32) torus.Torus32 {
	var acc torus.Torus32
	for i, dg := range digits {
		shift := uint(32 - d.BaseLog*(i+1))
		acc += torus.Torus32(dg) << shift
	}
	return acc
}

// DecomposePoly decomposes every coefficient of p, returning Level digit
// vectors (each of length N): result[lvl][j] is digit lvl of coefficient j.
// This is the stream the Decomposer Unit feeds to the FFT units.
func (d Decomposer) DecomposePoly(p Poly) [][]int32 {
	n := p.N()
	out := make([][]int32, d.Level)
	for l := range out {
		out[l] = make([]int32, n)
	}
	d.DecomposePolyTo(out, p)
	return out
}

// DecomposePolyTo is DecomposePoly into caller-provided storage. It does
// not allocate: NewDecomposer caps Level at 32, so the per-coefficient
// digit scratch fits on the stack (a hand-built larger decomposer falls
// back to the heap).
func (d Decomposer) DecomposePolyTo(out [][]int32, p Poly) {
	if len(out) != d.Level {
		panic("poly: DecomposePolyTo level mismatch")
	}
	var stack [32]int32
	digits := stack[:]
	if d.Level > len(digits) {
		digits = make([]int32, d.Level)
	}
	digits = digits[:d.Level]
	for j, c := range p.Coeffs {
		d.DigitsTo(digits, c)
		for l := 0; l < d.Level; l++ {
			out[l][j] = digits[l]
		}
	}
}

// MaxError returns the worst-case rounding error of the gadget, Q/(2·B^l)
// expressed as a torus fraction. Eq. 3 guarantees decomposition error is
// bounded by twice this (the ∞-norm bound Q/B^l).
func (d Decomposer) MaxError() float64 {
	return 1.0 / float64(uint64(1)<<uint(d.BaseLog*d.Level)) / 2.0
}
