package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/workload"
)

// fixture is shared by every test in the package: one key set, eight live
// backends (keygen plus service registration is the expensive part).
var fixture *Fixture

func TestMain(m *testing.M) {
	f, err := NewFixture(2026)
	if err != nil {
		panic(err)
	}
	fixture = f
	defer f.Close()
	m.Run()
}

// encTestBools returns encrypted booleans and their plaintexts.
func encTestBools(seed int64, n int) ([]tfhe.LWECiphertext, []bool) {
	rng := rand.New(rand.NewSource(seed))
	cts := make([]tfhe.LWECiphertext, n)
	pts := make([]bool, n)
	for i := range cts {
		pts[i] = rng.Intn(2) == 1
		cts[i] = fixture.SK.EncryptBool(rng, pts[i])
	}
	return cts, pts
}

// encTestInts returns encrypted PBS-encoded integers and their plaintexts.
func encTestInts(seed int64, n, space int) ([]tfhe.LWECiphertext, []int) {
	rng := rand.New(rand.NewSource(seed))
	cts := make([]tfhe.LWECiphertext, n)
	pts := make([]int, n)
	for i := range cts {
		pts[i] = rng.Intn(space)
		cts[i] = fixture.SK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(pts[i], space), tfhe.ParamsTest.LWEStdDev)
	}
	return cts, pts
}

// requireBools asserts each ciphertext decrypts to the expected bit —
// the conformance relation for backends that do not promise bitwise
// outputs (Backend.Bitwise() == false).
func requireBools(t *testing.T, backend string, got []tfhe.LWECiphertext, want []bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", backend, len(got), len(want))
	}
	for i := range want {
		if v := fixture.SK.DecryptBool(got[i]); v != want[i] {
			t.Fatalf("%s: output %d decrypts to %v, want %v", backend, i, v, want[i])
		}
	}
}

// requireInts asserts each ciphertext decodes to the expected message.
func requireInts(t *testing.T, backend string, got []tfhe.LWECiphertext, space int, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", backend, len(got), len(want))
	}
	for i := range want {
		if v := tfhe.DecodePBSMessage(fixture.SK.LWE.Phase(got[i]), space); v != want[i] {
			t.Fatalf("%s: output %d decodes to %d, want %d", backend, i, v, want[i])
		}
	}
}

// requireSame asserts bitwise equality against the sequential reference.
func requireSame(t *testing.T, backend string, got, want []tfhe.LWECiphertext) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", backend, len(got), len(want))
	}
	for i := range want {
		if !EqualLWE(got[i], want[i]) {
			t.Fatalf("%s: output %d is not bitwise identical to the sequential reference", backend, i)
		}
	}
}

// TestGatesConform runs every gate op through every backend and asserts
// bitwise equality with the sequential reference (whose outputs are
// themselves checked against the plaintext truth table first).
func TestGatesConform(t *testing.T) {
	a, pa := encTestBools(101, 4)
	b, pb := encTestBools(102, 4)
	for _, op := range []engine.GateOp{engine.NAND, engine.AND, engine.OR, engine.NOR, engine.XOR, engine.XNOR, engine.NOT} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			operandB := b
			if op == engine.NOT {
				operandB = nil
			}
			ref := fixture.Backends()[0]
			want, err := ref.Gate(op, a, operandB)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				wantBit := op.Eval(pa[i], pb[i])
				if got := fixture.SK.DecryptBool(want[i]); got != wantBit {
					t.Fatalf("sequential %s item %d decrypts to %v, want %v", op, i, got, wantBit)
				}
			}
			for _, be := range fixture.Backends()[1:] {
				got, err := be.Gate(op, a, operandB)
				if err != nil {
					t.Fatalf("%s: %v", be.Name(), err)
				}
				if be.Bitwise() {
					requireSame(t, be.Name(), got, want)
					continue
				}
				bits := make([]bool, len(want))
				for i := range bits {
					bits[i] = op.Eval(pa[i], pb[i])
				}
				requireBools(t, be.Name(), got, bits)
			}
		})
	}
}

// TestLUTConform runs lookup tables through every backend.
func TestLUTConform(t *testing.T) {
	for _, tc := range []struct {
		name  string
		space int
		table []int
	}{
		{"space4-square", 4, []int{0, 1, 0, 1}},
		{"space8-affine", 8, []int{3, 4, 5, 6, 7, 0, 1, 2}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cts, pts := encTestInts(103, 4, tc.space)
			ref := fixture.Backends()[0]
			want, err := ref.LUT(cts, tc.space, tc.table)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got := tfhe.DecodePBSMessage(fixture.SK.LWE.Phase(want[i]), tc.space); got != tc.table[pts[i]] {
					t.Fatalf("sequential LUT item %d decodes to %d, want %d", i, got, tc.table[pts[i]])
				}
			}
			for _, be := range fixture.Backends()[1:] {
				got, err := be.LUT(cts, tc.space, tc.table)
				if err != nil {
					t.Fatalf("%s: %v", be.Name(), err)
				}
				if be.Bitwise() {
					requireSame(t, be.Name(), got, want)
					continue
				}
				ints := make([]int, len(want))
				for i := range ints {
					ints[i] = tc.table[pts[i]]
				}
				requireInts(t, be.Name(), got, tc.space, ints)
			}
		})
	}
}

// TestMultiLUTConform runs multi-value lookups (including the k=1
// degeneration) through every backend.
func TestMultiLUTConform(t *testing.T) {
	for _, tc := range []struct {
		name   string
		space  int
		tables [][]int
	}{
		{"space4-k1", 4, [][]int{{1, 2, 3, 0}}},
		{"space4-k2", 4, [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}},
		{"space4-k4", 4, [][]int{{0, 0, 1, 1}, {1, 3, 1, 3}, {2, 2, 0, 0}, {3, 1, 2, 0}}},
		{"space8-k3", 8, [][]int{
			{0, 1, 2, 3, 4, 5, 6, 7},
			{7, 6, 5, 4, 3, 2, 1, 0},
			{1, 1, 2, 2, 3, 3, 4, 4},
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cts, pts := encTestInts(104, 3, tc.space)
			ref := fixture.Backends()[0]
			want, err := ref.MultiLUT(cts, tc.space, tc.tables)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				for j, table := range tc.tables {
					if got := tfhe.DecodePBSMessage(fixture.SK.LWE.Phase(want[i][j]), tc.space); got != table[pts[i]] {
						t.Fatalf("sequential multi-LUT [%d][%d] decodes to %d, want %d", i, j, got, table[pts[i]])
					}
				}
			}
			for _, be := range fixture.Backends()[1:] {
				got, err := be.MultiLUT(cts, tc.space, tc.tables)
				if err != nil {
					t.Fatalf("%s: %v", be.Name(), err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s: %d output groups, want %d", be.Name(), len(got), len(want))
				}
				for i := range want {
					if be.Bitwise() {
						requireSame(t, be.Name(), got[i], want[i])
						continue
					}
					ints := make([]int, len(tc.tables))
					for j, table := range tc.tables {
						ints[j] = table[pts[i]]
					}
					requireInts(t, be.Name(), got[i], tc.space, ints)
				}
			}
		})
	}
}

// conformanceCircuit builds a mixed circuit touching every node kind:
// boolean gates, a free linear NOT, an explicit multi-value group, and a
// downstream LUT consuming one of its outputs.
func conformanceCircuit(t *testing.T) (*sched.Circuit, []tfhe.LWECiphertext) {
	t.Helper()
	const space = 4
	b := sched.NewBuilder()
	x, y := b.Input(), b.Input()
	v := b.Input() // integer input for the LUT side
	s := b.Gate(engine.XOR, x, y)
	c := b.Gate(engine.AND, x, y)
	b.Output(b.Gate(engine.NAND, s, c))
	b.Output(b.Not(c))
	ws := b.MultiLUT(v, space, [][]int{{1, 2, 3, 0}, {0, 0, 2, 2}, {3, 3, 3, 3}})
	b.Output(ws...)
	b.Output(b.LUT(ws[0], space, []int{3, 2, 1, 0}))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(105))
	inputs := []tfhe.LWECiphertext{
		fixture.SK.EncryptBool(rng, true),
		fixture.SK.EncryptBool(rng, false),
		fixture.SK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(2, space), tfhe.ParamsTest.LWEStdDev),
	}
	return circ, inputs
}

// TestCircuitConform runs the mixed circuit through every backend.
func TestCircuitConform(t *testing.T) {
	circ, inputs := conformanceCircuit(t)
	ref := fixture.Backends()[0]
	want, err := ref.Circuit(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Plaintext reference: x=1 y=0 v=2.
	// s = XOR = 1, c = AND = 0, NAND(s,c) = 1, NOT(c) = 1,
	// mlut(2) = {3, 2, 3}, LUT[3..0](3) = 0.
	wantBits := []bool{true, true}
	for i, wb := range wantBits {
		if got := fixture.SK.DecryptBool(want[i]); got != wb {
			t.Fatalf("sequential circuit output %d decrypts to %v, want %v", i, got, wb)
		}
	}
	wantInts := []int{3, 2, 3, 0}
	for i, wi := range wantInts {
		if got := tfhe.DecodePBSMessage(fixture.SK.LWE.Phase(want[2+i]), 4); got != wi {
			t.Fatalf("sequential circuit output %d decodes to %d, want %d", 2+i, got, wi)
		}
	}
	for _, be := range fixture.Backends()[1:] {
		got, err := be.Circuit(circ, inputs)
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		if be.Bitwise() {
			requireSame(t, be.Name(), got, want)
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d outputs, want %d", be.Name(), len(got), len(want))
		}
		requireBools(t, be.Name(), got[:2], wantBits)
		requireInts(t, be.Name(), got[2:], 4, wantInts)
	}
}

// encInferVecs encrypts cleartext feature vectors vector-major in the
// inference encoding and returns the per-vector reference scores.
func encInferVecs(t *testing.T, seed int64, vecs [][]int) ([]tfhe.LWECiphertext, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var cts []tfhe.LWECiphertext
	scores := make([][]int, len(vecs))
	for i, v := range vecs {
		want, err := workload.InferReference(v)
		if err != nil {
			t.Fatal(err)
		}
		scores[i] = want
		for _, m := range v {
			cts = append(cts, fixture.SK.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, workload.InferSpace), tfhe.ParamsTest.LWEStdDev))
		}
	}
	return cts, scores
}

// TestInferConform runs a small batch of feature vectors through every
// backend's Infer: bitwise against the sequential reference where the
// backend promises it, and always decode-identical to the quantized
// cleartext reference.
func TestInferConform(t *testing.T) {
	vecs := [][]int{{0, 1, 2, 3}, {3, 3, 0, 0}, {2, 0, 1, 2}}
	cts, scores := encInferVecs(t, 106, vecs)
	ref := fixture.Backends()[0]
	want, err := ref.Infer(cts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(vecs) {
		t.Fatalf("sequential: %d score groups, want %d", len(want), len(vecs))
	}
	for i := range want {
		requireInts(t, "sequential", want[i], workload.InferSpace, scores[i])
	}
	for _, be := range fixture.Backends()[1:] {
		got, err := be.Infer(cts)
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d score groups, want %d", be.Name(), len(got), len(want))
		}
		for i := range want {
			if be.Bitwise() {
				requireSame(t, be.Name(), got[i], want[i])
			}
			requireInts(t, be.Name(), got[i], workload.InferSpace, scores[i])
		}
	}
}

// TestInferSweepService is the service-scenario acceptance test: the
// full input sweep — every feature vector the model admits — runs as
// one encrypted batch end to end through a single server (with the
// optimizer pass pipeline, via the encrypted-inference backend) and
// through the routed cluster, and every prediction decodes identical
// to the quantized cleartext reference.
func TestInferSweepService(t *testing.T) {
	sweep := workload.InferSweep()
	cts, scores := encInferVecs(t, 107, sweep)
	for _, name := range []string{"encrypted-inference", "routed-cluster"} {
		var be Backend
		for _, b := range fixture.Backends() {
			if b.Name() == name {
				be = b
			}
		}
		if be == nil {
			t.Fatalf("backend %q not in fixture", name)
		}
		got, err := be.Infer(cts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(sweep) {
			t.Fatalf("%s: %d score groups, want %d", name, len(got), len(sweep))
		}
		for i := range sweep {
			requireInts(t, name, got[i], workload.InferSpace, scores[i])
			dec := make([]int, workload.InferClasses)
			for k := range dec {
				dec[k] = tfhe.DecodePBSMessage(fixture.SK.LWE.Phase(got[i][k]), workload.InferSpace)
			}
			if workload.InferPredict(dec) != workload.InferPredict(scores[i]) {
				t.Fatalf("%s: vector %v predicts class %d, reference %d", name, sweep[i], workload.InferPredict(dec), workload.InferPredict(scores[i]))
			}
		}
	}
}

// TestBackendNames pins that the ten backends are present, uniquely
// named, led by the sequential reference, and that exactly the two
// optimizing backends relax the bitwise promise. The reference-kernel
// backend promises bitwise equality while running the pure-Go kernels,
// which is what holds the fast path to the reference; the routed
// cluster promises the hop through the routing tier is bitwise
// invisible; encrypted-inference rides last and runs the optimizer
// pass pipeline server-side, so its contract is decode identity.
func TestBackendNames(t *testing.T) {
	want := []string{"sequential", "batch", "streaming", "scheduled", "server", "restored-server", "optimized-scheduled", "reference-kernel", "routed-cluster", "encrypted-inference"}
	nonBitwise := map[string]bool{"optimized-scheduled": true, "encrypted-inference": true}
	bes := fixture.Backends()
	if len(bes) != len(want) {
		t.Fatalf("%d backends, want %d", len(bes), len(want))
	}
	for i, be := range bes {
		if be.Name() != want[i] {
			t.Fatalf("backend %d named %q, want %q", i, be.Name(), want[i])
		}
		if wantBitwise := !nonBitwise[be.Name()]; be.Bitwise() != wantBitwise {
			t.Fatalf("backend %q reports Bitwise()=%v, want %v", be.Name(), be.Bitwise(), wantBitwise)
		}
	}
}

// TestEqualLWE covers the conformance relation itself.
func TestEqualLWE(t *testing.T) {
	a := tfhe.NewLWECiphertext(4)
	b := tfhe.NewLWECiphertext(4)
	if !EqualLWE(a, b) {
		t.Fatal("equal ciphertexts reported unequal")
	}
	b.B = 1
	if EqualLWE(a, b) {
		t.Fatal("differing bodies reported equal")
	}
	b = tfhe.NewLWECiphertext(4)
	b.A[2] = 1
	if EqualLWE(a, b) {
		t.Fatal("differing masks reported equal")
	}
	if EqualLWE(a, tfhe.NewLWECiphertext(5)) {
		t.Fatal("differing dimensions reported equal")
	}
}

// TestFixtureClose covers the service teardown path on a throwaway
// fixture (the shared one closes in TestMain, after coverage is taken).
func TestFixtureClose(t *testing.T) {
	f, err := NewFixture(7)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Backends()[4].(serverBackend).cl.Stats(); err == nil {
		t.Fatal("service still reachable after Close")
	}
}
