package conformance

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"

	"repro/internal/engine"
	"repro/internal/fft"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/tfhe"
	"repro/internal/workload"
)

// Backend is one execution path for the public operation surface. Every
// method takes dimension-n inputs and returns dimension-n outputs (the
// full PBS + keyswitch pipeline per item), in input order.
type Backend interface {
	// Name identifies the backend in failure messages.
	Name() string
	// Bitwise reports the conformance relation the backend promises
	// against the sequential reference: bitwise-identical ciphertexts,
	// or (for backends that re-synthesize bootstraps, like the
	// optimizing scheduler) identical decoded plaintexts only.
	Bitwise() bool
	// Gate evaluates out[i] = op(a[i], b[i]); b is nil for the unary NOT.
	Gate(op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error)
	// LUT applies table (message space space) to every ciphertext.
	LUT(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error)
	// MultiLUT applies the k tables to every ciphertext via multi-value
	// PBS: out[i][j] is tables[j] applied to cts[i].
	MultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error)
	// Circuit executes a built circuit over the inputs.
	Circuit(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error)
	// Infer runs the built-in cellCNN-style inference model over a batch
	// of encrypted feature vectors (vector-major, workload.InferFeatures
	// ciphertexts each); out[i] is inference i's workload.InferClasses
	// encrypted class scores.
	Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error)
}

// inferViaCircuit implements Infer for backends whose service surface is
// a circuit executor: build the model for the batch, run it, and regroup
// the flat scores per vector. Service backends instead ship the infer
// envelope, exercising the server-built model path.
func inferViaCircuit(be Backend, features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	if len(features) == 0 || len(features)%workload.InferFeatures != 0 {
		return nil, fmt.Errorf("conformance: %d feature ciphertexts is not a multiple of %d", len(features), workload.InferFeatures)
	}
	circ, err := workload.BuildInferBatch(len(features) / workload.InferFeatures)
	if err != nil {
		return nil, err
	}
	flat, err := be.Circuit(circ, features)
	if err != nil {
		return nil, err
	}
	out := make([][]tfhe.LWECiphertext, 0, len(flat)/workload.InferClasses)
	for i := 0; i < len(flat); i += workload.InferClasses {
		out = append(out, flat[i:i+workload.InferClasses])
	}
	return out, nil
}

// EqualLWE reports whether two ciphertexts are bitwise identical — the
// conformance relation (tfhe.EqualLWE, re-exposed where the suite states
// its contract).
func EqualLWE(a, b tfhe.LWECiphertext) bool {
	return tfhe.EqualLWE(a, b)
}

// Fixture bundles one deterministic key set with every backend wired to
// it, including a live in-process gate service, a second service
// restored from a drained durable store, and a two-node routed cluster.
// Close releases every service, the router, and the store directory.
type Fixture struct {
	SK tfhe.SecretKeys
	EK tfhe.EvaluationKeys

	backends []Backend
	ts       *httptest.Server
	tsRest   *httptest.Server
	dir      string

	rt       *router.Router
	tsRouter *httptest.Server
	tsNodes  [2]*httptest.Server
}

// NewFixture generates keys for the test parameter set from seed and
// stands up every backend over them.
func NewFixture(seed int64) (*Fixture, error) {
	rng := rand.New(rand.NewSource(seed))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	f := &Fixture{SK: sk, EK: ek}

	srv := server.New(server.Config{Stream: engine.StreamConfig{RotateWorkers: 2}})
	f.ts = httptest.NewServer(srv.Handler())
	cl := server.Dial(f.ts.URL, "conformance")
	if err := cl.RegisterKey(ek); err != nil {
		f.Close()
		return nil, err
	}

	// Restored-server backend: the same keys registered against a
	// durable server, drained to disk, and served by a fresh server over
	// the same directory — the strixserv -data restart path. Its session
	// is rebuilt from persisted bytes, never re-registered, so this
	// backend pins crash recovery to the bitwise contract.
	dir, err := os.MkdirTemp("", "strix-conformance-")
	if err != nil {
		f.Close()
		return nil, err
	}
	f.dir = dir
	pre, err := server.Open(server.Config{DataDir: dir, Stream: engine.StreamConfig{RotateWorkers: 2}})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := pre.RegisterKey("conformance", ek); err != nil {
		f.Close()
		return nil, err
	}
	if err := pre.Drain(); err != nil {
		f.Close()
		return nil, err
	}
	restored, err := server.Open(server.Config{DataDir: dir, Stream: engine.StreamConfig{RotateWorkers: 2}})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.tsRest = httptest.NewServer(restored.Handler())
	clRest := server.Dial(f.tsRest.URL, "conformance")

	// Routed-cluster backend: the same keys registered through a router
	// fronting two fresh nodes. The session pins to its rendezvous home
	// and every envelope takes the extra routed hop, so this backend pins
	// the routing tier — shard pick, forward, response passthrough — to
	// the bitwise contract.
	for i := range f.tsNodes {
		node := server.New(server.Config{Stream: engine.StreamConfig{RotateWorkers: 2}})
		f.tsNodes[i] = httptest.NewServer(node.Handler())
	}
	rt, err := router.New(router.Config{Backends: []string{f.tsNodes[0].URL, f.tsNodes[1].URL}})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.rt = rt
	f.tsRouter = httptest.NewServer(rt.Handler())
	clRouted := server.Dial(f.tsRouter.URL, "conformance")
	if err := clRouted.RegisterKey(ek); err != nil {
		f.Close()
		return nil, err
	}

	batch := engine.New(ek, engine.Config{Workers: 2, ChunkSize: 1})
	stream := engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: 2, KSWorkers: 2})
	runner := &sched.Runner{Batch: batch, Stream: stream}
	// The optimized backend runs the full pass pipeline, with the
	// multi-value budget bound to the fixture's parameter set so packing
	// stays inside space·k ≤ N.
	opt := sched.OptAll()
	opt.MultiValueBudget = tfhe.ParamsTest.N
	f.backends = []Backend{
		seqBackend{ev: tfhe.NewEvaluator(ek)},
		batchBackend{eng: batch},
		streamBackend{eng: stream},
		schedBackend{r: runner},
		serverBackend{cl: cl},
		restoredBackend{serverBackend{cl: clRest}},
		optimizedBackend{schedBackend{r: runner, cfg: sched.Config{Opt: opt}}},
		referenceKernelBackend{seqBackend{ev: tfhe.NewEvaluator(ek)}},
		routedBackend{serverBackend{cl: clRouted}},
		inferBackend{serverBackend{cl: cl}},
	}
	return f, nil
}

// Backends returns the ten backends; index 0 is the sequential
// reference every other backend must match — bitwise when the backend's
// Bitwise() promise holds, by decoded plaintext otherwise.
func (f *Fixture) Backends() []Backend { return f.backends }

// Close shuts every in-process gate service and the router down and
// removes the durable store directory.
func (f *Fixture) Close() {
	if f.ts != nil {
		f.ts.Close()
	}
	if f.tsRest != nil {
		f.tsRest.Close()
	}
	if f.rt != nil {
		f.rt.Close()
	}
	if f.tsRouter != nil {
		f.tsRouter.Close()
	}
	for _, ts := range f.tsNodes {
		if ts != nil {
			ts.Close()
		}
	}
	if f.dir != "" {
		os.RemoveAll(f.dir)
	}
}

// seqBackend is the sequential evaluator — the bitwise reference.
type seqBackend struct {
	ev *tfhe.Evaluator
}

func (s seqBackend) Name() string { return "sequential" }

func (s seqBackend) Bitwise() bool { return true }

func (s seqBackend) Gate(op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	out := make([]tfhe.LWECiphertext, len(a))
	for i := range a {
		switch op {
		case engine.NAND:
			out[i] = s.ev.NAND(a[i], b[i])
		case engine.AND:
			out[i] = s.ev.AND(a[i], b[i])
		case engine.OR:
			out[i] = s.ev.OR(a[i], b[i])
		case engine.NOR:
			out[i] = s.ev.NOR(a[i], b[i])
		case engine.XOR:
			out[i] = s.ev.XOR(a[i], b[i])
		case engine.XNOR:
			out[i] = s.ev.XNOR(a[i], b[i])
		case engine.NOT:
			out[i] = s.ev.NOT(a[i])
		default:
			return nil, fmt.Errorf("conformance: unknown gate %d", int(op))
		}
	}
	return out, nil
}

func (s seqBackend) LUT(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	out := make([]tfhe.LWECiphertext, len(cts))
	for i, ct := range cts {
		out[i] = s.ev.EvalLUTKS(ct, space, func(m int) int { return table[m] })
	}
	return out, nil
}

func (s seqBackend) MultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	out := make([][]tfhe.LWECiphertext, len(cts))
	for i, ct := range cts {
		out[i] = s.ev.EvalMultiLUTKS(ct, space, tfhe.TableFuncs(tables))
	}
	return out, nil
}

func (s seqBackend) Circuit(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return sched.RunSequential(circ, s.ev, inputs)
}

func (s seqBackend) Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	return inferViaCircuit(s, features)
}

// batchBackend is the flat worker-pool engine.
type batchBackend struct {
	eng *engine.Engine
}

func (b batchBackend) Name() string { return "batch" }

func (b batchBackend) Bitwise() bool { return true }

func (b batchBackend) Gate(op engine.GateOp, a, bb []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return b.eng.BatchGate(op, a, bb)
}

func (b batchBackend) LUT(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	return b.eng.BatchEvalLUT(cts, space, func(m int) int { return table[m] }), nil
}

func (b batchBackend) MultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	return b.eng.BatchMultiLUT(cts, space, tfhe.TableFuncs(tables))
}

func (b batchBackend) Circuit(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	r := &sched.Runner{Batch: b.eng}
	return r.Run(circ, sched.Config{Mode: sched.BatchOnly}, inputs)
}

func (b batchBackend) Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	return inferViaCircuit(b, features)
}

// streamBackend is the staged pipeline engine.
type streamBackend struct {
	eng *engine.StreamingEngine
}

func (s streamBackend) Name() string { return "streaming" }

func (s streamBackend) Bitwise() bool { return true }

func (s streamBackend) Gate(op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return s.eng.StreamGate(op, a, b)
}

func (s streamBackend) LUT(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	return s.eng.StreamLUT(cts, space, func(m int) int { return table[m] }), nil
}

func (s streamBackend) MultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	return s.eng.StreamMultiLUT(cts, space, tfhe.TableFuncs(tables))
}

func (s streamBackend) Circuit(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	r := &sched.Runner{Stream: s.eng}
	return r.Run(circ, sched.Config{Mode: sched.StreamOnly}, inputs)
}

func (s streamBackend) Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	return inferViaCircuit(s, features)
}

// schedBackend reaches every operation through the levelizing scheduler:
// each call is built as a one-level circuit, compiled, and dispatched to
// the engines by the cost model — the path whole workloads take.
type schedBackend struct {
	r *sched.Runner
	// cfg is the compile configuration every operation is scheduled
	// under; the zero value compiles circuits exactly as built.
	cfg sched.Config
}

func (s schedBackend) Name() string { return "scheduled" }

func (s schedBackend) Bitwise() bool { return true }

func (s schedBackend) Gate(op engine.GateOp, a, bs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	b := sched.NewBuilder()
	inputs := make([]tfhe.LWECiphertext, 0, 2*len(a))
	for i := range a {
		aw := b.Input()
		inputs = append(inputs, a[i])
		bw := sched.Wire(-1)
		if op != engine.NOT {
			bw = b.Input()
			inputs = append(inputs, bs[i])
		}
		b.Output(b.Gate(op, aw, bw))
	}
	circ, err := b.Build()
	if err != nil {
		return nil, err
	}
	return s.r.Run(circ, s.cfg, inputs)
}

func (s schedBackend) LUT(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	b := sched.NewBuilder()
	for range cts {
		b.Output(b.LUT(b.Input(), space, table))
	}
	circ, err := b.Build()
	if err != nil {
		return nil, err
	}
	return s.r.Run(circ, s.cfg, cts)
}

func (s schedBackend) MultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	b := sched.NewBuilder()
	for range cts {
		b.Output(b.MultiLUT(b.Input(), space, tables)...)
	}
	circ, err := b.Build()
	if err != nil {
		return nil, err
	}
	flat, err := s.r.Run(circ, s.cfg, cts)
	if err != nil {
		return nil, err
	}
	k := len(tables)
	out := make([][]tfhe.LWECiphertext, len(cts))
	for i := range out {
		out[i] = flat[i*k : (i+1)*k]
	}
	return out, nil
}

func (s schedBackend) Circuit(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return s.r.Run(circ, s.cfg, inputs)
}

func (s schedBackend) Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	return inferViaCircuit(s, features)
}

// serverBackend reaches every operation through the gate service's HTTP
// API: wire codec, JSON framing, session lookup, and the group-commit
// coalescer all sit between the call and the engine.
type serverBackend struct {
	cl *server.Client
}

func (s serverBackend) Name() string { return "server" }

func (s serverBackend) Bitwise() bool { return true }

func (s serverBackend) Gate(op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return s.cl.GateBatch(op, a, b)
}

func (s serverBackend) LUT(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	return s.cl.LUTBatch(cts, space, table)
}

func (s serverBackend) MultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	return s.cl.MultiLUTBatch(cts, space, tables)
}

func (s serverBackend) Circuit(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return s.cl.CircuitBatch(circ, inputs)
}

func (s serverBackend) Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	return s.cl.Infer(features, server.EvalOpts{})
}

// restoredBackend is the server backend over a service whose session was
// recovered from a drained durable store rather than registered — same
// HTTP surface, but the evaluation keys took the disk round trip.
type restoredBackend struct {
	serverBackend
}

func (restoredBackend) Name() string { return "restored-server" }

// optimizedBackend is the scheduler backend with the full optimizer
// pass pipeline enabled. Fusion and multi-value packing re-synthesize
// bootstraps, so its contract is decode identity, not bitwise identity
// — the suite checks its outputs against the plaintext expectations
// every other backend's bitwise reference is itself checked against.
type optimizedBackend struct {
	schedBackend
}

func (optimizedBackend) Name() string { return "optimized-scheduled" }

func (optimizedBackend) Bitwise() bool { return false }

// routedBackend is the server backend reached through the routing tier:
// the client talks to a router that consistent-hashes the session onto
// one of two nodes and forwards every envelope there. Same bitwise
// contract as the direct server backend — routing must never touch the
// ciphertexts.
type routedBackend struct {
	serverBackend
}

func (routedBackend) Name() string { return "routed-cluster" }

// referenceKernelBackend is the sequential evaluator with the unsafe fast
// FFT kernels disabled for the duration of each operation, forcing the
// pure-Go reference kernels. The fast path promises bitwise-identical
// arithmetic, so this backend's contract against the (fast-kernel)
// sequential reference is full bitwise equality: the suite pins
// fast == reference on every public operation. In a purego build the
// kernel switch is a no-op and the backend degenerates to a second
// sequential evaluator. The kernel selection is process-global, so this
// backend must not run concurrently with other backends' operations —
// the suite runs backends one at a time.
type referenceKernelBackend struct {
	seqBackend
}

func (referenceKernelBackend) Name() string { return "reference-kernel" }

func (r referenceKernelBackend) Gate(op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	prev := fft.SetFastKernel(false)
	defer fft.SetFastKernel(prev)
	return r.seqBackend.Gate(op, a, b)
}

func (r referenceKernelBackend) LUT(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	prev := fft.SetFastKernel(false)
	defer fft.SetFastKernel(prev)
	return r.seqBackend.LUT(cts, space, table)
}

func (r referenceKernelBackend) MultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	prev := fft.SetFastKernel(false)
	defer fft.SetFastKernel(prev)
	return r.seqBackend.MultiLUT(cts, space, tables)
}

func (r referenceKernelBackend) Circuit(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	prev := fft.SetFastKernel(false)
	defer fft.SetFastKernel(prev)
	return r.seqBackend.Circuit(circ, inputs)
}

func (r referenceKernelBackend) Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	prev := fft.SetFastKernel(false)
	defer fft.SetFastKernel(prev)
	return r.seqBackend.Infer(features)
}

// inferBackend is the encrypted-inference service scenario end to end:
// the infer envelope over HTTP with the optimizer pass pipeline enabled
// server-side. Optimization re-synthesizes bootstraps (multi-value
// packing in the dense layer), so like the optimized scheduler its
// contract is decode identity against the cleartext reference, not
// bitwise identity with the sequential backend.
type inferBackend struct {
	serverBackend
}

func (inferBackend) Name() string { return "encrypted-inference" }

func (inferBackend) Bitwise() bool { return false }

func (b inferBackend) Infer(features []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	return b.cl.Infer(features, server.EvalOpts{Optimize: true})
}
