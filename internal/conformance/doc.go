// Package conformance cross-checks every public FHE operation — boolean
// gates, lookup tables, multi-value lookup tables, and whole circuits —
// across the six execution backends of the repository: the sequential
// evaluator, the flat worker-pool engine, the streaming pipeline engine,
// the levelizing circuit scheduler, the networked gate service, and a
// second gate service whose session was restored from a drained durable
// store (the crash/restart path) rather than registered.
//
// Server-side TFHE is deterministic, and every backend executes the same
// per-ciphertext computation in the same order, so conformance is defined
// as bitwise equality: for identical inputs under identical keys, every
// backend must produce ciphertexts identical to the sequential reference
// bit for bit. The table-driven suite in this package runs each (op,
// backend) pair under the race detector in CI, which is what lets the
// engines and the service evolve aggressively without silently forking
// semantics.
package conformance
