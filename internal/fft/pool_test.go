package fft

import (
	"sync"
	"testing"

	"repro/internal/poly"
)

func TestSharedProcessorSingleton(t *testing.T) {
	a := SharedProcessor(256)
	b := SharedProcessor(256)
	if a != b {
		t.Fatal("SharedProcessor returned distinct instances for the same N")
	}
	if c := SharedProcessor(512); c == a {
		t.Fatal("SharedProcessor returned the same instance for different N")
	}
	if a.N() != 256 {
		t.Fatalf("SharedProcessor(256).N() = %d", a.N())
	}
}

func TestSharedProcessorConcurrent(t *testing.T) {
	// Hammer the lookup from many goroutines; under -race this verifies the
	// lock-free path, and all callers must agree on the instance.
	const workers = 16
	got := make([]*Processor, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got[w] = SharedProcessor(1024)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatal("concurrent SharedProcessor callers observed distinct instances")
		}
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	p := SharedProcessor(64)
	buf := p.GetBuffer()
	if len(buf) != p.M() {
		t.Fatalf("GetBuffer length = %d, want %d", len(buf), p.M())
	}
	for i := range buf {
		buf[i] = complex(1, 1) // dirty it
	}
	p.PutBuffer(buf)
	buf2 := p.GetBuffer()
	for i, c := range buf2 {
		if c != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, c)
		}
	}
	p.PutBuffer(buf2)
	p.PutBuffer(make(FourierPoly, 3)) // wrong size must be dropped, not panic
	if got := p.GetBuffer(); len(got) != p.M() {
		t.Fatalf("pool handed back a wrong-size buffer of length %d", len(got))
	}
}

func TestBufferPoolTransformMatchesFresh(t *testing.T) {
	p := SharedProcessor(64)
	src := poly.New(64)
	for j := range src.Coeffs {
		src.Coeffs[j] = uint32(j*2654435761 + 12345)
	}
	want := p.ForwardTorus(src)

	buf := p.GetBuffer()
	p.ForwardTorusTo(buf, src)
	for j := range want {
		if want[j] != buf[j] {
			t.Fatalf("pooled transform differs at %d: %v vs %v", j, buf[j], want[j])
		}
	}
	p.PutBuffer(buf)
}
