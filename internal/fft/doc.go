// Package fft provides the Fourier substrate for negacyclic polynomial
// multiplication in TFHE, implementing the *folding scheme* the Strix paper
// adopts for its FFT units (§V-A, ref [48]): an N-coefficient negacyclic
// polynomial is transformed with an N/2-point complex FFT by packing the
// upper half of the coefficients into the imaginary lane and twisting by the
// primitive 2N-th roots of unity.
//
// The forward transform evaluates a real polynomial P at the points
// ω^(4k+1), ω = e^(iπ/N), k = 0..N/2-1 — one representative from each
// conjugate pair of odd 2N-th roots, which is exactly the information needed
// to multiply in Z[X]/(X^N+1). Pointwise products followed by the inverse
// transform therefore compute the negacyclic product directly, with no
// post-transform reordering — the property that lets the hardware pipeline
// stream polynomials with no matrix transposition.
package fft
