package fft

import (
	"math/rand"
	"testing"

	"repro/internal/poly"
	"repro/internal/torus"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestInverseToPreservesInput(t *testing.T) {
	// Regression for the InverseTo input-clobbering hazard: the transform
	// must run in processor scratch, leaving the caller's Fourier
	// accumulator bit-for-bit intact — including the single-stage sizes
	// (n=4, n=8) where the fold reads the input directly.
	for _, n := range []int{4, 8, 64, 256} {
		p := NewProcessor(n)
		rng := rand.New(rand.NewSource(11))
		src := make([]int32, n)
		for i := range src {
			src[i] = int32(rng.Intn(1<<16) - 1<<15)
		}
		fp := p.ForwardInt(src)
		want := Copy(fp)
		dst := poly.New(n)
		p.InverseTo(dst, fp)
		for i := range fp {
			if fp[i] != want[i] {
				t.Fatalf("n=%d: InverseTo modified its input at %d: %v -> %v", n, i, want[i], fp[i])
			}
		}
		// The preserved accumulator must still be usable: a second inverse
		// adds the same polynomial again.
		dst2 := poly.New(n)
		p.InverseTo(dst2, fp)
		p.InverseTo(dst2, fp)
		for i := range dst.Coeffs {
			if dst2.Coeffs[i] != 2*dst.Coeffs[i] {
				t.Fatalf("n=%d: reused accumulator drifted at coeff %d", n, i)
			}
		}
	}
}

func TestMulSizeMismatchPanics(t *testing.T) {
	p := NewProcessor(16)
	good := p.NewFourierPoly()
	short := make(FourierPoly, p.M()-1)
	long := make(FourierPoly, p.M()+1)
	// Both directions: an undersized operand must not silently truncate
	// the loop, and an oversized one must not silently drop its tail.
	expectPanic(t, "Mul dst short", func() { Mul(short, good, good) })
	expectPanic(t, "Mul a short", func() { Mul(good, short, good) })
	expectPanic(t, "Mul b short", func() { Mul(good, good, short) })
	expectPanic(t, "Mul dst long", func() { Mul(long, good, good) })
	expectPanic(t, "Mul a long", func() { Mul(good, long, good) })
	expectPanic(t, "Mul b long", func() { Mul(good, good, long) })
	expectPanic(t, "MulAcc acc short", func() { MulAcc(short, good, good) })
	expectPanic(t, "MulAcc a short", func() { MulAcc(good, short, good) })
	expectPanic(t, "MulAcc b short", func() { MulAcc(good, good, short) })
	expectPanic(t, "MulAcc acc long", func() { MulAcc(long, good, good) })
	expectPanic(t, "MulAcc a long", func() { MulAcc(good, long, good) })
	expectPanic(t, "MulAcc b long", func() { MulAcc(good, good, long) })
}

func TestRoundToTorusBoundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want torus.Torus32
	}{
		{0, 0},
		{0.49, 0},
		{0.5, 1},                   // math.Round: halves away from zero
		{-0.5, 0xFFFFFFFF},         // -1 on the torus
		{2147483647, 0x7FFFFFFF},   // 2^31 - 1
		{2147483647.5, 0x80000000}, // rounds up to exactly 2^31
		{2147483648, 0x80000000},   // +2^31 and -2^31 are the same torus point
		{-2147483648, 0x80000000},
		{-2147483648.5, 0x7FFFFFFF}, // rounds away to -2^31-1 ≡ 2^31-1
		{4294967296, 0},             // full wrap
		{4294967297, 1},
		{-4294967295, 1},
		{1152921504606846976, 0}, // 2^60, exactly representable, exact mod
		{1152921513196781568, 0}, // 2^60 + 2^33, still exact in float64
	}
	for _, c := range cases {
		if got := roundToTorus(c.in); got != c.want {
			t.Errorf("roundToTorus(%v) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestRoundToTorusDoublePrecisionCliff(t *testing.T) {
	// Integers are exactly representable in float64 only up to 2^53. The
	// old kernel comment claimed safety "up to ~2^63"; in truth any input
	// above 2^53 has already lost low bits before roundToTorus sees it.
	// Pin both sides of the cliff.
	const maxExact = 1 << 53 // 9007199254740992
	if got, want := roundToTorus(float64(maxExact-1)), torus.Torus32(0xFFFFFFFF); got != want {
		t.Errorf("roundToTorus(2^53-1) = %#x, want %#x", got, want)
	}
	// 2^53+1 is not representable: it rounds to 2^53 at conversion, so two
	// distinct integers collapse to the same torus value.
	if float64(maxExact+1) != float64(maxExact) {
		t.Fatal("expected 2^53+1 to collapse to 2^53 in float64")
	}
	if roundToTorus(float64(maxExact+1)) != roundToTorus(float64(maxExact)) {
		t.Error("values beyond the 2^53 cliff should be indistinguishable")
	}
	// The hot path keeps magnitudes well under the cliff: N=1024 products
	// of 32-bit torus values against 2^10 digits stay below ~2^52.
	if maxHot := 1024.0 * 512 * 2147483648; maxHot >= float64(maxExact) {
		t.Errorf("hot-path bound %v exceeds exact range %v", maxHot, float64(maxExact))
	}
}

func TestForwardDecomposeMatchesUnfused(t *testing.T) {
	// The fused decompose+load must be bitwise identical to the
	// DecomposePolyTo -> ForwardIntBatchTo sequence it replaces.
	for _, n := range []int{16, 256, 1024} {
		p := NewProcessor(n)
		dec := poly.NewDecomposer(8, 3)
		rng := rand.New(rand.NewSource(13))
		src := poly.New(n)
		poly.Uniform(rng, src)

		fused := p.NewFourierPolyBatch(dec.Level)
		p.ForwardDecompose(fused, dec, src)

		digits := dec.DecomposePoly(src)
		unfused := p.NewFourierPolyBatch(dec.Level)
		p.ForwardIntBatchTo(unfused, digits)

		for l := range fused {
			for j := range fused[l] {
				if fused[l][j] != unfused[l][j] {
					t.Fatalf("n=%d level %d slot %d: fused %v != unfused %v", n, l, j, fused[l][j], unfused[l][j])
				}
			}
		}
	}
}

func TestForwardDecomposeValidation(t *testing.T) {
	p := NewProcessor(16)
	dec := poly.NewDecomposer(8, 3)
	src := poly.New(16)
	expectPanic(t, "level mismatch", func() {
		p.ForwardDecompose(p.NewFourierPolyBatch(2), dec, src)
	})
	expectPanic(t, "poly size mismatch", func() {
		p.ForwardDecompose(p.NewFourierPolyBatch(3), dec, poly.New(32))
	})
	expectPanic(t, "buffer size mismatch", func() {
		bad := []FourierPoly{make(FourierPoly, 4), make(FourierPoly, 4), make(FourierPoly, 4)}
		p.ForwardDecompose(bad, dec, src)
	})
}

// withKernel runs f under the requested kernel selection and restores the
// previous one.
func withKernel(fast bool, f func()) {
	prev := SetFastKernel(fast)
	defer SetFastKernel(prev)
	f()
}

func TestFastMatchesReferenceBitwise(t *testing.T) {
	if !FastKernelAvailable() {
		t.Skip("purego build: no fast kernel")
	}
	for _, n := range []int{4, 8, 16, 256, 1024} {
		p := NewProcessor(n)
		rng := rand.New(rand.NewSource(17))
		src := poly.New(n)
		poly.Uniform(rng, src)
		digits := make([]int32, n)
		for i := range digits {
			digits[i] = int32(rng.Intn(1024) - 512)
		}
		dec := poly.NewDecomposer(4, 2)

		var fTorus, fInt, fAcc FourierPoly
		var fDec []FourierPoly
		fInv := poly.New(n)
		withKernel(true, func() {
			fTorus = p.ForwardTorus(src)
			fInt = p.ForwardInt(digits)
			fAcc = p.NewFourierPoly()
			MulAcc(fAcc, fTorus, fInt)
			MulAcc(fAcc, fInt, fInt)
			p.InverseTo(fInv, fAcc)
			fDec = p.NewFourierPolyBatch(dec.Level)
			p.ForwardDecompose(fDec, dec, src)
		})

		var rTorus, rInt, rAcc FourierPoly
		var rDec []FourierPoly
		rInv := poly.New(n)
		withKernel(false, func() {
			rTorus = p.ForwardTorus(src)
			rInt = p.ForwardInt(digits)
			rAcc = p.NewFourierPoly()
			MulAcc(rAcc, rTorus, rInt)
			MulAcc(rAcc, rInt, rInt)
			p.InverseTo(rInv, rAcc)
			rDec = p.NewFourierPolyBatch(dec.Level)
			p.ForwardDecompose(rDec, dec, src)
		})

		cmpFP := func(name string, a, b FourierPoly) {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d %s slot %d: fast %v != ref %v", n, name, i, a[i], b[i])
				}
			}
		}
		cmpFP("ForwardTorus", fTorus, rTorus)
		cmpFP("ForwardInt", fInt, rInt)
		cmpFP("MulAcc", fAcc, rAcc)
		for l := range fDec {
			cmpFP("ForwardDecompose", fDec[l], rDec[l])
		}
		for i := range fInv.Coeffs {
			if fInv.Coeffs[i] != rInv.Coeffs[i] {
				t.Fatalf("n=%d InverseTo coeff %d: fast %#x != ref %#x", n, i, fInv.Coeffs[i], rInv.Coeffs[i])
			}
		}
	}
}

func TestInverseToNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	p := NewProcessor(1024)
	src := make([]int32, 1024)
	src[1] = 3
	fp := p.ForwardInt(src)
	dst := poly.New(1024)
	// Warm the scratch pool, then require steady-state zero allocations.
	p.InverseTo(dst, fp)
	if avg := testing.AllocsPerRun(100, func() { p.InverseTo(dst, fp) }); avg != 0 {
		t.Errorf("InverseTo allocates %v per call, want 0", avg)
	}
}

func benchKernels(b *testing.B, run func(b *testing.B)) {
	b.Run("fast", func(b *testing.B) {
		if !FastKernelAvailable() {
			b.Skip("purego build")
		}
		prev := SetFastKernel(true)
		defer SetFastKernel(prev)
		run(b)
	})
	b.Run("ref", func(b *testing.B) {
		prev := SetFastKernel(false)
		defer SetFastKernel(prev)
		run(b)
	})
}

func BenchmarkFFTForward(b *testing.B) {
	p := NewProcessor(1024)
	rng := rand.New(rand.NewSource(19))
	src := poly.New(1024)
	poly.Uniform(rng, src)
	dst := p.NewFourierPoly()
	benchKernels(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ForwardTorusTo(dst, src)
		}
	})
}

func BenchmarkFFTInverse(b *testing.B) {
	p := NewProcessor(1024)
	rng := rand.New(rand.NewSource(23))
	src := poly.New(1024)
	poly.Uniform(rng, src)
	fp := p.ForwardTorus(src)
	dst := poly.New(1024)
	benchKernels(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.InverseTo(dst, fp)
		}
	})
}

func BenchmarkFFTForwardDecompose(b *testing.B) {
	p := NewProcessor(1024)
	dec := poly.NewDecomposer(10, 2)
	rng := rand.New(rand.NewSource(29))
	src := poly.New(1024)
	poly.Uniform(rng, src)
	dsts := p.NewFourierPolyBatch(dec.Level)
	benchKernels(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ForwardDecompose(dsts, dec, src)
		}
	})
}
