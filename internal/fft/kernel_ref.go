package fft

import "repro/internal/torus"

// Reference kernels: plain bounds-checked Go implementations of the
// butterfly stages and the fused load/fold passes. These are the bitwise
// ground truth the fast kernels are checked against, so every floating-
// point expression here is written with explicit re/im float64 arithmetic
// in exactly the shape the fast kernels use — complex multiplies as
// (ar*br-ai*bi, ar*bi+ai*br), i-multiplies as (-di, dr) — and any change
// to an expression shape must be mirrored in kernel_fast.go.

// loadTorusRef performs the fused fold+twist forward load: the two real
// halves of src become one complex point per index, multiplied by the
// twist factor e^(iπj/N). Torus values are loaded as signed int32 so the
// doubles carry centered representatives.
func loadTorusRef(dst FourierPoly, src []torus.Torus32, twist []float64) {
	m := len(dst)
	for j := 0; j < m; j++ {
		ar := float64(int32(src[j]))
		ai := float64(int32(src[j+m]))
		tr, ti := twist[2*j], twist[2*j+1]
		dst[j] = complex(ar*tr-ai*ti, ar*ti+ai*tr)
	}
}

// loadIntRef is loadTorusRef for small-integer polynomials.
func loadIntRef(dst FourierPoly, src []int32, twist []float64) {
	m := len(dst)
	for j := 0; j < m; j++ {
		ar := float64(src[j])
		ai := float64(src[j+m])
		tr, ti := twist[2*j], twist[2*j+1]
		dst[j] = complex(ar*tr-ai*ti, ar*ti+ai*tr)
	}
}

// fwdStage4Ref runs one in-place radix-4 DIF pass with block size s over
// buf, walking the packed twiddle table sequentially (six floats per
// butterfly index, shared across blocks).
func fwdStage4Ref(buf []complex128, s int, tw []float64) {
	q := s >> 2
	for b := 0; b < len(buf); b += s {
		ti := 0
		for k := 0; k < q; k++ {
			a0 := buf[b+k]
			a1 := buf[b+k+q]
			a2 := buf[b+k+2*q]
			a3 := buf[b+k+3*q]
			t0r, t0i := real(a0)+real(a2), imag(a0)+imag(a2)
			t1r, t1i := real(a0)-real(a2), imag(a0)-imag(a2)
			t2r, t2i := real(a1)+real(a3), imag(a1)+imag(a3)
			dr, di := real(a1)-real(a3), imag(a1)-imag(a3)
			t3r, t3i := -di, dr
			w1r, w1i := tw[ti], tw[ti+1]
			w2r, w2i := tw[ti+2], tw[ti+3]
			w3r, w3i := tw[ti+4], tw[ti+5]
			ti += 6
			b1r, b1i := t1r+t3r, t1i+t3i
			b2r, b2i := t0r-t2r, t0i-t2i
			b3r, b3i := t1r-t3r, t1i-t3i
			buf[b+k] = complex(t0r+t2r, t0i+t2i)
			buf[b+k+q] = complex(b1r*w1r-b1i*w1i, b1r*w1i+b1i*w1r)
			buf[b+k+2*q] = complex(b2r*w2r-b2i*w2i, b2r*w2i+b2i*w2r)
			buf[b+k+3*q] = complex(b3r*w3r-b3i*w3i, b3r*w3i+b3i*w3r)
		}
	}
}

// fwdStage2Ref runs the trailing radix-2 DIF pass (block size 2, twiddle
// 1) that finishes transforms whose size is an odd power of two.
func fwdStage2Ref(buf []complex128) {
	for i := 0; i < len(buf); i += 2 {
		a0, a1 := buf[i], buf[i+1]
		buf[i] = complex(real(a0)+real(a1), imag(a0)+imag(a1))
		buf[i+1] = complex(real(a0)-real(a1), imag(a0)-imag(a1))
	}
}

// invFirstRef runs the first inverse DIT stage out-of-place: it reads src
// and writes dst, leaving src untouched (this is what makes InverseTo
// non-destructive). The first stage has block size 2 or 4, where every
// twiddle is exactly 1, so no twiddle table is needed.
func invFirstRef(dst, src []complex128, size int) {
	if size == 2 {
		for i := 0; i < len(src); i += 2 {
			a0, a1 := src[i], src[i+1]
			dst[i] = complex(real(a0)+real(a1), imag(a0)+imag(a1))
			dst[i+1] = complex(real(a0)-real(a1), imag(a0)-imag(a1))
		}
		return
	}
	for i := 0; i < len(src); i += 4 {
		v0, v1, v2, v3 := src[i], src[i+1], src[i+2], src[i+3]
		t0r, t0i := real(v0)+real(v2), imag(v0)+imag(v2)
		t1r, t1i := real(v0)-real(v2), imag(v0)-imag(v2)
		t2r, t2i := real(v1)+real(v3), imag(v1)+imag(v3)
		dr, di := real(v1)-real(v3), imag(v1)-imag(v3)
		t3r, t3i := -di, dr
		dst[i] = complex(t0r+t2r, t0i+t2i)
		dst[i+1] = complex(t1r-t3r, t1i-t3i)
		dst[i+2] = complex(t0r-t2r, t0i-t2i)
		dst[i+3] = complex(t1r+t3r, t1i+t3i)
	}
}

// invStage4Ref runs one in-place radix-4 DIT pass with block size s,
// using the conjugate twiddle table built for the inverse direction.
func invStage4Ref(buf []complex128, s int, tw []float64) {
	q := s >> 2
	for b := 0; b < len(buf); b += s {
		ti := 0
		for k := 0; k < q; k++ {
			x0 := buf[b+k]
			x1 := buf[b+k+q]
			x2 := buf[b+k+2*q]
			x3 := buf[b+k+3*q]
			w1r, w1i := tw[ti], tw[ti+1]
			w2r, w2i := tw[ti+2], tw[ti+3]
			w3r, w3i := tw[ti+4], tw[ti+5]
			ti += 6
			v1r, v1i := real(x1)*w1r-imag(x1)*w1i, real(x1)*w1i+imag(x1)*w1r
			v2r, v2i := real(x2)*w2r-imag(x2)*w2i, real(x2)*w2i+imag(x2)*w2r
			v3r, v3i := real(x3)*w3r-imag(x3)*w3i, real(x3)*w3i+imag(x3)*w3r
			t0r, t0i := real(x0)+v2r, imag(x0)+v2i
			t1r, t1i := real(x0)-v2r, imag(x0)-v2i
			t2r, t2i := v1r+v3r, v1i+v3i
			dr, di := v1r-v3r, v1i-v3i
			t3r, t3i := -di, dr
			buf[b+k] = complex(t0r+t2r, t0i+t2i)
			buf[b+k+q] = complex(t1r-t3r, t1i-t3i)
			buf[b+k+2*q] = complex(t0r-t2r, t0i-t2i)
			buf[b+k+3*q] = complex(t1r+t3r, t1i+t3i)
		}
	}
}

// invFoldRef runs the final inverse DIT stage (one block spanning the
// whole transform) fused with the fold: each butterfly output y at
// position pos is multiplied by untwist[pos] = conj(twist[pos])/m, its
// components rounded to the torus, and the results ADDED into
// dst[pos], dst[pos+m]. src is read-only; in the single-stage case
// (m ≤ 4) src is the caller's FourierPoly itself.
func invFoldRef(dst []torus.Torus32, src []complex128, st stage, untwist []float64, m int) {
	if st.size == 2 {
		// m == 2: one radix-2 butterfly is the whole transform.
		a0, a1 := src[0], src[1]
		foldAccRef(dst, 0, real(a0)+real(a1), imag(a0)+imag(a1), untwist, m)
		foldAccRef(dst, 1, real(a0)-real(a1), imag(a0)-imag(a1), untwist, m)
		return
	}
	q := st.size >> 2
	tw := st.tw
	ti := 0
	for k := 0; k < q; k++ {
		x0 := src[k]
		x1 := src[k+q]
		x2 := src[k+2*q]
		x3 := src[k+3*q]
		w1r, w1i := tw[ti], tw[ti+1]
		w2r, w2i := tw[ti+2], tw[ti+3]
		w3r, w3i := tw[ti+4], tw[ti+5]
		ti += 6
		v1r, v1i := real(x1)*w1r-imag(x1)*w1i, real(x1)*w1i+imag(x1)*w1r
		v2r, v2i := real(x2)*w2r-imag(x2)*w2i, real(x2)*w2i+imag(x2)*w2r
		v3r, v3i := real(x3)*w3r-imag(x3)*w3i, real(x3)*w3i+imag(x3)*w3r
		t0r, t0i := real(x0)+v2r, imag(x0)+v2i
		t1r, t1i := real(x0)-v2r, imag(x0)-v2i
		t2r, t2i := v1r+v3r, v1i+v3i
		dr, di := v1r-v3r, v1i-v3i
		t3r, t3i := -di, dr
		foldAccRef(dst, k, t0r+t2r, t0i+t2i, untwist, m)
		foldAccRef(dst, k+q, t1r-t3r, t1i-t3i, untwist, m)
		foldAccRef(dst, k+2*q, t0r-t2r, t0i-t2i, untwist, m)
		foldAccRef(dst, k+3*q, t1r+t3r, t1i+t3i, untwist, m)
	}
}

// foldAccRef applies the untwist factor to one complex output, rounds
// both components to the torus and adds them into the two real halves.
func foldAccRef(dst []torus.Torus32, pos int, yr, yi float64, untwist []float64, m int) {
	ur, ui := untwist[2*pos], untwist[2*pos+1]
	dst[pos] += roundToTorus(yr*ur - yi*ui)
	dst[pos+m] += roundToTorus(yr*ui + yi*ur)
}

// mulAccRef accumulates the pointwise complex product: acc += a ⊙ b.
func mulAccRef(acc, a, b FourierPoly) {
	for i := range acc {
		ar, ai := real(a[i]), imag(a[i])
		br, bi := real(b[i]), imag(b[i])
		cr, ci := real(acc[i]), imag(acc[i])
		acc[i] = complex(cr+(ar*br-ai*bi), ci+(ar*bi+ai*br))
	}
}

// mulRef stores the pointwise complex product: dst = a ⊙ b.
func mulRef(dst, a, b FourierPoly) {
	for i := range dst {
		ar, ai := real(a[i]), imag(a[i])
		br, bi := real(b[i]), imag(b[i])
		dst[i] = complex(ar*br-ai*bi, ar*bi+ai*br)
	}
}
