package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/poly"
	"repro/internal/torus"
)

// naiveEval evaluates the real polynomial with coefficients c at the odd
// 2N-th root ω^(4k+1) directly — the reference the folded transform must
// match.
func naiveEval(c []float64, k int) complex128 {
	n := len(c)
	var acc complex128
	for j, cj := range c {
		ang := math.Pi * float64((4*k+1)*j) / float64(n)
		acc += complex(cj, 0) * cmplx.Exp(complex(0, ang))
	}
	return acc
}

// forwardPermutation recovers, for a given input, the bijection between
// the kernel-order output slots and the naive evaluation indices. The DIF
// kernel emits the folded DFT values in digit-reversed order; the tests
// only require that the order is a fixed bijection consistent between
// forward, pointwise ops and inverse, so the permutation is matched
// empirically against the naive evaluations.
func forwardPermutation(t *testing.T, fp FourierPoly, cf []float64) []int {
	t.Helper()
	m := len(fp)
	perm := make([]int, m)
	used := make([]bool, m)
	for i := 0; i < m; i++ {
		found := -1
		for k := 0; k < m; k++ {
			want := naiveEval(cf, k)
			if cmplx.Abs(fp[i]-want) <= 1e-6*(1+cmplx.Abs(want)) {
				found = k
				break
			}
		}
		if found < 0 {
			t.Fatalf("slot %d: value %v matches no naive evaluation", i, fp[i])
		}
		if used[found] {
			t.Fatalf("slot %d: naive evaluation %d matched twice", i, found)
		}
		used[found] = true
		perm[i] = found
	}
	return perm
}

func TestForwardMatchesNaiveEvaluation(t *testing.T) {
	// The kernel-order outputs must be exactly the m naive evaluations at
	// the odd 2N-th roots, each appearing once (a bijection), and the
	// permutation must not depend on the input values.
	n := 16
	p := NewProcessor(n)
	rng := rand.New(rand.NewSource(1))
	var perm []int
	for trial := 0; trial < 3; trial++ {
		src := make([]int32, n)
		cf := make([]float64, n)
		for i := range src {
			src[i] = int32(rng.Intn(2000) - 1000)
			cf[i] = float64(src[i])
		}
		fp := p.ForwardInt(src)
		got := forwardPermutation(t, fp, cf)
		if perm == nil {
			perm = got
			continue
		}
		for i := range perm {
			if perm[i] != got[i] {
				t.Fatalf("output permutation depends on input: slot %d mapped to %d then %d", i, perm[i], got[i])
			}
		}
	}
}

func TestForwardInverseRoundtripInt(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 1024} {
		p := NewProcessor(n)
		rng := rand.New(rand.NewSource(2))
		src := make([]int32, n)
		for i := range src {
			src[i] = int32(rng.Intn(1<<20) - 1<<19)
		}
		got := p.Inverse(p.ForwardInt(src))
		for i := range src {
			if int32(got.Coeffs[i]) != src[i] {
				t.Fatalf("n=%d coeff %d: got %d want %d", n, i, int32(got.Coeffs[i]), src[i])
			}
		}
	}
}

func TestForwardInverseRoundtripTorus(t *testing.T) {
	n := 256
	p := NewProcessor(n)
	rng := rand.New(rand.NewSource(3))
	src := poly.New(n)
	poly.Uniform(rng, src)
	got := p.Inverse(p.ForwardTorus(src))
	// Full 32-bit magnitudes: allow tiny rounding noise (a few ulps).
	for i := range src.Coeffs {
		d := int32(got.Coeffs[i] - src.Coeffs[i])
		if d > 4 || d < -4 {
			t.Fatalf("coeff %d: drift %d too large", i, d)
		}
	}
}

func TestNegacyclicProductMatchesNaive(t *testing.T) {
	// The headline property: folded-FFT pointwise product == schoolbook
	// negacyclic product, exactly, for gadget-digit-sized operands.
	for _, n := range []int{16, 128, 1024} {
		p := NewProcessor(n)
		rng := rand.New(rand.NewSource(4))
		a := poly.New(n)
		poly.Uniform(rng, a)
		digits := make([]int32, n)
		for i := range digits {
			digits[i] = int32(rng.Intn(1024) - 512) // B=2^10 digit range
		}
		want := poly.MulNaive(a, digits)

		fa := p.ForwardTorus(a)
		fd := p.ForwardInt(digits)
		prod := p.NewFourierPoly()
		Mul(prod, fa, fd)
		got := p.Inverse(prod)

		// With N=1024 the products reach ~2^51; allow a few ulps of
		// rounding drift, which becomes (tiny) extra noise in TFHE.
		tol := 64.0 / 4294967296.0
		if d := poly.MaxDistance(got, want); d > tol {
			t.Fatalf("n=%d: product drift %v exceeds tolerance %v", n, d, tol)
		}
		if n <= 128 {
			// Small N: products fit in exact double range, must be exact.
			if !got.Equal(want) {
				t.Fatalf("n=%d: expected exact product", n)
			}
		}
	}
}

func TestNegacyclicWraparoundSign(t *testing.T) {
	// X^(N-1) * X = X^N = -1: verify the negacyclic sign comes out of the
	// Fourier path.
	n := 16
	p := NewProcessor(n)
	a := poly.New(n)
	a.Coeffs[n-1] = torus.FromFloat(0.25) // 0.25·X^15
	digits := make([]int32, n)
	digits[1] = 1 // X
	prod := p.NewFourierPoly()
	Mul(prod, p.ForwardTorus(a), p.ForwardInt(digits))
	got := p.Inverse(prod)
	want := poly.New(n)
	want.Coeffs[0] = -torus.FromFloat(0.25)
	if !got.Equal(want) {
		t.Fatalf("negacyclic sign wrong: got %v", got.Coeffs[:2])
	}
}

func TestMulAccAccumulates(t *testing.T) {
	n := 32
	p := NewProcessor(n)
	rng := rand.New(rand.NewSource(5))
	a := poly.New(n)
	b := poly.New(n)
	poly.Uniform(rng, a)
	poly.Uniform(rng, b)
	d1 := make([]int32, n)
	d2 := make([]int32, n)
	for i := range d1 {
		d1[i] = int32(rng.Intn(64) - 32)
		d2[i] = int32(rng.Intn(64) - 32)
	}
	want := poly.Add(poly.MulNaive(a, d1), poly.MulNaive(b, d2))

	acc := p.NewFourierPoly()
	MulAcc(acc, p.ForwardTorus(a), p.ForwardInt(d1))
	MulAcc(acc, p.ForwardTorus(b), p.ForwardInt(d2))
	got := p.Inverse(acc)
	if !got.Equal(want) {
		t.Fatalf("MulAcc accumulation mismatch: %v", poly.MaxDistance(got, want))
	}
}

func TestInverseToIsAdditive(t *testing.T) {
	n := 16
	p := NewProcessor(n)
	src := make([]int32, n)
	src[3] = 7
	fp := p.ForwardInt(src)
	dst := poly.New(n)
	// The same Fourier accumulator is inverse-transformed twice: InverseTo
	// must both add into dst and leave fp intact across calls.
	p.InverseTo(dst, fp)
	p.InverseTo(dst, fp)
	if int32(dst.Coeffs[3]) != 14 {
		t.Fatalf("additive inverse: got %d want 14", int32(dst.Coeffs[3]))
	}
}

func TestTransformLinearity(t *testing.T) {
	n := 64
	p := NewProcessor(n)
	rng := rand.New(rand.NewSource(6))
	a := make([]int32, n)
	b := make([]int32, n)
	sum := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(1000) - 500)
		b[i] = int32(rng.Intn(1000) - 500)
		sum[i] = a[i] + b[i]
	}
	fa := p.ForwardInt(a)
	fb := p.ForwardInt(b)
	fs := p.ForwardInt(sum)
	for i := range fa {
		if cmplx.Abs(fa[i]+fb[i]-fs[i]) > 1e-6*(1+cmplx.Abs(fs[i])) {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestNewProcessorValidation(t *testing.T) {
	for _, bad := range []int{0, 2, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for n=%d", bad)
				}
			}()
			NewProcessor(bad)
		}()
	}
}

func TestCopyAndClear(t *testing.T) {
	p := NewProcessor(8)
	fp := p.NewFourierPoly()
	fp[0] = 1 + 2i
	cp := Copy(fp)
	Clear(fp)
	if fp[0] != 0 {
		t.Error("Clear failed")
	}
	if cp[0] != 1+2i {
		t.Error("Copy not deep")
	}
}

func BenchmarkForwardTorus1024(b *testing.B) {
	p := NewProcessor(1024)
	rng := rand.New(rand.NewSource(7))
	src := poly.New(1024)
	poly.Uniform(rng, src)
	dst := p.NewFourierPoly()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardTorusTo(dst, src)
	}
}

func BenchmarkNegacyclicProduct1024(b *testing.B) {
	p := NewProcessor(1024)
	rng := rand.New(rand.NewSource(8))
	a := poly.New(1024)
	poly.Uniform(rng, a)
	digits := make([]int32, 1024)
	for i := range digits {
		digits[i] = int32(rng.Intn(1024) - 512)
	}
	fa := p.ForwardTorus(a)
	fd := p.NewFourierPoly()
	prod := p.NewFourierPoly()
	dst := poly.New(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardIntTo(fd, digits)
		Mul(prod, fa, fd)
		p.InverseTo(dst, prod)
	}
}
