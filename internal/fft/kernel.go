package fft

import "sync/atomic"

// Kernel selection. Two interchangeable kernel sets implement the butterfly
// stages, the twist/fold load-store passes, and the pointwise MACs:
//
//   - the reference kernels (kernel_ref.go): plain bounds-checked Go, the
//     bitwise-pinned ground truth;
//   - the fast kernels (kernel_fast.go, excluded by the `purego` build tag):
//     the same arithmetic with unsafe pointer indexing and unrolled loops.
//
// Both sets spell every floating-point expression with the same shape and
// evaluation order, so they produce bitwise-identical float64 results up to
// the sign of zeros — and therefore identical Torus32 outputs on every
// public operation. The reference-kernel conformance backend re-runs every
// op with the fast path disabled and requires exact ciphertext equality.
//
// fastEnabled is a process-wide runtime switch so one binary can benchmark
// fast against reference in the same run; it defaults to the fast path when
// the build includes it.
var fastEnabled atomic.Bool

func init() { fastEnabled.Store(fastKernelAvailable) }

// FastKernelAvailable reports whether this binary was built with the
// unsafe fast kernels (i.e. without the `purego` build tag).
func FastKernelAvailable() bool { return fastKernelAvailable }

// SetFastKernel selects the kernel set used by all processors in the
// process and returns the previous setting. Enabling has no effect in a
// `purego` build. Callers that need a deterministic reference run (the
// conformance harness, A/B benchmarks) should restore the previous value
// when done.
func SetFastKernel(on bool) bool {
	prev := fastEnabled.Load()
	fastEnabled.Store(on && fastKernelAvailable)
	return prev
}

// fastKernelOn is the per-call dispatch check (a single atomic load).
func fastKernelOn() bool { return fastEnabled.Load() }
