//go:build purego

package fft

import (
	"repro/internal/poly"
	"repro/internal/torus"
)

// purego build: the unsafe fast kernels are excluded and every dispatch
// site resolves to the reference implementation. fastKernelAvailable =
// false keeps SetFastKernel a no-op, so the stubs below are never reached
// at runtime; they exist only to satisfy the dispatch call sites.

const fastKernelAvailable = false

func loadTorusFast(dst FourierPoly, src []torus.Torus32, twist []float64) {
	loadTorusRef(dst, src, twist)
}

func loadIntFast(dst FourierPoly, src []int32, twist []float64) {
	loadIntRef(dst, src, twist)
}

func fwdStage4Fast(buf []complex128, s int, tw []float64) { fwdStage4Ref(buf, s, tw) }

func fwdStage2Fast(buf []complex128) { fwdStage2Ref(buf) }

func invFirstFast(dst, src []complex128, size int) { invFirstRef(dst, src, size) }

func invStage4Fast(buf []complex128, s int, tw []float64) { invStage4Ref(buf, s, tw) }

func invFoldFast(dst []torus.Torus32, src []complex128, st stage, untwist []float64, m int) {
	invFoldRef(dst, src, st, untwist, m)
}

func mulAccFast(acc, a, b FourierPoly) { mulAccRef(acc, a, b) }

func mulFast(dst, a, b FourierPoly) { mulRef(dst, a, b) }

func (p *Processor) decompLoadFast(dsts []FourierPoly, dec poly.Decomposer, src poly.Poly) {
	p.decompLoadRef(dsts, dec, src)
}
