package fft

import (
	"math/rand"
	"testing"

	"repro/internal/poly"
	"repro/internal/torus"
)

// TestBatchMatchesSingle pins the batch entry points to their
// single-polynomial counterparts bitwise: transforming a burst must be
// exactly the per-polynomial transforms applied in order.
func TestBatchMatchesSingle(t *testing.T) {
	const n, count = 64, 7
	p := NewProcessor(n)
	rng := rand.New(rand.NewSource(17))

	ints := make([][]int32, count)
	tors := make([]poly.Poly, count)
	for i := range ints {
		ints[i] = make([]int32, n)
		tors[i] = poly.New(n)
		for j := 0; j < n; j++ {
			ints[i][j] = int32(rng.Intn(257)) - 128
			tors[i].Coeffs[j] = torus.Torus32(rng.Uint32())
		}
	}

	// Forward int: batch vs single.
	batchI := p.NewFourierPolyBatch(count)
	p.ForwardIntBatchTo(batchI, ints)
	for i := range ints {
		single := p.ForwardInt(ints[i])
		for j := range single {
			if single[j] != batchI[i][j] {
				t.Fatalf("ForwardIntBatchTo poly %d coeff %d differs from ForwardInt", i, j)
			}
		}
	}

	// Forward torus: batch vs single.
	batchT := p.NewFourierPolyBatch(count)
	p.ForwardTorusBatchTo(batchT, tors)
	for i := range tors {
		single := p.ForwardTorus(tors[i])
		for j := range single {
			if single[j] != batchT[i][j] {
				t.Fatalf("ForwardTorusBatchTo poly %d coeff %d differs from ForwardTorus", i, j)
			}
		}
	}

	// Inverse: batch vs single (both additive; clobber separate copies).
	dstB := make([]poly.Poly, count)
	for i := range dstB {
		dstB[i] = poly.New(n)
	}
	fpsB := make([]FourierPoly, count)
	fpsS := make([]FourierPoly, count)
	for i := range fpsB {
		fpsB[i] = Copy(batchT[i])
		fpsS[i] = Copy(batchT[i])
	}
	p.InverseBatchTo(dstB, fpsB)
	for i := range fpsS {
		single := p.Inverse(fpsS[i])
		for j := 0; j < n; j++ {
			if single.Coeffs[j] != dstB[i].Coeffs[j] {
				t.Fatalf("InverseBatchTo poly %d coeff %d differs from Inverse", i, j)
			}
		}
	}
}

// TestBatchSizeMismatchPanics checks the batch guard rails.
func TestBatchSizeMismatchPanics(t *testing.T) {
	p := NewProcessor(16)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s accepted mismatched batch sizes", name)
			}
		}()
		f()
	}
	mustPanic("ForwardIntBatchTo", func() {
		p.ForwardIntBatchTo(p.NewFourierPolyBatch(2), make([][]int32, 3))
	})
	mustPanic("ForwardTorusBatchTo", func() {
		p.ForwardTorusBatchTo(p.NewFourierPolyBatch(1), make([]poly.Poly, 2))
	})
	mustPanic("InverseBatchTo", func() {
		p.InverseBatchTo(make([]poly.Poly, 2), p.NewFourierPolyBatch(1))
	})
}

// TestNewFourierPolyBatch checks the contiguous slab layout: every
// FourierPoly has length M, capacity clipped at M, and writes to one
// never alias a neighbour.
func TestNewFourierPolyBatch(t *testing.T) {
	p := NewProcessor(32)
	batch := p.NewFourierPolyBatch(3)
	if len(batch) != 3 {
		t.Fatalf("batch length %d, want 3", len(batch))
	}
	for i, fp := range batch {
		if len(fp) != p.M() || cap(fp) != p.M() {
			t.Fatalf("poly %d: len=%d cap=%d, want %d/%d", i, len(fp), cap(fp), p.M(), p.M())
		}
	}
	batch[1][0] = complex(1, 2)
	if batch[0][p.M()-1] != 0 || batch[2][0] != 0 {
		t.Fatal("write to one batch poly leaked into a neighbour")
	}
}
