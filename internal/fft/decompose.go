package fft

import (
	"fmt"

	"repro/internal/poly"
)

// ForwardDecompose fuses gadget decomposition with the forward-transform
// load: for each folded coefficient pair it extracts all Level digits once
// and writes each digit level directly into its Fourier buffer with the
// twist factor applied, then runs the butterfly stages per level. This
// replaces the DecomposePolyTo → ForwardIntBatchTo sequence in the
// external product, eliminating the intermediate [][]int32 digit staging
// entirely (the Strix Decomposer Unit likewise streams digits straight
// into the FFT array, §V-B).
//
// The result is bitwise identical to the unfused sequence: digit
// extraction is exact integer math and the load expression has the same
// shape as ForwardIntTo's. The reference load extracts digits with
// Decomposer.DigitsTo; the fast load uses a branchless extractor with
// unchecked stores, producing identical digits (pinned by test). dsts
// must hold exactly dec.Level buffers of size M; each is fully
// overwritten. src is read-only.
func (p *Processor) ForwardDecompose(dsts []FourierPoly, dec poly.Decomposer, src poly.Poly) {
	lb := dec.Level
	if len(dsts) != lb {
		panic(fmt.Sprintf("fft: ForwardDecompose level mismatch (got %d buffers, decomposer level %d)", len(dsts), lb))
	}
	if src.N() != p.n {
		panic("fft: ForwardDecompose size mismatch")
	}
	for l := range dsts {
		if len(dsts[l]) != p.m {
			panic("fft: ForwardDecompose size mismatch")
		}
	}
	if fastKernelOn() {
		p.decompLoadFast(dsts, dec, src)
	} else {
		p.decompLoadRef(dsts, dec, src)
	}
	for l := range dsts {
		p.forwardStages(dsts[l])
	}
}

// decompLoadRef is the reference fused load: per folded coefficient pair,
// extract all digits via Decomposer.DigitsTo into stack scratch and write
// each level with the twist applied. NewDecomposer caps Level at 32, so
// the scratch stays on the stack; a hand-built larger decomposer falls
// back to the heap.
func (p *Processor) decompLoadRef(dsts []FourierPoly, dec poly.Decomposer, src poly.Poly) {
	lb := dec.Level
	var stackA, stackB [32]int32
	da, db := stackA[:], stackB[:]
	if lb > len(da) {
		da, db = make([]int32, lb), make([]int32, lb)
	}
	da, db = da[:lb], db[:lb]
	m := p.m
	for j := 0; j < m; j++ {
		dec.DigitsTo(da, src.Coeffs[j])
		dec.DigitsTo(db, src.Coeffs[j+m])
		tr, ti := p.twist[2*j], p.twist[2*j+1]
		for l := 0; l < lb; l++ {
			ar, ai := float64(da[l]), float64(db[l])
			dsts[l][j] = complex(ar*tr-ai*ti, ar*ti+ai*tr)
		}
	}
}
