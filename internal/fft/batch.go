package fft

// Batch entry points: the level-2 batching surface of the streaming
// pipeline. The Strix FFT units never see a lone polynomial — the
// Decomposer Unit emits all (k+1)·lb digit polynomials of one CMux step as
// a burst, and the FFT array consumes the burst as a unit (§V-A). These
// methods give the software the same call shape, so a pipeline stage can
// hand a whole decomposition to the transform layer in one call and the
// per-call bookkeeping (bounds checks, dispatch) is paid once per burst
// instead of once per polynomial.
//
// Each transform in a batch is the exact computation of the corresponding
// single-polynomial method, applied in slice order, so batched and
// one-at-a-time execution produce bitwise-identical results — the property
// the streaming engine's equivalence tests pin down.

import "repro/internal/poly"

// ForwardIntBatchTo transforms each small-integer polynomial srcs[i] into
// dsts[i]. It is exactly ForwardIntTo applied in order; dsts and srcs must
// have equal length.
func (p *Processor) ForwardIntBatchTo(dsts []FourierPoly, srcs [][]int32) {
	if len(dsts) != len(srcs) {
		panic("fft: ForwardIntBatchTo batch size mismatch")
	}
	for i := range srcs {
		p.ForwardIntTo(dsts[i], srcs[i])
	}
}

// ForwardTorusBatchTo transforms each torus polynomial srcs[i] into
// dsts[i]. It is exactly ForwardTorusTo applied in order; dsts and srcs
// must have equal length.
func (p *Processor) ForwardTorusBatchTo(dsts []FourierPoly, srcs []poly.Poly) {
	if len(dsts) != len(srcs) {
		panic("fft: ForwardTorusBatchTo batch size mismatch")
	}
	for i := range srcs {
		p.ForwardTorusTo(dsts[i], srcs[i])
	}
}

// InverseBatchTo transforms each Fourier polynomial fps[i] back into the
// time domain, adding the rounded result into dsts[i] (the additive
// Accumulator Unit convention of InverseTo). Like InverseTo, it leaves
// every fps[i] intact: the butterfly passes run in pooled scratch.
func (p *Processor) InverseBatchTo(dsts []poly.Poly, fps []FourierPoly) {
	if len(dsts) != len(fps) {
		panic("fft: InverseBatchTo batch size mismatch")
	}
	for i := range fps {
		p.InverseTo(dsts[i], fps[i])
	}
}

// NewFourierPolyBatch allocates count zero FourierPolys backed by one
// contiguous complex slab, so a burst of transforms stays cache-adjacent
// the way the hardware's ping-pong buffers keep a CMux step's polynomials.
func (p *Processor) NewFourierPolyBatch(count int) []FourierPoly {
	slab := make([]complex128, count*p.m)
	out := make([]FourierPoly, count)
	for i := range out {
		out[i] = slab[i*p.m : (i+1)*p.m : (i+1)*p.m]
	}
	return out
}
