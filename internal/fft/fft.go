package fft

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/poly"
	"repro/internal/torus"
)

// FourierPoly is a polynomial in the folded Fourier domain: N/2 complex
// evaluations at the odd 2N-th roots of unity (one per conjugate pair).
// The evaluations are stored in kernel order — the digit-reversed order
// the radix-4/radix-2 decimation-in-frequency forward transform emits —
// not in ascending root order. Kernel order is an implementation detail:
// it is consistent between the forward and inverse transforms and across
// the pointwise Mul/MulAcc operations, which is all the negacyclic
// convolution needs, and skipping the reordering pass is part of what
// makes the kernels fast.
type FourierPoly []complex128

// stage is one butterfly pass of the iterative transform. Radix-4 stages
// carry a packed twiddle table walked sequentially by the inner loop —
// six floats (w^k, w^2k, w^3k as re/im pairs) per butterfly index k,
// shared by every block of the stage. The final radix-2 stage of an
// odd-log2 size (and the trivial first inverse stages) need no twiddles.
type stage struct {
	size int       // butterfly block size s
	tw   []float64 // packed twiddles; nil for radix-2
}

// Processor performs folded negacyclic FFTs for a fixed polynomial size N.
// It precomputes per-stage twiddle tables and the twist/fold tables; create
// one per N with NewProcessor and reuse it (it is safe for concurrent use,
// as all methods only read the precomputed tables and write to
// caller-provided buffers or pooled scratch).
//
// Aliasing and in-place contracts of the entry points:
//
//   - ForwardTorusTo / ForwardIntTo / ForwardDecompose: dst is fully
//     overwritten; src is read-only. dst must not alias src storage.
//   - InverseTo / InverseBatchTo: fp is READ-ONLY (the transform runs in
//     pooled processor scratch) and the rounded result is ADDED into dst,
//     so a Fourier accumulator can be inverse-transformed and then reused.
//   - Mul / MulAcc: dst/acc may alias a or b; all operands must have equal
//     length (mismatches panic).
type Processor struct {
	n int // polynomial size N (power of two)
	m int // FFT size N/2

	// twist holds e^(iπ j / N) as interleaved re/im pairs; multiplied in
	// during the forward load/convert pass (folding the two real halves
	// into one complex polynomial).
	twist []float64
	// untwist holds conj(twist[j]) / m as interleaved re/im pairs: the
	// inverse fold and the 1/m scaling pre-combined, applied inside the
	// final inverse butterfly stage.
	untwist []float64

	fwd []stage // forward DIF stages, sizes descending m … 4 (then 2)
	inv []stage // inverse DIT stages, sizes ascending (2) 4 … m

	bufPool sync.Pool // *FourierPoly scratch buffers (see GetBuffer)
	invPool sync.Pool // *invScratch inverse-transform scratch
}

// invScratch wraps the inverse-transform scratch buffer so the sync.Pool
// round-trips one stable pointer (Put of a freshly boxed slice header
// would allocate on every inverse call).
type invScratch struct {
	buf []complex128
}

// NewProcessor returns a Processor for negacyclic polynomials of size n
// (a power of two, n >= 4).
func NewProcessor(n int) *Processor {
	if n < 4 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: invalid polynomial size %d", n))
	}
	m := n / 2
	p := &Processor{n: n, m: m}
	p.twist = make([]float64, 2*m)
	p.untwist = make([]float64, 2*m)
	invM := 1.0 / float64(m)
	for j := 0; j < m; j++ {
		ang := math.Pi * float64(j) / float64(n)
		c, s := math.Cos(ang), math.Sin(ang)
		p.twist[2*j], p.twist[2*j+1] = c, s
		p.untwist[2*j], p.untwist[2*j+1] = c*invM, -s*invM
	}
	p.fwd = buildStages(m, +1)
	p.inv = buildStages(m, -1)
	// The inverse runs the mirrored stage sequence smallest-first.
	for i, j := 0, len(p.inv)-1; i < j; i, j = i+1, j-1 {
		p.inv[i], p.inv[j] = p.inv[j], p.inv[i]
	}
	return p
}

// buildStages precomputes the butterfly passes for FFT size m: radix-4
// stages of size m, m/4, … and, when log2(m) is odd, one trailing radix-2
// stage. sign +1 builds the forward twiddles e^(+2πi rk/s); −1 the
// conjugate inverse tables.
func buildStages(m int, sign float64) []stage {
	var stages []stage
	s := m
	for ; s >= 4; s >>= 2 {
		q := s >> 2
		tw := make([]float64, 0, 6*q)
		for k := 0; k < q; k++ {
			for r := 1; r <= 3; r++ {
				ang := sign * 2 * math.Pi * float64(r*k) / float64(s)
				tw = append(tw, math.Cos(ang), math.Sin(ang))
			}
		}
		stages = append(stages, stage{size: s, tw: tw})
	}
	if s == 2 {
		stages = append(stages, stage{size: 2})
	}
	return stages
}

// N returns the polynomial size.
func (p *Processor) N() int { return p.n }

// M returns the FFT size N/2 (the folded length).
func (p *Processor) M() int { return p.m }

// NewFourierPoly allocates a zero FourierPoly of the right size.
func (p *Processor) NewFourierPoly() FourierPoly { return make(FourierPoly, p.m) }

// getInvScratch returns an m-sized inverse scratch buffer from the pool.
func (p *Processor) getInvScratch() *invScratch {
	if v := p.invPool.Get(); v != nil {
		return v.(*invScratch)
	}
	return &invScratch{buf: make([]complex128, p.m)}
}

// putInvScratch returns scratch obtained from getInvScratch.
func (p *Processor) putInvScratch(s *invScratch) { p.invPool.Put(s) }

// forwardStages runs the full forward DIF pass sequence in place on buf,
// dispatching to the unsafe fast kernels when enabled.
func (p *Processor) forwardStages(buf []complex128) {
	if fastKernelOn() {
		for _, st := range p.fwd {
			if st.size >= 4 {
				fwdStage4Fast(buf, st.size, st.tw)
			} else {
				fwdStage2Fast(buf)
			}
		}
		return
	}
	for _, st := range p.fwd {
		if st.size >= 4 {
			fwdStage4Ref(buf, st.size, st.tw)
		} else {
			fwdStage2Ref(buf)
		}
	}
}

// ForwardTorusTo transforms a torus polynomial into the folded Fourier
// domain. Torus coefficients are interpreted as signed integers (centered
// representatives) to keep magnitudes small for double precision. dst is
// fully overwritten; src is read-only.
func (p *Processor) ForwardTorusTo(dst FourierPoly, src poly.Poly) {
	if src.N() != p.n || len(dst) != p.m {
		panic("fft: ForwardTorusTo size mismatch")
	}
	if fastKernelOn() {
		loadTorusFast(dst, src.Coeffs, p.twist)
	} else {
		loadTorusRef(dst, src.Coeffs, p.twist)
	}
	p.forwardStages(dst)
}

// ForwardTorus is ForwardTorusTo with allocation.
func (p *Processor) ForwardTorus(src poly.Poly) FourierPoly {
	dst := p.NewFourierPoly()
	p.ForwardTorusTo(dst, src)
	return dst
}

// ForwardIntTo transforms a small-integer polynomial (e.g. gadget
// decomposition digits) into the folded Fourier domain. dst is fully
// overwritten; src is read-only.
func (p *Processor) ForwardIntTo(dst FourierPoly, src []int32) {
	if len(src) != p.n || len(dst) != p.m {
		panic("fft: ForwardIntTo size mismatch")
	}
	if fastKernelOn() {
		loadIntFast(dst, src, p.twist)
	} else {
		loadIntRef(dst, src, p.twist)
	}
	p.forwardStages(dst)
}

// ForwardInt is ForwardIntTo with allocation.
func (p *Processor) ForwardInt(src []int32) FourierPoly {
	dst := p.NewFourierPoly()
	p.ForwardIntTo(dst, src)
	return dst
}

// InverseTo transforms back from the Fourier domain, rounding each real
// coefficient to the nearest integer modulo 2^32 and *adding* it into dst.
// The additive behaviour matches the Strix Accumulator Unit, which sums
// IFFT outputs in the time domain. fp is read-only: the butterfly passes
// run in pooled processor scratch, so a Fourier accumulator survives its
// own inverse transform and can be reused by the caller.
func (p *Processor) InverseTo(dst poly.Poly, fp FourierPoly) {
	if dst.N() != p.n || len(fp) != p.m {
		panic("fft: InverseTo size mismatch")
	}
	s := p.getInvScratch()
	p.inverseAccTo(dst.Coeffs, fp, s.buf)
	p.putInvScratch(s)
}

// inverseAccTo is the inverse kernel behind InverseTo: the first DIT
// stage copies fp into scratch as it computes (leaving fp untouched),
// middle stages run in place on scratch, and the final stage applies the
// fold — conj(twist)/m, round-to-torus, additive store — fused into its
// butterflies. scratch must have length m and is fully clobbered.
// When the transform is a single stage (m ≤ 4) it reads fp and folds
// directly into dst without touching scratch.
func (p *Processor) inverseAccTo(dst []torus.Torus32, fp FourierPoly, scratch []complex128) {
	stages := p.inv
	last := len(stages) - 1
	if fastKernelOn() {
		if last == 0 {
			invFoldFast(dst, fp, stages[0], p.untwist, p.m)
			return
		}
		invFirstFast(scratch, fp, stages[0].size)
		for i := 1; i < last; i++ {
			invStage4Fast(scratch, stages[i].size, stages[i].tw)
		}
		invFoldFast(dst, scratch, stages[last], p.untwist, p.m)
		return
	}
	if last == 0 {
		invFoldRef(dst, fp, stages[0], p.untwist, p.m)
		return
	}
	invFirstRef(scratch, fp, stages[0].size)
	for i := 1; i < last; i++ {
		invStage4Ref(scratch, stages[i].size, stages[i].tw)
	}
	invFoldRef(dst, scratch, stages[last], p.untwist, p.m)
}

// Inverse transforms back into a fresh polynomial (not additive).
func (p *Processor) Inverse(fp FourierPoly) poly.Poly {
	dst := poly.New(p.n)
	p.InverseTo(dst, fp)
	return dst
}

// roundToTorus rounds a real value to the nearest integer (halves away
// from zero, like math.Round) and reduces it modulo 2^32 via integer
// truncation, which is exact for |x| < 2^63. The input is only as good
// as double precision anyway: integers are representable exactly up to
// 2^53, so accumulated products beyond that have already lost low bits
// before rounding ever happens. The kernels keep hot-path magnitudes
// below ~2^52 (digit-sized operands against 32-bit torus coefficients);
// see the roundToTorus tests for the pinned boundary behaviour and the
// 2^53 cliff.
func roundToTorus(x float64) torus.Torus32 {
	// int64 -> Torus32 truncation is the mod-2^32 reduction; this runs
	// once per output coefficient, so no math.Mod call here.
	return torus.Torus32(int64(math.Round(x)))
}

// MulAcc sets acc += a ⊙ b (pointwise complex multiply-accumulate). This is
// the operation of the Strix VMA unit in the frequency domain. All three
// operands must have the same length; mismatched operands panic (a silent
// range-truncation here would corrupt ciphertexts noiselessly).
func MulAcc(acc, a, b FourierPoly) {
	if len(a) != len(acc) || len(b) != len(acc) {
		panic(fmt.Sprintf("fft: MulAcc size mismatch (acc %d, a %d, b %d)", len(acc), len(a), len(b)))
	}
	if fastKernelOn() {
		mulAccFast(acc, a, b)
		return
	}
	mulAccRef(acc, a, b)
}

// Mul sets dst = a ⊙ b. All three operands must have the same length;
// mismatched operands panic.
func Mul(dst, a, b FourierPoly) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic(fmt.Sprintf("fft: Mul size mismatch (dst %d, a %d, b %d)", len(dst), len(a), len(b)))
	}
	if fastKernelOn() {
		mulFast(dst, a, b)
		return
	}
	mulRef(dst, a, b)
}

// Clear zeroes fp.
func Clear(fp FourierPoly) {
	for i := range fp {
		fp[i] = 0
	}
}

// Copy returns a copy of fp.
func Copy(fp FourierPoly) FourierPoly {
	out := make(FourierPoly, len(fp))
	copy(out, fp)
	return out
}
