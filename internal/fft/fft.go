package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"repro/internal/poly"
	"repro/internal/torus"
)

// FourierPoly is a polynomial in the folded Fourier domain: N/2 complex
// evaluations at the odd 2N-th roots of unity (one per conjugate pair).
type FourierPoly []complex128

// Processor performs folded negacyclic FFTs for a fixed polynomial size N.
// It precomputes twiddle factors and twists; create one per N with
// NewProcessor and reuse it (it is safe for concurrent use, as all methods
// only read the precomputed tables and write to caller-provided buffers).
type Processor struct {
	n     int          // polynomial size N (power of two)
	m     int          // FFT size N/2
	twist []complex128 // e^(iπ j / N), j = 0..N/2-1
	wFwd  []complex128 // forward stage twiddles, e^(+2πi j / M) powers
	wInv  []complex128 // inverse stage twiddles, e^(-2πi j / M) powers
	rev   []int        // bit-reversal permutation for size M

	bufPool sync.Pool // *FourierPoly scratch buffers (see GetBuffer)
}

// NewProcessor returns a Processor for negacyclic polynomials of size n
// (a power of two, n >= 4).
func NewProcessor(n int) *Processor {
	if n < 4 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: invalid polynomial size %d", n))
	}
	m := n / 2
	p := &Processor{n: n, m: m}
	p.twist = make([]complex128, m)
	for j := 0; j < m; j++ {
		p.twist[j] = cmplx.Exp(complex(0, math.Pi*float64(j)/float64(n)))
	}
	p.wFwd = make([]complex128, m/2)
	p.wInv = make([]complex128, m/2)
	for j := 0; j < m/2; j++ {
		ang := 2 * math.Pi * float64(j) / float64(m)
		p.wFwd[j] = cmplx.Exp(complex(0, ang))
		p.wInv[j] = cmplx.Exp(complex(0, -ang))
	}
	p.rev = make([]int, m)
	shift := bits.UintSize - uint(bits.Len(uint(m-1)))
	for i := 0; i < m; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> shift)
	}
	return p
}

// N returns the polynomial size.
func (p *Processor) N() int { return p.n }

// M returns the FFT size N/2 (the folded length).
func (p *Processor) M() int { return p.m }

// NewFourierPoly allocates a zero FourierPoly of the right size.
func (p *Processor) NewFourierPoly() FourierPoly { return make(FourierPoly, p.m) }

// fftInPlace computes the in-place radix-2 DIT FFT of buf (length m) using
// the given twiddle table (wFwd for exponent +, wInv for exponent -).
func (p *Processor) fftInPlace(buf []complex128, w []complex128) {
	m := p.m
	for i := 0; i < m; i++ {
		if j := p.rev[i]; j > i {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	for size := 2; size <= m; size <<= 1 {
		half := size >> 1
		step := m / size
		for start := 0; start < m; start += size {
			for k := 0; k < half; k++ {
				tw := w[k*step]
				a := buf[start+k]
				b := buf[start+k+half] * tw
				buf[start+k] = a + b
				buf[start+k+half] = a - b
			}
		}
	}
}

// ForwardTorusTo transforms a torus polynomial into the folded Fourier
// domain. Torus coefficients are interpreted as signed integers (centered
// representatives) to keep magnitudes small for double precision.
func (p *Processor) ForwardTorusTo(dst FourierPoly, src poly.Poly) {
	if src.N() != p.n || len(dst) != p.m {
		panic("fft: ForwardTorusTo size mismatch")
	}
	for j := 0; j < p.m; j++ {
		c := complex(float64(int32(src.Coeffs[j])), float64(int32(src.Coeffs[j+p.m])))
		dst[j] = c * p.twist[j]
	}
	p.fftInPlace(dst, p.wFwd)
}

// ForwardTorus is ForwardTorusTo with allocation.
func (p *Processor) ForwardTorus(src poly.Poly) FourierPoly {
	dst := p.NewFourierPoly()
	p.ForwardTorusTo(dst, src)
	return dst
}

// ForwardIntTo transforms a small-integer polynomial (e.g. gadget
// decomposition digits) into the folded Fourier domain.
func (p *Processor) ForwardIntTo(dst FourierPoly, src []int32) {
	if len(src) != p.n || len(dst) != p.m {
		panic("fft: ForwardIntTo size mismatch")
	}
	for j := 0; j < p.m; j++ {
		c := complex(float64(src[j]), float64(src[j+p.m]))
		dst[j] = c * p.twist[j]
	}
	p.fftInPlace(dst, p.wFwd)
}

// ForwardInt is ForwardIntTo with allocation.
func (p *Processor) ForwardInt(src []int32) FourierPoly {
	dst := p.NewFourierPoly()
	p.ForwardIntTo(dst, src)
	return dst
}

// InverseTo transforms back from the Fourier domain, rounding each real
// coefficient to the nearest integer modulo 2^32 and *adding* it into dst.
// The additive behaviour matches the Strix Accumulator Unit, which sums
// IFFT outputs in the time domain. fp is clobbered.
func (p *Processor) InverseTo(dst poly.Poly, fp FourierPoly) {
	if dst.N() != p.n || len(fp) != p.m {
		panic("fft: InverseTo size mismatch")
	}
	p.fftInPlace(fp, p.wInv)
	inv := 1.0 / float64(p.m)
	for j := 0; j < p.m; j++ {
		c := fp[j] * complex(inv, 0) * cmplx.Conj(p.twist[j])
		dst.Coeffs[j] += roundToTorus(real(c))
		dst.Coeffs[j+p.m] += roundToTorus(imag(c))
	}
}

// Inverse transforms back into a fresh polynomial (not additive).
func (p *Processor) Inverse(fp FourierPoly) poly.Poly {
	dst := poly.New(p.n)
	p.InverseTo(dst, fp)
	return dst
}

// roundToTorus rounds a real value to the nearest integer and reduces it
// modulo 2^32. Values are folded with math.Mod first so magnitudes up to
// ~2^63 stay well-defined.
func roundToTorus(x float64) torus.Torus32 {
	x = math.Round(x)
	// Reduce mod 2^32 before conversion to avoid int64 overflow on the
	// largest accumulated products.
	x = math.Mod(x, 4294967296.0)
	return torus.Torus32(int64(x))
}

// MulAcc sets acc += a ⊙ b (pointwise complex multiply-accumulate). This is
// the operation of the Strix VMA unit in the frequency domain.
func MulAcc(acc, a, b FourierPoly) {
	for i := range acc {
		acc[i] += a[i] * b[i]
	}
}

// Mul sets dst = a ⊙ b.
func Mul(dst, a, b FourierPoly) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Clear zeroes fp.
func Clear(fp FourierPoly) {
	for i := range fp {
		fp[i] = 0
	}
}

// Copy returns a copy of fp.
func Copy(fp FourierPoly) FourierPoly {
	out := make(FourierPoly, len(fp))
	copy(out, fp)
	return out
}
