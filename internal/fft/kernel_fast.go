//go:build !purego

package fft

import (
	"unsafe"

	"repro/internal/poly"
	"repro/internal/torus"
)

// Fast kernels: the same butterfly/load/fold/MAC arithmetic as
// kernel_ref.go with unsafe pointer indexing instead of bounds-checked
// slice access, pointer-increment walks instead of computed indices, and
// (where it pays) unrolled loops. Every floating-point expression keeps
// the exact shape of its reference twin — complex multiplies as
// (ar*br-ai*bi, ar*bi+ai*br), i-multiplies as (-di, dr) — so fast and
// reference produce bitwise-identical Torus32 results on every public
// operation (the reference-kernel conformance backend enforces this).
// Excluded from `purego` builds.

const fastKernelAvailable = true

// f64 loads the float64 at byte offset off from p.
func f64(p unsafe.Pointer, off uintptr) float64 {
	return *(*float64)(unsafe.Add(p, off))
}

func loadTorusFast(dst FourierPoly, src []torus.Torus32, twist []float64) {
	m := len(dst)
	dp := unsafe.Pointer(unsafe.SliceData(dst))
	sp := unsafe.Pointer(unsafe.SliceData(src))
	sph := unsafe.Add(sp, uintptr(m)*4)
	tp := unsafe.Pointer(unsafe.SliceData(twist))
	for j := 0; j < m; j++ {
		ar := float64(int32(*(*torus.Torus32)(sp)))
		ai := float64(int32(*(*torus.Torus32)(sph)))
		tr, ti := f64(tp, 0), f64(tp, 8)
		*(*float64)(dp) = ar*tr - ai*ti
		*(*float64)(unsafe.Add(dp, 8)) = ar*ti + ai*tr
		dp = unsafe.Add(dp, 16)
		sp = unsafe.Add(sp, 4)
		sph = unsafe.Add(sph, 4)
		tp = unsafe.Add(tp, 16)
	}
}

func loadIntFast(dst FourierPoly, src []int32, twist []float64) {
	m := len(dst)
	dp := unsafe.Pointer(unsafe.SliceData(dst))
	sp := unsafe.Pointer(unsafe.SliceData(src))
	sph := unsafe.Add(sp, uintptr(m)*4)
	tp := unsafe.Pointer(unsafe.SliceData(twist))
	for j := 0; j < m; j++ {
		ar := float64(*(*int32)(sp))
		ai := float64(*(*int32)(sph))
		tr, ti := f64(tp, 0), f64(tp, 8)
		*(*float64)(dp) = ar*tr - ai*ti
		*(*float64)(unsafe.Add(dp, 8)) = ar*ti + ai*tr
		dp = unsafe.Add(dp, 16)
		sp = unsafe.Add(sp, 4)
		sph = unsafe.Add(sph, 4)
		tp = unsafe.Add(tp, 16)
	}
}

func fwdStage4Fast(buf []complex128, s int, tw []float64) {
	q := s >> 2
	qb := uintptr(q) * 16
	bp := unsafe.Pointer(unsafe.SliceData(buf))
	twp := unsafe.Pointer(unsafe.SliceData(tw))
	for b := 0; b < len(buf); b += s {
		p0 := unsafe.Add(bp, uintptr(b)*16)
		p1 := unsafe.Add(p0, qb)
		p2 := unsafe.Add(p1, qb)
		p3 := unsafe.Add(p2, qb)
		tp := twp
		for k := 0; k < q; k++ {
			a0r, a0i := f64(p0, 0), f64(p0, 8)
			a1r, a1i := f64(p1, 0), f64(p1, 8)
			a2r, a2i := f64(p2, 0), f64(p2, 8)
			a3r, a3i := f64(p3, 0), f64(p3, 8)
			t0r, t0i := a0r+a2r, a0i+a2i
			t1r, t1i := a0r-a2r, a0i-a2i
			t2r, t2i := a1r+a3r, a1i+a3i
			dr, di := a1r-a3r, a1i-a3i
			t3r, t3i := -di, dr
			w1r, w1i := f64(tp, 0), f64(tp, 8)
			w2r, w2i := f64(tp, 16), f64(tp, 24)
			w3r, w3i := f64(tp, 32), f64(tp, 40)
			tp = unsafe.Add(tp, 48)
			b1r, b1i := t1r+t3r, t1i+t3i
			b2r, b2i := t0r-t2r, t0i-t2i
			b3r, b3i := t1r-t3r, t1i-t3i
			*(*float64)(p0) = t0r + t2r
			*(*float64)(unsafe.Add(p0, 8)) = t0i + t2i
			*(*float64)(p1) = b1r*w1r - b1i*w1i
			*(*float64)(unsafe.Add(p1, 8)) = b1r*w1i + b1i*w1r
			*(*float64)(p2) = b2r*w2r - b2i*w2i
			*(*float64)(unsafe.Add(p2, 8)) = b2r*w2i + b2i*w2r
			*(*float64)(p3) = b3r*w3r - b3i*w3i
			*(*float64)(unsafe.Add(p3, 8)) = b3r*w3i + b3i*w3r
			p0 = unsafe.Add(p0, 16)
			p1 = unsafe.Add(p1, 16)
			p2 = unsafe.Add(p2, 16)
			p3 = unsafe.Add(p3, 16)
		}
	}
}

func fwdStage2Fast(buf []complex128) {
	p := unsafe.Pointer(unsafe.SliceData(buf))
	for i := 0; i < len(buf); i += 2 {
		a0r, a0i := f64(p, 0), f64(p, 8)
		a1r, a1i := f64(p, 16), f64(p, 24)
		*(*float64)(p) = a0r + a1r
		*(*float64)(unsafe.Add(p, 8)) = a0i + a1i
		*(*float64)(unsafe.Add(p, 16)) = a0r - a1r
		*(*float64)(unsafe.Add(p, 24)) = a0i - a1i
		p = unsafe.Add(p, 32)
	}
}

func invFirstFast(dst, src []complex128, size int) {
	dp := unsafe.Pointer(unsafe.SliceData(dst))
	sp := unsafe.Pointer(unsafe.SliceData(src))
	if size == 2 {
		for i := 0; i < len(src); i += 2 {
			a0r, a0i := f64(sp, 0), f64(sp, 8)
			a1r, a1i := f64(sp, 16), f64(sp, 24)
			*(*float64)(dp) = a0r + a1r
			*(*float64)(unsafe.Add(dp, 8)) = a0i + a1i
			*(*float64)(unsafe.Add(dp, 16)) = a0r - a1r
			*(*float64)(unsafe.Add(dp, 24)) = a0i - a1i
			sp = unsafe.Add(sp, 32)
			dp = unsafe.Add(dp, 32)
		}
		return
	}
	for i := 0; i < len(src); i += 4 {
		v0r, v0i := f64(sp, 0), f64(sp, 8)
		v1r, v1i := f64(sp, 16), f64(sp, 24)
		v2r, v2i := f64(sp, 32), f64(sp, 40)
		v3r, v3i := f64(sp, 48), f64(sp, 56)
		t0r, t0i := v0r+v2r, v0i+v2i
		t1r, t1i := v0r-v2r, v0i-v2i
		t2r, t2i := v1r+v3r, v1i+v3i
		dr, di := v1r-v3r, v1i-v3i
		t3r, t3i := -di, dr
		*(*float64)(dp) = t0r + t2r
		*(*float64)(unsafe.Add(dp, 8)) = t0i + t2i
		*(*float64)(unsafe.Add(dp, 16)) = t1r - t3r
		*(*float64)(unsafe.Add(dp, 24)) = t1i - t3i
		*(*float64)(unsafe.Add(dp, 32)) = t0r - t2r
		*(*float64)(unsafe.Add(dp, 40)) = t0i - t2i
		*(*float64)(unsafe.Add(dp, 48)) = t1r + t3r
		*(*float64)(unsafe.Add(dp, 56)) = t1i + t3i
		sp = unsafe.Add(sp, 64)
		dp = unsafe.Add(dp, 64)
	}
}

func invStage4Fast(buf []complex128, s int, tw []float64) {
	q := s >> 2
	qb := uintptr(q) * 16
	bp := unsafe.Pointer(unsafe.SliceData(buf))
	twp := unsafe.Pointer(unsafe.SliceData(tw))
	for b := 0; b < len(buf); b += s {
		p0 := unsafe.Add(bp, uintptr(b)*16)
		p1 := unsafe.Add(p0, qb)
		p2 := unsafe.Add(p1, qb)
		p3 := unsafe.Add(p2, qb)
		tp := twp
		for k := 0; k < q; k++ {
			x0r, x0i := f64(p0, 0), f64(p0, 8)
			x1r, x1i := f64(p1, 0), f64(p1, 8)
			x2r, x2i := f64(p2, 0), f64(p2, 8)
			x3r, x3i := f64(p3, 0), f64(p3, 8)
			w1r, w1i := f64(tp, 0), f64(tp, 8)
			w2r, w2i := f64(tp, 16), f64(tp, 24)
			w3r, w3i := f64(tp, 32), f64(tp, 40)
			tp = unsafe.Add(tp, 48)
			v1r, v1i := x1r*w1r-x1i*w1i, x1r*w1i+x1i*w1r
			v2r, v2i := x2r*w2r-x2i*w2i, x2r*w2i+x2i*w2r
			v3r, v3i := x3r*w3r-x3i*w3i, x3r*w3i+x3i*w3r
			t0r, t0i := x0r+v2r, x0i+v2i
			t1r, t1i := x0r-v2r, x0i-v2i
			t2r, t2i := v1r+v3r, v1i+v3i
			dr, di := v1r-v3r, v1i-v3i
			t3r, t3i := -di, dr
			*(*float64)(p0) = t0r + t2r
			*(*float64)(unsafe.Add(p0, 8)) = t0i + t2i
			*(*float64)(p1) = t1r - t3r
			*(*float64)(unsafe.Add(p1, 8)) = t1i - t3i
			*(*float64)(p2) = t0r - t2r
			*(*float64)(unsafe.Add(p2, 8)) = t0i - t2i
			*(*float64)(p3) = t1r + t3r
			*(*float64)(unsafe.Add(p3, 8)) = t1i + t3i
			p0 = unsafe.Add(p0, 16)
			p1 = unsafe.Add(p1, 16)
			p2 = unsafe.Add(p2, 16)
			p3 = unsafe.Add(p3, 16)
		}
	}
}

// foldAccFast applies the untwist factor at byte offsets derived from pos
// and accumulates the rounded components into the two dst halves.
func foldAccFast(dp, up unsafe.Pointer, mb uintptr, pos int, yr, yi float64) {
	u := unsafe.Add(up, uintptr(pos)*16)
	ur, ui := f64(u, 0), f64(u, 8)
	d := unsafe.Add(dp, uintptr(pos)*4)
	*(*torus.Torus32)(d) += roundToTorus(yr*ur - yi*ui)
	*(*torus.Torus32)(unsafe.Add(d, mb)) += roundToTorus(yr*ui + yi*ur)
}

func invFoldFast(dst []torus.Torus32, src []complex128, st stage, untwist []float64, m int) {
	dp := unsafe.Pointer(unsafe.SliceData(dst))
	up := unsafe.Pointer(unsafe.SliceData(untwist))
	sp := unsafe.Pointer(unsafe.SliceData(src))
	mb := uintptr(m) * 4
	if st.size == 2 {
		a0r, a0i := f64(sp, 0), f64(sp, 8)
		a1r, a1i := f64(sp, 16), f64(sp, 24)
		foldAccFast(dp, up, mb, 0, a0r+a1r, a0i+a1i)
		foldAccFast(dp, up, mb, 1, a0r-a1r, a0i-a1i)
		return
	}
	q := st.size >> 2
	qb := uintptr(q) * 16
	p0 := sp
	p1 := unsafe.Add(p0, qb)
	p2 := unsafe.Add(p1, qb)
	p3 := unsafe.Add(p2, qb)
	tp := unsafe.Pointer(unsafe.SliceData(st.tw))
	for k := 0; k < q; k++ {
		x0r, x0i := f64(p0, 0), f64(p0, 8)
		x1r, x1i := f64(p1, 0), f64(p1, 8)
		x2r, x2i := f64(p2, 0), f64(p2, 8)
		x3r, x3i := f64(p3, 0), f64(p3, 8)
		w1r, w1i := f64(tp, 0), f64(tp, 8)
		w2r, w2i := f64(tp, 16), f64(tp, 24)
		w3r, w3i := f64(tp, 32), f64(tp, 40)
		tp = unsafe.Add(tp, 48)
		v1r, v1i := x1r*w1r-x1i*w1i, x1r*w1i+x1i*w1r
		v2r, v2i := x2r*w2r-x2i*w2i, x2r*w2i+x2i*w2r
		v3r, v3i := x3r*w3r-x3i*w3i, x3r*w3i+x3i*w3r
		t0r, t0i := x0r+v2r, x0i+v2i
		t1r, t1i := x0r-v2r, x0i-v2i
		t2r, t2i := v1r+v3r, v1i+v3i
		dr, di := v1r-v3r, v1i-v3i
		t3r, t3i := -di, dr
		foldAccFast(dp, up, mb, k, t0r+t2r, t0i+t2i)
		foldAccFast(dp, up, mb, k+q, t1r-t3r, t1i-t3i)
		foldAccFast(dp, up, mb, k+2*q, t0r-t2r, t0i-t2i)
		foldAccFast(dp, up, mb, k+3*q, t1r+t3r, t1i+t3i)
		p0 = unsafe.Add(p0, 16)
		p1 = unsafe.Add(p1, 16)
		p2 = unsafe.Add(p2, 16)
		p3 = unsafe.Add(p3, 16)
	}
}

func mulAccFast(acc, a, b FourierPoly) {
	n := len(acc)
	cp := unsafe.Pointer(unsafe.SliceData(acc))
	ap := unsafe.Pointer(unsafe.SliceData(a))
	bp := unsafe.Pointer(unsafe.SliceData(b))
	i := 0
	for ; i+2 <= n; i += 2 {
		ar0, ai0 := f64(ap, 0), f64(ap, 8)
		br0, bi0 := f64(bp, 0), f64(bp, 8)
		cr0, ci0 := f64(cp, 0), f64(cp, 8)
		ar1, ai1 := f64(ap, 16), f64(ap, 24)
		br1, bi1 := f64(bp, 16), f64(bp, 24)
		cr1, ci1 := f64(cp, 16), f64(cp, 24)
		*(*float64)(cp) = cr0 + (ar0*br0 - ai0*bi0)
		*(*float64)(unsafe.Add(cp, 8)) = ci0 + (ar0*bi0 + ai0*br0)
		*(*float64)(unsafe.Add(cp, 16)) = cr1 + (ar1*br1 - ai1*bi1)
		*(*float64)(unsafe.Add(cp, 24)) = ci1 + (ar1*bi1 + ai1*br1)
		ap = unsafe.Add(ap, 32)
		bp = unsafe.Add(bp, 32)
		cp = unsafe.Add(cp, 32)
	}
	for ; i < n; i++ {
		ar, ai := f64(ap, 0), f64(ap, 8)
		br, bi := f64(bp, 0), f64(bp, 8)
		cr, ci := f64(cp, 0), f64(cp, 8)
		*(*float64)(cp) = cr + (ar*br - ai*bi)
		*(*float64)(unsafe.Add(cp, 8)) = ci + (ar*bi + ai*br)
		ap = unsafe.Add(ap, 16)
		bp = unsafe.Add(bp, 16)
		cp = unsafe.Add(cp, 16)
	}
}

func mulFast(dst, a, b FourierPoly) {
	n := len(dst)
	dp := unsafe.Pointer(unsafe.SliceData(dst))
	ap := unsafe.Pointer(unsafe.SliceData(a))
	bp := unsafe.Pointer(unsafe.SliceData(b))
	for i := 0; i < n; i++ {
		ar, ai := f64(ap, 0), f64(ap, 8)
		br, bi := f64(bp, 0), f64(bp, 8)
		*(*float64)(dp) = ar*br - ai*bi
		*(*float64)(unsafe.Add(dp, 8)) = ar*bi + ai*br
		ap = unsafe.Add(ap, 16)
		bp = unsafe.Add(bp, 16)
		dp = unsafe.Add(dp, 16)
	}
}

// decompLoadFast is the fast fused decompose+twist load. Digit extraction
// is branchless — rounding folds into a masked add, and the balanced-range
// borrow becomes carry = (d + B/2 - 1) >> baseLog, which is 1 exactly when
// the digit exceeds B/2 — and the twisted complex points are stored
// through per-level walking pointers. The digits are identical to
// Decomposer.DigitsTo's (integer math is exact; pinned by test). BaseLog
// 32 would overflow the branchless carry, so it falls back to the
// reference load.
func (p *Processor) decompLoadFast(dsts []FourierPoly, dec poly.Decomposer, src poly.Poly) {
	lb := dec.Level
	bl := uint(dec.BaseLog)
	if bl >= 32 || lb > 32 {
		p.decompLoadRef(dsts, dec, src)
		return
	}
	m := p.m
	var dp [32]unsafe.Pointer
	for l := 0; l < lb; l++ {
		dp[l] = unsafe.Pointer(unsafe.SliceData(dsts[l]))
	}
	sp := unsafe.Pointer(unsafe.SliceData(src.Coeffs))
	sph := unsafe.Add(sp, uintptr(m)*4)
	tp := unsafe.Pointer(unsafe.SliceData(p.twist))
	rshift := 32 - bl*uint(lb)
	rmask := ^uint32(0)
	var rhalf uint32
	if rshift > 0 {
		rmask <<= rshift
		rhalf = 1 << (rshift - 1)
	}
	mask := uint32(1)<<bl - 1
	half := uint32(1) << (bl - 1)
	var da, db [32]int32
	for j := 0; j < m; j++ {
		ra := (*(*uint32)(sp) + rhalf) & rmask
		rb := (*(*uint32)(sph) + rhalf) & rmask
		ca, cb := uint32(0), uint32(0)
		sh := rshift
		for l := lb - 1; l >= 0; l-- {
			d := (ra>>sh)&mask + ca
			ca = (d + half - 1) >> bl
			da[l] = int32(d - ca<<bl)
			d = (rb>>sh)&mask + cb
			cb = (d + half - 1) >> bl
			db[l] = int32(d - cb<<bl)
			sh += bl
		}
		tr, ti := f64(tp, 0), f64(tp, 8)
		for l := 0; l < lb; l++ {
			ar, ai := float64(da[l]), float64(db[l])
			*(*float64)(dp[l]) = ar*tr - ai*ti
			*(*float64)(unsafe.Add(dp[l], 8)) = ar*ti + ai*tr
			dp[l] = unsafe.Add(dp[l], 16)
		}
		sp = unsafe.Add(sp, 4)
		sph = unsafe.Add(sph, 4)
		tp = unsafe.Add(tp, 16)
	}
}
