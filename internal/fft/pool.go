package fft

import "sync"

// Shared processors, keyed by polynomial size. A Processor's tables are
// immutable after construction, so a single instance per N can serve every
// goroutine in the process; sync.Map makes the steady-state lookup a single
// atomic load instead of the mutex-per-call a plain map would need. Key
// generation, GLWE encryption and the batch engine's worker pool all hit
// this path concurrently.
var sharedProcs sync.Map // int -> *Processor

// SharedProcessor returns the process-wide Processor for polynomial size n,
// building it on first use. Concurrent first calls may each build a
// candidate; LoadOrStore keeps exactly one.
func SharedProcessor(n int) *Processor {
	if p, ok := sharedProcs.Load(n); ok {
		return p.(*Processor)
	}
	p, _ := sharedProcs.LoadOrStore(n, NewProcessor(n))
	return p.(*Processor)
}

// GetBuffer returns a zeroed FourierPoly of size M from the processor's
// scratch pool. Return it with PutBuffer when done; buffers cycle through
// a sync.Pool so hot paths (key generation, batched bootstrapping) stop
// allocating a fresh transform buffer per call.
func (p *Processor) GetBuffer() FourierPoly {
	if v := p.bufPool.Get(); v != nil {
		fp := *v.(*FourierPoly)
		Clear(fp)
		return fp
	}
	return p.NewFourierPoly()
}

// PutBuffer returns a buffer obtained from GetBuffer (or any FourierPoly of
// the right size) to the pool. Wrong-size buffers are dropped.
func (p *Processor) PutBuffer(fp FourierPoly) {
	if len(fp) != p.m {
		return
	}
	p.bufPool.Put(&fp)
}
