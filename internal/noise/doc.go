// Package noise provides the variance analysis of TFHE operations: closed
// form predictions of the noise growth through external products, blind
// rotation, modulus switching and keyswitching, following the analysis of
// the TFHE papers the Strix paper builds on (refs [17], [43]).
//
// The predictions are validated against Monte-Carlo measurements of the
// functional library (see noise_test.go), and they justify the parameter
// choices in internal/tfhe: a gate bootstrap decrypts correctly when the
// total phase deviation stays below the 1/16 decision margin.
package noise
