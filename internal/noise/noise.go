package noise

import (
	"math"

	"repro/internal/tfhe"
)

// Budget describes an error budget: the maximum phase deviation the
// encoding tolerates, and the predicted standard deviation.
type Budget struct {
	Margin  float64 // decision margin (torus distance)
	StdDev  float64 // predicted phase standard deviation
	Sigmas  float64 // margin / stddev
	Failure float64 // two-sided gaussian tail probability at the margin
}

// Analyzer predicts noise variances for a parameter set.
type Analyzer struct {
	P tfhe.Params
}

// FreshLWEVariance returns the phase variance of a fresh LWE encryption.
func (a Analyzer) FreshLWEVariance() float64 {
	return a.P.LWEStdDev * a.P.LWEStdDev
}

// gadgetEpsilon2 returns the variance of the gadget rounding error for a
// base-2^baseLog, level-l decomposition: the residue is uniform in
// ±Q/(2·B^l), i.e. variance (1/B^l)²/12 in torus units.
func gadgetEpsilon2(baseLog, level int) float64 {
	q := math.Pow(2, -float64(baseLog*level))
	return q * q / 12
}

// ExternalProductVariance returns the variance added to a GLWE ciphertext
// by one external product with a fresh GGSW (per §V of TFHE [17]):
//
//	V_add = (k+1)·l·N·(B²/12)·σ_ggsw²  +  (1 + k·N/2)·ε²
//
// The first term is the decomposed-digit times key-noise contribution; the
// second is the gadget rounding error propagated through the secret key
// (binary key: expected weight N/2 per polynomial).
func (a Analyzer) ExternalProductVariance() float64 {
	p := a.P
	b2 := math.Pow(2, 2*float64(p.PBSBaseLog)) / 12 // E[digit²] for balanced digits
	keyTerm := float64((p.K+1)*p.PBSLevel) * float64(p.N) * b2 * p.GLWEStdDev * p.GLWEStdDev
	eps2 := gadgetEpsilon2(p.PBSBaseLog, p.PBSLevel)
	roundTerm := (1 + float64(p.K*p.N)/2) * eps2
	return keyTerm + roundTerm
}

// BlindRotateVariance returns the accumulator variance after a full blind
// rotation: n CMux external products.
func (a Analyzer) BlindRotateVariance() float64 {
	return float64(a.P.SmallN) * a.ExternalProductVariance()
}

// ModSwitchVariance returns the phase variance added by switching the LWE
// ciphertext from modulus 2^32 to 2N: each of the n mask coefficients
// rounds with variance (1/2N)²/12 and multiplies a key bit (E[s]=1/2),
// plus the body's own rounding.
func (a Analyzer) ModSwitchVariance() float64 {
	step := 1.0 / float64(2*a.P.N)
	r := step * step / 12
	return r * (1 + float64(a.P.SmallN)/2)
}

// KeySwitchVariance returns the variance added by keyswitching from
// dimension k·N to n:
//
//	V_ks = k·N·lk·(B²/12)·σ_ksk²  +  k·N·(1/2)·ε_ks²
func (a Analyzer) KeySwitchVariance() float64 {
	p := a.P
	big := float64(p.ExtractedN())
	b2 := math.Pow(2, 2*float64(p.KSBaseLog)) / 12
	keyTerm := big * float64(p.KSLevel) * b2 * p.LWEStdDev * p.LWEStdDev
	eps2 := gadgetEpsilon2(p.KSBaseLog, p.KSLevel)
	return keyTerm + big/2*eps2
}

// BootstrapOutputVariance returns the phase variance of a PBS output after
// keyswitching — the noise of a freshly bootstrapped ciphertext.
func (a Analyzer) BootstrapOutputVariance() float64 {
	return a.BlindRotateVariance() + a.KeySwitchVariance()
}

// GateNoiseStdDev returns the predicted phase standard deviation at the
// *decision point* of a binary gate: two freshly bootstrapped inputs are
// combined linearly, then the result is modulus-switched for the next
// blind rotation.
func (a Analyzer) GateNoiseStdDev() float64 {
	v := 2*a.BootstrapOutputVariance() + a.ModSwitchVariance()
	return math.Sqrt(v)
}

// GateBudget evaluates the gate-bootstrapping error budget: the boolean
// encoding ±1/8 gives a 1/16 margin around the decision boundary.
func (a Analyzer) GateBudget() Budget {
	std := a.GateNoiseStdDev()
	const margin = 1.0 / 16.0
	return newBudget(margin, std)
}

// LUTBudget evaluates the PBS lookup-table budget for a message space:
// slots have width 1/(2·space) and the input is centered, so the margin is
// 1/(4·space).
func (a Analyzer) LUTBudget(space int) Budget {
	v := a.FreshLWEVariance() + a.ModSwitchVariance()
	std := math.Sqrt(v)
	return newBudget(1.0/float64(4*space), std)
}

func newBudget(margin, std float64) Budget {
	sig := margin / std
	return Budget{
		Margin:  margin,
		StdDev:  std,
		Sigmas:  sig,
		Failure: math.Erfc(sig / math.Sqrt2),
	}
}

// MaxMessageSpace returns the largest power-of-two message space for which
// the LUT budget keeps at least `sigmas` standard deviations of margin —
// how much precision a parameter set supports (the reason the paper's set
// IV exists: "better precision").
func (a Analyzer) MaxMessageSpace(sigmas float64) int {
	space := 2
	for space <= 1<<20 {
		next := space * 2
		if a.LUTBudget(next).Sigmas < sigmas {
			break
		}
		space = next
	}
	return space
}
