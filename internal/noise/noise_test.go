package noise

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tfhe"
	"repro/internal/torus"
)

func TestGateBudgetAllSets(t *testing.T) {
	// Every standard parameter set must leave a healthy gate margin
	// (otherwise the library's own gates would be unreliable).
	for _, p := range append(tfhe.StandardSets(), tfhe.ParamsTest) {
		b := Analyzer{P: p}.GateBudget()
		if b.Sigmas < 4 {
			t.Errorf("set %s: gate margin only %.1f sigmas (std %.2g)", p.Name, b.Sigmas, b.StdDev)
		}
		if b.Failure > 1e-4 {
			t.Errorf("set %s: gate failure probability %.2g too high", p.Name, b.Failure)
		}
	}
}

func TestVariancesPositiveAndOrdered(t *testing.T) {
	a := Analyzer{P: tfhe.ParamsI}
	if a.ExternalProductVariance() <= 0 {
		t.Fatal("external product variance must be positive")
	}
	if a.BlindRotateVariance() <= a.ExternalProductVariance() {
		t.Error("blind rotation accumulates n external products")
	}
	if a.BootstrapOutputVariance() <= a.BlindRotateVariance() {
		t.Error("keyswitching adds noise on top of blind rotation")
	}
}

func TestSetIVSupportsMorePrecision(t *testing.T) {
	// The paper introduces set IV for "better precision": its larger N
	// must support a larger message space than set I at equal confidence.
	s1 := Analyzer{P: tfhe.ParamsI}.MaxMessageSpace(4)
	s4 := Analyzer{P: tfhe.ParamsIV}.MaxMessageSpace(4)
	if s4 <= s1 {
		t.Errorf("set IV max space %d should exceed set I's %d", s4, s1)
	}
	if s1 < 4 {
		t.Errorf("set I should support at least 2-bit messages, got %d", s1)
	}
}

func TestModSwitchVarianceShrinksWithN(t *testing.T) {
	a1 := Analyzer{P: tfhe.ParamsI}  // N=1024
	a4 := Analyzer{P: tfhe.ParamsIV} // N=16384
	if a4.ModSwitchVariance() >= a1.ModSwitchVariance() {
		t.Error("larger N should reduce modulus-switching noise")
	}
}

// measureStd empirically measures the phase error of `trials` fresh
// encrypt-operate-decrypt runs using fn, which returns the signed phase
// deviation of one run.
func measureStd(trials int, fn func(i int) float64) float64 {
	var sumSq float64
	for i := 0; i < trials; i++ {
		d := fn(i)
		sumSq += d * d
	}
	return math.Sqrt(sumSq / float64(trials))
}

func TestMonteCarloKeySwitchVariance(t *testing.T) {
	// Empirical keyswitch noise must match the closed-form prediction
	// within Monte-Carlo tolerance (x/÷ 1.5 at 200 trials).
	p := tfhe.ParamsTest
	rng := rand.New(rand.NewSource(11))
	sk, ek := tfhe.GenerateKeys(rng, p)
	ev := tfhe.NewEvaluator(ek)

	pred := math.Sqrt(Analyzer{P: p}.KeySwitchVariance())
	got := measureStd(200, func(i int) float64 {
		mu := torus.EncodeMessage(i%8, 8)
		ct := sk.BigLWE.Encrypt(rng, mu, 0) // zero input noise isolates KS noise
		out := ev.KeySwitch(ct)
		return torus.ToSignedFloat(sk.LWE.Phase(out) - mu)
	})
	if got > 1.5*pred || got < pred/1.5 {
		t.Errorf("keyswitch noise std: measured %.3g, predicted %.3g", got, pred)
	}
}

func TestMonteCarloBlindRotateVariance(t *testing.T) {
	// Empirical PBS output noise (before KS) against the blind-rotation
	// prediction. Uses the sign bootstrap so the ideal output is exactly
	// ±1/8.
	p := tfhe.ParamsTest
	rng := rand.New(rand.NewSource(12))
	sk, ek := tfhe.GenerateKeys(rng, p)
	ev := tfhe.NewEvaluator(ek)

	pred := math.Sqrt(Analyzer{P: p}.BlindRotateVariance())
	mu := torus.FromFloat(0.125)
	tv := ev.NewLUTTestVector(1, func(int) torus.Torus32 { return mu })

	got := measureStd(40, func(i int) float64 {
		ct := sk.LWE.Encrypt(rng, torus.FromFloat(0.25), p.LWEStdDev)
		out := ev.Bootstrap(ct, tv)
		return torus.ToSignedFloat(sk.BigLWE.Phase(out) - mu)
	})
	// The FFT path adds small rounding noise on top of the prediction;
	// allow a factor 2 band.
	if got > 2*pred || got < pred/3 {
		t.Errorf("blind-rotate noise std: measured %.3g, predicted %.3g", got, pred)
	}
}

func TestMonteCarloGateReliability(t *testing.T) {
	// With the predicted margin >= 4 sigma, 100 random gates must all
	// decrypt correctly.
	p := tfhe.ParamsTest
	rng := rand.New(rand.NewSource(13))
	sk, ek := tfhe.GenerateKeys(rng, p)
	ev := tfhe.NewEvaluator(ek)
	for i := 0; i < 100; i++ {
		a := rng.Intn(2) == 1
		b := rng.Intn(2) == 1
		ca := sk.EncryptBool(rng, a)
		cb := sk.EncryptBool(rng, b)
		if got := sk.DecryptBool(ev.NAND(ca, cb)); got != !(a && b) {
			t.Fatalf("gate %d: NAND(%v,%v) = %v", i, a, b, got)
		}
	}
}

func TestBudgetFields(t *testing.T) {
	b := newBudget(1.0/16, 1.0/160)
	if math.Abs(b.Sigmas-10) > 1e-9 {
		t.Errorf("sigmas = %v, want 10", b.Sigmas)
	}
	if b.Failure > 1e-20 {
		t.Errorf("10-sigma failure %v should be negligible", b.Failure)
	}
}
