package baseline

import (
	"fmt"

	"repro/internal/tfhe"
)

// CPUModel models single-thread Concrete executing TFHE. Per-set PBS+KS
// latencies are calibrated to the paper's Table V CPU rows; the
// within-operation breakdown is derived from the *functional* library's
// operation counters (internal/tfhe), not hard-coded, so Fig 1 is a real
// measurement of the algorithm we implement.
type CPUModel struct {
	// GateMs maps parameter-set name to the measured per-gate
	// (PBS+KS+linear) latency in milliseconds.
	GateMs map[string]float64
	// Threads models farm parallelism across independent PBS operations
	// (1 = the Table V microbenchmark configuration).
	Threads int
}

// NewCPUModel returns the Table V-calibrated CPU model.
func NewCPUModel() CPUModel {
	return CPUModel{
		GateMs:  map[string]float64{"I": 14.0, "II": 19.0, "III": 38.0, "IV": 969.0},
		Threads: 1,
	}
}

// PBSLatencyMs returns the single-PBS latency for a parameter set.
func (c CPUModel) PBSLatencyMs(set string) (float64, error) {
	ms, ok := c.GateMs[set]
	if !ok {
		return 0, fmt.Errorf("baseline: CPU model has no calibration for set %q", set)
	}
	return ms, nil
}

// ThroughputPBS returns PBS/s (serial execution: 1/latency per thread).
func (c CPUModel) ThroughputPBS(set string) (float64, error) {
	ms, err := c.PBSLatencyMs(set)
	if err != nil {
		return 0, err
	}
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	return float64(threads) * 1000.0 / ms, nil
}

// RunPBS returns the execution time in seconds for count independent PBS
// operations.
func (c CPUModel) RunPBS(set string, count int) (float64, error) {
	thr, err := c.ThroughputPBS(set)
	if err != nil {
		return 0, err
	}
	return float64(count) / thr, nil
}

// CostWeights are relative per-element CPU costs used to convert operation
// counts into a time breakdown (arbitrary units; only ratios matter).
// An FFT of M points costs M·log2(M) units; scalar ops cost 1.
type CostWeights struct {
	FFTPointLog  float64 // per (point × log2 point) of a transform
	VMAMul       float64 // per complex multiply-accumulate
	RotateCoeff  float64 // per coefficient rotated
	DecompCoeff  float64 // per coefficient decomposed
	AccumCoeff   float64 // per coefficient accumulated
	KSMac        float64 // per keyswitch multiply-accumulate
	KSDecomp     float64 // per keyswitch scalar decomposition
	ScalarLinear float64 // per scalar linear-op element
}

// DefaultCostWeights reflect a scalar CPU implementation in which the
// transform butterflies and the keyswitch MACs dominate.
func DefaultCostWeights() CostWeights {
	return CostWeights{
		FFTPointLog:  1.0,
		VMAMul:       1.0,
		RotateCoeff:  0.25,
		DecompCoeff:  1.0,
		AccumCoeff:   0.25,
		KSMac:        2.75,
		KSDecomp:     2.0,
		ScalarLinear: 1.0,
	}
}

// Breakdown is the Fig 1 decomposition of one gate's CPU execution.
type Breakdown struct {
	// Top level (fractions of total, summing to 1).
	PBSFrac   float64
	KSFrac    float64
	OtherFrac float64
	// Within PBS.
	BlindRotateFrac float64 // of PBS time
	// Within one blind-rotation iteration.
	FFTFrac     float64
	VMAFrac     float64
	IFFTAccFrac float64
	DecompFrac  float64
	RotateFrac  float64
}

// GateBreakdown executes one real homomorphic gate with the functional
// library under the given (typically test-sized) parameters, converts the
// recorded operation counts to time with the cost weights, and returns the
// Fig 1 breakdown. The *structure* (which loops dominate) comes from the
// real algorithm; the weights only set relative scalar costs.
func GateBreakdown(p tfhe.Params, ev *tfhe.Evaluator, w CostWeights) Breakdown {
	c := ev.Counters

	m := float64(p.N / 2) // transform points
	logM := log2f(m)

	fft := float64(c.ForwardFFTs) * m * logM * w.FFTPointLog
	ifft := float64(c.InverseFFTs) * m * logM * w.FFTPointLog
	vma := float64(c.VMAMuls) * w.VMAMul
	rot := float64(c.Rotations) * float64((p.K+1)*p.N) * w.RotateCoeff
	dec := float64(c.Decompositions) * float64(p.N*p.PBSLevel) * w.DecompCoeff
	acc := float64(c.Accumulations) * w.AccumCoeff
	modswitch := float64(c.ModSwitches) * w.ScalarLinear
	extract := float64(c.SampleExtracts) * float64(p.ExtractedN()) * w.ScalarLinear

	pbs := fft + ifft + vma + rot + dec + acc + modswitch + extract
	ks := float64(c.KSMACs)*w.KSMac + float64(c.KSDecompScalar)*w.KSDecomp
	other := float64(c.LinearOps)*float64(p.SmallN+1)*w.ScalarLinear +
		0.05*(pbs+ks) // framework overhead (allocation, encoding)

	total := pbs + ks + other
	br := fft + ifft + vma + rot + dec + acc
	iter := br
	return Breakdown{
		PBSFrac:         pbs / total,
		KSFrac:          ks / total,
		OtherFrac:       other / total,
		BlindRotateFrac: br / pbs,
		FFTFrac:         fft / iter,
		VMAFrac:         vma / iter,
		IFFTAccFrac:     (ifft + acc) / iter,
		DecompFrac:      dec / iter,
		RotateFrac:      rot / iter,
	}
}

func log2f(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}
