package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tfhe"
)

func TestCPULatenciesMatchTableV(t *testing.T) {
	c := NewCPUModel()
	want := map[string]float64{"I": 14, "II": 19, "III": 38, "IV": 969}
	for set, ms := range want {
		got, err := c.PBSLatencyMs(set)
		if err != nil || got != ms {
			t.Errorf("set %s: %v ms, err %v; want %v", set, got, err, ms)
		}
	}
	if _, err := c.PBSLatencyMs("V"); err == nil {
		t.Error("unknown set should error")
	}
}

func TestCPUThroughputIsInverseLatency(t *testing.T) {
	c := NewCPUModel()
	thr, err := c.ThroughputPBS("I")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thr-71.4) > 1 {
		t.Errorf("set I throughput %v, want ~71 PBS/s (Table V: 70)", thr)
	}
}

func TestCPURunPBSSerial(t *testing.T) {
	c := NewCPUModel()
	secs, err := c.RunPBS("I", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(secs-14.0) > 0.01 {
		t.Errorf("1000 PBS = %v s, want 14 s", secs)
	}
}

func TestCPUThreadsScale(t *testing.T) {
	c := NewCPUModel()
	c.Threads = 32
	secs, err := c.RunPBS("I", 3200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(secs-1.4) > 0.01 {
		t.Errorf("3200 PBS on 32 threads = %v s, want 1.4 s", secs)
	}
}

func TestGPUFragmentsEquation2(t *testing.T) {
	g := NewGPUModel()
	cases := []struct{ lwe, frag int }{
		{0, 0}, {1, 0}, {72, 0}, {73, 1}, {144, 1}, {145, 2}, {288, 3},
	}
	for _, c := range cases {
		if got := g.Fragments(c.lwe); got != c.frag {
			t.Errorf("Fragments(%d) = %d, want %d", c.lwe, got, c.frag)
		}
	}
}

func TestGPUDeviceLevelStepFunction(t *testing.T) {
	// Fig 2 left: flat at 1 through 72 LWEs, 2 through 144, etc.
	g := NewGPUModel()
	s := g.DeviceLevelSeries(288)
	if s[0] != 1 || s[71] != 1 {
		t.Error("1..72 LWEs should take 1 normalized unit")
	}
	if s[72] != 2 || s[143] != 2 {
		t.Error("73..144 LWEs should take 2 normalized units")
	}
	if s[287] != 4 {
		t.Error("288 LWEs should take 4 normalized units")
	}
}

func TestGPUCoreLevelLinearGrowth(t *testing.T) {
	// Fig 2 right: core-level batching on the GPU scales time linearly —
	// no benefit (the paper's motivation for specialized hardware).
	g := NewGPUModel()
	s := g.CoreLevelSeries(3)
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("core-level series = %v, want [1 2 3]", s)
	}
}

func TestGPUTableVNumbers(t *testing.T) {
	g := NewGPUModel()
	thr, err := g.ThroughputPBS("I")
	if err != nil || math.Abs(thr-2000) > 1 {
		t.Errorf("set I throughput %v err %v, want 2000", thr, err)
	}
	lat, err := g.PBSLatencyMs("I")
	if err != nil || math.Abs(lat-37) > 0.5 {
		t.Errorf("set I latency %v err %v, want 37", lat, err)
	}
	thr2, err := g.ThroughputPBS("II")
	if err != nil || math.Abs(thr2-500) > 1 {
		t.Errorf("set II throughput %v err %v, want 500", thr2, err)
	}
	if _, err := g.RunPBS("IV", 10); err == nil {
		t.Error("NuFHE should reject set IV")
	}
}

func TestGPURunPBSAppliesEquation1(t *testing.T) {
	g := NewGPUModel()
	t1, _ := g.RunPBS("I", 72)
	t2, _ := g.RunPBS("I", 73)
	if ratio := t2 / t1; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("fragmentation should double time at 73 LWEs: ratio %v", ratio)
	}
	zero, err := g.RunPBS("I", 0)
	if err != nil || zero != 0 {
		t.Errorf("RunPBS(0) = %v, %v", zero, err)
	}
}

func TestGPUScaledBatch(t *testing.T) {
	g := NewGPUModel()
	// Same degree → same time.
	same, err := g.ScaledBatchMs("I", 1024, 1024)
	if err != nil || math.Abs(same-36) > 1e-9 {
		t.Errorf("self-scaled batch %v, err %v", same, err)
	}
	// Doubling N more than doubles time (N log N).
	big, _ := g.ScaledBatchMs("I", 1024, 2048)
	if big <= 2*36 {
		t.Errorf("N=2048 batch %v should exceed 72 ms", big)
	}
}

func TestPublishedComparators(t *testing.T) {
	rows := PublishedComparators()
	if len(rows) != 5 {
		t.Fatalf("%d comparator rows, want 5", len(rows))
	}
	var matcha *Comparator
	for i := range rows {
		if rows[i].Platform == "Matcha" {
			matcha = &rows[i]
		}
	}
	if matcha == nil || matcha.PBSPerSec != 10000 {
		t.Error("Matcha row missing or wrong")
	}
}

func TestGateBreakdownMatchesFig1(t *testing.T) {
	// Run a real gate with the functional library and check the derived
	// breakdown against the paper's Fig 1 narrative: PBS ~65%, KS ~30%,
	// other ~5%; blind rotation ≥ 95% of PBS; FFT share exceeds IFFT
	// share by the lb:1 imbalance.
	rng := rand.New(rand.NewSource(99))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	ev := tfhe.NewEvaluator(ek)
	a := sk.EncryptBool(rng, true)
	b := sk.EncryptBool(rng, false)
	ev.NAND(a, b)

	bd := GateBreakdown(tfhe.ParamsTest, ev, DefaultCostWeights())

	if sum := bd.PBSFrac + bd.KSFrac + bd.OtherFrac; math.Abs(sum-1) > 1e-9 {
		t.Errorf("top-level fractions sum to %v", sum)
	}
	if bd.PBSFrac < 0.5 || bd.PBSFrac > 0.85 {
		t.Errorf("PBS fraction %.2f outside the Fig 1 ballpark (~0.65)", bd.PBSFrac)
	}
	if bd.KSFrac < 0.1 || bd.KSFrac > 0.45 {
		t.Errorf("KS fraction %.2f outside the Fig 1 ballpark (~0.30)", bd.KSFrac)
	}
	if bd.BlindRotateFrac < 0.9 {
		t.Errorf("blind rotation %.2f of PBS, want >= 0.9 (paper: 96-98%%)", bd.BlindRotateFrac)
	}
	// FFT processes lb polys per IFFT poly (§III).
	if bd.FFTFrac <= bd.IFFTAccFrac {
		t.Errorf("FFT share %.2f should exceed IFFT+accum share %.2f", bd.FFTFrac, bd.IFFTAccFrac)
	}
}
