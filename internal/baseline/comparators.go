package baseline

// Comparator records the published latency/throughput of a prior
// accelerator for one parameter set — the YKP (FPGA), XHEC (FPGA) and
// Matcha (ASIC) rows of Table V, which the paper itself cites from the
// respective publications (no simulator exists to regenerate them).
type Comparator struct {
	Platform  string
	Kind      string // "CPU", "GPU", "FPGA", "ASIC"
	Set       string
	LatencyMs float64 // 0 = not reported
	PBSPerSec float64
}

// PublishedComparators returns the non-Strix, non-CPU/GPU rows of Table V.
func PublishedComparators() []Comparator {
	return []Comparator{
		{Platform: "YKP", Kind: "FPGA", Set: "I", LatencyMs: 1.88, PBSPerSec: 2657},
		{Platform: "YKP", Kind: "FPGA", Set: "III", LatencyMs: 4.78, PBSPerSec: 836},
		{Platform: "XHEC", Kind: "FPGA", Set: "I", LatencyMs: 0, PBSPerSec: 2200},
		{Platform: "XHEC", Kind: "FPGA", Set: "II", LatencyMs: 0, PBSPerSec: 1800},
		{Platform: "Matcha", Kind: "ASIC", Set: "I", LatencyMs: 0.20, PBSPerSec: 10000},
	}
}

// MatchaThroughput is the state-of-the-art ASIC baseline the paper's
// headline 7.4× improvement is measured against (set I).
const MatchaThroughput = 10000.0
