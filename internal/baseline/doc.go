// Package baseline models the platforms Strix is compared against in the
// paper's evaluation: the Concrete CPU library (Fig 1, Table V), the NuFHE
// GPU library with its device-level batching and blind-rotation
// fragmentation (Fig 2, Table V), and the published FPGA/ASIC comparators
// (Table V).
package baseline
