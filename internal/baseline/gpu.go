package baseline

import (
	"fmt"
	"math"
)

// GPUModel models NuFHE on a 72-SM GPU (Titan RTX). Its central behaviour
// is *device-level batching with blind-rotation fragmentation* (§III):
// every SM executes one ciphertext's blind rotation and all SMs share the
// iteration's bootstrapping key, so execution time is flat up to 72
// ciphertexts and then steps — equations (1) and (2) of the paper:
//
//	total = (#fragments + 1) · BR-time-per-core,
//	#fragments = ceil(#ciphertexts / batch) − 1.
type GPUModel struct {
	SMs int // device-level batch size (cores)

	// BatchMs maps parameter-set name to the time of one fully-batched
	// blind-rotation pass (all SMs busy), calibrated to Table V:
	// set I sustains 2000 PBS/s → 72 PBS per 36 ms batch.
	BatchMs map[string]float64

	// LaunchOverheadMs is the fixed kernel-launch/transfer overhead added
	// to a single-batch latency (Table V reports 37 ms for one PBS).
	LaunchOverheadMs float64

	// LatencyOverrideMs holds per-set single-PBS latencies that do not
	// follow the batch model: NuFHE's set II path serializes the whole
	// blind rotation through the FFT kernel (Table V: 700 ms).
	LatencyOverrideMs map[string]float64
}

// NewGPUModel returns the Table V-calibrated NuFHE model. NuFHE supports
// N=1024 only (sets I and II); set II falls back to a sequential FFT-kernel
// path that is dramatically slower (the paper's explanation of the 700 ms
// row).
func NewGPUModel() GPUModel {
	return GPUModel{
		SMs: 72,
		BatchMs: map[string]float64{
			"I":  36.0,
			"II": 144.0, // sequential FFT-kernel fallback, see §VI-C
		},
		LaunchOverheadMs:  1.0,
		LatencyOverrideMs: map[string]float64{"II": 700.0},
	}
}

// batchTime returns the per-batch blind rotation time for a set.
func (g GPUModel) batchTime(set string) (float64, error) {
	ms, ok := g.BatchMs[set]
	if !ok {
		return 0, fmt.Errorf("baseline: NuFHE does not support parameter set %q (N=1024 only)", set)
	}
	return ms, nil
}

// Fragments returns the blind-rotation fragment count for a ciphertext
// count — equation (2).
func (g GPUModel) Fragments(ciphertexts int) int {
	if ciphertexts <= 0 {
		return 0
	}
	return (ciphertexts+g.SMs-1)/g.SMs - 1
}

// RunPBS returns the execution time in seconds for count PBS operations —
// equation (1).
func (g GPUModel) RunPBS(set string, count int) (float64, error) {
	if count == 0 {
		return 0, nil
	}
	bt, err := g.batchTime(set)
	if err != nil {
		return 0, err
	}
	frag := g.Fragments(count)
	return (float64(frag+1)*bt + g.LaunchOverheadMs) / 1e3, nil
}

// PBSLatencyMs returns the single-PBS latency (one batch + overhead, or
// the per-set override for execution paths outside the batch model).
func (g GPUModel) PBSLatencyMs(set string) (float64, error) {
	if ms, ok := g.LatencyOverrideMs[set]; ok {
		return ms, nil
	}
	bt, err := g.batchTime(set)
	if err != nil {
		return 0, err
	}
	return bt + g.LaunchOverheadMs, nil
}

// ThroughputPBS returns the sustained PBS/s with full batches.
func (g GPUModel) ThroughputPBS(set string) (float64, error) {
	bt, err := g.batchTime(set)
	if err != nil {
		return 0, err
	}
	return float64(g.SMs) / (bt / 1e3), nil
}

// DeviceLevelSeries returns the normalized execution time for 1..maxLWE
// ciphertexts under device-level batching — the left plot of Fig 2. The
// time is normalized to one batch.
func (g GPUModel) DeviceLevelSeries(maxLWE int) []float64 {
	out := make([]float64, maxLWE)
	for i := 1; i <= maxLWE; i++ {
		out[i-1] = float64(g.Fragments(i) + 1)
	}
	return out
}

// CoreLevelSeries returns the normalized execution time when b ciphertexts
// are assigned to every SM (core-level batching *on the GPU*) — the right
// plot of Fig 2: the per-iteration work grows linearly with b, so total
// time grows with b and core-level batching buys nothing on a GPU.
func (g GPUModel) CoreLevelSeries(maxPerCore int) []float64 {
	out := make([]float64, maxPerCore)
	for b := 1; b <= maxPerCore; b++ {
		out[b-1] = float64(b)
	}
	return out
}

// FragmentationSlowdown returns total-time ratio of running `count`
// ciphertexts versus the ideal (single-fragment) time.
func (g GPUModel) FragmentationSlowdown(count int) float64 {
	return float64(g.Fragments(count) + 1)
}

// ScaledBatchMs extrapolates the per-batch time to a different polynomial
// degree (used by the Fig 7 neural-network experiment, which runs
// N = 1024/2048/4096). NuFHE's blind-rotation kernel was measured at
// N=1024 only; the per-SM FFT work scales as N·log2(N), which is the
// scaling applied here. (The n and lb dependence is already inside the
// measured kernel shape; the paper likewise extrapolates its GPU bars for
// N > 1024 — see EXPERIMENTS.md.)
func (g GPUModel) ScaledBatchMs(baseSet string, baseN, n2 int) (float64, error) {
	bt, err := g.batchTime(baseSet)
	if err != nil {
		return 0, err
	}
	work := func(n int) float64 { return float64(n) * math.Log2(float64(n)) }
	return bt * work(n2) / work(baseN), nil
}
