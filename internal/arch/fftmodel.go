package arch

import "math"

// Hardware cost model of the pipelined (I)FFT unit of §V-A / Fig 5: a
// log2(M)-stage feed-forward pipeline with CLP/2 butterfly units (BFUs) per
// stage, shuffle units (SHUs) with delay lines between stages, and a
// twiddle ROM per stage. Delay-line storage dominates for large M; the
// per-BFU and per-delay-slot constants are calibrated so the model
// reproduces the paper's Table VI FFT-unit areas (1.81 mm² folded / 8192
// points, 3.13 mm² unfolded / 16384 points at CLP=4).
const (
	fftAreaPerBFUMM2       = 0.0201    // one butterfly (complex mul + add/sub)
	fftAreaPerDelaySlotMM2 = 1.5649e-4 // one complex delay-line slot (8 B)
	fftAreaPerTwiddleMM2   = 0.002     // per-stage twiddle ROM
)

// FFTUnitModel describes one pipelined FFT unit instance.
type FFTUnitModel struct {
	Points int // M-point transform
	CLP    int // input lanes (coefficients per cycle)
}

// Stages returns the number of butterfly stages, log2(M).
func (f FFTUnitModel) Stages() int {
	return int(math.Round(math.Log2(float64(f.Points))))
}

// BFUs returns the total butterfly units: CLP/2 per stage.
func (f FFTUnitModel) BFUs() int {
	per := f.CLP / 2
	if per < 1 {
		per = 1
	}
	return per * f.Stages()
}

// DelaySlots returns the total delay-line storage (complex words) across
// all shuffle units. A streaming M-point FFT at L lanes needs on the order
// of M complex words of reorder storage in total (the sum of SHU delays
// 2·(M/2 + M/4 + ... + 1) per lane pair ≈ M).
func (f FFTUnitModel) DelaySlots() int {
	return f.Points
}

// AreaMM2 returns the modeled area of the unit.
func (f FFTUnitModel) AreaMM2() float64 {
	return float64(f.BFUs())*fftAreaPerBFUMM2 +
		float64(f.DelaySlots())*fftAreaPerDelaySlotMM2 +
		float64(f.Stages())*fftAreaPerTwiddleMM2
}

// InitiationIntervalCycles returns the cycles between successive
// polynomial transforms: M / CLP (§V-A: "it can transform an N−1 degree
// polynomial every N/CLP clock cycles consecutively").
func (f FFTUnitModel) InitiationIntervalCycles() int {
	return f.Points / f.CLP
}

// LatencyCycles returns the pipeline fill latency, dominated by the delay
// lines: ≈ M / CLP cycles.
func (f FFTUnitModel) LatencyCycles() int {
	return f.Points/f.CLP + f.Stages()
}

// fftUnitArea is the helper used by the area model.
func fftUnitArea(points, clp int) float64 {
	return FFTUnitModel{Points: points, CLP: clp}.AreaMM2()
}
