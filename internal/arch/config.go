package arch

import (
	"fmt"

	"repro/internal/tfhe"
)

// Config describes one Strix instantiation. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Parallelism levels (§IV-A). TvLP is the number of HSCs; CLP the
	// number of FFT lanes; PLP the replication of FFT/VMA units; CoLP the
	// replication of rotator/accumulator units.
	TvLP int
	CLP  int
	PLP  int
	CoLP int

	// Clock frequency in Hz (1.2 GHz in the paper).
	FreqHz float64

	// External memory: one HBM2e stack, 300 GB/s over 16 channels split
	// 8/4/4 between bootstrapping key, keyswitching key and ciphertext
	// traffic (§VI-A).
	HBMBytesPerSec float64
	TotalChannels  int
	BskChannels    int
	KskChannels    int
	CtChannels     int

	// Keyswitch cluster lanes (§IV-A: CLP=8, CoLP=8 for keyswitching).
	KSCLP  int
	KSCoLP int

	// Scratchpad capacities in bytes (0.625 MB local, 21 MB global).
	LocalScratchpadBytes  int
	GlobalScratchpadBytes int

	// CoreBatch is the core-level batch size (LWEs processed back-to-back
	// by one HSC per blind-rotation iteration). 0 selects the smallest
	// batch that keeps the pipeline compute-bound, capped by the local
	// scratchpad capacity.
	CoreBatch int

	// Folded selects the FFT folding scheme of §V-A (N-point transform on
	// an N/2-point unit). Disabling it reproduces the "No Fold." column
	// of Table VI.
	Folded bool

	// BskComplexBytes is the storage size of one Fourier-domain
	// bootstrapping-key coefficient as streamed from HBM (real+imag,
	// 32 bits each, matching the 64-bit FFTU datapath).
	BskComplexBytes int
}

// DefaultConfig returns the Strix configuration evaluated in the paper:
// TvLP=8, CLP=4, PLP=2, CoLP=2 at 1.2 GHz with one 300 GB/s HBM2e stack.
func DefaultConfig() Config {
	return Config{
		TvLP: 8, CLP: 4, PLP: 2, CoLP: 2,
		FreqHz:         1.2e9,
		HBMBytesPerSec: 300e9,
		TotalChannels:  16, BskChannels: 8, KskChannels: 4, CtChannels: 4,
		KSCLP: 8, KSCoLP: 8,
		LocalScratchpadBytes:  655360,   // 0.625 MB
		GlobalScratchpadBytes: 22020096, // 21 MB
		Folded:                true,
		BskComplexBytes:       8,
	}
}

// WithParallelism returns a copy of c with the four parallelism levels
// replaced — the Table VII sweep keeps TvLP·CLP constant.
func (c Config) WithParallelism(tvlp, clp, plp, colp int) Config {
	c.TvLP, c.CLP, c.PLP, c.CoLP = tvlp, clp, plp, colp
	return c
}

// Validate reports structural configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TvLP < 1 || c.CLP < 1 || c.PLP < 1 || c.CoLP < 1:
		return fmt.Errorf("arch: parallelism levels must be >= 1 (got TvLP=%d CLP=%d PLP=%d CoLP=%d)", c.TvLP, c.CLP, c.PLP, c.CoLP)
	case c.FreqHz <= 0:
		return fmt.Errorf("arch: frequency must be positive")
	case c.HBMBytesPerSec <= 0:
		return fmt.Errorf("arch: HBM bandwidth must be positive")
	case c.BskChannels+c.KskChannels+c.CtChannels != c.TotalChannels:
		return fmt.Errorf("arch: channel split %d+%d+%d != %d",
			c.BskChannels, c.KskChannels, c.CtChannels, c.TotalChannels)
	case c.KSCLP < 1 || c.KSCoLP < 1:
		return fmt.Errorf("arch: keyswitch lanes must be >= 1")
	case c.LocalScratchpadBytes <= 0 || c.GlobalScratchpadBytes <= 0:
		return fmt.Errorf("arch: scratchpads must be positive")
	case c.BskComplexBytes <= 0:
		return fmt.Errorf("arch: BskComplexBytes must be positive")
	}
	return nil
}

// bskBytesPerSec returns the bandwidth available for bootstrapping-key
// streaming (its channel share of the stack).
func (c Config) bskBytesPerSec() float64 {
	return c.HBMBytesPerSec * float64(c.BskChannels) / float64(c.TotalChannels)
}

// kskBytesPerSec returns the bandwidth share for keyswitching keys.
func (c Config) kskBytesPerSec() float64 {
	return c.HBMBytesPerSec * float64(c.KskChannels) / float64(c.TotalChannels)
}

// MaxCoreBatch returns the largest core-level batch the local scratchpad
// sustains for params: each in-flight LWE needs its intermediate test
// vector double-buffered ((k+1)·N 32-bit words, two copies).
func (c Config) MaxCoreBatch(p tfhe.Params) int {
	perLWE := (p.K + 1) * p.N * 4 * 2
	b := c.LocalScratchpadBytes / perLWE
	if b < 1 {
		return 0
	}
	return b
}
