package arch

import (
	"fmt"

	"repro/internal/cycle"
)

// Unit names used in traces (Fig 8 rows).
const (
	UnitRotator    = "Rotator"
	UnitDecomposer = "Decomp."
	UnitFFT        = "FFT"
	UnitVMA        = "VMA"
	UnitIFFT       = "IFFT"
	UnitAccum      = "Accum."
	UnitScratchpad = "Loc. Scrtpd."
	UnitHBM        = "HBM"
	UnitKSCluster  = "KS Cluster"
)

// HSCSim is the cycle-level simulator of one Homomorphic Streaming Core
// executing blind rotation on a core-level batch of LWEs. Every polynomial
// is scheduled through the six-stage PBS-cluster pipeline (rotator →
// decomposer → FFT → VMA → IFFT → accumulator), with bootstrapping-key
// prefetch over the core's HBM channel share, reproducing the timing
// behaviour of Fig 8.
type HSCSim struct {
	Model Model
	Trace *cycle.Trace

	rotator, decomp, fftU, vma, ifftU, accum *cycle.Resource
	hbm                                      *cycle.Resource
	ks                                       *cycle.Resource
}

// NewHSCSim builds a simulator (with trace recording) for the model.
func NewHSCSim(m Model) *HSCSim {
	tr := &cycle.Trace{}
	fftLat := cycle.Time(m.FFTCyclesPerPoly())
	s := &HSCSim{
		Model:   m,
		Trace:   tr,
		rotator: cycle.NewResource(UnitRotator, 4, tr),
		decomp:  cycle.NewResource(UnitDecomposer, cycle.Time(m.P.PBSLevel)+4, tr),
		fftU:    cycle.NewResource(UnitFFT, fftLat, tr),
		vma:     cycle.NewResource(UnitVMA, 8, tr),
		ifftU:   cycle.NewResource(UnitIFFT, fftLat, tr),
		accum:   cycle.NewResource(UnitAccum, 4, tr),
		hbm:     cycle.NewResource(UnitHBM, 0, tr),
		ks:      cycle.NewResource(UnitKSCluster, 16, tr),
	}
	return s
}

// coefRate returns aggregate coefficients/cycle for the 2·CLP-lane units
// replicated CoLP times (halved without folding, which needs only CLP
// lanes to match the unfolded FFT).
func (s *HSCSim) coefRate() int64 {
	lanes := 2 * s.Model.Cfg.CLP
	if !s.Model.Cfg.Folded {
		lanes = s.Model.Cfg.CLP
	}
	return int64(lanes * s.Model.Cfg.CoLP)
}

// Occupancies per LWE per iteration (cycles), per §V.
func (s *HSCSim) rotOcc() cycle.Time {
	return cycle.Time(int64((s.Model.P.K+1)*s.Model.P.N) / s.coefRate())
}

func (s *HSCSim) decOcc() cycle.Time {
	return cycle.Time(int64((s.Model.P.K+1)*s.Model.P.N) / (s.coefRate() / int64(s.Model.Cfg.CoLP)))
}

func (s *HSCSim) fftOcc() cycle.Time { return cycle.Time(s.Model.StageInterval()) }

func (s *HSCSim) vmaOcc() cycle.Time {
	products := int64((s.Model.P.K + 1) * s.Model.P.PBSLevel * (s.Model.P.K + 1))
	points := int64(s.Model.FFTPoints())
	rate := int64(2 * s.Model.Cfg.CLP * s.Model.Cfg.PLP) // dual multipliers per lane
	return cycle.Time(products * points / rate)
}

func (s *HSCSim) accOcc() cycle.Time {
	polys := int64((s.Model.P.K + 1) * s.Model.P.PBSLevel)
	return cycle.Time(polys * int64(s.Model.P.N) / s.coefRate())
}

// BlindRotateResult reports a simulated blind rotation.
type BlindRotateResult struct {
	Batch      int
	Iterations int
	Makespan   cycle.Time // cycles until the last accumulator write
	AccDone    []cycle.Time
}

// SimulateBlindRotate schedules a core batch of b LWEs through iters
// blind-rotation iterations and returns per-LWE completion times. The
// bootstrapping key for iteration 0 is assumed preloaded into the (double
// buffered) global scratchpad; subsequent iterations' keys are prefetched
// over HBM and the VMA stage stalls if streaming falls behind.
func (s *HSCSim) SimulateBlindRotate(b, iters int) (BlindRotateResult, error) {
	if b < 1 || iters < 1 {
		return BlindRotateResult{}, fmt.Errorf("arch: batch %d and iterations %d must be >= 1", b, iters)
	}
	if maxB := s.Model.Cfg.MaxCoreBatch(s.Model.P); b > maxB {
		return BlindRotateResult{}, fmt.Errorf("arch: core batch %d exceeds local scratchpad capacity (max %d for set %s)",
			b, maxB, s.Model.P.Name)
	}
	m := s.Model
	fetch := cycle.Time(m.BskFetchCycles())
	rotOcc, decOcc, fftOcc, vmaOcc, accOcc := s.rotOcc(), s.decOcc(), s.fftOcc(), s.vmaOcc(), s.accOcc()
	rotLat := s.rotator.Latency
	decLat := s.decomp.Latency
	fftLat := s.fftU.Latency
	vmaLat := s.vma.Latency
	ifftLat := s.ifftU.Latency

	// nextReady[j] is when iteration i+1's rotator may start on LWE j.
	// The local scratchpad is banked so rotator reads chase accumulator
	// writes (cut-through): Fig 8 shows back-to-back iterations with no
	// inter-iteration bubble, which requires this forwarding.
	const forwardLat = 16
	nextReady := make([]cycle.Time, b)
	accDone := make([]cycle.Time, b)
	fetchDone := cycle.Time(0) // key for iteration 0 is resident
	var makespan cycle.Time

	for i := 0; i < iters; i++ {
		var firstVMA cycle.Time = -1
		thisFetchDone := fetchDone
		for j := 0; j < b; j++ {
			label := fmt.Sprintf("%d", j+1)
			rs, _ := s.rotator.Claim(nextReady[j], rotOcc, label)
			s.Trace.Record(UnitScratchpad, label, rs, rs+rotOcc)
			ds, _ := s.decomp.Claim(rs+rotLat, decOcc, label)
			fs, _ := s.fftU.Claim(ds+decLat, fftOcc, label)
			ready := fs + fftLat
			if thisFetchDone > ready {
				ready = thisFetchDone
			}
			vs, _ := s.vma.Claim(ready, vmaOcc, label)
			if firstVMA < 0 {
				firstVMA = vs
			}
			is, _ := s.ifftU.Claim(vs+vmaLat, fftOcc, label)
			as, ad := s.accum.Claim(is+ifftLat, accOcc, label)
			s.Trace.Record(UnitScratchpad, label, as, as+accOcc)
			nextReady[j] = as + forwardLat
			accDone[j] = ad
			if ad > makespan {
				makespan = ad
			}
		}
		// Prefetch the next iteration's key (double buffering: the fetch
		// may start as soon as this iteration began consuming its key).
		if i+1 < iters {
			start := firstVMA
			if s.hbm.NextFree() > start {
				start = s.hbm.NextFree()
			}
			_, done := s.hbm.Claim(start, fetch, "key")
			fetchDone = done
		}
	}
	return BlindRotateResult{Batch: b, Iterations: iters, Makespan: makespan, AccDone: accDone}, nil
}

// SimulateKeySwitch schedules b keyswitch operations on the KS cluster
// starting when their inputs are ready, returning the completion time.
func (s *HSCSim) SimulateKeySwitch(ready []cycle.Time) cycle.Time {
	occ := cycle.Time(s.Model.KSCyclesPerLWE())
	var done cycle.Time
	for j, r := range ready {
		_, d := s.ks.Claim(r, occ, fmt.Sprintf("%d", j+1))
		if d > done {
			done = d
		}
	}
	return done
}

// SimulatePBSAndKS runs a full core-batch PBS (n blind-rotation
// iterations) followed by keyswitching of every LWE, returning the final
// completion time — the per-core critical path of one epoch.
func (s *HSCSim) SimulatePBSAndKS(b int) (cycle.Time, error) {
	br, err := s.SimulateBlindRotate(b, s.Model.P.SmallN)
	if err != nil {
		return 0, err
	}
	return s.SimulateKeySwitch(br.AccDone), nil
}
