package arch

import (
	"fmt"

	"repro/internal/tfhe"
)

// Ablation models for the design choices DESIGN.md calls out: bootstrapping
// key unrolling (the Matcha approach §VII, traded against Strix's
// two-level batching), the core-level batch size, and the external
// bandwidth provision.

// UnrolledModel extends Model with factor-2 bootstrapping-key unrolling:
// ceil(n/2) serial iterations, 3 external products (and 1.5× key bytes)
// per iteration.
type UnrolledModel struct {
	Model
}

// NewUnrolledModel builds the unrolled variant.
func NewUnrolledModel(cfg Config, p tfhe.Params) (UnrolledModel, error) {
	m, err := NewModel(cfg, p)
	if err != nil {
		return UnrolledModel{}, err
	}
	return UnrolledModel{Model: m}, nil
}

// Iterations returns the serial blind-rotation iteration count.
func (u UnrolledModel) Iterations() int { return (u.P.SmallN + 1) / 2 }

// StageInterval returns the per-LWE per-iteration interval: three external
// products' worth of transforms spread over the PLP units.
func (u UnrolledModel) StageInterval() int64 {
	polys := tfhe.UnrolledGGSWCount * (u.P.K + 1) * u.P.PBSLevel
	rounds := (polys + u.Cfg.PLP - 1) / u.Cfg.PLP
	return int64(rounds) * u.FFTCyclesPerPoly()
}

// BskBytesPerIter returns the key bytes streamed per unrolled iteration:
// three GGSWs instead of one.
func (u UnrolledModel) BskBytesPerIter() int64 {
	return tfhe.UnrolledGGSWCount * u.Model.BskBytesPerIter()
}

// LatencyCycles returns single-PBS latency with unrolling.
func (u UnrolledModel) LatencyCycles() int64 {
	si := u.StageInterval()
	fetch := u.bskFetchCyclesUnrolled()
	iter := si
	if fetch > iter {
		iter = fetch
	}
	return int64(u.Iterations())*iter + u.KSCyclesPerLWE()
}

// bskFetchCyclesUnrolled is the streaming time of one unrolled iteration's
// key (3 GGSWs).
func (u UnrolledModel) bskFetchCyclesUnrolled() int64 {
	secs := float64(u.BskBytesPerIter()) / u.Cfg.bskBytesPerSec()
	return int64(secs * u.Cfg.FreqHz)
}

// ThroughputPBS returns sustained PBS/s with unrolling.
func (u UnrolledModel) ThroughputPBS() float64 {
	b := u.CoreBatchUnrolled()
	si := u.StageInterval()
	iter := int64(b) * si
	if f := u.bskFetchCyclesUnrolled(); f > iter {
		iter = f
	}
	cycles := int64(u.Iterations()) * iter
	return float64(b) / (float64(cycles) / u.Cfg.FreqHz) * float64(u.Cfg.TvLP)
}

// CoreBatchUnrolled mirrors Model.CoreBatch for the unrolled intervals.
func (u UnrolledModel) CoreBatchUnrolled() int {
	maxB := u.Cfg.MaxCoreBatch(u.P)
	si := u.StageInterval()
	need := int((u.bskFetchCyclesUnrolled() + si - 1) / si)
	if need < 1 {
		need = 1
	}
	if need > maxB {
		need = maxB
	}
	return need
}

// KeyBytesTotal returns the full unrolled key size (1.5× standard).
func (u UnrolledModel) KeyBytesTotal() int64 {
	return int64(u.Iterations()) * u.BskBytesPerIter()
}

// UnrollingComparison reports standard vs unrolled Strix for a config.
type UnrollingComparison struct {
	Set                string
	StdLatencyMs       float64
	UnrolledLatencyMs  float64
	StdThroughput      float64
	UnrolledThroughput float64
	KeyBytesRatio      float64
}

// CompareUnrolling evaluates the BKU trade-off on one configuration.
func CompareUnrolling(cfg Config, p tfhe.Params) (UnrollingComparison, error) {
	std, err := NewModel(cfg, p)
	if err != nil {
		return UnrollingComparison{}, err
	}
	unr, err := NewUnrolledModel(cfg, p)
	if err != nil {
		return UnrollingComparison{}, err
	}
	stdKeyBytes := std.BskBytesPerIter() * int64(p.SmallN)
	return UnrollingComparison{
		Set:                p.Name,
		StdLatencyMs:       std.LatencySeconds() * 1e3,
		UnrolledLatencyMs:  float64(unr.LatencyCycles()) / cfg.FreqHz * 1e3,
		StdThroughput:      std.ThroughputPBS(),
		UnrolledThroughput: unr.ThroughputPBS(),
		KeyBytesRatio:      float64(unr.KeyBytesTotal()) / float64(stdKeyBytes),
	}, nil
}

// CoreBatchSweep reports throughput and latency as the core-level batch
// size grows — the ablation behind the paper's core-level batching claim.
type CoreBatchPoint struct {
	Batch         int
	ThroughputPBS float64
	LatencyMs     float64 // completion of the whole batch on one core
}

// SweepCoreBatch evaluates batches 1..maxB (capped by the scratchpad).
func SweepCoreBatch(cfg Config, p tfhe.Params, maxB int) ([]CoreBatchPoint, error) {
	m, err := NewModel(cfg, p)
	if err != nil {
		return nil, err
	}
	cap := cfg.MaxCoreBatch(p)
	if maxB > cap {
		maxB = cap
	}
	var out []CoreBatchPoint
	for b := 1; b <= maxB; b++ {
		cycles := m.BlindRotateCycles(b)
		secs := float64(cycles) / cfg.FreqHz
		out = append(out, CoreBatchPoint{
			Batch:         b,
			ThroughputPBS: float64(b*cfg.TvLP) / secs,
			LatencyMs:     secs * 1e3,
		})
	}
	return out, nil
}

// BandwidthPoint is one sample of the HBM bandwidth sweep.
type BandwidthPoint struct {
	GBs           float64
	ThroughputPBS float64
	MemoryBound   bool
}

// SweepBandwidth evaluates throughput as the external bandwidth varies —
// quantifying the paper's claim that one 300 GB/s stack suffices at
// TvLP=8/CLP=4 while CKKS accelerators need 1 TB/s.
func SweepBandwidth(cfg Config, p tfhe.Params, gbs []float64) ([]BandwidthPoint, error) {
	var out []BandwidthPoint
	for _, bw := range gbs {
		c := cfg
		c.HBMBytesPerSec = bw * 1e9
		m, err := NewModel(c, p)
		if err != nil {
			return nil, err
		}
		s := m.Summary()
		out = append(out, BandwidthPoint{GBs: bw, ThroughputPBS: s.ThroughputPBS, MemoryBound: s.MemoryBound})
	}
	return out, nil
}

// String implements fmt.Stringer for quick logging.
func (c UnrollingComparison) String() string {
	return fmt.Sprintf("set %s: latency %.3f→%.3f ms, throughput %.0f→%.0f PBS/s, key ×%.2f",
		c.Set, c.StdLatencyMs, c.UnrolledLatencyMs, c.StdThroughput, c.UnrolledThroughput, c.KeyBytesRatio)
}
