package arch

import (
	"fmt"

	"repro/internal/tfhe"
)

// Chip models the full Strix device: TvLP HSCs fed by the multicast NoC
// from the global scratchpad, scheduling workloads as epochs (§IV-C). Each
// epoch carries up to TvLP · CoreBatch LWEs (device-level × core-level
// batching); keyswitching of epoch e overlaps the blind rotation of epoch
// e+1, so only the final epoch's keyswitch appears on the critical path.
type Chip struct {
	Model Model
}

// NewChip builds a chip for the configuration and parameter set.
func NewChip(cfg Config, p tfhe.Params) (Chip, error) {
	m, err := NewModel(cfg, p)
	if err != nil {
		return Chip{}, err
	}
	return Chip{Model: m}, nil
}

// WorkloadResult reports the simulated execution of a workload.
type WorkloadResult struct {
	PBSCount      int
	Epochs        int
	Cycles        int64
	Seconds       float64
	ThroughputPBS float64
}

// RunPBS schedules count independent PBS+KS operations and returns the
// end-to-end execution time.
func (c Chip) RunPBS(count int) (WorkloadResult, error) {
	if count < 0 {
		return WorkloadResult{}, fmt.Errorf("arch: negative PBS count %d", count)
	}
	if count == 0 {
		return WorkloadResult{}, nil
	}
	m := c.Model
	b := m.CoreBatch()
	perEpoch := b * m.Cfg.TvLP

	full := count / perEpoch
	rem := count % perEpoch

	var cycles int64
	cycles += int64(full) * m.BlindRotateCycles(b)
	epochs := full
	if rem > 0 {
		// Partial epoch: cores share the remainder; the slowest core
		// carries ceil(rem/TvLP) LWEs.
		bRem := (rem + m.Cfg.TvLP - 1) / m.Cfg.TvLP
		cycles += m.BlindRotateCycles(bRem)
		epochs++
	}
	// The last epoch's keyswitch cannot hide behind a subsequent blind
	// rotation: add the per-core KS tail (B LWEs serially per cluster).
	tailB := b
	if rem > 0 {
		tailB = (rem + m.Cfg.TvLP - 1) / m.Cfg.TvLP
	}
	cycles += int64(tailB) * m.KSCyclesPerLWE()

	secs := float64(cycles) / m.Cfg.FreqHz
	return WorkloadResult{
		PBSCount:      count,
		Epochs:        epochs,
		Cycles:        cycles,
		Seconds:       secs,
		ThroughputPBS: float64(count) / secs,
	}, nil
}

// RunLayers schedules a sequence of dependent layers (e.g. a neural
// network): layer i+1's PBS operations cannot start before layer i fully
// completes, so each layer pays its own keyswitch tail.
func (c Chip) RunLayers(layerPBS []int) (WorkloadResult, error) {
	var total WorkloadResult
	for i, n := range layerPBS {
		r, err := c.RunPBS(n)
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("arch: layer %d: %w", i, err)
		}
		total.PBSCount += r.PBSCount
		total.Epochs += r.Epochs
		total.Cycles += r.Cycles
	}
	total.Seconds = float64(total.Cycles) / c.Model.Cfg.FreqHz
	if total.Seconds > 0 {
		total.ThroughputPBS = float64(total.PBSCount) / total.Seconds
	}
	return total, nil
}
