package arch

import (
	"testing"

	"repro/internal/tfhe"
)

func TestUnrollingHalvesIterations(t *testing.T) {
	u, err := NewUnrolledModel(DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Iterations(); got != 250 {
		t.Errorf("unrolled iterations = %d, want 250", got)
	}
}

func TestUnrollingKeyRatio(t *testing.T) {
	c, err := CompareUnrolling(DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	if c.KeyBytesRatio < 1.45 || c.KeyBytesRatio > 1.55 {
		t.Errorf("key ratio %.2f, want ~1.5", c.KeyBytesRatio)
	}
}

func TestUnrollingHurtsAtIsoHardware(t *testing.T) {
	// With PLP=2, three external products per iteration exceed the FFT
	// units: latency must NOT improve.
	c, err := CompareUnrolling(DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	if c.UnrolledLatencyMs < c.StdLatencyMs {
		t.Errorf("iso-hardware unrolling should not reduce latency: %.3f vs %.3f",
			c.UnrolledLatencyMs, c.StdLatencyMs)
	}
}

func TestUnrollingMemoryBoundAtOneStack(t *testing.T) {
	// Even with PLP=6 (compute scaled to the 3 products per iteration),
	// unrolling stays memory bound at one HBM stack: the total key
	// traffic is 1.5x, so latency gets WORSE, not better — the
	// quantitative argument for Strix's batching over Matcha's unrolling.
	cfg := DefaultConfig()
	cfg.PLP = 6
	c, err := CompareUnrolling(cfg, tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	if c.UnrolledLatencyMs <= c.StdLatencyMs {
		t.Errorf("one-stack unrolled latency %.3f ms should exceed standard %.3f ms",
			c.UnrolledLatencyMs, c.StdLatencyMs)
	}
}

func TestUnrollingAtBestReachesParity(t *testing.T) {
	// Under a streaming architecture, unrolling performs 1.5x the total
	// FFT work, so even with 3x FFT units AND 2x key bandwidth it only
	// reaches latency *parity* with the standard design (never better) —
	// while paying 1.5x key size. This quantifies why Strix chose
	// two-level batching over Matcha's unrolling.
	cfg := DefaultConfig()
	cfg.PLP = 6
	cfg.HBMBytesPerSec = 600e9
	cfg.BskChannels, cfg.KskChannels, cfg.CtChannels = 12, 2, 2
	c, err := CompareUnrolling(cfg, tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	ratio := c.UnrolledLatencyMs / c.StdLatencyMs
	if ratio < 0.95 {
		t.Errorf("unrolling should not beat the equally-scaled standard design (ratio %.2f)", ratio)
	}
	if ratio > 1.15 {
		t.Errorf("with scaled hardware unrolling should be near parity (ratio %.2f)", ratio)
	}
	// And it still costs 1.5x the key storage/traffic.
	if c.KeyBytesRatio < 1.45 {
		t.Errorf("key ratio %.2f", c.KeyBytesRatio)
	}
}

func TestSweepCoreBatchSaturates(t *testing.T) {
	pts, err := SweepCoreBatch(DefaultConfig(), tfhe.ParamsI, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	// Throughput non-decreasing, latency increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].ThroughputPBS < pts[i-1].ThroughputPBS-1 {
			t.Errorf("throughput dropped at batch %d", pts[i].Batch)
		}
		if pts[i].LatencyMs <= pts[i-1].LatencyMs {
			t.Errorf("batch latency should grow at batch %d", pts[i].Batch)
		}
	}
	// Saturation: batch 2 already hides the set-I fetch.
	if pts[5].ThroughputPBS > pts[1].ThroughputPBS*1.01 {
		t.Error("throughput should saturate by batch 2 on set I")
	}
}

func TestSweepBandwidthFlatAboveStack(t *testing.T) {
	pts, err := SweepBandwidth(DefaultConfig(), tfhe.ParamsIV, []float64{75, 150, 300, 600, 1200})
	if err != nil {
		t.Fatal(err)
	}
	// Starved configurations are memory bound and slower.
	if !pts[0].MemoryBound {
		t.Error("75 GB/s should be memory bound for set IV")
	}
	if pts[0].ThroughputPBS >= pts[2].ThroughputPBS {
		t.Error("starved bandwidth should reduce throughput")
	}
	// Above one stack, throughput is flat (compute bound).
	if pts[4].ThroughputPBS > pts[2].ThroughputPBS*1.05 {
		t.Errorf("throughput should be flat above 300 GB/s: %v vs %v",
			pts[4].ThroughputPBS, pts[2].ThroughputPBS)
	}
}

func TestSweepCoreBatchRespectsScratchpad(t *testing.T) {
	// Set IV caps at batch 2; asking for 8 must clamp.
	pts, err := SweepCoreBatch(DefaultConfig(), tfhe.ParamsIV, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Errorf("set IV sweep returned %d points, want 2 (scratchpad cap)", len(pts))
	}
}
