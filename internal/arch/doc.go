// Package arch models the Strix accelerator: the Homomorphic Streaming
// Cores with their five functional units (§V), the two-level memory system
// and NoC (§IV-B), the epoch scheduler with device-level and core-level
// batching (§IV-C), and the area/power model (Table III).
//
// Two engines coexist and are tested against each other:
//
//   - an analytic model (analytic.go) with the closed-form stage intervals
//     derived from the unit throughputs of §V, and
//   - a cycle-level simulator (hsc.go) that schedules every polynomial
//     through every pipelined functional unit and produces the timing
//     traces of Fig 8.
package arch
