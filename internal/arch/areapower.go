package arch

import (
	"math"

	"repro/internal/tfhe"
)

// Area/power model calibrated against the paper's TSMC 28nm synthesis
// results (Table III). Per-component constants reproduce the published
// breakdown for the default configuration; the parametric parts (FFT size,
// lane counts, scratchpad capacity) scale the model for the folding
// ablation of Table VI and for configuration sweeps.

// Calibration constants (28nm). See fftmodel.go for the FFT-unit model.
const (
	areaLocalScratchpadMM2 = 0.92 // 0.625 MB local scratchpad
	areaRotatorMM2         = 0.02
	areaDecomposerMM2      = 0.28
	areaVMAMM2             = 0.63
	areaAccumulatorMM2     = 0.32
	areaGlobalNoCMM2       = 0.04
	areaGlobalSPPerMB      = 51.40 / 21.0 // global scratchpad mm²/MB
	areaHBMPhyMM2          = 14.90

	powerLocalScratchpadW = 0.47
	powerRotatorW         = 0.01
	powerDecomposerW      = 0.02
	powerIFFTUW           = 5.49
	powerVMAW             = 0.10
	powerAccumulatorW     = 0.13
	powerGlobalNoCW       = 0.01
	powerGlobalSPPerMB    = 26.24 / 21.0
	powerHBMPhyW          = 1.23
)

// AreaBreakdown is the per-component area/power report of Table III.
type AreaBreakdown struct {
	Component string
	AreaMM2   float64
	PowerW    float64
}

// AreaModel computes Table III for a configuration and parameter set.
type AreaModel struct {
	Cfg Config
	P   tfhe.Params
}

// fftUnitCount returns the number of (I)FFT unit instances per core:
// PLP forward units plus PLP inverse units.
func (a AreaModel) fftUnitCount() int { return 2 * a.Cfg.PLP }

// maxFFTPoints returns the FFT length the hardware must support: the
// largest parameter set (N=16384) folded to 8192 points, or unfolded.
func (a AreaModel) maxFFTPoints() int {
	n := 16384 // hardware sized for the largest supported set (§V-A)
	if a.Cfg.Folded {
		return n / 2
	}
	return n
}

// FFTUnitAreaMM2 returns the area of a single pipelined (I)FFT unit.
func (a AreaModel) FFTUnitAreaMM2() float64 {
	return fftUnitArea(a.maxFFTPoints(), a.Cfg.CLP)
}

// laneScale scales the coefficient-lane units: the folded design needs
// 2·CLP lanes, the unfolded one CLP lanes (§V-A), and the defaults are
// calibrated at CLP=4 folded.
func (a AreaModel) laneScale() float64 {
	lanes := 2 * a.Cfg.CLP
	if !a.Cfg.Folded {
		lanes = a.Cfg.CLP
	}
	return float64(lanes) / 8.0
}

// CoreAreaMM2 returns the area of one HSC.
func (a AreaModel) CoreAreaMM2() float64 {
	s := a.laneScale()
	return areaLocalScratchpadMM2 +
		areaRotatorMM2*s +
		areaDecomposerMM2*s +
		float64(a.fftUnitCount())*a.FFTUnitAreaMM2() +
		areaVMAMM2*float64(a.Cfg.PLP)/2.0 +
		areaAccumulatorMM2*s
}

// ChipAreaMM2 returns the total die area.
func (a AreaModel) ChipAreaMM2() float64 {
	globalMB := float64(a.Cfg.GlobalScratchpadBytes) / (1 << 20)
	return float64(a.Cfg.TvLP)*a.CoreAreaMM2() +
		areaGlobalNoCMM2 +
		areaGlobalSPPerMB*globalMB +
		areaHBMPhyMM2
}

// CorePowerW returns the power of one HSC.
func (a AreaModel) CorePowerW() float64 {
	s := a.laneScale()
	fftScale := float64(a.fftUnitCount()) / 4.0 *
		a.FFTUnitAreaMM2() / fftUnitArea(8192, 4)
	return powerLocalScratchpadW +
		powerRotatorW*s +
		powerDecomposerW*s +
		powerIFFTUW*fftScale +
		powerVMAW*float64(a.Cfg.PLP)/2.0 +
		powerAccumulatorW*s
}

// ChipPowerW returns total chip power.
func (a AreaModel) ChipPowerW() float64 {
	globalMB := float64(a.Cfg.GlobalScratchpadBytes) / (1 << 20)
	return float64(a.Cfg.TvLP)*a.CorePowerW() +
		powerGlobalNoCW +
		powerGlobalSPPerMB*globalMB +
		powerHBMPhyW
}

// Breakdown returns the Table III rows.
func (a AreaModel) Breakdown() []AreaBreakdown {
	s := a.laneScale()
	globalMB := float64(a.Cfg.GlobalScratchpadBytes) / (1 << 20)
	fftScale := float64(a.fftUnitCount()) / 4.0 *
		a.FFTUnitAreaMM2() / fftUnitArea(8192, 4)
	rows := []AreaBreakdown{
		{"Local scratchpad (0.625MB)", areaLocalScratchpadMM2, powerLocalScratchpadW},
		{"Rotator", areaRotatorMM2 * s, powerRotatorW * s},
		{"Decomposer", areaDecomposerMM2 * s, powerDecomposerW * s},
		{"I/FFTU", float64(a.fftUnitCount()) * a.FFTUnitAreaMM2(), powerIFFTUW * fftScale},
		{"VMA", areaVMAMM2 * float64(a.Cfg.PLP) / 2.0, powerVMAW * float64(a.Cfg.PLP) / 2.0},
		{"Accumulator", areaAccumulatorMM2 * s, powerAccumulatorW * s},
		{"1 core", a.CoreAreaMM2(), a.CorePowerW()},
		{"8 cores", float64(a.Cfg.TvLP) * a.CoreAreaMM2(), float64(a.Cfg.TvLP) * a.CorePowerW()},
		{"Global NoC", areaGlobalNoCMM2, powerGlobalNoCW},
		{"Global scratchpad (21MB)", areaGlobalSPPerMB * globalMB, powerGlobalSPPerMB * globalMB},
		{"HBM2 PHY", areaHBMPhyMM2, powerHBMPhyW},
		{"Total", a.ChipAreaMM2(), a.ChipPowerW()},
	}
	for i := range rows {
		rows[i].AreaMM2 = round2(rows[i].AreaMM2)
		rows[i].PowerW = round2(rows[i].PowerW)
	}
	return rows
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
