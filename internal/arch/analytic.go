package arch

import (
	"fmt"
	"math"

	"repro/internal/tfhe"
)

// Model is the closed-form performance model of one Strix configuration
// running one TFHE parameter set. It encodes the unit throughputs of §V:
// every PBS-cluster unit is balanced to consume/produce 2·CLP·CoLP
// coefficients per cycle, so the steady-state initiation interval per LWE
// per blind-rotation iteration is
//
//	SI = ceil((k+1)·lb / PLP) · Npoint / CLP   cycles,
//
// where Npoint is N/2 with the folding scheme and N without it. The model
// and the cycle simulator (hsc.go) are property-tested against each other.
type Model struct {
	Cfg Config
	P   tfhe.Params
}

// NewModel validates and builds a model.
func NewModel(cfg Config, p tfhe.Params) (Model, error) {
	if err := cfg.Validate(); err != nil {
		return Model{}, err
	}
	if err := p.Validate(); err != nil {
		return Model{}, err
	}
	if cfg.MaxCoreBatch(p) < 1 {
		return Model{}, fmt.Errorf("arch: local scratchpad (%d B) cannot hold one %s test vector",
			cfg.LocalScratchpadBytes, p.Name)
	}
	return Model{Cfg: cfg, P: p}, nil
}

// FFTPoints returns the FFT length per polynomial: N/2 folded, N unfolded.
func (m Model) FFTPoints() int {
	if m.Cfg.Folded {
		return m.P.N / 2
	}
	return m.P.N
}

// FFTCyclesPerPoly returns the streaming cost of transforming one
// polynomial on one (I)FFT unit: points / CLP cycles.
func (m Model) FFTCyclesPerPoly() int64 {
	return int64(m.FFTPoints() / m.Cfg.CLP)
}

// StageInterval returns SI: the pipeline initiation interval in cycles for
// one LWE in one blind-rotation iteration. The FFT stage is the pacing
// unit: (k+1)·lb polynomials spread over PLP units.
func (m Model) StageInterval() int64 {
	polys := (m.P.K + 1) * m.P.PBSLevel
	rounds := (polys + m.Cfg.PLP - 1) / m.Cfg.PLP
	return int64(rounds) * m.FFTCyclesPerPoly()
}

// BskBytesPerIter returns the bootstrapping-key bytes streamed per
// blind-rotation iteration: one GGSW of (k+1)·lb·(k+1) Fourier polynomials.
func (m Model) BskBytesPerIter() int64 {
	polys := int64(m.P.K+1) * int64(m.P.PBSLevel) * int64(m.P.K+1)
	return polys * int64(m.P.N/2) * int64(m.Cfg.BskComplexBytes)
}

// BskFetchCycles returns the cycles needed to stream one iteration's
// bootstrapping key over the bsk channel share.
func (m Model) BskFetchCycles() int64 {
	secs := float64(m.BskBytesPerIter()) / m.Cfg.bskBytesPerSec()
	return int64(math.Ceil(secs * m.Cfg.FreqHz))
}

// CoreBatch returns the effective core-level batch size: the configured
// value, or the smallest batch that hides the key fetch behind compute
// (capped by the local scratchpad).
func (m Model) CoreBatch() int {
	maxB := m.Cfg.MaxCoreBatch(m.P)
	if m.Cfg.CoreBatch > 0 {
		if m.Cfg.CoreBatch > maxB {
			return maxB
		}
		return m.Cfg.CoreBatch
	}
	si := m.StageInterval()
	need := int((m.BskFetchCycles() + si - 1) / si)
	if need < 1 {
		need = 1
	}
	if need > maxB {
		need = maxB
	}
	return need
}

// IterIntervalCycles returns the steady-state cycles per blind-rotation
// iteration for a core batch of B LWEs: compute (B·SI) or key streaming,
// whichever dominates (the compute-bound/memory-bound crossover of §VI-C).
func (m Model) IterIntervalCycles(b int) int64 {
	compute := int64(b) * m.StageInterval()
	fetch := m.BskFetchCycles()
	if fetch > compute {
		return fetch
	}
	return compute
}

// BlindRotateCycles returns cycles for a full blind rotation of a core
// batch of B LWEs: n iterations at the steady-state interval.
func (m Model) BlindRotateCycles(b int) int64 {
	return int64(m.P.SmallN) * m.IterIntervalCycles(b)
}

// KSCyclesPerLWE returns the keyswitch-cluster cycles for one LWE:
// k·N·lk·(n+1) multiply-accumulates at KSCLP·KSCoLP MACs per cycle.
func (m Model) KSCyclesPerLWE() int64 {
	macs := int64(m.P.ExtractedN()) * int64(m.P.KSLevel) * int64(m.P.SmallN+1)
	rate := int64(m.Cfg.KSCLP * m.Cfg.KSCoLP)
	return (macs + rate - 1) / rate
}

// LatencyCycles returns the single-PBS latency in cycles: one LWE through
// blind rotation (batch 1) plus keyswitching (Table V methodology).
func (m Model) LatencyCycles() int64 {
	return m.BlindRotateCycles(1) + m.KSCyclesPerLWE()
}

// LatencySeconds converts LatencyCycles to seconds.
func (m Model) LatencySeconds() float64 {
	return float64(m.LatencyCycles()) / m.Cfg.FreqHz
}

// ThroughputPBS returns sustained PBS/s with both batching levels active:
// TvLP cores each complete a core batch every n·IterInterval cycles, with
// keyswitching hidden behind the next epoch's blind rotation (§IV-C).
func (m Model) ThroughputPBS() float64 {
	b := m.CoreBatch()
	cycles := m.BlindRotateCycles(b)
	perCore := float64(b) / (float64(cycles) / m.Cfg.FreqHz)
	return perCore * float64(m.Cfg.TvLP)
}

// KSThroughputLWE returns keyswitch operations per second per chip,
// assuming the KS clusters of all cores run in parallel.
func (m Model) KSThroughputLWE() float64 {
	perCore := m.Cfg.FreqHz / float64(m.KSCyclesPerLWE())
	return perCore * float64(m.Cfg.TvLP)
}

// KSHidden reports whether keyswitching is fully hidden behind the next
// blind rotation (KS time for a core batch <= BR time for a core batch).
func (m Model) KSHidden() bool {
	b := int64(m.CoreBatch())
	return b*m.KSCyclesPerLWE() <= m.BlindRotateCycles(int(b))
}

// KskBytesTotal returns the keyswitching-key size streamed per epoch.
func (m Model) KskBytesTotal() int64 {
	return int64(m.P.ExtractedN()) * int64(m.P.KSLevel) * int64(m.P.SmallN+1) * 4
}

// RequiredBandwidth returns the sustained external bandwidth (bytes/s) the
// configuration demands to stay compute-bound at core batch 1 — the
// "Required Bandwidth" column of Table VII: bootstrapping-key streaming at
// the compute rate, plus keyswitching-key streaming per epoch, plus
// ciphertext traffic.
func (m Model) RequiredBandwidth() float64 {
	si := float64(m.StageInterval()) / m.Cfg.FreqHz
	bsk := float64(m.BskBytesPerIter()) / si

	epoch := float64(m.P.SmallN) * si
	ksk := float64(m.KskBytesTotal()) / epoch

	// Ciphertext traffic: per epoch, TvLP LWEs in (n+1 words) and out
	// (n+1 words after KS), plus the initial test vectors ((k+1)·N words).
	ctBytes := float64(m.Cfg.TvLP) * float64((m.P.SmallN+1)*2*4+(m.P.K+1)*m.P.N*4)
	ct := ctBytes / epoch

	return bsk + ksk + ct
}

// PerfSummary bundles the headline numbers for reporting.
type PerfSummary struct {
	Set             string
	TvLP, CLP       int
	CoreBatch       int
	LatencyMs       float64
	ThroughputPBS   float64
	RequiredBWGBs   float64
	MemoryBound     bool
	StageInterval   int64
	BskFetchCycles  int64
	KSCyclesPerLWE  int64
	KSHiddenFully   bool
	BRCyclesBatch   int64
	EpochLWECount   int
	LatencyCycles64 int64
}

// Summary computes the PerfSummary for the model.
func (m Model) Summary() PerfSummary {
	b := m.CoreBatch()
	return PerfSummary{
		Set:             m.P.Name,
		TvLP:            m.Cfg.TvLP,
		CLP:             m.Cfg.CLP,
		CoreBatch:       b,
		LatencyMs:       m.LatencySeconds() * 1e3,
		ThroughputPBS:   m.ThroughputPBS(),
		RequiredBWGBs:   m.RequiredBandwidth() / 1e9,
		MemoryBound:     m.BskFetchCycles() > int64(b)*m.StageInterval(),
		StageInterval:   m.StageInterval(),
		BskFetchCycles:  m.BskFetchCycles(),
		KSCyclesPerLWE:  m.KSCyclesPerLWE(),
		KSHiddenFully:   m.KSHidden(),
		BRCyclesBatch:   m.BlindRotateCycles(b),
		EpochLWECount:   b * m.Cfg.TvLP,
		LatencyCycles64: m.LatencyCycles(),
	}
}
