package arch

import (
	"math"
	"testing"

	"repro/internal/cycle"
	"repro/internal/tfhe"
)

func mustModel(t *testing.T, cfg Config, p tfhe.Params) Model {
	t.Helper()
	m, err := NewModel(cfg, p)
	if err != nil {
		t.Fatalf("NewModel(%s): %v", p.Name, err)
	}
	return m
}

// within checks relative agreement.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > tol {
		t.Errorf("%s = %.4g, want %.4g (±%.0f%%), off by %.1f%%", name, got, want, tol*100, rel*100)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.BskChannels = 10 // 10+4+4 != 16
	if bad.Validate() == nil {
		t.Error("bad channel split should fail")
	}
	bad = DefaultConfig()
	bad.TvLP = 0
	if bad.Validate() == nil {
		t.Error("zero TvLP should fail")
	}
	bad = DefaultConfig()
	bad.FreqHz = -1
	if bad.Validate() == nil {
		t.Error("negative frequency should fail")
	}
}

func TestStageIntervalSetI(t *testing.T) {
	m := mustModel(t, DefaultConfig(), tfhe.ParamsI)
	// SI = ceil((k+1)·lb/PLP) · (N/2)/CLP = 2 · 128 = 256 cycles.
	if got := m.StageInterval(); got != 256 {
		t.Errorf("SI = %d, want 256", got)
	}
}

func TestStageIntervalAllSets(t *testing.T) {
	want := map[string]int64{"I": 256, "II": 384, "III": 768, "IV": 4096}
	for _, p := range tfhe.StandardSets() {
		m := mustModel(t, DefaultConfig(), p)
		if got := m.StageInterval(); got != want[p.Name] {
			t.Errorf("set %s: SI = %d, want %d", p.Name, got, want[p.Name])
		}
	}
}

// TestTableVStrix checks the headline result: Strix rows of Table V.
func TestTableVStrix(t *testing.T) {
	want := map[string]struct {
		latencyMs float64
		pbsPerSec float64
	}{
		"I":   {0.16, 74696},
		"II":  {0.23, 39600},
		"III": {0.44, 21104},
		"IV":  {3.31, 2368},
	}
	tolLat := map[string]float64{"I": 0.05, "II": 0.05, "III": 0.05, "IV": 0.18}
	for _, p := range tfhe.StandardSets() {
		m := mustModel(t, DefaultConfig(), p)
		w := want[p.Name]
		within(t, "set "+p.Name+" throughput", m.ThroughputPBS(), w.pbsPerSec, 0.02)
		within(t, "set "+p.Name+" latency", m.LatencySeconds()*1e3, w.latencyMs, tolLat[p.Name])
	}
}

// TestTableVIFolding checks the folding-ablation ratios.
func TestTableVIFolding(t *testing.T) {
	cfg := DefaultConfig()
	folded := mustModel(t, cfg, tfhe.ParamsI)
	cfg.Folded = false
	unfolded := mustModel(t, cfg, tfhe.ParamsI)

	within(t, "throughput ratio", folded.ThroughputPBS()/unfolded.ThroughputPBS(), 1.99, 0.03)
	within(t, "latency ratio", unfolded.LatencySeconds()/folded.LatencySeconds(), 1.68, 0.05)
	within(t, "unfolded throughput", unfolded.ThroughputPBS(), 37472, 0.02)
	within(t, "unfolded latency", unfolded.LatencySeconds()*1e3, 0.27, 0.05)

	am := AreaModel{Cfg: DefaultConfig(), P: tfhe.ParamsI}
	amNF := am
	amNF.Cfg.Folded = false
	within(t, "FFT area ratio", amNF.FFTUnitAreaMM2()/am.FFTUnitAreaMM2(), 1.73, 0.03)
	within(t, "core area ratio", amNF.CoreAreaMM2()/am.CoreAreaMM2(), 1.48, 0.06)
}

// TestTableVIITradeoff checks the TvLP/CLP sweep of Table VII.
func TestTableVIITradeoff(t *testing.T) {
	rows := []struct {
		tvlp, clp int
		pbs       float64
		latencyMs float64
	}{
		{16, 2, 2368, 7.2},
		{8, 4, 2368, 3.8},
		{4, 8, 2364, 3.8},
		{2, 16, 1240, 3.6},
		{1, 32, 620, 3.6},
	}
	for _, r := range rows {
		cfg := DefaultConfig().WithParallelism(r.tvlp, r.clp, 2, 2)
		m := mustModel(t, cfg, tfhe.ParamsIV)
		within(t, "TvLP/CLP throughput", m.ThroughputPBS(), r.pbs, 0.08)
		within(t, "TvLP/CLP latency", m.LatencySeconds()*1e3, r.latencyMs, 0.10)
	}
}

func TestTableVIIBandwidthMonotonic(t *testing.T) {
	// Required bandwidth must grow monotonically with CLP and cross the
	// 300 GB/s stack capacity between CLP=4 and CLP=8 (the paper's
	// compute/memory-bound crossover).
	var prev float64
	for _, r := range []struct{ tvlp, clp int }{{16, 2}, {8, 4}, {4, 8}, {2, 16}, {1, 32}} {
		cfg := DefaultConfig().WithParallelism(r.tvlp, r.clp, 2, 2)
		m := mustModel(t, cfg, tfhe.ParamsIV)
		bw := m.RequiredBandwidth() / 1e9
		if bw <= prev {
			t.Errorf("CLP=%d: bandwidth %v not increasing", r.clp, bw)
		}
		if r.clp <= 4 && bw > 300 {
			t.Errorf("CLP=%d should be within one HBM stack, needs %.0f GB/s", r.clp, bw)
		}
		if r.clp >= 8 && bw < 300 {
			t.Errorf("CLP=%d should exceed one HBM stack, needs %.0f GB/s", r.clp, bw)
		}
		prev = bw
	}
}

func TestMemoryBoundFlag(t *testing.T) {
	cfg := DefaultConfig().WithParallelism(1, 32, 2, 2)
	m := mustModel(t, cfg, tfhe.ParamsIV)
	if !m.Summary().MemoryBound {
		t.Error("TvLP=1/CLP=32 should be memory bound")
	}
	m = mustModel(t, DefaultConfig().WithParallelism(16, 2, 2, 2), tfhe.ParamsIV)
	if m.Summary().MemoryBound {
		t.Error("TvLP=16/CLP=2 should be compute bound")
	}
}

func TestKSHiddenBehindBR(t *testing.T) {
	for _, p := range tfhe.StandardSets() {
		m := mustModel(t, DefaultConfig(), p)
		if !m.KSHidden() {
			t.Errorf("set %s: keyswitching should hide behind blind rotation", p.Name)
		}
	}
}

func TestCoreBatchScratchpadCap(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.MaxCoreBatch(tfhe.ParamsIV); got != 2 {
		t.Errorf("set IV max core batch = %d, want 2 (0.625 MB / 256 KB double-buffered)", got)
	}
	if got := cfg.MaxCoreBatch(tfhe.ParamsI); got != 40 {
		t.Errorf("set I max core batch = %d, want 40", got)
	}
}

func TestModelRejectsTinyScratchpad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalScratchpadBytes = 1024 // cannot hold any test vector
	if _, err := NewModel(cfg, tfhe.ParamsIV); err == nil {
		t.Error("expected error for scratchpad too small for set IV")
	}
}

func TestCycleSimMatchesAnalytic(t *testing.T) {
	// The cycle-level simulator and the closed-form model must agree on
	// the steady-state blind-rotation time (within pipeline-fill slack).
	for _, p := range []tfhe.Params{tfhe.ParamsI, tfhe.ParamsII, tfhe.ParamsIII} {
		m := mustModel(t, DefaultConfig(), p)
		b := m.CoreBatch()
		sim := NewHSCSim(m)
		res, err := sim.SimulateBlindRotate(b, p.SmallN)
		if err != nil {
			t.Fatal(err)
		}
		analytic := float64(m.BlindRotateCycles(b))
		got := float64(res.Makespan)
		// Allow pipeline fill: a few stage intervals of slack.
		if math.Abs(got-analytic) > 8*float64(m.StageInterval())+64 {
			t.Errorf("set %s: cycle sim %v vs analytic %v", p.Name, got, analytic)
		}
	}
}

func TestCycleSimMemoryBoundStalls(t *testing.T) {
	// With CLP=32 on one core, the key stream paces iterations: the cycle
	// sim must slow down to the fetch rate.
	cfg := DefaultConfig().WithParallelism(1, 32, 2, 2)
	m := mustModel(t, cfg, tfhe.ParamsIV)
	sim := NewHSCSim(m)
	iters := 32
	res, err := sim.SimulateBlindRotate(1, iters)
	if err != nil {
		t.Fatal(err)
	}
	perIter := float64(res.Makespan) / float64(iters)
	fetch := float64(m.BskFetchCycles())
	if perIter < 0.9*fetch {
		t.Errorf("memory-bound per-iteration %v should approach fetch time %v", perIter, fetch)
	}
}

func TestFig8Utilizations(t *testing.T) {
	// Fig 8: with 3 LWEs per core on set I, decomposer/FFT/VMA/IFFT/
	// accumulator reach ~100% utilization, the rotator ~50%.
	m := mustModel(t, DefaultConfig(), tfhe.ParamsI)
	sim := NewHSCSim(m)
	iters := 20
	if _, err := sim.SimulateBlindRotate(3, iters); err != nil {
		t.Fatal(err)
	}
	// Steady-state window: skip the first two and last two iterations.
	si := m.StageInterval()
	from := 2 * 3 * si
	to := int64(iters-2) * 3 * si
	u := func(unit string) float64 {
		return sim.Trace.Utilization(unit, cycle.Time(from), cycle.Time(to))
	}
	for _, unit := range []string{UnitDecomposer, UnitFFT, UnitVMA, UnitIFFT, UnitAccum} {
		if got := u(unit); got < 0.95 {
			t.Errorf("%s utilization %.2f, want ~1.0", unit, got)
		}
	}
	if got := u(UnitRotator); got < 0.4 || got > 0.6 {
		t.Errorf("rotator utilization %.2f, want ~0.5", got)
	}
	if got := u(UnitScratchpad); got < 0.8 {
		t.Errorf("scratchpad utilization %.2f, want ~0.9", got)
	}
	if got := u(UnitHBM); got <= 0.1 || got > 1.0 {
		t.Errorf("HBM utilization %.2f, want busy but below saturation", got)
	}
}

func TestSimulateBlindRotateValidation(t *testing.T) {
	m := mustModel(t, DefaultConfig(), tfhe.ParamsIV)
	sim := NewHSCSim(m)
	if _, err := sim.SimulateBlindRotate(0, 1); err == nil {
		t.Error("batch 0 should error")
	}
	if _, err := sim.SimulateBlindRotate(100, 1); err == nil {
		t.Error("batch beyond scratchpad capacity should error")
	}
}

func TestSimulatePBSAndKS(t *testing.T) {
	m := mustModel(t, DefaultConfig(), tfhe.ParamsI)
	sim := NewHSCSim(m)
	done, err := sim.SimulatePBSAndKS(2)
	if err != nil {
		t.Fatal(err)
	}
	min := m.BlindRotateCycles(2)
	if int64(done) <= min {
		t.Errorf("PBS+KS completion %d should exceed BR-only %d", done, min)
	}
}

func TestChipRunPBSThroughput(t *testing.T) {
	chip, err := NewChip(DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	// A large batch should approach the model's sustained throughput.
	r, err := chip.RunPBS(100000)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "chip sustained throughput", r.ThroughputPBS, chip.Model.ThroughputPBS(), 0.02)
}

func TestChipRunPBSSmall(t *testing.T) {
	chip, err := NewChip(DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	r, err := chip.RunPBS(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epochs != 1 {
		t.Errorf("1 PBS = %d epochs, want 1", r.Epochs)
	}
	// One PBS on the chip costs at least the single-PBS latency.
	if r.Seconds < chip.Model.LatencySeconds()*0.9 {
		t.Errorf("single PBS %.3g s below latency %.3g s", r.Seconds, chip.Model.LatencySeconds())
	}
	zero, err := chip.RunPBS(0)
	if err != nil || zero.Cycles != 0 {
		t.Errorf("RunPBS(0) = %+v, %v", zero, err)
	}
	if _, err := chip.RunPBS(-1); err == nil {
		t.Error("negative count should error")
	}
}

func TestChipRunLayersSequential(t *testing.T) {
	chip, err := NewChip(DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := chip.RunPBS(92)
	layers, err := chip.RunLayers([]int{92, 92, 92})
	if err != nil {
		t.Fatal(err)
	}
	if layers.Cycles != 3*a.Cycles {
		t.Errorf("3 dependent layers = %d cycles, want 3×%d", layers.Cycles, a.Cycles)
	}
}

func TestAreaModelTableIII(t *testing.T) {
	am := AreaModel{Cfg: DefaultConfig(), P: tfhe.ParamsI}
	within(t, "core area", am.CoreAreaMM2(), 9.38, 0.03)
	within(t, "chip area", am.ChipAreaMM2(), 141.37, 0.03)
	within(t, "core power", am.CorePowerW(), 6.21, 0.05)
	within(t, "chip power", am.ChipPowerW(), 77.14, 0.05)
	within(t, "FFT unit area", am.FFTUnitAreaMM2(), 1.81, 0.03)
}

func TestAreaBreakdownRows(t *testing.T) {
	am := AreaModel{Cfg: DefaultConfig(), P: tfhe.ParamsI}
	rows := am.Breakdown()
	if len(rows) != 12 {
		t.Fatalf("breakdown has %d rows, want 12", len(rows))
	}
	if rows[len(rows)-1].Component != "Total" {
		t.Error("last row should be Total")
	}
	var sum float64
	for _, r := range rows[:6] {
		sum += r.AreaMM2
	}
	within(t, "component sum vs core", sum, rows[6].AreaMM2, 0.02)
}

func TestFFTModelInitiationInterval(t *testing.T) {
	f := FFTUnitModel{Points: 512, CLP: 4}
	if got := f.InitiationIntervalCycles(); got != 128 {
		t.Errorf("II = %d, want 128", got)
	}
	if f.Stages() != 9 {
		t.Errorf("stages = %d, want 9", f.Stages())
	}
	if f.BFUs() != 18 {
		t.Errorf("BFUs = %d, want 18", f.BFUs())
	}
}

func TestWithParallelismPreservesProduct(t *testing.T) {
	base := DefaultConfig()
	for _, r := range []struct{ tvlp, clp int }{{16, 2}, {8, 4}, {4, 8}, {2, 16}, {1, 32}} {
		c := base.WithParallelism(r.tvlp, r.clp, 2, 2)
		if c.TvLP*c.CLP != 32 {
			t.Errorf("TvLP·CLP = %d, want 32", c.TvLP*c.CLP)
		}
	}
}
