package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/tfhe"
)

// Ablations beyond the paper's published tables, quantifying the design
// choices DESIGN.md calls out. They are registered alongside the paper
// experiments under "ablation-*" IDs.

// AblationUnrolling compares standard Strix against a bootstrapping-key
// unrolled variant (the Matcha technique, §VII): half the serial
// iterations, 1.5× key traffic and 1.5× per-iteration compute.
func AblationUnrolling() (Report, error) {
	r := Report{
		ID:     "ablation-unroll",
		Title:  "Bootstrapping key unrolling (Matcha-style) vs standard Strix",
		Header: []string{"set", "config", "latency std (ms)", "latency BKU (ms)", "thr std (PBS/s)", "thr BKU (PBS/s)", "key size"},
	}
	configs := []struct {
		label string
		cfg   arch.Config
	}{
		{"PLP=2, 1 stack", arch.DefaultConfig()},
		{"PLP=6, 1 stack", func() arch.Config { c := arch.DefaultConfig(); c.PLP = 6; return c }()},
		{"PLP=6, 2 stacks", func() arch.Config {
			c := arch.DefaultConfig()
			c.PLP = 6
			c.HBMBytesPerSec = 600e9
			c.BskChannels, c.KskChannels, c.CtChannels = 12, 2, 2
			return c
		}()},
	}
	for _, p := range []tfhe.Params{tfhe.ParamsI, tfhe.ParamsIV} {
		for _, cc := range configs {
			c, err := arch.CompareUnrolling(cc.cfg, p)
			if err != nil {
				return Report{}, err
			}
			r.AddRow(p.Name, cc.label,
				f2(c.StdLatencyMs), f2(c.UnrolledLatencyMs),
				f0(c.StdThroughput), f0(c.UnrolledThroughput),
				fmt.Sprintf("%.2fx", c.KeyBytesRatio))
		}
	}
	r.AddNote("unrolling does 1.5x the total FFT work and streams 1.5x the key bytes: at one HBM")
	r.AddNote("stack it is strictly worse, and even with 3x FFT units + 2x bandwidth it only reaches")
	r.AddNote("latency parity - the quantitative case for two-level batching over Matcha's unrolling")
	return r, nil
}

// AblationCoreBatch sweeps the core-level batch size (set I): throughput
// saturates once the batch hides the key-fetch time, while single-batch
// latency grows linearly — the core-level batching trade-off of §IV-C.
func AblationCoreBatch() (Report, error) {
	pts, err := arch.SweepCoreBatch(arch.DefaultConfig(), tfhe.ParamsI, 8)
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "ablation-corebatch",
		Title:  "Core-level batch size sweep (set I)",
		Header: []string{"batch/core", "throughput (PBS/s)", "batch latency (ms)"},
	}
	for _, p := range pts {
		r.AddRow(fmt.Sprintf("%d", p.Batch), f0(p.ThroughputPBS), f2(p.LatencyMs))
	}
	r.AddNote("throughput saturates once batch*SI covers the 263-cycle key fetch; latency grows linearly")
	return r, nil
}

// AblationBandwidth sweeps the external memory bandwidth (set IV,
// TvLP=8/CLP=4): Strix saturates at a single 300 GB/s HBM2e stack, unlike
// CKKS accelerators that need ~1 TB/s (§VII).
func AblationBandwidth() (Report, error) {
	pts, err := arch.SweepBandwidth(arch.DefaultConfig(), tfhe.ParamsIV,
		[]float64{75, 150, 225, 300, 600, 1200})
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "ablation-bandwidth",
		Title:  "External bandwidth sweep (set IV, TvLP=8, CLP=4)",
		Header: []string{"HBM (GB/s)", "throughput (PBS/s)", "bound"},
	}
	for _, p := range pts {
		bound := "compute"
		if p.MemoryBound {
			bound = "memory"
		}
		r.AddRow(f0(p.GBs), f0(p.ThroughputPBS), bound)
	}
	r.AddNote("throughput is flat above ~300 GB/s: TFHE on Strix is compute-bound (one HBM2e stack suffices)")
	return r, nil
}
