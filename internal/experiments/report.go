package experiments

import (
	"fmt"
	"strings"
)

// Report is the output of one experiment: a titled table plus notes.
type Report struct {
	ID     string // e.g. "table5", "fig2"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Text renders the report as an aligned text table.
func (r Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as comma-separated values (header + rows).
func (r Report) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	write(r.Header)
	for _, row := range r.Rows {
		write(row)
	}
	return b.String()
}

// f1, f2, f0 format floats at fixed precision for table cells.
func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
