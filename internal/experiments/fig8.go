package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cycle"
	"repro/internal/tfhe"
)

// Fig8 reproduces the functional-unit timing measurement: the first two
// blind-rotation iterations of one HSC processing three LWE ciphertexts
// (parameter set I), as a Gantt chart plus per-unit utilization over the
// steady state.
func Fig8() (Report, error) {
	m, err := arch.NewModel(arch.DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		return Report{}, err
	}
	const batch, iters = 3, 12
	sim := arch.NewHSCSim(m)
	if _, err := sim.SimulateBlindRotate(batch, iters); err != nil {
		return Report{}, err
	}

	si := m.StageInterval()
	window := cycle.Time(batch * si)
	// Steady-state utilization window: iterations 3..10.
	from, to := 3*window, 10*window

	r := Report{
		ID:     "fig8",
		Title:  "Functional-unit timing, 3 LWEs/core, set I (first two BR iterations)",
		Header: []string{"unit", "steady-state utilization"},
	}
	order := []string{
		arch.UnitRotator, arch.UnitDecomposer, arch.UnitFFT, arch.UnitVMA,
		arch.UnitIFFT, arch.UnitAccum, arch.UnitScratchpad, arch.UnitHBM,
	}
	for _, u := range order {
		r.AddRow(u, fmt.Sprintf("%.0f%%", 100*sim.Trace.Utilization(u, from, to)))
	}

	// Render the first two iterations as the paper does (~1280 ns at
	// 1.2 GHz ≈ 1536 cycles).
	nsPerCycle := 1e9 / m.Cfg.FreqHz
	ganttEnd := 2 * window
	r.AddNote("two iterations span %.0f ns (paper's Fig 8 x-axis reaches ~1300 ns)",
		float64(ganttEnd)*nsPerCycle)
	r.AddNote("gantt (cells = LWE index):\n%s", sim.Trace.Gantt(0, ganttEnd+cycle.Time(si), 96))
	r.AddNote("paper: decomposer/I/FFT/VMA/accumulator ~100%%, rotator ~50%%, scratchpad ~90%%, HBM ~60%%")
	return r, nil
}
