package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/tfhe"
)

// Fig1 reproduces the CPU workload breakdown of a TFHE gate operation:
// the PBS/KS/other split, the blind-rotation share of PBS, and the
// per-iteration split across FFT, vector multiply, IFFT+accumulate,
// decomposition and rotation. The breakdown is *measured* by executing a
// real gate with the functional library and weighting its operation
// counters with CPU cost weights (see internal/baseline).
//
// params selects the TFHE parameter set; the paper uses the Concrete
// 110-bit defaults (set I). Pass tfhe.ParamsTest for a fast run with the
// same algorithmic structure.
func Fig1(params tfhe.Params, seed int64) (Report, error) {
	rng := rand.New(rand.NewSource(seed))
	sk, ek := tfhe.GenerateKeys(rng, params)
	ev := tfhe.NewEvaluator(ek)

	a := sk.EncryptBool(rng, true)
	b := sk.EncryptBool(rng, false)
	out := ev.NAND(a, b)
	if got := sk.DecryptBool(out); got != true {
		return Report{}, fmt.Errorf("fig1: gate produced wrong result %v", got)
	}

	bd := baseline.GateBreakdown(params, ev, baseline.DefaultCostWeights())

	r := Report{
		ID:     "fig1",
		Title:  "Workload breakdown for TFHE gate operation on CPU (set " + params.Name + ")",
		Header: []string{"level", "component", "share"},
	}
	pct := func(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
	r.AddRow("gate", "PBS", pct(bd.PBSFrac))
	r.AddRow("gate", "KS", pct(bd.KSFrac))
	r.AddRow("gate", "other", pct(bd.OtherFrac))
	r.AddRow("PBS", "blind rotation", pct(bd.BlindRotateFrac))
	r.AddRow("PBS", "modswitch+extract", pct(1-bd.BlindRotateFrac))
	r.AddRow("BR iter", "FFT", pct(bd.FFTFrac))
	r.AddRow("BR iter", "vector mult", pct(bd.VMAFrac))
	r.AddRow("BR iter", "accum+IFFT", pct(bd.IFFTAccFrac))
	r.AddRow("BR iter", "decomposition", pct(bd.DecompFrac))
	r.AddRow("BR iter", "rotate", pct(bd.RotateFrac))
	r.AddNote("paper: PBS ~65%%, KS ~30%%, other ~5%%; blind rotation 96-98%% of PBS")
	r.AddNote("measured from %d bootstraps / %d keyswitches of the functional library",
		ev.Counters.PBSCount, ev.Counters.KSCount)
	return r, nil
}
