package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/tfhe"
)

// Table3 reproduces the area and power breakdown of Strix with 8 HSCs at
// TSMC 28nm (model calibrated to the published synthesis results).
func Table3() (Report, error) {
	am := arch.AreaModel{Cfg: arch.DefaultConfig(), P: tfhe.ParamsI}
	r := Report{
		ID:     "table3",
		Title:  "Area and power breakdown of Strix (8 HSCs, 28nm)",
		Header: []string{"component", "area (mm^2)", "power (W)"},
	}
	for _, row := range am.Breakdown() {
		r.AddRow(row.Component, f2(row.AreaMM2), f2(row.PowerW))
	}
	r.AddNote("paper totals: 141.37 mm^2, 77.14 W")
	return r, nil
}

// Table4 lists the TFHE parameter sets used throughout the experiments.
func Table4() (Report, error) {
	r := Report{
		ID:     "table4",
		Title:  "TFHE parameter sets",
		Header: []string{"set", "n", "k", "N", "lb", "lambda", "Bg", "KS level", "KS base"},
	}
	for _, p := range tfhe.StandardSets() {
		r.AddRow(p.Name,
			fmt.Sprintf("%d", p.SmallN), fmt.Sprintf("%d", p.K), fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.PBSLevel), fmt.Sprintf("%d-bit", p.Security),
			fmt.Sprintf("2^%d", p.PBSBaseLog),
			fmt.Sprintf("%d", p.KSLevel), fmt.Sprintf("2^%d", p.KSBaseLog))
	}
	r.AddNote("n/k/N/lb/lambda are Table IV values; gadget and KS parameters are library defaults (see DESIGN.md)")
	return r, nil
}

// Table5 reproduces the PBS latency/throughput comparison across platforms:
// CPU and GPU from their calibrated models, FPGA/ASIC comparators from
// their published numbers, and Strix from the analytic model (validated
// against the cycle simulator).
func Table5() (Report, error) {
	r := Report{
		ID:     "table5",
		Title:  "PBS latency and throughput across platforms",
		Header: []string{"platform", "set", "latency (ms)", "throughput (PBS/s)"},
	}
	cpu := baseline.NewCPUModel()
	for _, set := range []string{"I", "II", "III", "IV"} {
		lat, err := cpu.PBSLatencyMs(set)
		if err != nil {
			return Report{}, err
		}
		thr, _ := cpu.ThroughputPBS(set)
		r.AddRow("Concrete (CPU)", set, f2(lat), f0(thr))
	}
	gpu := baseline.NewGPUModel()
	for _, set := range []string{"I", "II"} {
		lat, err := gpu.PBSLatencyMs(set)
		if err != nil {
			return Report{}, err
		}
		thr, _ := gpu.ThroughputPBS(set)
		r.AddRow("NuFHE (GPU)", set, f2(lat), f0(thr))
	}
	for _, c := range baseline.PublishedComparators() {
		lat := "-"
		if c.LatencyMs > 0 {
			lat = f2(c.LatencyMs)
		}
		r.AddRow(c.Platform+" ("+c.Kind+")", c.Set, lat, f0(c.PBSPerSec))
	}
	var strixSetI float64
	for _, p := range tfhe.StandardSets() {
		m, err := arch.NewModel(arch.DefaultConfig(), p)
		if err != nil {
			return Report{}, err
		}
		r.AddRow("Strix (ASIC)", p.Name, f2(m.LatencySeconds()*1e3), f0(m.ThroughputPBS()))
		if p.Name == "I" {
			strixSetI = m.ThroughputPBS()
		}
	}
	cpuThr, _ := cpu.ThroughputPBS("I")
	gpuThr, _ := gpu.ThroughputPBS("I")
	r.AddNote("Strix vs CPU: %.0fx, vs GPU: %.0fx, vs Matcha: %.1fx (paper: 1067x, 37x, 7.4x)",
		strixSetI/cpuThr, strixSetI/gpuThr, strixSetI/baseline.MatchaThroughput)
	return r, nil
}

// Table6 reproduces the FFT folding-optimization ablation.
func Table6() (Report, error) {
	cfg := arch.DefaultConfig()
	folded, err := arch.NewModel(cfg, tfhe.ParamsI)
	if err != nil {
		return Report{}, err
	}
	cfgNF := cfg
	cfgNF.Folded = false
	unfolded, err := arch.NewModel(cfgNF, tfhe.ParamsI)
	if err != nil {
		return Report{}, err
	}
	amF := arch.AreaModel{Cfg: cfg, P: tfhe.ParamsI}
	amNF := arch.AreaModel{Cfg: cfgNF, P: tfhe.ParamsI}

	r := Report{
		ID:     "table6",
		Title:  "FFT folding optimization effects (set I)",
		Header: []string{"metric", "no fold", "with fold", "improvement"},
	}
	latNF := unfolded.LatencySeconds() * 1e3
	latF := folded.LatencySeconds() * 1e3
	r.AddRow("Latency (ms)", f2(latNF), f2(latF), fmt.Sprintf("%.2fx", latNF/latF))
	thrNF := unfolded.ThroughputPBS()
	thrF := folded.ThroughputPBS()
	r.AddRow("Throughput (PBS/s)", f0(thrNF), f0(thrF), fmt.Sprintf("%.2fx", thrF/thrNF))
	aNF := amNF.FFTUnitAreaMM2()
	aF := amF.FFTUnitAreaMM2()
	r.AddRow("FFT unit area (mm^2)", f2(aNF), f2(aF), fmt.Sprintf("%.2fx", aNF/aF))
	cNF := amNF.CoreAreaMM2()
	cF := amF.CoreAreaMM2()
	r.AddRow("Total core area (mm^2)", f2(cNF), f2(cF), fmt.Sprintf("%.2fx", cNF/cF))
	r.AddNote("paper: 0.27/0.16 ms (1.68x), 37472/74696 PBS/s (1.99x), 3.13/1.81 mm^2 (1.73x), 13.87/9.38 mm^2 (1.48x)")
	return r, nil
}

// Table7 reproduces the TvLP-vs-CLP trade-off sweep on parameter set IV
// with the external bandwidth fixed at one HBM2e stack.
func Table7() (Report, error) {
	r := Report{
		ID:     "table7",
		Title:  "TvLP vs CLP effects on throughput, latency, bandwidth (set IV)",
		Header: []string{"TvLP", "CLP", "throughput (PBS/s)", "latency (ms)", "required BW (GB/s)", "bound"},
	}
	for _, cfg := range []struct{ tvlp, clp int }{{16, 2}, {8, 4}, {4, 8}, {2, 16}, {1, 32}} {
		c := arch.DefaultConfig().WithParallelism(cfg.tvlp, cfg.clp, 2, 2)
		m, err := arch.NewModel(c, tfhe.ParamsIV)
		if err != nil {
			return Report{}, err
		}
		s := m.Summary()
		bound := "compute"
		if s.MemoryBound {
			bound = "memory"
		}
		r.AddRow(fmt.Sprintf("%d", cfg.tvlp), fmt.Sprintf("%d", cfg.clp),
			f0(s.ThroughputPBS), f1(s.LatencyMs), f0(s.RequiredBWGBs), bound)
	}
	r.AddNote("paper: 2368/2368/2364/1240/620 PBS/s; 7.2/3.8/3.8/3.6/3.6 ms; 200/257/371/599/1053 GB/s")
	r.AddNote("TvLP=8,CLP=4 is the sweet spot balancing compute and the 300 GB/s stack")
	return r, nil
}
