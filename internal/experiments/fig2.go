package experiments

import (
	"fmt"

	"repro/internal/baseline"
)

// Fig2 reproduces the GPU blind-rotation profiling figure: execution time
// versus ciphertext count under device-level batching (step function with
// BR fragmentation at multiples of 72) and versus per-core batch size under
// core-level batching on the GPU (linear growth — no benefit).
func Fig2() (Report, error) {
	gpu := baseline.NewGPUModel()

	r := Report{
		ID:     "fig2",
		Title:  "Blind-rotation kernel time on GPU: fragmentation vs core-level batching",
		Header: []string{"series", "x", "normalized time"},
	}
	// Device-level series sampled at the paper's x-axis breakpoints.
	for _, x := range []int{1, 36, 72, 73, 108, 144, 145, 216, 217, 288} {
		t := float64(gpu.Fragments(x) + 1)
		r.AddRow("device-level (# LWE)", fmt.Sprintf("%d", x), f1(t))
	}
	for b := 1; b <= 4; b++ {
		r.AddRow("core-level (# LWE/core)", fmt.Sprintf("%d", b), f1(float64(b)))
	}
	r.AddNote("device-level: time steps by 1 unit per 72 ciphertexts (eq. 1-2; BR fragmentation)")
	r.AddNote("core-level on GPU: time grows linearly with per-core batch — motivates the Strix HSC")
	return r, nil
}
