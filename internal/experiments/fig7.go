package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/workload"
)

// Fig7 reproduces the Zama Deep-NN application benchmark: execution time of
// NN-20/50/100 inference at N = 1024/2048/4096 on CPU, GPU and Strix.
// Layers are dependent, so each platform schedules them sequentially;
// within a layer all PBS are independent.
//
// The CPU reference uses cpuThreads worker threads (the Zama deep-NN
// baseline of ref [34] is a multicore CPU run; 32 threads lands in the
// paper's reported 33–38x Strix speedup band — see EXPERIMENTS.md).
func Fig7(cpuThreads int) (Report, error) {
	cpu := baseline.NewCPUModel()
	cpu.Threads = cpuThreads
	gpu := baseline.NewGPUModel()

	r := Report{
		ID:     "fig7",
		Title:  "Zama Deep-NN execution time (ms): CPU vs GPU vs Strix",
		Header: []string{"model", "N", "CPU (ms)", "GPU (ms)", "Strix (ms)", "Strix/CPU", "Strix/GPU"},
	}

	models, err := workload.Fig7Models()
	if err != nil {
		return Report{}, err
	}
	for _, nn := range models {
		p := nn.Params
		layers := nn.LayerPBS()

		// CPU: perPBS extrapolated by FFT work from the calibrated sets.
		cpuSet := p.Name
		if cpuSet == "NN4096" {
			cpuSet = "III" // scaled below
		}
		perPBS, err := cpu.PBSLatencyMs(cpuSet)
		if err != nil {
			return Report{}, err
		}
		if p.Name == "NN4096" {
			// N doubles vs set III: N·log2(N) work ratio, n ratio.
			perPBS *= (4096.0 * 12 / (2048.0 * 11)) * (float64(p.SmallN) / 592.0)
		}
		threads := cpu.Threads
		if threads < 1 {
			threads = 1
		}
		var cpuMs float64
		for _, l := range layers {
			// ceil(l/threads) rounds up per dependent layer.
			cpuMs += float64((l+threads-1)/threads) * perPBS
		}

		// GPU: per-layer fragmentation with batch time scaled to the NN
		// polynomial degree from the calibrated set I kernel.
		batchMs, err := gpu.ScaledBatchMs("I", 1024, p.N)
		if err != nil {
			return Report{}, err
		}
		var gpuMs float64
		for _, l := range layers {
			gpuMs += float64(gpu.Fragments(l)+1) * batchMs
		}
		gpuMs += gpu.LaunchOverheadMs * float64(len(layers))

		// Strix: the epoch scheduler with dependent layers.
		chip, err := arch.NewChip(arch.DefaultConfig(), p)
		if err != nil {
			return Report{}, err
		}
		res, err := chip.RunLayers(layers)
		if err != nil {
			return Report{}, err
		}
		strixMs := res.Seconds * 1e3

		r.AddRow(nn.Name, fmt.Sprintf("%d", p.N),
			f0(cpuMs), f0(gpuMs), f1(strixMs),
			fmt.Sprintf("%.0fx", cpuMs/strixMs),
			fmt.Sprintf("%.0fx", gpuMs/strixMs))
	}
	r.AddNote("paper reports Strix 33-38x vs CPU and 8-17x vs GPU across these nine points")
	r.AddNote("CPU reference uses %d threads (multicore Zama baseline); single-thread Concrete would be ~%dx slower",
		cpuThreads, cpuThreads)
	return r, nil
}
