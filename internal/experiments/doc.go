// Package experiments regenerates every table and figure of the paper's
// evaluation section from the models in this repository. Each experiment
// returns a Report whose rows mirror the paper's published rows/series, so
// paper-vs-measured comparison is direct (see EXPERIMENTS.md).
package experiments
