package experiments

import (
	"fmt"
	"sort"

	"repro/internal/tfhe"
)

// Runner produces one experiment report.
type Runner func() (Report, error)

// Registry maps experiment IDs to runners with default arguments. Fig 1
// runs on the test-sized parameter set by default so `-exp all` stays
// fast; use Fig1 directly with tfhe.ParamsI for the full-scale run.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":   func() (Report, error) { return Fig1(tfhe.ParamsTest, 1) },
		"fig2":   Fig2,
		"table3": Table3,
		"table4": Table4,
		"table5": Table5,
		"table6": Table6,
		"table7": Table7,
		"fig7":   func() (Report, error) { return Fig7(20) },
		"fig8":   Fig8,

		// Ablations beyond the paper (see DESIGN.md).
		"ablation-unroll":    AblationUnrolling,
		"ablation-corebatch": AblationCoreBatch,
		"ablation-bandwidth": AblationBandwidth,
	}
}

// PaperIDs returns the experiments that correspond to published tables and
// figures (excluding the extra ablations), in order of appearance.
func PaperIDs() []string {
	return []string{"fig1", "fig2", "table3", "table4", "table5", "table6", "table7", "fig7", "fig8"}
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string) (Report, error) {
	r, ok := Registry()[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r()
}

// RunAll executes every registered experiment in ID order.
func RunAll() ([]Report, error) {
	var out []Report
	for _, id := range IDs() {
		r, err := Run(id)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
