package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/tfhe"
)

func TestRunAllProducesReports(t *testing.T) {
	reports, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(IDs()) {
		t.Fatalf("%d reports for %d experiments", len(reports), len(IDs()))
	}
	for _, r := range reports {
		if len(r.Rows) == 0 {
			t.Errorf("%s: no rows", r.ID)
		}
		if len(r.Header) == 0 {
			t.Errorf("%s: no header", r.ID)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Header) {
				t.Errorf("%s: row width %d != header width %d", r.ID, len(row), len(r.Header))
			}
		}
		if !strings.Contains(r.Text(), r.Title) {
			t.Errorf("%s: Text() missing title", r.ID)
		}
		if !strings.HasPrefix(r.CSV(), r.Header[0]) {
			t.Errorf("%s: CSV() missing header", r.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("table99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFig1Breakdown(t *testing.T) {
	r, err := Fig1(tfhe.ParamsTest, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Gate-level shares must parse and sum to ~100%.
	var sum float64
	for _, row := range r.Rows[:3] {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		sum += v
	}
	if sum < 99.5 || sum > 100.5 {
		t.Errorf("gate-level shares sum to %.2f%%", sum)
	}
}

func TestFig2StepsAtFragmentBoundaries(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]string{}
	for _, row := range r.Rows {
		if row[0] == "device-level (# LWE)" {
			cells[row[1]] = row[2]
		}
	}
	if cells["72"] != "1.0" || cells["73"] != "2.0" || cells["288"] != "4.0" {
		t.Errorf("device-level series wrong: %v", cells)
	}
}

func TestTable5HasAllPlatforms(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	text := r.Text()
	for _, want := range []string{"Concrete", "NuFHE", "YKP", "XHEC", "Matcha", "Strix"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 5 missing platform %s", want)
		}
	}
	// 4 CPU + 2 GPU + 5 comparators + 4 Strix rows.
	if len(r.Rows) != 15 {
		t.Errorf("Table 5 has %d rows, want 15", len(r.Rows))
	}
}

func TestTable6ImprovementColumns(t *testing.T) {
	r, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if !strings.HasSuffix(row[3], "x") {
			t.Errorf("improvement cell %q should end in x", row[3])
		}
	}
}

func TestTable7Rows(t *testing.T) {
	r, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("Table 7 has %d rows, want 5", len(r.Rows))
	}
	// First two configs compute-bound, the last memory-bound.
	if r.Rows[0][5] != "compute" {
		t.Errorf("TvLP=16 should be compute bound, got %s", r.Rows[0][5])
	}
	if r.Rows[4][5] != "memory" {
		t.Errorf("CLP=32 should be memory bound, got %s", r.Rows[4][5])
	}
}

func TestFig7SpeedupShape(t *testing.T) {
	r, err := Fig7(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("Fig 7 has %d rows, want 9", len(r.Rows))
	}
	for _, row := range r.Rows {
		cpu := parseF(t, row[2])
		gpu := parseF(t, row[3])
		strix := parseF(t, row[4])
		if !(strix < gpu && gpu < cpu) {
			t.Errorf("%s N=%s: expected Strix < GPU < CPU, got %v/%v/%v",
				row[0], row[1], strix, gpu, cpu)
		}
	}
}

func TestFig8UtilizationRows(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	util := map[string]string{}
	for _, row := range r.Rows {
		util[row[0]] = row[1]
	}
	if util["FFT"] != "100%" {
		t.Errorf("FFT utilization %s, want 100%%", util["FFT"])
	}
	if util["Rotator"] != "50%" {
		t.Errorf("rotator utilization %s, want 50%%", util["Rotator"])
	}
	// The Gantt must appear in the notes.
	if !strings.Contains(r.Text(), "Rotator") {
		t.Error("missing gantt")
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float cell %q", s)
	}
	return v
}
