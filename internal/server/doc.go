// Package server is the session-sharded FHE gate service: the layer that
// lets many network clients funnel encrypted gate and LUT work into the
// streaming PBS engines of internal/engine.
//
// The trust split follows the classic FHE service model: clients keep
// their secret keys and upload only evaluation keys and ciphertexts (in
// the internal/wire encoding); the server holds one session per client ID,
// each owning the client's evaluation keys and a private
// engine.StreamingEngine. Sessions are LRU-bounded, so a long-running
// server sheds the key material of idle clients instead of growing without
// limit.
//
// Within a session, concurrent requests are coalesced group-commit style:
// while one stream occupies the engine, compatible requests (same gate op,
// or same LUT) pile into a shared group, and the next leader submits the
// whole group as one stream — so the engine sees long streams even when
// clients send small batches. Backpressure is a bounded per-session slot
// count: when too many requests are queued, new ones block until the
// backlog drains (and are refused with ErrOverloaded once they have
// waited past Config.QueueTimeout). Per-session metrics
// (request/item/stream/coalesce counts plus the engine's aggregated
// tfhe.OpCounters) are exported via Stats and the HTTP stats endpoint.
//
// Sessions can be durable. A SessionStore (MemStore, or the crash-safe
// DiskStore opened via Open/Config.DataDir) turns the LRU into a warm
// tier: registration persists the exact uploaded key bytes before the
// session becomes visible, eviction is transparent, and a warm miss
// restores the session from the store — singleflighted per client ID —
// with bitwise-identical results and no re-upload. DiskStore pairs
// CRC-checked key files with an append-only WAL (fsync-ordered so a
// record never points at missing bytes) and replays the longest valid
// prefix on open, truncating torn tails. Drain flips the server to
// draining — new work refused with ErrShuttingDown, in-flight streams
// run to completion — then closes the store; the healthz endpoint goes
// not-ready at the flip.
//
// The HTTP layer (Handler, Dial) frames the binary wire encoding in JSON:
// ciphertexts and keys travel as base64 []byte fields, everything else as
// plain JSON — trivially debuggable with curl, with the hot bytes still in
// the canonical binary codec. Every non-2xx response carries a
// machine-readable code (see ErrorResponse), surfaced client-side as a
// typed *APIError; the Client transparently retries the two Temporary
// codes (overloaded, shutting_down) with bounded jittered backoff.
package server
