package server

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/intops"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

// fixtureKeys caches one deterministic key set per seed for the package's
// tests (test-set keygen is ~10ms, but most tests share seed 1).
var (
	fixtureMu   sync.Mutex
	fixtureKeys = map[int64]keyPair{}
)

type keyPair struct {
	sk tfhe.SecretKeys
	ek tfhe.EvaluationKeys
}

// testKeys returns deterministic test-set keys for a seed.
func testKeys(t *testing.T, seed int64) (tfhe.SecretKeys, tfhe.EvaluationKeys) {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if kp, ok := fixtureKeys[seed]; ok {
		return kp.sk, kp.ek
	}
	sk, ek := tfhe.GenerateKeys(rand.New(rand.NewSource(seed)), tfhe.ParamsTest)
	fixtureKeys[seed] = keyPair{sk, ek}
	return sk, ek
}

// encryptBools encrypts a bit vector under sk with a per-call rng.
func encryptBools(sk tfhe.SecretKeys, seed int64, bits []bool) []tfhe.LWECiphertext {
	rng := rand.New(rand.NewSource(seed))
	cts := make([]tfhe.LWECiphertext, len(bits))
	for i, b := range bits {
		cts[i] = sk.EncryptBool(rng, b)
	}
	return cts
}

// encryptInts encrypts PBS-encoded integers in {0..space-1}.
func encryptInts(sk tfhe.SecretKeys, seed int64, msgs []int, space int) []tfhe.LWECiphertext {
	rng := rand.New(rand.NewSource(seed))
	cts := make([]tfhe.LWECiphertext, len(msgs))
	for i, m := range msgs {
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, space), sk.Params.LWEStdDev)
	}
	return cts
}

// decryptInt decodes a PBS-encoded integer of dimension n.
func decryptInt(sk tfhe.SecretKeys, ct tfhe.LWECiphertext, space int) int {
	return tfhe.DecodePBSMessage(sk.LWE.Phase(ct), space)
}

// TestGateBatchMatchesInProcess pins the service's results to the
// in-process engine.Engine.BatchGate path bit for bit: the same inputs
// under the same keys must produce identical ciphertexts, and they must
// decrypt to the gate truth table.
func TestGateBatchMatchesInProcess(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}

	bits := []bool{true, false, true, true, false, false, true, false}
	shift := append(bits[1:], bits[0])
	a := encryptBools(sk, 100, bits)
	b := encryptBools(sk, 200, shift)

	ref := engine.New(ek, engine.Config{Workers: 2})
	for _, op := range []engine.GateOp{engine.NAND, engine.AND, engine.OR, engine.NOR, engine.XOR, engine.XNOR} {
		got, err := srv.GateBatch("alice", op, a, b)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		want, err := ref.BatchGate(op, a, b)
		if err != nil {
			t.Fatalf("%v reference: %v", op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: service ciphertexts differ from in-process BatchGate", op)
		}
		for i := range got {
			if dec := sk.DecryptBool(got[i]); dec != op.Eval(bits[i], shift[i]) {
				t.Errorf("%v item %d: decrypted %v, want %v", op, i, dec, op.Eval(bits[i], shift[i]))
			}
		}
	}

	// Unary NOT: linear, no bootstrap, still must round through the service.
	got, err := srv.GateBatch("alice", engine.NOT, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if dec := sk.DecryptBool(got[i]); dec != !bits[i] {
			t.Errorf("NOT item %d: decrypted %v, want %v", i, dec, !bits[i])
		}
	}
}

// TestLUTBatchMatchesInProcess pins LUT batches to the sequential
// Evaluator.EvalLUTKS path.
func TestLUTBatchMatchesInProcess(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}

	const space = 8
	table := make([]int, space)
	for i := range table {
		table[i] = (i * i) % space
	}
	msgs := []int{0, 1, 3, 5, 7, 2}
	rng := rand.New(rand.NewSource(300))
	cts := make([]tfhe.LWECiphertext, len(msgs))
	for i, m := range msgs {
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, space), sk.Params.LWEStdDev)
	}

	got, err := srv.LUTBatch("alice", cts, space, table)
	if err != nil {
		t.Fatal(err)
	}
	ev := tfhe.NewEvaluator(ek)
	for i, m := range msgs {
		want := ev.EvalLUTKS(cts[i], space, func(x int) int { return table[x] })
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("item %d: service ciphertext differs from EvalLUTKS", i)
		}
		if dec := tfhe.DecodePBSMessage(sk.LWE.Phase(got[i]), space); dec != table[m] {
			t.Errorf("item %d: decrypted %d, want table[%d]=%d", i, dec, m, table[m])
		}
	}
}

// TestCoalescing holds the engine busy (execMu) while several requests
// arrive, then releases it: all requests must ride one stream.
func TestCoalescing(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.session("alice")
	if err != nil {
		t.Fatal(err)
	}

	// Stall the engine the way an in-flight stream would.
	sess.execMu.Lock()

	const requests = 4
	bits := []bool{true, false}
	var wg sync.WaitGroup
	results := make([][]tfhe.LWECiphertext, requests)
	errs := make([]error, requests)
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a := encryptBools(sk, int64(1000+r), bits)
			b := encryptBools(sk, int64(2000+r), bits)
			results[r], errs[r] = srv.GateBatch("alice", engine.NAND, a, b)
		}(r)
	}

	// Wait until one leader is parked on execMu and every other request
	// has joined the open group.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess.mu.Lock()
		g := sess.groups["g:NAND"]
		joined := 0
		if g != nil {
			joined = len(g.waiters)
		}
		sess.mu.Unlock()
		if joined == requests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests joined the group", joined, requests)
		}
		time.Sleep(time.Millisecond)
	}
	sess.execMu.Unlock()
	wg.Wait()

	for r := range errs {
		if errs[r] != nil {
			t.Fatalf("request %d: %v", r, errs[r])
		}
		for i := range results[r] {
			// NAND(x, x) == !x.
			if dec := sk.DecryptBool(results[r][i]); dec != !bits[i] {
				t.Errorf("request %d item %d: wrong bit", r, i)
			}
		}
	}

	st := sess.statsSnapshot()
	if st.Streams != 1 {
		t.Errorf("coalesced batch ran %d streams, want 1", st.Streams)
	}
	if st.Coalesced != requests {
		t.Errorf("coalesced count %d, want %d", st.Coalesced, requests)
	}
	if st.Items != int64(requests*len(bits)) {
		t.Errorf("items %d, want %d", st.Items, requests*len(bits))
	}
}

// TestConcurrentSessions hammers two sessions from many goroutines — the
// -race e2e of the session sharding and group-commit machinery.
func TestConcurrentSessions(t *testing.T) {
	skA, ekA := testKeys(t, 1)
	skB, ekB := testKeys(t, 2)
	srv := New(Config{MaxPending: 4, Stream: engine.StreamConfig{RotateWorkers: 2}})
	if err := srv.RegisterKey("alice", ekA); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterKey("bob", ekB); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*rounds)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			id, sk := "alice", skA
			if gi%2 == 1 {
				id, sk = "bob", skB
			}
			op := []engine.GateOp{engine.NAND, engine.XOR}[gi%2]
			for round := 0; round < rounds; round++ {
				bits := []bool{gi%2 == 0, round%2 == 0, true}
				shift := []bool{round%2 == 1, gi%3 == 0, false}
				a := encryptBools(sk, int64(10000+gi*100+round), bits)
				b := encryptBools(sk, int64(20000+gi*100+round), shift)
				out, err := srv.GateBatch(id, op, a, b)
				if err != nil {
					errCh <- err
					return
				}
				for i := range out {
					if dec := sk.DecryptBool(out[i]); dec != op.Eval(bits[i], shift[i]) {
						errCh <- fmt.Errorf("session %s goroutine %d round %d item %d: wrong bit", id, gi, round, i)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := srv.Stats()
	if len(st.Sessions) != 2 {
		t.Fatalf("stats has %d sessions, want 2", len(st.Sessions))
	}
	var requests, pending int64
	for _, ss := range st.Sessions {
		requests += ss.Requests
		pending += int64(ss.Pending)
		if ss.Counters.PBSCount == 0 {
			t.Errorf("session %s reports zero PBS", ss.ID)
		}
	}
	if requests != goroutines*rounds {
		t.Errorf("stats counted %d requests, want %d", requests, goroutines*rounds)
	}
	if pending != 0 {
		t.Errorf("pending requests after drain: %d, want 0", pending)
	}
}

// TestStatsNonBlocking pins the metrics contract: Stats must return
// promptly even while the session's engine is occupied by an in-flight
// stream (simulated by holding execMu with a request parked on it).
func TestStatsNonBlocking(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.session("alice")
	if err != nil {
		t.Fatal(err)
	}

	sess.execMu.Lock() // the engine is "busy"
	done := make(chan struct{})
	go func() {
		defer close(done)
		a := encryptBools(sk, 1, []bool{true})
		b := encryptBools(sk, 2, []bool{true})
		if _, err := srv.GateBatch("alice", engine.NAND, a, b); err != nil {
			t.Errorf("parked request failed: %v", err)
		}
	}()

	statsCh := make(chan Stats, 1)
	go func() { statsCh <- srv.Stats() }()
	select {
	case st := <-statsCh:
		if st.Sessions[0].ID != "alice" {
			t.Errorf("stats sessions = %+v", st.Sessions)
		}
	case <-time.After(5 * time.Second):
		t.Error("Stats blocked behind an in-flight stream")
	}

	sess.execMu.Unlock()
	<-done
	if pbs := sess.statsSnapshot().Counters.PBSCount; pbs == 0 {
		t.Error("counters snapshot not refreshed after the stream completed")
	}
}

// TestLRUEviction bounds the session cache and checks evicted clients get
// ErrUnknownSession while survivors keep working.
func TestLRUEviction(t *testing.T) {
	sk1, ek1 := testKeys(t, 1)
	_, ek2 := testKeys(t, 2)
	_, ek3 := testKeys(t, 3)
	srv := New(Config{MaxSessions: 2})

	if err := srv.RegisterKey("a", ek1); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterKey("b", ek2); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, err := srv.GateBatch("a", engine.NOT, encryptBools(sk1, 1, []bool{true}), nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterKey("c", ek3); err != nil {
		t.Fatal(err)
	}

	if got := srv.Sessions(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Errorf("sessions after eviction: %v, want [c a]", got)
	}
	if srv.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", srv.Evictions())
	}
	// Without a store, eviction is lossy and reported as such — the
	// specific "re-upload your key" error, not the generic unknown.
	if _, err := srv.GateBatch("b", engine.NOT, encryptBools(sk1, 2, []bool{true}), nil); !errors.Is(err, ErrSessionEvicted) {
		t.Errorf("evicted session error = %v, want ErrSessionEvicted", err)
	}
	// A never-registered ID stays unknown_session.
	if _, err := srv.GateBatch("nobody", engine.NOT, encryptBools(sk1, 2, []bool{true}), nil); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session error = %v, want ErrUnknownSession", err)
	}
	// Survivor still works.
	if _, err := srv.GateBatch("a", engine.NOT, encryptBools(sk1, 3, []bool{true}), nil); err != nil {
		t.Errorf("surviving session failed: %v", err)
	}
}

// TestValidation exercises every request-rejection path.
func TestValidation(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{MaxBatch: 4})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}
	good := encryptBools(sk, 1, []bool{true, false})
	short := good[:1]
	badDim := []tfhe.LWECiphertext{tfhe.NewLWECiphertext(3)}
	big := encryptBools(sk, 2, make([]bool, 5))

	if err := srv.RegisterKey("", ek); !errors.Is(err, ErrEmptyClientID) {
		t.Errorf("empty client id: %v", err)
	}
	if err := srv.RegisterKey("evil", tfhe.EvaluationKeys{Params: ek.Params}); err == nil {
		t.Error("malformed eval key accepted")
	}
	if _, err := srv.GateBatch("nobody", engine.NAND, good, good); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session: %v", err)
	}
	if _, err := srv.GateBatch("alice", engine.GateOp(99), good, good); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := srv.GateBatch("alice", engine.NAND, good, short); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := srv.GateBatch("alice", engine.NAND, badDim, badDim); err == nil {
		t.Error("bad dimension accepted")
	}
	if _, err := srv.GateBatch("alice", engine.NOT, good, good); err == nil {
		t.Error("NOT with two operands accepted")
	}
	if _, err := srv.GateBatch("alice", engine.NAND, big, big); !errors.Is(err, ErrBatchTooLarge) {
		t.Error("oversized batch accepted")
	}
	if out, err := srv.GateBatch("alice", engine.NAND, nil, nil); err != nil || out != nil {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
	if _, err := srv.LUTBatch("alice", good, 1, []int{0}); err == nil {
		t.Error("space below 2 accepted")
	}
	if _, err := srv.LUTBatch("alice", good, 8, []int{0}); err == nil {
		t.Error("short LUT table accepted")
	}
	if _, err := srv.LUTBatch("alice", good, 8, []int{0, 1, 2, 3, 4, 5, 6, 8}); err == nil {
		t.Error("out-of-range LUT entry accepted")
	}
	if _, err := srv.LUTBatch("alice", good, 1<<20, make([]int, 1<<20)); err == nil {
		t.Error("space larger than N accepted")
	}

	if rej := srv.Stats().Sessions[0].Rejected; rej == 0 {
		t.Error("rejections not counted")
	}
}

// TestCircuitBatchMatchesSequential pins the circuit-batch path to the
// sequential evaluator bit for bit: an intops multiply DAG executed
// through the session's coalescing dispatches must equal node-by-node
// evaluation, and decrypt to the plaintext product.
func TestCircuitBatchMatchesSequential(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}

	const digits = 2
	circ, err := intops.MulCircuit(digits)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(61))
	x, _ := intops.Encrypt(rng, sk, 7, digits)
	y, _ := intops.Encrypt(rng, sk, 11, digits)
	inputs := append(append([]tfhe.LWECiphertext{}, x.Digits...), y.Digits...)

	want, err := sched.RunSequential(circ, tfhe.NewEvaluator(ek), inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.CircuitBatch("alice", circ.Specs(), circ.OutputWires(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("service circuit outputs differ from sequential evaluation")
	}
	if dec := intops.Decrypt(sk, intops.Int{Digits: got}); dec != (7*11)%16 {
		t.Errorf("decrypted product = %d, want %d", dec, (7*11)%16)
	}

	st := srv.Stats().Sessions[0]
	if st.Streams == 0 || st.Items == 0 {
		t.Errorf("circuit dispatches did not go through the session submit path: %+v", st)
	}
}

// TestCircuitBatchValidation exercises the untrusted-input guards of the
// circuit endpoint.
func TestCircuitBatchValidation(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{MaxBatch: 4, MaxCircuitNodes: 8})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}
	in := encryptBools(sk, 9, []bool{true})

	if _, err := srv.CircuitBatch("nobody", []sched.NodeSpec{{Kind: sched.SpecInput}}, nil, in); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session: %v", err)
	}
	if _, err := srv.CircuitBatch("alice", make([]sched.NodeSpec, 9), nil, nil); !errors.Is(err, ErrBatchTooLarge) {
		t.Error("oversized circuit accepted")
	}
	// Outputs amplify the response; a tiny circuit must not be able to
	// request the same wire an unbounded number of times.
	manyOuts := make([]int, 9)
	if _, err := srv.CircuitBatch("alice", []sched.NodeSpec{{Kind: sched.SpecInput}}, manyOuts, in); !errors.Is(err, ErrBatchTooLarge) {
		t.Error("oversized outputs accepted")
	}
	if _, err := srv.CircuitBatch("alice", []sched.NodeSpec{{Kind: "bogus"}}, nil, nil); err == nil {
		t.Error("unknown node kind accepted")
	}
	if _, err := srv.CircuitBatch("alice", []sched.NodeSpec{{Kind: sched.SpecInput}}, nil, nil); err == nil {
		t.Error("input count mismatch accepted")
	}
	// Forward wire reference must be rejected by the rebuilt builder.
	bad := []sched.NodeSpec{{Kind: sched.SpecInput}, {Kind: sched.SpecGate, Op: "AND", A: 0, B: 2}}
	if _, err := srv.CircuitBatch("alice", bad, nil, in); err == nil {
		t.Error("forward reference accepted")
	}
	// LUT space beyond the parameter set's N must be rejected even though
	// the spec itself is well-formed.
	hugeSpace := 2 * ek.Params.N
	spec := []sched.NodeSpec{
		{Kind: sched.SpecInput},
		{Kind: sched.SpecLUT, In: 0, Space: hugeSpace, Table: make([]int, hugeSpace)},
	}
	if _, err := srv.CircuitBatch("alice", spec, []int{1}, in); err == nil {
		t.Error("LUT space beyond N accepted")
	}
	if rej := srv.Stats().Sessions[0].Rejected; rej == 0 {
		t.Error("circuit rejections not counted")
	}
}

// TestCircuitBatchCoalesces runs two concurrent identical circuits and
// checks that at least some of their level dispatches shared a stream
// (the group-commit window spans the engine-busy period, so with two
// in-flight circuits of many levels, coalescing is overwhelmingly
// likely; tolerate zero only by retrying a few times to keep the test
// deterministic-ish under scheduling noise).
func TestCircuitBatchCoalesces(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}
	const digits = 2
	circ, err := intops.MulCircuit(digits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	x, _ := intops.Encrypt(rng, sk, 5, digits)
	y, _ := intops.Encrypt(rng, sk, 6, digits)
	inputs := append(append([]tfhe.LWECiphertext{}, x.Digits...), y.Digits...)

	for attempt := 0; attempt < 5; attempt++ {
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for i := range errs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := srv.CircuitBatch("alice", circ.Specs(), circ.OutputWires(), inputs)
				if err == nil && len(out) != digits {
					err = fmt.Errorf("got %d outputs", len(out))
				}
				errs[i] = err
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if srv.Stats().Sessions[0].Coalesced > 0 {
			return
		}
	}
	t.Log("no coalescing observed after 5 attempts (scheduling-dependent); correctness already verified")
}
