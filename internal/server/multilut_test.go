package server

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

// mvTestTables builds k distinct tables over space.
func mvTestTables(space, k int) [][]int {
	tables := make([][]int, k)
	for i := range tables {
		tables[i] = make([]int, space)
		for m := range tables[i] {
			tables[i][m] = (m*m + i) % space
		}
	}
	return tables
}

// TestMultiLUTBatchMatchesInProcess pins the service's multi-value path
// to the in-process streaming engine bit for bit and to the plaintext
// tables.
func TestMultiLUTBatchMatchesInProcess(t *testing.T) {
	sk, ek := testKeys(t, 1)
	const space, k = 4, 3
	tables := mvTestTables(space, k)
	msgs := []int{0, 3, 1, 2, 2}
	cts := encryptInts(sk, 901, msgs, space)

	srv := New(Config{})
	if err := srv.RegisterKey("c1", ek); err != nil {
		t.Fatal(err)
	}
	got, err := srv.MultiLUTBatch("c1", cts, space, tables)
	if err != nil {
		t.Fatal(err)
	}

	eng := engine.NewStreaming(ek, engine.StreamConfig{})
	want, err := eng.StreamMultiLUT(cts, space, tfhe.TableFuncs(tables))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("got %d output groups, want %d", len(got), len(msgs))
	}
	for i := range got {
		if len(got[i]) != k {
			t.Fatalf("input %d: %d outputs, want %d", i, len(got[i]), k)
		}
		for j := range got[i] {
			if !reflectEqualLWE(got[i][j], want[i][j]) {
				t.Fatalf("output [%d][%d] differs from the in-process engine", i, j)
			}
			if dec := decryptInt(sk, got[i][j], space); dec != tables[j][msgs[i]] {
				t.Fatalf("output [%d][%d] decodes to %d, want %d", i, j, dec, tables[j][msgs[i]])
			}
		}
	}
}

// reflectEqualLWE compares two LWE ciphertexts bitwise.
func reflectEqualLWE(a, b tfhe.LWECiphertext) bool { return tfhe.EqualLWE(a, b) }

// TestMultiLUTCoalescing: concurrent fan-out requests with an identical
// table list must merge into one engine stream, and every caller must
// still get its own k outputs back, sliced with the k-wide stride.
func TestMultiLUTCoalescing(t *testing.T) {
	sk, ek := testKeys(t, 1)
	const space, k = 4, 2
	const callers = 4
	tables := mvTestTables(space, k)

	srv := New(Config{})
	if err := srv.RegisterKey("c1", ek); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.session("c1")
	if err != nil {
		t.Fatal(err)
	}

	// Stall the engine the way an in-flight stream would, so every
	// request joins one open group.
	sess.execMu.Lock()
	var wg sync.WaitGroup
	outs := make([][][]tfhe.LWECiphertext, callers)
	errs := make([]error, callers)
	msgs := make([][]int, callers)
	for c := 0; c < callers; c++ {
		msgs[c] = []int{c % space, (c + 1) % space}
		cts := encryptInts(sk, int64(910+c), msgs[c], space)
		wg.Add(1)
		go func(c int, cts []tfhe.LWECiphertext) {
			defer wg.Done()
			outs[c], errs[c] = srv.MultiLUTBatch("c1", cts, space, tables)
		}(c, cts)
	}
	key := multiLUTKey(space, tables)
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess.mu.Lock()
		g := sess.groups[key]
		joined := 0
		if g != nil {
			joined = len(g.waiters)
		}
		sess.mu.Unlock()
		if joined == callers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests joined the group", joined, callers)
		}
		time.Sleep(time.Millisecond)
	}
	sess.execMu.Unlock()
	wg.Wait()

	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatal(errs[c])
		}
		for i := range msgs[c] {
			for j := 0; j < k; j++ {
				if dec := decryptInt(sk, outs[c][i][j], space); dec != tables[j][msgs[c][i]] {
					t.Fatalf("caller %d output [%d][%d] decodes to %d, want %d", c, i, j, dec, tables[j][msgs[c][i]])
				}
			}
		}
	}
	st := sess.statsSnapshot()
	if st.Streams != 1 {
		t.Fatalf("coalesced multi-value batch ran %d streams, want 1", st.Streams)
	}
	if st.Coalesced != callers {
		t.Fatalf("coalesced count %d, want %d", st.Coalesced, callers)
	}
}

// TestMultiLUTValidationServer: malformed requests are rejected before
// they can join a group.
func TestMultiLUTValidationServer(t *testing.T) {
	sk, ek := testKeys(t, 1)
	const space = 4
	cts := encryptInts(sk, 920, []int{1}, space)

	srv := New(Config{MaxBatch: 8})
	if err := srv.RegisterKey("c1", ek); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.MultiLUTBatch("nope", cts, space, mvTestTables(space, 2)); err == nil {
		t.Fatal("unknown session accepted")
	}
	if _, err := srv.MultiLUTBatch("c1", cts, 1, [][]int{{0}}); err == nil {
		t.Fatal("space < 2 accepted")
	}
	over := make([][]int, tfhe.ParamsTest.N) // space·k > N
	for i := range over {
		over[i] = []int{0, 1, 2, 3}
	}
	if _, err := srv.MultiLUTBatch("c1", cts, space, over); err == nil {
		t.Fatal("space·k > N accepted")
	}
	if _, err := srv.MultiLUTBatch("c1", cts, space, [][]int{{0, 1}}); err == nil {
		t.Fatal("short table accepted")
	}
	if _, err := srv.MultiLUTBatch("c1", cts, space, [][]int{{0, 1, 2, 9}}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	// k outputs per input amplify the response: 3 inputs × 3 tables = 9 > 8.
	three := encryptInts(sk, 921, []int{0, 1, 2}, space)
	if _, err := srv.MultiLUTBatch("c1", three, space, mvTestTables(space, 3)); err == nil {
		t.Fatal("amplified batch above MaxBatch accepted")
	}
	bad := []tfhe.LWECiphertext{tfhe.NewLWECiphertext(tfhe.ParamsTest.SmallN + 1)}
	if _, err := srv.MultiLUTBatch("c1", bad, space, mvTestTables(space, 2)); err == nil {
		t.Fatal("wrong-dimension ciphertext accepted")
	}
	if out, err := srv.MultiLUTBatch("c1", nil, space, mvTestTables(space, 2)); err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

// TestHTTPMultiLUTBatch exercises the endpoint end to end through the
// client: wire codec, JSON framing, and the multi-value engine path.
func TestHTTPMultiLUTBatch(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := Dial(ts.URL, "http-mv")
	if err := cl.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}
	const space, k = 8, 4
	tables := mvTestTables(space, k)
	msgs := []int{7, 0, 5}
	cts := encryptInts(sk, 930, msgs, space)
	out, err := cl.MultiLUTBatch(cts, space, tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(msgs) {
		t.Fatalf("got %d output groups, want %d", len(out), len(msgs))
	}
	for i := range out {
		for j := 0; j < k; j++ {
			if dec := decryptInt(sk, out[i][j], space); dec != tables[j][msgs[i]] {
				t.Fatalf("output [%d][%d] decodes to %d, want %d", i, j, dec, tables[j][msgs[i]])
			}
		}
	}

	// A circuit with an explicit multi-value group goes through the same
	// coalescing path server-side.
	if _, err := cl.MultiLUTBatch(cts, 1, [][]int{{0}}); err == nil {
		t.Fatal("HTTP endpoint accepted space < 2")
	}
}

// TestCircuitBatchMultiLUT runs a circuit containing an explicit
// multi-value group through the HTTP circuit-batch path and pins it to
// the sequential reference bitwise — the scheduler's fan-out dispatch
// rides the same session coalescing machinery as standalone requests.
func TestCircuitBatchMultiLUT(t *testing.T) {
	sk, ek := testKeys(t, 1)
	const space = 4
	b := sched.NewBuilder()
	in := b.Input()
	ws := b.MultiLUT(in, space, mvTestTables(space, 3))
	b.Output(ws...)
	b.Output(b.LUT(ws[1], space, []int{3, 2, 1, 0}))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, "mv-circuit")
	if err := cl.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}

	inputs := encryptInts(sk, 940, []int{2}, space)
	got, err := cl.CircuitBatch(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.RunSequential(circ, tfhe.NewEvaluator(ek), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflectEqualLWE(got[i], want[i]) {
			t.Fatalf("circuit-batch output %d differs from sequential", i)
		}
	}

	// A circuit whose multi-value group cannot pack under the session's
	// parameters is rejected by server-side validation.
	over := sched.NewBuilder()
	oin := over.Input()
	overTables := make([][]int, tfhe.ParamsTest.N) // space·k > N
	for i := range overTables {
		overTables[i] = []int{0, 1, 2, 3}
	}
	over.Output(over.MultiLUT(oin, space, overTables)...)
	overCirc, err := over.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CircuitBatch(overCirc, inputs); err == nil {
		t.Fatal("unpackable multi-value circuit accepted")
	}
}
