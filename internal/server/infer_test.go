package server

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/tfhe"
	"repro/internal/workload"
)

// encryptFeatures encrypts a batch of cleartext feature vectors
// vector-major in the inference encoding.
func encryptFeatures(sk tfhe.SecretKeys, seed int64, vecs [][]int) []tfhe.LWECiphertext {
	rng := rand.New(rand.NewSource(seed))
	var cts []tfhe.LWECiphertext
	for _, v := range vecs {
		for _, m := range v {
			cts = append(cts, sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(m, workload.InferSpace), tfhe.ParamsTest.LWEStdDev))
		}
	}
	return cts
}

// TestInferBatchDecodesToReference runs a two-vector inference through
// the full service path — HTTP client, v2 infer envelope, group-commit
// execution — plain and optimized, and checks the encrypted scores
// decode to the quantized cleartext reference.
func TestInferBatchDecodesToReference(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, "infer-test")
	if err := cl.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}

	vecs := [][]int{{0, 1, 2, 3}, {3, 0, 3, 1}}
	cts := encryptFeatures(sk, 21, vecs)
	for _, opts := range []EvalOpts{{}, {Optimize: true}} {
		got, err := cl.Infer(cts, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(got) != len(vecs) {
			t.Fatalf("opts %+v: %d score groups, want %d", opts, len(got), len(vecs))
		}
		for i, v := range vecs {
			want, err := workload.InferReference(v)
			if err != nil {
				t.Fatal(err)
			}
			for k, wantScore := range want {
				dec := tfhe.DecodePBSMessage(sk.LWE.Phase(got[i][k]), workload.InferSpace)
				if dec != wantScore {
					t.Errorf("opts %+v vector %d score %d decodes to %d, want %d", opts, i, k, dec, wantScore)
				}
			}
		}
	}
}

// TestInferBatchValidation pins the request bounds of the inference
// path: ragged or empty feature batches, oversized batches, and wrong
// ciphertext dimensions are refused before execution.
func TestInferBatchValidation(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{MaxBatch: workload.InferFeatures})
	if err := srv.RegisterKey("v", ek); err != nil {
		t.Fatal(err)
	}
	good := encryptFeatures(sk, 22, [][]int{{0, 1, 2, 3}})

	if _, err := srv.InferBatch("v", nil, false); err == nil {
		t.Error("empty feature batch accepted")
	}
	if _, err := srv.InferBatch("v", good[:workload.InferFeatures-1], false); err == nil {
		t.Error("ragged feature batch accepted")
	}
	two := encryptFeatures(sk, 23, [][]int{{0, 1, 2, 3}, {1, 1, 1, 1}})
	if _, err := srv.InferBatch("v", two, false); err == nil || !strings.Contains(err.Error(), "batch size limit") {
		t.Errorf("oversized batch error = %v, want batch size limit", err)
	}
	bad := make([]tfhe.LWECiphertext, workload.InferFeatures)
	for i := range bad {
		bad[i] = tfhe.NewLWECiphertext(3)
	}
	if _, err := srv.InferBatch("v", bad, false); err == nil {
		t.Error("wrong-dimension ciphertexts accepted")
	}
	if _, err := srv.InferBatch("nobody", good, false); err == nil {
		t.Error("unknown session accepted")
	}
}
