package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/wire"
)

// Client speaks the gate service's HTTP API on behalf of one client ID.
// The secret keys never leave the caller: the client ships only the
// wire-encoded evaluation keys and ciphertexts. Safe for concurrent use.
type Client struct {
	base string
	id   string
	hc   *http.Client
}

// Dial returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8475") acting as clientID. No connection is made
// until the first request.
func Dial(baseURL, clientID string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		id:   clientID,
		hc:   &http.Client{},
	}
}

// ClientID returns the client ID requests are issued under.
func (c *Client) ClientID() string { return c.id }

// post sends one JSON request and decodes the reply into out.
func (c *Client) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeReply(resp, out)
}

// decodeReply decodes a service reply, surfacing ErrorResponse bodies.
// Replies are batch-sized at most, so the batch body bound applies.
func decodeReply(resp *http.Response, out any) error {
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBatchBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", er.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}

// RegisterKey uploads the evaluation keys, creating (or replacing) this
// client's session.
func (c *Client) RegisterKey(ek tfhe.EvaluationKeys) error {
	blob, err := wire.MarshalEvalKey(ek)
	if err != nil {
		return err
	}
	var resp RegisterKeyResponse
	return c.post("/v1/register-key", RegisterKeyRequest{ClientID: c.id, EvalKey: blob}, &resp)
}

// GateBatch evaluates out[i] = op(a[i], b[i]) on the server. For the unary
// NOT, b must be nil.
func (c *Client) GateBatch(op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	req := GateBatchRequest{ClientID: c.id, Op: op.String(), A: encodeCiphertexts(a)}
	if b != nil {
		req.B = encodeCiphertexts(b)
	}
	var resp BatchResponse
	if err := c.post("/v1/gate-batch", req, &resp); err != nil {
		return nil, err
	}
	return decodeCiphertexts(resp.Out, "out")
}

// CircuitBatch runs a built circuit on the server: the DAG ships as
// serialized node specs, the server levelizes it and coalesces every
// level dispatch with concurrent session traffic. Outputs return in the
// circuit's Output declaration order.
func (c *Client) CircuitBatch(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	req := CircuitBatchRequest{
		ClientID: c.id,
		Nodes:    circ.Specs(),
		Outputs:  circ.OutputWires(),
		Inputs:   encodeCiphertexts(inputs),
	}
	var resp BatchResponse
	if err := c.post("/v1/circuit-batch", req, &resp); err != nil {
		return nil, err
	}
	return decodeCiphertexts(resp.Out, "out")
}

// LUTBatch applies the lookup table (length space, entries in
// {0..space-1}) to every ciphertext on the server.
func (c *Client) LUTBatch(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	req := LUTBatchRequest{ClientID: c.id, Space: space, Table: table, Cts: encodeCiphertexts(cts)}
	var resp BatchResponse
	if err := c.post("/v1/lut-batch", req, &resp); err != nil {
		return nil, err
	}
	return decodeCiphertexts(resp.Out, "out")
}

// MultiLUTBatch applies k lookup tables (each length space, entries in
// {0..space-1}) to every ciphertext on the server via multi-value PBS —
// one blind rotation per input serves all k tables. out[i][j] is table j
// applied to cts[i].
func (c *Client) MultiLUTBatch(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	req := MultiLUTBatchRequest{ClientID: c.id, Space: space, Tables: tables, Cts: encodeCiphertexts(cts)}
	var resp MultiLUTBatchResponse
	if err := c.post("/v1/multilut-batch", req, &resp); err != nil {
		return nil, err
	}
	out := make([][]tfhe.LWECiphertext, len(resp.Out))
	for i, blobs := range resp.Out {
		outs, err := decodeCiphertexts(blobs, "out")
		if err != nil {
			return nil, err
		}
		out[i] = outs
	}
	return out, nil
}

// Stats fetches the service metrics snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	var st Stats
	if err := decodeReply(resp, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
