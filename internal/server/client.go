package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/wire"
)

// Client retry defaults: a transient refusal (HTTP 503, code overloaded
// or shutting_down) is retried up to DefaultMaxRetries times with
// jittered exponential backoff starting at DefaultRetryBase.
const (
	DefaultMaxRetries = 3
	DefaultRetryBase  = 100 * time.Millisecond
)

// Client speaks the gate service's HTTP API on behalf of one client ID.
// The secret keys never leave the caller: the client ships only the
// wire-encoded evaluation keys and ciphertexts. Safe for concurrent use.
//
// Service-level failures surface as *APIError, so callers can dispatch
// on the machine-readable code. Temporary refusals (overloaded,
// shutting_down) are retried transparently with bounded jittered
// backoff before the error is returned.
type Client struct {
	base       string
	id         string
	hc         *http.Client
	maxRetries int
	retryBase  time.Duration
}

// Dial returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8475") acting as clientID. No connection is made
// until the first request.
func Dial(baseURL, clientID string) *Client {
	return &Client{
		base:       strings.TrimRight(baseURL, "/"),
		id:         clientID,
		hc:         &http.Client{},
		maxRetries: DefaultMaxRetries,
		retryBase:  DefaultRetryBase,
	}
}

// SetRetry overrides the retry policy: at most maxRetries re-sends of a
// temporarily refused request, backing off from base. maxRetries 0
// disables retries.
func (c *Client) SetRetry(maxRetries int, base time.Duration) {
	c.maxRetries = maxRetries
	if base > 0 {
		c.retryBase = base
	}
}

// ClientID returns the client ID requests are issued under.
func (c *Client) ClientID() string { return c.id }

// retryable reports whether the failure is worth re-sending: the server
// explicitly asked for a retry (503 overloaded/shutting_down).
func retryable(err error) bool {
	var api *APIError
	return errors.As(err, &api) && api.Temporary()
}

// do sends one request, retrying temporary refusals, and decodes the
// reply into out. body is re-readable across attempts because it is a
// byte slice. A Retry-After the server sent with the refusal floors the
// jittered backoff for that attempt: the server knows how long its
// overload or drain will last better than the client's schedule does.
func (c *Client) do(method, path string, body []byte, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(method, path, body, out)
		if err == nil || !retryable(err) || attempt >= c.maxRetries {
			return err
		}
		d := Backoff(c.retryBase, attempt)
		var api *APIError
		if errors.As(err, &api) && api.RetryAfter > d {
			d = api.RetryAfter
		}
		time.Sleep(d)
	}
}

// doOnce sends exactly one request.
func (c *Client) doOnce(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeReply(resp, out)
}

// post sends one JSON request and decodes the reply into out.
func (c *Client) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.do(http.MethodPost, path, body, out)
}

// decodeReply decodes a service reply, surfacing ErrorResponse bodies as
// typed *APIError values. Replies are batch-sized at most, so the batch
// body bound applies.
func decodeReply(resp *http.Response, out any) error {
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBatchBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, Code: CodeInternal, RetryAfter: retryAfterOf(resp)}
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
			apiErr.Code = er.Code
			if apiErr.Code == "" {
				// Pre-code server: classify by status alone.
				apiErr.Code = CodeBadRequest
			}
		} else {
			apiErr.Message = fmt.Sprintf("HTTP %d", resp.StatusCode)
		}
		return apiErr
	}
	return json.Unmarshal(data, out)
}

// retryAfterOf parses a response's Retry-After delay. Both the server
// and the router send it as whole seconds on 503s; an absent, malformed,
// or HTTP-date header yields 0 (no floor), and the result is clamped to
// MaxBackoff so a hostile header cannot park the client.
func retryAfterOf(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > MaxBackoff {
		d = MaxBackoff
	}
	return d
}

// RegisterKey uploads the evaluation keys, creating (or replacing) this
// client's session.
func (c *Client) RegisterKey(ek tfhe.EvaluationKeys) error {
	blob, err := wire.MarshalEvalKey(ek)
	if err != nil {
		return err
	}
	var resp RegisterKeyResponse
	return c.post("/v1/register-key", RegisterKeyRequest{ClientID: c.id, EvalKey: blob}, &resp)
}

// eval posts one v2 evaluation envelope under this client's ID and
// decodes the flat output batch. Every evaluation method — gate, LUT,
// multi-value LUT, circuit — funnels through here, so retry policy,
// error typing, and any future routing concerns live in one place.
func (c *Client) eval(req EvalRequest) ([]tfhe.LWECiphertext, int, error) {
	req.ClientID = c.id
	var resp EvalResponse
	if err := c.post("/v2/eval", req, &resp); err != nil {
		return nil, 0, err
	}
	out, err := decodeCiphertexts(resp.Out, "out")
	if err != nil {
		return nil, 0, err
	}
	return out, resp.K, nil
}

// GateBatch evaluates out[i] = op(a[i], b[i]) on the server. For the unary
// NOT, b must be nil.
func (c *Client) GateBatch(op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	req := EvalRequest{Kind: EvalKindGate, Op: op.String(), A: encodeCiphertexts(a)}
	if b != nil {
		req.B = encodeCiphertexts(b)
	}
	out, _, err := c.eval(req)
	return out, err
}

// CircuitBatch runs a built circuit on the server: the DAG ships as
// serialized node specs, the server levelizes it and coalesces every
// level dispatch with concurrent session traffic. Outputs return in the
// circuit's Output declaration order.
func (c *Client) CircuitBatch(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return c.CircuitBatchOpts(circ, inputs, EvalOpts{})
}

// CircuitBatchOpts is CircuitBatch with the envelope options exposed:
// EvalOpts{Optimize: true} runs the server-side optimizer pass pipeline
// (CSE, pruning, linear folding, bootstrap fusion, multi-value packing
// within the session's parameter set) before execution. Optimized
// outputs decode identically to unoptimized ones but are not bitwise
// identical to them.
func (c *Client) CircuitBatchOpts(circ *sched.Circuit, inputs []tfhe.LWECiphertext, opts EvalOpts) ([]tfhe.LWECiphertext, error) {
	out, _, err := c.eval(EvalRequest{
		Kind:    EvalKindCircuit,
		Nodes:   circ.Specs(),
		Outputs: circ.OutputWires(),
		Inputs:  encodeCiphertexts(inputs),
		Opts:    opts,
	})
	return out, err
}

// CircuitBatchOptimized is CircuitBatchOpts with Optimize set.
//
// Deprecated: use CircuitBatchOpts(circ, inputs, EvalOpts{Optimize: true}).
func (c *Client) CircuitBatchOptimized(circ *sched.Circuit, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return c.CircuitBatchOpts(circ, inputs, EvalOpts{Optimize: true})
}

// LUTBatch applies the lookup table (length space, entries in
// {0..space-1}) to every ciphertext on the server.
func (c *Client) LUTBatch(cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	out, _, err := c.eval(EvalRequest{Kind: EvalKindLUT, Space: space, Table: table, Cts: encodeCiphertexts(cts)})
	return out, err
}

// MultiLUTBatch applies k lookup tables (each length space, entries in
// {0..space-1}) to every ciphertext on the server via multi-value PBS —
// one blind rotation per input serves all k tables. out[i][j] is table j
// applied to cts[i].
func (c *Client) MultiLUTBatch(cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	flat, k, err := c.eval(EvalRequest{Kind: EvalKindMultiLUT, Space: space, Tables: tables, Cts: encodeCiphertexts(cts)})
	if err != nil {
		return nil, err
	}
	if k <= 0 || len(flat)%k != 0 {
		return nil, fmt.Errorf("server: eval reply shape %d outputs / k=%d", len(flat), k)
	}
	out := make([][]tfhe.LWECiphertext, 0, len(flat)/k)
	for i := 0; i < len(flat); i += k {
		out = append(out, flat[i:i+k])
	}
	return out, nil
}

// Infer runs the server's built-in cellCNN-style inference model over a
// batch of encrypted feature vectors: features is vector-major,
// workload.InferFeatures InferSpace-encoded ciphertexts per inference.
// out[i] is inference i's workload.InferClasses encrypted class scores,
// which decode to workload.InferReference's cleartext scores; the caller
// decrypts and argmaxes (workload.InferPredict) to read the prediction.
// opts with Optimize runs the model through the server-side optimizer
// pass pipeline first.
func (c *Client) Infer(features []tfhe.LWECiphertext, opts EvalOpts) ([][]tfhe.LWECiphertext, error) {
	flat, k, err := c.eval(EvalRequest{Kind: EvalKindInfer, Inputs: encodeCiphertexts(features), Opts: opts})
	if err != nil {
		return nil, err
	}
	if k <= 0 || len(flat)%k != 0 {
		return nil, fmt.Errorf("server: eval reply shape %d outputs / k=%d", len(flat), k)
	}
	out := make([][]tfhe.LWECiphertext, 0, len(flat)/k)
	for i := 0; i < len(flat); i += k {
		out = append(out, flat[i:i+k])
	}
	return out, nil
}

// Stats fetches the service metrics snapshot.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	if err := c.do(http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Healthz fetches the server's readiness. A draining server answers 503
// with its HealthResponse body; that surfaces as a shutting_down
// *APIError alongside the decoded health state, and is never retried —
// health probes want the current answer, not a lucky one.
func (c *Client) Healthz() (HealthResponse, error) {
	resp, err := c.hc.Get(c.base + "/v1/healthz")
	if err != nil {
		return HealthResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBatchBodyBytes))
	if err != nil {
		return HealthResponse{}, err
	}
	var h HealthResponse
	if err := json.Unmarshal(data, &h); err != nil {
		return HealthResponse{}, err
	}
	if resp.StatusCode == http.StatusOK {
		return h, nil
	}
	code := CodeInternal
	if h.Draining {
		code = CodeShuttingDown
	}
	return h, &APIError{Code: code, Status: resp.StatusCode, Message: "server is " + h.Status}
}

// Sessions lists every live session on the server, across both the warm
// and durable tiers.
func (c *Client) Sessions() ([]SessionInfo, error) {
	var resp SessionsResponse
	if err := c.do(http.MethodGet, "/v1/sessions", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// DeleteSession evicts clientID's session from every tier: the warm
// engine cache and, when the server persists keys, the durable store
// (via a WAL tombstone). Deleting an unknown session returns an
// *APIError with code unknown_session.
func (c *Client) DeleteSession(clientID string) (DeleteSessionResponse, error) {
	var resp DeleteSessionResponse
	err := c.do(http.MethodDelete, "/v1/sessions/"+clientID, nil, &resp)
	return resp, err
}
