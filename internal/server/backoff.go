package server

import (
	"math/rand"
	"time"
)

// MaxBackoff caps one retry delay: past it, exponential growth only adds
// latency to a request that should instead fail over or surface its
// error.
const MaxBackoff = 30 * time.Second

// Backoff returns the jittered exponential delay before retry attempt
// (0-based): a uniform draw in [d/2, d) where d = base·2^attempt, so
// synchronized clients desynchronize instead of re-stampeding a
// recovering server. The doubling saturates at MaxBackoff instead of
// shifting into overflow, and the jitter draw is guarded against a
// degenerate (sub-2ns) base, so the helper is total: any base and any
// attempt yield a positive, bounded delay. Shared by the HTTP client
// and the routing tier.
func Backoff(base time.Duration, attempt int) time.Duration {
	if base < 2 {
		base = 2 // smallest d whose half still supports a jitter draw
	}
	d := base
	for ; attempt > 0 && d < MaxBackoff; attempt-- {
		d *= 2
	}
	if d > MaxBackoff {
		d = MaxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}
