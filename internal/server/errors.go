package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Machine-readable error codes: the `code` field of every non-2xx API
// response. Clients dispatch on these instead of string-matching the
// human-readable `error` message, which remains free to change.
const (
	// CodeBadRequest is any malformed or invalid request (the default).
	CodeBadRequest = "bad_request"
	// CodeUnknownSession means no session (warm or persisted) exists for
	// the client ID: register an eval key first.
	CodeUnknownSession = "unknown_session"
	// CodeSessionEvicted means the session was dropped by the warm-tier
	// LRU and no durable store holds its key: the client must re-upload.
	CodeSessionEvicted = "session_evicted"
	// CodeTooLarge means the request exceeded a batch or body bound.
	CodeTooLarge = "too_large"
	// CodeOverloaded means the session's backpressure queue stayed
	// saturated past the queue timeout. Retryable.
	CodeOverloaded = "overloaded"
	// CodeShuttingDown means the server is draining for shutdown and
	// refuses new work. Retryable (against the restarted server).
	CodeShuttingDown = "shutting_down"
	// CodeInternal means a server-side failure (e.g. persistence I/O),
	// not a problem with the request.
	CodeInternal = "internal"
)

// Sentinel errors of the lifecycle and persistence paths; the batch and
// session sentinels live in server.go.
var (
	// ErrSessionEvicted reports a session lost to LRU eviction with no
	// durable store to restore it from.
	ErrSessionEvicted = errors.New("server: session evicted: register the eval key again")
	// ErrOverloaded reports a session whose backpressure queue stayed
	// full past the queue timeout.
	ErrOverloaded = errors.New("server: session overloaded: retry with backoff")
	// ErrShuttingDown reports a draining server refusing new work.
	ErrShuttingDown = errors.New("server: shutting down: retry against the restarted server")
)

// APIError is the typed client-side form of a non-2xx API response:
// the machine-readable code, the HTTP status, and the human-readable
// message. It is what Client methods return for service-level failures,
// so callers switch on Code (or call Temporary) instead of parsing
// message strings.
type APIError struct {
	// Code is one of the Code* constants (or whatever a newer server
	// sent; unknown codes should be treated like CodeBadRequest).
	Code string
	// Status is the HTTP status code of the response.
	Status int
	// Message is the human-readable error text.
	Message string
	// RetryAfter is the response's Retry-After delay, if the server sent
	// one (503s carry it); zero otherwise. The client uses it as the
	// floor of its jittered backoff before re-sending.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d, code %s)", e.Message, e.Status, e.Code)
}

// Temporary reports whether the failure is transient — the server asked
// the client to retry (overloaded, or draining for a restart).
func (e *APIError) Temporary() bool {
	return e.Code == CodeOverloaded || e.Code == CodeShuttingDown
}

// errorStatus maps a service error to its HTTP status and machine code.
func errorStatus(err error) (int, string) {
	var tooBig *http.MaxBytesError
	var api *APIError
	switch {
	case errors.As(err, &api):
		return api.Status, api.Code
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound, CodeUnknownSession
	case errors.Is(err, ErrSessionEvicted):
		return http.StatusGone, CodeSessionEvicted
	case errors.Is(err, ErrBatchTooLarge), errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, CodeTooLarge
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable, CodeOverloaded
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, CodeShuttingDown
	case errors.Is(err, errStoreFailure):
		return http.StatusInternalServerError, CodeInternal
	}
	return http.StatusBadRequest, CodeBadRequest
}

// errStoreFailure marks persistence-layer failures so they surface as
// HTTP 500/internal instead of 400/bad_request: the request was fine,
// the server's disk was not.
var errStoreFailure = errors.New("server: session store failure")
