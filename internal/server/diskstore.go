package server

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/tfhe"
	"repro/internal/wire"
)

// DiskStore is the durable SessionStore: evaluation keys as wire-codec
// files on disk (one .key blob plus a small .params sidecar per session,
// both in the internal/wire encoding) fronted by the checksummed
// write-ahead log of wal.go. Durability discipline, in commit order:
//
//  1. the key and params files are written to temp names, fsynced, and
//     renamed into keys/ (a crash here leaves only orphan files);
//  2. the keys/ directory is fsynced so the renames are durable;
//  3. the WAL record referencing the key file is appended and fsynced —
//     only now is the registration committed.
//
// Open replays the WAL: the longest valid record prefix is the committed
// state, a torn or corrupt tail is truncated away, records pointing at
// missing key files are dropped, and orphan key files not referenced by
// any live record are garbage collected. Get re-verifies the blob's
// recorded CRC-32 so silent file corruption surfaces as an error instead
// of a poisoned session.
type DiskStore struct {
	dir string

	mu      sync.Mutex
	wal     *os.File
	seq     uint32
	entries map[string]diskEntry
	closed  bool
}

// diskEntry is the in-memory manifest row for one persisted session.
type diskEntry struct {
	file     string // key blob file name, relative to keys/
	params   string
	keyBytes int64
	keyCRC   uint32
}

// Store file names.
const (
	walFileName = "wal"
	keysDirName = "keys"
)

// OpenDiskStore opens (creating if needed) a durable session store
// rooted at dir, replaying and repairing its write-ahead log.
func OpenDiskStore(dir string) (*DiskStore, error) {
	keysDir := filepath.Join(dir, keysDirName)
	if err := os.MkdirAll(keysDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: open disk store: %w", err)
	}
	walPath := filepath.Join(dir, walFileName)

	data, err := os.ReadFile(walPath)
	switch {
	case os.IsNotExist(err):
		if err := writeFileSync(walPath, appendWALHeader(nil)); err != nil {
			return nil, fmt.Errorf("server: init WAL: %w", err)
		}
		data = appendWALHeader(nil)
	case err != nil:
		return nil, fmt.Errorf("server: read WAL: %w", err)
	}

	recs, valid, err := replayWAL(data)
	if err != nil {
		return nil, err
	}
	if valid < int64(len(data)) {
		// Torn or corrupt tail: truncate to the committed prefix so the
		// next append starts on a record boundary.
		if err := os.Truncate(walPath, valid); err != nil {
			return nil, fmt.Errorf("server: truncate torn WAL tail: %w", err)
		}
	}

	s := &DiskStore{dir: dir, entries: make(map[string]diskEntry)}
	for _, rec := range recs {
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		switch rec.Op {
		case walOpRegister:
			s.entries[rec.ClientID] = diskEntry{
				file: rec.File, params: rec.Params,
				keyBytes: rec.KeyBytes, keyCRC: rec.KeyCRC,
			}
		case walOpDelete:
			delete(s.entries, rec.ClientID)
		}
	}
	// Drop manifest rows whose key file vanished (a delete that crashed
	// after removing the file, or external damage): better an explicit
	// re-register than a session that errors on every restore.
	for id, e := range s.entries {
		if _, err := os.Stat(filepath.Join(keysDir, e.file)); err != nil {
			delete(s.entries, id)
		}
	}
	s.gcOrphans(keysDir)

	wal, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open WAL for append: %w", err)
	}
	s.wal = wal
	return s, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// gcOrphans removes key/params files not referenced by any live manifest
// row — leftovers of replaced registrations, crashed puts, or deletes.
func (s *DiskStore) gcOrphans(keysDir string) {
	live := make(map[string]bool, 2*len(s.entries))
	for _, e := range s.entries {
		live[e.file] = true
		live[paramsFileFor(e.file)] = true
	}
	names, err := os.ReadDir(keysDir)
	if err != nil {
		return
	}
	for _, de := range names {
		if !live[de.Name()] {
			_ = os.Remove(filepath.Join(keysDir, de.Name()))
		}
	}
}

// keyFileFor returns the key blob file name for a sequence number.
func keyFileFor(seq uint32) string { return fmt.Sprintf("s%08d.key", seq) }

// paramsFileFor returns the params sidecar name for a key file name.
func paramsFileFor(keyFile string) string {
	return keyFile[:len(keyFile)-len(".key")] + ".params"
}

// Put implements SessionStore: key file first, WAL record second, so a
// crash between the two leaves an orphan file (collected on next open),
// never a committed record pointing at missing bytes.
func (s *DiskStore) Put(clientID string, p tfhe.Params, blob []byte) error {
	paramsBlob, err := wire.MarshalParams(p)
	if err != nil {
		return fmt.Errorf("server: persist params for %q: %w", clientID, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	s.seq++
	rec := walRecord{
		Op: walOpRegister, Seq: s.seq, ClientID: clientID,
		File: keyFileFor(s.seq), KeyBytes: int64(len(blob)),
		KeyCRC: crc32.ChecksumIEEE(blob), Params: p.Name,
	}
	framed, err := appendWALRecord(nil, rec)
	if err != nil {
		return err
	}

	keysDir := filepath.Join(s.dir, keysDirName)
	if err := writeFileSync(filepath.Join(keysDir, rec.File), blob); err != nil {
		return fmt.Errorf("server: persist key for %q: %w", clientID, err)
	}
	if err := writeFileSync(filepath.Join(keysDir, paramsFileFor(rec.File)), paramsBlob); err != nil {
		return fmt.Errorf("server: persist params for %q: %w", clientID, err)
	}
	if err := syncDir(keysDir); err != nil {
		return fmt.Errorf("server: sync key dir: %w", err)
	}
	if err := s.appendSync(framed); err != nil {
		return err
	}

	if old, ok := s.entries[clientID]; ok && old.file != rec.File {
		// The replacement is committed; the old files are now orphans.
		_ = os.Remove(filepath.Join(keysDir, old.file))
		_ = os.Remove(filepath.Join(keysDir, paramsFileFor(old.file)))
	}
	s.entries[clientID] = diskEntry{file: rec.File, params: rec.Params, keyBytes: rec.KeyBytes, keyCRC: rec.KeyCRC}
	return nil
}

// appendSync appends framed bytes to the WAL and fsyncs. Called with mu
// held.
func (s *DiskStore) appendSync(framed []byte) error {
	if _, err := s.wal.Write(framed); err != nil {
		return fmt.Errorf("server: append WAL: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("server: sync WAL: %w", err)
	}
	return nil
}

// Get implements SessionStore, verifying the blob against the CRC-32 the
// WAL committed for it.
func (s *DiskStore) Get(clientID string) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStoreClosed
	}
	e, ok := s.entries[clientID]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotPersisted
	}
	blob, err := os.ReadFile(filepath.Join(s.dir, keysDirName, e.file))
	if err != nil {
		return nil, fmt.Errorf("server: read persisted key for %q: %w", clientID, err)
	}
	if int64(len(blob)) != e.keyBytes || crc32.ChecksumIEEE(blob) != e.keyCRC {
		return nil, fmt.Errorf("server: persisted key for %q fails its checksum (%d bytes)", clientID, len(blob))
	}
	return blob, nil
}

// Delete implements SessionStore: the tombstone record commits the
// delete; file removal after it is best-effort cleanup (a crash between
// leaves orphans for the next open's GC).
func (s *DiskStore) Delete(clientID string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrStoreClosed
	}
	e, ok := s.entries[clientID]
	if !ok {
		return false, nil
	}
	s.seq++
	framed, err := appendWALRecord(nil, walRecord{Op: walOpDelete, Seq: s.seq, ClientID: clientID})
	if err != nil {
		return false, err
	}
	if err := s.appendSync(framed); err != nil {
		return false, err
	}
	delete(s.entries, clientID)
	keysDir := filepath.Join(s.dir, keysDirName)
	_ = os.Remove(filepath.Join(keysDir, e.file))
	_ = os.Remove(filepath.Join(keysDir, paramsFileFor(e.file)))
	return true, nil
}

// List implements SessionStore.
func (s *DiskStore) List() []StoreEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := make([]StoreEntry, 0, len(s.entries))
	for id, e := range s.entries {
		entries = append(entries, StoreEntry{ClientID: id, Params: e.params, KeyBytes: e.keyBytes})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ClientID < entries[j].ClientID })
	return entries
}

// Close implements SessionStore: a final fsync, then the WAL handle is
// released. The directory can be re-opened by a later OpenDiskStore.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("server: sync WAL on close: %w", err)
	}
	return s.wal.Close()
}

// writeFileSync writes data to path atomically: temp file in the same
// directory, fsync, rename. Readers never observe a half-written file.
func writeFileSync(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// syncDir fsyncs a directory so completed renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
