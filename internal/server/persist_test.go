package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/tfhe"
	"repro/internal/wire"
)

// TestRestoreBitwiseAcrossRestart is the durability contract end to end:
// a session registered against one server instance, evaluated, drained
// to disk, and served again by a fresh instance over the same directory
// must produce bitwise-identical gate results without a key re-upload.
func TestRestoreBitwiseAcrossRestart(t *testing.T) {
	sk, ek := testKeys(t, 1)
	dir := t.TempDir()

	srvA, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := srvA.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}
	a := encryptBools(sk, 1, []bool{true, false, true, true})
	b := encryptBools(sk, 2, []bool{true, true, false, true})
	pre, err := srvA.GateBatch("alice", engine.NAND, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := srvA.Drain(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same directory knows nothing
	// warm; the first request restores from disk.
	srvB, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Drain()
	post, err := srvB.GateBatch("alice", engine.NAND, a, b)
	if err != nil {
		t.Fatalf("restored session failed: %v", err)
	}
	for i := range pre {
		if !tfhe.EqualLWE(pre[i], post[i]) {
			t.Fatalf("output %d differs across restart", i)
		}
	}
	if srvB.Restores() != 1 {
		t.Errorf("restores = %d, want 1", srvB.Restores())
	}
	// And the restored results still decrypt correctly.
	for i, ct := range post {
		want := !(([]bool{true, false, true, true})[i] && ([]bool{true, true, false, true})[i])
		if got := sk.DecryptBool(ct); got != want {
			t.Errorf("restored NAND[%d] = %v, want %v", i, got, want)
		}
	}
}

// TestEvictionTransparentWithStore proves LRU eviction becomes invisible
// when a store is present: the evicted session restores on demand
// instead of erroring.
func TestEvictionTransparentWithStore(t *testing.T) {
	sk1, ek1 := testKeys(t, 1)
	_, ek2 := testKeys(t, 2)
	srv := New(Config{MaxSessions: 1, Store: NewMemStore()})

	if err := srv.RegisterKey("a", ek1); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterKey("b", ek2); err != nil { // evicts "a"
		t.Fatal(err)
	}
	if srv.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", srv.Evictions())
	}
	out, err := srv.GateBatch("a", engine.NOT, encryptBools(sk1, 1, []bool{true}), nil)
	if err != nil {
		t.Fatalf("evicted-but-persisted session: %v, want transparent restore", err)
	}
	if got := sk1.DecryptBool(out[0]); got != false {
		t.Errorf("NOT(true) = %v after restore", got)
	}
	if srv.Restores() != 1 {
		t.Errorf("restores = %d, want 1", srv.Restores())
	}
	// Unknown IDs still fail even with a store.
	if _, err := srv.GateBatch("ghost", engine.NOT, encryptBools(sk1, 1, []bool{true}), nil); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown id: %v, want ErrUnknownSession", err)
	}
}

// TestConcurrentRestoreSingleflight proves concurrent warm misses for
// one ID share a single store restore.
func TestConcurrentRestoreSingleflight(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{MaxSessions: 1, Store: NewMemStore()})
	if err := srv.RegisterKey("a", ek); err != nil {
		t.Fatal(err)
	}
	_, ek2 := testKeys(t, 2)
	if err := srv.RegisterKey("b", ek2); err != nil { // evict "a"
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = srv.GateBatch("a", engine.NOT, encryptBools(sk, int64(i+1), []bool{true}), nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if srv.Restores() != 1 {
		t.Errorf("restores = %d, want exactly 1 shared restore", srv.Restores())
	}
}

// TestDeleteSession exercises explicit eviction across both tiers.
func TestDeleteSession(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{Store: NewMemStore()})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}
	warm, persisted, err := srv.DeleteSession("alice")
	if err != nil || !warm || !persisted {
		t.Fatalf("DeleteSession = %v, %v, %v; want true, true, nil", warm, persisted, err)
	}
	if _, err := srv.GateBatch("alice", engine.NOT, encryptBools(sk, 1, []bool{true}), nil); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("deleted session: %v, want ErrUnknownSession", err)
	}
	if _, _, err := srv.DeleteSession("alice"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("double delete: %v, want ErrUnknownSession", err)
	}
	// Deleting an evicted-without-store session clears the evicted mark.
	srv2 := New(Config{MaxSessions: 1})
	if err := srv2.RegisterKey("a", ek); err != nil {
		t.Fatal(err)
	}
	_, ek2 := testKeys(t, 2)
	if err := srv2.RegisterKey("b", ek2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv2.DeleteSession("a"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("delete of evicted session: %v, want ErrUnknownSession", err)
	}
	if _, err := srv2.GateBatch("a", engine.NOT, encryptBools(sk, 1, []bool{true}), nil); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("after delete, error = %v, want ErrUnknownSession (not evicted)", err)
	}
}

// TestSessionList covers the two-tier listing: warm MRU-first, then
// store-only rows sorted by ID, with exact wire key sizes.
func TestSessionList(t *testing.T) {
	_, ek := testKeys(t, 1)
	wantBytes, ok := wire.EvalKeySize(tfhe.ParamsTest)
	srv := New(Config{MaxSessions: 1, Store: NewMemStore()})
	if err := srv.RegisterKey("zed", ek); err != nil {
		t.Fatal(err)
	}
	_, ek2 := testKeys(t, 2)
	if err := srv.RegisterKey("amy", ek2); err != nil { // evicts zed to the store
		t.Fatal(err)
	}
	list := srv.SessionList()
	if len(list) != 2 {
		t.Fatalf("SessionList = %+v, want 2 rows", list)
	}
	if list[0].ID != "amy" || !list[0].Warm || !list[0].Persisted {
		t.Errorf("row 0 = %+v, want warm+persisted amy", list[0])
	}
	if list[1].ID != "zed" || list[1].Warm || !list[1].Persisted {
		t.Errorf("row 1 = %+v, want cold persisted zed", list[1])
	}
	for i, row := range list {
		if row.Params != tfhe.ParamsTest.Name {
			t.Errorf("row %d params = %q", i, row.Params)
		}
		if ok && row.KeyBytes != wantBytes {
			t.Errorf("row %d key bytes = %d, want %d", i, row.KeyBytes, wantBytes)
		}
	}
}

// TestDrain covers graceful-shutdown semantics: draining refuses new
// work with ErrShuttingDown, completes in-flight work, closes the store,
// and is idempotent.
func TestDrain(t *testing.T) {
	sk, ek := testKeys(t, 1)
	store := NewMemStore()
	srv := New(Config{Store: store})
	if err := srv.RegisterKey("alice", ek); err != nil {
		t.Fatal(err)
	}

	// In-flight work started before the drain must complete.
	cts := encryptBools(sk, 1, make([]bool, 64))
	type result struct {
		out []tfhe.LWECiphertext
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		out, err := srv.GateBatch("alice", engine.NOT, cts, nil)
		resCh <- result{out, err}
	}()
	time.Sleep(5 * time.Millisecond) // give the batch a chance to enter

	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if !srv.Draining() {
		t.Error("Draining() = false after Drain")
	}
	res := <-resCh
	if res.err != nil {
		t.Errorf("in-flight batch failed during drain: %v", res.err)
	} else if len(res.out) != 64 {
		t.Errorf("in-flight batch returned %d outputs, want 64", len(res.out))
	}

	// Every entry point now refuses with ErrShuttingDown.
	if err := srv.RegisterKey("bob", ek); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("RegisterKey while draining: %v", err)
	}
	if _, err := srv.GateBatch("alice", engine.NOT, cts[:1], nil); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("GateBatch while draining: %v", err)
	}
	if _, _, err := srv.DeleteSession("alice"); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("DeleteSession while draining: %v", err)
	}
	// The store was closed by the drain.
	if err := store.Put("x", tfhe.ParamsTest, nil); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("store after drain: %v, want ErrStoreClosed", err)
	}
	// Idempotent.
	if err := srv.Drain(); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestOverloaded proves a saturated session queue times out into
// ErrOverloaded instead of blocking forever.
func TestOverloaded(t *testing.T) {
	_, ek := testKeys(t, 1)
	sess := newSession("x", ek, Config{QueueTimeout: time.Millisecond}.withDefaults())
	// Saturate the backpressure bound directly — deterministic, no racing
	// goroutines needed.
	for i := 0; i < cap(sess.slots); i++ {
		sess.slots <- struct{}{}
	}
	if err := sess.acquireSlot(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquireSlot on a full queue: %v, want ErrOverloaded", err)
	}
	if sess.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", sess.rejected.Load())
	}
	// Freeing a slot unblocks the next acquire.
	<-sess.slots
	if err := sess.acquireSlot(); err != nil {
		t.Errorf("acquireSlot with room: %v", err)
	}
}

// TestErrorStatusMapping pins every service error to its HTTP status and
// machine-readable code.
func TestErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{ErrUnknownSession, http.StatusNotFound, CodeUnknownSession},
		{ErrSessionEvicted, http.StatusGone, CodeSessionEvicted},
		{ErrBatchTooLarge, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{fmt.Errorf("wrap: %w", ErrBatchTooLarge), http.StatusRequestEntityTooLarge, CodeTooLarge},
		{ErrOverloaded, http.StatusServiceUnavailable, CodeOverloaded},
		{ErrShuttingDown, http.StatusServiceUnavailable, CodeShuttingDown},
		{fmt.Errorf("%w: disk on fire", errStoreFailure), http.StatusInternalServerError, CodeInternal},
		{ErrEmptyClientID, http.StatusBadRequest, CodeBadRequest},
		{errors.New("anything else"), http.StatusBadRequest, CodeBadRequest},
		{&http.MaxBytesError{Limit: 5}, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{&APIError{Code: CodeOverloaded, Status: 503}, http.StatusServiceUnavailable, CodeOverloaded},
	}
	for _, c := range cases {
		status, code := errorStatus(c.err)
		if status != c.status || code != c.code {
			t.Errorf("errorStatus(%v) = %d/%s, want %d/%s", c.err, status, code, c.status, c.code)
		}
	}
}

// TestHTTPErrorCodes proves every non-2xx response carries the
// machine-readable code, and the evicted/unknown split surfaces over
// HTTP.
func TestHTTPErrorCodes(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{MaxSessions: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := srv.RegisterKey("a", ek); err != nil {
		t.Fatal(err)
	}
	_, ek2 := testKeys(t, 2)
	if err := srv.RegisterKey("b", ek2); err != nil { // evict "a"
		t.Fatal(err)
	}

	gate := func(id string) (int, ErrorResponse) {
		body := fmt.Sprintf(`{"client_id":%q,"op":"NAND","a":[],"b":[]}`, id)
		resp, err := http.Post(ts.URL+"/v1/gate-batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er
	}

	// Empty batches short-circuit before session lookup only after the
	// session resolves; use a one-ciphertext batch for the evicted case.
	ct := encodeCiphertexts(encryptBools(sk, 1, []bool{true}))
	evictedBody, _ := json.Marshal(GateBatchRequest{ClientID: "a", Op: "NOT", A: ct})
	resp, err := http.Post(ts.URL+"/v1/gate-batch", "application/json", bytes.NewReader(evictedBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone || er.Code != CodeSessionEvicted {
		t.Errorf("evicted: %d/%s, want 410/%s", resp.StatusCode, er.Code, CodeSessionEvicted)
	}
	if er.Error == "" {
		t.Error("evicted response lost its human-readable error")
	}

	if status, er := gate("ghost"); status != http.StatusNotFound || er.Code != CodeUnknownSession {
		t.Errorf("unknown: %d/%s, want 404/%s", status, er.Code, CodeUnknownSession)
	}
	// Malformed requests carry bad_request.
	resp2, err := http.Post(ts.URL+"/v1/gate-batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var er2 ErrorResponse
	_ = json.NewDecoder(resp2.Body).Decode(&er2)
	if resp2.StatusCode != http.StatusBadRequest || er2.Code != CodeBadRequest {
		t.Errorf("bad JSON: %d/%s, want 400/%s", resp2.StatusCode, er2.Code, CodeBadRequest)
	}
}

// TestHTTPLifecycle drives healthz, the session listing, and delete over
// real HTTP through the typed client.
func TestHTTPLifecycle(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{Store: NewMemStore()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, "alice")

	h, err := cl.Healthz()
	if err != nil || h.Status != "ok" || h.Draining {
		t.Fatalf("Healthz = %+v, %v; want ok", h, err)
	}
	if err := cl.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}
	infos, err := cl.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "alice" || !infos[0].Warm || !infos[0].Persisted || infos[0].KeyBytes <= 0 {
		t.Errorf("Sessions = %+v, want one warm persisted alice with a key size", infos)
	}

	del, err := cl.DeleteSession("alice")
	if err != nil || !del.Warm || !del.Persisted {
		t.Fatalf("DeleteSession = %+v, %v", del, err)
	}
	if _, err := cl.GateBatch(engine.NOT, encryptBools(sk, 1, []bool{true}), nil); !isAPICode(err, CodeUnknownSession) {
		t.Errorf("gate after delete: %v, want APIError unknown_session", err)
	}
	if _, err := cl.DeleteSession("alice"); !isAPICode(err, CodeUnknownSession) {
		t.Errorf("double delete: %v, want APIError unknown_session", err)
	}

	// Drain flips healthz to 503 shutting_down.
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Healthz()
	var api *APIError
	if !errors.As(err, &api) || api.Status != http.StatusServiceUnavailable || api.Code != CodeShuttingDown {
		t.Errorf("Healthz while draining: %v, want 503 shutting_down", err)
	}
	if !api.Temporary() {
		t.Error("shutting_down not Temporary()")
	}
}

// TestClientRetry proves temporary refusals are retried with backoff and
// permanent errors are not.
func TestClientRetry(t *testing.T) {
	var hits int
	var mu sync.Mutex
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		n := hits
		mu.Unlock()
		if n <= 2 {
			writeError(w, ErrOverloaded)
			return
		}
		writeJSON(w, http.StatusOK, Stats{MaxSessions: 7})
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	cl := Dial(ts.URL, "x")
	cl.SetRetry(3, time.Millisecond)
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats with retries: %v", err)
	}
	if st.MaxSessions != 7 {
		t.Errorf("stats = %+v", st)
	}
	mu.Lock()
	if hits != 3 {
		t.Errorf("hits = %d, want 3 (two 503s + success)", hits)
	}
	mu.Unlock()

	// Exhausted retries surface the typed temporary error.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, ErrShuttingDown)
	}))
	defer always.Close()
	cl2 := Dial(always.URL, "x")
	cl2.SetRetry(2, time.Millisecond)
	_, err = cl2.Stats()
	var api *APIError
	if !errors.As(err, &api) || !api.Temporary() || api.Code != CodeShuttingDown {
		t.Errorf("exhausted retries: %v, want temporary shutting_down APIError", err)
	}

	// Permanent errors do not retry.
	var permHits int
	perm := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		permHits++
		writeError(w, ErrUnknownSession)
	}))
	defer perm.Close()
	cl3 := Dial(perm.URL, "x")
	cl3.SetRetry(3, time.Millisecond)
	if _, err := cl3.Stats(); !isAPICode(err, CodeUnknownSession) {
		t.Errorf("permanent error: %v", err)
	}
	if permHits != 1 {
		t.Errorf("permanent error hit the server %d times, want 1", permHits)
	}
}

// isAPICode reports whether err is an *APIError with the given code.
func isAPICode(err error, code string) bool {
	var api *APIError
	return errors.As(err, &api) && api.Code == code
}
