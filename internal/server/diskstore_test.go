package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tfhe"
)

// storeBlob is a small stand-in key blob (the store treats blobs as
// opaque bytes; only Put's params argument is interpreted).
func storeBlob(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// TestDiskStoreRoundTrip pins put/get/list/delete on a fresh store.
func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	blob := storeBlob(1, 100)
	if err := s.Put("alice", tfhe.ParamsTest, blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Error("Get returned different bytes than Put stored")
	}
	if _, err := s.Get("bob"); !errors.Is(err, ErrNotPersisted) {
		t.Errorf("missing key: %v, want ErrNotPersisted", err)
	}

	list := s.List()
	if len(list) != 1 || list[0].ClientID != "alice" || list[0].KeyBytes != 100 || list[0].Params != tfhe.ParamsTest.Name {
		t.Errorf("List = %+v", list)
	}

	ok, err := s.Delete("alice")
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v; want true, nil", ok, err)
	}
	ok, err = s.Delete("alice")
	if err != nil || ok {
		t.Fatalf("second Delete = %v, %v; want false, nil", ok, err)
	}
	if _, err := s.Get("alice"); !errors.Is(err, ErrNotPersisted) {
		t.Errorf("deleted key: %v, want ErrNotPersisted", err)
	}
}

// TestDiskStoreReopen proves the full state machine survives close +
// reopen: registers, a replacement, and a tombstone.
func TestDiskStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", tfhe.ParamsTest, storeBlob(1, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bob", tfhe.ParamsTest, storeBlob(2, 60)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", tfhe.ParamsTest, storeBlob(3, 70)); err != nil { // replace
		t.Fatal(err)
	}
	if _, err := s.Delete("bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Put("x", tfhe.ParamsTest, nil); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Put after Close: %v, want ErrStoreClosed", err)
	}

	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, storeBlob(3, 70)) {
		t.Error("reopened store returned stale alice blob")
	}
	if _, err := r.Get("bob"); !errors.Is(err, ErrNotPersisted) {
		t.Errorf("tombstoned bob after reopen: %v, want ErrNotPersisted", err)
	}
	// A replacement and a delete leave exactly one live key (+ params
	// sidecar) after orphan GC.
	names, err := os.ReadDir(filepath.Join(dir, keysDirName))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		var ls []string
		for _, de := range names {
			ls = append(ls, de.Name())
		}
		t.Errorf("keys/ after reopen has %v, want exactly one .key + one .params", ls)
	}
}

// TestDiskStoreTornWALTail simulates a crash mid-append: extra garbage
// and a half-written record after the last commit must be truncated on
// open, and every fully committed session must survive.
func TestDiskStoreTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", tfhe.ParamsTest, storeBlob(1, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bob", tfhe.ParamsTest, storeBlob(2, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFileName)
	clean, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Torn tail: the first half of what would have been a third record.
	torn := append(bytes.Clone(clean), 0x11, 0x22, 0x33, 0x44, 0x30, 0x00)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"alice", "bob"} {
		if _, err := r.Get(id); err != nil {
			t.Errorf("session %s lost to a torn tail: %v", id, err)
		}
	}
	// The tail must be gone from disk, so the next append lands on a
	// record boundary.
	repaired, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, clean) {
		t.Errorf("WAL after repair is %d bytes, want the clean %d", len(repaired), len(clean))
	}
	// And the store must keep working after the repair.
	if err := r.Put("carol", tfhe.ParamsTest, storeBlob(3, 40)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.Get("carol"); err != nil {
		t.Errorf("post-repair registration lost: %v", err)
	}
}

// TestDiskStoreCorruptKeyFile proves Get detects silent key-file
// corruption via the WAL's recorded CRC instead of restoring a poisoned
// session.
func TestDiskStoreCorruptKeyFile(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("alice", tfhe.ParamsTest, storeBlob(1, 80)); err != nil {
		t.Fatal(err)
	}
	keysDir := filepath.Join(dir, keysDirName)
	names, err := os.ReadDir(keysDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		if filepath.Ext(de.Name()) != ".key" {
			continue
		}
		path := filepath.Join(keysDir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[10] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("alice"); err == nil {
		t.Error("Get returned a corrupted blob without error")
	}
}

// TestDiskStoreMissingKeyFile proves a committed record whose key file
// vanished is dropped on open (re-register beats restore-that-errors).
func TestDiskStoreMissingKeyFile(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", tfhe.ParamsTest, storeBlob(1, 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	keysDir := filepath.Join(dir, keysDirName)
	names, _ := os.ReadDir(keysDir)
	for _, de := range names {
		if filepath.Ext(de.Name()) == ".key" {
			os.Remove(filepath.Join(keysDir, de.Name()))
		}
	}
	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get("alice"); !errors.Is(err, ErrNotPersisted) {
		t.Errorf("Get with missing key file: %v, want ErrNotPersisted", err)
	}
	if got := r.List(); len(got) != 0 {
		t.Errorf("List = %+v, want empty", got)
	}
}

// TestDiskStoreOrphanGC proves unreferenced files in keys/ are collected
// on open (crashed puts leave exactly such orphans).
func TestDiskStoreOrphanGC(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alice", tfhe.ParamsTest, storeBlob(1, 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	keysDir := filepath.Join(dir, keysDirName)
	orphan := filepath.Join(keysDir, "s99999999.key")
	if err := os.WriteFile(orphan, []byte("crashed put"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan key file survived open")
	}
	if _, err := r.Get("alice"); err != nil {
		t.Errorf("live session lost to GC: %v", err)
	}
}

// TestMemStoreConformance runs the same basic contract over MemStore,
// the reference implementation.
func TestMemStoreConformance(t *testing.T) {
	m := NewMemStore()
	if err := m.Put("alice", tfhe.ParamsTest, storeBlob(1, 10)); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("alice")
	if err != nil || !bytes.Equal(got, storeBlob(1, 10)) {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := m.Get("bob"); !errors.Is(err, ErrNotPersisted) {
		t.Errorf("missing: %v, want ErrNotPersisted", err)
	}
	if list := m.List(); len(list) != 1 || list[0].KeyBytes != 10 {
		t.Errorf("List = %+v", list)
	}
	if ok, _ := m.Delete("alice"); !ok {
		t.Error("Delete existing = false")
	}
	if ok, _ := m.Delete("alice"); ok {
		t.Error("Delete absent = true")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("x", tfhe.ParamsTest, nil); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Put after Close: %v, want ErrStoreClosed", err)
	}
}
