package server

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/workload"
)

// The encrypted-inference service scenario: a client registers its eval
// key, uploads encrypted feature vectors, and gets encrypted class
// scores back, without the server ever seeing a plaintext. The model
// (workload.BuildInfer) is compiled server-side and executed through the
// session's group-commit path, so concurrent inference requests — and
// any other traffic whose dispatch keys match — coalesce into shared
// engine streams, level by level.

// InferBatch runs the built-in cellCNN-style inference model over a
// batch of encrypted feature vectors for clientID's session. features is
// vector-major: workload.InferFeatures ciphertexts per inference, each
// an InferSpace-encoded digit. The reply is vector-major too:
// workload.InferClasses encrypted class scores per inference, which
// decode to exactly workload.InferReference's cleartext scores.
// optimize first rewrites the model through the scheduler's optimizer
// pass pipeline (decode-identical, not bitwise-identical outputs).
func (s *Server) InferBatch(clientID string, features []tfhe.LWECiphertext, optimize bool) ([]tfhe.LWECiphertext, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	circ, schedule, err := sess.validateInfer(features, s.cfg, optimize)
	if err != nil {
		return nil, err
	}
	return sched.Execute(circ, schedule, features, sessionExecutor{sess})
}

// validateInfer bounds an inference request and compiles the model for
// its batch size. The circuit is server-built from trusted code, so
// unlike validateCircuit there is no spec re-validation — only the
// request-shaped bounds (batch size, ciphertext dimensions) and the
// parameter-set fit of the model's multi-value stage.
func (s *session) validateInfer(features []tfhe.LWECiphertext, cfg Config, optimize bool) (*sched.Circuit, *sched.Schedule, error) {
	fail := func(err error) (*sched.Circuit, *sched.Schedule, error) {
		s.rejected.Add(1)
		return nil, nil, err
	}
	if len(features) == 0 || len(features)%workload.InferFeatures != 0 {
		return fail(fmt.Errorf("server: inference takes a non-empty multiple of %d feature ciphertexts, got %d",
			workload.InferFeatures, len(features)))
	}
	if len(features) > cfg.MaxBatch {
		return fail(fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(features), cfg.MaxBatch))
	}
	if err := s.params.ValidateMultiLUT(workload.InferPoolSpace, workload.InferClasses); err != nil {
		return fail(fmt.Errorf("server: inference model does not fit parameter set %s: %w", s.params.Name, err))
	}
	if err := s.checkDims(features); err != nil {
		return fail(err)
	}
	circ, err := workload.BuildInferBatch(len(features) / workload.InferFeatures)
	if err != nil {
		return fail(err)
	}
	scfg := sched.Config{Mode: sched.StreamOnly}
	if optimize {
		scfg.Opt = sched.OptAll()
		scfg.Opt.MultiValueBudget = s.params.N
	}
	schedule, err := sched.Compile(circ, scfg)
	if err != nil {
		return fail(err)
	}
	return circ, schedule, nil
}
