package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

// session owns one client's evaluation keys, streaming engine, and
// metrics. In-flight requests hold a *session directly, so an LRU-evicted
// session finishes its outstanding work before being garbage collected;
// only new lookups see the eviction.
type session struct {
	id     string
	params tfhe.Params
	eng    *engine.StreamingEngine
	elem   *list.Element // position in the server's LRU list

	// slots is the backpressure bound: one token per queued or in-flight
	// request. Acquiring blocks when the session is saturated, for at
	// most queueTimeout (negative: forever) before ErrOverloaded.
	slots        chan struct{}
	queueTimeout time.Duration

	// groups holds the open coalescing group per compatibility key. A
	// group accumulates requests while a leader waits for the engine; see
	// submit.
	mu          sync.Mutex
	groups      map[string]*group
	execMu      sync.Mutex // serializes engine streams; the coalescing window
	maxCoalesce int

	requests  atomic.Int64
	items     atomic.Int64
	streams   atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64

	// countersMu guards counters, the engine op-counter snapshot taken
	// after each completed stream. Stats reads this cache instead of
	// calling eng.Counters(), which would block behind the engine mutex
	// for the full duration of an in-flight stream — a metrics endpoint
	// must not hang under exactly the load it is meant to observe.
	countersMu sync.Mutex
	counters   tfhe.OpCounters
}

// newSession builds a session and its private streaming engine.
func newSession(id string, ek tfhe.EvaluationKeys, cfg Config) *session {
	return &session{
		id:           id,
		params:       ek.Params,
		eng:          engine.NewStreaming(ek, cfg.Stream),
		slots:        make(chan struct{}, cfg.MaxPending),
		queueTimeout: cfg.QueueTimeout,
		groups:       make(map[string]*group),
		maxCoalesce:  cfg.MaxCoalesce,
	}
}

// group is one group-commit batch: the concatenated operands of every
// request that joined, and the waiters to scatter the results back to.
type group struct {
	a, b    []tfhe.LWECiphertext
	waiters []*waiter
}

// waiter is one request's slice of a group.
type waiter struct {
	off, n int
	ch     chan groupResult
}

// groupResult is what a leader delivers to each waiter.
type groupResult struct {
	out []tfhe.LWECiphertext
	err error
}

// submit runs (a, b) through the session's engine under the coalescing
// protocol. Requests with equal keys that arrive while the engine is busy
// are merged into one stream; run receives the concatenated operands and
// must return outPerIn outputs per input, input-major (1 for gates and
// LUTs, the table count for multi-value LUTs — equal keys imply equal
// fan-out). The caller's slice of the stream output is returned in
// request order.
//
// The protocol is group-commit: the first request to open a group for a
// key is its leader. The leader queues for the engine (execMu); while it
// waits, followers append their operands to the open group. When the
// leader acquires the engine it seals the group (removing it from the
// map, so later arrivals open a fresh group behind it), runs one stream
// over the whole batch, and scatters results to every waiter.
func (s *session) submit(key string, a, b []tfhe.LWECiphertext, outPerIn int, run func(a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error)) ([]tfhe.LWECiphertext, error) {
	// Backpressure: wait (bounded) until the session has room for this
	// request. A saturated queue past the timeout means the session is
	// overloaded — refuse so the client can back off, instead of letting
	// waiters pile up without bound.
	if err := s.acquireSlot(); err != nil {
		return nil, err
	}
	defer func() { <-s.slots }()

	w := &waiter{n: len(a), ch: make(chan groupResult, 1)}
	s.mu.Lock()
	g, open := s.groups[key]
	leader := false
	if !open || len(g.a)+len(a) > s.maxCoalesce {
		// No open group (or it is full): open a new one and lead it. A
		// full group stays owned by its own leader; replacing the map
		// entry just closes it to further joiners.
		g = &group{}
		s.groups[key] = g
		leader = true
	}
	w.off = len(g.a)
	g.a = append(g.a, a...)
	g.b = append(g.b, b...)
	g.waiters = append(g.waiters, w)
	s.mu.Unlock()

	if leader {
		s.execMu.Lock()
		s.mu.Lock()
		// Seal: only remove the map entry if it is still ours — a
		// follower may have already replaced a full group.
		if s.groups[key] == g {
			delete(s.groups, key)
		}
		ga, gb, waiters := g.a, g.b, g.waiters
		s.mu.Unlock()

		out, err := run(ga, gb)
		// Snapshot the engine counters while still holding execMu: every
		// engine call goes through submit, so the engine is idle here and
		// Counters() cannot block.
		snap := s.eng.Counters()
		s.countersMu.Lock()
		s.counters = snap
		s.countersMu.Unlock()
		s.execMu.Unlock()

		s.streams.Add(1)
		if len(waiters) > 1 {
			s.coalesced.Add(int64(len(waiters)))
		}
		if err == nil && len(out) != len(ga)*outPerIn {
			err = fmt.Errorf("server: engine returned %d outputs for %d inputs (want %d per input)", len(out), len(ga), outPerIn)
		}
		for _, wt := range waiters {
			if err != nil {
				wt.ch <- groupResult{err: err}
				continue
			}
			lo, hi := wt.off*outPerIn, (wt.off+wt.n)*outPerIn
			wt.ch <- groupResult{out: out[lo:hi:hi]}
		}
	}

	res := <-w.ch
	if res.err != nil {
		return nil, res.err
	}
	s.requests.Add(1)
	s.items.Add(int64(w.n))
	return res.out, nil
}

// acquireSlot takes one backpressure token, waiting up to the session's
// queue timeout (fast path first, so an idle session never arms a timer).
func (s *session) acquireSlot() error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.queueTimeout < 0 {
		s.slots <- struct{}{}
		return nil
	}
	t := time.NewTimer(s.queueTimeout)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-t.C:
		s.rejected.Add(1)
		return ErrOverloaded
	}
}

// validateGate rejects malformed gate requests before they can join a
// coalescing group (one bad request must never poison a shared stream).
func (s *session) validateGate(op engine.GateOp, a, b []tfhe.LWECiphertext, maxBatch int) error {
	fail := func(err error) error {
		s.rejected.Add(1)
		return err
	}
	if op < engine.NAND || op > engine.NOT {
		return fail(fmt.Errorf("server: unknown gate op %d", int(op)))
	}
	if len(a) > maxBatch {
		return fail(fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(a), maxBatch))
	}
	if op == engine.NOT {
		if b != nil {
			return fail(fmt.Errorf("server: NOT takes one operand list, got a second of length %d", len(b)))
		}
	} else if len(a) != len(b) {
		return fail(fmt.Errorf("server: operand length mismatch: %d vs %d", len(a), len(b)))
	}
	if err := s.checkDims(a); err != nil {
		return fail(err)
	}
	if op != engine.NOT {
		if err := s.checkDims(b); err != nil {
			return fail(err)
		}
	}
	return nil
}

// validateLUT rejects malformed LUT requests before they can join a
// coalescing group.
func (s *session) validateLUT(cts []tfhe.LWECiphertext, space int, table []int, maxBatch int) error {
	fail := func(err error) error {
		s.rejected.Add(1)
		return err
	}
	if len(cts) > maxBatch {
		return fail(fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(cts), maxBatch))
	}
	if space < 2 || space > s.params.N {
		return fail(fmt.Errorf("server: LUT space %d out of range [2, %d]", space, s.params.N))
	}
	if len(table) != space {
		return fail(fmt.Errorf("server: LUT table has %d entries, want %d", len(table), space))
	}
	for i, v := range table {
		if v < 0 || v >= space {
			return fail(fmt.Errorf("server: LUT entry %d = %d outside {0..%d}", i, v, space-1))
		}
	}
	if err := s.checkDims(cts); err != nil {
		return fail(err)
	}
	return nil
}

// validateMultiLUT rejects malformed multi-value LUT requests before they
// can join a coalescing group. The response carries k outputs per input,
// so the amplified total — not the input count — is held to the batch
// bound.
func (s *session) validateMultiLUT(cts []tfhe.LWECiphertext, space int, tables [][]int, maxBatch int) error {
	fail := func(err error) error {
		s.rejected.Add(1)
		return err
	}
	k := len(tables)
	if err := s.params.ValidateMultiLUT(space, k); err != nil {
		return fail(err)
	}
	if len(cts)*k > maxBatch {
		return fail(fmt.Errorf("%w: %d inputs × %d tables > %d", ErrBatchTooLarge, len(cts), k, maxBatch))
	}
	for ti, table := range tables {
		if len(table) != space {
			return fail(fmt.Errorf("server: multi-value table %d has %d entries, want %d", ti, len(table), space))
		}
		for i, v := range table {
			if v < 0 || v >= space {
				return fail(fmt.Errorf("server: multi-value table %d entry %d = %d outside {0..%d}", ti, i, v, space-1))
			}
		}
	}
	if err := s.checkDims(cts); err != nil {
		return fail(err)
	}
	return nil
}

// validateCircuit rejects malformed circuit-batch requests and compiles
// the accepted ones. The circuit is rebuilt through the sched builder (so
// references, ops, and tables are fully validated against untrusted
// input), then each compiled dispatch is bounded like a standalone batch.
// StreamOnly routing matches what the executor actually does: a session
// only has a streaming engine, and coalescing happens per dispatch key.
// optimize enables the full optimizer pass pipeline, with the
// multi-value budget bound to the session's parameter set so the
// rewrite never packs past space·k ≤ N; node and dispatch bounds apply
// to the incoming specs and to the schedule that actually executes.
func (s *session) validateCircuit(specs []sched.NodeSpec, outputs []int, inputs []tfhe.LWECiphertext, cfg Config, optimize bool) (*sched.Circuit, *sched.Schedule, error) {
	fail := func(err error) (*sched.Circuit, *sched.Schedule, error) {
		s.rejected.Add(1)
		return nil, nil, err
	}
	if len(specs) > cfg.MaxCircuitNodes {
		return fail(fmt.Errorf("%w: %d nodes > %d", ErrBatchTooLarge, len(specs), cfg.MaxCircuitNodes))
	}
	// Outputs amplify the response (each entry re-encodes a ciphertext),
	// so they are bounded like nodes — otherwise a tiny circuit listing
	// one wire millions of times would balloon server memory.
	if len(outputs) > cfg.MaxCircuitNodes {
		return fail(fmt.Errorf("%w: %d outputs > %d", ErrBatchTooLarge, len(outputs), cfg.MaxCircuitNodes))
	}
	if len(inputs) > cfg.MaxBatch {
		return fail(fmt.Errorf("%w: %d inputs > %d", ErrBatchTooLarge, len(inputs), cfg.MaxBatch))
	}
	circ, err := sched.FromSpecs(specs, outputs)
	if err != nil {
		return fail(fmt.Errorf("server: bad circuit: %w", err))
	}
	if circ.NumInputs() != len(inputs) {
		return fail(fmt.Errorf("server: circuit has %d inputs, request carries %d", circ.NumInputs(), len(inputs)))
	}
	if err := s.checkDims(inputs); err != nil {
		return fail(err)
	}
	scfg := sched.Config{Mode: sched.StreamOnly}
	if optimize {
		scfg.Opt = sched.OptAll()
		scfg.Opt.MultiValueBudget = s.params.N
	}
	schedule, err := sched.Compile(circ, scfg)
	if err != nil {
		return fail(fmt.Errorf("server: bad circuit: %w", err))
	}
	for _, lvl := range schedule.Levels() {
		for _, d := range lvl.Dispatches {
			if len(d.Nodes) > cfg.MaxBatch {
				return fail(fmt.Errorf("%w: level dispatch of %d > %d", ErrBatchTooLarge, len(d.Nodes), cfg.MaxBatch))
			}
			if d.Kind == sched.DispatchLUT && d.Space > s.params.N {
				return fail(fmt.Errorf("server: LUT space %d out of range [2, %d]", d.Space, s.params.N))
			}
			if d.Kind == sched.DispatchMultiLUT {
				if err := s.params.ValidateMultiLUT(d.Space, len(d.Tables)); err != nil {
					return fail(err)
				}
			}
		}
	}
	return circ, schedule, nil
}

// checkDims verifies every ciphertext has the session's LWE dimension.
func (s *session) checkDims(cts []tfhe.LWECiphertext) error {
	for i, ct := range cts {
		if ct.N() != s.params.SmallN {
			return fmt.Errorf("server: ciphertext %d has LWE dimension %d, want n=%d", i, ct.N(), s.params.SmallN)
		}
	}
	return nil
}

// statsSnapshot captures the session's metrics. The engine operation mix
// is the cached post-stream snapshot, so this never blocks behind an
// in-flight stream.
func (s *session) statsSnapshot() SessionStats {
	s.countersMu.Lock()
	counters := s.counters
	s.countersMu.Unlock()
	return SessionStats{
		ID:        s.id,
		Params:    s.params.Name,
		Requests:  s.requests.Load(),
		Items:     s.items.Load(),
		Streams:   s.streams.Load(),
		Coalesced: s.coalesced.Load(),
		Rejected:  s.rejected.Load(),
		Pending:   len(s.slots),
		Counters:  counters,
	}
}
