package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The write-ahead log behind DiskStore. The WAL is the source of truth
// for which sessions exist: key material lives in per-session files under
// keys/, and the log records, in order, every register (pointing at the
// key file) and every delete (a tombstone). Replaying the log from the
// top therefore reconstructs the live-session manifest exactly, and the
// append-only discipline makes a crash at any byte offset recoverable:
// the longest valid record prefix is the committed state, and whatever
// follows is a torn tail to truncate.
//
// On-disk layout:
//
//	file   := header record*
//	header := magic u32 ("SWAL") | version u32 (1)
//	record := crc u32 | len u32 | payload[len]
//	payload:= op u8 | seq u32 | idLen u16 | id
//	          (register only:) fileLen u16 | file | keyBytes u64 |
//	          keyCRC u32 | paramsLen u8 | params
//
// All integers are little-endian. crc is the IEEE CRC-32 of payload, so
// a record is accepted only when its length fits the remaining file AND
// its checksum matches — a torn or bit-flipped tail fails one of the two
// and replay stops there.

// walMagic tags a DiskStore write-ahead log ("SWAL", little-endian).
const walMagic uint32 = 0x4C415753

// walVersion is the current WAL format version; openers reject others.
const walVersion uint32 = 1

// walHeaderSize is the encoded size of the WAL file header.
const walHeaderSize = 8

// WAL record operations.
const (
	walOpRegister byte = 1 // a key file became clientID's live key
	walOpDelete   byte = 2 // clientID's key was tombstoned
)

// walMaxPayload bounds one record payload. IDs and filenames are short;
// anything bigger is corruption, not data.
const walMaxPayload = 64 << 10

// walRecord is one decoded WAL record.
type walRecord struct {
	Op       byte
	Seq      uint32
	ClientID string
	// Register-only fields: the key file (relative to the keys/ dir),
	// its size, the CRC-32 of its contents, and the parameter set name.
	File     string
	KeyBytes int64
	KeyCRC   uint32
	Params   string
}

// appendWALHeader appends the WAL file header.
func appendWALHeader(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, walMagic)
	return binary.LittleEndian.AppendUint32(dst, walVersion)
}

// appendWALRecord appends the framed, checksummed encoding of rec.
func appendWALRecord(dst []byte, rec walRecord) ([]byte, error) {
	if len(rec.ClientID) > maxStr16 || len(rec.File) > maxStr16 || len(rec.Params) > 255 {
		return nil, fmt.Errorf("server: WAL record field too long (id %d, file %d, params %d bytes)",
			len(rec.ClientID), len(rec.File), len(rec.Params))
	}
	var payload []byte
	payload = append(payload, rec.Op)
	payload = binary.LittleEndian.AppendUint32(payload, rec.Seq)
	payload = appendStr16(payload, rec.ClientID)
	if rec.Op == walOpRegister {
		payload = appendStr16(payload, rec.File)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(rec.KeyBytes))
		payload = binary.LittleEndian.AppendUint32(payload, rec.KeyCRC)
		payload = append(payload, byte(len(rec.Params)))
		payload = append(payload, rec.Params...)
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// maxStr16 bounds a u16-length-prefixed string.
const maxStr16 = 1<<16 - 1

// appendStr16 appends a u16 length prefix and the string bytes.
func appendStr16(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// replayWAL parses a WAL file image. It returns the decoded records of
// the longest valid prefix and that prefix's byte length: a truncated
// frame, an over-long length, a checksum mismatch, or an undecodable
// payload all end the replay at the last good record (the crash-recovery
// contract — a torn tail is dropped, never guessed at). Only a missing
// or foreign header is a hard error, because then nothing in the file
// can be trusted as ours.
func replayWAL(data []byte) ([]walRecord, int64, error) {
	if len(data) < walHeaderSize {
		return nil, 0, fmt.Errorf("server: WAL too short for header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != walMagic {
		return nil, 0, fmt.Errorf("server: bad WAL magic 0x%08x, want 0x%08x", m, walMagic)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != walVersion {
		return nil, 0, fmt.Errorf("server: unsupported WAL version %d, want %d", v, walVersion)
	}

	var recs []walRecord
	off := walHeaderSize
	for {
		if len(data)-off < 8 {
			break // torn frame header
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		n := int(binary.LittleEndian.Uint32(data[off+4:]))
		if n > walMaxPayload || len(data)-off-8 < n {
			break // hostile length or torn payload
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break // bit rot or partial overwrite
		}
		rec, ok := decodeWALPayload(payload)
		if !ok {
			break // checksum matched but structure did not: stop, do not guess
		}
		recs = append(recs, rec)
		off += 8 + n
	}
	return recs, int64(off), nil
}

// decodeWALPayload decodes one record payload.
func decodeWALPayload(payload []byte) (walRecord, bool) {
	r := walReader{buf: payload}
	rec := walRecord{Op: r.u8(), Seq: r.u32()}
	rec.ClientID = r.str16()
	switch rec.Op {
	case walOpRegister:
		rec.File = r.str16()
		rec.KeyBytes = int64(r.u64())
		rec.KeyCRC = r.u32()
		rec.Params = r.str8()
	case walOpDelete:
	default:
		return walRecord{}, false
	}
	if r.bad || r.off != len(r.buf) || rec.ClientID == "" || rec.KeyBytes < 0 {
		return walRecord{}, false
	}
	if rec.Op == walOpRegister && rec.File == "" {
		return walRecord{}, false
	}
	return rec, true
}

// walReader is a tiny bounds-checked cursor for WAL payloads (the wire
// package's reader is for wire objects; WAL framing is deliberately
// independent so the two formats can evolve separately).
type walReader struct {
	buf []byte
	off int
	bad bool
}

// take returns n bytes or flags the reader bad.
func (r *walReader) take(n int) []byte {
	if r.bad || len(r.buf)-r.off < n {
		r.bad = true
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// u8 reads one byte.
func (r *walReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// u32 reads a little-endian uint32.
func (r *walReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// u64 reads a little-endian uint64.
func (r *walReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// str16 reads a u16-length-prefixed string.
func (r *walReader) str16() string {
	n := r.take(2)
	if n == nil {
		return ""
	}
	return string(r.take(int(binary.LittleEndian.Uint16(n))))
}

// str8 reads a u8-length-prefixed string.
func (r *walReader) str8() string {
	return string(r.take(int(r.u8())))
}
