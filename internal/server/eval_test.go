package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestEvalShapeValidation pins the envelope's one-kind-one-meaning rule:
// unknown kinds, payload fields leaking across kinds, and options a kind
// does not take are all rejected before any ciphertext decodes.
func TestEvalShapeValidation(t *testing.T) {
	cases := []struct {
		name string
		req  EvalRequest
		want string
	}{
		{"unknown kind", EvalRequest{Kind: "nonsense"}, "unknown kind"},
		{"empty kind", EvalRequest{}, "unknown kind"},
		{"gate with lut field", EvalRequest{Kind: EvalKindGate, Op: "NOT", Space: 4}, `"space"`},
		{"gate with circuit field", EvalRequest{Kind: EvalKindGate, Op: "AND", Outputs: []int{0}}, `"outputs"`},
		{"lut with gate field", EvalRequest{Kind: EvalKindLUT, Space: 4, Op: "AND"}, `"op"`},
		{"multilut with single table", EvalRequest{Kind: EvalKindMultiLUT, Space: 4, Table: []int{0}}, `"table"`},
		{"circuit with cts", EvalRequest{Kind: EvalKindCircuit, Cts: [][]byte{}}, `"cts"`},
		{"optimize on gate", EvalRequest{Kind: EvalKindGate, Op: "NOT", Opts: EvalOpts{Optimize: true}}, "optimize"},
		{"optimize on lut", EvalRequest{Kind: EvalKindLUT, Space: 4, Opts: EvalOpts{Optimize: true}}, "optimize"},
		{"infer with cts", EvalRequest{Kind: EvalKindInfer, Cts: [][]byte{}}, `"cts"`},
		{"infer with table", EvalRequest{Kind: EvalKindInfer, Table: []int{0}}, `"table"`},
	}
	for _, tc := range cases {
		err := validateEvalShape(&tc.req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	ok := EvalRequest{Kind: EvalKindCircuit, Opts: EvalOpts{Optimize: true}}
	if err := validateEvalShape(&ok); err != nil {
		t.Errorf("optimize on circuit rejected: %v", err)
	}
	okInfer := EvalRequest{Kind: EvalKindInfer, Opts: EvalOpts{Optimize: true}}
	if err := validateEvalShape(&okInfer); err != nil {
		t.Errorf("optimize on infer rejected: %v", err)
	}
}

// TestV1ShimParity proves the /v1/* batch endpoints are true shims: the
// legacy frames produce bitwise the same ciphertexts as the v2 envelope
// the client now sends, for every kind.
func TestV1ShimParity(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := Dial(ts.URL, "alice")
	if err := client.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}

	postV1 := func(t *testing.T, path string, req, out any) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", path, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatal(err)
		}
	}

	// Gate: v1 frame vs the client's v2 path.
	bits := []bool{true, false, true, true}
	shift := []bool{false, true, true, false}
	a := encryptBools(sk, 500, bits)
	b := encryptBools(sk, 600, shift)
	v2Gate, err := client.GateBatch(engine.NAND, a, b)
	if err != nil {
		t.Fatal(err)
	}
	var gateResp BatchResponse
	postV1(t, "/v1/gate-batch", GateBatchRequest{
		ClientID: "alice", Op: "NAND", A: encodeCiphertexts(a), B: encodeCiphertexts(b),
	}, &gateResp)
	if !reflect.DeepEqual(gateResp.Out, encodeCiphertexts(v2Gate)) {
		t.Error("v1 gate-batch shim differs from v2 eval")
	}

	// LUT.
	table := []int{0, 1, 4, 1, 0, 1, 4, 1}
	lutIn := encryptInts(sk, 800, []int{2, 6, 3}, 8)
	v2LUT, err := client.LUTBatch(lutIn, 8, table)
	if err != nil {
		t.Fatal(err)
	}
	var lutResp BatchResponse
	postV1(t, "/v1/lut-batch", LUTBatchRequest{
		ClientID: "alice", Space: 8, Table: table, Cts: encodeCiphertexts(lutIn),
	}, &lutResp)
	if !reflect.DeepEqual(lutResp.Out, encodeCiphertexts(v2LUT)) {
		t.Error("v1 lut-batch shim differs from v2 eval")
	}

	// MultiLUT: the v1 shim regroups the flat v2 response back into the
	// legacy nested frame.
	tables := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}
	mlutIn := encryptInts(sk, 900, []int{1, 3}, 4)
	v2MLUT, err := client.MultiLUTBatch(mlutIn, 4, tables)
	if err != nil {
		t.Fatal(err)
	}
	var mlutResp MultiLUTBatchResponse
	postV1(t, "/v1/multilut-batch", MultiLUTBatchRequest{
		ClientID: "alice", Space: 4, Tables: tables, Cts: encodeCiphertexts(mlutIn),
	}, &mlutResp)
	if len(mlutResp.Out) != len(v2MLUT) {
		t.Fatalf("v1 multilut groups = %d, v2 = %d", len(mlutResp.Out), len(v2MLUT))
	}
	for i := range v2MLUT {
		if !reflect.DeepEqual(mlutResp.Out[i], encodeCiphertexts(v2MLUT[i])) {
			t.Errorf("v1 multilut-batch shim group %d differs from v2 eval", i)
		}
	}
}

// TestEvalHTTPValidation drives the /v2/eval endpoint's reject paths over
// the wire: malformed JSON, cross-kind fields, and unknown kinds all come
// back 400 bad_request with a message naming the problem.
func TestEvalHTTPValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
	}{
		{"not json", "not json"},
		{"unknown kind", `{"client_id":"x","kind":"nope"}`},
		{"cross-kind field", `{"client_id":"x","kind":"gate","op":"NOT","space":4}`},
		{"optimize on lut", `{"client_id":"x","kind":"lut","space":4,"opts":{"optimize":true}}`},
		{"unknown field", `{"client_id":"x","kind":"gate","bogus":1}`},
	} {
		resp, err := http.Post(ts.URL+"/v2/eval", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: decode error body: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || er.Code != CodeBadRequest {
			t.Errorf("%s: HTTP %d code %q, want 400 bad_request", tc.name, resp.StatusCode, er.Code)
		}
	}
}

// TestClientRetryBodyNotTruncated is the regression test for the retry
// path's body handling: a gate batch whose first attempt is refused 503
// must arrive complete on the retry — the client rebuilds the body reader
// per attempt, so a half-read first request cannot truncate the second.
func TestClientRetryBodyNotTruncated(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	inner := srv.Handler()

	var mu sync.Mutex
	var attempts int
	var firstLen, retryLen int
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/eval" {
			inner.ServeHTTP(w, r)
			return
		}
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			// Read only half the body, then refuse: a client that shares
			// one reader across attempts would replay only the remainder.
			half := make([]byte, r.ContentLength/2)
			io.ReadFull(r.Body, half)
			mu.Lock()
			firstLen = int(r.ContentLength)
			mu.Unlock()
			writeError(w, ErrOverloaded)
			return
		}
		data, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("retry body read: %v", err)
		}
		mu.Lock()
		retryLen = len(data)
		mu.Unlock()
		r.Body = io.NopCloser(bytes.NewReader(data))
		r.ContentLength = int64(len(data))
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	client := Dial(ts.URL, "alice")
	client.SetRetry(2, time.Millisecond)
	if err := client.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}

	bits := []bool{true, false, true, true, false}
	a := encryptBools(sk, 500, bits)
	out, err := client.GateBatch(engine.NOT, a, nil)
	if err != nil {
		t.Fatalf("retried gate batch: %v", err)
	}
	mu.Lock()
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if retryLen != firstLen || retryLen == 0 {
		t.Errorf("retry body %d bytes, first attempt advertised %d — truncated", retryLen, firstLen)
	}
	mu.Unlock()
	for i, b := range bits {
		if dec := sk.DecryptBool(out[i]); dec != !b {
			t.Errorf("item %d decrypted %v, want %v", i, dec, !b)
		}
	}
}
