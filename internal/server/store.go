package server

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/tfhe"
)

// ErrNotPersisted is returned by SessionStore.Get when no key is stored
// under the client ID.
var ErrNotPersisted = errors.New("server: session not persisted")

// ErrStoreClosed is returned by store operations after Close.
var ErrStoreClosed = errors.New("server: session store is closed")

// StoreEntry describes one persisted session: the durable half of what
// GET /v1/sessions reports.
type StoreEntry struct {
	// ClientID is the session's owner.
	ClientID string
	// Params is the parameter set name the key was generated for.
	Params string
	// KeyBytes is the wire-encoded evaluation-key size.
	KeyBytes int64
}

// SessionStore is the durable tier behind the server's warm session LRU:
// it holds wire-encoded evaluation keys (the client upload that must
// survive restarts) keyed by client ID. The server writes through on
// register, reads back on a warm-tier miss, and tombstones on explicit
// delete. Implementations must be safe for concurrent use.
//
// Blobs are opaque to the store — they are exactly the
// wire.MarshalEvalKey bytes the client uploaded, so a restored session is
// rebuilt from byte-identical key material and produces bitwise-identical
// gate results.
type SessionStore interface {
	// Put durably stores the wire-encoded evaluation key for clientID,
	// replacing any previous key. p is the decoded parameter set of the
	// blob (callers have always just validated the key), recorded so
	// List never has to decode key material.
	Put(clientID string, p tfhe.Params, blob []byte) error
	// Get returns the stored key blob for clientID, or ErrNotPersisted.
	Get(clientID string) ([]byte, error)
	// Delete removes clientID's key, reporting whether one was stored.
	// Deleting an absent key is not an error.
	Delete(clientID string) (bool, error)
	// List returns every persisted session, sorted by client ID.
	List() []StoreEntry
	// Close flushes and releases the store. Every later call fails with
	// ErrStoreClosed.
	Close() error
}

// MemStore is the in-memory SessionStore: a durable tier only in the
// sense that it survives warm-LRU eviction, not a process restart. It is
// the reference implementation the disk store is tested against, and a
// useful default when eviction transparency is wanted without disk I/O.
type MemStore struct {
	mu     sync.Mutex
	closed bool
	blobs  map[string]memEntry
}

// memEntry is one stored key.
type memEntry struct {
	params string
	blob   []byte
}

// NewMemStore returns an empty in-memory session store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string]memEntry)}
}

// Put implements SessionStore. The blob is copied, so callers may reuse
// their buffer.
func (m *MemStore) Put(clientID string, p tfhe.Params, blob []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	cp := make([]byte, len(blob))
	copy(cp, blob)
	m.blobs[clientID] = memEntry{params: p.Name, blob: cp}
	return nil
}

// Get implements SessionStore.
func (m *MemStore) Get(clientID string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrStoreClosed
	}
	e, ok := m.blobs[clientID]
	if !ok {
		return nil, ErrNotPersisted
	}
	return e.blob, nil
}

// Delete implements SessionStore.
func (m *MemStore) Delete(clientID string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, ErrStoreClosed
	}
	_, ok := m.blobs[clientID]
	delete(m.blobs, clientID)
	return ok, nil
}

// List implements SessionStore.
func (m *MemStore) List() []StoreEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	entries := make([]StoreEntry, 0, len(m.blobs))
	for id, e := range m.blobs {
		entries = append(entries, StoreEntry{ClientID: id, Params: e.params, KeyBytes: int64(len(e.blob))})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ClientID < entries[j].ClientID })
	return entries
}

// Close implements SessionStore.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.blobs = nil
	return nil
}
