package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/workload"
)

// The v2 evaluation envelope: every batch operation — gate, LUT,
// multi-value LUT, circuit — travels as one versioned frame through
// POST /v2/eval, so a routing tier can forward, retry, and account for
// all evaluation traffic uniformly instead of knowing one endpoint per
// op shape. The /v1/* batch endpoints remain as thin shims that build
// an EvalRequest and reshape the response into their legacy frames.

// Eval envelope kinds: the Kind field of an EvalRequest.
const (
	// EvalKindGate evaluates a boolean gate batch (Op, A, and B for
	// binary gates; B absent for the unary NOT).
	EvalKindGate = "gate"
	// EvalKindLUT applies one lookup table (Space, Table) to Cts.
	EvalKindLUT = "lut"
	// EvalKindMultiLUT applies k lookup tables (Space, Tables) to Cts
	// via multi-value PBS; the response carries k outputs per input.
	EvalKindMultiLUT = "multilut"
	// EvalKindCircuit executes a serialized circuit DAG (Nodes, Outputs)
	// over Inputs, optionally through the optimizer pass pipeline.
	EvalKindCircuit = "circuit"
	// EvalKindInfer runs the built-in cellCNN-style inference model over
	// Inputs — a batch of encrypted feature vectors, each
	// workload.InferFeatures ciphertexts, vector-major — and answers
	// workload.InferClasses encrypted class scores per vector. The model
	// circuit is built server-side, so the payload is just the features;
	// opts.optimize runs it through the scheduler's optimizer first.
	EvalKindInfer = "infer"
)

// EvalOpts carries the option surface of a v2 evaluation: knobs that
// modify how an envelope executes without changing what it computes.
type EvalOpts struct {
	// Optimize runs the scheduler's full optimizer pass pipeline over a
	// circuit envelope before execution (CSE, pruning, linear folding,
	// bootstrap fusion, multi-value packing bounded by the session's
	// parameter set). Outputs decode identically to the unoptimized
	// circuit but are not bitwise identical. Only valid for circuit and
	// infer envelopes.
	Optimize bool `json:"optimize,omitempty"`
}

// EvalRequest frames POST /v2/eval: one versioned envelope for every
// batch evaluation. Kind selects the operation; only that kind's payload
// fields may be set (stray fields from another kind are rejected, so an
// envelope always has one unambiguous meaning a router can account for).
type EvalRequest struct {
	ClientID string `json:"client_id"`
	Kind     string `json:"kind"`

	// Gate payload.
	Op string   `json:"op,omitempty"` // gate mnemonic, e.g. "NAND"
	A  [][]byte `json:"a,omitempty"`  // wire-encoded LWE ciphertexts
	B  [][]byte `json:"b,omitempty"`  // absent for the unary NOT

	// LUT / multi-value LUT payload.
	Space  int      `json:"space,omitempty"`  // message space of the table(s)
	Table  []int    `json:"table,omitempty"`  // lut: length Space, entries in {0..Space-1}
	Tables [][]int  `json:"tables,omitempty"` // multilut: k tables, each length Space
	Cts    [][]byte `json:"cts,omitempty"`    // wire-encoded LWE ciphertexts

	// Circuit payload.
	Nodes   []sched.NodeSpec `json:"nodes,omitempty"`
	Outputs []int            `json:"outputs,omitempty"`
	Inputs  [][]byte         `json:"inputs,omitempty"` // wire-encoded LWE ciphertexts

	// Opts modifies execution (see EvalOpts).
	Opts EvalOpts `json:"opts,omitempty"`
}

// EvalResponse carries the results of one v2 evaluation. Out is flat in
// input-major order; K is the number of outputs per input (1 for gate,
// lut, and circuit envelopes; the table count for multilut), so
// Out[i*K+j] is output j of input i.
type EvalResponse struct {
	Out [][]byte `json:"out"`
	K   int      `json:"k"`
}

// evalOperands is the wire-decoded ciphertext payload of an envelope:
// the primary batch (a/cts/inputs by kind) and, for binary gates, the
// second operand batch.
type evalOperands struct {
	a, b []tfhe.LWECiphertext
}

// evalKindError reports an envelope whose payload does not match its
// kind — a stray field, an unknown kind, or options the kind does not
// take.
func evalKindError(format string, args ...any) error {
	return fmt.Errorf("server: bad eval envelope: "+format, args...)
}

// validateEvalShape rejects envelopes whose payload fields leak across
// kinds, so a request always means exactly one operation. It needs no
// session state, runs before any ciphertext decode, and must never
// panic: the envelope is attacker-controlled.
func validateEvalShape(req *EvalRequest) error {
	type field struct {
		name string
		set  bool
	}
	fields := []field{
		{"op", req.Op != ""},
		{"a", req.A != nil},
		{"b", req.B != nil},
		{"space", req.Space != 0},
		{"table", req.Table != nil},
		{"tables", req.Tables != nil},
		{"cts", req.Cts != nil},
		{"nodes", req.Nodes != nil},
		{"outputs", req.Outputs != nil},
		{"inputs", req.Inputs != nil},
	}
	allowed := map[string]map[string]bool{
		EvalKindGate:     {"op": true, "a": true, "b": true},
		EvalKindLUT:      {"space": true, "table": true, "cts": true},
		EvalKindMultiLUT: {"space": true, "tables": true, "cts": true},
		EvalKindCircuit:  {"nodes": true, "outputs": true, "inputs": true},
		EvalKindInfer:    {"inputs": true},
	}
	ok, known := allowed[req.Kind]
	if !known {
		return evalKindError("unknown kind %q", req.Kind)
	}
	for _, f := range fields {
		if f.set && !ok[f.name] {
			return evalKindError("field %q is not part of a %q envelope", f.name, req.Kind)
		}
	}
	if req.Opts.Optimize && req.Kind != EvalKindCircuit && req.Kind != EvalKindInfer {
		return evalKindError("optimize applies only to circuit and infer envelopes")
	}
	return nil
}

// decodeEvalOperands wire-decodes the ciphertext payload selected by the
// envelope's kind, after validating the envelope's shape.
func decodeEvalOperands(req *EvalRequest) (evalOperands, error) {
	if err := validateEvalShape(req); err != nil {
		return evalOperands{}, err
	}
	var ops evalOperands
	var err error
	switch req.Kind {
	case EvalKindGate:
		if ops.a, err = decodeCiphertexts(req.A, "a"); err != nil {
			return evalOperands{}, err
		}
		if ops.b, err = decodeCiphertexts(req.B, "b"); err != nil {
			return evalOperands{}, err
		}
	case EvalKindLUT, EvalKindMultiLUT:
		if ops.a, err = decodeCiphertexts(req.Cts, "cts"); err != nil {
			return evalOperands{}, err
		}
	case EvalKindCircuit, EvalKindInfer:
		if ops.a, err = decodeCiphertexts(req.Inputs, "inputs"); err != nil {
			return evalOperands{}, err
		}
	}
	return ops, nil
}

// parseEvalRequest decodes one v2 eval envelope: the JSON frame (unknown
// fields rejected), the kind/shape validation, and the wire decode of
// every ciphertext. It performs no session-dependent validation — space,
// table, and dimension checks need the session's parameter set and
// happen in the batch methods — but it must never panic on arbitrary
// bytes: the body is attacker-controlled, and this helper is the fuzzing
// surface of the whole evaluation API (FuzzEvalDecode).
func parseEvalRequest(r io.Reader) (EvalRequest, evalOperands, error) {
	var req EvalRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return EvalRequest{}, evalOperands{}, fmt.Errorf("server: bad eval request: %w", err)
	}
	ops, err := decodeEvalOperands(&req)
	if err != nil {
		return EvalRequest{}, evalOperands{}, err
	}
	return req, ops, nil
}

// evalDecoded dispatches one shape-validated, wire-decoded envelope to
// the session core — the single execution path every evaluation
// endpoint (v2 and the v1 shims) funnels through. It returns the flat
// output batch and the outputs-per-input count k.
func (s *Server) evalDecoded(req EvalRequest, ops evalOperands) ([]tfhe.LWECiphertext, int, error) {
	switch req.Kind {
	case EvalKindGate:
		op, err := engine.ParseGate(req.Op)
		if err != nil {
			return nil, 0, err
		}
		out, err := s.GateBatch(req.ClientID, op, ops.a, ops.b)
		return out, 1, err
	case EvalKindLUT:
		out, err := s.LUTBatch(req.ClientID, ops.a, req.Space, req.Table)
		return out, 1, err
	case EvalKindMultiLUT:
		groups, err := s.MultiLUTBatch(req.ClientID, ops.a, req.Space, req.Tables)
		if err != nil {
			return nil, 0, err
		}
		k := len(req.Tables)
		flat := make([]tfhe.LWECiphertext, 0, len(groups)*k)
		for _, g := range groups {
			flat = append(flat, g...)
		}
		return flat, k, nil
	case EvalKindCircuit:
		out, err := s.circuitBatch(req.ClientID, req.Nodes, req.Outputs, ops.a, req.Opts.Optimize)
		return out, 1, err
	case EvalKindInfer:
		out, err := s.InferBatch(req.ClientID, ops.a, req.Opts.Optimize)
		return out, workload.InferClasses, err
	}
	return nil, 0, evalKindError("unknown kind %q", req.Kind)
}

// Eval executes one v2 evaluation envelope: shape validation, ciphertext
// decode, dispatch to the session core, and re-encode of the outputs.
// It is the programmatic form of POST /v2/eval, and what the v1 batch
// handlers shim onto.
func (s *Server) Eval(req EvalRequest) (EvalResponse, error) {
	ops, err := decodeEvalOperands(&req)
	if err != nil {
		return EvalResponse{}, err
	}
	out, k, err := s.evalDecoded(req, ops)
	if err != nil {
		return EvalResponse{}, err
	}
	return EvalResponse{Out: encodeCiphertexts(out), K: k}, nil
}

// handleEval decodes, dispatches, and re-encodes one v2 eval envelope.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	req, ops, err := parseEvalRequest(http.MaxBytesReader(w, r.Body, MaxBatchBodyBytes))
	if err != nil {
		writeError(w, err)
		return
	}
	out, k, err := s.evalDecoded(req, ops)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EvalResponse{Out: encodeCiphertexts(out), K: k})
}
