package server

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// walImage builds a WAL file image from records, failing the test on
// encoding errors.
func walImage(t *testing.T, recs ...walRecord) []byte {
	t.Helper()
	data := appendWALHeader(nil)
	for _, rec := range recs {
		var err error
		data, err = appendWALRecord(data, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	return data
}

// testRecs is a representative record mix: two registers (one replacing
// the other) plus a tombstone.
func testRecs() []walRecord {
	return []walRecord{
		{Op: walOpRegister, Seq: 1, ClientID: "alice", File: "s00000001.key", KeyBytes: 1234, KeyCRC: 0xdeadbeef, Params: "test"},
		{Op: walOpRegister, Seq: 2, ClientID: "bob", File: "s00000002.key", KeyBytes: 99, KeyCRC: 7, Params: "test"},
		{Op: walOpDelete, Seq: 3, ClientID: "alice"},
	}
}

// TestWALRoundTrip pins encode → replay over the full field set.
func TestWALRoundTrip(t *testing.T) {
	want := testRecs()
	data := walImage(t, want...)
	recs, valid, err := replayWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if valid != int64(len(data)) {
		t.Errorf("valid prefix %d, want whole file %d", valid, len(data))
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

// TestWALTornTail replays every truncation of the file: any cut inside
// the last record must drop exactly that record and report the boundary
// after the previous one — byte-granular crash recovery.
func TestWALTornTail(t *testing.T) {
	recs := testRecs()
	full := walImage(t, recs...)
	twoEnd := int64(len(walImage(t, recs[:2]...)))

	for cut := walHeaderSize; cut < len(full); cut++ {
		got, valid, err := replayWAL(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// The valid prefix must end on a record boundary at or before the
		// cut, and every surviving record must match the original.
		if valid > int64(cut) {
			t.Fatalf("cut %d: valid prefix %d beyond the data", cut, valid)
		}
		for i, rec := range got {
			if rec != recs[i] {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, rec, recs[i])
			}
		}
		// A cut inside record 3 keeps exactly records 1-2.
		if int64(cut) >= twoEnd && cut < len(full) {
			if len(got) != 2 || valid != twoEnd {
				t.Fatalf("cut %d: got %d records, valid %d; want 2 records, valid %d", cut, len(got), valid, twoEnd)
			}
		}
	}
}

// TestWALCorruptTail flips one byte in the last record: replay must stop
// at the previous record, never deliver the corrupted one.
func TestWALCorruptTail(t *testing.T) {
	recs := testRecs()
	full := walImage(t, recs...)
	twoEnd := int64(len(walImage(t, recs[:2]...)))

	for off := twoEnd; off < int64(len(full)); off++ {
		data := bytes.Clone(full)
		data[off] ^= 0x40
		got, valid, err := replayWAL(data)
		if err != nil {
			t.Fatalf("flip at %d: %v", off, err)
		}
		if len(got) != 2 || valid != twoEnd {
			t.Fatalf("flip at %d: got %d records, valid %d; want 2 records, valid %d", off, len(got), valid, twoEnd)
		}
	}
}

// TestWALCorruptMiddle proves replay never skips over damage: a flip in
// an early record drops it AND everything after it (the tail cannot be
// trusted once the sequence is broken).
func TestWALCorruptMiddle(t *testing.T) {
	recs := testRecs()
	full := walImage(t, recs...)
	oneEnd := int64(len(walImage(t, recs[:1]...)))

	data := bytes.Clone(full)
	data[oneEnd+10] ^= 0x01 // inside record 2
	got, valid, err := replayWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || valid != oneEnd {
		t.Errorf("got %d records, valid %d; want 1 record, valid %d", len(got), valid, oneEnd)
	}
}

// TestWALHostileLength proves a crafted huge length field cannot drive a
// giant allocation or a panic: replay stops at the frame.
func TestWALHostileLength(t *testing.T) {
	data := walImage(t, testRecs()[:1]...)
	end := len(data)
	data = binary.LittleEndian.AppendUint32(data, 0)          // crc
	data = binary.LittleEndian.AppendUint32(data, 0xffffffff) // hostile len
	got, valid, err := replayWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || valid != int64(end) {
		t.Errorf("got %d records, valid %d; want 1, %d", len(got), valid, end)
	}
}

// TestWALBadHeader proves a missing, short, or foreign header is a hard
// error — nothing after it can be trusted as ours.
func TestWALBadHeader(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       {0x53, 0x57},
		"wrong magic": append([]byte("NOPE"), 1, 0, 0, 0),
		"wrong ver":   binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, walMagic), 99),
	}
	for name, data := range cases {
		if _, _, err := replayWAL(data); err == nil {
			t.Errorf("%s: replay accepted a bad header", name)
		}
	}
}

// TestWALRejectsMalformedPayloads proves structurally invalid payloads
// (valid checksum, bad contents) stop replay instead of producing
// garbage records.
func TestWALRejectsMalformedPayloads(t *testing.T) {
	bad := []walRecord{
		{Op: 99, Seq: 1, ClientID: "x"},                                     // unknown op
		{Op: walOpRegister, Seq: 1, ClientID: "", File: "f"},                // empty id
		{Op: walOpRegister, Seq: 1, ClientID: "x", File: "", KeyBytes: 1},   // register without file
		{Op: walOpRegister, Seq: 1, ClientID: "x", File: "f", KeyBytes: -5}, // negative size
	}
	for i, rec := range bad {
		data, err := appendWALRecord(appendWALHeader(nil), rec)
		if err != nil {
			continue // encoder already refuses: equally safe
		}
		got, valid, err := replayWAL(data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != 0 || valid != walHeaderSize {
			t.Errorf("case %d: replay accepted malformed record %+v", i, rec)
		}
	}
}

// TestWALFieldBounds proves over-long fields are refused at encode time.
func TestWALFieldBounds(t *testing.T) {
	long := string(make([]byte, maxStr16+1))
	if _, err := appendWALRecord(nil, walRecord{Op: walOpRegister, Seq: 1, ClientID: long, File: "f"}); err == nil {
		t.Error("over-long client id encoded")
	}
	if _, err := appendWALRecord(nil, walRecord{Op: walOpRegister, Seq: 1, ClientID: "x", File: "f", Params: string(make([]byte, 256))}); err == nil {
		t.Error("over-long params name encoded")
	}
}
