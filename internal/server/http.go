package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/wire"
)

// Request body bounds. The whole body is buffered and base64-decoded
// before the wire codec can reject it, so these are sized to the largest
// legitimate payload rather than "big enough for anything" — an
// unauthenticated peer should not be able to park gigabytes in server
// memory per connection.
const (
	// MaxKeyBodyBytes bounds a register-key request. Evaluation keys
	// dominate everything else: sets I–III are ~46–62 MB in base64, but
	// the high-precision set IV key is ~1.09 GB binary / ~1.45 GB base64,
	// which this limit must still admit. The connection timeouts on
	// strix.Serve keep a slow-drip peer from parking such a buffer
	// indefinitely.
	MaxKeyBodyBytes = 2 << 30
	// MaxBatchBodyBytes bounds gate/lut batch requests and replies: a
	// maximal default batch (4096 set-I ciphertext pairs) is ~22 MB of
	// base64.
	MaxBatchBodyBytes = 64 << 20
)

// The JSON frames of the HTTP API. Binary fields ([]byte) carry the
// internal/wire encoding and appear as base64 strings on the wire, the
// standard encoding/json treatment.

// RegisterKeyRequest frames POST /v1/register-key.
type RegisterKeyRequest struct {
	ClientID string `json:"client_id"`
	EvalKey  []byte `json:"eval_key"` // wire-encoded evaluation keys
}

// RegisterKeyResponse acknowledges a key registration.
type RegisterKeyResponse struct {
	Params   string `json:"params"`    // parameter set name of the session
	KeyBytes int    `json:"key_bytes"` // decoded key size, for sanity checks
}

// GateBatchRequest frames POST /v1/gate-batch.
type GateBatchRequest struct {
	ClientID string   `json:"client_id"`
	Op       string   `json:"op"`          // gate mnemonic, e.g. "NAND"
	A        [][]byte `json:"a"`           // wire-encoded LWE ciphertexts
	B        [][]byte `json:"b,omitempty"` // absent for the unary NOT
}

// LUTBatchRequest frames POST /v1/lut-batch.
type LUTBatchRequest struct {
	ClientID string   `json:"client_id"`
	Space    int      `json:"space"` // message space of the table
	Table    []int    `json:"table"` // length Space, entries in {0..Space-1}
	Cts      [][]byte `json:"cts"`   // wire-encoded LWE ciphertexts
}

// MultiLUTBatchRequest frames POST /v1/multilut-batch: k lookup tables
// applied to every ciphertext with one blind rotation per input.
type MultiLUTBatchRequest struct {
	ClientID string   `json:"client_id"`
	Space    int      `json:"space"`  // message space shared by every table
	Tables   [][]int  `json:"tables"` // k tables, each length Space, entries in {0..Space-1}
	Cts      [][]byte `json:"cts"`    // wire-encoded LWE ciphertexts
}

// MultiLUTBatchResponse carries the k result ciphertexts per input of a
// multi-value batch: Out[i][j] is table j applied to input i.
type MultiLUTBatchResponse struct {
	Out [][][]byte `json:"out"`
}

// CircuitBatchRequest frames POST /v1/circuit-batch: a serialized sched
// circuit plus its input ciphertexts. Node references are indices into
// the nodes list; outputs select the wires to return.
type CircuitBatchRequest struct {
	ClientID string           `json:"client_id"`
	Nodes    []sched.NodeSpec `json:"nodes"`
	Outputs  []int            `json:"outputs"`
	Inputs   [][]byte         `json:"inputs"` // wire-encoded LWE ciphertexts
	// Optimize asks the server to run the scheduler's full optimizer
	// pass pipeline (CSE, pruning, linear folding, bootstrap fusion,
	// multi-value packing bounded by the session's parameter set) before
	// execution. Outputs then decode identically to the unoptimized
	// circuit but are not bitwise identical; leave false for the
	// bitwise-reproducible path.
	Optimize bool `json:"optimize,omitempty"`
}

// BatchResponse carries the result ciphertexts of a gate, LUT, or
// circuit batch.
type BatchResponse struct {
	Out [][]byte `json:"out"` // wire-encoded LWE ciphertexts, input order
}

// ErrorResponse is the JSON body of every non-2xx reply. Error is the
// human-readable message (kept for older clients and for logs); Code is
// the machine-readable error code clients should dispatch on — one of
// the Code* constants in errors.go.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// HealthResponse frames GET /v1/healthz.
type HealthResponse struct {
	Status   string `json:"status"` // "ok", or "draining" with HTTP 503
	Sessions int    `json:"sessions"`
	Draining bool   `json:"draining"`
}

// SessionsResponse frames GET /v1/sessions.
type SessionsResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// DeleteSessionResponse acknowledges DELETE /v1/sessions/{client_id},
// reporting which tiers actually held the session.
type DeleteSessionResponse struct {
	Warm      bool `json:"warm"`      // a warm-tier session was dropped
	Persisted bool `json:"persisted"` // a durable key was tombstoned
}

// Handler returns the HTTP API of the service:
//
//	POST /v2/eval            EvalRequest           → EvalResponse
//	POST /v1/register-key    RegisterKeyRequest    → RegisterKeyResponse
//	POST /v1/gate-batch      GateBatchRequest      → BatchResponse
//	POST /v1/lut-batch       LUTBatchRequest       → BatchResponse
//	POST /v1/multilut-batch  MultiLUTBatchRequest  → MultiLUTBatchResponse
//	POST   /v1/circuit-batch          CircuitBatchRequest   → BatchResponse
//	GET    /v1/stats                                        → Stats
//	GET    /v1/healthz                                      → HealthResponse
//	GET    /v1/sessions                                     → SessionsResponse
//	DELETE /v1/sessions/{client_id}                         → DeleteSessionResponse
//
// /v2/eval is the single versioned evaluation envelope (see eval.go);
// the /v1/* batch endpoints are thin shims that translate their legacy
// frames onto the same core. Every non-2xx reply is an ErrorResponse
// carrying a machine-readable code (see errors.go); 503 replies also
// carry a Retry-After header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/eval", s.handleEval)
	mux.HandleFunc("POST /v1/register-key", s.handleRegisterKey)
	mux.HandleFunc("POST /v1/gate-batch", s.handleGateBatch)
	mux.HandleFunc("POST /v1/lut-batch", s.handleLUTBatch)
	mux.HandleFunc("POST /v1/multilut-batch", s.handleMultiLUTBatch)
	mux.HandleFunc("POST /v1/circuit-batch", s.handleCircuitBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	mux.HandleFunc("DELETE /v1/sessions/{client_id}", s.handleDeleteSession)
	return mux
}

// decodeJSON reads one size-bounded JSON request body.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any, limit int64) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// writeJSON writes a JSON response with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps a service error to its HTTP status and machine code
// (errorStatus in errors.go). Retryable refusals advertise Retry-After
// so well-behaved clients pace their backoff.
func writeError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

// decodeCiphertexts decodes a batch of wire-encoded LWE ciphertexts.
func decodeCiphertexts(blobs [][]byte, field string) ([]tfhe.LWECiphertext, error) {
	if blobs == nil {
		return nil, nil
	}
	cts := make([]tfhe.LWECiphertext, len(blobs))
	for i, blob := range blobs {
		ct, err := wire.UnmarshalLWE(blob)
		if err != nil {
			return nil, fmt.Errorf("%s[%d]: %w", field, i, err)
		}
		cts[i] = ct
	}
	return cts, nil
}

// encodeCiphertexts encodes a batch of result ciphertexts.
func encodeCiphertexts(cts []tfhe.LWECiphertext) [][]byte {
	out := make([][]byte, len(cts))
	for i, ct := range cts {
		out[i] = wire.MarshalLWE(ct)
	}
	return out
}

// handleRegisterKey decodes and registers a client's evaluation keys.
func (s *Server) handleRegisterKey(w http.ResponseWriter, r *http.Request) {
	var req RegisterKeyRequest
	if err := decodeJSON(w, r, &req, MaxKeyBodyBytes); err != nil {
		writeError(w, fmt.Errorf("server: bad register-key request: %w", err))
		return
	}
	// The encoded path persists the exact uploaded bytes instead of
	// re-marshaling the decoded key.
	p, err := s.RegisterKeyEncoded(req.ClientID, req.EvalKey)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterKeyResponse{Params: p.Name, KeyBytes: len(req.EvalKey)})
}

// handleGateBatch is the v1 shim: a GateBatchRequest is a gate-kind
// eval envelope with a BatchResponse reply.
func (s *Server) handleGateBatch(w http.ResponseWriter, r *http.Request) {
	var req GateBatchRequest
	if err := decodeJSON(w, r, &req, MaxBatchBodyBytes); err != nil {
		writeError(w, fmt.Errorf("server: bad gate-batch request: %w", err))
		return
	}
	resp, err := s.Eval(EvalRequest{
		ClientID: req.ClientID, Kind: EvalKindGate, Op: req.Op, A: req.A, B: req.B,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Out: resp.Out})
}

// handleLUTBatch is the v1 shim: a LUTBatchRequest is a lut-kind eval
// envelope with a BatchResponse reply.
func (s *Server) handleLUTBatch(w http.ResponseWriter, r *http.Request) {
	var req LUTBatchRequest
	if err := decodeJSON(w, r, &req, MaxBatchBodyBytes); err != nil {
		writeError(w, fmt.Errorf("server: bad lut-batch request: %w", err))
		return
	}
	resp, err := s.Eval(EvalRequest{
		ClientID: req.ClientID, Kind: EvalKindLUT, Space: req.Space, Table: req.Table, Cts: req.Cts,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Out: resp.Out})
}

// handleMultiLUTBatch is the v1 shim: a MultiLUTBatchRequest is a
// multilut-kind eval envelope whose flat response regroups into the
// legacy nested MultiLUTBatchResponse.
func (s *Server) handleMultiLUTBatch(w http.ResponseWriter, r *http.Request) {
	var req MultiLUTBatchRequest
	if err := decodeJSON(w, r, &req, MaxBatchBodyBytes); err != nil {
		writeError(w, fmt.Errorf("server: bad multilut-batch request: %w", err))
		return
	}
	resp, err := s.Eval(EvalRequest{
		ClientID: req.ClientID, Kind: EvalKindMultiLUT, Space: req.Space, Tables: req.Tables, Cts: req.Cts,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	nested := MultiLUTBatchResponse{Out: make([][][]byte, 0, len(req.Cts))}
	for i := 0; i < len(resp.Out); i += resp.K {
		nested.Out = append(nested.Out, resp.Out[i:i+resp.K])
	}
	writeJSON(w, http.StatusOK, nested)
}

// handleCircuitBatch is the v1 shim: a CircuitBatchRequest is a
// circuit-kind eval envelope with a BatchResponse reply.
func (s *Server) handleCircuitBatch(w http.ResponseWriter, r *http.Request) {
	var req CircuitBatchRequest
	if err := decodeJSON(w, r, &req, MaxBatchBodyBytes); err != nil {
		writeError(w, fmt.Errorf("server: bad circuit-batch request: %w", err))
		return
	}
	resp, err := s.Eval(EvalRequest{
		ClientID: req.ClientID, Kind: EvalKindCircuit,
		Nodes: req.Nodes, Outputs: req.Outputs, Inputs: req.Inputs,
		Opts: EvalOpts{Optimize: req.Optimize},
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Out: resp.Out})
}

// handleStats reports the service metrics snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz reports readiness: 200 while serving, 503 once draining
// — the signal load balancers and init systems watch to stop routing new
// work during a graceful shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Sessions: len(s.Sessions())}
	if s.Draining() {
		resp.Status = "draining"
		resp.Draining = true
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessions lists every live session across the warm and durable
// tiers.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SessionsResponse{Sessions: s.SessionList()})
}

// handleDeleteSession evicts one session from both tiers.
func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	warm, persisted, err := s.DeleteSession(r.PathValue("client_id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteSessionResponse{Warm: warm, Persisted: persisted})
}
