package server

import (
	"net/http"
	"testing"
	"time"
)

// TestBackoffBounds pins the helper's totality: any base and attempt
// must yield a delay in (0, MaxBackoff] without panicking — the old
// per-caller implementations panicked on a sub-2ns base (empty jitter
// interval) and on attempt ≥ ~33 (shift overflow to negative).
func TestBackoffBounds(t *testing.T) {
	cases := []struct {
		name    string
		base    time.Duration
		attempt int
	}{
		{"tiny-base", 1, 0},
		{"zero-base", 0, 5},
		{"negative-base", -time.Second, 3},
		{"huge-attempt", 100 * time.Millisecond, 64},
		{"overflowing-attempt", time.Second, 1000},
		{"normal", 100 * time.Millisecond, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 32; i++ {
				d := Backoff(tc.base, tc.attempt)
				if d <= 0 {
					t.Fatalf("Backoff(%v, %d) = %v, want > 0", tc.base, tc.attempt, d)
				}
				if d > MaxBackoff {
					t.Fatalf("Backoff(%v, %d) = %v, want ≤ %v", tc.base, tc.attempt, d, MaxBackoff)
				}
			}
		})
	}
}

// TestBackoffJitterWindow pins the full-jitter shape: for a base and
// attempt that stay under the cap, every draw lands in [d/2, d) with
// d = base·2^attempt.
func TestBackoffJitterWindow(t *testing.T) {
	base := 100 * time.Millisecond
	d := 400 * time.Millisecond // base << 2
	for i := 0; i < 64; i++ {
		got := Backoff(base, 2)
		if got < d/2 || got >= d {
			t.Fatalf("Backoff(%v, 2) = %v, want in [%v, %v)", base, got, d/2, d)
		}
	}
}

// TestBackoffCaps pins saturation: once the doubled delay reaches
// MaxBackoff it stops growing, so later attempts draw from the same
// capped window instead of overflowing.
func TestBackoffCaps(t *testing.T) {
	for i := 0; i < 64; i++ {
		d := Backoff(time.Second, 10) // 1s·2^10 = ~17min, capped to 30s
		if d < MaxBackoff/2 || d >= MaxBackoff {
			t.Fatalf("capped Backoff = %v, want in [%v, %v)", d, MaxBackoff/2, MaxBackoff)
		}
	}
}

// TestRetryAfterOf covers the Retry-After parse: whole seconds floor the
// retry, anything else (absent, malformed, HTTP-date, non-positive)
// yields no floor, and hostile values clamp to MaxBackoff.
func TestRetryAfterOf(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0},
		{"99999", MaxBackoff},
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		if got := retryAfterOf(resp); got != tc.want {
			t.Errorf("retryAfterOf(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}
