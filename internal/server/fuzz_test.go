package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/wire"
)

// FuzzEvalDecode pins the v2 eval envelope decoder's contract: it never
// panics on arbitrary bytes (the body is attacker-controlled), it only
// accepts envelopes whose payload matches their kind, and any ciphertext
// it accepts is canonical under the wire codec. Since every evaluation
// endpoint — /v2/eval and the /v1/* shims — funnels through this parse
// path, this is the single fuzz target for the whole evaluation API.
// Plain `go test` replays the f.Add seeds plus the committed corpus
// under testdata/fuzz/ in regression mode; the nightly workflow gives it
// a real exploration budget.
func FuzzEvalDecode(f *testing.F) {
	for _, seed := range evalFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, ops, err := parseEvalRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := validateEvalShape(&req); err != nil {
			t.Fatalf("accepted envelope fails shape validation: %v", err)
		}
		var blobs [][]byte
		switch req.Kind {
		case EvalKindGate:
			blobs = req.A
			if len(ops.b) != len(req.B) {
				t.Fatalf("decoded %d b-operands from %d blobs", len(ops.b), len(req.B))
			}
			for i, ct := range ops.b {
				if again := wire.MarshalLWE(ct); !bytes.Equal(again, req.B[i]) {
					t.Fatalf("accepted non-canonical b-operand %d", i)
				}
			}
		case EvalKindLUT, EvalKindMultiLUT:
			blobs = req.Cts
		case EvalKindCircuit, EvalKindInfer:
			blobs = req.Inputs
		default:
			t.Fatalf("accepted unknown kind %q", req.Kind)
		}
		if len(ops.a) != len(blobs) {
			t.Fatalf("decoded %d ciphertexts from %d blobs", len(ops.a), len(blobs))
		}
		for i, ct := range ops.a {
			if again := wire.MarshalLWE(ct); !bytes.Equal(again, blobs[i]) {
				t.Fatalf("accepted non-canonical ciphertext %d", i)
			}
		}
	})
}

// evalFuzzSeeds returns one valid envelope per kind plus cheap structural
// mutations (the committed corpus under testdata/fuzz extends these).
func evalFuzzSeeds() [][]byte {
	rng := rand.New(rand.NewSource(7))
	sk, _ := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	cts := [][]byte{
		wire.MarshalLWE(sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(1, 4), tfhe.ParamsTest.LWEStdDev)),
		wire.MarshalLWE(sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(3, 4), tfhe.ParamsTest.LWEStdDev)),
	}
	mustJSON := func(req EvalRequest) []byte {
		data, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		return data
	}
	gate := mustJSON(EvalRequest{ClientID: "fuzz", Kind: EvalKindGate, Op: "NAND", A: cts[:1], B: cts[1:]})
	lut := mustJSON(EvalRequest{ClientID: "fuzz", Kind: EvalKindLUT, Space: 4, Table: []int{0, 1, 2, 3}, Cts: cts})
	multilut := mustJSON(EvalRequest{
		ClientID: "fuzz", Kind: EvalKindMultiLUT,
		Space: 4, Tables: [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}, Cts: cts,
	})
	circuit := mustJSON(EvalRequest{
		ClientID: "fuzz", Kind: EvalKindCircuit,
		Nodes: []sched.NodeSpec{
			{Kind: sched.SpecInput}, {Kind: sched.SpecInput},
			{Kind: sched.SpecGate, Op: "NAND", A: 0, B: 1},
		},
		Outputs: []int{2},
		Inputs:  cts,
		Opts:    EvalOpts{Optimize: true},
	})
	infer := mustJSON(EvalRequest{
		ClientID: "fuzz", Kind: EvalKindInfer,
		Inputs: cts,
		Opts:   EvalOpts{Optimize: true},
	})
	seeds := [][]byte{
		gate, lut, multilut, circuit, infer,
		[]byte(`{}`),
		[]byte(`{"client_id":"x","kind":"gate","op":"NOT","a":[]}`),
		[]byte(`{"client_id":"x","kind":"lut","space":-1,"table":null,"cts":["AAAA"]}`),
		[]byte(`{"client_id":"x","kind":"gate","space":4}`),
		[]byte(`{"client_id":"x","kind":"lut","opts":{"optimize":true}}`),
		[]byte(`{"client_id":"x","kind":"nonsense"}`),
		[]byte(`{"unknown_field":1}`),
		[]byte(`not json at all`),
		{},
		gate[:len(gate)/2],
		append(bytes.Clone(multilut), '}'),
	}
	if i := bytes.IndexByte(circuit, '"'); i >= 0 {
		c := bytes.Clone(circuit)
		c[i] = '\''
		seeds = append(seeds, c)
	}
	return seeds
}
