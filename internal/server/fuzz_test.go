package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/tfhe"
	"repro/internal/wire"
)

// FuzzMultiLUTBatchDecode pins the multilut-batch request decoder's
// contract: it never panics on arbitrary bytes (the body is
// attacker-controlled), and any ciphertext it accepts is canonical under
// the wire codec. Plain `go test` replays the f.Add seeds plus the
// committed corpus under testdata/fuzz/ in regression mode; the nightly
// workflow gives it a real exploration budget.
func FuzzMultiLUTBatchDecode(f *testing.F) {
	for _, seed := range multiLUTFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, cts, err := parseMultiLUTBatchRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(cts) != len(req.Cts) {
			t.Fatalf("decoded %d ciphertexts from %d blobs", len(cts), len(req.Cts))
		}
		for i, ct := range cts {
			if again := wire.MarshalLWE(ct); !bytes.Equal(again, req.Cts[i]) {
				t.Fatalf("accepted non-canonical ciphertext %d", i)
			}
		}
	})
}

// multiLUTFuzzSeeds returns valid request encodings plus cheap structural
// mutations (the committed corpus under testdata/fuzz extends these).
func multiLUTFuzzSeeds() [][]byte {
	rng := rand.New(rand.NewSource(7))
	sk, _ := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	cts := [][]byte{
		wire.MarshalLWE(sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(1, 4), tfhe.ParamsTest.LWEStdDev)),
		wire.MarshalLWE(sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(3, 4), tfhe.ParamsTest.LWEStdDev)),
	}
	valid, err := json.Marshal(MultiLUTBatchRequest{
		ClientID: "fuzz",
		Space:    4,
		Tables:   [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}},
		Cts:      cts,
	})
	if err != nil {
		panic(err)
	}
	seeds := [][]byte{
		valid,
		[]byte(`{}`),
		[]byte(`{"client_id":"x","space":4,"tables":[[0,1,2,3]],"cts":[]}`),
		[]byte(`{"client_id":"x","space":-1,"tables":null,"cts":["AAAA"]}`),
		[]byte(`{"unknown_field":1}`),
		[]byte(`not json at all`),
		{},
		valid[:len(valid)/2],
		append(bytes.Clone(valid), '}'),
	}
	if i := bytes.IndexByte(valid, '"'); i >= 0 {
		c := bytes.Clone(valid)
		c[i] = '\''
		seeds = append(seeds, c)
	}
	return seeds
}
