package server

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/wire"
)

// Config tunes the gate service.
type Config struct {
	// MaxSessions bounds how many client sessions (eval keys + engines)
	// are cached in the warm tier; the least-recently-used session is
	// evicted beyond it. With a Store, eviction is transparent — the next
	// request restores the session from persisted key material. 0 means 64.
	MaxSessions int
	// MaxPending is the per-session backpressure bound: at most this many
	// requests may be queued or in flight per session; further requests
	// wait up to QueueTimeout for the backlog to drain, then are refused
	// with ErrOverloaded. 0 means 64.
	MaxPending int
	// MaxBatch caps the ciphertext count of a single request. 0 means 4096.
	MaxBatch int
	// MaxCoalesce caps how many ciphertexts are merged into one engine
	// stream. 0 means 8192.
	MaxCoalesce int
	// MaxCircuitNodes caps the node count of a circuit-batch request.
	// 0 means 4096.
	MaxCircuitNodes int
	// QueueTimeout bounds how long a request may wait for a session slot
	// before being refused with ErrOverloaded (HTTP 503, code
	// "overloaded") — the signal well-behaved clients back off on.
	// 0 means 60s; negative means wait indefinitely.
	QueueTimeout time.Duration
	// Store is the durable tier behind the warm session LRU: registered
	// eval keys are written through to it and evicted or restarted
	// sessions are restored from it on demand. nil means no persistence
	// (sessions live and die with the warm tier, the pre-store behavior).
	Store SessionStore
	// DataDir, when non-empty and Store is nil, makes Open put a
	// DiskStore at this directory. New (which cannot fail) rejects a
	// non-empty DataDir — use Open.
	DataDir string
	// Stream configures each session's streaming engine stage widths.
	Stream engine.StreamConfig
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 8192
	}
	if c.MaxCircuitNodes <= 0 {
		c.MaxCircuitNodes = 4096
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = time.Minute
	}
	return c
}

// MaxClientIDBytes bounds a client ID. IDs are keys in the session map,
// the WAL, and on-disk manifests; a megabyte "ID" is hostile input, not
// a name.
const MaxClientIDBytes = 256

// Service errors. ErrUnknownSession means no session — warm or persisted
// — exists for the client ID; ErrSessionEvicted (errors.go) narrows that
// to "the warm tier dropped it and no store can bring it back".
var (
	ErrUnknownSession = errors.New("server: unknown session: register an eval key first")
	ErrBatchTooLarge  = errors.New("server: request exceeds the batch size limit")
	ErrEmptyClientID  = errors.New("server: client id must be non-empty")
)

// Server is the session-sharded gate service. All methods are safe for
// concurrent use.
type Server struct {
	cfg   Config
	store SessionStore // nil when running without persistence

	mu        sync.Mutex
	sessions  map[string]*session
	lru       *list.List               // of *session; front = most recently used
	loading   map[string]chan struct{} // in-flight store restores, by ID
	evicted   *evictSet
	evictions atomic.Int64
	restores  atomic.Int64

	// draining flips once, under drainMu, so begin's check-then-Add is
	// race-free against Drain's flip-then-Wait.
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a gate service. cfg.DataDir must be empty (New cannot open
// a disk store because it cannot fail) — use Open for that, or pass an
// already-open store in cfg.Store.
func New(cfg Config) *Server {
	if cfg.DataDir != "" && cfg.Store == nil {
		panic("server: Config.DataDir requires server.Open")
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		store:    cfg.Store,
		sessions: make(map[string]*session),
		lru:      list.New(),
		loading:  make(map[string]chan struct{}),
		evicted:  newEvictSet(4 * cfg.MaxSessions),
	}
}

// Open builds a gate service with durability: when cfg.Store is nil and
// cfg.DataDir is set, it opens (creating or crash-recovering) a DiskStore
// there. Previously persisted sessions are immediately servable — the
// first request for one restores it into the warm tier.
func Open(cfg Config) (*Server, error) {
	if cfg.Store == nil && cfg.DataDir != "" {
		store, err := OpenDiskStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		cfg.Store = store
	}
	cfg.DataDir = ""
	return New(cfg), nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Store returns the durable tier, or nil when running without one.
func (s *Server) Store() SessionStore { return s.store }

// begin admits one request unless the server is draining; every admitted
// request must call end. The read lock pairs with Drain's write lock so
// the draining check and the in-flight count move together.
func (s *Server) begin() error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return ErrShuttingDown
	}
	s.inflight.Add(1)
	return nil
}

// end retires one admitted request.
func (s *Server) end() { s.inflight.Done() }

// Draining reports whether Drain has been called — the readiness signal
// behind /v1/healthz.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: new requests (including ones
// arriving mid-drain) are refused with ErrShuttingDown, every admitted
// request — and thus every open group-commit stream — runs to
// completion, and then the session store is flushed and closed. Drain is
// idempotent and safe to call concurrently; it returns once the server
// is quiesced and durable.
func (s *Server) Drain() error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	s.inflight.Wait()
	if s.store == nil {
		return nil
	}
	if err := s.store.Close(); err != nil {
		return fmt.Errorf("%w: %v", errStoreFailure, err)
	}
	return nil
}

// validateClientID rejects empty and absurdly long IDs.
func validateClientID(clientID string) error {
	if clientID == "" {
		return ErrEmptyClientID
	}
	if len(clientID) > MaxClientIDBytes {
		return fmt.Errorf("server: client id is %d bytes, max %d", len(clientID), MaxClientIDBytes)
	}
	return nil
}

// RegisterKey creates (or replaces) the session for clientID from its
// evaluation keys. The keys are validated structurally before any engine
// is built — they typically arrive from an untrusted network peer. With a
// Store, the wire encoding of the keys is made durable before the session
// becomes visible, so a crash after a successful RegisterKey never loses
// the registration.
func (s *Server) RegisterKey(clientID string, ek tfhe.EvaluationKeys) error {
	return s.register(clientID, ek, nil)
}

// RegisterKeyEncoded registers a wire-encoded evaluation key, reusing the
// encoded bytes for persistence instead of re-marshaling — the path the
// HTTP handler takes, since clients upload the encoding. Returns the
// decoded parameter set for the acknowledgment.
func (s *Server) RegisterKeyEncoded(clientID string, blob []byte) (tfhe.Params, error) {
	ek, err := wire.UnmarshalEvalKey(blob)
	if err != nil {
		return tfhe.Params{}, fmt.Errorf("server: bad eval key: %w", err)
	}
	return ek.Params, s.register(clientID, ek, blob)
}

// register is the shared registration path. blob, when non-nil, is the
// wire encoding of ek (trusted to match because RegisterKeyEncoded just
// decoded ek from it).
func (s *Server) register(clientID string, ek tfhe.EvaluationKeys, blob []byte) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	if err := validateClientID(clientID); err != nil {
		return err
	}
	if err := ek.Validate(); err != nil {
		return fmt.Errorf("server: rejecting eval key for %q: %w", clientID, err)
	}
	if s.store != nil {
		if blob == nil {
			var err error
			blob, err = wire.MarshalEvalKey(ek)
			if err != nil {
				return fmt.Errorf("server: encoding eval key for %q: %w", clientID, err)
			}
		}
		// Durable-first: the WAL record commits before the session is
		// visible, so no acknowledged registration can be lost.
		if err := s.store.Put(clientID, ek.Params, blob); err != nil {
			return fmt.Errorf("%w: persisting key for %q: %v", errStoreFailure, clientID, err)
		}
	}
	// Build the engine outside the lock: key material is large and engine
	// construction allocates per-worker evaluators.
	sess := newSession(clientID, ek, s.cfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.sessions[clientID]; ok {
		s.lru.Remove(old.elem)
	}
	s.evicted.remove(clientID)
	s.install(sess)
	return nil
}

// install adds a built session to the warm tier and applies the LRU
// bound. Called with mu held.
func (s *Server) install(sess *session) {
	sess.elem = s.lru.PushFront(sess)
	s.sessions[sess.id] = sess
	for len(s.sessions) > s.cfg.MaxSessions {
		oldest := s.lru.Back()
		victim := oldest.Value.(*session)
		s.lru.Remove(oldest)
		delete(s.sessions, victim.id)
		s.evictions.Add(1)
		if s.store == nil {
			// Without a durable tier the key material is gone; remember
			// the ID so the client gets session_evicted, not the generic
			// unknown_session, and knows a re-upload is needed.
			s.evicted.add(victim.id)
		}
	}
}

// session looks up and LRU-touches a session, restoring it from the
// durable tier on a warm miss. Concurrent misses for one ID share a
// single restore (the key decode + engine build is expensive).
func (s *Server) session(clientID string) (*session, error) {
	for {
		s.mu.Lock()
		if sess, ok := s.sessions[clientID]; ok {
			s.lru.MoveToFront(sess.elem)
			s.mu.Unlock()
			return sess, nil
		}
		if s.store == nil {
			wasEvicted := s.evicted.has(clientID)
			s.mu.Unlock()
			if wasEvicted {
				return nil, ErrSessionEvicted
			}
			return nil, ErrUnknownSession
		}
		if ch, ok := s.loading[clientID]; ok {
			// Another request is restoring this session: wait for it,
			// then re-check the warm tier.
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.loading[clientID] = ch
		s.mu.Unlock()

		sess, err := s.restore(clientID)
		s.mu.Lock()
		delete(s.loading, clientID)
		close(ch)
		if sess != nil {
			s.install(sess)
		}
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return sess, nil
	}
}

// restore rebuilds a session from its persisted key material: disk read,
// checksum verify, wire decode (which re-validates the key), engine
// build. The restored session computes on byte-identical key material,
// so its gate results are bitwise identical to the pre-restart session's.
func (s *Server) restore(clientID string) (*session, error) {
	blob, err := s.store.Get(clientID)
	if errors.Is(err, ErrNotPersisted) {
		return nil, ErrUnknownSession
	}
	if err != nil {
		return nil, fmt.Errorf("%w: restoring %q: %v", errStoreFailure, clientID, err)
	}
	ek, err := wire.UnmarshalEvalKey(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: persisted key for %q does not decode: %v", errStoreFailure, clientID, err)
	}
	s.restores.Add(1)
	return newSession(clientID, ek, s.cfg), nil
}

// DeleteSession explicitly evicts clientID everywhere: the warm session
// is dropped (in-flight work on it still completes) and the durable tier
// records a tombstone. It reports which tiers held the session; when
// neither did, the error is ErrUnknownSession.
func (s *Server) DeleteSession(clientID string) (warm, persisted bool, err error) {
	if err := s.begin(); err != nil {
		return false, false, err
	}
	defer s.end()
	if err := validateClientID(clientID); err != nil {
		return false, false, err
	}
	s.mu.Lock()
	sess, ok := s.sessions[clientID]
	if ok {
		warm = true
		s.lru.Remove(sess.elem)
		delete(s.sessions, clientID)
	}
	// A deleted session is forgotten, not evicted: later requests get
	// unknown_session.
	s.evicted.remove(clientID)
	s.mu.Unlock()
	if s.store != nil {
		persisted, err = s.store.Delete(clientID)
		if err != nil {
			return warm, false, fmt.Errorf("%w: deleting %q: %v", errStoreFailure, clientID, err)
		}
	}
	if !warm && !persisted {
		return false, false, ErrUnknownSession
	}
	return warm, persisted, nil
}

// Sessions returns the warm-tier client IDs, most recently used first.
func (s *Server) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		ids = append(ids, e.Value.(*session).id)
	}
	return ids
}

// SessionInfo is one row of the session listing: identity, key size, and
// which tiers (warm engine cache, durable store) hold the session.
type SessionInfo struct {
	ID        string `json:"id"`
	Params    string `json:"params"`
	KeyBytes  int64  `json:"key_bytes"`
	Warm      bool   `json:"warm"`
	Persisted bool   `json:"persisted"`
}

// SessionList lists every live session across both tiers: warm sessions
// first (most recently used first), then store-only sessions sorted by
// ID. Key sizes are the exact wire-encoded evaluation-key sizes.
func (s *Server) SessionList() []SessionInfo {
	persisted := map[string]StoreEntry{}
	if s.store != nil {
		for _, e := range s.store.List() {
			persisted[e.ClientID] = e
		}
	}
	s.mu.Lock()
	infos := make([]SessionInfo, 0, s.lru.Len()+len(persisted))
	for e := s.lru.Front(); e != nil; e = e.Next() {
		sess := e.Value.(*session)
		info := SessionInfo{ID: sess.id, Params: sess.params.Name, Warm: true}
		if pe, ok := persisted[sess.id]; ok {
			info.Persisted = true
			info.KeyBytes = pe.KeyBytes
			delete(persisted, sess.id)
		} else if n, ok := wire.EvalKeySize(sess.params); ok {
			info.KeyBytes = n
		}
		infos = append(infos, info)
	}
	s.mu.Unlock()
	cold := make([]SessionInfo, 0, len(persisted))
	for _, pe := range persisted {
		cold = append(cold, SessionInfo{ID: pe.ClientID, Params: pe.Params, KeyBytes: pe.KeyBytes, Persisted: true})
	}
	sortSessionInfos(cold)
	return append(infos, cold...)
}

// sortSessionInfos orders rows by ID.
func sortSessionInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// Evictions returns how many sessions the warm-tier LRU bound has evicted.
func (s *Server) Evictions() int64 { return s.evictions.Load() }

// Restores returns how many sessions were rebuilt from the durable tier.
func (s *Server) Restores() int64 { return s.restores.Load() }

// GateBatch evaluates out[i] = op(a[i], b[i]) on clientID's session. For
// the unary NOT, b must be nil. Concurrent calls for the same session and
// op may be coalesced into one engine stream.
func (s *Server) GateBatch(clientID string, op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	if err := sess.validateGate(op, a, b, s.cfg.MaxBatch); err != nil {
		return nil, err
	}
	if len(a) == 0 {
		return nil, nil
	}
	eng := sess.eng
	return sess.submit("g:"+op.String(), a, b, 1, func(ga, gb []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		if op == engine.NOT {
			return eng.StreamGate(op, ga, nil)
		}
		return eng.StreamGate(op, ga, gb)
	})
}

// LUTBatch applies the lookup table (length space, entries in
// {0..space-1}) to every ciphertext on clientID's session via PBS +
// keyswitch. Concurrent calls with an identical table may be coalesced
// into one engine stream.
func (s *Server) LUTBatch(clientID string, cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	if err := sess.validateLUT(cts, space, table, s.cfg.MaxBatch); err != nil {
		return nil, err
	}
	if len(cts) == 0 {
		return nil, nil
	}
	eng := sess.eng
	return sess.submit(lutKey(space, table), cts, nil, 1, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return eng.StreamLUT(ga, space, func(m int) int { return table[m] }), nil
	})
}

// lutKey is the coalescing key of a LUT request: streams merge only when
// the whole table is identical.
func lutKey(space int, table []int) string {
	return fmt.Sprintf("l:%d:%v", space, table)
}

// multiLUTKey is the coalescing key of a multi-value LUT request: streams
// merge only when the whole table list is identical, so every request of
// a group shares one packed test vector and fan-out k.
func multiLUTKey(space int, tables [][]int) string {
	return fmt.Sprintf("m:%d:%v", space, tables)
}

// runMultiLUT streams one coalesced multi-value batch and flattens the
// per-input output groups input-major, the layout submit scatters.
func runMultiLUT(eng *engine.StreamingEngine, cts []tfhe.LWECiphertext, space int, tables [][]int) ([]tfhe.LWECiphertext, error) {
	groups, err := eng.StreamMultiLUT(cts, space, tfhe.TableFuncs(tables))
	if err != nil {
		return nil, err
	}
	flat := make([]tfhe.LWECiphertext, 0, len(cts)*len(tables))
	for _, outs := range groups {
		flat = append(flat, outs...)
	}
	return flat, nil
}

// regroup splits a flat input-major output slice back into k outputs per
// input.
func regroup(flat []tfhe.LWECiphertext, k int) [][]tfhe.LWECiphertext {
	out := make([][]tfhe.LWECiphertext, len(flat)/k)
	for g := range out {
		out[g] = flat[g*k : (g+1)*k : (g+1)*k]
	}
	return out
}

// MultiLUTBatch applies the k lookup tables (each length space, entries
// in {0..space-1}) to every ciphertext on clientID's session via
// multi-value PBS: one blind rotation per input ciphertext serves all k
// tables, and out[i][j] is table j applied to cts[i]. Concurrent calls
// with an identical table list — the scheduler's fan-out shape — may be
// coalesced into one engine stream.
func (s *Server) MultiLUTBatch(clientID string, cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	if err := sess.validateMultiLUT(cts, space, tables, s.cfg.MaxBatch); err != nil {
		return nil, err
	}
	if len(cts) == 0 {
		return nil, nil
	}
	eng := sess.eng
	k := len(tables)
	flat, err := sess.submit(multiLUTKey(space, tables), cts, nil, k, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return runMultiLUT(eng, ga, space, tables)
	})
	if err != nil {
		return nil, err
	}
	return regroup(flat, k), nil
}

// CircuitBatch compiles a levelized schedule for the circuit described by
// specs/outputs and executes it on clientID's session. Every level
// dispatch (one gate op, or one exact lookup table, across the whole
// level) goes through the session's group-commit path, so concurrent
// circuits — and plain gate/LUT batches — coalesce into shared engine
// streams whenever their dispatch keys match.
func (s *Server) CircuitBatch(clientID string, specs []sched.NodeSpec, outputs []int, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return s.circuitBatch(clientID, specs, outputs, inputs, false)
}

// CircuitBatchOptimized is CircuitBatch with the scheduler's optimizer
// pass pipeline enabled: the circuit is rewritten (CSE, pruning, linear
// folding, bootstrap fusion, multi-value packing bounded by the
// session's parameter set) before levelization. Outputs decode
// identically to CircuitBatch's but are not bitwise identical.
func (s *Server) CircuitBatchOptimized(clientID string, specs []sched.NodeSpec, outputs []int, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	return s.circuitBatch(clientID, specs, outputs, inputs, true)
}

// circuitBatch is the shared circuit-batch path; optimize selects the
// optimizer pass pipeline.
func (s *Server) circuitBatch(clientID string, specs []sched.NodeSpec, outputs []int, inputs []tfhe.LWECiphertext, optimize bool) ([]tfhe.LWECiphertext, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	circ, schedule, err := sess.validateCircuit(specs, outputs, inputs, s.cfg, optimize)
	if err != nil {
		return nil, err
	}
	return sched.Execute(circ, schedule, inputs, sessionExecutor{sess})
}

// sessionExecutor dispatches schedule levels through the session's
// coalescing submit path. Dispatch keys match GateBatch/LUTBatch keys, so
// circuit levels and standalone batches share streams.
type sessionExecutor struct {
	sess *session
}

// Gate implements sched.Executor over the session.
func (x sessionExecutor) Gate(d sched.Dispatch, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	eng := x.sess.eng
	return x.sess.submit("g:"+d.Op.String(), a, b, 1, func(ga, gb []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return eng.StreamGate(d.Op, ga, gb)
	})
}

// LUT implements sched.Executor over the session.
func (x sessionExecutor) LUT(d sched.Dispatch, in []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	eng := x.sess.eng
	table := d.Table
	return x.sess.submit(lutKey(d.Space, d.Table), in, nil, 1, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return eng.StreamLUT(ga, d.Space, func(m int) int { return table[m] }), nil
	})
}

// MultiLUT implements sched.Executor over the session: multi-value
// circuit dispatches share coalescing keys with standalone multilut-batch
// traffic, so scheduler fan-out and direct requests merge into the same
// packed streams.
func (x sessionExecutor) MultiLUT(d sched.Dispatch, in []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	eng := x.sess.eng
	k := len(d.Tables)
	flat, err := x.sess.submit(multiLUTKey(d.Space, d.Tables), in, nil, k, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return runMultiLUT(eng, ga, d.Space, d.Tables)
	})
	if err != nil {
		return nil, err
	}
	return regroup(flat, k), nil
}

// SessionStats is one session's metrics snapshot.
type SessionStats struct {
	ID        string          `json:"id"`
	Params    string          `json:"params"`
	Requests  int64           `json:"requests"`  // completed submit calls
	Items     int64           `json:"items"`     // ciphertexts processed
	Streams   int64           `json:"streams"`   // engine streams executed
	Coalesced int64           `json:"coalesced"` // requests that shared a stream
	Rejected  int64           `json:"rejected"`  // requests refused by validation or overload
	Pending   int             `json:"pending"`   // requests currently queued or in flight
	Counters  tfhe.OpCounters `json:"counters"`  // engine op mix as of the last completed stream
}

// Stats is the whole service's metrics snapshot.
type Stats struct {
	MaxSessions int            `json:"max_sessions"`
	Evictions   int64          `json:"evictions"`
	Restores    int64          `json:"restores"`  // sessions rebuilt from the durable tier
	Persisted   int            `json:"persisted"` // sessions in the durable tier
	Draining    bool           `json:"draining"`
	Sessions    []SessionStats `json:"sessions"` // most recently used first
}

// Stats snapshots per-session metrics, most recently used first.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	sessions := make([]*session, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		sessions = append(sessions, e.Value.(*session))
	}
	s.mu.Unlock()

	st := Stats{
		MaxSessions: s.cfg.MaxSessions,
		Evictions:   s.evictions.Load(),
		Restores:    s.restores.Load(),
		Draining:    s.draining.Load(),
	}
	if s.store != nil {
		st.Persisted = len(s.store.List())
	}
	for _, sess := range sessions {
		st.Sessions = append(st.Sessions, sess.statsSnapshot())
	}
	return st
}

// evictSet remembers the most recently evicted session IDs (bounded
// FIFO), so a storeless server can answer "you were evicted, re-upload"
// instead of the generic unknown-session error. The bound keeps a
// hostile churn of registrations from growing server memory.
type evictSet struct {
	cap  int
	ids  map[string]struct{}
	fifo []string
}

// newEvictSet returns an empty set remembering at most cap IDs (min 64).
func newEvictSet(cap int) *evictSet {
	if cap < 64 {
		cap = 64
	}
	return &evictSet{cap: cap, ids: make(map[string]struct{})}
}

// add remembers an evicted ID, forgetting the oldest beyond capacity.
func (e *evictSet) add(id string) {
	if _, ok := e.ids[id]; ok {
		return
	}
	for len(e.fifo) >= e.cap {
		oldest := e.fifo[0]
		e.fifo = e.fifo[1:]
		delete(e.ids, oldest)
	}
	e.ids[id] = struct{}{}
	e.fifo = append(e.fifo, id)
}

// remove forgets an ID (it was re-registered or explicitly deleted).
func (e *evictSet) remove(id string) {
	if _, ok := e.ids[id]; !ok {
		return
	}
	delete(e.ids, id)
	for i, v := range e.fifo {
		if v == id {
			e.fifo = append(e.fifo[:i], e.fifo[i+1:]...)
			break
		}
	}
}

// has reports whether an ID was recently evicted.
func (e *evictSet) has(id string) bool {
	_, ok := e.ids[id]
	return ok
}
