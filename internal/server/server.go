package server

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

// Config tunes the gate service.
type Config struct {
	// MaxSessions bounds how many client sessions (eval keys + engines)
	// are cached; the least-recently-used session is evicted beyond it.
	// 0 means 64.
	MaxSessions int
	// MaxPending is the per-session backpressure bound: at most this many
	// requests may be queued or in flight per session; further requests
	// block until the backlog drains. 0 means 64.
	MaxPending int
	// MaxBatch caps the ciphertext count of a single request. 0 means 4096.
	MaxBatch int
	// MaxCoalesce caps how many ciphertexts are merged into one engine
	// stream. 0 means 8192.
	MaxCoalesce int
	// MaxCircuitNodes caps the node count of a circuit-batch request.
	// 0 means 4096.
	MaxCircuitNodes int
	// Stream configures each session's streaming engine stage widths.
	Stream engine.StreamConfig
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 8192
	}
	if c.MaxCircuitNodes <= 0 {
		c.MaxCircuitNodes = 4096
	}
	return c
}

// Service errors. ErrUnknownSession also covers sessions that were
// LRU-evicted: from the client's perspective both mean "register your eval
// key (again)".
var (
	ErrUnknownSession = errors.New("server: unknown session: register an eval key first")
	ErrBatchTooLarge  = errors.New("server: request exceeds the batch size limit")
	ErrEmptyClientID  = errors.New("server: client id must be non-empty")
)

// Server is the session-sharded gate service. All methods are safe for
// concurrent use.
type Server struct {
	cfg Config

	mu        sync.Mutex
	sessions  map[string]*session
	lru       *list.List // of *session; front = most recently used
	evictions atomic.Int64
}

// New builds a gate service.
func New(cfg Config) *Server {
	return &Server{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*session),
		lru:      list.New(),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// RegisterKey creates (or replaces) the session for clientID from its
// evaluation keys. The keys are validated structurally before any engine
// is built — they typically arrive from an untrusted network peer.
func (s *Server) RegisterKey(clientID string, ek tfhe.EvaluationKeys) error {
	if clientID == "" {
		return ErrEmptyClientID
	}
	if err := ek.Validate(); err != nil {
		return fmt.Errorf("server: rejecting eval key for %q: %w", clientID, err)
	}
	// Build the engine outside the lock: key material is large and engine
	// construction allocates per-worker evaluators.
	sess := newSession(clientID, ek, s.cfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.sessions[clientID]; ok {
		s.lru.Remove(old.elem)
	}
	sess.elem = s.lru.PushFront(sess)
	s.sessions[clientID] = sess
	for len(s.sessions) > s.cfg.MaxSessions {
		oldest := s.lru.Back()
		victim := oldest.Value.(*session)
		s.lru.Remove(oldest)
		delete(s.sessions, victim.id)
		s.evictions.Add(1)
	}
	return nil
}

// session looks up and LRU-touches a session.
func (s *Server) session(clientID string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[clientID]
	if !ok {
		return nil, ErrUnknownSession
	}
	s.lru.MoveToFront(sess.elem)
	return sess, nil
}

// Sessions returns the registered client IDs, most recently used first.
func (s *Server) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		ids = append(ids, e.Value.(*session).id)
	}
	return ids
}

// Evictions returns how many sessions the LRU bound has evicted.
func (s *Server) Evictions() int64 { return s.evictions.Load() }

// GateBatch evaluates out[i] = op(a[i], b[i]) on clientID's session. For
// the unary NOT, b must be nil. Concurrent calls for the same session and
// op may be coalesced into one engine stream.
func (s *Server) GateBatch(clientID string, op engine.GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	if err := sess.validateGate(op, a, b, s.cfg.MaxBatch); err != nil {
		return nil, err
	}
	if len(a) == 0 {
		return nil, nil
	}
	eng := sess.eng
	return sess.submit("g:"+op.String(), a, b, 1, func(ga, gb []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		if op == engine.NOT {
			return eng.StreamGate(op, ga, nil)
		}
		return eng.StreamGate(op, ga, gb)
	})
}

// LUTBatch applies the lookup table (length space, entries in
// {0..space-1}) to every ciphertext on clientID's session via PBS +
// keyswitch. Concurrent calls with an identical table may be coalesced
// into one engine stream.
func (s *Server) LUTBatch(clientID string, cts []tfhe.LWECiphertext, space int, table []int) ([]tfhe.LWECiphertext, error) {
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	if err := sess.validateLUT(cts, space, table, s.cfg.MaxBatch); err != nil {
		return nil, err
	}
	if len(cts) == 0 {
		return nil, nil
	}
	eng := sess.eng
	return sess.submit(lutKey(space, table), cts, nil, 1, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return eng.StreamLUT(ga, space, func(m int) int { return table[m] }), nil
	})
}

// lutKey is the coalescing key of a LUT request: streams merge only when
// the whole table is identical.
func lutKey(space int, table []int) string {
	return fmt.Sprintf("l:%d:%v", space, table)
}

// multiLUTKey is the coalescing key of a multi-value LUT request: streams
// merge only when the whole table list is identical, so every request of
// a group shares one packed test vector and fan-out k.
func multiLUTKey(space int, tables [][]int) string {
	return fmt.Sprintf("m:%d:%v", space, tables)
}

// runMultiLUT streams one coalesced multi-value batch and flattens the
// per-input output groups input-major, the layout submit scatters.
func runMultiLUT(eng *engine.StreamingEngine, cts []tfhe.LWECiphertext, space int, tables [][]int) ([]tfhe.LWECiphertext, error) {
	groups, err := eng.StreamMultiLUT(cts, space, tfhe.TableFuncs(tables))
	if err != nil {
		return nil, err
	}
	flat := make([]tfhe.LWECiphertext, 0, len(cts)*len(tables))
	for _, outs := range groups {
		flat = append(flat, outs...)
	}
	return flat, nil
}

// regroup splits a flat input-major output slice back into k outputs per
// input.
func regroup(flat []tfhe.LWECiphertext, k int) [][]tfhe.LWECiphertext {
	out := make([][]tfhe.LWECiphertext, len(flat)/k)
	for g := range out {
		out[g] = flat[g*k : (g+1)*k : (g+1)*k]
	}
	return out
}

// MultiLUTBatch applies the k lookup tables (each length space, entries
// in {0..space-1}) to every ciphertext on clientID's session via
// multi-value PBS: one blind rotation per input ciphertext serves all k
// tables, and out[i][j] is table j applied to cts[i]. Concurrent calls
// with an identical table list — the scheduler's fan-out shape — may be
// coalesced into one engine stream.
func (s *Server) MultiLUTBatch(clientID string, cts []tfhe.LWECiphertext, space int, tables [][]int) ([][]tfhe.LWECiphertext, error) {
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	if err := sess.validateMultiLUT(cts, space, tables, s.cfg.MaxBatch); err != nil {
		return nil, err
	}
	if len(cts) == 0 {
		return nil, nil
	}
	eng := sess.eng
	k := len(tables)
	flat, err := sess.submit(multiLUTKey(space, tables), cts, nil, k, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return runMultiLUT(eng, ga, space, tables)
	})
	if err != nil {
		return nil, err
	}
	return regroup(flat, k), nil
}

// CircuitBatch compiles a levelized schedule for the circuit described by
// specs/outputs and executes it on clientID's session. Every level
// dispatch (one gate op, or one exact lookup table, across the whole
// level) goes through the session's group-commit path, so concurrent
// circuits — and plain gate/LUT batches — coalesce into shared engine
// streams whenever their dispatch keys match.
func (s *Server) CircuitBatch(clientID string, specs []sched.NodeSpec, outputs []int, inputs []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	sess, err := s.session(clientID)
	if err != nil {
		return nil, err
	}
	circ, schedule, err := sess.validateCircuit(specs, outputs, inputs, s.cfg)
	if err != nil {
		return nil, err
	}
	return sched.Execute(circ, schedule, inputs, sessionExecutor{sess})
}

// sessionExecutor dispatches schedule levels through the session's
// coalescing submit path. Dispatch keys match GateBatch/LUTBatch keys, so
// circuit levels and standalone batches share streams.
type sessionExecutor struct {
	sess *session
}

// Gate implements sched.Executor over the session.
func (x sessionExecutor) Gate(d sched.Dispatch, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	eng := x.sess.eng
	return x.sess.submit("g:"+d.Op.String(), a, b, 1, func(ga, gb []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return eng.StreamGate(d.Op, ga, gb)
	})
}

// LUT implements sched.Executor over the session.
func (x sessionExecutor) LUT(d sched.Dispatch, in []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	eng := x.sess.eng
	table := d.Table
	return x.sess.submit(lutKey(d.Space, d.Table), in, nil, 1, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return eng.StreamLUT(ga, d.Space, func(m int) int { return table[m] }), nil
	})
}

// MultiLUT implements sched.Executor over the session: multi-value
// circuit dispatches share coalescing keys with standalone multilut-batch
// traffic, so scheduler fan-out and direct requests merge into the same
// packed streams.
func (x sessionExecutor) MultiLUT(d sched.Dispatch, in []tfhe.LWECiphertext) ([][]tfhe.LWECiphertext, error) {
	eng := x.sess.eng
	k := len(d.Tables)
	flat, err := x.sess.submit(multiLUTKey(d.Space, d.Tables), in, nil, k, func(ga, _ []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
		return runMultiLUT(eng, ga, d.Space, d.Tables)
	})
	if err != nil {
		return nil, err
	}
	return regroup(flat, k), nil
}

// SessionStats is one session's metrics snapshot.
type SessionStats struct {
	ID        string          `json:"id"`
	Params    string          `json:"params"`
	Requests  int64           `json:"requests"`  // completed submit calls
	Items     int64           `json:"items"`     // ciphertexts processed
	Streams   int64           `json:"streams"`   // engine streams executed
	Coalesced int64           `json:"coalesced"` // requests that shared a stream
	Rejected  int64           `json:"rejected"`  // requests refused by validation
	Pending   int             `json:"pending"`   // requests currently queued or in flight
	Counters  tfhe.OpCounters `json:"counters"`  // engine op mix as of the last completed stream
}

// Stats is the whole service's metrics snapshot.
type Stats struct {
	MaxSessions int            `json:"max_sessions"`
	Evictions   int64          `json:"evictions"`
	Sessions    []SessionStats `json:"sessions"` // most recently used first
}

// Stats snapshots per-session metrics, most recently used first.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	sessions := make([]*session, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		sessions = append(sessions, e.Value.(*session))
	}
	s.mu.Unlock()

	st := Stats{MaxSessions: s.cfg.MaxSessions, Evictions: s.evictions.Load()}
	for _, sess := range sessions {
		st.Sessions = append(st.Sessions, sess.statsSnapshot())
	}
	return st
}
