package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/intops"
	"repro/internal/sched"
	"repro/internal/tfhe"
)

// TestHTTPEndToEnd is the acceptance path of the service layer: a client
// registers its eval key over HTTP, evaluates a gate batch through the
// JSON-framed-binary API, and the results are bitwise identical to the
// in-process BatchGate path (hence decrypt to the same bits).
func TestHTTPEndToEnd(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := Dial(ts.URL, "alice")
	if client.ClientID() != "alice" {
		t.Fatalf("ClientID = %q", client.ClientID())
	}
	if err := client.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}

	bits := []bool{true, false, true, true, false, false}
	shift := append(bits[1:], bits[0])
	a := encryptBools(sk, 500, bits)
	b := encryptBools(sk, 600, shift)

	got, err := client.GateBatch(engine.NAND, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(ek, engine.Config{Workers: 2}).BatchGate(engine.NAND, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("HTTP gate batch differs from in-process BatchGate")
	}
	for i := range got {
		if dec := sk.DecryptBool(got[i]); dec != !(bits[i] && shift[i]) {
			t.Errorf("item %d decrypted %v, want %v", i, dec, !(bits[i] && shift[i]))
		}
	}

	// LUT batch over HTTP.
	table := []int{0, 1, 4, 1, 0, 1, 4, 1}
	rngMsgs := []int{2, 6, 3}
	lutIn := encryptInts(sk, 800, rngMsgs, 8)
	lut, err := client.LUTBatch(lutIn, 8, table)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range rngMsgs {
		if dec := decryptInt(sk, lut[i], 8); dec != table[m] {
			t.Errorf("LUT item %d: decrypted %d, want %d", i, dec, table[m])
		}
	}

	// Stats over HTTP.
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].ID != "alice" {
		t.Fatalf("stats sessions = %+v", st.Sessions)
	}
	if st.Sessions[0].Counters.PBSCount == 0 {
		t.Error("stats report zero PBS after gate batches")
	}
}

// TestHTTPConcurrentClients drives several HTTP clients in parallel — the
// -race check on the full network path.
func TestHTTPConcurrentClients(t *testing.T) {
	srv := New(Config{Stream: engine.StreamConfig{RotateWorkers: 2}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 3
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			sk, ek := testKeys(t, int64(10+ci))
			cl := Dial(ts.URL, "client-"+string(rune('a'+ci)))
			if err := cl.RegisterKey(ek); err != nil {
				errCh <- err
				return
			}
			bits := []bool{ci%2 == 0, true, false}
			a := encryptBools(sk, int64(900+ci), bits)
			b := encryptBools(sk, int64(950+ci), bits)
			out, err := cl.GateBatch(engine.XOR, a, b)
			if err != nil {
				errCh <- err
				return
			}
			for i := range out {
				if sk.DecryptBool(out[i]) != false { // x XOR x = false
					t.Errorf("client %d item %d: XOR(x,x) != false", ci, i)
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := len(srv.Sessions()); got != clients {
		t.Errorf("%d sessions registered, want %d", got, clients)
	}
}

// TestHTTPErrors exercises the HTTP error mapping: bad JSON, bad binary,
// unknown sessions, wrong method/path.
func TestHTTPErrors(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{MaxBatch: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("/v1/register-key", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/register-key", `{"client_id":"x","eval_key":"AAAA"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad eval key: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/gate-batch", `{"client_id":"ghost","op":"NAND","a":[],"b":[]}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
	if resp := post("/v1/gate-batch", `{"client_id":"x","op":"FROB","a":[],"b":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/gate-batch", `{"client_id":"x","op":"NAND","a":[],"b":[],"zzz":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// Oversized batch → 413 via the typed error mapping.
	cl := Dial(ts.URL, "alice")
	if err := cl.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}
	big := encryptBools(sk, 1, []bool{true, true, true})
	req := GateBatchRequest{ClientID: "alice", Op: "NAND", A: encodeCiphertexts(big), B: encodeCiphertexts(big)}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/gate-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}

	// Client-side error surfacing carries the server's message.
	if _, err := cl.GateBatch(engine.NAND, big, big); err == nil || !strings.Contains(err.Error(), "batch size limit") {
		t.Errorf("client error = %v, want batch size limit message", err)
	}

	// Method/path mismatches.
	if resp, err := http.Get(ts.URL + "/v1/gate-batch"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET gate-batch: status %d, want 405", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestHTTPCircuitBatch runs a whole intops addition DAG through the HTTP
// circuit endpoint and pins it to the sequential evaluator.
func TestHTTPCircuitBatch(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := Dial(ts.URL, "carol")
	if err := client.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}

	const digits = 3
	circ, err := intops.AddCircuit(digits)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(81))
	x, _ := intops.Encrypt(rng, sk, 27, digits)
	y, _ := intops.Encrypt(rng, sk, 45, digits)
	inputs := append(append([]tfhe.LWECiphertext{}, x.Digits...), y.Digits...)

	got, err := client.CircuitBatch(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.RunSequential(circ, tfhe.NewEvaluator(ek), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("HTTP circuit outputs differ from sequential evaluation")
	}
	if dec := intops.Decrypt(sk, intops.Int{Digits: got}); dec != (27+45)%64 {
		t.Errorf("decrypted sum = %d, want %d", dec, (27+45)%64)
	}

	// Malformed circuit over HTTP surfaces as a 400-class error.
	if _, err := client.CircuitBatch(circ, inputs[:2]); err == nil {
		t.Error("input count mismatch accepted over HTTP")
	}
}

// TestHTTPCircuitBatchOptimized runs the multiplication DAG through the
// circuit endpoint with the optimize flag: the server-side pass pipeline
// rewrites the circuit (fewer rotations than the naive schedule), and
// the outputs still decrypt to the right product. Bitwise equality with
// the unoptimized reply is explicitly NOT promised — fusion and packing
// re-synthesize bootstraps — so this test pins the decode contract.
func TestHTTPCircuitBatchOptimized(t *testing.T) {
	sk, ek := testKeys(t, 1)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := Dial(ts.URL, "opt")
	if err := client.RegisterKey(ek); err != nil {
		t.Fatal(err)
	}

	const digits = 2
	circ, err := intops.MulCircuit(digits)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(82))
	x, _ := intops.Encrypt(rng, sk, 13, digits)
	y, _ := intops.Encrypt(rng, sk, 9, digits)
	inputs := append(append([]tfhe.LWECiphertext{}, x.Digits...), y.Digits...)

	got, err := client.CircuitBatchOptimized(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if dec := intops.Decrypt(sk, intops.Int{Digits: got}); dec != (13*9)%16 {
		t.Errorf("optimized product = %d, want %d", dec, (13*9)%16)
	}
	// The unoptimized path still works side by side on the same session.
	plain, err := client.CircuitBatch(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if dec := intops.Decrypt(sk, intops.Int{Digits: plain}); dec != (13*9)%16 {
		t.Errorf("unoptimized product = %d, want %d", dec, (13*9)%16)
	}
}
