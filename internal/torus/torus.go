package torus

import (
	"math"
	"math/rand"
)

// Torus32 is an element of the discretized torus with 32 bits of precision.
// The represented real value is T/2^32 mod 1.
type Torus32 = uint32

// FromFloat converts a real number (any range; reduced mod 1) to Torus32.
func FromFloat(x float64) Torus32 {
	x -= math.Floor(x) // reduce to [0,1)
	// Round to the nearest multiple of 2^-32.
	return Torus32(uint64(math.Round(x * 4294967296.0)))
}

// ToFloat converts a Torus32 to its real representative in [0,1).
func ToFloat(t Torus32) float64 {
	return float64(t) / 4294967296.0
}

// ToSignedFloat converts a Torus32 to its centered representative in
// [-1/2, 1/2).
func ToSignedFloat(t Torus32) float64 {
	return float64(int32(t)) / 4294967296.0
}

// EncodeMessage encodes message m ∈ {0,...,space-1} onto the torus as
// m/space. space must be positive.
func EncodeMessage(m, space int) Torus32 {
	mm := ((m % space) + space) % space
	return Torus32((uint64(mm) << 32) / uint64(space))
}

// DecodeMessage decodes a torus element to the nearest message in
// {0,...,space-1}, inverting EncodeMessage under bounded noise.
func DecodeMessage(t Torus32, space int) int {
	// Multiply by space and round: m = round(t * space / 2^32) mod space.
	v := (uint64(t)*uint64(space) + (1 << 31)) >> 32
	return int(v) % space
}

// ModSwitch switches t from modulus 2^32 to modulus 2N, returning a value in
// [0, 2N). This is the first step of programmable bootstrapping
// (Algorithm 1, line 3). N must be a power of two.
func ModSwitch(t Torus32, twoN int) int {
	// round(t * 2N / 2^32)
	v := (uint64(t)*uint64(twoN) + (1 << 31)) >> 32
	return int(v) % twoN
}

// Gaussian32 draws a sample from a centered gaussian on the torus with
// standard deviation sigma (in torus units, i.e. fraction of 1) and adds it
// to mu. Sampling uses the supplied deterministic source so that tests and
// simulations are reproducible.
func Gaussian32(rng *rand.Rand, mu Torus32, sigma float64) Torus32 {
	e := rng.NormFloat64() * sigma
	return mu + int32ToTorus(e)
}

// int32ToTorus converts a small real offset (|e| < 1/2) to a signed torus
// increment.
func int32ToTorus(e float64) Torus32 {
	return Torus32(int32(math.Round(e * 4294967296.0)))
}

// Uniform32 draws a uniformly random torus element.
func Uniform32(rng *rand.Rand) Torus32 {
	return Torus32(rng.Uint32())
}

// ApproxEqual reports whether two torus elements are within eps (torus
// distance, accounting for wraparound).
func ApproxEqual(a, b Torus32, eps float64) bool {
	return Distance(a, b) <= eps
}

// Distance returns the torus distance |a-b| as a real in [0, 1/2].
func Distance(a, b Torus32) float64 {
	d := ToSignedFloat(a - b)
	return math.Abs(d)
}
