package torus

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromFloatToFloatRoundtrip(t *testing.T) {
	cases := []float64{0, 0.25, 0.5, 0.75, 0.124999, 0.999999}
	for _, x := range cases {
		got := ToFloat(FromFloat(x))
		if math.Abs(got-x) > 1e-9 {
			t.Errorf("roundtrip(%v) = %v", x, got)
		}
	}
}

func TestFromFloatReducesModOne(t *testing.T) {
	if FromFloat(1.25) != FromFloat(0.25) {
		t.Errorf("1.25 and 0.25 should map to the same torus point")
	}
	if FromFloat(-0.75) != FromFloat(0.25) {
		t.Errorf("-0.75 and 0.25 should map to the same torus point")
	}
}

func TestEncodeDecodeMessage(t *testing.T) {
	for _, space := range []int{2, 4, 8, 16, 1024} {
		for m := 0; m < space; m++ {
			if got := DecodeMessage(EncodeMessage(m, space), space); got != m {
				t.Fatalf("space %d: decode(encode(%d)) = %d", space, m, got)
			}
		}
	}
}

func TestEncodeNegativeMessage(t *testing.T) {
	if EncodeMessage(-1, 8) != EncodeMessage(7, 8) {
		t.Errorf("-1 mod 8 should encode as 7")
	}
}

func TestDecodeToleratesNoise(t *testing.T) {
	space := 4
	rng := rand.New(rand.NewSource(1))
	for m := 0; m < space; m++ {
		enc := EncodeMessage(m, space)
		for i := 0; i < 100; i++ {
			noisy := Gaussian32(rng, enc, 1.0/64.0)
			if got := DecodeMessage(noisy, space); got != m {
				t.Fatalf("m=%d decoded as %d with small noise", m, got)
			}
		}
	}
}

func TestModSwitch(t *testing.T) {
	twoN := 2048
	// 1/4 of the torus should land at 1/4 of 2N.
	if got := ModSwitch(FromFloat(0.25), twoN); got != twoN/4 {
		t.Errorf("ModSwitch(1/4) = %d, want %d", got, twoN/4)
	}
	if got := ModSwitch(0, twoN); got != 0 {
		t.Errorf("ModSwitch(0) = %d, want 0", got)
	}
}

func TestModSwitchRangeProperty(t *testing.T) {
	f := func(v uint32) bool {
		got := ModSwitch(v, 2048)
		return got >= 0 && got < 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModSwitchMonotoneOnGrid(t *testing.T) {
	// Exact multiples of 2^32/2N must map exactly.
	twoN := 2048
	step := uint64(1) << 32 / uint64(twoN)
	for i := 0; i < twoN; i++ {
		if got := ModSwitch(Torus32(uint64(i)*step), twoN); got != i {
			t.Fatalf("grid point %d mapped to %d", i, got)
		}
	}
}

func TestGaussianMeanAndSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sigma := 1.0 / 1024.0
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		e := ToSignedFloat(Gaussian32(rng, 0, sigma))
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq / float64(n))
	if math.Abs(mean) > 5*sigma/math.Sqrt(float64(n)) {
		t.Errorf("gaussian mean too far from 0: %v", mean)
	}
	if std < 0.9*sigma || std > 1.1*sigma {
		t.Errorf("gaussian std = %v, want ~%v", std, sigma)
	}
}

func TestDistanceWraparound(t *testing.T) {
	a := FromFloat(0.99)
	b := FromFloat(0.01)
	if d := Distance(a, b); math.Abs(d-0.02) > 1e-9 {
		t.Errorf("wraparound distance = %v, want 0.02", d)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(FromFloat(0.5), FromFloat(0.5001), 0.001) {
		t.Error("expected approx equal")
	}
	if ApproxEqual(FromFloat(0.5), FromFloat(0.6), 0.001) {
		t.Error("expected not approx equal")
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBoundedProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		d := Distance(a, b)
		return d >= 0 && d <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
