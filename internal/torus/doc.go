// Package torus implements arithmetic on the discretized torus T = R/Z,
// represented with 32-bit fixed point as used by the TFHE scheme.
//
// A Torus32 value t represents the real number t/2^32 ∈ [0,1). Addition and
// subtraction are the native wrapping uint32 operations; multiplication by a
// (small) integer is well defined, while multiplication of two torus elements
// is not (the torus is a Z-module, not a ring). This matches the data
// structures of the Strix paper (§II-D): LWE and GLWE coefficients are 32-bit
// integers interpreted on the torus.
package torus
