package engine

import (
	"math/rand"
	"testing"

	"repro/internal/tfhe"
)

// multiLUTSetup returns a deterministic key set plus PBS-encoded integer
// ciphertexts and their plaintexts.
func multiLUTSetup(t testing.TB, seed int64, batch, space int) (tfhe.SecretKeys, tfhe.EvaluationKeys, []tfhe.LWECiphertext, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	cts := make([]tfhe.LWECiphertext, batch)
	pts := make([]int, batch)
	for i := range cts {
		pts[i] = rng.Intn(space)
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(pts[i], space), tfhe.ParamsTest.LWEStdDev)
	}
	return sk, ek, cts, pts
}

// multiTables builds k distinct test tables over space.
func multiTables(space, k int) []func(int) int {
	fs := make([]func(int) int, k)
	for i := range fs {
		i := i
		fs[i] = func(m int) int { return (m*m + i) % space }
	}
	return fs
}

// TestBatchMultiLUTMatchesSequential: the worker pool must reproduce the
// sequential multi-value path bitwise for any worker count, and decode to
// the plaintext tables.
func TestBatchMultiLUTMatchesSequential(t *testing.T) {
	const space, k, batch = 4, 4, 10
	sk, ek, cts, pts := multiLUTSetup(t, 51, batch, space)
	fs := multiTables(space, k)

	ev := tfhe.NewEvaluator(ek)
	want := make([][]tfhe.LWECiphertext, batch)
	for i, ct := range cts {
		want[i] = ev.EvalMultiLUTKS(ct, space, fs)
	}

	for _, workers := range []int{1, 3, 8} {
		eng := New(ek, Config{Workers: workers, ChunkSize: 1})
		got, err := eng.BatchMultiLUT(cts, space, fs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if len(got[i]) != k {
				t.Fatalf("workers=%d: item %d has %d outputs, want %d", workers, i, len(got[i]), k)
			}
			for j := range got[i] {
				if !ctEqual(got[i][j], want[i][j]) {
					t.Fatalf("workers=%d: output [%d][%d] differs from sequential", workers, i, j)
				}
				if dec := tfhe.DecodePBSMessage(sk.LWE.Phase(got[i][j]), space); dec != fs[j](pts[i]) {
					t.Fatalf("workers=%d: output [%d][%d] decodes to %d, want %d", workers, i, j, dec, fs[j](pts[i]))
				}
			}
		}
	}
}

// TestStreamMultiLUTMatchesSequential: the staged pipeline must reproduce
// the sequential multi-value path bitwise for several stage widths.
func TestStreamMultiLUTMatchesSequential(t *testing.T) {
	const space, k, batch = 8, 2, 12
	_, ek, cts, _ := multiLUTSetup(t, 52, batch, space)
	fs := multiTables(space, k)

	ev := tfhe.NewEvaluator(ek)
	want := make([][]tfhe.LWECiphertext, batch)
	for i, ct := range cts {
		want[i] = ev.EvalMultiLUTKS(ct, space, fs)
	}

	for _, cfg := range []StreamConfig{
		{RotateWorkers: 1, KSWorkers: 1, Depth: 1},
		{RotateWorkers: 3, KSWorkers: 2, Depth: 2},
		{RotateWorkers: 8, KSWorkers: 3},
	} {
		s := NewStreaming(ek, cfg)
		got, err := s.StreamMultiLUT(cts, space, fs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			for j := range got[i] {
				if !ctEqual(got[i][j], want[i][j]) {
					t.Fatalf("rotate=%d ks=%d: output [%d][%d] differs from sequential", cfg.RotateWorkers, cfg.KSWorkers, i, j)
				}
			}
		}
	}
}

// TestMultiLUTSavesRotations pins the whole point: k outputs per item for
// one rotation each, versus k rotations on the per-output path.
func TestMultiLUTSavesRotations(t *testing.T) {
	const space, k, batch = 4, 4, 6
	_, ek, cts, _ := multiLUTSetup(t, 53, batch, space)
	fs := multiTables(space, k)

	eng := New(ek, Config{Workers: 2})
	if _, err := eng.BatchMultiLUT(cts, space, fs); err != nil {
		t.Fatal(err)
	}
	c := eng.Counters()
	if c.PBSCount != batch {
		t.Fatalf("multi-value batch of %d items ran %d rotations, want %d", batch, c.PBSCount, batch)
	}
	if c.MultiValueOuts != batch*k || c.KSCount != batch*k {
		t.Fatalf("want %d outputs and keyswitches, got %+v", batch*k, c)
	}
}

// TestMultiLUTValidation: both engines must reject un-packable requests
// and bad dimensions before any worker starts.
func TestMultiLUTValidation(t *testing.T) {
	_, ek, cts, _ := multiLUTSetup(t, 54, 2, 4)
	eng := New(ek, Config{Workers: 1})
	s := NewStreaming(ek, StreamConfig{RotateWorkers: 1})

	over := make([]func(int) int, tfhe.ParamsTest.N) // space·k > N
	for i := range over {
		over[i] = func(m int) int { return m }
	}
	if _, err := eng.BatchMultiLUT(cts, 2, over); err == nil {
		t.Fatal("BatchMultiLUT accepted space·k > N")
	}
	if _, err := s.StreamMultiLUT(cts, 2, over); err == nil {
		t.Fatal("StreamMultiLUT accepted space·k > N")
	}
	if _, err := eng.BatchMultiLUT(cts, 1, multiTables(4, 2)); err == nil {
		t.Fatal("BatchMultiLUT accepted space < 2")
	}

	bad := []tfhe.LWECiphertext{tfhe.NewLWECiphertext(tfhe.ParamsTest.SmallN + 1)}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("BatchMultiLUT accepted a wrong-dimension ciphertext")
			}
		}()
		_, _ = eng.BatchMultiLUT(bad, 4, multiTables(4, 2))
	}()
}

// TestStreamMultiLUTEmpty: a zero-length stream completes and returns an
// empty result.
func TestStreamMultiLUTEmpty(t *testing.T) {
	_, ek, _, _ := multiLUTSetup(t, 55, 1, 4)
	s := NewStreaming(ek, StreamConfig{RotateWorkers: 1})
	out, err := s.StreamMultiLUT(nil, 4, multiTables(4, 2))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty stream: out=%v err=%v", out, err)
	}
}
