package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/tfhe"
)

// StreamingEngine is the software mirror of the Strix streaming
// architecture (§IV): instead of assigning one worker a whole PBS (the
// flat Engine), ciphertexts flow through a channel-connected pipeline of
// specialized stages,
//
//	prepare (linear op + modswitch + init rotation)
//	  → blind rotate (n CMux steps; the dominant stage, a worker pool)
//	  → sample extract
//	  → keyswitch (fused §IV-C handoff, a worker pool)
//
// with two levels of batching. Level 1 batches across ciphertexts: every
// stage works on a different ciphertext at the same time, and stage setup
// (the encoded test vector or LUT, built once in prepare) is shared by the
// whole stream. Level 2 batches within a stage: each CMux step streams
// all (k+1)·lb digit polynomials of the step through fused decompose→FFT
// bursts — digit extraction writes twisted Fourier points directly, with
// no intermediate digit staging (see tfhe.ExternalProductAcc and
// fft.Processor.ForwardDecompose). The PBS→KS handoff is fused into the
// pipeline, so extraction output never round-trips through the caller.
//
// Every stage runs the exact computation of the sequential
// tfhe.Evaluator's corresponding step, in the same per-ciphertext order,
// so results are bitwise identical to sequential evaluation for any stage
// or worker configuration.
type StreamingEngine struct {
	mu     sync.Mutex
	params tfhe.Params

	prep   *tfhe.Evaluator   // prepare-stage evaluator
	rot    []*tfhe.Evaluator // blind-rotate stage worker pool
	ext    *tfhe.Evaluator   // sample-extract stage evaluator
	ks     []*tfhe.Evaluator // keyswitch stage worker pool
	signTV tfhe.GLWECiphertext

	depth   int
	streams int64 // completed stream calls, for diagnostics
}

// StreamConfig tunes the streaming pipeline's stage widths.
type StreamConfig struct {
	// RotateWorkers is the worker count of the blind-rotate stage, the
	// pipeline's dominant stage. 0 means runtime.NumCPU().
	RotateWorkers int
	// KSWorkers is the worker count of the keyswitch stage. 0 picks
	// max(1, RotateWorkers/4), matching keyswitching's share of the gate
	// workload (Fig 1).
	KSWorkers int
	// Depth is the channel buffer depth between stages. 0 picks
	// 2·RotateWorkers, enough slack that a fast stage never stalls on a
	// momentarily busy neighbour.
	Depth int
}

// NewStreaming builds a streaming engine over the evaluation keys. The
// keys are shared read-only by every stage worker; each worker owns a
// private evaluator for scratch and counters.
func NewStreaming(ek tfhe.EvaluationKeys, cfg StreamConfig) *StreamingEngine {
	rw := cfg.RotateWorkers
	if rw <= 0 {
		rw = runtime.NumCPU()
	}
	kw := cfg.KSWorkers
	if kw <= 0 {
		kw = rw / 4
		if kw < 1 {
			kw = 1
		}
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = 2 * rw
	}
	s := &StreamingEngine{
		params: ek.Params,
		prep:   tfhe.NewEvaluator(ek),
		rot:    make([]*tfhe.Evaluator, rw),
		ext:    tfhe.NewEvaluator(ek),
		ks:     make([]*tfhe.Evaluator, kw),
		depth:  depth,
	}
	for i := range s.rot {
		s.rot[i] = tfhe.NewEvaluator(ek)
	}
	for i := range s.ks {
		s.ks[i] = tfhe.NewEvaluator(ek)
	}
	// The sign test vector is a constant of the parameter set: encode it
	// once and share it across every gate stream (level-2 LUT sharing).
	s.signTV = s.prep.SignTestVector()
	return s
}

// RotateWorkers returns the blind-rotate stage pool size.
func (s *StreamingEngine) RotateWorkers() int { return len(s.rot) }

// KSWorkers returns the keyswitch stage pool size.
func (s *StreamingEngine) KSWorkers() int { return len(s.ks) }

// Params returns the parameter set the engine operates under.
func (s *StreamingEngine) Params() tfhe.Params { return s.params }

// Streams returns how many stream calls have completed.
func (s *StreamingEngine) Streams() int64 { return atomic.LoadInt64(&s.streams) }

// evaluators yields every stage evaluator, for counter aggregation.
func (s *StreamingEngine) evaluators() []*tfhe.Evaluator {
	evs := make([]*tfhe.Evaluator, 0, 2+len(s.rot)+len(s.ks))
	evs = append(evs, s.prep, s.ext)
	evs = append(evs, s.rot...)
	evs = append(evs, s.ks...)
	return evs
}

// Counters returns the aggregated operation counters across every stage
// worker since construction (or the last ResetCounters).
func (s *StreamingEngine) Counters() tfhe.OpCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total tfhe.OpCounters
	for _, ev := range s.evaluators() {
		total.Add(ev.Counters)
	}
	return total
}

// ResetCounters zeroes every stage worker's counters.
func (s *StreamingEngine) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range s.evaluators() {
		ev.Counters.Reset()
	}
}

// streamItem is one ciphertext in flight between stages: one accumulator
// fanning out into one or more extracted outputs.
type streamItem struct {
	idx  int
	ms   tfhe.ModSwitched
	acc  tfhe.GLWECiphertext
	bigs []tfhe.LWECiphertext
}

// streamMulti pushes items 0..n-1 through the staged pipeline. prepare
// runs in the first stage on the prepare evaluator and returns the LWE
// input to bootstrap for item i; done=true short-circuits the pipeline
// with ct as the item's single output (the free NOT gate). extract maps
// each rotated accumulator to the item's outputs on the extract-stage
// evaluator — one for a plain PBS, k for a multi-value one. testVec is
// read-only and shared by the whole stream. When doKS is false the fused
// keyswitch stage is bypassed and outputs stay at dimension k·N; each KS
// worker otherwise keyswitches a whole item's outputs in order, which
// keeps results bitwise stable across pool widths. Callers hold s.mu.
func (s *StreamingEngine) streamMulti(n int, testVec tfhe.GLWECiphertext, prepare func(ev *tfhe.Evaluator, i int) (ct tfhe.LWECiphertext, done bool), extract func(ev *tfhe.Evaluator, acc tfhe.GLWECiphertext) []tfhe.LWECiphertext, doKS bool) [][]tfhe.LWECiphertext {
	out := make([][]tfhe.LWECiphertext, n)
	rotated := make(chan streamItem, s.depth)
	extracted := make(chan streamItem, s.depth)
	toRotate := make(chan streamItem, s.depth)

	// Stage 1 — prepare: per-item linear op, modulus switch, initial
	// rotation of the shared test vector (Algorithm 1 lines 2–4).
	go func() {
		defer close(toRotate)
		for i := 0; i < n; i++ {
			ct, done := prepare(s.prep, i)
			if done {
				out[i] = []tfhe.LWECiphertext{ct}
				continue
			}
			ms := s.prep.ModSwitchLWE(ct)
			toRotate <- streamItem{idx: i, ms: ms, acc: s.prep.BlindRotateInit(testVec, ms)}
		}
	}()

	// Stage 2 — blind rotate: the n CMux iterations (lines 5–12), with
	// level-2 batched decompose/FFT inside each step.
	var rotWG sync.WaitGroup
	for _, ev := range s.rot {
		rotWG.Add(1)
		go func(ev *tfhe.Evaluator) {
			defer rotWG.Done()
			for it := range toRotate {
				ev.BlindRotateSteps(it.acc, it.ms)
				rotated <- it
			}
		}(ev)
	}
	go func() {
		rotWG.Wait()
		close(rotated)
	}()

	// Stage 3 — sample extract (line 13), fanning the accumulator out
	// into the item's outputs.
	go func() {
		defer close(extracted)
		for it := range rotated {
			it.bigs = extract(s.ext, it.acc)
			if !doKS {
				out[it.idx] = it.bigs
				continue
			}
			extracted <- it
		}
	}()

	// Stage 4 — fused keyswitch (Algorithm 2, the §IV-C handoff): the
	// extracted ciphertexts go straight to the KS pool without ever
	// surfacing to the caller. A KS-less stream (StreamBootstrap) skips
	// the pool; draining the closed channel is the completion barrier
	// that orders the extract stage's out writes before the return.
	if !doKS {
		for range extracted {
		}
	} else {
		var ksWG sync.WaitGroup
		for _, ev := range s.ks {
			ksWG.Add(1)
			go func(ev *tfhe.Evaluator) {
				defer ksWG.Done()
				for it := range extracted {
					outs := make([]tfhe.LWECiphertext, len(it.bigs))
					for j, big := range it.bigs {
						outs[j] = ev.KeySwitch(big)
					}
					out[it.idx] = outs
				}
			}(ev)
		}
		ksWG.Wait()
	}
	atomic.AddInt64(&s.streams, 1)
	return out
}

// extractOne is the plain-PBS extract stage: one output per accumulator.
func extractOne(ev *tfhe.Evaluator, acc tfhe.GLWECiphertext) []tfhe.LWECiphertext {
	return []tfhe.LWECiphertext{ev.Extract(acc)}
}

// stream is streamMulti for the single-output operations (gates, plain
// LUTs, raw bootstraps): one extraction per accumulator, outputs
// flattened to one ciphertext per item.
func (s *StreamingEngine) stream(n int, testVec tfhe.GLWECiphertext, prepare func(ev *tfhe.Evaluator, i int) (ct tfhe.LWECiphertext, done bool), doKS bool) []tfhe.LWECiphertext {
	out := make([]tfhe.LWECiphertext, n)
	for i, outs := range s.streamMulti(n, testVec, prepare, extractOne, doKS) {
		out[i] = outs[0]
	}
	return out
}

// StreamBootstrap streams the raw programmable bootstrap (Algorithm 1)
// over every ciphertext against the shared test vector, returning big-key
// (k·N) outputs in input order. The keyswitch stage is bypassed, matching
// Engine.BatchBootstrap.
func (s *StreamingEngine) StreamBootstrap(cts []tfhe.LWECiphertext, testVec tfhe.GLWECiphertext) []tfhe.LWECiphertext {
	checkDims("StreamBootstrap", cts, s.params.SmallN)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream(len(cts), testVec, func(_ *tfhe.Evaluator, i int) (tfhe.LWECiphertext, bool) {
		return cts[i], false
	}, false)
}

// StreamLUT streams the lookup table f (on {0..space-1}) over every
// ciphertext: the LUT is encoded once and shared by the whole stream, each
// item flows through shift → PBS → fused keyswitch, and dimension-n
// outputs return in input order — the full §IV-C pipeline.
func (s *StreamingEngine) StreamLUT(cts []tfhe.LWECiphertext, space int, f func(int) int) []tfhe.LWECiphertext {
	checkDims("StreamLUT", cts, s.params.SmallN)
	s.mu.Lock()
	defer s.mu.Unlock()
	testVec := s.prep.LUTTestVector(space, f)
	return s.stream(len(cts), testVec, func(ev *tfhe.Evaluator, i int) (tfhe.LWECiphertext, bool) {
		return ev.ShiftForLUT(cts[i], space), false
	}, true)
}

// StreamMultiLUT streams k lookup tables over every ciphertext with one
// blind rotation per item: the packed test vector is encoded once and
// shared by the whole stream, each item flows through shift → modswitch →
// blind rotate, and the extract stage fans the rotated accumulator out
// into k sample extractions whose keyswitches are fused into the KS pool
// — k full §IV-C outputs per rotation. out[i][j] is table j applied to
// cts[i], bitwise identical to the sequential EvalMultiLUTKS for any
// stage configuration.
func (s *StreamingEngine) StreamMultiLUT(cts []tfhe.LWECiphertext, space int, fs []func(int) int) ([][]tfhe.LWECiphertext, error) {
	k := len(fs)
	if err := s.params.ValidateMultiLUT(space, k); err != nil {
		return nil, err
	}
	checkDims("StreamMultiLUT", cts, s.params.SmallN)
	s.mu.Lock()
	defer s.mu.Unlock()

	testVec := s.prep.NewMultiLUTTestVector(space, fs)
	offsets := s.params.MultiLUTOffsets(space, k)
	return s.streamMulti(len(cts), testVec, func(ev *tfhe.Evaluator, i int) (tfhe.LWECiphertext, bool) {
		return ev.ShiftForMultiLUT(cts[i], space, k), false
	}, func(ev *tfhe.Evaluator, acc tfhe.GLWECiphertext) []tfhe.LWECiphertext {
		return ev.ExtractMulti(acc, offsets)
	}, true), nil
}

// gateInput dispatches the pre-bootstrap linear stage of one gate on the
// prepare evaluator. NOT is fully linear: it completes in the prepare
// stage and bypasses the PBS pipeline.
func gateInput(ev *tfhe.Evaluator, op GateOp, a, b tfhe.LWECiphertext) (tfhe.LWECiphertext, bool) {
	switch op {
	case NAND:
		return ev.NANDInput(a, b), false
	case AND:
		return ev.ANDInput(a, b), false
	case OR:
		return ev.ORInput(a, b), false
	case NOR:
		return ev.NORInput(a, b), false
	case XOR:
		return ev.XORInput(a, b), false
	case XNOR:
		return ev.XNORInput(a, b), false
	case NOT:
		return ev.NOT(a), true
	default:
		panic(fmt.Sprintf("engine: unknown gate %d", int(op)))
	}
}

// StreamGate streams one binary gate pairwise over two ciphertext slices:
// out[i] = op(a[i], b[i]). The shared sign test vector is encoded once for
// the stream; each lane is linear combination → PBS → fused keyswitch.
// For the unary NOT, b may be nil.
func (s *StreamingEngine) StreamGate(op GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	if err := validateGateOperands("StreamGate", s.params, op, a, b); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream(len(a), s.signTV, func(ev *tfhe.Evaluator, i int) (tfhe.LWECiphertext, bool) {
		if op == NOT {
			return gateInput(ev, op, a[i], tfhe.LWECiphertext{})
		}
		return gateInput(ev, op, a[i], b[i])
	}, true), nil
}
