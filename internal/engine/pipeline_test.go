package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/tfhe"
)

// streamConfigs returns the stage/worker configurations the equivalence
// tests sweep: degenerate single-worker pipelines, skewed stage widths,
// and the NumCPU default. The streaming contract is bitwise equality with
// the sequential evaluator for every one of them.
func streamConfigs() []StreamConfig {
	cfgs := []StreamConfig{
		{RotateWorkers: 1, KSWorkers: 1, Depth: 1},
		{RotateWorkers: 2, KSWorkers: 1},
		{RotateWorkers: 3, KSWorkers: 2, Depth: 2},
		{}, // defaults: NumCPU rotate workers
	}
	if n := runtime.NumCPU(); n > 3 {
		cfgs = append(cfgs, StreamConfig{RotateWorkers: n, KSWorkers: n})
	}
	return cfgs
}

// TestStreamGateMatchesSequential is the streaming engine's core property
// test: for random plaintexts and every gate, StreamGate's output is
// bitwise-equal to the sequential Evaluator's, for every stage/worker
// configuration. Runs under -race in CI (make race).
func TestStreamGateMatchesSequential(t *testing.T) {
	sk, ek, cts, pts := testSetup(t, 31, 16)
	serial := tfhe.NewEvaluator(ek)
	ops := []GateOp{NAND, AND, OR, NOR, XOR, XNOR, NOT}

	// Sequential references, computed once per op.
	want := make(map[GateOp][]tfhe.LWECiphertext)
	for _, op := range ops {
		ref := make([]tfhe.LWECiphertext, 8)
		for i := range ref {
			ref[i] = applyGate(serial, op, cts[i], cts[8+i])
		}
		want[op] = ref
	}

	for _, cfg := range streamConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("rot=%d_ks=%d_depth=%d", cfg.RotateWorkers, cfg.KSWorkers, cfg.Depth), func(t *testing.T) {
			s := NewStreaming(ek, cfg)
			for _, op := range ops {
				var got []tfhe.LWECiphertext
				var err error
				if op == NOT {
					got, err = s.StreamGate(op, cts[:8], nil)
				} else {
					got, err = s.StreamGate(op, cts[:8], cts[8:])
				}
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if !ctEqual(got[i], want[op][i]) {
						t.Fatalf("%s output %d differs bitwise from the sequential evaluator", op, i)
					}
					dec := sk.DecryptBool(got[i])
					if exp := op.Eval(pts[i], pts[8+i]); dec != exp {
						t.Fatalf("%s output %d decrypts to %v, want %v", op, i, dec, exp)
					}
				}
			}
		})
	}
}

// TestStreamLUTMatchesSequential pins StreamLUT to the sequential
// EvalLUTKS (§IV-C pipeline) bitwise, across random lookup tables and
// messages, for every stage/worker configuration.
func TestStreamLUTMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	serial := tfhe.NewEvaluator(ek)

	const space = 8
	const batch = 10
	msgs := make([]int, batch)
	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		msgs[i] = rng.Intn(space)
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(msgs[i], space), tfhe.ParamsTest.LWEStdDev)
	}

	// A random lookup table per round, shared by stream and reference.
	for round := 0; round < 2; round++ {
		table := make([]int, space)
		for i := range table {
			table[i] = rng.Intn(space)
		}
		f := func(x int) int { return table[x] }

		want := make([]tfhe.LWECiphertext, batch)
		for i := range want {
			want[i] = serial.EvalLUTKS(cts[i], space, f)
		}
		for _, cfg := range streamConfigs() {
			s := NewStreaming(ek, cfg)
			got := s.StreamLUT(cts, space, f)
			for i := range got {
				if !ctEqual(got[i], want[i]) {
					t.Fatalf("round %d cfg %+v: LUT output %d differs bitwise from EvalLUTKS", round, cfg, i)
				}
				if dec := tfhe.DecodePBSMessage(sk.LWE.Phase(got[i]), space); dec != f(msgs[i]) {
					t.Fatalf("LUT output %d decrypts to %d, want %d", i, dec, f(msgs[i]))
				}
			}
		}
	}
}

// TestStreamBootstrapMatchesSequential pins the raw streamed PBS (no
// keyswitch) to the sequential Bootstrap bitwise, sharing one test vector
// across the stream.
func TestStreamBootstrapMatchesSequential(t *testing.T) {
	_, ek, cts, _ := testSetup(t, 35, 12)
	serial := tfhe.NewEvaluator(ek)

	tv := tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N)
	for j := range tv.Body().Coeffs {
		tv.Body().Coeffs[j] = uint32(j) << 19
	}
	want := make([]tfhe.LWECiphertext, len(cts))
	for i := range want {
		want[i] = serial.Bootstrap(cts[i], tv)
	}
	for _, cfg := range streamConfigs() {
		s := NewStreaming(ek, cfg)
		got := s.StreamBootstrap(cts, tv)
		for i := range got {
			if !ctEqual(got[i], want[i]) {
				t.Fatalf("cfg %+v: bootstrap output %d differs bitwise from sequential", cfg, i)
			}
		}
	}
}

// TestStreamMatchesBatchEngine cross-checks the two engines against each
// other: the flat worker pool and the staged pipeline must agree bitwise
// on the same batch (both are pinned to the sequential evaluator, so this
// is a consistency triangle).
func TestStreamMatchesBatchEngine(t *testing.T) {
	_, ek, cts, _ := testSetup(t, 37, 12)
	flat := New(ek, Config{Workers: 3})
	s := NewStreaming(ek, StreamConfig{RotateWorkers: 3, KSWorkers: 2})

	a, err := flat.BatchGate(XNOR, cts[:6], cts[6:])
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.StreamGate(XNOR, cts[:6], cts[6:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !ctEqual(a[i], b[i]) {
			t.Fatalf("output %d: batch engine and streaming engine disagree", i)
		}
	}
}

// TestStreamCounters checks that the §IV-C fused pipeline accounts for
// exactly one PBS and one KS per binary gate, aggregated across all stage
// workers, and that the free NOT bypasses the PBS stages.
func TestStreamCounters(t *testing.T) {
	_, ek, cts, _ := testSetup(t, 39, 8)
	s := NewStreaming(ek, StreamConfig{RotateWorkers: 2, KSWorkers: 2})

	if c := s.Counters(); c.PBSCount != 0 {
		t.Fatalf("fresh streaming engine PBSCount = %d", c.PBSCount)
	}
	if _, err := s.StreamGate(AND, cts[:4], cts[4:]); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.PBSCount != 4 || c.KSCount != 4 || c.SampleExtracts != 4 {
		t.Fatalf("after 4 gates: PBS=%d KS=%d extracts=%d, want 4/4/4", c.PBSCount, c.KSCount, c.SampleExtracts)
	}

	// NOT is linear: no PBS, no KS.
	if _, err := s.StreamGate(NOT, cts[:4], nil); err != nil {
		t.Fatal(err)
	}
	c = s.Counters()
	if c.PBSCount != 4 || c.KSCount != 4 {
		t.Fatalf("NOT performed a bootstrap: PBS=%d KS=%d", c.PBSCount, c.KSCount)
	}
	if s.Streams() != 2 {
		t.Fatalf("Streams = %d, want 2", s.Streams())
	}

	s.ResetCounters()
	if c = s.Counters(); c != (tfhe.OpCounters{}) {
		t.Fatalf("counters not zero after reset: %+v", c)
	}
}

// TestStreamValidation covers the error and edge paths of the stream API.
func TestStreamValidation(t *testing.T) {
	_, ek, cts, _ := testSetup(t, 41, 4)
	s := NewStreaming(ek, StreamConfig{RotateWorkers: 2})

	if _, err := s.StreamGate(AND, cts[:2], cts[:3]); err == nil {
		t.Fatal("StreamGate accepted mismatched operand lengths")
	}
	if _, err := s.StreamGate(GateOp(99), cts[:2], cts[:2]); err == nil {
		t.Fatal("StreamGate accepted an unknown op")
	}
	if _, err := s.StreamGate(NOT, cts[:2], cts[:3]); err == nil {
		t.Fatal("StreamGate NOT accepted a mismatched second operand")
	}
	if out, err := s.StreamGate(OR, nil, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty StreamGate: %v, %v", out, err)
	}
	if out := s.StreamLUT(nil, 8, func(x int) int { return x }); len(out) != 0 {
		t.Fatalf("empty StreamLUT returned %d outputs", len(out))
	}

	big := s.StreamBootstrap(cts, tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N))
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s accepted wrong-dimension ciphertexts", name)
			}
		}()
		f()
	}
	mustPanic("StreamBootstrap", func() { s.StreamBootstrap(big, tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N)) })
	mustPanic("StreamLUT", func() { s.StreamLUT(big, 8, func(x int) int { return x }) })
	mustPanic("StreamGate", func() { s.StreamGate(AND, big[:2], big[2:]) })

	// The engine must still be usable after a recovered panic.
	if out, err := s.StreamGate(NAND, cts[:2], cts[2:]); err != nil || len(out) != 2 {
		t.Fatalf("engine unusable after recovered panic: %v, %v", out, err)
	}
}

// TestStreamConcurrentCalls submits streams from several goroutines at
// once; the engine serializes them internally. Run with -race in CI.
func TestStreamConcurrentCalls(t *testing.T) {
	sk, ek, cts, pts := testSetup(t, 43, 8)
	s := NewStreaming(ek, StreamConfig{})

	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			out, err := s.StreamGate(OR, cts[:4], cts[4:])
			if err != nil {
				done <- err
				return
			}
			for i := range out {
				if got := sk.DecryptBool(out[i]); got != (pts[i] || pts[4+i]) {
					done <- fmt.Errorf("concurrent stream output %d decrypts wrong", i)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Counters(); c.PBSCount != 16 {
		t.Fatalf("PBSCount = %d after 4 concurrent streams of 4, want 16", c.PBSCount)
	}
}
