package engine

import (
	"fmt"

	"repro/internal/tfhe"
)

// GateOp identifies a boolean gate the engine can batch.
type GateOp int

// The gate mnemonics, in truth-table order. All binary gates cost one
// PBS + KS; NOT is linear and free.
const (
	NAND GateOp = iota
	AND
	OR
	NOR
	XOR
	XNOR
	NOT // unary; the second operand is ignored
)

var gateNames = [...]string{"NAND", "AND", "OR", "NOR", "XOR", "XNOR", "NOT"}

// String returns the gate mnemonic.
func (op GateOp) String() string {
	if op < 0 || int(op) >= len(gateNames) {
		return fmt.Sprintf("GateOp(%d)", int(op))
	}
	return gateNames[op]
}

// ParseGate resolves a gate mnemonic (case-sensitive, e.g. "NAND").
func ParseGate(s string) (GateOp, error) {
	for i, n := range gateNames {
		if n == s {
			return GateOp(i), nil
		}
	}
	return 0, fmt.Errorf("engine: unknown gate %q", s)
}

// applyGate dispatches one whole gate on one worker's evaluator: the
// linear stage (gateInput, the single op switch shared with the streaming
// pipeline) followed by the sign bootstrap and keyswitch, unless the gate
// is fully linear. Identical to calling the evaluator's gate method.
func applyGate(ev *tfhe.Evaluator, op GateOp, a, b tfhe.LWECiphertext) tfhe.LWECiphertext {
	in, done := gateInput(ev, op, a, b)
	if done {
		return in
	}
	return ev.KeySwitch(ev.Bootstrap(in, ev.SignTestVector()))
}

// Eval returns the plaintext truth value of the gate — the reference the
// engine's tests (and callers sanity-checking circuits) compare against.
func (op GateOp) Eval(a, b bool) bool {
	switch op {
	case NAND:
		return !(a && b)
	case AND:
		return a && b
	case OR:
		return a || b
	case NOR:
		return !(a || b)
	case XOR:
		return a != b
	case XNOR:
		return a == b
	case NOT:
		return !a
	default:
		panic(fmt.Sprintf("engine: unknown gate %d", int(op)))
	}
}

// Gate is one gate of a dependency-free circuit level: its inputs are
// indices into the shared input wire slice, never outputs of other gates
// in the same list — which is exactly what makes the whole list one batch
// the worker pool can execute in any order. B is ignored for NOT.
type Gate struct {
	Op   GateOp
	A, B int
}

// EvalCircuit evaluates a dependency-free gate list over the input wires,
// returning one output ciphertext per gate, in gate order. Feed outputs
// back in as the next call's inputs to evaluate a multi-level circuit
// level by level (each level is one parallel batch — the epoch execution
// of the accelerator's scheduler).
func (e *Engine) EvalCircuit(inputs []tfhe.LWECiphertext, gates []Gate) ([]tfhe.LWECiphertext, error) {
	checkDims("EvalCircuit", inputs, e.params.SmallN)
	for gi, g := range gates {
		if g.Op < 0 || int(g.Op) >= len(gateNames) {
			return nil, fmt.Errorf("engine: gate %d: unknown op %d", gi, int(g.Op))
		}
		if g.A < 0 || g.A >= len(inputs) {
			return nil, fmt.Errorf("engine: gate %d (%s): input A=%d out of range [0,%d)", gi, g.Op, g.A, len(inputs))
		}
		if g.Op != NOT && (g.B < 0 || g.B >= len(inputs)) {
			return nil, fmt.Errorf("engine: gate %d (%s): input B=%d out of range [0,%d)", gi, g.Op, g.B, len(inputs))
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]tfhe.LWECiphertext, len(gates))
	e.run(len(gates), func(ev *tfhe.Evaluator, i int) {
		g := gates[i]
		if g.Op == NOT {
			out[i] = applyGate(ev, NOT, inputs[g.A], tfhe.LWECiphertext{})
		} else {
			out[i] = applyGate(ev, g.Op, inputs[g.A], inputs[g.B])
		}
	})
	return out, nil
}
