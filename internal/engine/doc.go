// Package engine provides a worker-pool batch-bootstrapping engine: the
// software counterpart of the Strix accelerator's batch execution model.
// The accelerator's whole throughput story (§III of the paper) rests on
// batching independent programmable bootstrappings across many ciphertexts;
// this package gives the functional TFHE library the same shape, so
// measured software PBS/s can sit next to the performance model's
// predicted PBS/s on the same axis.
//
// Two execution shapes coexist:
//
//   - Engine is the flat worker pool: each worker owns a whole PBS(+KS)
//     end to end. Batches are split into chunks that workers claim from an
//     atomic cursor, which load-balances the tail without a scheduler.
//   - StreamingEngine (pipeline.go) mirrors the paper's streaming
//     architecture with two-level ciphertext batching (§IV): ciphertexts
//     flow through channel-connected specialized stages (modswitch →
//     blind rotate → sample extract → fused keyswitch), the encoded test
//     vector/LUT is shared by the whole stream, and each CMux step's
//     decompositions and forward FFTs run as one batched burst.
//
// Each worker goroutine owns a private tfhe.Evaluator (evaluators carry
// scratch buffers and must not be shared), all built from one shared,
// read-only key set. Every server-side TFHE operation here is
// deterministic, so both engines return results bitwise identical to the
// sequential evaluator for any worker or stage configuration.
package engine
