package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/tfhe"
)

// Config tunes the engine.
type Config struct {
	// Workers is the number of worker goroutines (and private evaluators).
	// 0 means runtime.NumCPU().
	Workers int
	// ChunkSize is the number of items a worker claims at a time. 0 picks
	// a size that gives each worker ~4 chunks per batch, balancing claim
	// overhead against tail latency.
	ChunkSize int
}

// Engine executes batched TFHE operations over a pool of evaluators. Its
// methods are safe for concurrent use: batches are serialized internally
// while each batch fans out across the pool.
type Engine struct {
	mu      sync.Mutex
	params  tfhe.Params
	evals   []*tfhe.Evaluator
	chunk   int
	batches int64 // completed batch calls, for diagnostics
}

// New builds an engine over the evaluation keys. The keys are shared
// read-only by every worker; only per-evaluator scratch is private.
func New(ek tfhe.EvaluationKeys, cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	e := &Engine{params: ek.Params, evals: make([]*tfhe.Evaluator, w), chunk: cfg.ChunkSize}
	for i := range e.evals {
		e.evals[i] = tfhe.NewEvaluator(ek)
	}
	return e
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return len(e.evals) }

// Params returns the parameter set the engine operates under.
func (e *Engine) Params() tfhe.Params { return e.params }

// Batches returns how many batch calls have completed.
func (e *Engine) Batches() int64 { return atomic.LoadInt64(&e.batches) }

// Counters returns the aggregated operation counters across all workers
// since construction (or the last ResetCounters).
func (e *Engine) Counters() tfhe.OpCounters {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total tfhe.OpCounters
	for _, ev := range e.evals {
		total.Add(ev.Counters)
	}
	return total
}

// ResetCounters zeroes every worker's counters.
func (e *Engine) ResetCounters() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ev := range e.evals {
		ev.Counters.Reset()
	}
}

// chunkFor picks the claim granularity for a batch of n items.
func (e *Engine) chunkFor(n int) int {
	if e.chunk > 0 {
		return e.chunk
	}
	c := n / (4 * len(e.evals))
	if c < 1 {
		c = 1
	}
	return c
}

// run distributes items 0..n-1 over the worker pool. job must only touch
// item i and its evaluator. Callers hold e.mu, so one batch runs at a time
// and counter aggregation never races with in-flight work.
func (e *Engine) run(n int, job func(ev *tfhe.Evaluator, i int)) {
	if n == 0 {
		return
	}
	workers := len(e.evals)
	if workers > n {
		workers = n
	}
	chunk := e.chunkFor(n)
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ev *tfhe.Evaluator) {
			defer wg.Done()
			for {
				end := int(atomic.AddInt64(&cursor, int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					job(ev, i)
				}
			}
		}(e.evals[w])
	}
	wg.Wait()
	atomic.AddInt64(&e.batches, 1)
}

// checkDims panics (from the caller's goroutine, so it is recoverable and
// carries the item index) unless every ciphertext has mask length want.
// The underlying tfhe evaluator panics on dimension mismatch too, but from
// inside a worker goroutine — which would abort the whole process.
func checkDims(op string, cts []tfhe.LWECiphertext, want int) {
	for i, ct := range cts {
		if ct.N() != want {
			panic(fmt.Sprintf("engine: %s: ciphertext %d has LWE dimension %d, want %d", op, i, ct.N(), want))
		}
	}
}

// BatchBootstrap runs the programmable bootstrap (Algorithm 1) on every
// ciphertext against the shared test vector, returning big-key (k·N)
// outputs in input order. testVec is read-only and shared by all workers.
func (e *Engine) BatchBootstrap(cts []tfhe.LWECiphertext, testVec tfhe.GLWECiphertext) []tfhe.LWECiphertext {
	checkDims("BatchBootstrap", cts, e.params.SmallN)
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]tfhe.LWECiphertext, len(cts))
	e.run(len(cts), func(ev *tfhe.Evaluator, i int) {
		out[i] = ev.Bootstrap(cts[i], testVec)
	})
	return out
}

// BatchKeySwitch runs Algorithm 2 on every big-key ciphertext, returning
// dimension-n outputs in input order.
func (e *Engine) BatchKeySwitch(cts []tfhe.LWECiphertext) []tfhe.LWECiphertext {
	checkDims("BatchKeySwitch", cts, e.params.ExtractedN())
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]tfhe.LWECiphertext, len(cts))
	e.run(len(cts), func(ev *tfhe.Evaluator, i int) {
		out[i] = ev.KeySwitch(cts[i])
	})
	return out
}

// BatchEvalLUT applies the lookup table f (on {0..space-1}) to every
// ciphertext via PBS + keyswitch — the full §IV-C pipeline per item.
func (e *Engine) BatchEvalLUT(cts []tfhe.LWECiphertext, space int, f func(int) int) []tfhe.LWECiphertext {
	checkDims("BatchEvalLUT", cts, e.params.SmallN)
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]tfhe.LWECiphertext, len(cts))
	e.run(len(cts), func(ev *tfhe.Evaluator, i int) {
		out[i] = ev.EvalLUTKS(cts[i], space, f)
	})
	return out
}

// BatchMultiLUT applies k lookup tables to every ciphertext via one
// multi-value PBS per item — a single blind rotation fanned out into k
// extractions and keyswitches. out[i][j] is table j applied to cts[i], at
// dimension n, bitwise identical to the sequential EvalMultiLUTKS.
func (e *Engine) BatchMultiLUT(cts []tfhe.LWECiphertext, space int, fs []func(int) int) ([][]tfhe.LWECiphertext, error) {
	if err := e.params.ValidateMultiLUT(space, len(fs)); err != nil {
		return nil, err
	}
	checkDims("BatchMultiLUT", cts, e.params.SmallN)
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]tfhe.LWECiphertext, len(cts))
	e.run(len(cts), func(ev *tfhe.Evaluator, i int) {
		out[i] = ev.EvalMultiLUTKS(cts[i], space, fs)
	})
	return out, nil
}

// validateGateOperands rejects unknown ops and mismatched operand lengths
// or dimensions for the pairwise gate APIs (BatchGate, StreamGate) before
// any worker goroutine starts, so every failure surfaces as an error or a
// recoverable caller-side panic — never a panic inside a worker.
func validateGateOperands(api string, params tfhe.Params, op GateOp, a, b []tfhe.LWECiphertext) error {
	if op < 0 || int(op) >= len(gateNames) {
		return fmt.Errorf("engine: %s: unknown gate %d", api, int(op))
	}
	if op == NOT {
		if b != nil && len(b) != len(a) {
			return fmt.Errorf("engine: %s: NOT takes one operand, got b of length %d", api, len(b))
		}
	} else if len(a) != len(b) {
		return fmt.Errorf("engine: %s: operand length mismatch: %d vs %d", api, len(a), len(b))
	}
	checkDims(api, a, params.SmallN)
	if op != NOT {
		checkDims(api, b, params.SmallN)
	}
	return nil
}

// BatchGate applies one binary gate pairwise: out[i] = op(a[i], b[i]).
// For the unary NOT, b may be nil.
func (e *Engine) BatchGate(op GateOp, a, b []tfhe.LWECiphertext) ([]tfhe.LWECiphertext, error) {
	if err := validateGateOperands("BatchGate", e.params, op, a, b); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]tfhe.LWECiphertext, len(a))
	e.run(len(a), func(ev *tfhe.Evaluator, i int) {
		if op == NOT {
			out[i] = applyGate(ev, op, a[i], tfhe.LWECiphertext{})
		} else {
			out[i] = applyGate(ev, op, a[i], b[i])
		}
	})
	return out, nil
}
