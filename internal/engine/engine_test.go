package engine

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/tfhe"
)

// testSetup generates a deterministic key set plus a batch of encrypted
// booleans, the same for every call with the same seed.
func testSetup(t testing.TB, seed int64, batch int) (tfhe.SecretKeys, tfhe.EvaluationKeys, []tfhe.LWECiphertext, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	pts := make([]bool, batch)
	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		pts[i] = rng.Intn(2) == 1
		cts[i] = sk.EncryptBool(rng, pts[i])
	}
	return sk, ek, cts, pts
}

func ctEqual(a, b tfhe.LWECiphertext) bool {
	if a.B != b.B || len(a.A) != len(b.A) {
		return false
	}
	for i := range a.A {
		if a.A[i] != b.A[i] {
			return false
		}
	}
	return true
}

// TestDeterministicAcrossWorkers is the core batching contract: the same
// batch under the same keys yields bitwise-identical ciphertexts whether
// one worker or eight execute it. (Server-side TFHE ops are deterministic;
// this catches aliasing or scratch-sharing bugs across the pool.)
func TestDeterministicAcrossWorkers(t *testing.T) {
	sk, ek, cts, pts := testSetup(t, 42, 24)

	e1 := New(ek, Config{Workers: 1})
	e8 := New(ek, Config{Workers: 8, ChunkSize: 1})

	a1, err := e1.BatchGate(NAND, cts[:12], cts[12:])
	if err != nil {
		t.Fatal(err)
	}
	a8, err := e8.BatchGate(NAND, cts[:12], cts[12:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if !ctEqual(a1[i], a8[i]) {
			t.Fatalf("NAND output %d differs between workers=1 and workers=8", i)
		}
		want := !(pts[i] && pts[12+i])
		if got := sk.DecryptBool(a1[i]); got != want {
			t.Fatalf("NAND output %d decrypts to %v, want %v", i, got, want)
		}
	}

	// Raw bootstraps must agree bitwise too (big-key outputs).
	tv := tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N)
	for j := range tv.Body().Coeffs {
		tv.Body().Coeffs[j] = uint32(j) << 20
	}
	b1 := e1.BatchBootstrap(cts, tv)
	b8 := e8.BatchBootstrap(cts, tv)
	for i := range b1 {
		if !ctEqual(b1[i], b8[i]) {
			t.Fatalf("bootstrap output %d differs between workers=1 and workers=8", i)
		}
	}
}

// TestMatchesSerialEvaluator pins the engine to the plain evaluator: a
// batched gate must equal the one the unbatched API computes.
func TestMatchesSerialEvaluator(t *testing.T) {
	sk, ek, cts, pts := testSetup(t, 7, 8)
	_ = sk
	eng := New(ek, Config{Workers: 4})
	serial := tfhe.NewEvaluator(ek)

	for _, op := range []GateOp{NAND, AND, OR, NOR, XOR, XNOR} {
		got, err := eng.BatchGate(op, cts[:4], cts[4:])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			want := applyGate(serial, op, cts[i], cts[4+i])
			if !ctEqual(got[i], want) {
				t.Fatalf("%s output %d differs from the serial evaluator", op, i)
			}
			if dec := sk.DecryptBool(got[i]); dec != op.Eval(pts[i], pts[4+i]) {
				t.Fatalf("%s output %d decrypts to %v, want %v", op, i, dec, op.Eval(pts[i], pts[4+i]))
			}
		}
	}
}

// TestCounters checks the aggregation across workers: a batch of n gates
// must account for exactly n PBS and n keyswitches, regardless of how the
// chunks landed on workers.
func TestCounters(t *testing.T) {
	_, ek, cts, _ := testSetup(t, 3, 16)
	eng := New(ek, Config{Workers: 5, ChunkSize: 3})

	if c := eng.Counters(); c.PBSCount != 0 {
		t.Fatalf("fresh engine PBSCount = %d", c.PBSCount)
	}
	if _, err := eng.BatchGate(XOR, cts[:8], cts[8:]); err != nil {
		t.Fatal(err)
	}
	c := eng.Counters()
	if c.PBSCount != 8 || c.KSCount != 8 {
		t.Fatalf("after 8 gates: PBSCount=%d KSCount=%d, want 8/8", c.PBSCount, c.KSCount)
	}
	if c.SampleExtracts != 8 {
		t.Fatalf("SampleExtracts = %d, want 8", c.SampleExtracts)
	}

	out := eng.BatchBootstrap(cts, tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N))
	if len(out) != 16 {
		t.Fatalf("BatchBootstrap returned %d outputs", len(out))
	}
	if c = eng.Counters(); c.PBSCount != 24 {
		t.Fatalf("PBSCount = %d, want 24", c.PBSCount)
	}
	if eng.Batches() != 2 {
		t.Fatalf("Batches = %d, want 2", eng.Batches())
	}

	eng.ResetCounters()
	if c = eng.Counters(); c != (tfhe.OpCounters{}) {
		t.Fatalf("counters not zero after reset: %+v", c)
	}
}

// TestEvalCircuit runs a dependency-free level (a 1-bit full adder's first
// level plus assorted gates) and checks every output against plaintext
// logic.
func TestEvalCircuit(t *testing.T) {
	sk, ek, cts, pts := testSetup(t, 11, 6)
	eng := New(ek, Config{Workers: 3})

	gates := []Gate{
		{Op: XOR, A: 0, B: 1},
		{Op: AND, A: 0, B: 1},
		{Op: OR, A: 2, B: 3},
		{Op: NAND, A: 4, B: 5},
		{Op: NOT, A: 2},
		{Op: XNOR, A: 1, B: 4},
	}
	out, err := eng.EvalCircuit(cts, gates)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(gates) {
		t.Fatalf("EvalCircuit returned %d outputs for %d gates", len(out), len(gates))
	}
	for i, g := range gates {
		var want bool
		if g.Op == NOT {
			want = g.Op.Eval(pts[g.A], false)
		} else {
			want = g.Op.Eval(pts[g.A], pts[g.B])
		}
		if got := sk.DecryptBool(out[i]); got != want {
			t.Fatalf("gate %d (%s %d,%d) decrypts to %v, want %v", i, g.Op, g.A, g.B, got, want)
		}
	}

	// Level-by-level: feed outputs back as the next level's inputs
	// (sum/carry of the full adder).
	lvl2 := []Gate{{Op: XOR, A: 0, B: 2}, {Op: AND, A: 0, B: 2}}
	out2, err := eng.EvalCircuit(out, lvl2)
	if err != nil {
		t.Fatal(err)
	}
	s0 := pts[0] != pts[1]
	cin := pts[2] || pts[3]
	if got := sk.DecryptBool(out2[0]); got != (s0 != cin) {
		t.Fatalf("level-2 sum decrypts to %v, want %v", got, s0 != cin)
	}
	if got := sk.DecryptBool(out2[1]); got != (s0 && cin) {
		t.Fatalf("level-2 carry decrypts to %v, want %v", got, s0 && cin)
	}
}

// TestValidation covers the error paths.
func TestValidation(t *testing.T) {
	_, ek, cts, _ := testSetup(t, 5, 4)
	eng := New(ek, Config{Workers: 2})

	if _, err := eng.BatchGate(AND, cts[:2], cts[:3]); err == nil {
		t.Fatal("BatchGate accepted mismatched operand lengths")
	}
	if _, err := eng.BatchGate(GateOp(99), cts[:2], cts[:2]); err == nil {
		t.Fatal("BatchGate accepted an unknown op")
	}
	if _, err := eng.EvalCircuit(cts, []Gate{{Op: AND, A: 0, B: 7}}); err == nil {
		t.Fatal("EvalCircuit accepted an out-of-range wire index")
	}
	if _, err := eng.EvalCircuit(cts, []Gate{{Op: AND, A: -1, B: 0}}); err == nil {
		t.Fatal("EvalCircuit accepted a negative wire index")
	}
	if _, err := eng.EvalCircuit(cts, []Gate{{Op: GateOp(99), A: 0, B: 1}}); err == nil {
		t.Fatal("EvalCircuit accepted an unknown op")
	}
	if _, err := ParseGate("FROB"); err == nil {
		t.Fatal("ParseGate accepted an unknown mnemonic")
	}
	if op, err := ParseGate("XOR"); err != nil || op != XOR {
		t.Fatalf("ParseGate(XOR) = %v, %v", op, err)
	}

	// Empty batches are no-ops, not panics.
	if out, err := eng.BatchGate(OR, nil, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty BatchGate: %v, %v", out, err)
	}
	if out := eng.BatchKeySwitch(nil); len(out) != 0 {
		t.Fatalf("empty BatchKeySwitch returned %d outputs", len(out))
	}
}

// TestDimensionPanics checks that wrong-dimension inputs are rejected
// up front, from the caller's goroutine — recoverable, instead of an
// unrecoverable panic inside a worker.
func TestDimensionPanics(t *testing.T) {
	_, ek, cts, _ := testSetup(t, 13, 4)
	eng := New(ek, Config{Workers: 2})
	big := eng.BatchBootstrap(cts, tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N))

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s accepted wrong-dimension ciphertexts", name)
			}
		}()
		f()
	}
	mustPanic("BatchBootstrap", func() { eng.BatchBootstrap(big, tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N)) })
	mustPanic("BatchKeySwitch", func() { eng.BatchKeySwitch(cts) })
	mustPanic("BatchEvalLUT", func() { eng.BatchEvalLUT(big, 8, func(x int) int { return x }) })
	mustPanic("BatchGate", func() { eng.BatchGate(AND, big[:2], big[2:]) })
	mustPanic("EvalCircuit", func() { eng.EvalCircuit(big, []Gate{{Op: AND, A: 0, B: 1}}) })

	// The engine must still be usable after a recovered panic.
	if out := eng.BatchKeySwitch(big); len(out) != len(big) {
		t.Fatalf("engine unusable after recovered panic: %d outputs", len(out))
	}
}

// TestBatchEvalLUT checks the PBS+KS pipeline over an integer batch.
func TestBatchEvalLUT(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	eng := New(ek, Config{Workers: 4})

	const space = 8
	msgs := make([]int, 12)
	cts := make([]tfhe.LWECiphertext, len(msgs))
	for i := range cts {
		msgs[i] = rng.Intn(space)
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(msgs[i], space), tfhe.ParamsTest.LWEStdDev)
	}
	sq := func(x int) int { return (x * x) % space }
	out := eng.BatchEvalLUT(cts, space, sq)
	for i := range out {
		if got := tfhe.DecodePBSMessage(sk.LWE.Phase(out[i]), space); got != sq(msgs[i]) {
			t.Fatalf("LUT output %d = %d, want %d", i, got, sq(msgs[i]))
		}
	}
}

// TestConcurrentBatches submits batches from several goroutines at once;
// the engine serializes them internally. Run with -race in CI.
func TestConcurrentBatches(t *testing.T) {
	sk, ek, cts, pts := testSetup(t, 21, 8)
	eng := New(ek, Config{Workers: runtime.NumCPU()})

	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			out, err := eng.BatchGate(OR, cts[:4], cts[4:])
			if err != nil {
				done <- err
				return
			}
			for i := range out {
				if got := sk.DecryptBool(out[i]); got != (pts[i] || pts[4+i]) {
					done <- err
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if c := eng.Counters(); c.PBSCount != 16 {
		t.Fatalf("PBSCount = %d after 4 concurrent batches of 4, want 16", c.PBSCount)
	}
}
