// Package examples_test is the regression harness over the runnable
// examples: each one is executed via `go run` exactly as the docs tell
// users to, and must exit 0 and print its expected landmarks. This keeps
// every example compiling AND behaving as the README advertises.
package examples_test

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// timeout bounds one example run; everything uses the fast test set or
// pure modelling, so this is generous.
const timeout = 4 * time.Minute

func TestExamples(t *testing.T) {
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{
			"NAND(true, true) = false",
			"XOR(true, true)  = false",
			"computed under encryption",
			"PBS throughput",
		}},
		{"adder8", []string{
			"173 + 94 = 11 (mod 256)",
			"32 bootstraps",
		}},
		{"lutrelu", []string{
			"encrypted activation functions",
			"ReLU(v)",
		}},
		{"batchgates", []string{
			"all decryptions correct",
			"circuit level: 64 gates in one batch",
			"PBS in",
		}},
		{"deepnn", []string{
			"bootstraps per inference",
			"TvLP/CLP sweep",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel() // examples are independent processes
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", "./"+tc.dir).CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example timed out after %v", timeout)
			}
			if err != nil {
				t.Fatalf("go run ./%s: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
