// Batchgates: the worker-pool batch engine end to end.
//
// Encrypts two bit-vectors, evaluates a batch of gates in parallel on the
// engine (one PBS + KS per gate, fanned out over per-goroutine
// evaluators), verifies every decryption, then times workers=1 against
// workers=NumCPU — the software analogue of the batching the Strix
// accelerator exploits for throughput.
//
// Run with: go run ./examples/batchgates
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	strix "repro"
)

const bits = 64

func main() {
	ctx, err := strix.NewFHEContext("test", 42)
	if err != nil {
		log.Fatal(err)
	}

	xs := make([]bool, bits)
	ys := make([]bool, bits)
	for i := range xs {
		xs[i] = i%3 == 0
		ys[i] = i%2 == 0
	}
	as := ctx.EncryptBools(xs)
	bs := ctx.EncryptBools(ys)

	// --- Batched gates, all lanes in parallel ---------------------------
	for _, op := range []strix.GateOp{strix.NAND, strix.XOR, strix.OR} {
		outs, err := ctx.BatchGate(op, as, bs)
		if err != nil {
			log.Fatal(err)
		}
		for i, got := range ctx.DecryptBools(outs) {
			if want := op.Eval(xs[i], ys[i]); got != want {
				log.Fatalf("%s lane %d: got %v, want %v", op, i, got, want)
			}
		}
		fmt.Printf("%-4s × %d lanes: all decryptions correct\n", op, bits)
	}

	// --- A dependency-free circuit level --------------------------------
	// First level of a ripple-free popcount-ish circuit: pairwise XOR/AND
	// over adjacent input wires, all gates independent.
	gates := make([]strix.Gate, 0, bits)
	for i := 0; i+1 < bits; i += 2 {
		gates = append(gates,
			strix.Gate{Op: strix.XOR, A: i, B: i + 1},
			strix.Gate{Op: strix.AND, A: i, B: i + 1})
	}
	level, err := ctx.EvalCircuit(as, gates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit level: %d gates in one batch\n", len(level))

	// --- Scaling: workers=1 vs workers=NumCPU ---------------------------
	ncpu := runtime.NumCPU()
	for _, w := range []int{1, ncpu} {
		eng := ctx.NewEngine(w)
		if _, err := eng.BatchGate(strix.NAND, as[:8], bs[:8]); err != nil {
			log.Fatal(err) // warm the pool before timing
		}
		eng.ResetCounters()
		start := time.Now()
		if _, err := eng.BatchGate(strix.NAND, as, bs); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		c := eng.Counters()
		fmt.Printf("workers=%-2d : %d PBS in %7v  =  %6.1f PBS/s\n",
			w, c.PBSCount, elapsed.Round(time.Millisecond), float64(c.PBSCount)/elapsed.Seconds())
	}

	acc, err := strix.NewAccelerator("I")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strix model: %.0f PBS/s predicted (set I) — the gap is the accelerator's thesis\n",
		acc.ThroughputPBS())
}
