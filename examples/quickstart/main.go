// Quickstart: the two halves of the library in ~40 lines.
//
//  1. Functional TFHE: encrypt booleans, evaluate a gate homomorphically
//     (one programmable bootstrap + one keyswitch), decrypt.
//  2. Accelerator model: ask the Strix performance model what the same
//     workload costs on the 8-HSC chip of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	strix "repro"
)

func main() {
	// --- Functional TFHE -------------------------------------------------
	ctx, err := strix.NewFHEContext("test", 42)
	if err != nil {
		log.Fatal(err)
	}
	a := ctx.EncryptBool(true)
	b := ctx.EncryptBool(true)

	nand := ctx.Eval.NAND(a, b) // one PBS + one KS, fully homomorphic
	fmt.Printf("NAND(true, true) = %v\n", ctx.DecryptBool(nand))

	xor := ctx.Eval.XOR(a, b)
	fmt.Printf("XOR(true, true)  = %v\n", ctx.DecryptBool(xor))

	// A programmable bootstrap can evaluate ANY univariate function while
	// refreshing noise — here, squaring mod 8.
	ct := ctx.EncryptInt(5, 8)
	sq := ctx.Eval.EvalLUTKS(ct, 8, func(x int) int { return x * x % 8 })
	fmt.Printf("5^2 mod 8        = %d (computed under encryption)\n", ctx.DecryptInt(sq, 8))

	// --- Strix accelerator model -----------------------------------------
	acc, err := strix.NewAccelerator("I") // paper's 110-bit parameter set
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStrix (8 HSCs @ 1.2 GHz, set I):\n")
	fmt.Printf("  PBS latency:    %.2f ms\n", acc.LatencyMs())
	fmt.Printf("  PBS throughput: %.0f PBS/s\n", acc.ThroughputPBS())

	res, err := acc.RunPBS(10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  10,000 PBS:     %.2f ms in %d epochs\n", res.Seconds*1e3, res.Epochs)
}
