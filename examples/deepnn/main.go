// Deep-NN inference scheduling: the Fig 7 application benchmark as a
// library user would run it — build a Zama Deep-NN workload, schedule it
// on the Strix model and on the CPU/GPU baselines, and explore how the
// two-level batching design responds to the TvLP/CLP trade-off (Table VII).
//
// Run with: go run ./examples/deepnn
package main

import (
	"fmt"
	"log"

	strix "repro"
	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/workload"
)

func main() {
	p, err := workload.NNParams(1024)
	if err != nil {
		log.Fatal(err)
	}
	nn, err := workload.NewDeepNN(20, p)
	if err != nil {
		log.Fatal(err)
	}
	layers := nn.LayerPBS()
	fmt.Printf("%s: %d layers, %d bootstraps per inference (conv %d + dense %d×%d)\n",
		nn.Name, len(layers), nn.TotalPBS(), layers[0], workload.DenseNeurons, len(layers)-1)

	// Strix.
	acc, err := strix.NewAccelerator("II")
	if err != nil {
		log.Fatal(err)
	}
	res, err := acc.RunLayers(layers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Strix:       %8.1f ms\n", res.Seconds*1e3)

	// GPU baseline: per-layer blind-rotation fragmentation (72 SMs).
	gpu := baseline.NewGPUModel()
	batchMs, err := gpu.ScaledBatchMs("I", 1024, p.N)
	if err != nil {
		log.Fatal(err)
	}
	var gpuMs float64
	for _, l := range layers {
		gpuMs += float64(gpu.Fragments(l)+1) * batchMs
	}
	fmt.Printf("GPU (NuFHE): %8.1f ms  — layer of %d LWEs fragments %dx on 72 SMs\n",
		gpuMs, layers[0], gpu.Fragments(layers[0])+1)

	// CPU baseline (20 threads).
	cpu := baseline.NewCPUModel()
	cpu.Threads = 20
	perPBS, err := cpu.PBSLatencyMs("II")
	if err != nil {
		log.Fatal(err)
	}
	var cpuMs float64
	for _, l := range layers {
		cpuMs += float64((l+cpu.Threads-1)/cpu.Threads) * perPBS
	}
	fmt.Printf("CPU (x20):   %8.1f ms\n\n", cpuMs)

	// Table VII in miniature: keep TvLP·CLP = 32 and watch the
	// compute/memory-bound crossover at one HBM stack.
	fmt.Println("TvLP/CLP sweep on this workload (set II):")
	for _, c := range []struct{ tvlp, clp int }{{16, 2}, {8, 4}, {4, 8}, {2, 16}} {
		cfg := arch.DefaultConfig().WithParallelism(c.tvlp, c.clp, 2, 2)
		a, err := strix.NewAcceleratorWithConfig(cfg, "II")
		if err != nil {
			log.Fatal(err)
		}
		r, err := a.RunLayers(layers)
		if err != nil {
			log.Fatal(err)
		}
		s := a.Model.Summary()
		bound := "compute"
		if s.MemoryBound {
			bound = "memory"
		}
		fmt.Printf("  TvLP=%-2d CLP=%-2d  %8.1f ms  (%s bound, needs %.0f GB/s)\n",
			c.tvlp, c.clp, r.Seconds*1e3, bound, s.RequiredBWGBs)
	}
}
