// Programmable bootstrapping as a lookup table: evaluate ReLU and sign on
// encrypted integers — the neural-network activation pattern of §II-C
// ("TFHE is particularly useful for evaluating the activation function in
// neural networks"). Every activation is ONE bootstrap, which also resets
// the ciphertext noise: this is the PBS stream that Strix batches.
//
// Run with: go run ./examples/lutrelu
package main

import (
	"fmt"
	"log"

	strix "repro"
)

const space = 16 // messages 0..15 encode signed values -8..+7 (offset 8)

// offset-binary helpers.
func enc(v int) int { return v + space/2 }
func dec(m int) int { return m - space/2 }
func relu(m int) int { // ReLU in offset-binary domain
	if m >= space/2 {
		return m
	}
	return space / 2
}
func sign(m int) int { // sign → {-1,+1} in offset-binary domain
	if m >= space/2 {
		return enc(1)
	}
	return enc(-1)
}

func main() {
	ctx, err := strix.NewFHEContext("test", 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("encrypted activation functions via programmable bootstrapping:")
	fmt.Println(" v   ReLU(v)  sign(v)")
	for _, v := range []int{-7, -3, -1, 0, 1, 4, 7} {
		ct := ctx.EncryptInt(enc(v), space)

		r := ctx.Eval.EvalLUTKS(ct, space, relu)
		s := ctx.Eval.EvalLUTKS(ct, space, sign)

		gotR := dec(ctx.DecryptInt(r, space))
		gotS := dec(ctx.DecryptInt(s, space))
		fmt.Printf("%+2d   %+2d       %+2d\n", v, gotR, gotS)

		wantR := v
		if v < 0 {
			wantR = 0
		}
		wantS := 1
		if v < 0 {
			wantS = -1
		}
		if gotR != wantR || gotS != wantS {
			log.Fatalf("mismatch at v=%d: relu %d (want %d), sign %d (want %d)",
				v, gotR, wantR, gotS, wantS)
		}
	}

	// A 92-neuron dense layer needs 92 such bootstraps; Strix schedules
	// them as one epoch across its 8 streaming cores.
	acc, err := strix.NewAccelerator("II")
	if err != nil {
		log.Fatal(err)
	}
	res, err := acc.RunPBS(92)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n92 activations on Strix (set II): %.2f ms (%d epochs)\n",
		res.Seconds*1e3, res.Epochs)
}
