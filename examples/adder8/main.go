// Encrypted 8-bit ripple-carry adder — the gate-bootstrapping workload
// TFHE was designed for (§II-B: any function from homomorphic addition and
// programmable bootstrapping).
//
// Every XOR and MUX below is evaluated on ciphertexts; the server never
// sees a plaintext bit. Each binary gate costs one programmable bootstrap,
// so an 8-bit add is 32 bootstraps — exactly the sequential-PBS workload
// whose throughput Strix accelerates with two-level batching.
//
// Run with: go run ./examples/adder8
package main

import (
	"fmt"
	"log"

	strix "repro"
	"repro/internal/tfhe"
)

func main() {
	ctx, err := strix.NewFHEContext("test", 7)
	if err != nil {
		log.Fatal(err)
	}

	const bits = 8
	x, y := 173, 94

	cx := encryptBits(ctx, x, bits)
	cy := encryptBits(ctx, y, bits)

	// Ripple-carry: sum_i = x_i ⊕ y_i ⊕ c_i; c_{i+1} = (x_i ⊕ y_i) ? c_i : x_i.
	sum := make([]tfhe.LWECiphertext, bits)
	carry := ctx.EncryptBool(false)
	for i := 0; i < bits; i++ {
		xXy := ctx.Eval.XOR(cx[i], cy[i])
		sum[i] = ctx.Eval.XOR(xXy, carry)
		carry = ctx.Eval.MUX(xXy, carry, cx[i])
	}

	got := decryptBits(ctx, sum)
	fmt.Printf("%d + %d = %d (mod 256), computed with %d bootstraps\n",
		x, y, got, ctx.Eval.Counters.PBSCount)
	if want := (x + y) % 256; got != want {
		log.Fatalf("mismatch: want %d", want)
	}

	// How fast would Strix run this circuit? The carry chain serializes
	// the MUXes, but the two XOR halves of each bit pipeline: model it as
	// 8 dependent layers of 4 bootstraps (one full-adder per layer).
	acc, err := strix.NewAccelerator("I")
	if err != nil {
		log.Fatal(err)
	}
	layers := make([]int, bits)
	for i := range layers {
		layers[i] = 4 // XOR, XOR, and the 2 bootstraps inside MUX
	}
	res, err := acc.RunLayers(layers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on Strix (set I): %.2f ms for the full adder circuit\n", res.Seconds*1e3)
}

func encryptBits(ctx *strix.FHEContext, v, bits int) []tfhe.LWECiphertext {
	out := make([]tfhe.LWECiphertext, bits)
	for i := range out {
		out[i] = ctx.EncryptBool(v>>i&1 == 1)
	}
	return out
}

func decryptBits(ctx *strix.FHEContext, cts []tfhe.LWECiphertext) int {
	v := 0
	for i := len(cts) - 1; i >= 0; i-- {
		v <<= 1
		if ctx.DecryptBool(cts[i]) {
			v |= 1
		}
	}
	return v
}
