package strix

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§VI). Each benchmark regenerates the corresponding
// experiment and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The text/CSV tables themselves come
// from `go run ./cmd/strixbench -exp all`.

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/intops"
	"repro/internal/sched"
	"repro/internal/tfhe"
	"repro/internal/wire"
	"repro/internal/workload"
)

// BenchmarkFig1WorkloadBreakdown measures a full homomorphic gate (PBS +
// KS) with the functional library — the workload Fig 1 decomposes.
func BenchmarkFig1WorkloadBreakdown(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	ev := tfhe.NewEvaluator(ek)
	ca := sk.EncryptBool(rng, true)
	cb := sk.EncryptBool(rng, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.NAND(ca, cb)
	}
	bd := baseline.GateBreakdown(tfhe.ParamsTest, ev, baseline.DefaultCostWeights())
	b.ReportMetric(100*bd.PBSFrac, "%PBS")
	b.ReportMetric(100*bd.KSFrac, "%KS")
	b.ReportMetric(100*bd.BlindRotateFrac, "%BRofPBS")
}

// BenchmarkFig2GPUFragmentation evaluates the GPU blind-rotation
// fragmentation equations over the Fig 2 x-axis.
func BenchmarkFig2GPUFragmentation(b *testing.B) {
	gpu := baseline.NewGPUModel()
	var sink float64
	for i := 0; i < b.N; i++ {
		for x := 1; x <= 288; x++ {
			t, _ := gpu.RunPBS("I", x)
			sink += t
		}
	}
	s73, _ := gpu.RunPBS("I", 73)
	s72, _ := gpu.RunPBS("I", 72)
	b.ReportMetric(s73/s72, "slowdown@73LWE")
	_ = sink
}

// BenchmarkTable3AreaPower evaluates the area/power model.
func BenchmarkTable3AreaPower(b *testing.B) {
	am := arch.AreaModel{Cfg: arch.DefaultConfig(), P: tfhe.ParamsI}
	var area, power float64
	for i := 0; i < b.N; i++ {
		area = am.ChipAreaMM2()
		power = am.ChipPowerW()
	}
	b.ReportMetric(area, "mm2")
	b.ReportMetric(power, "W")
}

// BenchmarkTable5StrixSet benchmarks the Strix performance model for each
// Table V parameter set and reports throughput/latency.
func BenchmarkTable5StrixSet(b *testing.B) {
	for _, p := range tfhe.StandardSets() {
		p := p
		b.Run("set"+p.Name, func(b *testing.B) {
			m, err := arch.NewModel(arch.DefaultConfig(), p)
			if err != nil {
				b.Fatal(err)
			}
			var thr float64
			for i := 0; i < b.N; i++ {
				thr = m.ThroughputPBS()
			}
			b.ReportMetric(thr, "PBS/s")
			b.ReportMetric(m.LatencySeconds()*1e3, "ms/PBS")
		})
	}
}

// BenchmarkTable5FunctionalPBS measures the real (software) programmable
// bootstrap of the functional library on the test parameter set — the
// golden model behind the Table V workload.
func BenchmarkTable5FunctionalPBS(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	ev := tfhe.NewEvaluator(ek)
	ct := sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(3, 8), tfhe.ParamsTest.LWEStdDev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvalLUTKS(ct, 8, func(x int) int { return (x + 1) % 8 })
	}
}

// BenchmarkPBS measures the raw programmable bootstrap — modswitch, blind
// rotation (the CMux/external-product burst), sample extract — under both
// FFT kernel sets. fast is the unsafe vectorized datapath the engines run
// by default; ref is the pure-Go bitwise reference. The fast/ref pair
// feeds the CI perf gate's pbs_fast_vs_ref ratio (cmd/benchjson, absolute
// floor 1.2): the ratio is a same-run quotient, so it holds on any
// machine, and the conformance suite separately pins that the two paths
// agree bitwise.
func BenchmarkPBS(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	ct := sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(3, 8), tfhe.ParamsTest.LWEStdDev)
	run := func(b *testing.B) {
		ev := tfhe.NewEvaluator(ek)
		tv := ev.LUTTestVector(8, func(x int) int { return (x + 1) % 8 })
		ev.Bootstrap(ct, tv) // warm scratch and twiddles off the clock
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Bootstrap(ct, tv)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "PBS/s")
		b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1e9, "ns/PBS")
	}
	b.Run("fast", func(b *testing.B) {
		if !fft.FastKernelAvailable() {
			b.Skip("purego build")
		}
		prev := fft.SetFastKernel(true)
		defer fft.SetFastKernel(prev)
		run(b)
	})
	b.Run("ref", func(b *testing.B) {
		prev := fft.SetFastKernel(false)
		defer fft.SetFastKernel(prev)
		run(b)
	})
}

// BenchmarkTable6Folding evaluates both FFT configurations and reports the
// folding gains.
func BenchmarkTable6Folding(b *testing.B) {
	cfg := arch.DefaultConfig()
	folded, _ := arch.NewModel(cfg, tfhe.ParamsI)
	cfg.Folded = false
	unfolded, _ := arch.NewModel(cfg, tfhe.ParamsI)
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = folded.ThroughputPBS() / unfolded.ThroughputPBS()
	}
	b.ReportMetric(ratio, "thr-gain")
	amF := arch.AreaModel{Cfg: arch.DefaultConfig(), P: tfhe.ParamsI}
	amN := amF
	amN.Cfg.Folded = false
	b.ReportMetric(amN.FFTUnitAreaMM2()/amF.FFTUnitAreaMM2(), "area-gain")
}

// BenchmarkTable7Sweep runs the TvLP/CLP sweep.
func BenchmarkTable7Sweep(b *testing.B) {
	configs := []struct{ tvlp, clp int }{{16, 2}, {8, 4}, {4, 8}, {2, 16}, {1, 32}}
	var last float64
	for i := 0; i < b.N; i++ {
		for _, c := range configs {
			cfg := arch.DefaultConfig().WithParallelism(c.tvlp, c.clp, 2, 2)
			m, err := arch.NewModel(cfg, tfhe.ParamsIV)
			if err != nil {
				b.Fatal(err)
			}
			last = m.ThroughputPBS()
		}
	}
	b.ReportMetric(last, "PBS/s@1x32")
}

// BenchmarkFig7DeepNN schedules all nine Fig 7 model/degree combinations
// on the Strix chip model.
func BenchmarkFig7DeepNN(b *testing.B) {
	models, err := workload.Fig7Models()
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, nn := range models {
			chip, err := arch.NewChip(arch.DefaultConfig(), nn.Params)
			if err != nil {
				b.Fatal(err)
			}
			r, err := chip.RunLayers(nn.LayerPBS())
			if err != nil {
				b.Fatal(err)
			}
			total += r.Seconds
		}
	}
	b.ReportMetric(total*1e3, "ms-all-9")
}

// BenchmarkFig8CycleSim runs the cycle-level HSC simulation that produces
// the Fig 8 trace (3 LWEs, full 500-iteration blind rotation, set I).
func BenchmarkFig8CycleSim(b *testing.B) {
	m, err := arch.NewModel(arch.DefaultConfig(), tfhe.ParamsI)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sim := arch.NewHSCSim(m)
		if _, err := sim.SimulateBlindRotate(3, tfhe.ParamsI.SmallN); err != nil {
			b.Fatal(err)
		}
	}
}

// batchWorkerCounts returns the worker counts to benchmark: 1, NumCPU, and
// a midpoint when the machine is wide enough — the 1→NumCPU series is the
// software scaling curve the accelerator's batch thesis predicts.
func batchWorkerCounts() []int {
	ncpu := runtime.NumCPU()
	counts := []int{1}
	if ncpu >= 4 {
		counts = append(counts, ncpu/2)
	}
	if ncpu > 1 {
		counts = append(counts, ncpu)
	}
	return counts
}

// BenchmarkBatchBootstrap measures the worker-pool engine on batches of
// raw programmable bootstraps and reports PBS/s per worker count. With
// workers=NumCPU on a multi-core machine this should scale near-linearly
// over workers=1 (ciphertexts are independent; evaluators share nothing
// but read-only keys).
func BenchmarkBatchBootstrap(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	const batch = 64
	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		cts[i] = sk.EncryptBool(rng, i%2 == 0)
	}
	tv := tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N)
	for _, w := range batchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := engine.New(ek, engine.Config{Workers: w})
			eng.BatchBootstrap(cts[:8], tv) // warm the pool off the clock
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.BatchBootstrap(cts, tv)
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "PBS/s")
		})
	}
}

// BenchmarkBatchGate measures the full gate pipeline (linear combination +
// PBS + KS per lane) through the engine — the software row to put next to
// Table V's predicted throughputs.
func BenchmarkBatchGate(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	const batch = 64
	as := make([]tfhe.LWECiphertext, batch)
	bs := make([]tfhe.LWECiphertext, batch)
	for i := range as {
		as[i] = sk.EncryptBool(rng, i%2 == 0)
		bs[i] = sk.EncryptBool(rng, i%3 == 0)
	}
	for _, w := range batchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := engine.New(ek, engine.Config{Workers: w})
			if _, err := eng.BatchGate(engine.NAND, as[:8], bs[:8]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.BatchGate(engine.NAND, as, bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "gates/s")
		})
	}
}

// BenchmarkStreamGate measures the two-level streaming pipeline on the
// full gate workload (linear combination + PBS + fused KS per lane) and
// reports PBS/s per rotate-worker count — the streaming row to compare
// against BenchmarkBatchGate's flat worker pool at the same width.
func BenchmarkStreamGate(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	const batch = 64
	as := make([]tfhe.LWECiphertext, batch)
	bs := make([]tfhe.LWECiphertext, batch)
	for i := range as {
		as[i] = sk.EncryptBool(rng, i%2 == 0)
		bs[i] = sk.EncryptBool(rng, i%3 == 0)
	}
	for _, w := range batchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: w})
			if _, err := s.StreamGate(engine.NAND, as[:8], bs[:8]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.StreamGate(engine.NAND, as, bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "PBS/s")
		})
	}
}

// BenchmarkStreamBootstrap measures the streamed raw PBS (no keyswitch,
// shared test vector) per rotate-worker count, the streaming counterpart
// of BenchmarkBatchBootstrap.
func BenchmarkStreamBootstrap(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	const batch = 64
	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		cts[i] = sk.EncryptBool(rng, i%2 == 0)
	}
	tv := tfhe.NewGLWECiphertext(tfhe.ParamsTest.K, tfhe.ParamsTest.N)
	for _, w := range batchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: w})
			s.StreamBootstrap(cts[:8], tv) // warm the pipeline off the clock
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StreamBootstrap(cts, tv)
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "PBS/s")
		})
	}
}

// BenchmarkStreamLUT measures the fused §IV-C LUT pipeline (shift → PBS →
// keyswitch) with the LUT encoded once per stream.
func BenchmarkStreamLUT(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	const batch = 64
	const space = 8
	cts := make([]tfhe.LWECiphertext, batch)
	for i := range cts {
		cts[i] = sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(i%space, space), tfhe.ParamsTest.LWEStdDev)
	}
	sq := func(x int) int { return (x * x) % space }
	for _, w := range batchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: w})
			s.StreamLUT(cts[:8], space, sq)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StreamLUT(cts, space, sq)
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "PBS/s")
		})
	}
}

// BenchmarkMultiLUT measures multi-value PBS throughput in LUT outputs
// per second as the fan-out k grows: every iteration runs one blind
// rotation that serves k lookup tables (plus k extractions and
// keyswitches). k=1 is exactly the plain EvalLUTKS workload — bitwise
// identical, by the multi-value degeneration contract — so the
// k=4 / k=1 quotient is the machine-portable "multi-value vs k
// independent LUTs" speedup the CI perf gate enforces (cmd/benchjson's
// multilut_vs_klut, floor 1.5).
func BenchmarkMultiLUT(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	const space = 4
	ct := sk.LWE.Encrypt(rng, tfhe.EncodePBSMessage(2, space), tfhe.ParamsTest.LWEStdDev)
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ev := tfhe.NewEvaluator(ek)
			fs := make([]func(int) int, k)
			for i := range fs {
				i := i
				fs[i] = func(m int) int { return (m*m + i) % space }
			}
			ev.EvalMultiLUTKS(ct, space, fs) // warm twiddles off the clock
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.EvalMultiLUTKS(ct, space, fs)
			}
			b.ReportMetric(float64(b.N*k)/b.Elapsed().Seconds(), "LUT/s")
		})
	}
}

// BenchmarkCircuitMul measures the levelizing circuit scheduler against
// the unscheduled per-gate path on a 3-digit encrypted multiply — the
// same DAG, dispatched one PBS at a time (seq) versus level batches over
// the engines. The seq↔sched-w2 pair feeds the CI perf gate's
// machine-portable speedup ratio (cmd/benchjson); sched-wmax shows the
// full-width speedup of the benchmarking machine.
func BenchmarkCircuitMul(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	const digits = 3
	x, err := intops.Encrypt(rng, sk, 57, digits)
	if err != nil {
		b.Fatal(err)
	}
	y, err := intops.Encrypt(rng, sk, 46, digits)
	if err != nil {
		b.Fatal(err)
	}
	inputs := append(append([]tfhe.LWECiphertext{}, x.Digits...), y.Digits...)

	circ, err := intops.MulCircuit(digits)
	if err != nil {
		b.Fatal(err)
	}
	schedule, err := sched.Compile(circ, sched.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pbs := float64(schedule.Stats().TotalPBS)

	b.Run("seq", func(b *testing.B) {
		ev := tfhe.NewEvaluator(ek)
		if _, err := sched.RunSequential(circ, ev, inputs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sched.RunSequential(circ, ev, inputs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*pbs/b.Elapsed().Seconds(), "PBS/s")
	})

	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"sched-w2", 2},
		{"sched-wmax", runtime.NumCPU()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			r := &sched.Runner{
				Batch:  engine.New(ek, engine.Config{Workers: cfg.workers}),
				Stream: engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: cfg.workers}),
			}
			if _, err := r.RunSchedule(circ, schedule, inputs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunSchedule(circ, schedule, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*pbs/b.Elapsed().Seconds(), "PBS/s")
		})
	}

	// Optimized vs naive: the same engines, the same source DAG, timed
	// end to end per multiply — wall-clock, not PBS/s, because the
	// optimizer's whole point is running fewer rotations for the same
	// answer (19 → 12 on the 3-digit multiply: LUT-chain fusion plus
	// multi-value packing of carry/digit fan-out). The pair feeds the CI
	// perf gate's optimized_vs_naive ratio (cmd/benchjson).
	opt := sched.OptAll()
	opt.MultiValueBudget = tfhe.ParamsTest.N
	optSchedule, err := sched.Compile(circ, sched.Config{Opt: opt})
	if err != nil {
		b.Fatal(err)
	}
	optRunner := &sched.Runner{
		Batch:  engine.New(ek, engine.Config{Workers: 2}),
		Stream: engine.NewStreaming(ek, engine.StreamConfig{RotateWorkers: 2}),
	}
	for _, cfg := range []struct {
		name string
		s    *sched.Schedule
	}{
		{"naive", schedule},
		{"optimized", optSchedule},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			if _, err := optRunner.RunSchedule(circ, cfg.s, inputs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := optRunner.RunSchedule(circ, cfg.s, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "mul/s")
		})
	}
}

// BenchmarkSessionRestore measures cold-start session recovery: a gate
// service whose warm tier is empty restores a persisted session from the
// durable store (blob fetch + CRC verify + eval-key decode + engine
// build) and serves one unary gate. The mem sub-benchmark isolates the
// decode/build cost; disk adds the file I/O and checksum path, and the
// disk/mem ratio is gated in CI (cmd/benchjson) so the storage layer
// cannot silently dominate recovery.
func BenchmarkSessionRestore(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	blob, err := wire.MarshalEvalKey(ek)
	if err != nil {
		b.Fatal(err)
	}
	ct := sk.EncryptBool(rng, true)
	const id = "bench-restore"

	run := func(b *testing.B, store SessionStore) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			// A fresh service has an empty warm tier, so the first
			// request for the session takes the restore path.
			srv := NewGateService(ServiceConfig{Store: store})
			if _, err := srv.GateBatch(id, engine.NOT, []tfhe.LWECiphertext{ct}, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
	}

	b.Run("mem", func(b *testing.B) {
		store := NewMemStore()
		if err := store.Put(id, tfhe.ParamsTest, blob); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, store)
	})

	b.Run("disk", func(b *testing.B) {
		store, err := OpenDiskStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		if err := store.Put(id, tfhe.ParamsTest, blob); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, store)
	})
}

// BenchmarkInfer measures the encrypted cellCNN-style inference scenario
// through the gate service, one single-vector infer request per lane:
// serial issues the lanes back to back on one session, coalesced fires
// the same lanes concurrently under that session so the group-commit
// window merges each model stage's identically-shaped rotations across
// requests into shared engine streams. Both report inf/s, and the
// coalesced/serial quotient is the CI perf gate's
// infer_coalesced_vs_serial ratio (cmd/benchjson).
func BenchmarkInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	srv := NewGateService(ServiceConfig{Stream: engine.StreamConfig{RotateWorkers: 2}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() { _ = Serve(l, srv) }()
	cl := Dial("http://"+l.Addr().String(), "bench-infer")
	if err := cl.RegisterKey(ek); err != nil {
		b.Fatal(err)
	}

	const lanes = 8
	vecs := make([][]tfhe.LWECiphertext, lanes)
	for i := range vecs {
		cts := make([]tfhe.LWECiphertext, InferFeatures)
		for m := range cts {
			cts[m] = sk.LWE.Encrypt(rng,
				tfhe.EncodePBSMessage(rng.Intn(InferDigitMax+1), InferSpace), tfhe.ParamsTest.LWEStdDev)
		}
		vecs[i] = cts
	}
	if _, err := cl.Infer(vecs[0], EvalOpts{}); err != nil { // warm session + connection
		b.Fatal(err)
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cts := range vecs {
				if _, err := cl.Infer(cts, EvalOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*lanes)/b.Elapsed().Seconds(), "inf/s")
	})

	b.Run("coalesced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			errs := make([]error, lanes)
			var wg sync.WaitGroup
			for j, cts := range vecs {
				wg.Add(1)
				go func(j int, cts []tfhe.LWECiphertext) {
					defer wg.Done()
					_, errs[j] = cl.Infer(cts, EvalOpts{})
				}(j, cts)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*lanes)/b.Elapsed().Seconds(), "inf/s")
	})
}

// TestHelperClusterNode is not a test: it is the backend-node subprocess
// behind BenchmarkClusterGate. The benchmark re-execs this test binary
// with STRIX_CLUSTER_NODE=1 and GOMAXPROCS=1, and this helper becomes one
// fixed-hardware gate-service node announcing its address on stdout.
func TestHelperClusterNode(t *testing.T) {
	if os.Getenv("STRIX_CLUSTER_NODE") != "1" {
		t.Skip("helper process for BenchmarkClusterGate")
	}
	srv := NewGateService(ServiceConfig{Stream: engine.StreamConfig{RotateWorkers: 1}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("cluster-node: listening on %s\n", l.Addr())
	_ = Serve(l, srv) // blocks until the parent kills the process
}

// startClusterNode boots one backend-node subprocess for
// BenchmarkClusterGate and returns its base URL. The node is pinned to
// GOMAXPROCS=1 so aggregate throughput can only grow by adding nodes.
func startClusterNode(b *testing.B) string {
	b.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperClusterNode$")
	cmd.Env = append(os.Environ(), "STRIX_CLUSTER_NODE=1", "GOMAXPROCS=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		b.Fatal("cluster node produced no output")
	}
	line := scanner.Text()
	const prefix = "cluster-node: listening on "
	if !strings.HasPrefix(line, prefix) {
		b.Fatalf("unexpected node announcement %q", line)
	}
	go func() { // drain so the child never blocks on a full pipe
		for scanner.Scan() {
		}
	}()
	return "http://" + strings.TrimPrefix(line, prefix)
}

// BenchmarkClusterGate measures routed scale-out: the same concurrent
// multi-session gate workload through the routing tier against 1 backend
// node and against 2, each node a separate single-CPU process
// (GOMAXPROCS=1, one rotate worker per session). Sessions are
// shard-balanced by client ID, so the nodes=2 / nodes=1 PBS/s quotient is
// the cluster scaling ratio the CI perf gate enforces (cmd/benchjson's
// cluster2_vs_single, floor 1.5 on machines with ≥2 CPUs).
func BenchmarkClusterGate(b *testing.B) {
	urls := []string{startClusterNode(b), startClusterNode(b)}

	// Balance client IDs against the full 2-node membership once, so both
	// subbenches run the identical session set: nodes=1 serves all four on
	// one backend, nodes=2 serves two per shard.
	placer, err := NewRouter(RouterConfig{Backends: urls})
	if err != nil {
		b.Fatal(err)
	}
	defer placer.Close()
	const clientsPerNode = 2
	quota := map[string]int{urls[0]: clientsPerNode, urls[1]: clientsPerNode}
	var ids []string
	for i := 0; len(ids) < 2*clientsPerNode; i++ {
		id := fmt.Sprintf("bench-cluster-%d", i)
		if u := placer.ShardOf(id); quota[u] > 0 {
			quota[u]--
			ids = append(ids, id)
		}
	}

	const gates = 16
	rng := rand.New(rand.NewSource(29))
	sk, ek := tfhe.GenerateKeys(rng, tfhe.ParamsTest)
	as := make([]tfhe.LWECiphertext, gates)
	bs := make([]tfhe.LWECiphertext, gates)
	for g := range as {
		as[g] = sk.EncryptBool(rng, g%2 == 0)
		bs[g] = sk.EncryptBool(rng, g%3 == 0)
	}

	for _, nodes := range []int{1, 2} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			rt, err := NewRouter(RouterConfig{Backends: urls[:nodes]})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go func() { _ = ServeRouter(l, rt) }()
			base := "http://" + l.Addr().String()

			cls := make([]*GateClient, len(ids))
			for i, id := range ids {
				cls[i] = Dial(base, id)
				if err := cls[i].RegisterKey(ek); err != nil {
					b.Fatal(err)
				}
				if _, err := cls[i].GateBatch(engine.NAND, as[:4], bs[:4]); err != nil {
					b.Fatal(err)
				}
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, len(cls))
				for c, cl := range cls {
					wg.Add(1)
					go func(c int, cl *GateClient) {
						defer wg.Done()
						_, errs[c] = cl.GateBatch(engine.NAND, as, bs)
					}(c, cl)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N*len(cls)*gates)/b.Elapsed().Seconds(), "PBS/s")
		})
	}
}

// BenchmarkAllExperiments regenerates the entire evaluation section.
func BenchmarkAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}
