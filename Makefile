# Local targets mirror the CI jobs one-to-one (.github/workflows/ci.yml),
# so `make lint test race` reproduces a green pipeline before pushing.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-stream lint fmt fmt-check vet docs

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages: the worker-pool engine and the shared FFT
# processor pool it leans on.
race:
	$(GO) test -race ./internal/engine/... ./internal/fft/...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark: proves every benchmark still runs without
# paying for stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# The streaming-pipeline benchmarks on their own: the measured PBS/s rows
# the two-level batching thesis is judged by.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkStream' -benchtime=1x .

lint: fmt-check vet

# Documentation gate: every internal package needs a package comment and
# every exported identifier a doc comment (see cmd/doccheck).
docs:
	$(GO) run ./cmd/doccheck ./internal/...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
