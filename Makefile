# Local targets mirror the CI jobs one-to-one (.github/workflows/ci.yml),
# so `make lint test race` reproduces a green pipeline before pushing.

GO ?= go

# Coverage floor for `make cover` (the test-race-cover CI job). This is a
# ratchet: raise it when coverage genuinely rises, never lower it to get a
# PR past CI. Current total is ~71%.
COVER_FLOOR ?= 68.0

.PHONY: all build test race cover fuzz-regress bench bench-smoke bench-stream lint fmt fmt-check vet docs

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages: the worker-pool and streaming engines, the
# shared FFT processor pool they lean on, and the session-sharded gate
# service (group-commit coalescing) with its wire codec.
race:
	$(GO) test -race ./internal/engine/... ./internal/fft/... ./internal/server/... ./internal/wire/...

# Full suite under the race detector with a coverage floor: catches both
# data races anywhere and silent loss of test coverage.
cover:
	$(GO) test -race -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }'

# The committed fuzz seed corpus in regression mode: every seed under
# internal/wire/testdata/fuzz must keep passing without -fuzz.
fuzz-regress:
	$(GO) test -run '^Fuzz' ./internal/wire/...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark: proves every benchmark still runs without
# paying for stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# The streaming-pipeline benchmarks on their own: the measured PBS/s rows
# the two-level batching thesis is judged by.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkStream' -benchtime=1x .

lint: fmt-check vet

# Documentation gate: every internal package needs a package comment and
# every exported identifier a doc comment (see cmd/doccheck).
docs:
	$(GO) run ./cmd/doccheck ./internal/...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
