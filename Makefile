# Local targets mirror the CI jobs one-to-one (.github/workflows/ci.yml),
# so `make lint test race` reproduces a green pipeline before pushing.

GO ?= go

# Coverage floor for `make cover` (the test-race-cover CI job). This is a
# ratchet: raise it when coverage genuinely rises, never lower it to get a
# PR past CI. The value lives ONLY here — CI consumes it through
# `make cover`. Ratcheted 70 → 72 when the cross-backend conformance
# suite landed; current total is ~73%.
COVER_FLOOR ?= 73.0

# The benchmarks behind the perf trajectory (BENCH_pbs.json): the two
# engines, the circuit scheduler, multi-value PBS, the fast-vs-
# reference FFT kernel comparison, the routed cluster scale-out pair,
# and the encrypted-inference coalescing pair. benchjson derives the
# CI-gated machine-portable ratios from these, so the regexp must keep
# matching every benchmark cmd/benchjson's gatedRatios table names.
BENCH_JSON_BENCHES = BenchmarkBatchGate|BenchmarkStreamGate|BenchmarkCircuitMul|BenchmarkMultiLUT|BenchmarkSessionRestore|BenchmarkPBS|BenchmarkClusterGate|BenchmarkInfer
# Allowed fractional regression of a gated ratio before the perf CI job
# fails (see cmd/benchjson).
BENCH_TOLERANCE = 0.25

.PHONY: all build test test-purego race cover fuzz-regress bench bench-smoke bench-stream bench-json bench-check lint fmt fmt-check vet docs

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pure-Go build: the `purego` tag excludes the unsafe fast FFT
# kernels so everything runs on the reference implementations. Keeps the
# fallback honest — the fast path must stay an optimization, never a
# requirement.
test-purego:
	$(GO) build -tags purego ./...
	$(GO) test -tags purego ./internal/fft/... ./internal/tfhe/... ./internal/conformance/...

# The concurrent packages: the worker-pool and streaming engines, the
# circuit scheduler that feeds them, the shared FFT processor pool they
# lean on, the session-sharded gate service (group-commit coalescing)
# with its wire codec, the multi-node routing tier in front of it, and
# the cross-backend conformance suite that runs every public op through
# all the execution paths.
race:
	$(GO) test -race ./internal/conformance/... ./internal/engine/... ./internal/fft/... ./internal/router/... ./internal/sched/... ./internal/server/... ./internal/wire/...

# Full suite under the race detector with a coverage floor: catches both
# data races anywhere and silent loss of test coverage.
cover:
	$(GO) test -race -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }'

# The committed fuzz seed corpus in regression mode: every seed under
# the packages' testdata/fuzz directories must keep passing without
# -fuzz (wire codec, v2 eval-envelope decoder, packed test-vector
# builder, scheduler optimizer pipeline).
fuzz-regress:
	$(GO) test -run '^Fuzz' ./internal/wire/... ./internal/server/... ./internal/tfhe/... ./internal/sched/...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark: proves every benchmark still runs without
# paying for stable numbers. `./...` includes the BenchmarkFFT* kernel
# benchmarks in internal/fft and BenchmarkPBS at the root, so both fast
# and reference kernel paths get exercised on every CI run.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# The streaming-pipeline benchmarks on their own: the measured PBS/s rows
# the two-level batching thesis is judged by.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkStream' -benchtime=1x .

# Regenerate the committed perf baseline (BENCH_pbs.json): run the key
# engine/scheduler benchmarks and serialize them with the gated ratios.
# Commit the result when the perf characteristics legitimately change.
# Run this on hardware representative of CI (multicore): the gated
# speedup ratios scale with core count, so a baseline generated on a
# narrow machine (the JSON records its "cpus"; benchjson warns when CI
# runs wider) sets a lenient floor — it still catches regressions worse
# than the tolerance below that machine's ratio and benchmarks that
# vanish, but not a loss of multicore speedup the narrow machine never
# exhibited. Regenerate on wide hardware to make the floor meaningful.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_JSON_BENCHES)' -benchtime 5x -count 1 . > bench.out
	$(GO) run ./cmd/benchjson -bench bench.out -o BENCH_pbs.json

# The CI perf gate: fresh benchmark run compared against the committed
# baseline; fails when a gated (machine-portable) ratio regresses more
# than BENCH_TOLERANCE.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_JSON_BENCHES)' -benchtime 5x -count 1 . > bench-new.out
	$(GO) run ./cmd/benchjson -bench bench-new.out -o BENCH_new.json
	$(GO) run ./cmd/benchjson -compare -tol $(BENCH_TOLERANCE) BENCH_pbs.json BENCH_new.json

lint: fmt-check vet

# Documentation gate: every internal package needs a package comment and
# every exported identifier a doc comment (see cmd/doccheck).
docs:
	$(GO) run ./cmd/doccheck ./internal/...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
