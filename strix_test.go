package strix

import (
	"testing"

	"repro/internal/tfhe"
)

func TestFHEContextGateRoundtrip(t *testing.T) {
	ctx, err := NewFHEContext("test", 1)
	if err != nil {
		t.Fatal(err)
	}
	a := ctx.EncryptBool(true)
	b := ctx.EncryptBool(false)
	if got := ctx.DecryptBool(ctx.Eval.NAND(a, b)); got != true {
		t.Errorf("NAND(T,F) = %v", got)
	}
	if got := ctx.DecryptBool(ctx.Eval.AND(a, b)); got != false {
		t.Errorf("AND(T,F) = %v", got)
	}
}

func TestFHEContextIntLUT(t *testing.T) {
	ctx, err := NewFHEContext("test", 2)
	if err != nil {
		t.Fatal(err)
	}
	ct := ctx.EncryptInt(3, 8)
	out := ctx.Eval.EvalLUTKS(ct, 8, func(x int) int { return (2 * x) % 8 })
	if got := ctx.DecryptInt(out, 8); got != 6 {
		t.Errorf("2*3 mod 8 = %d", got)
	}
}

func TestFHEContextBatchGate(t *testing.T) {
	ctx, err := NewFHEContext("test", 3)
	if err != nil {
		t.Fatal(err)
	}
	xs := []bool{true, false, true, true, false}
	ys := []bool{true, true, false, true, false}
	as := ctx.EncryptBools(xs)
	bs := ctx.EncryptBools(ys)

	outs, err := ctx.BatchGate(NAND, as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range ctx.DecryptBools(outs) {
		if want := !(xs[i] && ys[i]); got != want {
			t.Errorf("NAND[%d] = %v, want %v", i, got, want)
		}
	}
	if c := ctx.Engine().Counters(); c.PBSCount != int64(len(xs)) {
		t.Errorf("engine PBSCount = %d, want %d", c.PBSCount, len(xs))
	}

	// A dependency-free circuit level through the public facade.
	outs, err = ctx.EvalCircuit(as, []Gate{{Op: XOR, A: 0, B: 1}, {Op: NOT, A: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dec := ctx.DecryptBools(outs)
	if dec[0] != (xs[0] != xs[1]) || dec[1] != !xs[2] {
		t.Errorf("EvalCircuit decryptions = %v", dec)
	}

	if ctx.NewEngine(2).Workers() != 2 {
		t.Error("NewEngine(2) should build a 2-worker pool")
	}
}

func TestFHEContextStream(t *testing.T) {
	ctx, err := NewFHEContext("test", 4)
	if err != nil {
		t.Fatal(err)
	}
	xs := []bool{true, false, true, true}
	ys := []bool{true, true, false, true}
	as := ctx.EncryptBools(xs)
	bs := ctx.EncryptBools(ys)

	outs, err := ctx.Stream(NAND, as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range ctx.DecryptBools(outs) {
		if want := !(xs[i] && ys[i]); got != want {
			t.Errorf("Stream NAND[%d] = %v, want %v", i, got, want)
		}
	}

	// Streamed and flat-batched gates must agree bitwise (both pin to the
	// sequential evaluator).
	flat, err := ctx.BatchGate(NAND, as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].B != flat[i].B {
			t.Errorf("Stream and BatchGate disagree on output %d body", i)
		}
		for j := range outs[i].A {
			if outs[i].A[j] != flat[i].A[j] {
				t.Fatalf("Stream and BatchGate disagree on output %d mask coefficient %d", i, j)
			}
		}
	}

	// LUT streaming through the facade.
	msgs := []int{3, 5, 0}
	ints := make([]tfhe.LWECiphertext, len(msgs))
	for i, m := range msgs {
		ints[i] = ctx.EncryptInt(m, 8)
	}
	double := func(x int) int { return (2 * x) % 8 }
	for i, out := range ctx.StreamLUT(ints, 8, double) {
		if got := ctx.DecryptInt(out, 8); got != double(msgs[i]) {
			t.Errorf("StreamLUT[%d] = %d, want %d", i, got, double(msgs[i]))
		}
	}

	if s := ctx.NewStreamingEngine(StreamConfig{RotateWorkers: 2, KSWorkers: 1}); s.RotateWorkers() != 2 {
		t.Error("NewStreamingEngine(2) should build a 2-worker rotate pool")
	}
	if want := int64(len(xs) + len(msgs)); ctx.StreamEngine().Counters().PBSCount != want {
		t.Errorf("stream engine PBSCount = %d, want %d", ctx.StreamEngine().Counters().PBSCount, want)
	}
}

func TestFHEContextDeterministic(t *testing.T) {
	a, _ := NewFHEContext("test", 5)
	b, _ := NewFHEContext("test", 5)
	ca := a.EncryptBool(true)
	cb := b.EncryptBool(true)
	if ca.B != cb.B {
		t.Error("same seed should produce identical ciphertexts")
	}
}

func TestFHEContextUnknownSet(t *testing.T) {
	if _, err := NewFHEContext("nope", 1); err == nil {
		t.Error("unknown set should error")
	}
}

func TestAcceleratorHeadlineNumbers(t *testing.T) {
	acc, err := NewAccelerator("I")
	if err != nil {
		t.Fatal(err)
	}
	if thr := acc.ThroughputPBS(); thr < 73000 || thr > 77000 {
		t.Errorf("set I throughput %v, want ~74,696", thr)
	}
	if lat := acc.LatencyMs(); lat < 0.15 || lat > 0.18 {
		t.Errorf("set I latency %v ms, want ~0.16", lat)
	}
}

func TestAcceleratorRunPBS(t *testing.T) {
	acc, err := NewAccelerator("II")
	if err != nil {
		t.Fatal(err)
	}
	r, err := acc.RunPBS(1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.PBSCount != 1000 || r.Seconds <= 0 {
		t.Errorf("RunPBS result %+v", r)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 9 {
		t.Fatalf("%d experiments, want >= 9 (every table and figure plus ablations)", len(ids))
	}
	r, err := RunExperiment("table5")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "table5" || len(r.Rows) == 0 {
		t.Errorf("bad report %+v", r.ID)
	}
	if _, err := RunExperiment("bogus"); err == nil {
		t.Error("bogus experiment should error")
	}
}

// TestFHEContextRunCircuit is the facade-level scheduler acceptance: a
// full-adder circuit built with the public CircuitBuilder runs levelized
// on the default engines and matches both the truth table and the
// node-by-node sequential evaluation bitwise.
func TestFHEContextRunCircuit(t *testing.T) {
	ctx, err := NewFHEContext("test", 7)
	if err != nil {
		t.Fatal(err)
	}
	// One-bit full adder: sum = a⊕b⊕cin, carry = maj(a,b,cin).
	build := func() *Circuit {
		b := NewCircuitBuilder()
		a, bb, cin := b.Input(), b.Input(), b.Input()
		axb := b.Gate(XOR, a, bb)
		sum := b.Gate(XOR, axb, cin)
		ab := b.Gate(AND, a, bb)
		axbc := b.Gate(AND, axb, cin)
		carry := b.Gate(OR, ab, axbc)
		b.Output(sum, carry)
		circ, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return circ
	}
	circ := build()

	sch, err := ctx.Compile(circ, ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st := sch.Stats(); st.Levels != 3 || st.TotalPBS != 5 {
		t.Fatalf("full adder schedule = %+v, want 3 levels / 5 PBS", st)
	}

	for _, bits := range [][3]bool{{false, false, false}, {true, false, false}, {true, true, false}, {true, true, true}} {
		ins := ctx.EncryptBools(bits[:])
		outs, err := ctx.RunCircuit(circ, ins)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, b := range bits {
			if b {
				n++
			}
		}
		wantSum, wantCarry := n%2 == 1, n >= 2
		if got := ctx.DecryptBools(outs); got[0] != wantSum || got[1] != wantCarry {
			t.Errorf("adder(%v) = %v, want [%v %v]", bits, got, wantSum, wantCarry)
		}

		// Reusing the compiled schedule must give the identical result.
		again, err := ctx.RunSchedule(circ, sch, ins)
		if err != nil {
			t.Fatal(err)
		}
		for k := range again {
			if again[k].B != outs[k].B {
				t.Errorf("RunSchedule output %d differs from RunCircuit", k)
			}
		}
	}
}

func TestFHEContextMultiLUT(t *testing.T) {
	ctx, err := NewFHEContext("test", 9)
	if err != nil {
		t.Fatal(err)
	}
	const space = 4
	double := func(x int) int { return (2 * x) % space }
	inc := func(x int) int { return (x + 1) % space }

	// Sequential facade: one rotation, two outputs.
	ct := ctx.EncryptInt(3, space)
	outs := ctx.EvalMultiLUT(ct, space, double, inc)
	if got := ctx.DecryptInt(outs[0], space); got != double(3) {
		t.Errorf("EvalMultiLUT[0](3) = %d, want %d", got, double(3))
	}
	if got := ctx.DecryptInt(outs[1], space); got != inc(3) {
		t.Errorf("EvalMultiLUT[1](3) = %d, want %d", got, inc(3))
	}

	// Batch and stream facades must match the sequential path bitwise.
	cts := []tfhe.LWECiphertext{ctx.EncryptInt(1, space), ctx.EncryptInt(2, space)}
	want := [][]tfhe.LWECiphertext{
		ctx.EvalMultiLUT(cts[0], space, double, inc),
		ctx.EvalMultiLUT(cts[1], space, double, inc),
	}
	batch, err := ctx.BatchMultiLUT(cts, space, double, inc)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ctx.StreamMultiLUT(cts, space, double, inc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if !tfhe.EqualLWE(batch[i][j], want[i][j]) || !tfhe.EqualLWE(stream[i][j], want[i][j]) {
				t.Fatalf("engine multi-LUT output [%d][%d] differs from sequential", i, j)
			}
		}
	}

	// The circuit builder's multi-value group goes through the scheduler.
	b := NewCircuitBuilder()
	in := b.Input()
	ws := b.MultiLUTFunc(in, space, double, inc)
	b.Output(ws...)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.RunCircuit(circ, []tfhe.LWECiphertext{ctx.EncryptInt(2, space)})
	if err != nil {
		t.Fatal(err)
	}
	if d0 := ctx.DecryptInt(got[0], space); d0 != double(2) {
		t.Errorf("circuit MultiLUT output 0 = %d, want %d", d0, double(2))
	}
	if d1 := ctx.DecryptInt(got[1], space); d1 != inc(2) {
		t.Errorf("circuit MultiLUT output 1 = %d, want %d", d1, inc(2))
	}
}

// TestFHEContextOptimized covers the facade's optimizer surface: the
// full-adder circuit compiled under OptimizedConfig fuses its gate
// chains to fewer rotations, RunCircuitOptimized still decodes to the
// truth table, and standalone Optimize reports the pass accounting.
func TestFHEContextOptimized(t *testing.T) {
	ctx, err := NewFHEContext("test", 11)
	if err != nil {
		t.Fatal(err)
	}
	b := NewCircuitBuilder()
	x, y := b.Input(), b.Input()
	// AND feeding NAND with no other consumer: fuses to one rotation.
	b.Output(b.Gate(NAND, b.Gate(AND, x, y), b.Not(y)))
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	oc, passes, err := Optimize(circ, OptAll())
	if err != nil {
		t.Fatal(err)
	}
	if oc == circ || len(passes) == 0 {
		t.Fatal("Optimize reported no work on a fusible circuit")
	}

	sch, err := ctx.Compile(circ, ctx.OptimizedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st := sch.Stats(); st.TotalPBS >= 2 || len(st.OptPasses) == 0 {
		t.Fatalf("optimized schedule = %+v, want the 2-gate chain fused below 2 PBS", st)
	}

	for _, bits := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		outs, err := ctx.RunCircuitOptimized(circ, ctx.EncryptBools(bits[:]))
		if err != nil {
			t.Fatal(err)
		}
		want := !((bits[0] && bits[1]) && !bits[1])
		if got := ctx.DecryptBool(outs[0]); got != want {
			t.Errorf("optimized circuit(%v) = %v, want %v", bits, got, want)
		}
	}
}
