package main

import (
	"testing"

	"repro/cmd/internal/cmdtest"
)

// TestSmoke builds strixsim and runs the analytic summary, the chip
// scheduler, and the Gantt renderer on small inputs.
func TestSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	t.Run("summary", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-set", "I")
		cmdtest.WantSubstrings(t, out, "Strix configuration", "PBS latency", "PBS throughput")
	})

	t.Run("count", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-set", "I", "-count", "1000")
		cmdtest.WantSubstrings(t, out, "PBS throughput")
	})

	t.Run("custom parallelism", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-set", "II", "-tvlp", "2", "-clp", "16")
		cmdtest.WantSubstrings(t, out, "TvLP=2 CLP=16")
	})

	t.Run("gantt", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "-set", "I", "-gantt", "-iters", "1")
		cmdtest.WantSubstrings(t, out, "Strix configuration")
	})

	t.Run("bad set rejected", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "-set", "nope")
		if err == nil {
			t.Errorf("unknown set succeeded:\n%s", out)
		}
	})
}
