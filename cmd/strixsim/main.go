// Command strixsim runs a custom Strix configuration against a PBS
// workload: it prints the analytic performance summary, optionally
// cross-checks it with the cycle-level simulator, and can render the Fig
// 8-style functional-unit Gantt chart.
//
// Usage:
//
//	strixsim -set I
//	strixsim -set IV -tvlp 2 -clp 16
//	strixsim -set I -count 100000
//	strixsim -set I -gantt -batch 3 -iters 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/cycle"
	"repro/internal/tfhe"
)

func main() {
	set := flag.String("set", "I", "TFHE parameter set (I..IV)")
	tvlp := flag.Int("tvlp", 8, "test-vector level parallelism (number of HSCs)")
	clp := flag.Int("clp", 4, "coefficient level parallelism (FFT lanes)")
	plp := flag.Int("plp", 2, "polynomial level parallelism")
	colp := flag.Int("colp", 2, "column level parallelism")
	batch := flag.Int("batch", 0, "core-level batch size (0 = auto)")
	count := flag.Int("count", 0, "schedule this many PBS ops through the chip")
	folded := flag.Bool("folded", true, "enable the FFT folding scheme")
	gantt := flag.Bool("gantt", false, "render the functional-unit gantt chart")
	iters := flag.Int("iters", 2, "blind-rotation iterations for -gantt")
	flag.Parse()

	p, err := tfhe.ParamsByName(*set)
	if err != nil {
		fail(err)
	}
	cfg := arch.DefaultConfig().WithParallelism(*tvlp, *clp, *plp, *colp)
	cfg.CoreBatch = *batch
	cfg.Folded = *folded

	m, err := arch.NewModel(cfg, p)
	if err != nil {
		fail(err)
	}
	s := m.Summary()
	fmt.Printf("Strix configuration: TvLP=%d CLP=%d PLP=%d CoLP=%d folded=%v, set %s\n",
		cfg.TvLP, cfg.CLP, cfg.PLP, cfg.CoLP, cfg.Folded, p.Name)
	fmt.Printf("  stage interval:      %d cycles/LWE/iteration\n", s.StageInterval)
	fmt.Printf("  bsk fetch:           %d cycles/iteration\n", s.BskFetchCycles)
	fmt.Printf("  core batch:          %d LWE (epoch %d LWE)\n", s.CoreBatch, s.EpochLWECount)
	fmt.Printf("  PBS latency:         %.3f ms\n", s.LatencyMs)
	fmt.Printf("  PBS throughput:      %.0f PBS/s\n", s.ThroughputPBS)
	fmt.Printf("  KS cycles/LWE:       %d (hidden behind BR: %v)\n", s.KSCyclesPerLWE, s.KSHiddenFully)
	fmt.Printf("  required bandwidth:  %.0f GB/s (%s bound)\n",
		s.RequiredBWGBs, boundKind(s.MemoryBound))

	if *count > 0 {
		chip := arch.Chip{Model: m}
		res, err := chip.RunPBS(*count)
		if err != nil {
			fail(err)
		}
		fmt.Printf("workload: %d PBS in %d epochs: %.3f ms (%.0f PBS/s sustained)\n",
			res.PBSCount, res.Epochs, res.Seconds*1e3, res.ThroughputPBS)
	}

	if *gantt {
		sim := arch.NewHSCSim(m)
		b := s.CoreBatch
		if *batch > 0 {
			b = *batch
		}
		if _, err := sim.SimulateBlindRotate(b, *iters); err != nil {
			fail(err)
		}
		end := sim.Trace.End()
		fmt.Printf("\nfunctional-unit gantt (%d LWEs, %d iterations, %d cycles):\n",
			b, *iters, end)
		fmt.Print(sim.Trace.Gantt(0, end, 100))
		for _, u := range []string{
			arch.UnitRotator, arch.UnitDecomposer, arch.UnitFFT,
			arch.UnitVMA, arch.UnitIFFT, arch.UnitAccum,
		} {
			fmt.Printf("  %-14s %.0f%%\n", u, 100*sim.Trace.Utilization(u, 0, cycle.Time(end)))
		}
	}
}

func boundKind(mem bool) string {
	if mem {
		return "memory"
	}
	return "compute"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "strixsim:", err)
	os.Exit(1)
}
