// Command doccheck enforces the repository's documentation contract: every
// checked package must carry a package comment, and every exported
// identifier — functions, methods on exported types, types, consts and
// vars — must have a doc comment (a comment on a const/var group documents
// the whole group). It is the `make docs` / CI gate, a dependency-free
// stand-in for revive's exported rule.
//
// Usage:
//
//	doccheck ./internal/...        # check all packages under internal/
//	doccheck ./internal/tfhe .     # explicit directories ('...' recurses)
//
// Exit status is 1 if any finding is reported, with one "file:line:
// finding" per offending identifier.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./internal/..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// expand resolves "dir/..." patterns to the list of directories that
// contain non-test Go files. A pattern that matches no Go package is an
// error, so a typo'd path can never turn the gate into a silent no-op.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) bool {
		if seen[dir] {
			return true
		}
		if !hasGoFiles(dir) {
			return false
		}
		seen[dir] = true
		dirs = append(dirs, dir)
		return true
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			matched := false
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() && add(path) {
					matched = true
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if !matched {
				return nil, fmt.Errorf("pattern %s matched no Go packages", pat)
			}
			continue
		}
		if !add(pat) {
			return nil, fmt.Errorf("%s contains no Go files", pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// checkDir parses the non-test files of one package directory and returns
// its findings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}

	hasPkgDoc := false
	for _, f := range files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		report(files[0].Package, "package %s has no package comment", files[0].Name.Name)
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "exported %s %s is undocumented", kindOf(d), d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(d, report)
			}
		}
	}
	return findings, nil
}

func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// exportedRecv reports whether d is a plain function or a method on an
// exported type (methods on unexported types are not part of the API).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl reports undocumented exported types, consts and vars. A doc
// comment on a const/var group documents every name in the group; types
// require a doc on the spec or on a single-spec declaration.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			if ts.Doc == nil && d.Doc == nil {
				report(ts.Pos(), "exported type %s is undocumented", ts.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		if d.Doc != nil {
			return // a group comment covers every member
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if vs.Doc != nil || vs.Comment != nil {
				continue // per-spec doc or trailing comment
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					report(name.Pos(), "exported %s %s is undocumented", d.Tok, name.Name)
				}
			}
		}
	}
}
