package main

import (
	"testing"

	"repro/cmd/internal/cmdtest"
)

// TestSmoke builds tfhecli and runs each subcommand on the fast test set.
func TestSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	t.Run("gate", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "gate", "-op", "NAND", "-a=true", "-b=false")
		cmdtest.WantSubstrings(t, out, "NAND(true, false) = true")
	})

	t.Run("lut", func(t *testing.T) {
		out := cmdtest.Run(t, bin, "lut", "-space", "8", "-fn", "square", "-m", "5")
		cmdtest.WantSubstrings(t, out, "square(5) mod 8 = 1")
	})

	t.Run("adder", func(t *testing.T) {
		// The adder self-checks and exits non-zero on a mismatch, so a
		// clean exit already proves the encrypted sum.
		out := cmdtest.Run(t, bin, "adder", "-x", "3", "-y", "4", "-bits", "4")
		cmdtest.WantSubstrings(t, out, "3 + 4 = 7")
	})

	t.Run("unknown subcommand rejected", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "frobnicate")
		if err == nil {
			t.Errorf("unknown subcommand succeeded:\n%s", out)
		}
	})

	t.Run("unknown gate rejected", func(t *testing.T) {
		out, err := cmdtest.RunErr(t, bin, "gate", "-op", "FROB")
		if err == nil {
			t.Errorf("unknown gate succeeded:\n%s", out)
		}
	})
}
