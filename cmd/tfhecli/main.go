// Command tfhecli demonstrates the functional TFHE library: it encrypts
// inputs, evaluates gates or lookup tables homomorphically (each gate/LUT
// is one programmable bootstrap), and decrypts the result.
//
// Usage:
//
//	tfhecli gate -op NAND -a true -b false
//	tfhecli lut -space 8 -fn square -m 5
//	tfhecli adder -x 23 -y 45 -bits 8
//
// The default parameter set is the fast test set; pass -set I for the
// full-scale 110-bit parameters (key generation takes a few seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	strix "repro"
	"repro/internal/tfhe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gate":
		gateCmd(os.Args[2:])
	case "lut":
		lutCmd(os.Args[2:])
	case "adder":
		adderCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tfhecli <gate|lut|adder> [flags]")
	os.Exit(2)
}

func newCtx(set string) *strix.FHEContext {
	start := time.Now()
	ctx, err := strix.NewFHEContext(set, time.Now().UnixNano())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tfhecli:", err)
		os.Exit(1)
	}
	fmt.Printf("key generation (set %s): %v\n", set, time.Since(start).Round(time.Millisecond))
	return ctx
}

func gateCmd(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	set := fs.String("set", "test", "parameter set")
	op := fs.String("op", "NAND", "gate: NAND|AND|OR|NOR|XOR|XNOR")
	a := fs.Bool("a", true, "first operand")
	b := fs.Bool("b", false, "second operand")
	fs.Parse(args)

	ctx := newCtx(*set)
	ca, cb := ctx.EncryptBool(*a), ctx.EncryptBool(*b)
	start := time.Now()
	var out tfhe.LWECiphertext
	switch *op {
	case "NAND":
		out = ctx.Eval.NAND(ca, cb)
	case "AND":
		out = ctx.Eval.AND(ca, cb)
	case "OR":
		out = ctx.Eval.OR(ca, cb)
	case "NOR":
		out = ctx.Eval.NOR(ca, cb)
	case "XOR":
		out = ctx.Eval.XOR(ca, cb)
	case "XNOR":
		out = ctx.Eval.XNOR(ca, cb)
	default:
		fmt.Fprintln(os.Stderr, "tfhecli: unknown gate", *op)
		os.Exit(1)
	}
	fmt.Printf("%s(%v, %v) = %v  (1 PBS + 1 KS in %v)\n",
		*op, *a, *b, ctx.DecryptBool(out), time.Since(start).Round(time.Microsecond))
}

func lutCmd(args []string) {
	fs := flag.NewFlagSet("lut", flag.ExitOnError)
	set := fs.String("set", "test", "parameter set")
	space := fs.Int("space", 8, "message space (messages 0..space-1)")
	fn := fs.String("fn", "square", "function: square|inc|relu|negate")
	m := fs.Int("m", 3, "plaintext message")
	fs.Parse(args)

	funcs := map[string]func(int) int{
		"square": func(x int) int { return (x * x) % *space },
		"inc":    func(x int) int { return (x + 1) % *space },
		"relu": func(x int) int {
			if x >= *space/2 {
				return x
			}
			return *space / 2
		},
		"negate": func(x int) int { return (*space - x) % *space },
	}
	f, ok := funcs[*fn]
	if !ok {
		fmt.Fprintln(os.Stderr, "tfhecli: unknown function", *fn)
		os.Exit(1)
	}

	ctx := newCtx(*set)
	ct := ctx.EncryptInt(*m, *space)
	start := time.Now()
	out := ctx.Eval.EvalLUTKS(ct, *space, f)
	fmt.Printf("%s(%d) mod %d = %d  (programmable bootstrap in %v)\n",
		*fn, *m, *space, ctx.DecryptInt(out, *space), time.Since(start).Round(time.Microsecond))
}

func adderCmd(args []string) {
	fs := flag.NewFlagSet("adder", flag.ExitOnError)
	set := fs.String("set", "test", "parameter set")
	x := fs.Int("x", 23, "first addend")
	y := fs.Int("y", 45, "second addend")
	bits := fs.Int("bits", 8, "adder width")
	fs.Parse(args)

	ctx := newCtx(*set)
	ax := encryptBits(ctx, *x, *bits)
	ay := encryptBits(ctx, *y, *bits)

	start := time.Now()
	sum := make([]tfhe.LWECiphertext, *bits)
	carry := ctx.EncryptBool(false)
	for i := 0; i < *bits; i++ {
		// Full adder: sum = a XOR b XOR cin; cout = MUX(a XOR b, cin, a).
		axb := ctx.Eval.XOR(ax[i], ay[i])
		sum[i] = ctx.Eval.XOR(axb, carry)
		carry = ctx.Eval.MUX(axb, carry, ax[i])
	}
	elapsed := time.Since(start)

	got := 0
	for i := *bits - 1; i >= 0; i-- {
		got <<= 1
		if ctx.DecryptBool(sum[i]) {
			got |= 1
		}
	}
	gates := ctx.Eval.Counters.PBSCount
	fmt.Printf("%d + %d = %d (mod 2^%d)  [%d bootstraps in %v]\n",
		*x, *y, got, *bits, gates, elapsed.Round(time.Millisecond))
	if want := (*x + *y) & (1<<*bits - 1); got != want {
		fmt.Fprintf(os.Stderr, "tfhecli: MISMATCH, expected %d\n", want)
		os.Exit(1)
	}
}

func encryptBits(ctx *strix.FHEContext, v, bits int) []tfhe.LWECiphertext {
	out := make([]tfhe.LWECiphertext, bits)
	for i := 0; i < bits; i++ {
		out[i] = ctx.EncryptBool(v>>i&1 == 1)
	}
	return out
}
