// Command strixserv runs the networked FHE gate service: a session-sharded
// HTTP server that accepts wire-encoded evaluation keys and streams clients'
// gate/LUT batches through per-session streaming PBS engines.
//
// The trust split is the classic FHE service model: clients keep their
// secret keys and upload only evaluation keys and ciphertexts; the server
// computes blindly. Endpoints (JSON frames, base64 binary fields):
//
//	POST   /v2/eval                versioned evaluation envelope (kind + payload + opts)
//	POST   /v1/register-key        upload a client's evaluation keys
//	POST   /v1/gate-batch          shim: evaluate a boolean gate over ciphertext pairs
//	POST   /v1/lut-batch           shim: apply a lookup table via PBS + keyswitch
//	POST   /v1/multilut-batch      shim: k tables per blind rotation
//	POST   /v1/circuit-batch       shim: a serialized scheduler DAG
//	GET    /v1/stats               per-session metrics (requests, streams, op mix)
//	GET    /v1/healthz             readiness (503 once draining)
//	GET    /v1/sessions            live sessions across warm and durable tiers
//	DELETE /v1/sessions/{id}       evict a session everywhere
//
// With -data, registered evaluation keys are persisted to a crash-safe
// on-disk store (wire-codec key files plus a checksummed write-ahead
// log). A restarted server pointed at the same directory serves its old
// sessions again — bitwise-identical results, no key re-upload — and
// SIGINT/SIGTERM trigger a graceful drain: in-flight batches finish and
// the store is flushed before the process exits.
//
// Usage:
//
//	strixserv                        # listen on :8475, in-memory sessions
//	strixserv -addr 127.0.0.1:0      # ephemeral port (printed on stdout)
//	strixserv -data /var/lib/strix   # durable sessions, graceful drain
//	strixserv -max-sessions 128 -rotate-workers 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	strix "repro"
	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8475", "listen address (host:port; port 0 picks one)")
	dataDir := flag.String("data", "", "directory for durable session keys (empty = in-memory only)")
	maxSessions := flag.Int("max-sessions", 0, "LRU bound on cached client sessions (0 = default 64)")
	maxPending := flag.Int("max-pending", 0, "per-session backpressure bound (0 = default 64)")
	maxBatch := flag.Int("max-batch", 0, "max ciphertexts per request (0 = default 4096)")
	maxCoalesce := flag.Int("max-coalesce", 0, "max ciphertexts merged into one stream (0 = default 8192)")
	rotateWorkers := flag.Int("rotate-workers", 0, "blind-rotate workers per session engine (0 = NumCPU)")
	ksWorkers := flag.Int("ks-workers", 0, "keyswitch workers per session engine (0 = rotate/4)")
	flag.Parse()

	srv, err := strix.OpenGateService(strix.ServiceConfig{
		MaxSessions: *maxSessions,
		MaxPending:  *maxPending,
		MaxBatch:    *maxBatch,
		MaxCoalesce: *maxCoalesce,
		DataDir:     *dataDir,
		Stream: engine.StreamConfig{
			RotateWorkers: *rotateWorkers,
			KSWorkers:     *ksWorkers,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strixserv:", err)
		os.Exit(1)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strixserv:", err)
		os.Exit(1)
	}
	fmt.Printf("strixserv: listening on %s\n", l.Addr())

	// SIGINT/SIGTERM trigger a graceful drain: stop admitting work, let
	// in-flight batches finish, flush and close the session store.
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Println("strixserv: draining")
		close(drain)
	}()

	if err := strix.ServeDrain(l, srv, drain); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "strixserv:", err)
		os.Exit(1)
	}
	fmt.Println("strixserv: drained, exiting")
}
